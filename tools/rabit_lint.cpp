// rabit_lint — pre-flight static analysis of lab scripts and configurations.
//
// Runs before anything executes: parses each script, abstractly interprets it
// against the rulebase on the configured symbolic lab state, and reports
// every rule a statically-resolvable command would violate, with script line
// numbers and rule ids. With no scripts, lints just the configuration. The
// recommended pre-flight ladder is
//
//   rabit_lint script.lab        (static, instant)
//   rabit_validate config.json   (schema + cross-consistency)
//   rabit_replay --sim ...       (full simulator stage)
//
//   usage: rabit_lint [options] [script.lab ...]
//     --config <file.json>   lint against this configuration (default: the
//                            built-in testbed config, as emitted by
//                            `rabit_validate --template`)
//     --config-only          lint only the configuration and exit
//     --demo-bugs            run the §IV bug-catalogue command streams
//                            through the analyzer and print what it flags
//     --json                 machine-readable diagnostic output
//     --help                 this text
//
// Exit status: 0 clean (warnings allowed), 1 error-level findings, 2 usage.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "bugs/bugs.hpp"
#include "core/config.hpp"
#include "sim/deck.hpp"

using namespace rabit;

namespace {

void print_usage(std::FILE* out, const char* argv0) {
  std::fprintf(out,
               "usage: %s [options] [script.lab ...]\n"
               "  --config <file.json>  lint against this configuration\n"
               "  --config-only         lint only the configuration and exit\n"
               "  --demo-bugs           analyze the built-in bug-catalogue streams\n"
               "  --json                machine-readable output\n"
               "  --help                this text\n",
               argv0);
}

core::EngineConfig builtin_testbed_config() {
  sim::LabBackend backend(sim::testbed_profile());
  sim::build_hein_testbed_deck(backend);
  return core::config_from_backend(backend, core::Variant::Modified);
}

void print_report(const std::string& subject, const analysis::AnalysisReport& report,
                  bool as_json) {
  if (as_json) {
    json::Value doc = analysis::report_to_json(report);
    json::Object wrapped;
    wrapped["subject"] = subject;
    for (const auto& [key, value] : doc.as_object()) wrapped[key] = value;
    std::printf("%s\n", json::serialize_pretty(json::Value(std::move(wrapped))).c_str());
    return;
  }
  if (report.diagnostics.empty()) {
    std::printf("%s: clean\n", subject.c_str());
    return;
  }
  std::printf("%s:\n", subject.c_str());
  for (const analysis::Diagnostic& d : report.diagnostics) {
    std::printf("  %s\n", d.format().c_str());
  }
  if (report.truncated) std::printf("  (report truncated by analysis budget)\n");
}

int demo_bugs(const core::EngineConfig& config, bool as_json) {
  sim::LabBackend backend(sim::testbed_profile());
  sim::build_hein_testbed_deck(backend);
  for (const bugs::BugSpec& bug : bugs::bug_catalogue()) {
    sim::LabBackend staging(sim::testbed_profile());
    sim::build_hein_testbed_deck(staging);
    std::vector<dev::Command> stream = bug.build(staging);
    analysis::AnalysisReport report = analysis::analyze_stream(config, stream);
    print_report(bug.id + " — " + bug.name, report, as_json);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  bool as_json = false;
  bool config_only = false;
  bool run_demo_bugs = false;
  std::vector<std::string> scripts;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout, argv[0]);
      return 0;
    }
    if (arg == "--json") {
      as_json = true;
    } else if (arg == "--config-only") {
      config_only = true;
    } else if (arg == "--demo-bugs") {
      run_demo_bugs = true;
    } else if (arg == "--config") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --config needs a file argument\n");
        return 2;
      }
      config_path = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      print_usage(stderr, argv[0]);
      return 2;
    } else {
      scripts.push_back(arg);
    }
  }
  if (scripts.empty() && !config_only && !run_demo_bugs) {
    print_usage(stderr, argv[0]);
    return 2;
  }

  core::EngineConfig config;
  if (config_path.empty()) {
    config = builtin_testbed_config();
  } else {
    std::ifstream in(config_path);
    if (!in) {
      std::fprintf(stderr, "error: cannot open '%s'\n", config_path.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
      config = core::config_from_json(json::parse(buffer.str()));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: cannot load config '%s': %s\n", config_path.c_str(),
                   e.what());
      return 2;
    }
  }

  bool any_errors = false;

  // The configuration lint always runs: a script verdict against an
  // inconsistent config is meaningless.
  analysis::AnalysisReport config_report = analysis::lint_config(config);
  any_errors |= config_report.has_errors();
  if (config_only || !config_report.diagnostics.empty()) {
    print_report(config_path.empty() ? "<builtin testbed config>" : config_path,
                 config_report, as_json);
  }
  if (config_only) return any_errors ? 1 : 0;

  if (run_demo_bugs) {
    demo_bugs(config, as_json);
    return any_errors ? 1 : 0;
  }

  for (const std::string& path : scripts) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    analysis::AnalysisReport report = analysis::analyze_script(config, buffer.str());
    any_errors |= report.has_errors();
    print_report(path, report, as_json);
  }
  return any_errors ? 1 : 0;
}
