// rabit_lint — pre-flight static analysis of lab scripts and configurations.
//
// Runs before anything executes: parses each script, abstractly interprets it
// against the rulebase on the configured symbolic lab state, and reports
// every rule a statically-resolvable command would violate, with script line
// numbers and rule ids. With no scripts, lints just the configuration. With
// --fleet, additionally runs the whole-campaign interference analyzer
// (diagnostics I1..I6) over the campaign's streams. The recommended
// pre-flight ladder is
//
//   rabit_lint script.lab        (static, instant)
//   rabit_validate config.json   (schema + cross-consistency)
//   rabit_replay --sim ...       (full simulator stage)
//
//   usage: rabit_lint [options] [script.lab ...]
//     --config <file.json>   lint against this configuration (default: the
//                            built-in testbed config, as emitted by
//                            `rabit_validate --template`)
//     --config-only          lint only the configuration and exit
//     --rules                run the rulebase verifier (R1..R8): certify the
//                            rules themselves — shadowed/contradictory/
//                            unsatisfiable/dangling rules, guard-vs-analyzer
//                            divergence, coverage gaps, order-dependent
//                            thresholds, dark-key classification against the
//                            fuzzer's measured coverage map. Every R1/R2/R5/
//                            R6/R7 finding prints a replayable witness;
//                            R3/R4/R8 print machine-checkable proof tags
//     --witness-dir <dir>    with --rules: write each witness/proof finding
//                            as a self-contained corpus document
//                            (`rabit_fuzz --replay` confirms it)
//     --fleet <campaign.json> summarize every stream of the campaign and run
//                            the pairwise interference checks (I1..I6)
//     --shard-plan           with --fleet: build the static shard plan
//                            (conflict graph, shards, independence
//                            certificates, S1..S3 diagnostics) and print it
//                            (text, or JSON under --json)
//     --max-shard-streams <n> S1 bound: warn when any shard holds more than
//                            n streams (default 0: warn only when the whole
//                            campaign collapses into one shard)
//     --demo-bugs            run the §IV bug-catalogue command streams
//                            through the analyzer and print what it flags
//     --strict               a budget-truncated (possibly incomplete) report
//                            also fails the run, not just error findings
//     --max-diagnostics <n>  cap the per-report diagnostic count (default 200)
//     --json                 machine-readable diagnostic output
//     --help                 this text
//
// Exit status: 0 clean (warnings allowed), 1 error-level findings (or a
// truncated report under --strict), 2 usage.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "analysis/interference.hpp"
#include "analysis/rulecheck.hpp"
#include "bugs/bugs.hpp"
#include "core/config.hpp"
#include "fleet/fleet.hpp"
#include "recovery/recovery.hpp"
#include "scenario/fuzz.hpp"
#include "sim/deck.hpp"

using namespace rabit;

namespace {

void print_usage(std::FILE* out, const char* argv0) {
  std::fprintf(out,
               "usage: %s [options] [script.lab ...]\n"
               "  --config <file.json>   lint against this configuration\n"
               "  --config-only          lint only the configuration and exit\n"
               "  --rules                verify the rulebase itself (R1..R8)\n"
               "  --witness-dir <dir>    with --rules: write replayable witness files\n"
               "  --fleet <campaign.json> interference-check a fleet campaign\n"
               "  --shard-plan           with --fleet: print the static shard plan\n"
               "  --max-shard-streams <n> S1 bound for --shard-plan (default 0)\n"
               "  --demo-bugs            analyze the built-in bug-catalogue streams\n"
               "  --strict               truncated reports also fail the run\n"
               "  --max-diagnostics <n>  cap the per-report diagnostic count\n"
               "  --json                 machine-readable output\n"
               "  --help                 this text\n",
               argv0);
}

core::EngineConfig builtin_testbed_config() {
  sim::LabBackend backend(sim::testbed_profile());
  sim::build_hein_testbed_deck(backend);
  return core::config_from_backend(backend, core::Variant::Modified);
}

void print_report(const std::string& subject, const analysis::AnalysisReport& unsorted,
                  bool as_json) {
  // Deterministic emission order — (code, stream, location) — so golden
  // tests and CI diffs are byte-stable regardless of analysis order.
  analysis::AnalysisReport report = analysis::sorted_for_emission(unsorted);
  if (as_json) {
    json::Value doc = analysis::report_to_json(report);
    json::Object wrapped;
    wrapped["subject"] = subject;
    for (const auto& [key, value] : doc.as_object()) wrapped[key] = value;
    std::printf("%s\n", json::serialize_pretty(json::Value(std::move(wrapped))).c_str());
    return;
  }
  if (report.diagnostics.empty()) {
    if (report.truncated) {
      std::printf("%s: no findings, but the report is TRUNCATED by the analysis budget "
                  "(possibly incomplete)\n",
                  subject.c_str());
    } else {
      std::printf("%s: clean\n", subject.c_str());
    }
    return;
  }
  std::printf("%s:\n", subject.c_str());
  for (const analysis::Diagnostic& d : report.diagnostics) {
    std::printf("  %s\n", d.format().c_str());
  }
  if (report.truncated) {
    std::printf("  (report TRUNCATED by the analysis budget — findings may be missing)\n");
  }
}

/// --rules mode: the rulebase verifier (R1..R8) with the fuzzer's measured
/// coverage map wired into R8. Prints each finding with its witness command
/// sequence or proof tag; optionally writes every finding as a replayable
/// corpus document under `witness_dir`. Returns true when the report holds
/// error-level findings.
bool run_rulecheck(const std::string& subject, const core::EngineConfig& config, bool builtin,
                   bool as_json, const std::string& witness_dir) {
  // The fuzzer's measured coverage map describes the builtin testbed deck;
  // cross-checking it against a user-supplied deck would flag every
  // difference as "stale". Custom configs get the structural R1..R7 passes
  // (plus R8's dead/steer classification over an empty map, i.e. skipped).
  analysis::RuleCheckReport report = builtin ? scenario::check_rules_with_coverage(config)
                                             : analysis::check_rules(config, {});

  if (as_json) {
    json::Value doc = analysis::rulecheck_to_json(report);
    json::Object wrapped;
    wrapped["subject"] = subject + " · rulebase";
    for (const auto& [key, value] : doc.as_object()) wrapped[key] = value;
    std::printf("%s\n", json::serialize_pretty(json::Value(std::move(wrapped))).c_str());
  } else if (report.findings.empty()) {
    std::printf("%s · rulebase: certified clean (R1..R8)\n", subject.c_str());
  } else {
    std::printf("%s · rulebase:\n", subject.c_str());
    for (const analysis::RuleFinding& f : report.findings) {
      std::printf("  %s\n", f.diagnostic.format().c_str());
      if (f.witness) {
        for (const analysis::WitnessStep& step : f.witness->steps) {
          std::printf("    witness: %s => %s\n", step.cmd.describe().c_str(),
                      step.expect_rule.empty() ? "admitted" : step.expect_rule.c_str());
        }
      }
      if (!f.proof.empty()) std::printf("    proof: %s\n", f.proof.c_str());
    }
  }

  if (!witness_dir.empty()) {
    std::filesystem::create_directories(witness_dir);
    std::size_t index = 0;
    for (const analysis::RuleFinding& f : report.findings) {
      if (!f.witness && f.proof.empty()) continue;
      char name[64];
      std::snprintf(name, sizeof(name), "witness_%03zu_%s", index++,
                    f.diagnostic.rule.c_str());
      json::Value doc = scenario::witness_entry_to_json(name, config, f);
      std::ofstream out(std::filesystem::path(witness_dir) / (std::string(name) + ".json"));
      out << json::serialize_pretty(doc) << "\n";
      if (!out) {
        std::fprintf(stderr, "error: cannot write witness '%s' under '%s'\n", name,
                     witness_dir.c_str());
        std::exit(2);
      }
    }
    std::printf("%s · rulebase: wrote %zu witness file(s) to %s\n", subject.c_str(), index,
                witness_dir.c_str());
  }
  return report.has_errors();
}

int demo_bugs(const core::EngineConfig& config, const analysis::AnalyzeOptions& options,
              bool as_json) {
  sim::LabBackend backend(sim::testbed_profile());
  sim::build_hein_testbed_deck(backend);
  for (const bugs::BugSpec& bug : bugs::bug_catalogue()) {
    sim::LabBackend staging(sim::testbed_profile());
    sim::build_hein_testbed_deck(staging);
    std::vector<dev::Command> stream = bug.build(staging);
    analysis::AnalysisReport report = analysis::analyze_stream(config, stream, options);
    print_report(bug.id + " — " + bug.name, report, as_json);
  }
  return 0;
}

/// --fleet mode: phase-1 summaries for every campaign stream (script streams
/// go through the full abstract interpreter, command streams through the
/// degenerate one), then the phase-2 interference checks. Prints each
/// stream's own single-stream report followed by the campaign report.
bool lint_fleet(const core::EngineConfig& config, const std::string& path,
                const analysis::AnalyzeOptions& options, bool as_json, bool strict,
                bool shard_plan, const analysis::ShardPlanOptions& plan_options) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  fleet::CampaignSpec campaign;
  try {
    campaign = fleet::load_campaign(json::parse(buffer.str()));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: cannot load campaign '%s': %s\n", path.c_str(), e.what());
    std::exit(2);
  }

  bool failed = false;
  std::vector<analysis::StreamSummary> summaries;
  summaries.reserve(campaign.streams.size());
  for (const fleet::CampaignStreamSpec& stream : campaign.streams) {
    analysis::AnalysisReport per_stream;
    if (!stream.commands.empty() || stream.script.empty()) {
      summaries.push_back(analysis::summarize_stream(config, stream.name, stream.commands,
                                                     options, &per_stream));
    } else {
      summaries.push_back(
          analysis::summarize_script(config, stream.name, stream.script, options, &per_stream));
    }
    failed |= per_stream.has_errors() || (strict && per_stream.truncated);
    print_report(path + " · stream '" + stream.name + "'", per_stream, as_json);
  }
  analysis::AnalysisReport interference =
      analysis::check_interference(config, summaries, options);
  failed |= interference.has_errors() || (strict && interference.truncated);
  print_report(path + " · campaign interference", interference, as_json);

  if (shard_plan) {
    analysis::ShardPlan plan = analysis::plan_shards(config, summaries, plan_options);
    failed |= strict && plan.truncated;
    if (as_json) {
      json::Value doc = analysis::plan_to_json(plan);
      json::Object wrapped;
      wrapped["subject"] = path + " · shard plan";
      for (const auto& [key, value] : doc.as_object()) wrapped[key] = value;
      std::printf("%s\n", json::serialize_pretty(json::Value(std::move(wrapped))).c_str());
    } else {
      std::printf("%s · shard plan\n%s", path.c_str(), analysis::format_plan(plan).c_str());
    }
  }
  return failed;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  std::string fleet_path;
  bool as_json = false;
  bool config_only = false;
  bool run_rules = false;
  std::string witness_dir;
  bool run_demo_bugs = false;
  bool strict = false;
  bool shard_plan = false;
  analysis::AnalyzeOptions options;
  analysis::ShardPlanOptions plan_options;
  std::vector<std::string> scripts;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout, argv[0]);
      return 0;
    }
    if (arg == "--json") {
      as_json = true;
    } else if (arg == "--config-only") {
      config_only = true;
    } else if (arg == "--rules") {
      run_rules = true;
    } else if (arg == "--witness-dir") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --witness-dir needs a directory argument\n");
        return 2;
      }
      witness_dir = argv[++i];
    } else if (arg == "--demo-bugs") {
      run_demo_bugs = true;
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "--shard-plan") {
      shard_plan = true;
    } else if (arg == "--max-shard-streams") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --max-shard-streams needs a number argument\n");
        return 2;
      }
      int n = std::atoi(argv[++i]);
      if (n < 0) {
        std::fprintf(stderr, "error: --max-shard-streams must be >= 0\n");
        return 2;
      }
      plan_options.max_shard_streams = static_cast<std::size_t>(n);
    } else if (arg == "--max-diagnostics") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --max-diagnostics needs a number argument\n");
        return 2;
      }
      options.max_diagnostics = std::atoi(argv[++i]);
      if (options.max_diagnostics < 0) {
        std::fprintf(stderr, "error: --max-diagnostics must be >= 0\n");
        return 2;
      }
    } else if (arg == "--fleet") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --fleet needs a campaign file argument\n");
        return 2;
      }
      fleet_path = argv[++i];
    } else if (arg == "--config") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --config needs a file argument\n");
        return 2;
      }
      config_path = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      print_usage(stderr, argv[0]);
      return 2;
    } else {
      scripts.push_back(arg);
    }
  }
  if (scripts.empty() && !config_only && !run_demo_bugs && !run_rules && fleet_path.empty()) {
    print_usage(stderr, argv[0]);
    return 2;
  }
  if (shard_plan && fleet_path.empty()) {
    std::fprintf(stderr, "error: --shard-plan requires --fleet <campaign.json>\n");
    return 2;
  }
  if (!witness_dir.empty() && !run_rules) {
    std::fprintf(stderr, "error: --witness-dir requires --rules\n");
    return 2;
  }

  core::EngineConfig config;
  json::Value config_doc;  // raw document, for keys EngineConfig does not keep
  if (config_path.empty()) {
    config = builtin_testbed_config();
  } else {
    std::ifstream in(config_path);
    if (!in) {
      std::fprintf(stderr, "error: cannot open '%s'\n", config_path.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
      config_doc = json::parse(buffer.str());
      config = core::config_from_json(config_doc);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: cannot load config '%s': %s\n", config_path.c_str(),
                   e.what());
      return 2;
    }
  }

  bool failed = false;

  // The configuration lint always runs: a script verdict against an
  // inconsistent config is meaningless.
  analysis::AnalysisReport config_report = analysis::lint_config(config);

  // CFG11 — recovery-policy lint, when the config carries a "recovery"
  // object (the RecoveryPolicy a Supervisor would be constructed with).
  if (config_doc.is_object()) {
    if (const json::Value* rec = config_doc.as_object().find("recovery")) {
      try {
        analysis::AnalysisReport rec_report =
            analysis::lint_recovery_policy(recovery::policy_from_json(*rec));
        config_report.diagnostics.insert(config_report.diagnostics.end(),
                                         rec_report.diagnostics.begin(),
                                         rec_report.diagnostics.end());
      } catch (const std::exception& e) {
        config_report.diagnostics.push_back(
            analysis::Diagnostic{analysis::Severity::Error, "CFG11", e.what(), 0});
      }
    }
  }
  failed |= config_report.has_errors() || (strict && config_report.truncated);
  if (config_only || !config_report.diagnostics.empty()) {
    print_report(config_path.empty() ? "<builtin testbed config>" : config_path,
                 config_report, as_json);
  }
  if (run_rules) {
    failed |= run_rulecheck(config_path.empty() ? "<builtin testbed config>" : config_path,
                            config, config_path.empty(), as_json, witness_dir);
  }
  if (config_only || (run_rules && scripts.empty() && !run_demo_bugs && fleet_path.empty())) {
    return failed ? 1 : 0;
  }

  if (run_demo_bugs) {
    demo_bugs(config, options, as_json);
    return failed ? 1 : 0;
  }

  if (!fleet_path.empty()) {
    failed |= lint_fleet(config, fleet_path, options, as_json, strict, shard_plan, plan_options);
  }

  for (const std::string& path : scripts) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    analysis::AnalysisReport report = analysis::analyze_script(config, buffer.str(), options);
    failed |= report.has_errors() || (strict && report.truncated);
    print_report(path, report, as_json);
  }
  return failed ? 1 : 0;
}
