// rabit_validate — check a RABIT lab-configuration file before deployment.
//
// The §V-A pilot study found researchers lose hours to JSON syntax errors
// and sign mistakes; this tool runs the same schema validation RABIT applies
// at load time and reports every issue with its location.
//
// Validation runs in two passes: the JSON schema (shape, types, coordinate
// bounds), then the semantic cross-consistency lint (dangling references,
// shadowed aliases, unreachable sites) that the schema cannot express.
//
//   usage: rabit_validate <config.json>
//          rabit_validate --template > config.json   (emit a starter file)
#include <cstdio>
#include <fstream>
#include <sstream>

#include "analysis/analysis.hpp"
#include "analysis/rulecheck.hpp"
#include "core/config.hpp"
#include "recovery/recovery.hpp"
#include "scenario/fuzz.hpp"
#include "sim/deck.hpp"

using namespace rabit;

namespace {

void print_usage(std::FILE* out, const char* argv0) {
  std::fprintf(out,
               "usage: %s <config.json>\n"
               "       %s --template > config.json   (emit a starter file)\n"
               "       %s --help\n",
               argv0, argv0, argv0);
}

int emit_template() {
  sim::LabBackend backend(sim::testbed_profile());
  sim::build_hein_testbed_deck(backend);
  core::EngineConfig config = core::config_from_backend(backend, core::Variant::Modified);
  std::printf("%s\n", json::serialize_pretty(core::config_to_json(config)).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage(stderr, argv[0]);
    return 2;
  }
  if (std::string(argv[1]) == "--help" || std::string(argv[1]) == "-h") {
    print_usage(stdout, argv[0]);
    return 0;
  }
  if (argc != 2) {
    print_usage(stderr, argv[0]);
    return 2;
  }
  if (std::string(argv[1]) == "--template") return emit_template();

  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", argv[1]);
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  json::Value doc;
  try {
    doc = json::parse(buffer.str());
  } catch (const json::ParseError& e) {
    std::fprintf(stderr, "%s: JSON syntax error at line %d, column %d\n", argv[1], e.line(),
                 e.column());
    std::fprintf(stderr, "  %s\n", e.what());
    return 1;
  }

  auto issues = core::config_schema().validate(doc);
  if (!issues.empty()) {
    std::fprintf(stderr, "%s: %zu schema issue(s):\n", argv[1], issues.size());
    for (const json::SchemaIssue& issue : issues) {
      std::fprintf(stderr, "  %s: %s\n",
                   issue.path.empty() ? "/" : issue.path.c_str(), issue.message.c_str());
    }
    return 1;
  }

  core::EngineConfig config;
  try {
    config = core::config_from_json(doc);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: schema passed but loading failed: %s\n", argv[1], e.what());
    return 1;
  }

  // Second pass: cross-consistency lint (semantic checks beyond the schema).
  analysis::AnalysisReport lint = analysis::lint_config(config);

  // Optional top-level "recovery" object: the RecoveryPolicy the Supervisor
  // would be constructed with. The Supervisor rejects a fatally invalid
  // policy at construction; CFG11 surfaces the same findings pre-flight.
  if (const json::Value* rec = doc.as_object().find("recovery")) {
    try {
      recovery::RecoveryPolicy policy = recovery::policy_from_json(*rec);
      analysis::AnalysisReport rec_lint = analysis::lint_recovery_policy(policy);
      lint.diagnostics.insert(lint.diagnostics.end(), rec_lint.diagnostics.begin(),
                              rec_lint.diagnostics.end());
    } catch (const std::exception& e) {
      lint.diagnostics.push_back(
          analysis::Diagnostic{analysis::Severity::Error, "CFG11", e.what(), 0});
    }
  }

  // Third pass: the rulebase verifier (R1..R7) — certifies the rules
  // themselves (shadowing, contradictions, unsatisfiable preconditions,
  // dangling references, guard/analyzer divergence, coverage gaps,
  // order-dependent thresholds). Findings fold into the lint report;
  // witnesses replay through `rabit_lint --rules`. R8 (dark-key
  // classification) stays out: the fuzzer's measured coverage map
  // describes the builtin testbed deck, and validate's input is always a
  // user-supplied file the map may not apply to.
  analysis::RuleCheckReport rules = analysis::check_rules(config, {});
  for (const analysis::RuleFinding& f : rules.findings) {
    lint.diagnostics.push_back(f.diagnostic);
  }

  lint = analysis::sorted_for_emission(lint);
  for (const analysis::Diagnostic& d : lint.diagnostics) {
    std::fprintf(stderr, "%s: %s %s — %s\n", argv[1],
                 std::string(analysis::to_string(d.severity)).c_str(), d.rule.c_str(),
                 d.message.c_str());
  }
  if (lint.has_errors()) return 1;

  std::size_t arms = 0;
  for (const core::DeviceMeta& m : config.devices) {
    if (m.is_arm) ++arms;
  }
  std::printf("%s: OK — %zu devices (%zu arms), %zu sites, %zu static obstacles, "
              "variant '%s'%s\n",
              argv[1], config.devices.size(), arms, config.sites.size(),
              config.static_obstacles.size(),
              std::string(core::to_string(config.variant)).c_str(),
              lint.diagnostics.empty() ? "" : " (with lint warnings)");
  return 0;
}
