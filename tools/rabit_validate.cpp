// rabit_validate — check a RABIT lab-configuration file before deployment.
//
// The §V-A pilot study found researchers lose hours to JSON syntax errors
// and sign mistakes; this tool runs the same schema validation RABIT applies
// at load time and reports every issue with its location.
//
//   usage: rabit_validate <config.json>
//          rabit_validate --template > config.json   (emit a starter file)
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/config.hpp"
#include "sim/deck.hpp"

using namespace rabit;

namespace {

int emit_template() {
  sim::LabBackend backend(sim::testbed_profile());
  sim::build_hein_testbed_deck(backend);
  core::EngineConfig config = core::config_from_backend(backend, core::Variant::Modified);
  std::printf("%s\n", json::serialize_pretty(core::config_to_json(config)).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <config.json> | --template\n", argv[0]);
    return 2;
  }
  if (std::string(argv[1]) == "--template") return emit_template();

  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", argv[1]);
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  json::Value doc;
  try {
    doc = json::parse(buffer.str());
  } catch (const json::ParseError& e) {
    std::fprintf(stderr, "%s: JSON syntax error at line %d, column %d\n", argv[1], e.line(),
                 e.column());
    std::fprintf(stderr, "  %s\n", e.what());
    return 1;
  }

  auto issues = core::config_schema().validate(doc);
  if (!issues.empty()) {
    std::fprintf(stderr, "%s: %zu schema issue(s):\n", argv[1], issues.size());
    for (const json::SchemaIssue& issue : issues) {
      std::fprintf(stderr, "  %s: %s\n",
                   issue.path.empty() ? "/" : issue.path.c_str(), issue.message.c_str());
    }
    return 1;
  }

  try {
    core::EngineConfig config = core::config_from_json(doc);
    std::size_t arms = 0;
    for (const core::DeviceMeta& m : config.devices) {
      if (m.is_arm) ++arms;
    }
    std::printf("%s: OK — %zu devices (%zu arms), %zu sites, %zu static obstacles, "
                "variant '%s'\n",
                argv[1], config.devices.size(), arms, config.sites.size(),
                config.static_obstacles.size(),
                std::string(core::to_string(config.variant)).c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: schema passed but loading failed: %s\n", argv[1], e.what());
    return 1;
  }
  return 0;
}
