// rabit_fuzz — coverage-guided campaign fuzzing for the scenario factory.
//
// Drives scenario::fuzz(): seed-deterministic generation and mutation of
// whole campaigns (workflow mixes, fault schedules, config perturbations,
// script probes), steered toward still-dark combinations of runtime rules,
// analyzer diagnostics, and recovery/assurance rungs. Any soundness-oracle
// failure (static_miss, interference_miss, shard_divergence,
// certificate_breach, false_alarm, false_halt) is shrunk to a minimal
// reproduction and written as a corpus entry the tier-1 corpus gate replays
// with its verdict pinned.
//
//   usage: rabit_fuzz [--seed N] [--iterations N] [--time-budget-s S]
//                     [--corpus DIR] [--save-repros DIR] [--out FILE]
//                     [--no-shrink] [--min-coverage F]
//          rabit_fuzz --replay <entry.json>     (re-run one corpus entry)
//          rabit_fuzz --replay-seed N           (run one generated scenario)
//          rabit_fuzz --corpus-smoke DIR        (fast corpus gate, no fuzzing)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "scenario/fuzz.hpp"

using namespace rabit;

namespace {

void print_usage(std::FILE* out, const char* argv0) {
  std::fprintf(out,
               "usage: %s [options]\n"
               "  --seed N           master fuzz seed (default 1)\n"
               "  --iterations N     scenario budget (default 200)\n"
               "  --time-budget-s S  wall-clock cap; 0 = iterations only\n"
               "  --corpus DIR       warm-start from checked-in corpus entries\n"
               "  --save-repros DIR  write shrunk failure repros as corpus entries\n"
               "  --out FILE         write the JSON coverage report\n"
               "  --no-shrink        keep failing scenarios unshrunk\n"
               "  --min-coverage F   exit 1 unless coverage_fraction >= F\n"
               "  --replay FILE      re-run one corpus entry, check its pinned verdict\n"
               "  --replay-seed N    run the generated scenario for seed N, print verdict\n"
               "  --corpus-smoke DIR replay a corpus directory, verdicts pinned\n"
               "  --help\n",
               argv0);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void print_verdict(const scenario::ScenarioVerdict& verdict) {
  std::printf("%s\n", json::serialize_pretty(scenario::verdict_to_json(verdict)).c_str());
}

int replay_entry(const scenario::CorpusEntry& entry) {
  std::printf("replay %s: %s\n", entry.name.c_str(), scenario::describe(entry.spec).c_str());
  scenario::ScenarioResult result = scenario::run_scenario(entry.spec);
  if (result.verdict == entry.verdict) {
    std::printf("  verdict pinned (%zu alert(s), %zu oracle failure(s))\n",
                entry.verdict.alerts.size(), entry.verdict.oracle_failures.size());
    return 0;
  }
  std::fprintf(stderr, "  VERDICT DRIFT — recorded:\n%s\n  got:\n%s\n",
               json::serialize_pretty(scenario::verdict_to_json(entry.verdict)).c_str(),
               json::serialize_pretty(scenario::verdict_to_json(result.verdict)).c_str());
  return 1;
}

int replay_file(const std::string& path) {
  json::Value doc = json::parse(read_file(path));
  // Rulebase-verifier witness documents (rabit_lint --rules --witness-dir)
  // replay through a fresh engine instead of a campaign run.
  if (scenario::is_witness_entry(doc)) {
    scenario::WitnessEntryReplay replay = scenario::replay_witness_entry(doc);
    std::printf("witness %s: %s (%s)\n", replay.name.c_str(),
                replay.confirmed ? "CONFIRMED" : "UNCONFIRMED", replay.detail.c_str());
    return replay.confirmed ? 0 : 1;
  }
  // Accept both a full corpus entry and a bare spec (no pinned verdict).
  if (doc.find("spec") != nullptr) {
    return replay_entry(scenario::corpus_entry_from_json(doc));
  }
  scenario::ScenarioSpec spec = scenario::spec_from_json(doc);
  std::printf("replay: %s\n", scenario::describe(spec).c_str());
  print_verdict(scenario::run_scenario(spec).verdict);
  return 0;
}

int replay_seed(std::uint64_t seed) {
  scenario::ScenarioSpec spec = scenario::generate(seed);
  std::printf("seed %llu: %s\n", static_cast<unsigned long long>(seed),
              scenario::describe(spec).c_str());
  print_verdict(scenario::run_scenario(spec).verdict);
  return 0;
}

int corpus_smoke(const std::string& dir) {
  std::vector<scenario::CorpusEntry> corpus = scenario::load_corpus_dir(dir);
  if (corpus.empty()) {
    std::fprintf(stderr, "corpus-smoke: no entries under %s\n", dir.c_str());
    return 2;
  }
  int failures = 0;
  for (const scenario::CorpusEntry& entry : corpus) {
    failures += replay_entry(entry) != 0 ? 1 : 0;
  }
  std::printf("corpus-smoke: %zu entr%s, %d drift(s)\n", corpus.size(),
              corpus.size() == 1 ? "y" : "ies", failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  scenario::FuzzOptions options;
  std::string corpus_dir;
  std::string repro_dir;
  std::string out_path;
  double min_coverage = -1.0;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw std::runtime_error(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--help" || arg == "-h") {
        print_usage(stdout, argv[0]);
        return 0;
      } else if (arg == "--seed") {
        options.seed = std::strtoull(next().c_str(), nullptr, 10);
      } else if (arg == "--iterations") {
        options.iterations = std::strtoull(next().c_str(), nullptr, 10);
      } else if (arg == "--time-budget-s") {
        options.time_budget_s = std::strtod(next().c_str(), nullptr);
      } else if (arg == "--corpus") {
        corpus_dir = next();
      } else if (arg == "--save-repros") {
        repro_dir = next();
      } else if (arg == "--out") {
        out_path = next();
      } else if (arg == "--no-shrink") {
        options.shrink_failures = false;
      } else if (arg == "--min-coverage") {
        min_coverage = std::strtod(next().c_str(), nullptr);
      } else if (arg == "--replay") {
        return replay_file(next());
      } else if (arg == "--replay-seed") {
        return replay_seed(std::strtoull(next().c_str(), nullptr, 10));
      } else if (arg == "--corpus-smoke") {
        return corpus_smoke(next());
      } else {
        std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
        print_usage(stderr, argv[0]);
        return 2;
      }
    }

    if (!corpus_dir.empty()) {
      for (scenario::CorpusEntry& entry : scenario::load_corpus_dir(corpus_dir)) {
        options.corpus.push_back(std::move(entry.spec));
      }
    }

    scenario::FuzzReport report = scenario::fuzz(options);

    std::printf("fuzz: %zu iteration(s) in %.1fs, %zu coverage key(s) (%.0f%% of reachable)\n",
                report.iterations, report.wall_s, report.coverage.size(),
                100.0 * report.coverage_fraction());
    for (const char* family : {"rule:", "diag:", "cfg:", "ifr:", "shard:", "rung:"}) {
      std::printf("  %-7s %zu\n", family, report.coverage.count_prefix(family));
    }
    for (const scenario::CorpusEntry& repro : report.repros) {
      std::printf("  repro %s: %s\n", repro.name.c_str(), scenario::describe(repro.spec).c_str());
      // Repros come from mutation + shrinking, so generate(seed) does not
      // rebuild them; the spec itself is the replay artifact.
      std::printf("    replay: rabit_fuzz --replay <(echo '%s')\n",
                  json::serialize(scenario::spec_to_json(repro.spec)).c_str());
    }

    if (!repro_dir.empty()) {
      for (const scenario::CorpusEntry& repro : report.repros) {
        std::string error;
        if (!scenario::save_corpus_entry(repro_dir, repro, &error)) {
          std::fprintf(stderr, "save-repros: %s\n", error.c_str());
          return 2;
        }
      }
    }
    if (!out_path.empty()) {
      std::ofstream out(out_path);
      out << json::serialize_pretty(report.to_json()) << '\n';
      if (!out.good()) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 2;
      }
    }

    if (!report.repros.empty()) {
      std::fprintf(stderr, "fuzz: %zu soundness repro(s) found\n", report.repros.size());
      return 1;
    }
    if (min_coverage >= 0.0 && report.coverage_fraction() < min_coverage) {
      std::fprintf(stderr, "fuzz: coverage %.2f below required %.2f\n",
                   report.coverage_fraction(), min_coverage);
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rabit_fuzz: %s\n", e.what());
    return 2;
  }
}
