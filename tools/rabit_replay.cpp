// rabit_replay — replay a recorded command trace through RABIT offline.
//
// Given a JSONL trace (the format the Supervisor records and RAD uses), this
// tool replays the raw commands on a fresh testbed deck under a chosen RABIT
// variant and reports what would have been blocked — the "test yesterday's
// experiment against today's rulebase" workflow.
//
//   usage: rabit_replay <trace.jsonl> [initial|modified|modified+sim]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "bugs/bugs.hpp"
#include "trace/trace.hpp"

using namespace rabit;

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3) {
    std::fprintf(stderr, "usage: %s <trace.jsonl> [initial|modified|modified+sim]\n", argv[0]);
    return 2;
  }
  core::Variant variant = core::Variant::Modified;
  if (argc == 3) {
    std::string name = argv[2];
    if (name == "initial") {
      variant = core::Variant::Initial;
    } else if (name == "modified") {
      variant = core::Variant::Modified;
    } else if (name == "modified+sim") {
      variant = core::Variant::ModifiedWithSim;
    } else {
      std::fprintf(stderr, "error: unknown variant '%s'\n", name.c_str());
      return 2;
    }
  }

  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", argv[1]);
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  trace::TraceLog log;
  try {
    log = trace::TraceLog::from_jsonl(buffer.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: malformed trace: %s\n", e.what());
    return 1;
  }
  std::vector<dev::Command> commands;
  commands.reserve(log.size());
  for (const trace::TraceRecord& r : log.records()) commands.push_back(r.command);

  bugs::BugOutcome outcome = bugs::evaluate_stream(commands, variant);
  std::printf("replayed %zu commands under '%s'\n", commands.size(),
              std::string(core::to_string(variant)).c_str());
  std::printf("  executed steps : %zu\n", outcome.report.steps.size());
  std::printf("  alerts         : %zu\n", outcome.report.alerts);
  if (outcome.report.first_alert_step) {
    const trace::SupervisedStep& s = outcome.report.steps[*outcome.report.first_alert_step];
    std::printf("  first alert    : step %zu, %s\n", *outcome.report.first_alert_step,
                s.alert->describe().c_str());
  }
  std::printf("  damage events  : %zu\n", outcome.report.damage.size());
  for (const sim::DamageEvent& e : outcome.report.damage) {
    std::printf("    [%s] %s\n", std::string(dev::to_string(e.severity)).c_str(),
                e.description.c_str());
  }
  return outcome.report.alerts > 0 || !outcome.report.damage.empty() ? 1 : 0;
}
