// rabit_replay — replay a recorded command trace through RABIT offline.
//
// Given a JSONL trace (the format the Supervisor records and RAD uses), this
// tool replays the raw commands on a fresh testbed deck under a chosen RABIT
// variant and reports what would have been blocked — the "test yesterday's
// experiment against today's rulebase" workflow.
//
// Exit codes match rabit_validate: 0 = clean replay, 1 = alerts or damage,
// 2 = usage or parse error.
//
//   usage: rabit_replay <trace.jsonl> [initial|modified|modified+sim]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "bugs/bugs.hpp"
#include "obs/obs.hpp"
#include "trace/trace.hpp"

using namespace rabit;

namespace {

void print_usage(std::FILE* out, const char* argv0) {
  std::fprintf(out,
               "usage: %s [--lenient] [--assurance] [--obs-out <dir>] <trace.jsonl> "
               "[initial|modified|modified+sim]\n"
               "       %s --help\n"
               "\n"
               "Replays the commands of a recorded JSONL trace on a fresh testbed deck\n"
               "under the chosen RABIT variant (default: modified) and reports what the\n"
               "current rulebase would have blocked.\n"
               "\n"
               "  --lenient        skip malformed trace lines (reported with their line\n"
               "                   numbers) instead of aborting on the first one\n"
               "  --assurance      enable the runtime-assurance decision module (needs\n"
               "                   the modified+sim variant): motions whose barrier\n"
               "                   profile dips below the floor are demoted to the\n"
               "                   verified-safe controller instead of executed; the\n"
               "                   summary then reports demotions and each switching\n"
               "                   point\n"
               "  --obs-out <dir>  record per-command observability and write\n"
               "                   events.jsonl, trace.json (Chrome trace, open in\n"
               "                   Perfetto) and metrics.prom into <dir>\n"
               "\n"
               "exit codes: 0 = clean replay, 1 = alerts or damage, 2 = usage/parse error\n",
               argv0, argv0);
}

}  // namespace

int main(int argc, char** argv) {
  bool lenient = false;
  bool assurance_on = false;
  std::string trace_path;
  std::string obs_dir;
  core::Variant variant = core::Variant::Modified;
  bool variant_given = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout, argv[0]);
      return 0;
    }
    if (arg == "--lenient") {
      lenient = true;
    } else if (arg == "--assurance") {
      assurance_on = true;
    } else if (arg == "--obs-out") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --obs-out needs a directory argument\n");
        return 2;
      }
      obs_dir = argv[++i];
    } else if (trace_path.empty()) {
      trace_path = arg;
    } else if (!variant_given) {
      variant_given = true;
      if (arg == "initial") {
        variant = core::Variant::Initial;
      } else if (arg == "modified") {
        variant = core::Variant::Modified;
      } else if (arg == "modified+sim") {
        variant = core::Variant::ModifiedWithSim;
      } else {
        std::fprintf(stderr, "error: unknown variant '%s'\n", arg.c_str());
        return 2;
      }
    } else {
      print_usage(stderr, argv[0]);
      return 2;
    }
  }
  if (trace_path.empty()) {
    print_usage(stderr, argv[0]);
    return 2;
  }

  std::ifstream in(trace_path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", trace_path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  trace::TraceLog log;
  std::size_t skipped = 0;
  try {
    log = trace::TraceLog::from_jsonl(buffer.str(), /*strict=*/!lenient, &skipped);
  } catch (const trace::TraceParseError& e) {
    std::fprintf(stderr, "error: %s: %s\n", trace_path.c_str(), e.what());
    std::fprintf(stderr, "hint: re-run with --lenient to skip malformed lines\n");
    return 2;
  }
  if (skipped > 0) {
    std::fprintf(stderr, "warning: skipped %zu malformed trace line%s\n", skipped,
                 skipped == 1 ? "" : "s");
  }
  std::vector<dev::Command> commands;
  commands.reserve(log.size());
  for (const trace::TraceRecord& r : log.records()) {
    switch (r.outcome) {
      case trace::Outcome::TransientRetry:
      case trace::Outcome::StatusRepoll:
      case trace::Outcome::SafeState:
      case trace::Outcome::Quarantined:
        // Recovery-ladder artifacts, not script commands: the script command
        // itself has its own record with the final outcome. (A Demoted record
        // IS the script command — the motion the assurance layer refused to
        // forward — so it replays like any other.)
        continue;
      default:
        commands.push_back(r.command);
    }
  }

  obs::Collector events;
  obs::Registry metrics;
  trace::Supervisor::Options sup_options;
  if (!obs_dir.empty()) {
    sup_options.obs_sink = &events;
    sup_options.obs_metrics = &metrics;
  }
  if (assurance_on) {
    if (variant != core::Variant::ModifiedWithSim) {
      std::fprintf(stderr,
                   "error: --assurance needs the modified+sim variant (the decision "
                   "module queries the Extended Simulator's margin profiles)\n");
      return 2;
    }
    sup_options.assurance = assurance::AssuranceConfig{};
  }

  bugs::BugOutcome outcome = bugs::evaluate_stream(commands, variant, sup_options);
  if (!obs_dir.empty()) {
    std::string error;
    if (!obs::write_export_dir(obs_dir, events, metrics, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
    std::printf("observability written to %s/{events.jsonl,trace.json,metrics.prom}\n",
                obs_dir.c_str());
  }
  std::printf("replayed %zu commands under '%s'\n", commands.size(),
              std::string(core::to_string(variant)).c_str());
  std::printf("  executed steps : %zu\n", outcome.report.steps.size());
  std::printf("  alerts         : %zu\n", outcome.report.alerts);
  if (outcome.report.first_alert_step) {
    const trace::SupervisedStep& s = outcome.report.steps[*outcome.report.first_alert_step];
    std::printf("  first alert    : step %zu, %s\n", *outcome.report.first_alert_step,
                s.alert->describe().c_str());
  }
  std::printf("  damage events  : %zu\n", outcome.report.damage.size());
  for (const sim::DamageEvent& e : outcome.report.damage) {
    std::printf("    [%s] %s\n", std::string(dev::to_string(e.severity)).c_str(),
                e.description.c_str());
  }
  if (assurance_on && outcome.report.recovery) {
    std::printf("  demotions      : %zu\n", outcome.report.recovery->demotions);
    for (const assurance::AssuranceEvent& e : outcome.report.recovery->assurance) {
      std::printf("    %s\n", e.describe().c_str());
    }
  }
  return outcome.report.alerts > 0 || !outcome.report.damage.empty() ? 1 : 0;
}
