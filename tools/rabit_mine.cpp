// rabit_mine — mine precedence rules from lab command traces (§II-A).
//
// With no arguments, generates a synthetic Robot Arm Dataset and mines it.
// Given JSONL trace files, mines those instead (one session per file).
//
//   usage: rabit_mine [--days N] [--min-support N] [--min-confidence F]
//                     [trace.jsonl ...]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "rad/rad.hpp"
#include "sim/deck.hpp"
#include "trace/trace.hpp"

using namespace rabit;

int main(int argc, char** argv) {
  int days = 90;
  rad::MinerOptions miner;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--days") {
      days = std::atoi(next());
    } else if (arg == "--min-support") {
      miner.min_support = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--min-confidence") {
      miner.min_confidence = std::atof(next());
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }

  sim::LabBackend deck(sim::testbed_profile());
  sim::build_hein_testbed_deck(deck);

  std::vector<std::vector<rad::Event>> sessions;
  if (files.empty()) {
    rad::GeneratorOptions gen;
    gen.days = days;
    for (const rad::TraceSession& s : rad::generate_dataset(deck, gen)) {
      sessions.push_back(rad::abstract_events(s.commands, deck));
    }
    std::printf("synthetic dataset: %d days, %zu sessions\n", days, sessions.size());
  } else {
    for (const std::string& path : files) {
      std::ifstream in(path);
      if (!in) {
        std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
        return 2;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      trace::TraceLog log = trace::TraceLog::from_jsonl(buffer.str());
      std::vector<dev::Command> commands;
      for (const trace::TraceRecord& r : log.records()) commands.push_back(r.command);
      sessions.push_back(rad::abstract_events(commands, deck));
    }
    std::printf("loaded %zu trace session(s)\n", sessions.size());
    // Small hand-recorded datasets need a proportionally lower floor.
    miner.min_support = std::min(miner.min_support, std::max<std::size_t>(1, sessions.size()));
  }

  auto mined = rad::mine_rules(sessions, miner);
  std::printf("mined %zu rule(s) (support >= %zu, confidence >= %.2f):\n", mined.size(),
              miner.min_support, miner.min_confidence);
  for (const rad::MinedRule& r : mined) {
    std::printf("  %s\n", r.describe().c_str());
  }
  return 0;
}
