// Transient-fault schedule + supervised-recovery ladder tests: deterministic
// backoff, transient absorption (busy / dead-action / stale-status),
// watchdog and permanent-fault escalation, degraded-mode fallback, and the
// seed-reproducibility guarantee (same seed ⇒ same trace JSONL).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "analysis/analysis.hpp"
#include "core/engine.hpp"
#include "recovery/recovery.hpp"
#include "script/workflows.hpp"
#include "sim/deck.hpp"
#include "trace/trace.hpp"

namespace rabit::trace {
namespace {

using dev::Command;
using dev::FaultSchedule;
using dev::TransientFault;
using dev::TransientKind;
namespace ids = sim::deck_ids;

Command make_cmd(std::string device, std::string action, json::Object args = {}) {
  Command c;
  c.device = std::move(device);
  c.action = std::move(action);
  c.args = json::Value(std::move(args));
  return c;
}

json::Object door(const char* state) {
  json::Object o;
  o["state"] = std::string(state);
  return o;
}

TransientFault busy_fault(const char* device, const char* action, std::size_t clears_after) {
  TransientFault f;
  f.device = device;
  f.action = action;
  f.kind = TransientKind::FirmwareBusy;
  f.clear_after_attempts = clears_after;
  return f;
}

Supervisor::Options with_recovery() {
  Supervisor::Options opts;
  opts.recovery = recovery::RecoveryPolicy{};
  return opts;
}

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() : backend(sim::testbed_profile()) {
    sim::build_hein_testbed_deck(backend);
  }

  void make_engine(core::Variant variant = core::Variant::Modified) {
    engine = std::make_unique<core::RabitEngine>(core::config_from_backend(backend, variant));
  }

  sim::LabBackend backend;
  std::unique_ptr<core::RabitEngine> engine;
};

// --- deterministic backoff ---------------------------------------------------

TEST(BackoffClock, DeterministicPerSeed) {
  recovery::RecoveryPolicy policy;
  recovery::BackoffClock a(policy);
  recovery::BackoffClock b(policy);
  for (std::size_t attempt = 1; attempt <= 5; ++attempt) {
    EXPECT_DOUBLE_EQ(a.wait_s(attempt), b.wait_s(attempt)) << "attempt " << attempt;
  }
  // reset() replays the stream from the start.
  double first = b.wait_s(1);
  a.reset();
  EXPECT_DOUBLE_EQ(a.wait_s(1), recovery::BackoffClock(policy).wait_s(1));
  (void)first;
}

TEST(BackoffClock, GrowsExponentiallyWithinJitterBand) {
  recovery::RecoveryPolicy policy;
  policy.backoff_jitter = 0.25;
  recovery::BackoffClock clock(policy);
  for (std::size_t attempt = 1; attempt <= 4; ++attempt) {
    double nominal = policy.backoff_base_s;
    for (std::size_t i = 1; i < attempt; ++i) nominal *= policy.backoff_factor;
    double w = clock.wait_s(attempt);
    EXPECT_GE(w, nominal * 0.75);
    EXPECT_LE(w, nominal * 1.25);
  }
}

TEST(BackoffClock, ResetReplaysTheFullJitterStream) {
  recovery::RecoveryPolicy policy;
  recovery::BackoffClock clock(policy);
  std::vector<double> first;
  for (std::size_t attempt = 1; attempt <= 6; ++attempt) first.push_back(clock.wait_s(attempt));
  clock.reset();
  for (std::size_t attempt = 1; attempt <= 6; ++attempt) {
    EXPECT_DOUBLE_EQ(clock.wait_s(attempt), first[attempt - 1]) << "attempt " << attempt;
  }
}

// --- policy validation + CFG11 lint ------------------------------------------

TEST(RecoveryPolicyValidation, DefaultPolicyIsClean) {
  EXPECT_TRUE(recovery::validate(recovery::RecoveryPolicy{}).empty());
}

TEST(RecoveryPolicyValidation, EveryFatalRuleFires) {
  recovery::RecoveryPolicy bad;
  bad.backoff_base_s = 0.0;
  bad.backoff_factor = 0.5;
  bad.backoff_jitter = 1.0;
  bad.repoll_interval_s = 0.0;
  bad.watchdog_timeout_s = -1.0;
  std::vector<recovery::PolicyIssue> issues = recovery::validate(bad);
  ASSERT_EQ(issues.size(), 5u);
  for (const recovery::PolicyIssue& issue : issues) EXPECT_TRUE(issue.fatal) << issue.message;
}

TEST(RecoveryPolicyValidation, ShortWatchdogIsAdvisoryOnly) {
  recovery::RecoveryPolicy tight;
  tight.watchdog_timeout_s = recovery::worst_case_ladder_s(tight) / 2.0;
  std::vector<recovery::PolicyIssue> issues = recovery::validate(tight);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_FALSE(issues[0].fatal);
  EXPECT_NE(issues[0].message.find("worst-case"), std::string::npos);
}

TEST(RecoveryPolicyValidation, ExactBoundaryValuesAreClean) {
  // Every validate() comparison sits exactly at its threshold: factor == 1,
  // jitter == 0, watchdog == one worst-case ladder. All are the last
  // admissible values, so the policy must lint clean — a drift to >= / <=
  // in any comparison flips this test.
  recovery::RecoveryPolicy edge;
  edge.backoff_factor = 1.0;
  edge.backoff_jitter = 0.0;
  edge.watchdog_timeout_s = recovery::worst_case_ladder_s(edge);
  EXPECT_TRUE(recovery::validate(edge).empty());
  EXPECT_TRUE(analysis::lint_recovery_policy(edge).diagnostics.empty());

  // One ulp-scale step past the jitter boundary is fatal: jitter == 1 can
  // zero the wait entirely.
  recovery::RecoveryPolicy over = edge;
  over.backoff_jitter = 1.0;
  // Jitter feeds the worst-case ladder; re-pin the watchdog at the new
  // ladder so only the jitter rule decides the outcome.
  over.watchdog_timeout_s = recovery::worst_case_ladder_s(over);
  std::vector<recovery::PolicyIssue> issues = recovery::validate(over);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_TRUE(issues[0].fatal);
  analysis::AnalysisReport report = analysis::lint_recovery_policy(over);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].severity, analysis::Severity::Error);
  EXPECT_EQ(report.diagnostics[0].rule, "CFG11");
}

TEST(RecoveryPolicyValidation, Cfg11LintMirrorsValidate) {
  recovery::RecoveryPolicy bad;
  bad.backoff_factor = 0.9;      // fatal → Error
  bad.watchdog_timeout_s = 0.1;  // shorter than one worst-case ladder → Warning
  analysis::AnalysisReport report = analysis::lint_recovery_policy(bad);
  ASSERT_EQ(report.diagnostics.size(), 2u);
  EXPECT_TRUE(report.has_errors());
  for (const analysis::Diagnostic& d : report.diagnostics) EXPECT_EQ(d.rule, "CFG11");
  EXPECT_EQ(report.diagnostics[0].severity, analysis::Severity::Error);
  EXPECT_EQ(report.diagnostics[1].severity, analysis::Severity::Warning);
  EXPECT_TRUE(analysis::lint_recovery_policy(recovery::RecoveryPolicy{}).diagnostics.empty());
}

// --- transient absorption ----------------------------------------------------

TEST_F(RecoveryTest, FirmwareBusyAbsorbedByRetries) {
  FaultSchedule schedule;
  schedule.add(busy_fault(ids::kDosingDevice, "set_door", 2));
  backend.set_fault_schedule(std::move(schedule));

  make_engine();
  Supervisor sup(engine.get(), &backend, with_recovery());
  sup.start();
  SupervisedStep step = sup.step(make_cmd(ids::kDosingDevice, "set_door", door("open")));

  EXPECT_FALSE(step.alert.has_value());
  EXPECT_FALSE(step.halted);
  EXPECT_EQ(step.retries, 2u);
  ASSERT_TRUE(step.exec.has_value());
  EXPECT_TRUE(step.exec->executed);
  EXPECT_EQ(sup.recovery_report().retries, 2u);
  EXPECT_EQ(sup.recovery_report().transients_absorbed, 1u);
  EXPECT_GT(sup.recovery_report().recovery_time_s, 0.0);

  // Retry attempts are first-class trace entries, before the final record.
  const auto& records = sup.log().records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].outcome, Outcome::TransientRetry);
  EXPECT_EQ(records[0].attempt, 1u);
  EXPECT_EQ(records[1].outcome, Outcome::TransientRetry);
  EXPECT_EQ(records[1].attempt, 2u);
  EXPECT_EQ(records[2].outcome, Outcome::Executed);
}

TEST_F(RecoveryTest, FirmwareBusyWithoutRecoveryIsAFalseHalt) {
  FaultSchedule schedule;
  schedule.add(busy_fault(ids::kDosingDevice, "set_door", 2));
  backend.set_fault_schedule(std::move(schedule));

  make_engine();
  Supervisor sup(engine.get(), &backend);  // paper policy: alert-and-stop
  sup.start();
  SupervisedStep step = sup.step(make_cmd(ids::kDosingDevice, "set_door", door("open")));

  // The transient rejection leaves the door closed while RABIT expected it
  // open — without recovery the run halts on a fault a retry would absorb.
  ASSERT_TRUE(step.alert.has_value());
  EXPECT_EQ(step.alert->kind, core::AlertKind::DeviceMalfunction);
  EXPECT_TRUE(step.halted);
}

TEST_F(RecoveryTest, DeadActionRetriedToCompletion) {
  TransientFault f;
  f.device = ids::kDosingDevice;
  f.action = "set_door";
  f.kind = TransientKind::DeadAction;
  f.clear_after_attempts = 1;
  FaultSchedule schedule;
  schedule.add(f);
  backend.set_fault_schedule(std::move(schedule));

  make_engine();
  Supervisor sup(engine.get(), &backend, with_recovery());
  sup.start();
  SupervisedStep step = sup.step(make_cmd(ids::kDosingDevice, "set_door", door("open")));

  EXPECT_FALSE(step.alert.has_value());
  EXPECT_GE(step.repolls, 1u);  // the divergence was re-polled before retrying
  EXPECT_GE(step.retries, 1u);
  const auto& hp = backend.registry().at(ids::kDosingDevice);
  EXPECT_EQ(hp.observed_state().at("doorStatus").as_string(), "open");
  EXPECT_EQ(engine->stats().malfunction_alerts, 0u);
  EXPECT_GT(engine->stats().status_repolls, 0u);
}

TEST_F(RecoveryTest, StaleStatusClearedByRepollAlone) {
  TransientFault f;
  f.device = ids::kDosingDevice;
  f.kind = TransientKind::StaleStatus;
  f.clear_after_attempts = 3;  // start() reads once; the verify read is stale
  FaultSchedule schedule;
  schedule.add(f);
  backend.set_fault_schedule(std::move(schedule));

  make_engine();
  Supervisor sup(engine.get(), &backend, with_recovery());
  sup.start();
  SupervisedStep step = sup.step(make_cmd(ids::kDosingDevice, "set_door", door("open")));

  EXPECT_FALSE(step.alert.has_value());
  EXPECT_GE(step.repolls, 1u);
  EXPECT_EQ(step.retries, 0u);  // no command re-issue: the read was the lie
  EXPECT_EQ(sup.recovery_report().transients_absorbed, 1u);
}

TEST_F(RecoveryTest, StatusTimeoutSubstitutesCachedSnapshot) {
  (void)backend.fetch_status();  // prime the cache

  TransientFault f;
  f.device = ids::kHotplate;
  f.kind = TransientKind::StatusTimeout;
  f.clear_after_attempts = 1;
  FaultSchedule schedule;
  schedule.add(f);
  backend.set_fault_schedule(std::move(schedule));

  sim::LabBackend::StatusFetch fetch = backend.fetch_status();
  ASSERT_EQ(fetch.timed_out.size(), 1u);
  EXPECT_EQ(fetch.timed_out[0], ids::kHotplate);
  EXPECT_FALSE(fetch.complete());
  EXPECT_TRUE(fetch.snapshot.contains(ids::kHotplate));  // cache substituted

  sim::LabBackend::StatusFetch after = backend.fetch_status();
  EXPECT_TRUE(after.complete());  // fault cleared by attempts
}

// --- escalation --------------------------------------------------------------

TEST_F(RecoveryTest, PermanentFaultEscalatesThroughTheLadder) {
  dev::FaultPlan plan;
  plan.dead_actions = {"set_door"};
  FaultSchedule schedule;
  schedule.add_permanent(ids::kDosingDevice, plan);
  backend.set_fault_schedule(std::move(schedule));

  make_engine();
  Supervisor sup(engine.get(), &backend, with_recovery());
  RunReport report = sup.run({make_cmd(ids::kDosingDevice, "set_door", door("open"))});

  EXPECT_TRUE(report.halted);
  EXPECT_EQ(report.alerts, 1u);
  ASSERT_TRUE(report.recovery.has_value());
  const recovery::RecoveryReport& rec = *report.recovery;
  EXPECT_TRUE(rec.halted);
  EXPECT_TRUE(rec.escalated());
  ASSERT_EQ(rec.quarantined.size(), 1u);
  EXPECT_EQ(rec.quarantined[0], ids::kDosingDevice);
  EXPECT_TRUE(rec.safe_state_executed);
  EXPECT_GT(rec.retries, 0u);
  EXPECT_GT(rec.repolls, 0u);

  // Ladder events land in the trace as first-class records.
  bool saw_quarantine = false, saw_safe_state = false;
  for (const TraceRecord& r : sup.log().records()) {
    saw_quarantine |= r.outcome == Outcome::Quarantined;
    saw_safe_state |= r.outcome == Outcome::SafeState;
  }
  EXPECT_TRUE(saw_quarantine);
  EXPECT_TRUE(saw_safe_state);

  // The report serializes and describes itself.
  json::Value doc = rec.to_json();
  EXPECT_TRUE(doc.is_object());
  EXPECT_NE(rec.describe().find("quarantined"), std::string::npos);
}

TEST_F(RecoveryTest, WatchdogExpiryStopsRetrying) {
  TransientFault f = busy_fault(ids::kDosingDevice, "set_door", 0);  // never clears
  FaultSchedule schedule;
  schedule.add(f);
  backend.set_fault_schedule(std::move(schedule));

  recovery::RecoveryPolicy policy;
  // Zero is now rejected by Supervisor's policy validation; any budget
  // smaller than one command's modeled latency expires before the first
  // retry is considered, which is the behavior under test.
  policy.watchdog_timeout_s = 1e-6;
  Supervisor::Options opts;
  opts.recovery = policy;

  make_engine();
  Supervisor sup(engine.get(), &backend, opts);
  sup.start();
  SupervisedStep step = sup.step(make_cmd(ids::kDosingDevice, "set_door", door("open")));

  ASSERT_TRUE(step.alert.has_value());
  EXPECT_TRUE(step.halted);
  EXPECT_EQ(step.retries, 0u);  // the watchdog forbade every retry
  EXPECT_GE(sup.recovery_report().watchdog_expirations, 1u);
}

TEST_F(RecoveryTest, WatchdogBoundaryIsStrict) {
  // The retry gate is `clock < deadline`, with the deadline fixed when the
  // command enters the ladder. A rejected attempt charges exactly one
  // command latency, so a budget of exactly that latency lands the clock ON
  // the deadline — and the strict comparison forbids the retry.
  FaultSchedule schedule;
  schedule.add(busy_fault(ids::kDosingDevice, "set_door", 0));  // never clears
  backend.set_fault_schedule(std::move(schedule));

  recovery::RecoveryPolicy policy;
  policy.watchdog_timeout_s = sim::testbed_profile().command_latency_s;
  Supervisor::Options opts;
  opts.recovery = policy;

  make_engine();
  Supervisor sup(engine.get(), &backend, opts);
  sup.start();
  SupervisedStep step = sup.step(make_cmd(ids::kDosingDevice, "set_door", door("open")));

  EXPECT_TRUE(step.halted);
  EXPECT_EQ(step.retries, 0u);  // at the exact boundary, < is false
  EXPECT_GE(sup.recovery_report().watchdog_expirations, 1u);
}

TEST_F(RecoveryTest, WatchdogJustPastBoundaryAdmitsExactlyOneRetry) {
  FaultSchedule schedule;
  schedule.add(busy_fault(ids::kDosingDevice, "set_door", 0));  // never clears
  backend.set_fault_schedule(std::move(schedule));

  recovery::RecoveryPolicy policy;
  // Epsilon past the first attempt's cost: retry #1 is admitted, and the
  // retry itself (backoff wait + command latency) blows the budget long
  // before retry #2 is considered.
  policy.watchdog_timeout_s = sim::testbed_profile().command_latency_s + 1e-3;
  Supervisor::Options opts;
  opts.recovery = policy;

  make_engine();
  Supervisor sup(engine.get(), &backend, opts);
  sup.start();
  SupervisedStep step = sup.step(make_cmd(ids::kDosingDevice, "set_door", door("open")));

  EXPECT_TRUE(step.halted);
  EXPECT_EQ(step.retries, 1u);
  EXPECT_GE(sup.recovery_report().watchdog_expirations, 1u);
}

TEST_F(RecoveryTest, ZeroRetryBudgetEscalatesImmediately) {
  FaultSchedule schedule;
  schedule.add(busy_fault(ids::kDosingDevice, "set_door", 0));  // never clears
  backend.set_fault_schedule(std::move(schedule));

  recovery::RecoveryPolicy policy;
  policy.max_retries = 0;  // documented: 0 disables retries
  Supervisor::Options opts;
  opts.recovery = policy;

  make_engine();
  Supervisor sup(engine.get(), &backend, opts);
  sup.start();
  SupervisedStep step = sup.step(make_cmd(ids::kDosingDevice, "set_door", door("open")));

  ASSERT_TRUE(step.alert.has_value());
  EXPECT_TRUE(step.halted);
  EXPECT_EQ(step.retries, 0u);
  const recovery::RecoveryReport& rec = sup.recovery_report();
  EXPECT_TRUE(rec.escalated());
  ASSERT_EQ(rec.quarantined.size(), 1u);
  EXPECT_EQ(rec.quarantined[0], ids::kDosingDevice);
  EXPECT_TRUE(rec.safe_state_executed);
  EXPECT_EQ(rec.watchdog_expirations, 0u);  // budget, not time, ended the ladder
}

TEST_F(RecoveryTest, StaleStatusClearingOnFinalRepollStillAbsorbs) {
  recovery::RecoveryPolicy policy;  // max_status_repolls = 3

  TransientFault f;
  f.device = ids::kDosingDevice;
  f.kind = TransientKind::StaleStatus;
  // Reads: start() (fresh — nothing cached yet), the verify read, then the
  // re-polls; the fault stays stale through read #clear_after_attempts.
  // Clearing on the LAST allowed re-poll is the boundary the stale-read
  // filter was sized for: one read later and the divergence would cost a
  // command re-issue.
  f.clear_after_attempts = 1 + policy.max_status_repolls;
  FaultSchedule schedule;
  schedule.add(f);
  backend.set_fault_schedule(std::move(schedule));

  make_engine();
  Supervisor::Options opts;
  opts.recovery = policy;
  Supervisor sup(engine.get(), &backend, opts);
  sup.start();
  SupervisedStep step = sup.step(make_cmd(ids::kDosingDevice, "set_door", door("open")));

  EXPECT_FALSE(step.alert.has_value());
  EXPECT_FALSE(step.halted);
  EXPECT_EQ(step.repolls, policy.max_status_repolls);
  EXPECT_EQ(step.retries, 0u);  // absorbed by re-polling alone
  EXPECT_EQ(sup.recovery_report().transients_absorbed, 1u);
}

TEST_F(RecoveryTest, SupervisorRefusesFatallyInvalidPolicy) {
  recovery::RecoveryPolicy bad;
  bad.backoff_base_s = 0.0;
  Supervisor::Options opts;
  opts.recovery = bad;
  make_engine();
  EXPECT_THROW(Supervisor(engine.get(), &backend, opts), std::invalid_argument);
}

TEST_F(RecoveryTest, SafeStateSequenceParksClosesAndStops) {
  // Drive the deck into an unsafe-ish configuration without RABIT watching.
  (void)backend.execute(make_cmd(ids::kDosingDevice, "set_door", door("open")));
  (void)backend.execute(make_cmd(ids::kHotplate, "set_temperature", [] {
    json::Object o;
    o["celsius"] = 80.0;
    return o;
  }()));

  std::vector<Command> seq = recovery::safe_state_sequence(backend);
  bool park_viperx = false, park_ned2 = false, close_dosing = false, stop_hotplate = false;
  for (const Command& c : seq) {
    if (c.action == "go_sleep" && c.device == ids::kViperX) park_viperx = true;
    if (c.action == "go_sleep" && c.device == ids::kNed2) park_ned2 = true;
    if (c.device == ids::kDosingDevice && c.action == "set_door") close_dosing = true;
    if (c.device == ids::kHotplate && c.action == "stop") stop_hotplate = true;
  }
  EXPECT_TRUE(park_viperx);
  EXPECT_TRUE(park_ned2);
  EXPECT_TRUE(close_dosing);
  EXPECT_TRUE(stop_hotplate);

  // Arms park before any door closes (no door may shut on a reaching arm).
  std::size_t last_park = 0, first_door = seq.size();
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (seq[i].action == "go_sleep") last_park = i;
    if (seq[i].action == "set_door" && first_door == seq.size()) first_door = i;
  }
  EXPECT_LT(last_park, first_door);

  for (const Command& c : seq) (void)backend.execute(c);
  EXPECT_EQ(backend.registry().at(ids::kDosingDevice).observed_state().at("doorStatus")
                .as_string(),
            "closed");
  EXPECT_EQ(backend.registry().at(ids::kHotplate).observed_state().at("active").as_int(), 0);

  // Quarantined devices are skipped: nothing may command an untrusted
  // controller.
  (void)backend.execute(make_cmd(ids::kDosingDevice, "set_door", door("open")));
  std::vector<Command> without = recovery::safe_state_sequence(backend, {ids::kDosingDevice});
  for (const Command& c : without) EXPECT_NE(c.device, ids::kDosingDevice);
}

// --- degraded mode -----------------------------------------------------------

TEST_F(RecoveryTest, SimulatorDetachmentDegradesToV2WithCountedWarning) {
  make_engine(core::Variant::ModifiedWithSim);
  sim::WorldModel world = sim::deck_world_model(backend);
  sim::ExtendedSimulator simulator(std::move(world));
  engine->attach_simulator(&simulator);
  EXPECT_FALSE(engine->degraded());

  // Mid-run detachment: the simulator process crashed or disconnected.
  engine->attach_simulator(nullptr);
  EXPECT_TRUE(engine->degraded());

  Supervisor sup(engine.get(), &backend, with_recovery());
  std::vector<Command> workflow =
      script::record_workflow(backend, script::testbed_workflow_source());
  RunReport report = sup.run(workflow);

  EXPECT_FALSE(report.halted);
  EXPECT_GT(report.degraded_checks, 0u);  // skipped replays counted, not lost
  EXPECT_EQ(report.degraded_checks, engine->stats().degraded_checks);
}

// --- seed determinism --------------------------------------------------------

std::vector<std::pair<std::string, std::string>> distinct_pairs(
    const std::vector<Command>& workflow) {
  std::vector<std::pair<std::string, std::string>> pairs;
  for (const Command& c : workflow) {
    std::pair<std::string, std::string> p{c.device, c.action};
    if (std::find(pairs.begin(), pairs.end(), p) == pairs.end()) pairs.push_back(p);
  }
  return pairs;
}

TEST(ChaosSchedule, SameSeedSameFaults) {
  std::vector<std::pair<std::string, std::string>> pairs = {
      {"dosing_device", "set_door"}, {"hotplate", "set_temperature"}, {"viperx", "move_to"}};
  FaultSchedule a = FaultSchedule::chaos(99, pairs);
  FaultSchedule b = FaultSchedule::chaos(99, pairs);
  ASSERT_EQ(a.transients().size(), b.transients().size());
  for (std::size_t i = 0; i < a.transients().size(); ++i) {
    const TransientFault& fa = a.transients()[i];
    const TransientFault& fb = b.transients()[i];
    EXPECT_EQ(fa.device, fb.device);
    EXPECT_EQ(fa.action, fb.action);
    EXPECT_EQ(fa.kind, fb.kind);
    EXPECT_DOUBLE_EQ(fa.start_s, fb.start_s);
    EXPECT_DOUBLE_EQ(fa.clear_after_s, fb.clear_after_s);
    EXPECT_EQ(fa.clear_after_attempts, fb.clear_after_attempts);
  }
  // DeadAction faults only strike tracked actions — a dead arm move would
  // reproduce the paper's position blind spot, not a recoverable transient.
  FaultSchedule dead_check = FaultSchedule::chaos(3, pairs);
  for (const TransientFault& f : dead_check.transients()) {
    if (f.kind == TransientKind::DeadAction) {
      EXPECT_NE(f.action, "move_to");
    }
  }
}

TEST(ChaosSchedule, SameSeedSameTraceJsonl) {
  struct RunResult {
    std::string jsonl;
    bool halted = false;
    std::size_t absorbed = 0;
  };
  auto run_once = [](unsigned seed) {
    sim::LabBackend backend(sim::testbed_profile());
    sim::build_hein_testbed_deck(backend);
    std::vector<Command> workflow =
        script::record_workflow(backend, script::testbed_workflow_source());
    FaultSchedule::ChaosOptions chaos_opts;
    chaos_opts.horizon_s = 30.0;  // keep fault windows inside the run
    chaos_opts.transient_count = 8;
    backend.set_fault_schedule(
        FaultSchedule::chaos(seed, distinct_pairs(workflow), chaos_opts));

    core::RabitEngine engine(core::config_from_backend(backend, core::Variant::Modified));
    Supervisor sup(&engine, &backend, [] {
      Supervisor::Options o;
      o.recovery = recovery::RecoveryPolicy{};
      return o;
    }());
    RunReport report = sup.run(workflow);
    RunResult result;
    result.jsonl = sup.log().to_jsonl();
    result.halted = report.halted;
    result.absorbed = report.recovery ? report.recovery->transients_absorbed : 0;
    return result;
  };

  // Fault start times are random within the horizon, so not every seed's
  // schedule intersects the workflow; scan for one whose faults strike.
  unsigned striking_seed = 0;
  for (unsigned seed = 1; seed <= 64 && striking_seed == 0; ++seed) {
    if (run_once(seed).absorbed > 0) striking_seed = seed;
  }
  ASSERT_NE(striking_seed, 0u) << "no chaos seed in [1,64] struck the workflow";

  RunResult a = run_once(striking_seed);
  RunResult b = run_once(striking_seed);
  EXPECT_GT(a.absorbed, 0u);  // the schedule visibly shaped this trace
  EXPECT_EQ(a.jsonl, b.jsonl);  // byte-identical trace from the same seed
  EXPECT_EQ(a.halted, b.halted);
  EXPECT_FALSE(a.halted);  // chaos transients are recoverable: no false halt
}

}  // namespace
}  // namespace rabit::trace
