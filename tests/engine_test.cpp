// RabitEngine tests: the three alert paths of the Fig. 2 algorithm.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "devices/robot_arm.hpp"
#include "sim/deck.hpp"

namespace rabit::core {
namespace {

using dev::Command;
using geom::Vec3;
namespace ids = sim::deck_ids;

Command make_cmd(std::string device, std::string action, json::Object args = {}) {
  Command c;
  c.device = std::move(device);
  c.action = std::move(action);
  c.args = json::Value(std::move(args));
  return c;
}

class EngineTest : public ::testing::Test {
 protected:
  explicit EngineTest(Variant variant = Variant::Modified)
      : backend(sim::testbed_profile()) {
    sim::build_hein_testbed_deck(backend);
    engine = std::make_unique<RabitEngine>(config_from_backend(backend, variant));
    engine->initialize(backend.registry().fetch_observed_state());
  }

  Command move(const char* arm, const Vec3& local) {
    json::Object args;
    args["position"] = json::Array{local.x, local.y, local.z};
    return make_cmd(arm, "move_to", std::move(args));
  }

  Vec3 site_local(const char* arm, const char* site) {
    return backend.arm(arm).to_local(backend.find_site(site)->lab_position);
  }

  sim::LabBackend backend;
  std::unique_ptr<RabitEngine> engine;
};

TEST_F(EngineTest, SafeCommandPassesAndCountsOverhead) {
  double before = engine->modeled_overhead_s();
  EXPECT_FALSE(engine->check_command(make_cmd(ids::kViperX, "go_home")).has_value());
  EXPECT_DOUBLE_EQ(engine->modeled_overhead_s() - before, RabitEngine::kBaseCheckCost_s);
  EXPECT_EQ(engine->stats().commands_checked, 1u);
  EXPECT_EQ(engine->stats().precondition_alerts, 0u);
}

TEST_F(EngineTest, PreconditionAlertPath) {
  auto alert = engine->check_command(move(ids::kViperX, site_local(ids::kViperX, "dosing_device")));
  ASSERT_TRUE(alert.has_value());
  EXPECT_EQ(alert->kind, AlertKind::InvalidCommand);
  EXPECT_EQ(alert->rule, "G1");
  EXPECT_EQ(engine->stats().precondition_alerts, 1u);
  // The Fig. 2 banner text.
  EXPECT_NE(alert->describe().find("Invalid Command!"), std::string::npos);
}

TEST_F(EngineTest, MalfunctionAlertOnInjectedFault) {
  // A dead door actuator: the command "succeeds" but nothing moves.
  dev::FaultPlan fault;
  fault.dead_actions.push_back("set_door");
  backend.registry().at(ids::kDosingDevice).set_fault_plan(fault);

  Command open = make_cmd(ids::kDosingDevice, "set_door", [] {
    json::Object o;
    o["state"] = std::string("open");
    return o;
  }());
  ASSERT_FALSE(engine->check_command(open).has_value());
  engine->apply_expected(open);
  backend.execute(open);
  auto alert = engine->verify_postconditions(open, backend.registry().fetch_observed_state());
  ASSERT_TRUE(alert.has_value());
  EXPECT_EQ(alert->kind, AlertKind::DeviceMalfunction);
  EXPECT_NE(alert->message.find("doorStatus"), std::string::npos);
  EXPECT_EQ(engine->stats().malfunction_alerts, 1u);

  // Line 16 resynced to the actual state, so a repeat check is clean.
  EXPECT_TRUE(engine->tracker()
                  .mismatches(backend.registry().fetch_observed_state())
                  .empty());
}

TEST_F(EngineTest, LyingStatusCommandDetected) {
  // The device claims the door opened while it physically did not.
  dev::FaultPlan fault;
  fault.reported_overrides["doorStatus"] = std::string("broken");
  backend.registry().at(ids::kDosingDevice).set_fault_plan(fault);
  Command noop = make_cmd(ids::kDosingDevice, "stop_action");
  engine->apply_expected(noop);
  backend.execute(noop);
  auto alert = engine->verify_postconditions(noop, backend.registry().fetch_observed_state());
  ASSERT_TRUE(alert.has_value());
  EXPECT_EQ(alert->kind, AlertKind::DeviceMalfunction);
}

TEST_F(EngineTest, CleanExecutionRaisesNothing) {
  Command open = make_cmd(ids::kDosingDevice, "set_door", [] {
    json::Object o;
    o["state"] = std::string("open");
    return o;
  }());
  ASSERT_FALSE(engine->check_command(open).has_value());
  engine->apply_expected(open);
  backend.execute(open);
  EXPECT_FALSE(engine->verify_postconditions(open, backend.registry().fetch_observed_state())
                   .has_value());
}

class SimEngineTest : public EngineTest {
 protected:
  SimEngineTest() : EngineTest(Variant::ModifiedWithSim) {
    sim::WorldModel world = sim::deck_world_model(backend);
    for (const DeviceMeta& m : engine->config().devices) {
      if (m.is_arm && m.sleep_box) {
        world.add_box(m.id, *m.sleep_box, sim::ObstacleKind::ParkedArm);
      }
    }
    simulator = std::make_unique<sim::ExtendedSimulator>(std::move(world));
    simulator->set_arm_state_provider(
        [this](std::string_view arm_id) -> std::optional<Vec3> {
          return backend.arm(arm_id).position_lab();
        });
    engine->attach_simulator(simulator.get());
  }

  std::unique_ptr<sim::ExtendedSimulator> simulator;
};

TEST_F(SimEngineTest, TrajectoryAlertOnEnRouteCollision) {
  // Wake the arm at a point west of the grid, low to the deck.
  Command to_west = move(ids::kViperX, Vec3(0.18, 0.30, 0.03));
  ASSERT_FALSE(engine->check_command(to_west).has_value());
  engine->apply_expected(to_west);
  backend.execute(to_west);

  // Target east of the grid is free, but the straight path sweeps through
  // the grid box: only the trajectory replay can see that.
  Command across = move(ids::kViperX, Vec3(0.48, 0.30, 0.03));
  auto alert = engine->check_command(across);
  ASSERT_TRUE(alert.has_value());
  EXPECT_EQ(alert->kind, AlertKind::InvalidTrajectory);
  EXPECT_EQ(alert->rule, "SIM");
  EXPECT_GT(engine->stats().trajectory_alerts, 0u);
  EXPECT_GT(simulator->checks_performed(), 0u);
}

TEST_F(SimEngineTest, SimulatorLatencyCharged) {
  double before = engine->modeled_overhead_s();
  ASSERT_FALSE(engine->check_command(make_cmd(ids::kViperX, "go_home")).has_value());
  // One motion command = one (or more) GUI invocations at ~2 s each.
  EXPECT_GE(engine->modeled_overhead_s() - before,
            simulator->options().gui_latency_s);
}

TEST_F(SimEngineTest, HeadlessModeIsCheap) {
  simulator->set_gui_enabled(false);
  double before = engine->modeled_overhead_s();
  ASSERT_FALSE(engine->check_command(make_cmd(ids::kViperX, "go_home")).has_value());
  double delta = engine->modeled_overhead_s() - before;
  EXPECT_LT(delta, 0.2);  // bypassing the GUI removes the 2 s round trip
}

TEST_F(SimEngineTest, PolledPositionOverridesTrackedStart) {
  // Silently skip a move so RABIT's belief diverges from reality.
  Command to_west = move(ids::kViperX, Vec3(0.18, 0.30, 0.03));
  engine->apply_expected(to_west);
  backend.execute(to_west);

  Command infeasible = move(ids::kViperX, Vec3(0.35, 0.30, 2.0));
  ASSERT_FALSE(engine->check_command(infeasible).has_value());
  engine->apply_expected(infeasible);  // RABIT now believes the arm is at z=2
  sim::ExecResult r = backend.execute(infeasible);
  EXPECT_TRUE(r.silently_skipped);  // physically the arm never moved

  // From RABIT's believed position the next path is clear; from the *real*
  // position it sweeps through the grid. The simulator polls reality.
  Command across = move(ids::kViperX, Vec3(0.48, 0.30, 0.03));
  auto alert = engine->check_command(across);
  ASSERT_TRUE(alert.has_value());
  EXPECT_EQ(alert->kind, AlertKind::InvalidTrajectory);
}

TEST(ExtendedSimulator, WorldFromJsonRoundTrip) {
  sim::LabBackend backend(sim::testbed_profile());
  sim::build_hein_testbed_deck(backend);
  json::Value doc = sim::deck_world_json(backend);
  sim::WorldModel world = sim::ExtendedSimulator::world_from_json(doc);
  EXPECT_EQ(world.boxes.size(), sim::deck_world_model(backend).boxes.size());
  EXPECT_NE(world.find_box(ids::kDosingDevice), nullptr);
  EXPECT_NE(world.find_box("platform"), nullptr);
}

TEST(ExtendedSimulator, WorldFromJsonRejectsGarbage) {
  EXPECT_THROW(sim::ExtendedSimulator::world_from_json(json::parse("{}")), std::runtime_error);
  EXPECT_THROW(sim::ExtendedSimulator::world_from_json(
                   json::parse(R"({"objects":[{"name":"x"}]})")),
               std::runtime_error);
  EXPECT_THROW(sim::ExtendedSimulator::world_from_json(json::parse(
                   R"({"objects":[{"name":"x","kind":"blob","center":[0,0,0],"size":[1,1,1]}]})")),
               std::runtime_error);
}

TEST(ExtendedSimulator, ValidateTargetVsTrajectory) {
  sim::WorldModel world;
  world.add_box("box", geom::Aabb(Vec3(-0.1, -0.1, 0), Vec3(0.1, 0.1, 0.2)),
                sim::ObstacleKind::Equipment);
  sim::ExtendedSimulator simulator(world);
  // Target beyond the box: target-only check passes, trajectory check alerts.
  EXPECT_FALSE(simulator.validate_target(Vec3(0.5, 0, 0.1), 0.0).has_value());
  EXPECT_TRUE(
      simulator.validate_trajectory(Vec3(-0.5, 0, 0.1), Vec3(0.5, 0, 0.1), 0.0).has_value());
  EXPECT_EQ(simulator.checks_performed(), 2u);
  EXPECT_GT(simulator.modeled_latency_s(), 0.0);
}

TEST(AlertKindNames, MatchFigure2Banners) {
  EXPECT_EQ(to_string(AlertKind::InvalidCommand), "Invalid Command!");
  EXPECT_EQ(to_string(AlertKind::InvalidTrajectory), "Invalid trajectory!");
  EXPECT_EQ(to_string(AlertKind::DeviceMalfunction), "Device malfunction!");
}

}  // namespace
}  // namespace rabit::core
