// System-wide invariants, exercised with randomized workloads:
//   * a generated *safe* workflow never alerts (the zero-false-positive
//     property, beyond the fixed baselines);
//   * blocking is always preemptive — a blocked command leaves the lab
//     physically untouched;
//   * physical bookkeeping is conserved (capacities, monotone spills,
//     broken vials stay empty);
//   * supervision is deterministic.
#include <gtest/gtest.h>

#include <random>

#include "bugs/bugs.hpp"
#include "core/engine.hpp"
#include "devices/robot_arm.hpp"
#include "script/workflows.hpp"
#include "sim/deck.hpp"
#include "trace/trace.hpp"

namespace rabit {
namespace {

using dev::Command;
using geom::Vec3;
namespace ids = sim::deck_ids;

Command make_cmd(std::string device, std::string action, json::Object args = {}) {
  Command c;
  c.device = std::move(device);
  c.action = std::move(action);
  c.args = json::Value(std::move(args));
  return c;
}

json::Object door(const char* state) {
  json::Object o;
  o["state"] = std::string(state);
  return o;
}

json::Object site_arg(const std::string& s) {
  json::Object o;
  o["site"] = s;
  return o;
}

/// Generates a random but *safe* workflow: composite vial shuffles between
/// free grid slots, disciplined dosing-device cycles, and sub-threshold
/// station settings. Safety is by construction, so any alert is a false
/// positive.
std::vector<Command> random_safe_workflow(std::mt19937& rng, int operations) {
  std::vector<Command> cmds;
  const std::string slots[] = {"grid.NW", "grid.NE", "grid.SW", "grid.SE"};
  // Track where the two vials are believed to be (matches the fresh deck).
  std::map<std::string, std::string> occupant = {{"grid.NW", ids::kVial1},
                                                 {"grid.SE", ids::kVial2}};
  bool vial1_decapped = false;

  std::uniform_int_distribution<int> op_dist(0, 3);
  for (int i = 0; i < operations; ++i) {
    switch (op_dist(rng)) {
      case 0: {  // shuffle a random vial to a random free slot
        std::vector<std::string> occupied;
        std::vector<std::string> free_slots;
        for (const std::string& s : slots) {
          (occupant.contains(s) ? occupied : free_slots).push_back(s);
        }
        if (occupied.empty() || free_slots.empty()) break;
        const std::string& from =
            occupied[std::uniform_int_distribution<std::size_t>(0, occupied.size() - 1)(rng)];
        const std::string& to = free_slots[std::uniform_int_distribution<std::size_t>(
            0, free_slots.size() - 1)(rng)];
        cmds.push_back(make_cmd(ids::kViperX, "pick_object", site_arg(from)));
        cmds.push_back(make_cmd(ids::kViperX, "place_object", site_arg(to)));
        cmds.push_back(make_cmd(ids::kViperX, "go_sleep"));
        occupant[to] = occupant[from];
        occupant.erase(from);
        break;
      }
      case 1: {  // a full disciplined dosing cycle on vial_1 (2 mg fits 5x)
        std::string vial1_slot;
        for (const auto& [slot, vial] : occupant) {
          if (vial == ids::kVial1) vial1_slot = slot;
        }
        if (vial1_slot.empty()) break;
        static int doses = 0;
        if (doses >= 4) break;  // stay below the 10 mg capacity
        ++doses;
        if (!vial1_decapped) {
          cmds.push_back(make_cmd(ids::kVial1, "decap"));
          vial1_decapped = true;
        }
        cmds.push_back(make_cmd(ids::kDosingDevice, "set_door", door("open")));
        cmds.push_back(make_cmd(ids::kViperX, "pick_object", site_arg(vial1_slot)));
        cmds.push_back(make_cmd(ids::kViperX, "place_object", site_arg("dosing_device")));
        cmds.push_back(make_cmd(ids::kViperX, "go_sleep"));
        cmds.push_back(make_cmd(ids::kDosingDevice, "set_door", door("closed")));
        cmds.push_back(make_cmd(ids::kDosingDevice, "run_action", [] {
          json::Object o;
          o["quantity"] = 2.0;
          return o;
        }()));
        cmds.push_back(make_cmd(ids::kDosingDevice, "stop_action"));
        cmds.push_back(make_cmd(ids::kDosingDevice, "set_door", door("open")));
        cmds.push_back(make_cmd(ids::kViperX, "pick_object", site_arg("dosing_device")));
        cmds.push_back(make_cmd(ids::kViperX, "place_object", site_arg(vial1_slot)));
        cmds.push_back(make_cmd(ids::kViperX, "go_sleep"));
        cmds.push_back(make_cmd(ids::kDosingDevice, "set_door", door("closed")));
        break;
      }
      case 2: {  // sub-threshold hotplate settings
        std::uniform_real_distribution<double> temp(30.0, 140.0);
        cmds.push_back(make_cmd(ids::kHotplate, "set_temperature", [&] {
          json::Object o;
          o["celsius"] = temp(rng);
          return o;
        }()));
        cmds.push_back(make_cmd(ids::kHotplate, "stop"));
        break;
      }
      case 3: {  // rotate the centrifuge platter and restore it
        const char* orientations[] = {"E", "S", "W"};
        cmds.push_back(make_cmd(ids::kCentrifuge, "rotate_platter", [&] {
          json::Object o;
          o["orientation"] = std::string(
              orientations[std::uniform_int_distribution<int>(0, 2)(rng)]);
          return o;
        }()));
        cmds.push_back(make_cmd(ids::kCentrifuge, "rotate_platter", [] {
          json::Object o;
          o["orientation"] = std::string("N");
          return o;
        }()));
        break;
      }
    }
  }
  return cmds;
}

class SafeWorkflowProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(SafeWorkflowProperty, GeneratedSafeWorkflowsNeverAlert) {
  std::mt19937 rng(GetParam());
  std::vector<Command> workflow = random_safe_workflow(rng, 12);

  for (core::Variant variant :
       {core::Variant::Initial, core::Variant::Modified, core::Variant::ModifiedWithSim}) {
    bugs::BugOutcome outcome = bugs::evaluate_stream(workflow, variant);
    EXPECT_FALSE(outcome.alerted)
        << "false positive under " << core::to_string(variant) << " (seed " << GetParam()
        << "): " << outcome.alert_rule << " at step "
        << (outcome.report.first_alert_step ? *outcome.report.first_alert_step : 0) << ": "
        << outcome.report.steps[*outcome.report.first_alert_step].alert->message;
    EXPECT_FALSE(outcome.damaged) << "generated workflow was not physically safe (seed "
                                  << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SafeWorkflowProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u));

/// Blocking is preemptive: when RABIT raises a precondition alert, the
/// command never reaches a device, so ground truth is byte-identical.
class PreemptiveBlockProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(PreemptiveBlockProperty, BlockedCommandsLeaveNoTrace) {
  std::mt19937 rng(GetParam() + 100);
  auto staging = std::make_unique<sim::LabBackend>(sim::testbed_profile());
  sim::build_hein_testbed_deck(*staging);
  auto base = script::record_workflow(*staging, script::testbed_workflow_source());

  for (int i = 0; i < 10; ++i) {
    bugs::SyntheticBug bug = bugs::random_mutation(base, rng);

    sim::LabBackend backend(sim::testbed_profile());
    sim::build_hein_testbed_deck(backend);
    core::RabitEngine engine(core::config_from_backend(backend, core::Variant::Modified));
    trace::Supervisor supervisor(&engine, &backend);
    supervisor.start();
    for (const Command& cmd : bug.commands) {
      auto before = backend.registry().fetch_true_state();
      std::size_t damage_before = backend.damage_log().size();
      trace::SupervisedStep step = supervisor.step(cmd);
      if (step.alert && step.alert->kind == core::AlertKind::InvalidCommand) {
        EXPECT_EQ(backend.registry().fetch_true_state(), before)
            << "blocked command mutated device state: " << cmd.describe();
        EXPECT_EQ(backend.damage_log().size(), damage_before);
      }
      if (step.halted) break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PreemptiveBlockProperty, ::testing::Values(1u, 2u, 3u));

/// Physical bookkeeping stays sane under arbitrary mutated workloads.
class ConservationProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(ConservationProperty, VialBookkeepingConserved) {
  std::mt19937 rng(GetParam() + 300);
  auto staging = std::make_unique<sim::LabBackend>(sim::testbed_profile());
  sim::build_hein_testbed_deck(*staging);
  auto base = script::record_workflow(*staging, script::testbed_workflow_source());

  for (int i = 0; i < 15; ++i) {
    bugs::SyntheticBug bug = bugs::random_mutation(base, rng);
    sim::LabBackend backend(sim::testbed_profile());
    sim::build_hein_testbed_deck(backend);
    trace::Supervisor bare(nullptr, &backend);

    double last_spilled = 0.0;
    for (const Command& cmd : bug.commands) {
      bare.step(cmd);
      for (const char* id : {ids::kVial1, ids::kVial2}) {
        const dev::Vial& v = backend.vial(id);
        EXPECT_LE(v.solid_mg(), v.state().at("capacityMg").as_double() + 1e-9);
        EXPECT_LE(v.liquid_ml(), v.state().at("capacityMl").as_double() + 1e-9);
        EXPECT_GE(v.solid_mg(), -1e-9);
        EXPECT_GE(v.liquid_ml(), -1e-9);
        if (v.is_broken()) {
          EXPECT_TRUE(v.is_empty());
        }
      }
      double spilled = backend.vial(ids::kVial1).state().at("spilledMg").as_double() +
                       backend.vial(ids::kVial2).state().at("spilledMg").as_double();
      EXPECT_GE(spilled, last_spilled - 1e-9) << "spills must be monotone";
      last_spilled = spilled;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservationProperty, ::testing::Values(1u, 2u, 3u));

TEST(Determinism, SupervisedRunsAreReproducible) {
  auto run_once = [](unsigned seed) {
    sim::LabBackend backend(sim::testbed_profile(), seed);
    sim::build_hein_testbed_deck(backend);
    core::RabitEngine engine(core::config_from_backend(backend, core::Variant::Modified));
    trace::Supervisor supervisor(&engine, &backend);
    auto commands = script::record_workflow(backend, script::testbed_workflow_source());
    supervisor.run(commands);
    return supervisor.log().to_jsonl();
  };
  EXPECT_EQ(run_once(42), run_once(42));
  // Even under a different noise seed, the *logical* trace is identical for
  // a safe workflow (noise only perturbs precision statistics).
  EXPECT_EQ(run_once(42), run_once(1234));
}

TEST(Determinism, BugCatalogueStableAcrossRepeats) {
  for (int repeat = 0; repeat < 3; ++repeat) {
    int detected = 0;
    for (const bugs::BugSpec& bug : bugs::bug_catalogue()) {
      if (bugs::evaluate_bug(bug, core::Variant::Modified).detected) ++detected;
    }
    EXPECT_EQ(detected, 12);
  }
}

}  // namespace
}  // namespace rabit
