#include <gtest/gtest.h>

#include "devices/robot_arm.hpp"
#include "sim/backend.hpp"
#include "sim/deck.hpp"

namespace rabit::sim {
namespace {

using dev::Command;
using dev::Severity;
using geom::Vec3;
namespace ids = deck_ids;

Command make_cmd(std::string device, std::string action, json::Object args = {}) {
  Command c;
  c.device = std::move(device);
  c.action = std::move(action);
  c.args = json::Value(std::move(args));
  return c;
}

Command move_to(const char* arm, const Vec3& local) {
  json::Object args;
  args["position"] = json::Array{local.x, local.y, local.z};
  return make_cmd(arm, "move_to", std::move(args));
}

json::Object door(const char* state) {
  json::Object o;
  o["state"] = std::string(state);
  return o;
}

class TestbedBackend : public ::testing::Test {
 protected:
  TestbedBackend() : backend(testbed_profile()) { build_hein_testbed_deck(backend); }

  Vec3 site_local(const char* arm, const char* site) {
    return backend.arm(arm).to_local(backend.find_site(site)->lab_position);
  }

  LabBackend backend;
};

TEST_F(TestbedBackend, DeckPopulated) {
  EXPECT_NE(backend.registry().find(ids::kViperX), nullptr);
  EXPECT_NE(backend.registry().find(ids::kNed2), nullptr);
  EXPECT_NE(backend.registry().find(ids::kDosingDevice), nullptr);
  EXPECT_EQ(backend.sites().size(), 8u);  // 4 grid slots + 4 receptacles
  EXPECT_EQ(backend.vial(ids::kVial1).location(), "grid.NW");
  EXPECT_EQ(backend.arm(ids::kViperX).state().at("pose").as_string(), "sleep");
}

TEST_F(TestbedBackend, SiteLookups) {
  const SiteBinding* nw = backend.find_site("grid.NW");
  ASSERT_NE(nw, nullptr);
  EXPECT_TRUE(nw->is_grid_slot());
  EXPECT_FALSE(nw->is_receptacle());
  EXPECT_EQ(backend.find_site("mars"), nullptr);
  EXPECT_EQ(backend.site_near(nw->lab_position + Vec3(0.01, 0, 0), 0.035), nw);
  EXPECT_EQ(backend.site_near(nw->lab_position + Vec3(0.2, 0, 0), 0.035), nullptr);
  EXPECT_THROW(backend.add_site(*nw), std::invalid_argument);
}

TEST_F(TestbedBackend, UnknownDeviceThrows) {
  EXPECT_THROW(backend.execute(make_cmd("ghost", "do")), std::out_of_range);
  EXPECT_THROW(static_cast<void>(backend.arm("vial_1")), std::out_of_range);
  EXPECT_THROW(static_cast<void>(backend.vial(ids::kViperX)), std::out_of_range);
}

TEST_F(TestbedBackend, FirmwareRejectionLandsInResult) {
  ExecResult r = backend.execute(make_cmd(ids::kDosingDevice, "set_door", [] {
    json::Object o;
    o["state"] = std::string("sideways");
    return o;
  }()));
  EXPECT_FALSE(r.executed);
  EXPECT_NE(r.firmware_error.find("set_door"), std::string::npos);
}

TEST_F(TestbedBackend, PickAndPlaceViaPrimitives) {
  Vec3 grab = site_local(ids::kViperX, "grid.NW");
  Vec3 safe = grab + Vec3(0, 0, 0.22);
  EXPECT_TRUE(backend.execute(move_to(ids::kViperX, safe)).executed);
  EXPECT_TRUE(backend.execute(make_cmd(ids::kViperX, "open_gripper")).executed);
  EXPECT_TRUE(backend.execute(move_to(ids::kViperX, grab)).executed);
  EXPECT_TRUE(backend.execute(make_cmd(ids::kViperX, "close_gripper")).executed);

  EXPECT_EQ(backend.arm(ids::kViperX).holding(), ids::kVial1);
  EXPECT_EQ(backend.vial(ids::kVial1).location(), std::string("arm:") + ids::kViperX);

  // Lift out and seat it at the free SW slot.
  EXPECT_TRUE(backend.execute(move_to(ids::kViperX, safe)).executed);
  Vec3 sw = site_local(ids::kViperX, "grid.SW");
  EXPECT_TRUE(backend.execute(move_to(ids::kViperX, sw + Vec3(0, 0, 0.22))).executed);
  EXPECT_TRUE(backend.execute(move_to(ids::kViperX, sw)).executed);
  EXPECT_TRUE(backend.execute(make_cmd(ids::kViperX, "open_gripper")).executed);
  EXPECT_EQ(backend.arm(ids::kViperX).holding(), "");
  EXPECT_EQ(backend.vial(ids::kVial1).location(), "grid.SW");
  EXPECT_TRUE(backend.damage_log().empty());
}

TEST_F(TestbedBackend, GrabbingAirIsHarmless) {
  // Closing the gripper away from any site grabs nothing.
  Vec3 nowhere = site_local(ids::kViperX, "grid.NW") + Vec3(0, 0, 0.22);
  backend.execute(move_to(ids::kViperX, nowhere));
  backend.execute(make_cmd(ids::kViperX, "close_gripper"));
  EXPECT_EQ(backend.arm(ids::kViperX).holding(), "");
}

TEST_F(TestbedBackend, DroppingVialFromHeightShattersIt) {
  Vec3 grab = site_local(ids::kViperX, "grid.NW");
  backend.execute(move_to(ids::kViperX, grab));
  backend.execute(make_cmd(ids::kViperX, "close_gripper"));
  ASSERT_EQ(backend.arm(ids::kViperX).holding(), ids::kVial1);
  // Open mid-air away from any site.
  backend.execute(move_to(ids::kViperX, Vec3(0.2, -0.2, 0.35)));
  ExecResult r = backend.execute(make_cmd(ids::kViperX, "open_gripper"));
  EXPECT_TRUE(backend.vial(ids::kVial1).is_broken());
  ASSERT_FALSE(r.damage.empty());
  EXPECT_EQ(r.damage[0].severity, Severity::MediumLow);
}

TEST_F(TestbedBackend, EnteringClosedDoorBreaksIt) {
  auto& dosing = dynamic_cast<dev::DosingDeviceModel&>(backend.registry().at(ids::kDosingDevice));
  ASSERT_EQ(dosing.door_status(), "closed");
  ExecResult r = backend.execute(move_to(ids::kViperX, site_local(ids::kViperX, "dosing_device")));
  ASSERT_FALSE(r.damage.empty());
  EXPECT_EQ(r.damage[0].severity, Severity::High);
  EXPECT_EQ(dosing.door_status(), "broken");
}

TEST_F(TestbedBackend, OpenDoorAllowsEntry) {
  backend.execute(make_cmd(ids::kDosingDevice, "set_door", door("open")));
  ExecResult r = backend.execute(move_to(ids::kViperX, site_local(ids::kViperX, "dosing_device")));
  EXPECT_TRUE(r.damage.empty());
  EXPECT_EQ(backend.arm(ids::kViperX).inside_device(), ids::kDosingDevice);
  // Leaving clears the inside flag.
  backend.execute(move_to(ids::kViperX, site_local(ids::kViperX, "dosing_device") +
                                            Vec3(0, 0, 0.22)));
  EXPECT_EQ(backend.arm(ids::kViperX).inside_device(), "");
}

TEST_F(TestbedBackend, ClosingDoorOnArmBreaksDoor) {
  backend.execute(make_cmd(ids::kDosingDevice, "set_door", door("open")));
  backend.execute(move_to(ids::kViperX, site_local(ids::kViperX, "dosing_device")));
  ExecResult r = backend.execute(make_cmd(ids::kDosingDevice, "set_door", door("closed")));
  ASSERT_FALSE(r.damage.empty());
  EXPECT_EQ(r.damage[0].severity, Severity::High);
  auto& dosing = dynamic_cast<dev::DosingDeviceModel&>(backend.registry().at(ids::kDosingDevice));
  EXPECT_EQ(dosing.door_status(), "broken");
}

TEST_F(TestbedBackend, DosingTransfersIntoSeatedVial) {
  auto& dosing = dynamic_cast<dev::DosingDeviceModel&>(backend.registry().at(ids::kDosingDevice));
  dosing.set_container_inside(ids::kVial1);
  backend.vial(ids::kVial1).set_location("dosing_device");
  ExecResult r = backend.execute(make_cmd(ids::kDosingDevice, "run_action", [] {
    json::Object o;
    o["quantity"] = 5.0;
    return o;
  }()));
  EXPECT_TRUE(r.executed);
  EXPECT_DOUBLE_EQ(backend.vial(ids::kVial1).solid_mg(), 5.0);
}

TEST_F(TestbedBackend, DosingIntoEmptyChamberWastesMaterial) {
  ExecResult r = backend.execute(make_cmd(ids::kDosingDevice, "run_action", [] {
    json::Object o;
    o["quantity"] = 5.0;
    return o;
  }()));
  ASSERT_FALSE(r.damage.empty());
  EXPECT_EQ(r.damage.back().severity, Severity::Low);
  EXPECT_DOUBLE_EQ(backend.vial(ids::kVial1).solid_mg(), 0.0);
}

TEST_F(TestbedBackend, PumpDosesIntoTargetVial) {
  backend.execute(make_cmd(ids::kSyringePump, "draw_solvent", [] {
    json::Object o;
    o["volume"] = 3.0;
    return o;
  }()));
  ExecResult r = backend.execute(make_cmd(ids::kSyringePump, "dose_solvent", [] {
    json::Object o;
    o["volume"] = 2.0;
    o["target"] = std::string(ids::kVial1);
    return o;
  }()));
  EXPECT_TRUE(r.executed);
  EXPECT_DOUBLE_EQ(backend.vial(ids::kVial1).liquid_ml(), 2.0);
}

TEST_F(TestbedBackend, CentrifugeSpillsUnstopperedVial) {
  auto& cf = dynamic_cast<dev::CentrifugeModel&>(backend.registry().at(ids::kCentrifuge));
  cf.set_container_inside(ids::kVial1);
  backend.vial(ids::kVial1).add_liquid(2.0);
  ExecResult r = backend.execute(make_cmd(ids::kCentrifuge, "start_spin", [] {
    json::Object o;
    o["rpm"] = 2000.0;
    return o;
  }()));
  EXPECT_TRUE(backend.vial(ids::kVial1).is_empty());
  ASSERT_FALSE(r.damage.empty());
  // A stoppered vial survives.
  backend.vial(ids::kVial1).add_liquid(2.0);
  backend.vial(ids::kVial1).set_stopper(true);
  backend.execute(make_cmd(ids::kCentrifuge, "start_spin", [] {
    json::Object o;
    o["rpm"] = 2000.0;
    return o;
  }()));
  EXPECT_DOUBLE_EQ(backend.vial(ids::kVial1).liquid_ml(), 2.0);
}

TEST_F(TestbedBackend, CompositePickAndPlace) {
  ExecResult pick = backend.execute(make_cmd(ids::kViperX, "pick_object", [] {
    json::Object o;
    o["site"] = std::string("grid.NW");
    return o;
  }()));
  EXPECT_TRUE(pick.executed);
  EXPECT_TRUE(pick.damage.empty());
  EXPECT_EQ(backend.arm(ids::kViperX).holding(), ids::kVial1);

  ExecResult place = backend.execute(make_cmd(ids::kViperX, "place_object", [] {
    json::Object o;
    o["site"] = std::string("grid.SW");
    return o;
  }()));
  EXPECT_TRUE(place.executed);
  EXPECT_TRUE(place.damage.empty());
  EXPECT_EQ(backend.vial(ids::kVial1).location(), "grid.SW");
}

TEST_F(TestbedBackend, CompositePlaceOntoOccupiedSlotBreaksGlass) {
  backend.execute(make_cmd(ids::kViperX, "pick_object", [] {
    json::Object o;
    o["site"] = std::string("grid.NW");
    return o;
  }()));
  ExecResult r = backend.execute(make_cmd(ids::kViperX, "place_object", [] {
    json::Object o;
    o["site"] = std::string("grid.SE");  // vial_2 lives here
    return o;
  }()));
  EXPECT_FALSE(r.damage.empty());
  EXPECT_TRUE(backend.vial(ids::kVial1).is_broken());
}

TEST_F(TestbedBackend, CompositeRequiresKnownSite) {
  ExecResult r = backend.execute(make_cmd(ids::kViperX, "pick_object", [] {
    json::Object o;
    o["site"] = std::string("mars");
    return o;
  }()));
  EXPECT_FALSE(r.executed);
  EXPECT_NE(r.firmware_error.find("unknown site"), std::string::npos);
}

TEST_F(TestbedBackend, ArmArmCollisionRecorded) {
  // Wake ViperX and park it hovering over the grid.
  backend.execute(move_to(ids::kViperX,
                          site_local(ids::kViperX, "grid.NW") + Vec3(0, 0, 0.22)));
  // Send Ned2 right at it.
  ExecResult r = backend.execute(move_to(ids::kNed2, backend.arm(ids::kNed2).to_local(
                                                          Vec3(0.30, 0.32, 0.28))));
  ASSERT_FALSE(r.damage.empty());
  EXPECT_EQ(r.damage[0].severity, Severity::MediumHigh);
  EXPECT_NE(r.damage[0].description.find("robot arm"), std::string::npos);
}

TEST_F(TestbedBackend, MeasurementReflectsSolubility) {
  dev::Vial& v = backend.vial(ids::kVial1);
  v.add_solid(5.0);
  v.add_liquid(5.0);  // 5 mL dissolves up to 100 mg: fully dissolved
  ExecResult r = backend.execute(make_cmd(ids::kCamera, "measure_solubility", [] {
    json::Object o;
    o["target"] = std::string(ids::kVial1);
    return o;
  }()));
  ASSERT_TRUE(r.measurement.has_value());
  EXPECT_GT(*r.measurement, 0.8);
  EXPECT_DOUBLE_EQ(LabBackend::true_solubility(v), 1.0);

  dev::Vial& v2 = backend.vial(ids::kVial2);
  v2.add_solid(10.0);  // no liquid at all
  EXPECT_DOUBLE_EQ(LabBackend::true_solubility(v2), 0.0);
}

TEST_F(TestbedBackend, ModeledClockAdvances) {
  double before = backend.modeled_clock_s();
  backend.execute(make_cmd(ids::kDosingDevice, "stop_action"));
  EXPECT_DOUBLE_EQ(backend.modeled_clock_s() - before, testbed_profile().command_latency_s);
}

TEST_F(TestbedBackend, DamageCostScalesWithSeverity) {
  EXPECT_DOUBLE_EQ(backend.total_damage_cost(), 0.0);
  backend.execute(move_to(ids::kViperX, site_local(ids::kViperX, "dosing_device")));  // crash
  double cost = backend.total_damage_cost();
  EXPECT_GT(cost, 0.0);
  // Testbed damage is an order of magnitude cheaper than production damage.
  EXPECT_DOUBLE_EQ(testbed_profile().damage_cost_factor, 0.1);
}

TEST(StageProfiles, CapabilityOrdering) {
  StageProfile s = simulator_profile();
  StageProfile t = testbed_profile();
  StageProfile p = production_profile();
  // Table I: speed of exploration high -> low.
  EXPECT_LT(s.command_latency_s, t.command_latency_s);
  EXPECT_LT(t.command_latency_s, p.command_latency_s);
  // Precision low -> high (noise high -> low); the simulator positions a
  // virtual arm exactly.
  EXPECT_GT(t.position_noise_sigma_m, p.position_noise_sigma_m);
  // Accuracy of results low -> high.
  EXPECT_GT(s.measurement_noise_sigma, t.measurement_noise_sigma);
  EXPECT_GT(t.measurement_noise_sigma, p.measurement_noise_sigma);
  // Risk of damage low -> high.
  EXPECT_LT(s.damage_cost_factor, t.damage_cost_factor);
  EXPECT_LT(t.damage_cost_factor, p.damage_cost_factor);
}

TEST(ProductionDeck, BuildsAndRunsComposites) {
  LabBackend backend(production_profile());
  build_hein_production_deck(backend);
  EXPECT_NE(backend.registry().find(ids::kUr3e), nullptr);
  backend.execute(make_cmd(ids::kDosingDevice, "set_door", door("open")));
  ExecResult r = backend.execute(make_cmd(ids::kUr3e, "pick_object", [] {
    json::Object o;
    o["site"] = std::string("grid.NW");
    return o;
  }()));
  EXPECT_TRUE(r.executed);
  EXPECT_TRUE(r.damage.empty());
  EXPECT_EQ(backend.arm(ids::kUr3e).holding(), ids::kVial1);
}

TEST(CollisionSeverityMap, MatchesTableV) {
  CollisionReport equipment{"dosing", ObstacleKind::Equipment, Vec3(), false, false};
  CollisionReport ground{"platform", ObstacleKind::Ground, Vec3(), false, false};
  CollisionReport wall{"wall", ObstacleKind::Wall, Vec3(), false, false};
  CollisionReport grid{"grid", ObstacleKind::Grid, Vec3(), false, false};
  CollisionReport vial{"vial", ObstacleKind::Vial, Vec3(), true, false};
  CollisionReport arms{"ned2", ObstacleKind::Equipment, Vec3(), false, true};
  EXPECT_EQ(collision_severity(equipment), Severity::High);
  EXPECT_EQ(collision_severity(ground), Severity::MediumHigh);
  EXPECT_EQ(collision_severity(wall), Severity::MediumHigh);
  EXPECT_EQ(collision_severity(grid), Severity::MediumHigh);
  EXPECT_EQ(collision_severity(vial), Severity::MediumLow);
  EXPECT_EQ(collision_severity(arms), Severity::MediumHigh);
}

}  // namespace
}  // namespace rabit::sim
