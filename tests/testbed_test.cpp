// Frame-unification calibration (paper §IV category 2).
#include <gtest/gtest.h>

#include "sim/deck.hpp"
#include "testbed/frame_calibration.hpp"

namespace rabit::tb {
namespace {

namespace ids = sim::deck_ids;

class CalibrationTest : public ::testing::Test {
 protected:
  CalibrationTest() : backend(sim::testbed_profile()) {
    sim::build_hein_testbed_deck(backend);
  }
  sim::LabBackend backend;
};

TEST_F(CalibrationTest, TestbedErrorLandsNearPaperFigure) {
  // Average several sessions, like the bench does.
  double mean = 0;
  constexpr int kSessions = 10;
  for (int s = 0; s < kSessions; ++s) {
    CalibrationOptions opts;
    opts.seed = 100 + static_cast<unsigned>(s);
    CalibrationResult result =
        calibrate_frames(backend.arm(ids::kViperX), backend.arm(ids::kNed2), opts);
    mean += result.mean_probe_error_m;
  }
  mean /= kSessions;
  // Paper: "an average error of 3cm". Accept the right order of magnitude.
  EXPECT_GT(mean, 0.015);
  EXPECT_LT(mean, 0.06);
}

TEST_F(CalibrationTest, CleanMeasurementsFitAlmostExactly) {
  CalibrationOptions opts;
  opts.measurement_noise_m = 0.0;
  opts.gripper_mismatch_m = 0.0;
  CalibrationResult result =
      calibrate_frames(backend.arm(ids::kViperX), backend.arm(ids::kNed2), opts);
  EXPECT_LT(result.mean_probe_error_m, 1e-6);
  EXPECT_LT(result.fit.rms_error, 1e-6);
}

TEST_F(CalibrationTest, ErrorGrowsWithNoise) {
  auto mean_error = [&](double noise, double gripper) {
    double total = 0;
    for (unsigned s = 0; s < 8; ++s) {
      CalibrationOptions opts;
      opts.measurement_noise_m = noise;
      opts.gripper_mismatch_m = gripper;
      opts.seed = 40 + s;
      total += calibrate_frames(backend.arm(ids::kViperX), backend.arm(ids::kNed2), opts)
                   .mean_probe_error_m;
    }
    return total / 8;
  };
  double precise = mean_error(0.0005, 0.0);
  double noisy = mean_error(0.01, 0.0);
  double noisy_mismatched = mean_error(0.01, 0.035);
  EXPECT_LT(precise, noisy);
  EXPECT_LT(noisy, noisy_mismatched);
}

TEST_F(CalibrationTest, DeterministicPerSeed) {
  CalibrationOptions opts;
  opts.seed = 7;
  CalibrationResult a =
      calibrate_frames(backend.arm(ids::kViperX), backend.arm(ids::kNed2), opts);
  CalibrationResult b =
      calibrate_frames(backend.arm(ids::kViperX), backend.arm(ids::kNed2), opts);
  EXPECT_DOUBLE_EQ(a.mean_probe_error_m, b.mean_probe_error_m);
  EXPECT_DOUBLE_EQ(a.max_probe_error_m, b.max_probe_error_m);
}

TEST_F(CalibrationTest, SafetyMarginCoversObservedError) {
  CalibrationOptions opts;
  CalibrationResult result =
      calibrate_frames(backend.arm(ids::kViperX), backend.arm(ids::kNed2), opts);
  double margin = required_safety_margin(result);
  EXPECT_GE(margin, result.mean_probe_error_m);
  EXPECT_GE(margin, result.max_probe_error_m);
}

TEST_F(CalibrationTest, ValidationOfOptions) {
  CalibrationOptions opts;
  opts.calibration_points = 2;
  EXPECT_THROW(static_cast<void>(calibrate_frames(backend.arm(ids::kViperX),
                                                  backend.arm(ids::kNed2), opts)),
               std::invalid_argument);
}

}  // namespace
}  // namespace rabit::tb
