// Multi-door stations (§V-C: "Devices might have multiple doors, for
// instance, for two robot arms to approach the device simultaneously. In its
// current state, RABIT does not handle this." — this extension handles it).
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "devices/robot_arm.hpp"
#include "devices/stations.hpp"
#include "sim/deck.hpp"
#include "trace/trace.hpp"

namespace rabit {
namespace {

using dev::Command;
using dev::MultiDoorStation;
using geom::Aabb;
using geom::Vec3;
namespace ids = sim::deck_ids;

Command make_cmd(std::string device, std::string action, json::Object args = {}) {
  Command c;
  c.device = std::move(device);
  c.action = std::move(action);
  c.args = json::Value(std::move(args));
  return c;
}

json::Object door_arg(const char* door, const char* state) {
  json::Object o;
  o["door"] = std::string(door);
  o["state"] = std::string(state);
  return o;
}

Command move_to(const char* arm, const Vec3& local) {
  json::Object args;
  args["position"] = json::Array{local.x, local.y, local.z};
  return make_cmd(arm, "move_to", std::move(args));
}

MultiDoorStation::DoorSpec west_door() { return {"west", Vec3(-1, 0, 0)}; }
MultiDoorStation::DoorSpec east_door() { return {"east", Vec3(1, 0, 0)}; }

// --- device-level -------------------------------------------------------------

TEST(MultiDoorDevice, ConstructionAndDoors) {
  MultiDoorStation station("mix", {west_door(), east_door()},
                           Aabb::from_center(Vec3(0, 0, 0.1), Vec3(0.2, 0.2, 0.2)));
  EXPECT_EQ(station.doors().size(), 2u);
  EXPECT_EQ(station.door_status("west"), "closed");
  EXPECT_EQ(station.door_status("east"), "closed");
  EXPECT_THROW(static_cast<void>(station.door_status("north")), dev::DeviceError);
  EXPECT_THROW(MultiDoorStation("solo", {west_door()}, Aabb(Vec3(), Vec3(1, 1, 1))),
               std::invalid_argument);
}

TEST(MultiDoorDevice, SetDoorPerName) {
  MultiDoorStation station("mix", {west_door(), east_door()},
                           Aabb::from_center(Vec3(0, 0, 0.1), Vec3(0.2, 0.2, 0.2)));
  station.execute(make_cmd("mix", "set_door", door_arg("west", "open")));
  EXPECT_EQ(station.door_status("west"), "open");
  EXPECT_EQ(station.door_status("east"), "closed");
  station.break_door("east");
  EXPECT_EQ(station.door_status("east"), "broken");
  EXPECT_EQ(station.take_hazards().size(), 1u);
  EXPECT_THROW(station.execute(make_cmd("mix", "set_door", door_arg("east", "open"))),
               dev::DeviceError);
}

TEST(MultiDoorDevice, DoorFacingPicksApproachSide) {
  MultiDoorStation station("mix", {west_door(), east_door()},
                           Aabb::from_center(Vec3(0, 0, 0.1), Vec3(0.2, 0.2, 0.2)));
  EXPECT_EQ(station.door_facing(Vec3(-0.5, 0.05, 0.3)).name, "west");
  EXPECT_EQ(station.door_facing(Vec3(0.5, -0.05, 0.05)).name, "east");
}

// --- full pipeline --------------------------------------------------------------

class MultiDoorPipeline : public ::testing::Test {
 protected:
  MultiDoorPipeline() : backend(sim::testbed_profile()) {
    sim::build_hein_testbed_deck(backend);
    // A mixing station between the two arms with a door toward each:
    // ViperX (based at x=0) approaches from the west, Ned2 (x=0.6) from the
    // east.
    station = &dynamic_cast<MultiDoorStation&>(
        backend.registry().add(std::make_unique<MultiDoorStation>(
            "mixing_station", std::vector<MultiDoorStation::DoorSpec>{west_door(), east_door()},
            Aabb::from_center(Vec3(0.30, -0.42, 0.10), Vec3(0.12, 0.12, 0.16)))));
    backend.add_site({"mixing_station", Vec3(0.30, -0.42, 0.10), "", "", "mixing_station"});
    engine = std::make_unique<core::RabitEngine>(
        core::config_from_backend(backend, core::Variant::Modified));
    supervisor = std::make_unique<trace::Supervisor>(engine.get(), &backend);
    supervisor->start();
  }

  Vec3 entry_local(const char* arm) {
    return backend.arm(arm).to_local(Vec3(0.30, -0.42, 0.10));
  }

  sim::LabBackend backend;
  MultiDoorStation* station = nullptr;
  std::unique_ptr<core::RabitEngine> engine;
  std::unique_ptr<trace::Supervisor> supervisor;
};

TEST_F(MultiDoorPipeline, ConfigCarriesDoors) {
  const core::DeviceMeta* meta = engine->config().find_device("mixing_station");
  ASSERT_NE(meta, nullptr);
  ASSERT_EQ(meta->multi_doors.size(), 2u);
  EXPECT_EQ(meta->door_facing(Vec3(-0.2, -0.42, 0.3)).name, "west");
  EXPECT_EQ(meta->door_facing(Vec3(0.7, -0.42, 0.3)).name, "east");
  // JSON round trip.
  core::EngineConfig round = core::config_from_json(core::config_to_json(engine->config()));
  EXPECT_EQ(round.find_device("mixing_station")->multi_doors.size(), 2u);
}

TEST_F(MultiDoorPipeline, EntryRequiresTheFacingDoor) {
  // ViperX approaches from the west with only the EAST door open: blocked.
  trace::SupervisedStep east_only = supervisor->step(
      make_cmd("mixing_station", "set_door", door_arg("east", "open")));
  EXPECT_FALSE(east_only.alert.has_value());
  trace::Supervisor relaxed(engine.get(), &backend,
                            trace::Supervisor::Options{/*halt_on_alert=*/false, /*recovery=*/{}});
  trace::SupervisedStep blocked = relaxed.step(move_to(ids::kViperX, entry_local(ids::kViperX)));
  ASSERT_TRUE(blocked.alert.has_value());
  EXPECT_EQ(blocked.alert->rule, "G1");
  EXPECT_NE(blocked.alert->message.find("west"), std::string::npos);

  // Open the west door too: entry allowed.
  EXPECT_FALSE(relaxed.step(make_cmd("mixing_station", "set_door", door_arg("west", "open")))
                   .alert.has_value());
  trace::SupervisedStep allowed = relaxed.step(move_to(ids::kViperX, entry_local(ids::kViperX)));
  EXPECT_FALSE(allowed.alert.has_value()) << allowed.alert->describe();
  EXPECT_TRUE(allowed.exec->damage.empty());
}

TEST_F(MultiDoorPipeline, GroundTruthBreaksTheFacingDoor) {
  // No RABIT: ViperX smashes through the (closed) west door; the east door
  // survives.
  trace::Supervisor bare(nullptr, &backend);
  trace::SupervisedStep crash = bare.step(move_to(ids::kViperX, entry_local(ids::kViperX)));
  ASSERT_TRUE(crash.exec.has_value());
  EXPECT_FALSE(crash.exec->damage.empty());
  EXPECT_EQ(station->door_status("west"), "broken");
  EXPECT_EQ(station->door_status("east"), "closed");
}

TEST_F(MultiDoorPipeline, ClosingDoorOnArmInsideBlocked) {
  supervisor->step(make_cmd("mixing_station", "set_door", door_arg("west", "open")));
  supervisor->step(move_to(ids::kViperX, entry_local(ids::kViperX)));
  trace::SupervisedStep closing = supervisor->step(
      make_cmd("mixing_station", "set_door", door_arg("west", "closed")));
  ASSERT_TRUE(closing.alert.has_value());
  EXPECT_EQ(closing.alert->rule, "G2");
}

TEST_F(MultiDoorPipeline, ActiveActionNeedsAllDoorsClosed) {
  // Seat a vial symbolically so G5/G6 pass, then try to start with one door
  // open.
  supervisor->step(make_cmd("mixing_station", "set_door", door_arg("west", "open")));
  station->set_container_inside(ids::kVial1);
  // Rebuild tracked occupancy: believe the vial inside via the tracker API.
  core::RabitEngine fresh(core::config_from_backend(backend, core::Variant::Modified));
  fresh.initialize(backend.registry().fetch_observed_state());
  auto alert = fresh.check_command(make_cmd("mixing_station", "start"));
  ASSERT_TRUE(alert.has_value());
  EXPECT_EQ(alert->rule, "G9");
  EXPECT_NE(alert->message.find("west"), std::string::npos);
}

TEST_F(MultiDoorPipeline, TwoArmsThroughTheirOwnDoors) {
  // The §V-C motivation: each arm services the station through its own door.
  // With time multiplexing the arms take turns; each entry is legal because
  // its own side is open.
  std::vector<Command> workflow = {
      make_cmd("mixing_station", "set_door", door_arg("west", "open")),
      make_cmd("mixing_station", "set_door", door_arg("east", "open")),
      move_to(ids::kViperX, entry_local(ids::kViperX)),
      make_cmd(ids::kViperX, "go_sleep"),
      move_to(ids::kNed2, entry_local(ids::kNed2)),
      make_cmd(ids::kNed2, "go_sleep"),
  };
  trace::RunReport report = supervisor->run(workflow);
  EXPECT_FALSE(report.halted);
  EXPECT_EQ(report.alerts, 0u);
  EXPECT_TRUE(report.damage.empty());
}

}  // namespace
}  // namespace rabit
