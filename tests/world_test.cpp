#include <gtest/gtest.h>

#include "sim/world.hpp"

namespace rabit::sim {
namespace {

using geom::Aabb;
using geom::Segment;
using geom::Vec3;

WorldModel one_box_world() {
  WorldModel w;
  w.add_box("station", Aabb(Vec3(-0.1, -0.1, 0.0), Vec3(0.1, 0.1, 0.2)),
            ObstacleKind::Equipment);
  return w;
}

TEST(WorldModel, FindAndContainQueries) {
  WorldModel w = one_box_world();
  EXPECT_NE(w.find_box("station"), nullptr);
  EXPECT_EQ(w.find_box("ghost"), nullptr);
  EXPECT_NE(w.box_containing(Vec3(0, 0, 0.1)), nullptr);
  EXPECT_EQ(w.box_containing(Vec3(0.5, 0, 0.1)), nullptr);
}

TEST(CheckPath, StraightLineHit) {
  WorldModel w = one_box_world();
  auto hit = check_path(w, Vec3(-0.5, 0, 0.1), Vec3(0.5, 0, 0.1), 0.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->obstacle, "station");
  EXPECT_EQ(hit->kind, ObstacleKind::Equipment);
  EXPECT_FALSE(hit->via_held_object);
  EXPECT_FALSE(hit->arm_vs_arm);
}

TEST(CheckPath, ClearPath) {
  WorldModel w = one_box_world();
  EXPECT_FALSE(check_path(w, Vec3(-0.5, 0, 0.5), Vec3(0.5, 0, 0.5), 0.0).has_value());
  EXPECT_FALSE(check_path(w, Vec3(-0.5, 0.5, 0.1), Vec3(0.5, 0.5, 0.1), 0.0).has_value());
}

TEST(CheckPath, DepartureFromBoundaryAllowed) {
  WorldModel w = one_box_world();
  // Start exactly on the box's top surface and lift straight out.
  auto hit = check_path(w, Vec3(0, 0, 0.2), Vec3(0, 0, 0.5), 0.0);
  EXPECT_FALSE(hit.has_value());
}

TEST(CheckPath, HeldObjectExtendsDownward) {
  WorldModel w = one_box_world();
  // The tip passes 5 cm above the box: clear when empty-handed...
  EXPECT_FALSE(check_path(w, Vec3(-0.5, 0, 0.25), Vec3(0.5, 0, 0.25), 0.0).has_value());
  // ...but a 7 cm vial hanging below clips it.
  auto hit = check_path(w, Vec3(-0.5, 0, 0.25), Vec3(0.5, 0, 0.25), 0.07);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->via_held_object);
}

TEST(CheckPath, IgnoreListSkipsDeliberateEntries) {
  WorldModel w = one_box_world();
  PathCheckOptions opts;
  opts.ignore.push_back("station");
  EXPECT_FALSE(check_path(w, Vec3(-0.5, 0, 0.1), Vec3(0.5, 0, 0.1), 0.0, opts).has_value());
}

TEST(CheckPath, SoftWallToggle) {
  WorldModel w;
  w.add_box("wall", Aabb(Vec3(0, -1, 0), Vec3(0.01, 1, 1)), ObstacleKind::SoftWall);
  PathCheckOptions with_walls;
  auto hit = check_path(w, Vec3(-0.5, 0, 0.5), Vec3(0.5, 0, 0.5), 0.0, with_walls);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->kind, ObstacleKind::SoftWall);
  PathCheckOptions without_walls;
  without_walls.include_soft_walls = false;
  EXPECT_FALSE(check_path(w, Vec3(-0.5, 0, 0.5), Vec3(0.5, 0, 0.5), 0.0, without_walls).has_value());
}

TEST(CheckPath, ArmSegmentProximity) {
  WorldModel w;
  w.arm_segments.push_back(
      ArmSegmentObstacle{"other_arm", Segment{Vec3(0, 0, 0), Vec3(0, 0, 0.5)}, 0.04});
  PathCheckOptions opts;
  opts.moving_arm_radius = 0.04;
  // Passing 5 cm away: within the 8 cm combined radius.
  auto hit = check_path(w, Vec3(-0.5, 0.05, 0.25), Vec3(0.5, 0.05, 0.25), 0.0, opts);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->arm_vs_arm);
  EXPECT_EQ(hit->obstacle, "other_arm");
  // Passing 20 cm away: clear.
  EXPECT_FALSE(check_path(w, Vec3(-0.5, 0.2, 0.25), Vec3(0.5, 0.2, 0.25), 0.0, opts)
                   .has_value());
}

TEST(CheckPath, HeldObjectCanHitArm) {
  WorldModel w;
  w.arm_segments.push_back(
      ArmSegmentObstacle{"other_arm", Segment{Vec3(0, 0, 0), Vec3(0.3, 0, 0)}, 0.04});
  PathCheckOptions opts;
  opts.moving_arm_radius = 0.04;
  // Tip passes 15 cm above the other arm (clear), but the held vial's bottom
  // comes within range.
  EXPECT_FALSE(check_path(w, Vec3(-0.5, 0, 0.15), Vec3(0.5, 0, 0.15), 0.0, opts).has_value());
  auto hit = check_path(w, Vec3(-0.5, 0, 0.15), Vec3(0.5, 0, 0.15), 0.10, opts);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->via_held_object);
  EXPECT_TRUE(hit->arm_vs_arm);
}

TEST(CheckPath, StepValidation) {
  WorldModel w = one_box_world();
  PathCheckOptions opts;
  opts.step = 0.0;
  EXPECT_THROW(
      static_cast<void>(check_path(w, Vec3(-1, 0, 0.1), Vec3(1, 0, 0.1), 0.0, opts)),
      std::invalid_argument);
}

TEST(CheckPath, CoarseStepCanMissThinObstacle) {
  // The premise of ablation A2: polling resolution bounds what the Extended
  // Simulator can catch.
  WorldModel w;
  w.add_box("thin", Aabb(Vec3(0, -1, 0), Vec3(0.005, 1, 1)), ObstacleKind::Wall);
  PathCheckOptions fine;
  fine.step = 0.002;
  EXPECT_TRUE(check_path(w, Vec3(-0.5, 0, 0.5), Vec3(0.5, 0, 0.5), 0.0, fine).has_value());
  PathCheckOptions coarse;
  coarse.step = 0.3;
  EXPECT_FALSE(
      check_path(w, Vec3(-0.51, 0, 0.5), Vec3(0.49, 0, 0.5), 0.0, coarse).has_value());
}

TEST(CheckPoint, TargetOnlySemantics) {
  WorldModel w = one_box_world();
  EXPECT_TRUE(check_point(w, Vec3(0, 0, 0.1), 0.0).has_value());
  EXPECT_FALSE(check_point(w, Vec3(0.5, 0, 0.1), 0.0).has_value());
  // The fallback of §II-B: an en-route collision is invisible to the
  // target-only check.
  EXPECT_FALSE(check_point(w, Vec3(0.5, 0, 0.1), 0.0).has_value());
  EXPECT_TRUE(check_path(w, Vec3(-0.5, 0, 0.1), Vec3(0.5, 0, 0.1), 0.0).has_value());
}

TEST(CollisionReport, Describe) {
  CollisionReport r{"grid", ObstacleKind::Grid, Vec3(1, 2, 3), true, false};
  std::string d = r.describe();
  EXPECT_NE(d.find("grid"), std::string::npos);
  EXPECT_NE(d.find("held object"), std::string::npos);
  CollisionReport arm{"ned2", ObstacleKind::Equipment, Vec3(), false, true};
  EXPECT_NE(arm.describe().find("robot arm"), std::string::npos);
}

TEST(ObstacleKind, Names) {
  EXPECT_EQ(to_string(ObstacleKind::Ground), "ground");
  EXPECT_EQ(to_string(ObstacleKind::SoftWall), "soft_wall");
  EXPECT_EQ(to_string(ObstacleKind::ParkedArm), "parked_arm");
}

}  // namespace
}  // namespace rabit::sim
