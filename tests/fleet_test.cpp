// Fleet-layer tests: latency percentile math, per-seed byte-identical
// determinism, worker-count independence, aggregation arithmetic, and the
// dense-world knob leaving verdicts untouched.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/fleet.hpp"
#include "obs/obs.hpp"

namespace rabit {
namespace {

TEST(SummarizeLatencies, NearestRankPercentiles) {
  std::vector<double> samples;
  for (int i = 100; i >= 1; --i) samples.push_back(static_cast<double>(i));

  fleet::LatencySummary s = fleet::summarize_latencies(samples);
  EXPECT_EQ(s.samples, 100u);
  EXPECT_DOUBLE_EQ(s.p50_us, 50.0);
  EXPECT_DOUBLE_EQ(s.p90_us, 90.0);
  EXPECT_DOUBLE_EQ(s.p99_us, 99.0);
  // ceil(0.999 * 100) = 100: below 1000 samples the nearest-rank p999 IS the
  // max — the conservative direction for a tail gate.
  EXPECT_DOUBLE_EQ(s.p999_us, 100.0);
  EXPECT_DOUBLE_EQ(s.max_us, 100.0);
}

TEST(SummarizeLatencies, EmptyInputYieldsZeroes) {
  fleet::LatencySummary s = fleet::summarize_latencies({});
  EXPECT_EQ(s.samples, 0u);
  EXPECT_DOUBLE_EQ(s.p50_us, 0.0);
  EXPECT_DOUBLE_EQ(s.p99_us, 0.0);
  EXPECT_DOUBLE_EQ(s.p999_us, 0.0);
  EXPECT_DOUBLE_EQ(s.max_us, 0.0);
}

// The exact nearest-rank convention (rank = clamp(ceil(q * N), 1, N), value
// = sorted[rank - 1]) at its edges. These pin the behaviour obs::Histogram
// percentiles must match — one shared implementation, one answer.

TEST(SummarizeLatencies, OneSampleIsEveryPercentile) {
  fleet::LatencySummary s = fleet::summarize_latencies({42.0});
  EXPECT_EQ(s.samples, 1u);
  // ceil(q * 1) = 1 for every q in (0, 1]: the sample is p50, p90, p99,
  // p999, max.
  EXPECT_DOUBLE_EQ(s.p50_us, 42.0);
  EXPECT_DOUBLE_EQ(s.p90_us, 42.0);
  EXPECT_DOUBLE_EQ(s.p99_us, 42.0);
  EXPECT_DOUBLE_EQ(s.p999_us, 42.0);
  EXPECT_DOUBLE_EQ(s.max_us, 42.0);
}

TEST(SummarizeLatencies, TwoSamplesSplitAtTheMedian) {
  fleet::LatencySummary s = fleet::summarize_latencies({9.0, 1.0});
  EXPECT_EQ(s.samples, 2u);
  // ceil(0.50 * 2) = 1 -> the smaller sample; ceil(0.90 * 2) = ceil(0.99 *
  // 2) = 2 -> the larger.
  EXPECT_DOUBLE_EQ(s.p50_us, 1.0);
  EXPECT_DOUBLE_EQ(s.p90_us, 9.0);
  EXPECT_DOUBLE_EQ(s.p99_us, 9.0);
  EXPECT_DOUBLE_EQ(s.p999_us, 9.0);
  EXPECT_DOUBLE_EQ(s.max_us, 9.0);
}

TEST(SummarizeLatencies, AllDuplicatesYieldTheDuplicate) {
  fleet::LatencySummary s = fleet::summarize_latencies({5.0, 5.0, 5.0, 5.0, 5.0});
  EXPECT_EQ(s.samples, 5u);
  EXPECT_DOUBLE_EQ(s.p50_us, 5.0);
  EXPECT_DOUBLE_EQ(s.p90_us, 5.0);
  EXPECT_DOUBLE_EQ(s.p99_us, 5.0);
  EXPECT_DOUBLE_EQ(s.max_us, 5.0);
}

TEST(SummarizeLatencies, MatchesObsHistogramPercentiles) {
  std::vector<double> samples;
  for (int i = 0; i < 37; ++i) samples.push_back(static_cast<double>((i * 17) % 101));

  obs::Registry reg;
  obs::Histogram& h = reg.histogram("h", "");
  for (double v : samples) h.observe(v);
  fleet::LatencySummary s = fleet::summarize_latencies(samples);

  EXPECT_DOUBLE_EQ(s.p50_us, h.percentile(0.50));
  EXPECT_DOUBLE_EQ(s.p90_us, h.percentile(0.90));
  EXPECT_DOUBLE_EQ(s.p99_us, h.percentile(0.99));
  EXPECT_DOUBLE_EQ(s.p999_us, h.percentile(0.999));
}

TEST(FleetDeterminism, SameSeedProducesByteIdenticalTrace) {
  fleet::StreamSpec spec =
      fleet::testbed_stream("repro", core::Variant::ModifiedWithSim, 42);

  fleet::StreamResult first = fleet::FleetRunner::run_stream(spec);
  fleet::StreamResult second = fleet::FleetRunner::run_stream(spec);

  ASSERT_FALSE(first.trace_jsonl.empty());
  EXPECT_EQ(first.trace_jsonl, second.trace_jsonl);
  EXPECT_EQ(first.engine_stats.commands_checked, second.engine_stats.commands_checked);
  EXPECT_EQ(first.report.alerts, second.report.alerts);
}

TEST(FleetDeterminism, WorkerCountDoesNotChangeResults) {
  std::vector<fleet::StreamSpec> specs;
  for (unsigned i = 0; i < 4; ++i) {
    specs.push_back(fleet::testbed_stream("stream-" + std::to_string(i),
                                          core::Variant::ModifiedWithSim, 100 + i));
  }

  fleet::FleetReport serial = fleet::FleetRunner({.workers = 1}).run(specs);
  fleet::FleetReport pooled = fleet::FleetRunner({.workers = 4}).run(specs);

  ASSERT_EQ(serial.streams.size(), specs.size());
  ASSERT_EQ(pooled.streams.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE(specs[i].name);
    // Stream i lands at index i regardless of finish order.
    EXPECT_EQ(serial.streams[i].name, specs[i].name);
    EXPECT_EQ(pooled.streams[i].name, specs[i].name);
    EXPECT_EQ(serial.streams[i].trace_jsonl, pooled.streams[i].trace_jsonl);
    EXPECT_EQ(serial.streams[i].engine_stats.commands_checked,
              pooled.streams[i].engine_stats.commands_checked);
    EXPECT_EQ(serial.streams[i].report.alerts, pooled.streams[i].report.alerts);
  }
}

TEST(FleetAggregation, TotalsSumPerStreamStats) {
  std::vector<fleet::StreamSpec> specs;
  for (unsigned i = 0; i < 3; ++i) {
    specs.push_back(fleet::testbed_stream("agg-" + std::to_string(i),
                                          core::Variant::ModifiedWithSim, 7 + i));
  }

  fleet::FleetReport report = fleet::FleetRunner({.workers = 2}).run(specs);

  std::size_t commands = 0;
  std::size_t alerts = 0;
  std::size_t trajectory_checks = 0;
  for (const fleet::StreamResult& stream : report.streams) {
    commands += stream.engine_stats.commands_checked;
    alerts += stream.report.alerts;
    trajectory_checks += stream.engine_stats.trajectory_checks;
  }
  EXPECT_GT(commands, 0u);
  EXPECT_EQ(report.commands_checked, commands);
  EXPECT_EQ(report.totals.commands_checked, commands);
  EXPECT_EQ(report.alerts, alerts);
  EXPECT_EQ(report.totals.trajectory_checks, trajectory_checks);

  EXPECT_GT(report.wall_s, 0.0);
  EXPECT_GT(report.commands_per_s, 0.0);
  EXPECT_GT(report.check_latency.samples, 0u);
  EXPECT_LE(report.check_latency.p50_us, report.check_latency.p90_us);
  EXPECT_LE(report.check_latency.p90_us, report.check_latency.p99_us);
  EXPECT_LE(report.check_latency.p99_us, report.check_latency.p999_us);
  EXPECT_LE(report.check_latency.p999_us, report.check_latency.max_us);
}

// --- observability: golden determinism and the sharded-sink audit -----------

std::vector<fleet::StreamSpec> observed_specs(std::size_t n) {
  std::vector<fleet::StreamSpec> specs;
  for (unsigned i = 0; i < n; ++i) {
    fleet::StreamSpec spec = fleet::testbed_stream("obs-" + std::to_string(i),
                                                   core::Variant::ModifiedWithSim, 500 + i);
    spec.obs = true;
    specs.push_back(std::move(spec));
  }
  return specs;
}

TEST(FleetObservability, MergedExportIsByteIdenticalAcrossWorkerCounts) {
  std::vector<fleet::StreamSpec> specs = observed_specs(16);

  std::string golden_events;
  std::string golden_trace;
  std::string golden_fleet_jsonl;
  for (std::size_t workers : {1u, 4u, 16u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    fleet::FleetReport report = fleet::FleetRunner({.workers = workers}).run(specs);
    ASSERT_NE(report.obs_events, nullptr);
    ASSERT_NE(report.obs_metrics, nullptr);

    std::string events = obs::export_events_jsonl(*report.obs_events);
    std::string trace = obs::export_chrome_trace(*report.obs_events);
    std::string fleet_jsonl;
    for (const fleet::StreamResult& s : report.streams) fleet_jsonl += s.trace_jsonl;

    if (golden_events.empty()) {
      golden_events = events;
      golden_trace = trace;
      golden_fleet_jsonl = fleet_jsonl;
      ASSERT_FALSE(golden_events.empty());
    } else {
      // Byte-identical: merge order is stream-spec order, never finish
      // order, and the exports carry modeled time only.
      EXPECT_EQ(events, golden_events);
      EXPECT_EQ(trace, golden_trace);
      EXPECT_EQ(fleet_jsonl, golden_fleet_jsonl);
    }
  }

  // A repeated run at the same worker count is also byte-identical.
  fleet::FleetReport again = fleet::FleetRunner({.workers = 4}).run(specs);
  EXPECT_EQ(obs::export_events_jsonl(*again.obs_events), golden_events);
  EXPECT_EQ(obs::export_chrome_trace(*again.obs_events), golden_trace);
}

TEST(FleetObservability, MergedMetricsAggregatePerStreamRegistries) {
  std::vector<fleet::StreamSpec> specs = observed_specs(4);
  fleet::FleetReport report = fleet::FleetRunner({.workers = 4}).run(specs);
  ASSERT_NE(report.obs_metrics, nullptr);

  std::uint64_t per_stream_total = 0;
  for (const fleet::StreamResult& s : report.streams) {
    ASSERT_NE(s.obs_metrics, nullptr);
    const obs::Counter* c = s.obs_metrics->find_counter("rabit_commands_total");
    ASSERT_NE(c, nullptr);
    per_stream_total += c->value();
  }
  const obs::Counter* merged = report.obs_metrics->find_counter("rabit_commands_total");
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->value(), per_stream_total);
  EXPECT_EQ(merged->value(), report.commands_checked);

  const obs::Gauge* streams = report.obs_metrics->find_gauge("rabit_fleet_streams");
  ASSERT_NE(streams, nullptr);
  EXPECT_DOUBLE_EQ(streams->value(), 4.0);

  // Unobserved specs leave the report's obs fields null.
  std::vector<fleet::StreamSpec> plain = observed_specs(2);
  for (fleet::StreamSpec& s : plain) s.obs = false;
  fleet::FleetReport no_obs = fleet::FleetRunner({.workers = 2}).run(plain);
  EXPECT_EQ(no_obs.obs_events, nullptr);
  EXPECT_EQ(no_obs.obs_metrics, nullptr);
}

// The sharded-sink audit (run under TSan in CI): 64 observed streams over a
// heavily contended pool. Every stream owns its collector and registry —
// metric handles are deliberately unsynchronized, so this test is exactly
// the workload that would trip TSan if any observability state were ever
// shared across workers. The assertions pin the aggregation arithmetic; the
// sanitizer pins the absence of data races.
TEST(FleetObservability, SixtyFourStreamShardedSinkAudit) {
  std::vector<fleet::StreamSpec> specs = observed_specs(64);
  fleet::FleetReport report = fleet::FleetRunner({.workers = 16}).run(specs);

  ASSERT_EQ(report.streams.size(), 64u);
  ASSERT_NE(report.obs_events, nullptr);
  std::size_t span_total = 0;
  for (const fleet::StreamResult& s : report.streams) {
    ASSERT_NE(s.obs_events, nullptr);
    span_total += s.obs_events->spans().size();
    EXPECT_EQ(s.obs_events->spans().size(), s.report.steps.size());
  }
  EXPECT_EQ(report.obs_events->spans().size(), span_total);
  const obs::Counter* merged = report.obs_metrics->find_counter("rabit_commands_total");
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->value(), report.commands_checked);
  const obs::Histogram* lat = report.obs_metrics->find_histogram("rabit_check_latency_us");
  ASSERT_NE(lat, nullptr);
  EXPECT_GT(lat->count(), 0u);
}

TEST(DenseWorld, ExtraObstaclesDoNotChangeVerdicts) {
  fleet::StreamSpec sparse =
      fleet::testbed_stream("density", core::Variant::ModifiedWithSim, 42);
  fleet::StreamSpec dense = sparse;
  dense.extra_obstacles = 400;

  fleet::StreamResult sparse_result = fleet::FleetRunner::run_stream(sparse);
  fleet::StreamResult dense_result = fleet::FleetRunner::run_stream(dense);

  // The shelf rack sits outside every motion path: same trace, same alerts.
  ASSERT_FALSE(sparse_result.trace_jsonl.empty());
  EXPECT_EQ(sparse_result.trace_jsonl, dense_result.trace_jsonl);
  EXPECT_EQ(sparse_result.report.alerts, dense_result.report.alerts);
  EXPECT_EQ(sparse_result.engine_stats.commands_checked,
            dense_result.engine_stats.commands_checked);
}

}  // namespace
}  // namespace rabit
