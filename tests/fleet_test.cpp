// Fleet-layer tests: latency percentile math, per-seed byte-identical
// determinism, worker-count independence, aggregation arithmetic, and the
// dense-world knob leaving verdicts untouched.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fleet/fleet.hpp"

namespace rabit {
namespace {

TEST(SummarizeLatencies, NearestRankPercentiles) {
  std::vector<double> samples;
  for (int i = 100; i >= 1; --i) samples.push_back(static_cast<double>(i));

  fleet::LatencySummary s = fleet::summarize_latencies(samples);
  EXPECT_EQ(s.samples, 100u);
  EXPECT_DOUBLE_EQ(s.p50_us, 50.0);
  EXPECT_DOUBLE_EQ(s.p90_us, 90.0);
  EXPECT_DOUBLE_EQ(s.p99_us, 99.0);
  EXPECT_DOUBLE_EQ(s.max_us, 100.0);
}

TEST(SummarizeLatencies, EmptyInputYieldsZeroes) {
  fleet::LatencySummary s = fleet::summarize_latencies({});
  EXPECT_EQ(s.samples, 0u);
  EXPECT_DOUBLE_EQ(s.p50_us, 0.0);
  EXPECT_DOUBLE_EQ(s.p99_us, 0.0);
  EXPECT_DOUBLE_EQ(s.max_us, 0.0);
}

TEST(FleetDeterminism, SameSeedProducesByteIdenticalTrace) {
  fleet::StreamSpec spec =
      fleet::testbed_stream("repro", core::Variant::ModifiedWithSim, 42);

  fleet::StreamResult first = fleet::FleetRunner::run_stream(spec);
  fleet::StreamResult second = fleet::FleetRunner::run_stream(spec);

  ASSERT_FALSE(first.trace_jsonl.empty());
  EXPECT_EQ(first.trace_jsonl, second.trace_jsonl);
  EXPECT_EQ(first.engine_stats.commands_checked, second.engine_stats.commands_checked);
  EXPECT_EQ(first.report.alerts, second.report.alerts);
}

TEST(FleetDeterminism, WorkerCountDoesNotChangeResults) {
  std::vector<fleet::StreamSpec> specs;
  for (unsigned i = 0; i < 4; ++i) {
    specs.push_back(fleet::testbed_stream("stream-" + std::to_string(i),
                                          core::Variant::ModifiedWithSim, 100 + i));
  }

  fleet::FleetReport serial = fleet::FleetRunner({.workers = 1}).run(specs);
  fleet::FleetReport pooled = fleet::FleetRunner({.workers = 4}).run(specs);

  ASSERT_EQ(serial.streams.size(), specs.size());
  ASSERT_EQ(pooled.streams.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE(specs[i].name);
    // Stream i lands at index i regardless of finish order.
    EXPECT_EQ(serial.streams[i].name, specs[i].name);
    EXPECT_EQ(pooled.streams[i].name, specs[i].name);
    EXPECT_EQ(serial.streams[i].trace_jsonl, pooled.streams[i].trace_jsonl);
    EXPECT_EQ(serial.streams[i].engine_stats.commands_checked,
              pooled.streams[i].engine_stats.commands_checked);
    EXPECT_EQ(serial.streams[i].report.alerts, pooled.streams[i].report.alerts);
  }
}

TEST(FleetAggregation, TotalsSumPerStreamStats) {
  std::vector<fleet::StreamSpec> specs;
  for (unsigned i = 0; i < 3; ++i) {
    specs.push_back(fleet::testbed_stream("agg-" + std::to_string(i),
                                          core::Variant::ModifiedWithSim, 7 + i));
  }

  fleet::FleetReport report = fleet::FleetRunner({.workers = 2}).run(specs);

  std::size_t commands = 0;
  std::size_t alerts = 0;
  std::size_t trajectory_checks = 0;
  for (const fleet::StreamResult& stream : report.streams) {
    commands += stream.engine_stats.commands_checked;
    alerts += stream.report.alerts;
    trajectory_checks += stream.engine_stats.trajectory_checks;
  }
  EXPECT_GT(commands, 0u);
  EXPECT_EQ(report.commands_checked, commands);
  EXPECT_EQ(report.totals.commands_checked, commands);
  EXPECT_EQ(report.alerts, alerts);
  EXPECT_EQ(report.totals.trajectory_checks, trajectory_checks);

  EXPECT_GT(report.wall_s, 0.0);
  EXPECT_GT(report.commands_per_s, 0.0);
  EXPECT_GT(report.check_latency.samples, 0u);
  EXPECT_LE(report.check_latency.p50_us, report.check_latency.p90_us);
  EXPECT_LE(report.check_latency.p90_us, report.check_latency.p99_us);
  EXPECT_LE(report.check_latency.p99_us, report.check_latency.max_us);
}

TEST(DenseWorld, ExtraObstaclesDoNotChangeVerdicts) {
  fleet::StreamSpec sparse =
      fleet::testbed_stream("density", core::Variant::ModifiedWithSim, 42);
  fleet::StreamSpec dense = sparse;
  dense.extra_obstacles = 400;

  fleet::StreamResult sparse_result = fleet::FleetRunner::run_stream(sparse);
  fleet::StreamResult dense_result = fleet::FleetRunner::run_stream(dense);

  // The shelf rack sits outside every motion path: same trace, same alerts.
  ASSERT_FALSE(sparse_result.trace_jsonl.empty());
  EXPECT_EQ(sparse_result.trace_jsonl, dense_result.trace_jsonl);
  EXPECT_EQ(sparse_result.report.alerts, dense_result.report.alerts);
  EXPECT_EQ(sparse_result.engine_stats.commands_checked,
            dense_result.engine_stats.commands_checked);
}

}  // namespace
}  // namespace rabit
