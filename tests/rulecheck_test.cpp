// Tests for the rulebase verifier (R1..R8) — including the differential
// gate: every witness attached to any finding in this suite is re-replayed
// through the real RabitEngine and must confirm (zero unconfirmed
// witnesses), and every witnessless finding must carry a proof tag.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/rulecheck.hpp"
#include "core/config.hpp"
#include "scenario/fuzz.hpp"
#include "sim/deck.hpp"

using namespace rabit;
using analysis::RuleCheckOptions;
using analysis::RuleCheckReport;
using analysis::RuleFinding;
using analysis::Severity;

namespace {

core::EngineConfig testbed_config() {
  sim::LabBackend backend(sim::testbed_profile());
  sim::build_hein_testbed_deck(backend);
  return core::config_from_backend(backend, core::Variant::Modified);
}

core::DeviceMeta* find_mutable(core::EngineConfig& config, std::string_view id) {
  for (core::DeviceMeta& d : config.devices) {
    if (d.id == id) return &d;
  }
  return nullptr;
}

std::vector<const RuleFinding*> findings_for(const RuleCheckReport& report,
                                             std::string_view rule) {
  std::vector<const RuleFinding*> out;
  for (const RuleFinding& f : report.findings) {
    if (f.diagnostic.rule == rule) out.push_back(&f);
  }
  return out;
}

bool any_proof(const RuleCheckReport& report, const std::string& tag) {
  return std::any_of(report.findings.begin(), report.findings.end(),
                     [&tag](const RuleFinding& f) { return f.proof == tag; });
}

// The mutated configs the suite diagnoses; the differential gate re-replays
// every witness each of them produces.
core::EngineConfig duplicate_threshold_config() {
  core::EngineConfig config = testbed_config();
  core::DeviceMeta* hotplate = find_mutable(config, "hotplate");
  hotplate->thresholds.push_back(core::ThresholdSpec{"set_temperature", "celsius", 100.0});
  return config;
}

core::EngineConfig nested_wall_config() {
  core::EngineConfig config = testbed_config();
  config.soft_walls.push_back(core::SoftWallSpec{
      "ned2", geom::Aabb::from_center({0.70, 0.40, 0.20}, {0.40, 0.40, 0.40})});
  config.soft_walls.push_back(core::SoftWallSpec{
      "ned2", geom::Aabb::from_center({0.70, 0.40, 0.20}, {0.10, 0.10, 0.10})});
  return config;
}

core::EngineConfig wall_on_sleep_config() {
  core::EngineConfig config = testbed_config();
  const core::DeviceMeta* viperx = config.find_device("viperx");
  config.soft_walls.push_back(core::SoftWallSpec{
      "viperx", geom::Aabb::from_center(viperx->sleep_position_lab, {0.10, 0.10, 0.10})});
  return config;
}

core::EngineConfig negative_threshold_config() {
  core::EngineConfig config = testbed_config();
  core::DeviceMeta* pump = find_mutable(config, "syringe_pump");
  pump->thresholds.push_back(core::ThresholdSpec{"dose_solvent", "volume", -1.0});
  return config;
}

core::EngineConfig dangling_reference_config() {
  core::EngineConfig config = testbed_config();
  find_mutable(config, "camera")->action_aliases.emplace_back("zap", "teleport");
  config.soft_walls.push_back(core::SoftWallSpec{
      "ghost", geom::Aabb::from_center({1.0, 1.0, 0.2}, {0.1, 0.1, 0.1})});
  core::SiteMeta limbo;
  limbo.name = "limbo";
  limbo.lab_position = {1.0, 1.0, 0.05};
  limbo.grid_device = "no_such_grid";
  config.sites.push_back(limbo);
  return config;
}

core::EngineConfig alias_divergence_config() {
  core::EngineConfig config = testbed_config();
  find_mutable(config, "hotplate")->action_aliases.emplace_back("warm", "set_temperature");
  return config;
}

core::EngineConfig overlapping_threshold_config() {
  core::EngineConfig config = testbed_config();
  core::DeviceMeta* hotplate = find_mutable(config, "hotplate");
  hotplate->action_aliases.emplace_back("heat", "set_temperature");
  hotplate->thresholds.push_back(core::ThresholdSpec{"heat", "celsius", 80.0});
  return config;
}

std::vector<core::EngineConfig> all_diagnosed_configs() {
  std::vector<core::EngineConfig> configs;
  configs.push_back(testbed_config());
  configs.push_back(duplicate_threshold_config());
  configs.push_back(nested_wall_config());
  configs.push_back(wall_on_sleep_config());
  configs.push_back(negative_threshold_config());
  configs.push_back(dangling_reference_config());
  configs.push_back(alias_divergence_config());
  configs.push_back(overlapping_threshold_config());
  return configs;
}

}  // namespace

// --- the clean baseline ------------------------------------------------------

TEST(RuleCheck, TestbedIsFreeOfErrorFindings) {
  RuleCheckReport report = scenario::check_rules_with_coverage(testbed_config());
  for (const RuleFinding& f : report.findings) {
    EXPECT_NE(f.diagnostic.severity, Severity::Error)
        << f.diagnostic.rule << ": " << f.diagnostic.message;
  }
  EXPECT_FALSE(report.has_errors());
}

TEST(RuleCheck, EmptyCoverageSkipsR8) {
  RuleCheckReport report = analysis::check_rules(testbed_config());
  EXPECT_TRUE(findings_for(report, "R8").empty());
}

// --- R1: shadowed / subsumed rules -------------------------------------------

TEST(RuleCheck, R1DuplicateThresholdShadowsTheSecond) {
  RuleCheckReport report = analysis::check_rules(duplicate_threshold_config());
  auto r1 = findings_for(report, "R1");
  ASSERT_EQ(r1.size(), 1u);
  EXPECT_EQ(r1[0]->diagnostic.severity, Severity::Error);
  ASSERT_TRUE(r1[0]->witness.has_value());
  // First-match is 150, the dead spec claims 100: 150 itself distinguishes
  // them (dead spec would block it, the engine admits it).
  ASSERT_EQ(r1[0]->witness->steps.size(), 1u);
  EXPECT_EQ(r1[0]->witness->steps[0].cmd.action, "set_temperature");
  EXPECT_EQ(r1[0]->witness->steps[0].expect_rule, "");
}

TEST(RuleCheck, R1NestedSoftWallIsSubsumed) {
  RuleCheckReport report = analysis::check_rules(nested_wall_config());
  auto r1 = findings_for(report, "R1");
  ASSERT_EQ(r1.size(), 1u);
  ASSERT_TRUE(r1[0]->witness.has_value());
  EXPECT_EQ(r1[0]->witness->steps[0].cmd.device, "ned2");
  EXPECT_EQ(r1[0]->witness->steps[0].cmd.action, "move_to");
  EXPECT_EQ(r1[0]->witness->steps[0].expect_rule, "M2");
}

// --- R2 / R3: contradictions and empty admissible sets -----------------------

TEST(RuleCheck, R2WallSwallowingSleepTargetContradictsMultiplexing) {
  RuleCheckReport report = analysis::check_rules(wall_on_sleep_config());
  auto r2 = findings_for(report, "R2");
  ASSERT_EQ(r2.size(), 1u);
  EXPECT_EQ(r2[0]->diagnostic.severity, Severity::Error);
  ASSERT_TRUE(r2[0]->witness.has_value());
  // Minimal contradiction story: wake viperx, M2 refuses its go_sleep, M1
  // then refuses the other arm's motion — the fleet is wedged.
  const analysis::RuleWitness& w = *r2[0]->witness;
  ASSERT_EQ(w.steps.size(), 3u);
  EXPECT_EQ(w.steps[0].cmd.action, "go_home");
  EXPECT_EQ(w.steps[0].expect_rule, "");
  EXPECT_EQ(w.steps[1].cmd.action, "go_sleep");
  EXPECT_EQ(w.steps[1].expect_rule, "M2");
  EXPECT_EQ(w.steps[2].expect_rule, "M1");

  // The same wall also makes go_sleep unsatisfiable outright: R3 proof.
  EXPECT_TRUE(any_proof(report, "R3:fixed-target-in-wall:viperx:sleep"));
}

TEST(RuleCheck, R3NegativeThresholdOnNonNegativeDomain) {
  RuleCheckReport report = analysis::check_rules(negative_threshold_config());
  auto r3 = findings_for(report, "R3");
  ASSERT_EQ(r3.size(), 1u);
  EXPECT_EQ(r3[0]->diagnostic.severity, Severity::Error);
  EXPECT_FALSE(r3[0]->witness.has_value());
  EXPECT_EQ(r3[0]->proof,
            "R3:empty-admissible:syringe_pump:dose_solvent:volume:domain=[0,inf):max=-1");
}

// --- R4: dangling references -------------------------------------------------

TEST(RuleCheck, R4DanglingReferencesCarryProofTags) {
  RuleCheckReport report = analysis::check_rules(dangling_reference_config());
  EXPECT_TRUE(any_proof(report, "R4:alias-to-unknown:camera:zap->teleport"));
  EXPECT_TRUE(any_proof(report, "R4:wall-on-unknown-arm:ghost"));
  EXPECT_TRUE(any_proof(report, "R4:site-to-unknown-device:limbo:no_such_grid"));
  // The wall and site are errors; the alias is a warning.
  for (const RuleFinding* f : findings_for(report, "R4")) {
    if (f->proof.rfind("R4:alias", 0) == 0) {
      EXPECT_EQ(f->diagnostic.severity, Severity::Warning);
    } else {
      EXPECT_EQ(f->diagnostic.severity, Severity::Error);
    }
  }
}

// --- R5 / R7: alias canonicalization fault lines -----------------------------

TEST(RuleCheck, R5AliasDivergenceBetweenGuardAndAnalyzer) {
  RuleCheckReport report = analysis::check_rules(alias_divergence_config());
  auto r5 = findings_for(report, "R5");
  ASSERT_EQ(r5.size(), 1u);
  EXPECT_EQ(r5[0]->diagnostic.severity, Severity::Error);
  ASSERT_TRUE(r5[0]->witness.has_value());
  const analysis::RuleWitness& w = *r5[0]->witness;
  ASSERT_EQ(w.steps.size(), 1u);
  // The engine canonicalizes 'warm' -> set_temperature and blocks on the
  // 150-degree threshold; the raw-stream analyzer admits the alias.
  EXPECT_EQ(w.steps[0].cmd.device, "hotplate");
  EXPECT_EQ(w.steps[0].cmd.action, "warm");
  EXPECT_EQ(w.steps[0].expect_rule, "G11");
  EXPECT_EQ(w.analyzer_rule, "");
}

TEST(RuleCheck, R7AliasAndCanonicalThresholdsDisagree) {
  RuleCheckReport report = analysis::check_rules(overlapping_threshold_config());
  auto r7 = findings_for(report, "R7");
  ASSERT_EQ(r7.size(), 1u);
  EXPECT_EQ(r7[0]->diagnostic.severity, Severity::Error);
  ASSERT_TRUE(r7[0]->witness.has_value());
  // Witness sits in the gap (80, 150]: the alias bound would block it, the
  // canonical bound the engine actually applies admits it.
  ASSERT_EQ(r7[0]->witness->steps.size(), 1u);
  EXPECT_EQ(r7[0]->witness->steps[0].cmd.action, "heat");
  EXPECT_EQ(r7[0]->witness->steps[0].expect_rule, "");
}

// --- R8: dark-key classification against the measured map --------------------

TEST(RuleCheck, R8ClassifiesDarkKeysAndFlagsStaleMaps) {
  RuleCheckOptions options;
  options.measured_coverage = {"rule:G1", "rule:S1"};  // S1 needs a sensor: stale
  RuleCheckReport report = analysis::check_rules(testbed_config(), options);
  EXPECT_TRUE(any_proof(report, "R8:stale:S1:missing=no-sensor-device"));
  EXPECT_TRUE(any_proof(report, "R8:dead:M2:missing=no-soft-wall"));
  EXPECT_TRUE(any_proof(report, "R8:steer:C2"));
  EXPECT_TRUE(report.has_errors());  // the stale claim is an error
}

TEST(RuleCheck, R8WithRealCoverageMapHasNoStaleClaims) {
  RuleCheckReport report = scenario::check_rules_with_coverage(testbed_config());
  for (const RuleFinding* f : findings_for(report, "R8")) {
    EXPECT_NE(f->proof.rfind("R8:stale:", 0), 0u) << f->proof;
  }
}

// --- the differential gate ---------------------------------------------------

// Every witness any diagnosed config produces must replay through the real
// engine and confirm; every witnessless finding must carry a proof tag.
// Zero unconfirmed witnesses, zero prose-only findings.
TEST(RuleCheck, DifferentialGateReplaysEveryWitness) {
  std::size_t witnesses = 0;
  std::size_t proofs = 0;
  for (const core::EngineConfig& config : all_diagnosed_configs()) {
    RuleCheckReport report = scenario::check_rules_with_coverage(config);
    for (const RuleFinding& f : report.findings) {
      EXPECT_NE(f.witness.has_value(), !f.proof.empty())
          << f.diagnostic.rule << " must carry exactly one of witness/proof";
      if (f.witness) {
        ++witnesses;
        analysis::WitnessReplay replay = analysis::replay_witness(config, *f.witness);
        EXPECT_TRUE(replay.confirmed)
            << f.diagnostic.rule << " witness failed to replay: " << replay.detail;
      } else {
        ++proofs;
        EXPECT_FALSE(f.proof.empty());
      }
    }
  }
  // The suite exercises both evidence kinds in volume.
  EXPECT_GE(witnesses, 5u);
  EXPECT_GE(proofs, 5u);
}

// --- serialization and determinism -------------------------------------------

TEST(RuleCheck, WitnessJsonRoundTrips) {
  analysis::RuleWitness witness;
  dev::Command cmd;
  cmd.device = "hotplate";
  cmd.action = "warm";
  json::Object args;
  args["celsius"] = 151.0;
  cmd.args = json::Value(std::move(args));
  witness.steps.push_back(analysis::WitnessStep{cmd, "G11"});
  witness.analyzer_rule = "";

  analysis::RuleWitness back = analysis::witness_from_json(analysis::witness_to_json(witness));
  ASSERT_EQ(back.steps.size(), 1u);
  EXPECT_EQ(back.steps[0].cmd.device, "hotplate");
  EXPECT_EQ(back.steps[0].cmd.action, "warm");
  EXPECT_EQ(back.steps[0].cmd.args, cmd.args);
  EXPECT_EQ(back.steps[0].expect_rule, "G11");
  EXPECT_EQ(back.analyzer_rule, "");
}

TEST(RuleCheck, FindingsAreSortedForDeterministicEmission) {
  core::EngineConfig config = dangling_reference_config();
  config.soft_walls.push_back(core::SoftWallSpec{
      "viperx",
      geom::Aabb::from_center(config.find_device("viperx")->sleep_position_lab,
                              {0.10, 0.10, 0.10})});
  RuleCheckReport first = scenario::check_rules_with_coverage(config);
  RuleCheckReport second = scenario::check_rules_with_coverage(config);
  ASSERT_EQ(first.findings.size(), second.findings.size());
  for (std::size_t i = 0; i < first.findings.size(); ++i) {
    EXPECT_EQ(first.findings[i].diagnostic.rule, second.findings[i].diagnostic.rule);
    EXPECT_EQ(first.findings[i].diagnostic.message, second.findings[i].diagnostic.message);
  }
  EXPECT_TRUE(std::is_sorted(first.findings.begin(), first.findings.end(),
                             [](const RuleFinding& a, const RuleFinding& b) {
                               return a.diagnostic.rule < b.diagnostic.rule;
                             }));
}

// --- corpus-spec witness documents (rabit_fuzz --replay) ---------------------

TEST(RuleCheck, WitnessEntryDocumentsReplayConfirmed) {
  core::EngineConfig config = alias_divergence_config();
  RuleCheckReport report = scenario::check_rules_with_coverage(config);
  std::size_t replayed = 0;
  for (const RuleFinding& f : report.findings) {
    if (!f.witness && f.proof.empty()) continue;
    json::Value doc = scenario::witness_entry_to_json("doc", config, f);
    ASSERT_TRUE(scenario::is_witness_entry(doc));
    scenario::WitnessEntryReplay replay = scenario::replay_witness_entry(doc);
    EXPECT_TRUE(replay.confirmed) << f.diagnostic.rule << ": " << replay.detail;
    ++replayed;
  }
  EXPECT_GE(replayed, 2u);  // at least the R5 witness and an R8 proof

  // A campaign corpus entry is not a witness document.
  json::Object not_witness;
  not_witness["spec"] = json::Value(json::Object{});
  EXPECT_FALSE(scenario::is_witness_entry(json::Value(std::move(not_witness))));
}
