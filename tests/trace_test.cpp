// Supervisor (RATracer-equivalent) and trace-format tests.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "devices/robot_arm.hpp"
#include "sim/deck.hpp"
#include "trace/trace.hpp"

namespace rabit::trace {
namespace {

using dev::Command;
using geom::Vec3;
namespace ids = sim::deck_ids;

Command make_cmd(std::string device, std::string action, json::Object args = {}) {
  Command c;
  c.device = std::move(device);
  c.action = std::move(action);
  c.args = json::Value(std::move(args));
  return c;
}

json::Object door(const char* state) {
  json::Object o;
  o["state"] = std::string(state);
  return o;
}

class SupervisorTest : public ::testing::Test {
 protected:
  SupervisorTest() : backend(sim::testbed_profile()) {
    sim::build_hein_testbed_deck(backend);
    engine = std::make_unique<core::RabitEngine>(
        core::config_from_backend(backend, core::Variant::Modified));
  }

  Vec3 site_local(const char* arm, const char* site) {
    return backend.arm(arm).to_local(backend.find_site(site)->lab_position);
  }

  Command move(const char* arm, const Vec3& local) {
    json::Object args;
    args["position"] = json::Array{local.x, local.y, local.z};
    return make_cmd(arm, "move_to", std::move(args));
  }

  sim::LabBackend backend;
  std::unique_ptr<core::RabitEngine> engine;
};

TEST_F(SupervisorTest, NullBackendRejected) {
  EXPECT_THROW(Supervisor(engine.get(), nullptr), std::invalid_argument);
}

TEST_F(SupervisorTest, SafeCommandForwarded) {
  Supervisor sup(engine.get(), &backend);
  sup.start();
  SupervisedStep step = sup.step(make_cmd(ids::kDosingDevice, "set_door", door("open")));
  EXPECT_FALSE(step.alert.has_value());
  ASSERT_TRUE(step.exec.has_value());
  EXPECT_TRUE(step.exec->executed);
  EXPECT_FALSE(step.halted);
  EXPECT_EQ(sup.log().records().back().outcome, Outcome::Executed);
}

TEST_F(SupervisorTest, AlertBlocksExecutionAndHalts) {
  Supervisor sup(engine.get(), &backend);
  sup.start();
  // Into the closed dosing device: RABIT must stop it *before* execution.
  SupervisedStep step = sup.step(move(ids::kViperX, site_local(ids::kViperX, "dosing_device")));
  ASSERT_TRUE(step.alert.has_value());
  EXPECT_FALSE(step.exec.has_value());  // the command never reached the device
  EXPECT_TRUE(step.halted);
  EXPECT_TRUE(backend.damage_log().empty());  // nothing physically happened
  // The halted experiment refuses further commands.
  SupervisedStep next = sup.step(make_cmd(ids::kDosingDevice, "stop_action"));
  EXPECT_TRUE(next.halted);
  EXPECT_FALSE(next.exec.has_value());
}

TEST_F(SupervisorTest, HaltOnAlertCanBeDisabled) {
  Supervisor sup(engine.get(), &backend, Supervisor::Options{/*halt_on_alert=*/false, /*recovery=*/{}});
  sup.start();
  SupervisedStep step = sup.step(move(ids::kViperX, site_local(ids::kViperX, "dosing_device")));
  ASSERT_TRUE(step.alert.has_value());
  EXPECT_FALSE(step.halted);
  // Follow-up commands still execute (the fail-operational mode the paper
  // discusses as an alternative to preemptive stopping).
  SupervisedStep next = sup.step(make_cmd(ids::kDosingDevice, "stop_action"));
  EXPECT_TRUE(next.exec.has_value());
}

TEST_F(SupervisorTest, WithoutEngineEverythingForwards) {
  Supervisor sup(nullptr, &backend);
  sup.start();
  // The unsafe move executes and causes real damage — no RABIT, no guard.
  SupervisedStep step = sup.step(move(ids::kViperX, site_local(ids::kViperX, "dosing_device")));
  EXPECT_FALSE(step.alert.has_value());
  ASSERT_TRUE(step.exec.has_value());
  EXPECT_FALSE(step.exec->damage.empty());
}

TEST_F(SupervisorTest, SilentSkipRecorded) {
  Supervisor sup(engine.get(), &backend);
  sup.start();
  SupervisedStep step = sup.step(move(ids::kViperX, Vec3(0.3, 0.3, 2.0)));
  ASSERT_TRUE(step.exec.has_value());
  EXPECT_TRUE(step.exec->silently_skipped);
  EXPECT_EQ(sup.log().records().back().outcome, Outcome::SilentlySkipped);
}

TEST_F(SupervisorTest, FirmwareErrorRecorded) {
  Supervisor sup(engine.get(), &backend);
  sup.start();
  // Ned2 throws on unreachable targets (ViperX would skip).
  SupervisedStep step = sup.step(move(ids::kNed2, Vec3(0.3, 0.3, 2.0)));
  ASSERT_TRUE(step.exec.has_value());
  EXPECT_FALSE(step.exec->executed);
  EXPECT_EQ(sup.log().records().back().outcome, Outcome::FirmwareError);
}

TEST_F(SupervisorTest, RunReportIndices) {
  Supervisor sup(engine.get(), &backend);
  std::vector<Command> workflow = {
      make_cmd(ids::kDosingDevice, "set_door", door("open")),
      move(ids::kViperX, site_local(ids::kViperX, "grid.NW") + Vec3(0, 0, 0.22)),
      move(ids::kViperX, site_local(ids::kViperX, "dosing_device")),  // fine: door open
      make_cmd(ids::kDosingDevice, "set_door", door("closed")),       // G2! arm inside
  };
  RunReport report = sup.run(workflow);
  EXPECT_TRUE(report.halted);
  EXPECT_EQ(report.alerts, 1u);
  ASSERT_TRUE(report.first_alert_step.has_value());
  EXPECT_EQ(*report.first_alert_step, 3u);
  EXPECT_FALSE(report.first_damage_step.has_value());
  EXPECT_TRUE(report.alert_preceded_damage());
  EXPECT_FALSE(report.max_damage_severity().has_value());
  EXPECT_GT(report.modeled_runtime_s, 0.0);
  EXPECT_GT(report.modeled_overhead_s, 0.0);
}

TEST_F(SupervisorTest, DamageWithoutAlertIsAMiss) {
  Supervisor sup(nullptr, &backend);
  std::vector<Command> workflow = {
      move(ids::kViperX, site_local(ids::kViperX, "dosing_device")),
  };
  RunReport report = sup.run(workflow);
  ASSERT_TRUE(report.first_damage_step.has_value());
  EXPECT_FALSE(report.alert_preceded_damage());
  EXPECT_EQ(report.max_damage_severity(), dev::Severity::High);
}

TEST_F(SupervisorTest, OverheadScalesWithWorkflowLength) {
  Supervisor sup(engine.get(), &backend);
  std::vector<Command> workflow(10, make_cmd(ids::kDosingDevice, "stop_action"));
  RunReport report = sup.run(workflow);
  EXPECT_NEAR(report.modeled_overhead_s, 10 * core::RabitEngine::kBaseCheckCost_s, 1e-9);
  // The paper's §II-C framing: ~0.03 s per command is ~1.5% of a ~2 s
  // command — imperceptible.
  EXPECT_LT(report.modeled_overhead_s / report.modeled_runtime_s, 0.05);
}

// --- trace log format ---------------------------------------------------------

TEST(TraceLog, JsonlRoundTrip) {
  TraceLog log;
  TraceRecord r1;
  r1.command = make_cmd("viperx", "move_to", [] {
    json::Object o;
    o["position"] = json::Array{0.1, 0.2, 0.3};
    return o;
  }());
  r1.command.source_line = 12;
  r1.outcome = Outcome::Executed;
  log.append(r1);

  TraceRecord r2;
  r2.command = make_cmd("dosing_device", "set_door", door("closed"));
  r2.outcome = Outcome::Blocked;
  r2.alert_rule = "G2";
  r2.alert_message = "door cannot close";
  r2.damage_events = 0;
  log.append(r2);

  TraceLog round = TraceLog::from_jsonl(log.to_jsonl());
  ASSERT_EQ(round.size(), 2u);
  EXPECT_EQ(round.records()[0].command.device, "viperx");
  EXPECT_EQ(round.records()[0].command.source_line, 12);
  EXPECT_EQ(round.records()[1].outcome, Outcome::Blocked);
  EXPECT_EQ(round.records()[1].alert_rule, "G2");
}

TEST(TraceLog, FromJsonlSkipsBlankLines) {
  TraceLog round = TraceLog::from_jsonl(
      "\n{\"device\":\"d\",\"action\":\"a\",\"args\":{},\"line\":0,\"outcome\":\"executed\"}\n\n");
  EXPECT_EQ(round.size(), 1u);
}

TEST(TraceLog, RejectsUnknownOutcome) {
  EXPECT_THROW(TraceLog::from_jsonl(
                   R"({"device":"d","action":"a","args":{},"line":0,"outcome":"vanished"})"),
               std::runtime_error);
}

TEST(OutcomeNames, AllDistinct) {
  EXPECT_EQ(to_string(Outcome::Executed), "executed");
  EXPECT_EQ(to_string(Outcome::SilentlySkipped), "silently_skipped");
  EXPECT_EQ(to_string(Outcome::FirmwareError), "firmware_error");
  EXPECT_EQ(to_string(Outcome::Blocked), "blocked");
  EXPECT_EQ(to_string(Outcome::MalfunctionFlagged), "malfunction_flagged");
  EXPECT_EQ(to_string(Outcome::TransientRetry), "transient_retry");
  EXPECT_EQ(to_string(Outcome::StatusRepoll), "status_repoll");
  EXPECT_EQ(to_string(Outcome::SafeState), "safe_state");
  EXPECT_EQ(to_string(Outcome::Quarantined), "quarantined");
}

TEST(TraceLog, StrictModeNamesTheOffendingLine) {
  const char* text =
      "{\"device\":\"d\",\"action\":\"a\",\"outcome\":\"executed\"}\n"
      "{not json at all\n";
  try {
    (void)TraceLog::from_jsonl(text);
    FAIL() << "expected TraceParseError";
  } catch (const TraceParseError& e) {
    EXPECT_EQ(e.line_number(), 2u);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(TraceLog, StrictModeDescribesMissingFields) {
  try {
    (void)TraceLog::from_jsonl(R"({"action":"a","outcome":"executed"})");
    FAIL() << "expected TraceParseError";
  } catch (const TraceParseError& e) {
    EXPECT_EQ(e.line_number(), 1u);
    EXPECT_NE(std::string(e.what()).find("'device'"), std::string::npos);
  }
}

TEST(TraceLog, StrictModeDescribesTypeMismatches) {
  try {
    (void)TraceLog::from_jsonl(R"({"device":42,"action":"a","outcome":"executed"})");
    FAIL() << "expected TraceParseError";
  } catch (const TraceParseError& e) {
    EXPECT_NE(std::string(e.what()).find("'device'"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("string"), std::string::npos);
  }
}

TEST(TraceLog, LenientModeSkipsAndCounts) {
  const char* text =
      "{\"device\":\"d\",\"action\":\"a\",\"outcome\":\"executed\"}\n"
      "garbage\n"
      "{\"device\":\"d\",\"action\":\"b\",\"outcome\":\"blocked\"}\n"
      "{\"device\":\"d\",\"action\":\"c\",\"outcome\":\"vanished\"}\n";
  std::size_t skipped = 0;
  TraceLog log = TraceLog::from_jsonl(text, /*strict=*/false, &skipped);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(skipped, 2u);
  EXPECT_EQ(log.records()[1].command.action, "b");
}

TEST(TraceLog, AttemptFieldRoundTrips) {
  TraceLog log;
  TraceRecord r;
  r.command = make_cmd("dosing_device", "set_door", door("open"));
  r.outcome = Outcome::TransientRetry;
  r.attempt = 3;
  log.append(r);

  TraceLog round = TraceLog::from_jsonl(log.to_jsonl());
  ASSERT_EQ(round.size(), 1u);
  EXPECT_EQ(round.records()[0].outcome, Outcome::TransientRetry);
  EXPECT_EQ(round.records()[0].attempt, 3u);
}

}  // namespace
}  // namespace rabit::trace
