// Lab-script DSL tests: lexer, parser, interpreter, and workflow library.
#include <gtest/gtest.h>

#include "script/interp.hpp"
#include "script/workflows.hpp"
#include "sim/deck.hpp"

namespace rabit::script {
namespace {

namespace ids = rabit::sim::deck_ids;

// --- lexer -------------------------------------------------------------------

TEST(Lexer, TokenKinds) {
  auto tokens = tokenize("let x = 1.5 # comment\nfoo(\"bar\")");
  ASSERT_GE(tokens.size(), 8u);
  EXPECT_EQ(tokens[0].kind, TokenKind::Keyword);
  EXPECT_EQ(tokens[0].text, "let");
  EXPECT_EQ(tokens[1].kind, TokenKind::Identifier);
  EXPECT_EQ(tokens[2].text, "=");
  EXPECT_EQ(tokens[3].kind, TokenKind::Number);
  EXPECT_DOUBLE_EQ(tokens[3].number, 1.5);
  EXPECT_EQ(tokens[4].kind, TokenKind::Identifier);  // foo — comment skipped
  EXPECT_EQ(tokens[4].line, 2);
  EXPECT_EQ(tokens.back().kind, TokenKind::EndOfFile);
}

TEST(Lexer, StringsAndEscapes) {
  auto tokens = tokenize(R"("a\nb" 'c')");
  EXPECT_EQ(tokens[0].kind, TokenKind::String);
  EXPECT_EQ(tokens[0].text, "a\nb");
  EXPECT_EQ(tokens[1].text, "c");
}

TEST(Lexer, TwoCharOperators) {
  auto tokens = tokenize("a == b != c <= d >= e");
  std::vector<std::string> ops;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::Punct) ops.push_back(t.text);
  }
  EXPECT_EQ(ops, (std::vector<std::string>{"==", "!=", "<=", ">="}));
}

TEST(Lexer, Errors) {
  EXPECT_THROW(static_cast<void>(tokenize("\"unterminated")), ScriptError);
  EXPECT_THROW(static_cast<void>(tokenize("@")), ScriptError);
  EXPECT_THROW(static_cast<void>(tokenize("\"bad\\q\"")), ScriptError);
  try {
    static_cast<void>(tokenize("ok\nok\n  @"));
    FAIL() << "expected ScriptError";
  } catch (const ScriptError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_EQ(e.column(), 3);  // two spaces, then the bad character
    EXPECT_NE(std::string(e.what()).find("line 3, column 3"), std::string::npos);
  }
}

TEST(Lexer, TokenPositions) {
  std::vector<Token> tokens = tokenize("let x = 12\n  y = x");
  ASSERT_GE(tokens.size(), 8u);
  EXPECT_EQ(tokens[0].line, 1);   // let
  EXPECT_EQ(tokens[0].column, 1);
  EXPECT_EQ(tokens[1].column, 5);  // x
  EXPECT_EQ(tokens[2].column, 7);  // =
  EXPECT_EQ(tokens[3].column, 9);  // 12
  EXPECT_EQ(tokens[4].line, 2);   // y
  EXPECT_EQ(tokens[4].column, 3);
}

TEST(Lexer, ErrorColumnsOnLaterTokens) {
  try {
    static_cast<void>(tokenize("let s = \"oops"));
    FAIL() << "expected ScriptError";
  } catch (const ScriptError& e) {
    EXPECT_EQ(e.line(), 1);
    EXPECT_EQ(e.column(), 9);  // the opening quote
  }
}

// --- parser -------------------------------------------------------------------

TEST(Parser, AcceptsFullGrammar) {
  EXPECT_NO_THROW(parse(R"(
    let x = 1 + 2 * 3
    x = x - 1
    def helper(a, b) {
        if (a > b) { return a }
        else if (a == b) { return 0 }
        else { return b }
    }
    while (x < 10 and true) { x = x + 1 }
    let list = [1, 2, [3, 4]]
    let v = list[2][0]
    let s = "text" + "more"
    let neg = -x
    let flag = not (x >= 3) or false
  )"));
}

TEST(Parser, Errors) {
  EXPECT_THROW(parse("let = 3"), ScriptError);
  EXPECT_THROW(parse("if x { }"), ScriptError);          // missing parens
  EXPECT_THROW(parse("while (true) {"), ScriptError);    // unterminated block
  EXPECT_THROW(parse("def f( { }"), ScriptError);
  EXPECT_THROW(parse("x ="), ScriptError);
  EXPECT_THROW(parse("1 +"), ScriptError);
  EXPECT_THROW(parse("foo(1,"), ScriptError);
  EXPECT_THROW(parse("a.b"), ScriptError);  // method call needs parens
}

TEST(Parser, ErrorPositions) {
  try {
    parse("let x = 1\nif x { }");
    FAIL() << "expected ScriptError";
  } catch (const ScriptError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_EQ(e.column(), 4);  // expected '(' at the condition identifier
  }
  try {
    parse("let ok = 1\nlet = 3");
    FAIL() << "expected ScriptError";
  } catch (const ScriptError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_EQ(e.column(), 5);  // the '=' where a name was expected
  }
}

// --- interpreter ----------------------------------------------------------------

class InterpTest : public ::testing::Test {
 protected:
  json::Value run_and_get(const std::string& source, const std::string& global) {
    RecordingSink sink;
    Interpreter interp(&sink);
    interp.set_global(global, json::Value());
    interp.run(source);
    return interp.global(global);
  }
};

TEST_F(InterpTest, Arithmetic) {
  EXPECT_DOUBLE_EQ(run_and_get("out = 2 + 3 * 4 - 1", "out").as_double(), 13.0);
  EXPECT_DOUBLE_EQ(run_and_get("out = (2 + 3) * 4", "out").as_double(), 20.0);
  EXPECT_DOUBLE_EQ(run_and_get("out = 7 / 2", "out").as_double(), 3.5);
  EXPECT_DOUBLE_EQ(run_and_get("out = 7 % 2", "out").as_double(), 1.0);
  EXPECT_DOUBLE_EQ(run_and_get("out = -3 + 1", "out").as_double(), -2.0);
}

TEST_F(InterpTest, ComparisonAndLogic) {
  EXPECT_TRUE(run_and_get("out = 1 < 2 and 3 >= 3", "out").as_bool());
  EXPECT_TRUE(run_and_get("out = not (1 == 2) or false", "out").as_bool());
  EXPECT_FALSE(run_and_get("out = \"a\" == \"b\"", "out").as_bool());
  EXPECT_TRUE(run_and_get("out = \"a\" != \"b\"", "out").as_bool());
}

TEST_F(InterpTest, ShortCircuitEvaluation) {
  // The rhs would divide by zero; short-circuiting must skip it.
  EXPECT_FALSE(run_and_get("let x = 0\nout = x != 0 and 1 / x > 0", "out").as_bool());
  EXPECT_TRUE(run_and_get("let x = 0\nout = x == 0 or 1 / x > 0", "out").as_bool());
}

TEST_F(InterpTest, ListsAndIndexing) {
  EXPECT_DOUBLE_EQ(run_and_get("let l = [10, 20, 30]\nout = l[1]", "out").as_double(), 20.0);
  EXPECT_DOUBLE_EQ(run_and_get("out = len([1, 2, 3])", "out").as_double(), 3.0);
  EXPECT_THROW(run_and_get("let l = [1]\nout = l[5]", "out"), ScriptError);
}

TEST_F(InterpTest, ObjectIndexing) {
  RecordingSink sink;
  Interpreter interp(&sink);
  interp.set_global("locations", json::parse(R"({"grid": {"pickup": [1, 2, 3]}})"));
  interp.set_global("out", json::Value());
  interp.run("out = locations[\"grid\"][\"pickup\"][2]");
  EXPECT_DOUBLE_EQ(interp.global("out").as_double(), 3.0);
  EXPECT_THROW(interp.run("out = locations[\"nope\"]"), ScriptError);
}

TEST_F(InterpTest, WhileLoop) {
  EXPECT_DOUBLE_EQ(
      run_and_get("let i = 0\nlet sum = 0\nwhile (i < 5) { sum = sum + i\ni = i + 1 }\nout = sum",
                  "out")
          .as_double(),
      10.0);
}

TEST_F(InterpTest, InfiniteLoopGuard) {
  EXPECT_THROW(run_and_get("while (true) { let x = 1 }\nout = 0", "out"), ScriptError);
}

TEST_F(InterpTest, FunctionsAndReturn) {
  EXPECT_DOUBLE_EQ(
      run_and_get("def sq(x) { return x * x }\nout = sq(4) + sq(3)", "out").as_double(), 25.0);
  EXPECT_DOUBLE_EQ(
      run_and_get("def mx(a, b) { if (a > b) { return a }\nreturn b }\nout = mx(3, 9)", "out")
          .as_double(),
      9.0);
  // Bare return yields null; arity mismatch throws.
  EXPECT_TRUE(run_and_get("def f() { return }\nout = f()", "out").is_null());
  EXPECT_THROW(run_and_get("def f(a) { return a }\nout = f()", "out"), ScriptError);
  EXPECT_THROW(run_and_get("out = mystery(1)", "out"), ScriptError);
}

TEST_F(InterpTest, FunctionsDoNotSeeCallerLocals) {
  EXPECT_THROW(run_and_get("def f() { return hidden }\nlet hidden = 1\nout = f()", "out"),
               ScriptError);
}

TEST_F(InterpTest, Builtins) {
  EXPECT_DOUBLE_EQ(run_and_get("out = abs(-4)", "out").as_double(), 4.0);
  EXPECT_DOUBLE_EQ(run_and_get("out = min(3, 7)", "out").as_double(), 3.0);
  EXPECT_DOUBLE_EQ(run_and_get("out = max(3, 7)", "out").as_double(), 7.0);
}

TEST_F(InterpTest, RuntimeErrors) {
  EXPECT_THROW(run_and_get("out = 1 / 0", "out"), ScriptError);
  EXPECT_THROW(run_and_get("out = unknown_var", "out"), ScriptError);
  EXPECT_THROW(run_and_get("undeclared = 5\nout = 0", "out"), ScriptError);
  EXPECT_THROW(run_and_get("out = \"a\" + 1", "out"), ScriptError);
}

TEST(Interp, DeviceCommandsGoToSink) {
  RecordingSink sink;
  Interpreter interp(&sink);
  interp.register_device("viperx");
  interp.run(R"(
    viperx.move_to(position=[0.1, 0.2, 0.3])
    viperx.close_gripper()
  )");
  ASSERT_EQ(sink.commands().size(), 2u);
  const dev::Command& move = sink.commands()[0];
  EXPECT_EQ(move.device, "viperx");
  EXPECT_EQ(move.action, "move_to");
  EXPECT_EQ(move.source_line, 2);
  EXPECT_DOUBLE_EQ(move.args.as_object().at("position").as_array()[2].as_double(), 0.3);
  EXPECT_EQ(sink.commands()[1].action, "close_gripper");
}

TEST(Interp, DevicePassedAsArgumentBecomesId) {
  RecordingSink sink;
  Interpreter interp(&sink);
  interp.register_device("pump");
  interp.register_device("vial_1");
  interp.run("pump.dose_solvent(volume=2, target=vial_1)");
  EXPECT_EQ(sink.commands()[0].args.as_object().at("target").as_string(), "vial_1");
}

TEST(Interp, DeviceReferencesCanBeParameters) {
  RecordingSink sink;
  Interpreter interp(&sink);
  interp.register_device("viperx");
  interp.register_device("ned2");
  interp.run(R"(
    def park(arm) { arm.go_sleep() }
    park(viperx)
    park(ned2)
  )");
  ASSERT_EQ(sink.commands().size(), 2u);
  EXPECT_EQ(sink.commands()[0].device, "viperx");
  EXPECT_EQ(sink.commands()[1].device, "ned2");
}

TEST(Interp, CommandArgumentsMustBeNamed) {
  RecordingSink sink;
  Interpreter interp(&sink);
  interp.register_device("viperx");
  EXPECT_THROW(interp.run("viperx.move_to([1,2,3])"), ScriptError);
}

TEST(Interp, MethodCallOnNonDeviceFails) {
  RecordingSink sink;
  Interpreter interp(&sink);
  EXPECT_THROW(interp.run("let x = 3\nx.do_thing()"), ScriptError);
}

TEST(Interp, SinkResultFeedsBackIntoScript) {
  // A sink returning a measurement drives the while loop, like Fig. 1(b).
  class CountingSink : public CommandSink {
   public:
    json::Value on_command(const dev::Command& cmd) override {
      if (cmd.action == "measure_solubility") {
        return json::Value(++measures >= 3 ? 1.0 : 0.2);
      }
      return json::Value();
    }
    int measures = 0;
  };
  CountingSink sink;
  Interpreter interp(&sink);
  interp.register_device("camera");
  interp.set_global("rounds", json::Value());
  interp.run(R"(
    let n = 0
    let m = camera.measure_solubility(target="vial_1")
    while (m < 0.95) {
        n = n + 1
        m = camera.measure_solubility(target="vial_1")
    }
    rounds = n
  )");
  EXPECT_DOUBLE_EQ(interp.global("rounds").as_double(), 2.0);
  EXPECT_EQ(sink.measures, 3);
}

TEST(Interp, ExperimentHaltedPropagates) {
  class RefusingSink : public CommandSink {
   public:
    json::Value on_command(const dev::Command&) override {
      throw ExperimentHalted("rule G1 fired");
    }
  };
  RefusingSink sink;
  Interpreter interp(&sink);
  interp.register_device("viperx");
  EXPECT_THROW(interp.run("viperx.go_home()"), ExperimentHalted);
}

// --- workflow library ---------------------------------------------------------

TEST(Workflows, LocationsTableCoversAllSitesAndArms) {
  sim::LabBackend backend(sim::testbed_profile());
  sim::build_hein_testbed_deck(backend);
  json::Value table = locations_table(backend);
  for (const sim::SiteBinding& site : backend.sites()) {
    const json::Value* entry = table.find(site.name);
    ASSERT_NE(entry, nullptr) << site.name;
    for (const char* arm : {ids::kViperX, ids::kNed2}) {
      const json::Value* coords = entry->find(arm);
      ASSERT_NE(coords, nullptr);
      const json::Array& pickup = coords->as_object().at("pickup").as_array();
      const json::Array& safe = coords->as_object().at("safe").as_array();
      ASSERT_EQ(pickup.size(), 3u);
      EXPECT_DOUBLE_EQ(safe[2].as_double(), pickup[2].as_double() + 0.22);
    }
  }
}

TEST(Workflows, TestbedWorkflowRecordsPrimitives) {
  sim::LabBackend backend(sim::testbed_profile());
  sim::build_hein_testbed_deck(backend);
  auto commands = record_workflow(backend, testbed_workflow_source());
  EXPECT_GT(commands.size(), 30u);
  // Primitive style only — no composite pick/place commands.
  for (const dev::Command& c : commands) {
    EXPECT_NE(c.action, "pick_object");
    EXPECT_NE(c.action, "place_object");
  }
  // Both arms appear and the dosing device is exercised.
  auto count_device = [&](const char* id) {
    return std::count_if(commands.begin(), commands.end(),
                         [&](const dev::Command& c) { return c.device == id; });
  };
  EXPECT_GT(count_device(ids::kViperX), 10);
  EXPECT_GT(count_device(ids::kNed2), 5);
  EXPECT_GE(count_device(ids::kDosingDevice), 5);
}

TEST(Workflows, SolubilityWorkflowUsesComposites) {
  sim::LabBackend backend(sim::production_profile());
  sim::build_hein_production_deck(backend);
  auto commands = record_workflow(backend, solubility_workflow_source());
  bool has_pick = false;
  bool has_measure = false;
  for (const dev::Command& c : commands) {
    has_pick |= c.action == "pick_object";
    has_measure |= c.action == "measure_solubility";
  }
  EXPECT_TRUE(has_pick);
  EXPECT_TRUE(has_measure);
}

TEST(Workflows, SourceLinesAttached) {
  sim::LabBackend backend(sim::testbed_profile());
  sim::build_hein_testbed_deck(backend);
  auto commands = record_workflow(backend, testbed_workflow_source());
  for (const dev::Command& c : commands) EXPECT_GT(c.source_line, 0);
}

}  // namespace
}  // namespace rabit::script
