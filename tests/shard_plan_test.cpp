// Tests for the static shard planner (analysis/shard_plan) and its fleet
// consumer: conflict-graph construction, S1..S3 diagnostics, independence
// certificates, verify_plan, the JSON rendering, and the plan-driven
// run_campaign mode with its runtime certificate oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "analysis/shard_plan.hpp"
#include "bugs/bugs.hpp"
#include "devices/robot_arm.hpp"
#include "fleet/fleet.hpp"
#include "script/workflows.hpp"
#include "sim/deck.hpp"

using namespace rabit;
using analysis::ConflictKind;
using analysis::ShardPlan;
using analysis::ShardPlanOptions;
using analysis::StreamSummary;
using bugs::cmd;

namespace {

core::EngineConfig testbed_config() {
  sim::LabBackend backend(sim::testbed_profile());
  sim::build_hein_testbed_deck(backend);
  return core::config_from_backend(backend, core::Variant::Modified);
}

/// A summary that only commands `device` (no entities, envelopes, budgets).
StreamSummary device_stream(std::string name, std::initializer_list<const char*> devices) {
  StreamSummary s;
  s.name = std::move(name);
  for (const char* d : devices) s.devices[d].actions.insert("set_temperature");
  return s;
}

const analysis::Diagnostic* find_rule(const analysis::AnalysisReport& report,
                                      std::string_view rule) {
  for (const analysis::Diagnostic& d : report.diagnostics) {
    if (d.rule == rule) return &d;
  }
  return nullptr;
}

bool has_kind(const analysis::ConflictEdge& e, ConflictKind kind) {
  for (const analysis::ConflictEvidence& ev : e.evidence) {
    if (ev.kind == kind) return true;
  }
  return false;
}

json::Object num_args(std::initializer_list<std::pair<const char*, double>> kv) {
  json::Object args;
  for (const auto& [k, v] : kv) args[k] = v;
  return args;
}

/// The three-station independent campaign used by the fleet property tests:
/// every stream drives a different station, no arms move.
fleet::CampaignSpec stations_campaign() {
  fleet::CampaignSpec spec;
  spec.variant = core::Variant::Modified;
  spec.seed = 97;
  spec.streams.push_back(
      {"heat",
       {cmd("hotplate", "set_temperature", num_args({{"celsius", 60.0}})),
        cmd("hotplate", "stop")},
       ""});
  spec.streams.push_back(
      {"shake",
       {cmd("thermoshaker", "set_temperature", num_args({{"celsius", 40.0}})),
        cmd("thermoshaker", "stop")},
       ""});
  fleet::CampaignStreamSpec doors;
  doors.name = "doors";
  json::Object open;
  open["state"] = std::string("open");
  json::Object closed;
  closed["state"] = std::string("closed");
  doors.commands = {cmd("centrifuge", "set_door", std::move(open)),
                    cmd("centrifuge", "set_door", std::move(closed))};
  spec.streams.push_back(std::move(doors));
  return spec;
}

ShardPlan plan_for(const core::EngineConfig& config, const fleet::CampaignSpec& spec,
                   const ShardPlanOptions& options = {}) {
  std::vector<analysis::CampaignStream> streams;
  for (const fleet::CampaignStreamSpec& s : spec.streams) {
    streams.push_back({s.name, s.commands});
  }
  return analysis::plan_campaign_shards(config, streams, options);
}

/// Everything that must be invariant across worker counts and (sound) shard
/// assignments.
struct Verdicts {
  std::vector<std::tuple<std::size_t, std::size_t, std::string, bool>> alerts;
  std::size_t commands_checked = 0;

  explicit Verdicts(const fleet::CampaignReport& r) : commands_checked(r.commands_checked) {
    for (const fleet::CampaignAlert& a : r.alerts) {
      alerts.emplace_back(a.stream, a.command_index, a.alert.rule, a.cross_stream);
    }
  }
  bool operator==(const Verdicts& o) const {
    return alerts == o.alerts && commands_checked == o.commands_checked;
  }
};

}  // namespace

// --- conflict graph and shards ------------------------------------------------

TEST(ShardPlan, DisjointStreamsGetSingletonShardsAndFullCertificates) {
  core::EngineConfig config = testbed_config();
  std::vector<StreamSummary> streams = {device_stream("a", {"hotplate"}),
                                        device_stream("b", {"thermoshaker"}),
                                        device_stream("c", {"centrifuge"})};
  ShardPlan plan = analysis::plan_shards(config, streams);
  EXPECT_EQ(plan.shards.size(), 3u);
  EXPECT_TRUE(plan.edges.empty());
  EXPECT_EQ(plan.certificates.size(), 3u);  // every cross-shard pair
  EXPECT_TRUE(plan.diagnostics.diagnostics.empty());
  EXPECT_FALSE(plan.truncated);
  EXPECT_TRUE(plan.certified_independent(0, 2));
  EXPECT_FALSE(plan.certified_independent(1, 1));
  for (const analysis::IndependenceCertificate& c : plan.certificates) {
    EXPECT_FALSE(c.conditions.empty());
    EXPECT_NE(std::find(c.conditions.begin(), c.conditions.end(), "devices-disjoint"),
              c.conditions.end());
  }
  EXPECT_TRUE(analysis::verify_plan(config, streams, plan).empty());
}

TEST(ShardPlan, SharedDeviceMergesStreamsIntoOneShard) {
  core::EngineConfig config = testbed_config();
  std::vector<StreamSummary> streams = {device_stream("a", {"hotplate"}),
                                        device_stream("b", {"hotplate", "thermoshaker"}),
                                        device_stream("c", {"centrifuge"})};
  ShardPlan plan = analysis::plan_shards(config, streams);
  ASSERT_EQ(plan.shards.size(), 2u);
  EXPECT_EQ(plan.shards[0].streams, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(plan.shards[1].streams, (std::vector<std::size_t>{2}));
  const analysis::ConflictEdge* edge = plan.edge_between(0, 1);
  ASSERT_NE(edge, nullptr);
  EXPECT_TRUE(has_kind(*edge, ConflictKind::SharedDevice));
  EXPECT_EQ(edge->evidence.front().subject, "hotplate");
  EXPECT_EQ(plan.edge_between(0, 2), nullptr);
  EXPECT_EQ(plan.certificates.size(), 2u);  // (a,c) and (b,c)
  EXPECT_TRUE(analysis::verify_plan(config, streams, plan).empty());
}

TEST(ShardPlan, ChainTopologyFlagsArticulationStreamAsS2) {
  core::EngineConfig config = testbed_config();
  // a—b—c chain: b is the articulation stream; d rides along independent.
  std::vector<StreamSummary> streams = {device_stream("a", {"hotplate"}),
                                        device_stream("b", {"hotplate", "thermoshaker"}),
                                        device_stream("c", {"thermoshaker"}),
                                        device_stream("d", {"centrifuge"})};
  ShardPlan plan = analysis::plan_shards(config, streams);
  ASSERT_EQ(plan.shards.size(), 2u);
  const analysis::Diagnostic* s2 = find_rule(plan.diagnostics, "S2");
  ASSERT_NE(s2, nullptr);
  EXPECT_EQ(s2->severity, analysis::Severity::Warning);
  ASSERT_FALSE(s2->streams.empty());
  EXPECT_EQ(s2->streams.front(), "b");  // the articulation stream leads
  EXPECT_NE(s2->message.find("shared-device"), std::string::npos);  // concrete evidence
  EXPECT_FALSE(s2->subjects.empty());
  EXPECT_EQ(find_rule(plan.diagnostics, "S1"), nullptr);  // 2 shards: not degenerate
}

TEST(ShardPlan, BridgeTopologyS1CarriesMinCutEvidence) {
  core::EngineConfig config = testbed_config();
  // Two triangles (hotplate clique, centrifuge clique) joined by ONE bridge
  // edge b—c (thermoshaker): the unique minimum cut severs the bridge.
  std::vector<StreamSummary> streams = {device_stream("a", {"hotplate"}),
                                        device_stream("b", {"hotplate", "thermoshaker"}),
                                        device_stream("e", {"hotplate"}),
                                        device_stream("c", {"thermoshaker", "centrifuge"}),
                                        device_stream("d", {"centrifuge"}),
                                        device_stream("f", {"centrifuge"})};
  ShardPlanOptions options;
  options.max_shard_streams = 2;
  ShardPlan plan = analysis::plan_shards(config, streams, options);
  ASSERT_EQ(plan.shards.size(), 1u);
  const analysis::Diagnostic* s1 = find_rule(plan.diagnostics, "S1");
  ASSERT_NE(s1, nullptr);
  EXPECT_NE(s1->message.find("severs 1 edge(s)"), std::string::npos)
      << "min cut of the bridge topology must be the single bridge edge: " << s1->message;
  EXPECT_NE(s1->message.find("thermoshaker"), std::string::npos);  // the bridge's evidence
  EXPECT_EQ(s1->streams.size(), 6u);
  // Degenerate bound (0): the same single-shard campaign still warns.
  ShardPlan degenerate = analysis::plan_shards(config, streams);
  EXPECT_NE(find_rule(degenerate.diagnostics, "S1"), nullptr);
  // A shardable campaign under the same bound stays quiet.
  std::vector<StreamSummary> fine = {device_stream("a", {"hotplate"}),
                                     device_stream("b", {"thermoshaker"})};
  EXPECT_EQ(find_rule(analysis::plan_shards(config, fine, options).diagnostics, "S1"), nullptr);
}

TEST(ShardPlan, TruncatedSummaryMergesPessimisticallyAndEmitsS3) {
  core::EngineConfig config = testbed_config();
  std::vector<StreamSummary> streams = {device_stream("a", {"hotplate"}),
                                        device_stream("b", {"thermoshaker"}),
                                        device_stream("c", {"centrifuge"})};
  streams[1].truncated = true;
  ShardPlan plan = analysis::plan_shards(config, streams);
  EXPECT_EQ(plan.shards.size(), 1u);  // b conflicts with everyone
  EXPECT_TRUE(plan.truncated);
  EXPECT_TRUE(plan.certificates.empty());
  const analysis::ConflictEdge* edge = plan.edge_between(0, 1);
  ASSERT_NE(edge, nullptr);
  EXPECT_TRUE(has_kind(*edge, ConflictKind::TruncatedSummary));
  const analysis::Diagnostic* s3 = find_rule(plan.diagnostics, "S3");
  ASSERT_NE(s3, nullptr);
  EXPECT_NE(s3->message.find("'b'"), std::string::npos);
  EXPECT_FALSE(s3->streams.empty());
  EXPECT_TRUE(analysis::verify_plan(config, streams, plan).empty());
}

TEST(ShardPlan, MultiplexTokenAndEnvelopeOverlapBecomeEdges) {
  core::EngineConfig config = testbed_config();
  std::vector<StreamSummary> streams(2);
  streams[0].name = "left";
  streams[1].name = "right";
  streams[0].arm_envelopes["viperx"] =
      geom::Aabb(geom::Vec3(0, 0, 0), geom::Vec3(1, 1, 1));
  streams[1].arm_envelopes["ned2"] =
      geom::Aabb(geom::Vec3(5, 5, 5), geom::Vec3(6, 6, 6));  // disjoint

  config.time_multiplex = true;
  ShardPlan plan = analysis::plan_shards(config, streams);
  ASSERT_EQ(plan.shards.size(), 1u);
  EXPECT_TRUE(has_kind(*plan.edge_between(0, 1), ConflictKind::MultiplexToken));

  config.time_multiplex = false;
  plan = analysis::plan_shards(config, streams);
  EXPECT_EQ(plan.shards.size(), 2u);  // disjoint envelopes, no token race

  streams[1].arm_envelopes["ned2"] =
      geom::Aabb(geom::Vec3(0.5, 0.5, 0.5), geom::Vec3(1.5, 1.5, 1.5));  // overlapping
  plan = analysis::plan_shards(config, streams);
  ASSERT_EQ(plan.shards.size(), 1u);
  EXPECT_TRUE(has_kind(*plan.edge_between(0, 1), ConflictKind::EnvelopeOverlap));
}

TEST(ShardPlan, ViolatedConsumableBudgetLinksAllContributors) {
  core::EngineConfig config = testbed_config();
  // vial_1 capacity is 15 mL; +10 from each stream overflows only summed.
  std::vector<StreamSummary> streams = {device_stream("a", {"hotplate"}),
                                        device_stream("b", {"thermoshaker"})};
  streams[0].volume_delta_ml["vial_1"].accumulate(10.0, 10.0);
  streams[1].volume_delta_ml["vial_1"].accumulate(10.0, 10.0);
  ShardPlan plan = analysis::plan_shards(config, streams);
  ASSERT_EQ(plan.shards.size(), 1u);
  const analysis::ConflictEdge* edge = plan.edge_between(0, 1);
  ASSERT_NE(edge, nullptr);
  EXPECT_TRUE(has_kind(*edge, ConflictKind::ConsumableBudget));
  EXPECT_EQ(edge->evidence.front().subject, "vial_1");

  // Within budget: contributing to the same container alone is not an edge
  // (the planner mirrors I3, which only fires on a violable budget).
  std::vector<StreamSummary> fine = {device_stream("a", {"hotplate"}),
                                     device_stream("b", {"thermoshaker"})};
  fine[0].volume_delta_ml["vial_1"].accumulate(1.0, 1.0);
  fine[1].volume_delta_ml["vial_1"].accumulate(1.0, 1.0);
  EXPECT_EQ(analysis::plan_shards(config, fine).shards.size(), 2u);
}

TEST(ShardPlan, VerifyPlanRejectsTamperedShards) {
  core::EngineConfig config = testbed_config();
  std::vector<StreamSummary> streams = {device_stream("a", {"hotplate"}),
                                        device_stream("b", {"hotplate"})};
  ShardPlan plan = analysis::plan_shards(config, streams);
  ASSERT_EQ(plan.shards.size(), 1u);
  // Tamper: split the conflicting pair across shards without a certificate.
  plan.shards = {analysis::Shard{{0}}, analysis::Shard{{1}}};
  std::vector<std::string> violations = analysis::verify_plan(config, streams, plan);
  ASSERT_FALSE(violations.empty());
  bool conflict_reported = false;
  bool missing_certificate = false;
  for (const std::string& v : violations) {
    conflict_reported |= v.find("conflict") != std::string::npos;
    missing_certificate |= v.find("certificate") != std::string::npos;
  }
  EXPECT_TRUE(conflict_reported);
  EXPECT_TRUE(missing_certificate);
}

TEST(ShardPlan, PlanToJsonCarriesSharedDiagnosticSchema) {
  core::EngineConfig config = testbed_config();
  std::vector<StreamSummary> streams = {device_stream("a", {"hotplate"}),
                                        device_stream("b", {"hotplate"}),
                                        device_stream("c", {"centrifuge"})};
  ShardPlan plan = analysis::plan_shards(config, streams);
  json::Value doc = analysis::plan_to_json(plan);
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("shard_count")->as_double(), 2.0);
  EXPECT_EQ(doc.find("streams")->as_array().size(), 3u);
  EXPECT_EQ(doc.find("shards")->as_array().size(), 2u);
  const json::Value& edges = *doc.find("edges");
  ASSERT_EQ(edges.as_array().size(), 1u);
  const json::Value& edge = edges.as_array().front();
  EXPECT_EQ(edge.find("a")->as_string(), "a");
  EXPECT_EQ(edge.find("b")->as_string(), "b");
  const json::Value& evidence = edge.find("evidence")->as_array().front();
  EXPECT_EQ(evidence.find("kind")->as_string(), "shared-device");
  EXPECT_EQ(evidence.find("subject")->as_string(), "hotplate");
  // Certificates name streams, not indices.
  const json::Value& certs = *doc.find("certificates");
  ASSERT_EQ(certs.as_array().size(), 2u);
  EXPECT_EQ(certs.as_array().front().find("a")->as_string(), "a");
  // The embedded diagnostics use the shared per-diagnostic schema.
  const json::Value& diag = *doc.find("diagnostics");
  ASSERT_TRUE(diag.is_object());
  for (const json::Value& d : diag.find("diagnostics")->as_array()) {
    EXPECT_TRUE(d.find("id") != nullptr);
    EXPECT_TRUE(d.find("severity") != nullptr);
    EXPECT_TRUE(d.find("streams") != nullptr);
  }
  std::string text = analysis::format_plan(plan);
  EXPECT_NE(text.find("shard plan: 3 stream(s) -> 2 shard(s)"), std::string::npos);
  EXPECT_NE(text.find("certified independent pairs: 2"), std::string::npos);
}

TEST(ShardPlan, ArmEnvelopesCoverCommandedAndParkedArms) {
  sim::LabBackend backend(sim::testbed_profile());
  sim::build_hein_testbed_deck(backend);
  core::EngineConfig config =
      core::config_from_backend(backend, core::Variant::ModifiedWithSim);

  std::vector<analysis::CampaignStream> streams;
  streams.push_back({"arm", {cmd("viperx", "go_home"), cmd("viperx", "go_sleep")}});
  streams.push_back(
      {"heat", {cmd("hotplate", "set_temperature", num_args({{"celsius", 60.0}}))}});
  ShardPlan plan = analysis::plan_campaign_shards(config, streams);

  // The commanded arm carries the union of its summarized motion envelopes;
  // every arm no stream moves is pinned to its inflated parked sleep box —
  // the exact boxes the runtime certificate monitor audits snapshots
  // against, so both testbed arms must be covered.
  ASSERT_EQ(plan.arm_envelopes.count("viperx"), 1u);
  ASSERT_EQ(plan.arm_envelopes.count("ned2"), 1u);
  const auto* ned2 =
      dynamic_cast<const dev::RobotArmDevice*>(backend.registry().find("ned2"));
  ASSERT_NE(ned2, nullptr);
  EXPECT_TRUE(plan.arm_envelopes.at("ned2").contains(ned2->position_lab()));

  // And the JSON rendering carries them for the lint consumer.
  json::Value doc = analysis::plan_to_json(plan);
  const json::Value* envelopes = doc.find("arm_envelopes");
  ASSERT_NE(envelopes, nullptr);
  EXPECT_NE(envelopes->find("viperx"), nullptr);
  EXPECT_NE(envelopes->find("ned2"), nullptr);
}

// --- the fleet consumer -------------------------------------------------------

TEST(ShardPlanFleet, PlanDrivenRunMatchesMonolithicAcrossWorkerCounts) {
  core::EngineConfig config = testbed_config();
  fleet::CampaignSpec spec = stations_campaign();
  ShardPlan plan = plan_for(config, spec);
  ASSERT_EQ(plan.shards.size(), 3u);  // fully independent stations

  fleet::CampaignReport monolithic = fleet::Fleet::run_campaign(spec);
  Verdicts baseline(monolithic);
  for (std::size_t workers : {1u, 2u, 4u}) {
    fleet::ShardedCampaignOptions options;
    options.workers = workers;
    options.validate_certificates = true;
    fleet::CampaignReport sharded = fleet::Fleet::run_campaign(spec, plan, options);
    EXPECT_EQ(sharded.shards, 3u);
    EXPECT_TRUE(sharded.oracle_violations.empty())
        << "workers=" << workers << ": " << sharded.oracle_violations.front();
    EXPECT_TRUE(Verdicts(sharded) == baseline) << "workers=" << workers;
    EXPECT_EQ(sharded.schedule, monolithic.schedule);  // same global interleaving
  }
}

TEST(ShardPlanFleet, VerdictsAreShardAssignmentIndependent) {
  core::EngineConfig config = testbed_config();
  fleet::CampaignSpec spec = stations_campaign();
  ShardPlan fine = plan_for(config, spec);
  ASSERT_EQ(fine.shards.size(), 3u);

  // A coarser (still sound) plan: merge two shards by hand. Certificates for
  // the now-intra-shard pair are dropped; cross-shard pairs keep theirs.
  ShardPlan coarse = fine;
  std::vector<std::size_t> merged = coarse.shards[0].streams;
  merged.insert(merged.end(), coarse.shards[1].streams.begin(),
                coarse.shards[1].streams.end());
  std::sort(merged.begin(), merged.end());
  coarse.shards = {analysis::Shard{merged}, coarse.shards[2]};
  std::vector<analysis::IndependenceCertificate> kept;
  for (const analysis::IndependenceCertificate& c : coarse.certificates) {
    if (coarse.shard_of(c.a) != coarse.shard_of(c.b)) kept.push_back(c);
  }
  coarse.certificates = std::move(kept);

  fleet::ShardedCampaignOptions options;
  options.workers = 2;
  fleet::CampaignReport fine_run = fleet::Fleet::run_campaign(spec, fine, options);
  fleet::CampaignReport coarse_run = fleet::Fleet::run_campaign(spec, coarse, options);
  EXPECT_EQ(fine_run.shards, 3u);
  EXPECT_EQ(coarse_run.shards, 2u);
  EXPECT_TRUE(Verdicts(fine_run) == Verdicts(coarse_run));
  // And both match the fully merged (monolithic) assignment.
  EXPECT_TRUE(Verdicts(fine_run) == Verdicts(fleet::Fleet::run_campaign(spec)));
}

TEST(ShardPlanFleet, OracleFlagsAForgedCertificate) {
  core::EngineConfig config = testbed_config();
  // Two streams racing one hotplate: NOT independent. Forge a plan that
  // claims they are and check the runtime oracle notices the divergence.
  fleet::CampaignSpec spec;
  spec.variant = core::Variant::Modified;
  spec.seed = 41;
  spec.streams.push_back(
      {"racer-a",
       {cmd("hotplate", "set_temperature", num_args({{"celsius", 60.0}})),
        cmd("hotplate", "stir", num_args({{"rpm", 300.0}}))},
       ""});
  spec.streams.push_back({"racer-b", {cmd("hotplate", "stop")}, ""});

  ShardPlan honest = plan_for(config, spec);
  ASSERT_EQ(honest.shards.size(), 1u);  // the planner knows better

  ShardPlan forged = honest;
  forged.shards = {analysis::Shard{{0}}, analysis::Shard{{1}}};
  forged.certificates = {analysis::IndependenceCertificate{0, 1, {"devices-disjoint"}}};

  fleet::ShardedCampaignOptions options;
  options.validate_certificates = true;
  fleet::CampaignReport sharded = fleet::Fleet::run_campaign(spec, forged, options);
  // The interleaved hotplate race produces verdicts isolation cannot: the
  // oracle must report the divergence for at least one stream (and the
  // static verifier rejects the forged plan outright).
  std::vector<analysis::StreamSummary> summaries;
  for (const fleet::CampaignStreamSpec& s : spec.streams) {
    summaries.push_back(analysis::summarize_stream(config, s.name, s.commands));
  }
  EXPECT_FALSE(analysis::verify_plan(config, summaries, forged).empty());
  if (fleet::Fleet::run_campaign(spec).cross_stream_alerts() > 0) {
    EXPECT_FALSE(sharded.oracle_violations.empty());
  }
}

TEST(ShardPlanFleet, ShardedRunsLeaveCatalogueParityUntouched) {
  // Guard the paper's headline through the new machinery: after plan-driven
  // campaign runs, the single-stream catalogue still detects 12/16 on V2.
  core::EngineConfig config = testbed_config();
  fleet::CampaignSpec spec = stations_campaign();
  fleet::ShardedCampaignOptions options;
  options.workers = 2;
  (void)fleet::Fleet::run_campaign(spec, plan_for(config, spec), options);
  std::size_t detected = 0;
  for (const bugs::BugSpec& bug : bugs::bug_catalogue()) {
    if (bugs::evaluate_bug(bug, core::Variant::Modified).detected) ++detected;
  }
  EXPECT_EQ(detected, 12u);
}

TEST(ShardPlanFleet, RejectsAPlanForTheWrongCampaign) {
  core::EngineConfig config = testbed_config();
  fleet::CampaignSpec spec = stations_campaign();
  ShardPlan plan = plan_for(config, spec);
  spec.streams.pop_back();
  fleet::ShardedCampaignOptions options;
  EXPECT_THROW((void)fleet::Fleet::run_campaign(spec, plan, options), std::runtime_error);
}
