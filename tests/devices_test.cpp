#include <gtest/gtest.h>

#include "devices/containers.hpp"
#include "devices/device.hpp"
#include "devices/robot_arm.hpp"
#include "devices/stations.hpp"

namespace rabit::dev {
namespace {

using geom::Aabb;
using geom::Transform;
using geom::Vec3;

Command make_cmd(std::string device, std::string action, json::Object args = {}) {
  Command c;
  c.device = std::move(device);
  c.action = std::move(action);
  c.args = json::Value(std::move(args));
  return c;
}

Aabb unit_box() { return Aabb(Vec3(0, 0, 0), Vec3(0.1, 0.1, 0.1)); }

// --- base class -------------------------------------------------------------

TEST(Device, CategoryNames) {
  EXPECT_EQ(to_string(DeviceCategory::Container), "container");
  EXPECT_EQ(to_string(DeviceCategory::RobotArm), "robot_arm");
  EXPECT_EQ(parse_device_category("dosing_system"), DeviceCategory::DosingSystem);
  EXPECT_EQ(parse_device_category("action_device"), DeviceCategory::ActionDevice);
  EXPECT_FALSE(parse_device_category("toaster").has_value());
}

TEST(Device, UnknownActionThrows) {
  Vial v("v", 10, 15, "bench");
  EXPECT_THROW(v.execute(make_cmd("v", "explode")), DeviceError);
  try {
    v.execute(make_cmd("v", "explode"));
  } catch (const DeviceError& e) {
    EXPECT_EQ(e.code(), DeviceError::Code::UnknownAction);
  }
}

TEST(Device, EmptyIdRejected) {
  EXPECT_THROW(Vial("", 10, 15, "bench"), std::invalid_argument);
}

TEST(Device, CommandDescribe) {
  Command c = make_cmd("hotplate", "set_temperature", [] {
    json::Object o;
    o["celsius"] = 120.0;
    return o;
  }());
  c.source_line = 42;
  std::string d = c.describe();
  EXPECT_NE(d.find("hotplate.set_temperature"), std::string::npos);
  EXPECT_NE(d.find("celsius=120"), std::string::npos);
  EXPECT_NE(d.find("@line 42"), std::string::npos);
}

TEST(Device, FaultPlanOverridesObservedState) {
  DosingDeviceModel d("dd", unit_box());
  FaultPlan fault;
  fault.reported_overrides["doorStatus"] = std::string("open");
  d.set_fault_plan(fault);
  EXPECT_EQ(d.state().at("doorStatus").as_string(), "closed");       // truth
  EXPECT_EQ(d.observed_state().at("doorStatus").as_string(), "open");  // lie
  d.clear_fault_plan();
  EXPECT_EQ(d.observed_state().at("doorStatus").as_string(), "closed");
}

TEST(Device, DeadActionSilentlyIgnored) {
  DosingDeviceModel d("dd", unit_box());
  FaultPlan fault;
  fault.dead_actions.push_back("set_door");
  d.set_fault_plan(fault);
  d.execute(make_cmd("dd", "set_door", [] {
    json::Object o;
    o["state"] = std::string("open");
    return o;
  }()));
  EXPECT_EQ(d.door_status(), "closed");  // nothing happened
}

TEST(Device, HazardsDrainOnce) {
  Vial v("v", 10, 15, "bench");
  v.shatter("test");
  auto first = v.take_hazards();
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].severity, Severity::MediumLow);
  EXPECT_TRUE(v.take_hazards().empty());
}

TEST(StateDiff, FindsChangedAndMissing) {
  LabStateSnapshot a;
  a["d"]["x"] = 1;
  a["d"]["y"] = 2;
  LabStateSnapshot b;
  b["d"]["x"] = 1;
  b["d"]["y"] = 3;
  b["e"]["z"] = 4;
  auto d = diff(a, b);
  EXPECT_EQ(d, (std::vector<std::string>{"d.y", "e.*"}));
}

// --- registry ----------------------------------------------------------------

TEST(DeviceRegistry, AddFindAt) {
  DeviceRegistry reg;
  reg.add(std::make_unique<Vial>("v1", 10, 15, "bench"));
  EXPECT_NE(reg.find("v1"), nullptr);
  EXPECT_EQ(reg.find("v2"), nullptr);
  EXPECT_NO_THROW(static_cast<void>(reg.at("v1")));
  EXPECT_THROW(static_cast<void>(reg.at("v2")), std::out_of_range);
  EXPECT_THROW(reg.add(std::make_unique<Vial>("v1", 10, 15, "bench")), std::invalid_argument);
  EXPECT_THROW(reg.add(nullptr), std::invalid_argument);
}

TEST(DeviceRegistry, SnapshotsSeparateTruthFromObservation) {
  DeviceRegistry reg;
  reg.add(std::make_unique<Vial>("v1", 10, 15, "bench"));
  reg.add(std::make_unique<DosingDeviceModel>("dd", unit_box()));
  auto observed = reg.fetch_observed_state();
  auto truth = reg.fetch_true_state();
  // Vials have no status command: observed empty, truth populated.
  EXPECT_TRUE(observed.at("v1").empty());
  EXPECT_FALSE(truth.at("v1").empty());
  // The dosing device reports its door but not its (unsensed) chamber.
  EXPECT_TRUE(observed.at("dd").contains("doorStatus"));
  EXPECT_FALSE(observed.at("dd").contains("containerInside"));
  EXPECT_TRUE(truth.at("dd").contains("containerInside"));
}

// --- vial -------------------------------------------------------------------

TEST(Vial, AddSolidRespectsCapacity) {
  Vial v("v", 10, 15, "bench");
  v.add_solid(4);
  EXPECT_DOUBLE_EQ(v.solid_mg(), 4);
  v.add_solid(10);  // 6 accepted, 4 spilled
  EXPECT_DOUBLE_EQ(v.solid_mg(), 10);
  EXPECT_DOUBLE_EQ(v.state().at("spilledMg").as_double(), 4);
  auto hazards = v.take_hazards();
  ASSERT_EQ(hazards.size(), 1u);
  EXPECT_EQ(hazards[0].severity, Severity::Low);
}

TEST(Vial, StopperBlocksTransfers) {
  Vial v("v", 10, 15, "bench");
  v.set_stopper(true);
  v.add_liquid(5);
  EXPECT_DOUBLE_EQ(v.liquid_ml(), 0);
  EXPECT_DOUBLE_EQ(v.state().at("spilledMl").as_double(), 5);
  EXPECT_DOUBLE_EQ(v.draw_liquid(1), 0);
  v.set_stopper(false);
  v.add_liquid(5);
  EXPECT_DOUBLE_EQ(v.liquid_ml(), 5);
}

TEST(Vial, DrawReturnsAvailableAmount) {
  Vial v("v", 10, 15, "bench");
  v.add_liquid(3);
  EXPECT_DOUBLE_EQ(v.draw_liquid(5), 3);
  EXPECT_DOUBLE_EQ(v.liquid_ml(), 0);
  v.add_solid(2);
  EXPECT_DOUBLE_EQ(v.draw_solid(1), 1);
  EXPECT_DOUBLE_EQ(v.solid_mg(), 1);
}

TEST(Vial, ShatterLosesContents) {
  Vial v("v", 10, 15, "bench");
  v.add_solid(5);
  v.add_liquid(5);
  v.shatter("dropped");
  EXPECT_TRUE(v.is_broken());
  EXPECT_TRUE(v.is_empty());
  EXPECT_DOUBLE_EQ(v.state().at("spilledMg").as_double(), 5);
  // Double shatter is idempotent.
  v.shatter("again");
  EXPECT_EQ(v.take_hazards().size(), 1u);
}

TEST(Vial, SpillContents) {
  Vial v("v", 10, 15, "bench");
  v.add_liquid(5);
  v.spill_contents("centrifuged open");
  EXPECT_TRUE(v.is_empty());
  EXPECT_FALSE(v.is_broken());
  // Spilling an empty vial raises no hazard.
  auto h = v.take_hazards();
  v.spill_contents("noop");
  EXPECT_TRUE(v.take_hazards().empty());
}

TEST(Vial, ActionsViaExecute) {
  Vial v("v", 10, 15, "bench");
  v.execute(make_cmd("v", "recap"));
  EXPECT_TRUE(v.has_stopper());
  v.execute(make_cmd("v", "decap"));
  EXPECT_FALSE(v.has_stopper());
  EXPECT_THROW(v.execute(make_cmd("v", "add_solid")), DeviceError);  // missing amount
}

TEST(Vial, InvalidConstruction) {
  EXPECT_THROW(Vial("v", 0, 15, "bench"), std::invalid_argument);
  EXPECT_THROW(Vial("v", 10, -1, "bench"), std::invalid_argument);
}

// --- grid -------------------------------------------------------------------

TEST(VialGrid, PlaceAndRemove) {
  VialGrid g("grid", {"A", "B"}, unit_box());
  EXPECT_EQ(g.occupant("A"), "");
  g.place("A", "v1");
  EXPECT_EQ(g.occupant("A"), "v1");
  g.remove("A");
  EXPECT_EQ(g.occupant("A"), "");
  EXPECT_THROW(static_cast<void>(g.occupant("Z")), DeviceError);
  EXPECT_EQ(g.slots(), (std::vector<std::string>{"A", "B"}));
}

TEST(VialGrid, DoublePlaceBreaksGlass) {
  VialGrid g("grid", {"A"}, unit_box());
  g.place("A", "v1");
  g.place("A", "v2");
  auto hazards = g.take_hazards();
  ASSERT_EQ(hazards.size(), 1u);
  EXPECT_EQ(hazards[0].severity, Severity::MediumLow);
}

// --- robot arm ----------------------------------------------------------------

TEST(RobotArm, FrameConversionsRoundTrip) {
  RobotArmDevice arm("a", kin::make_viperx300(Transform::translation(Vec3(0.6, 0.1, 0.02)) *
                                              Transform::rotation_z(1.0)),
                     MotionPolicy::ThrowOnUnreachable);
  Vec3 local(0.2, 0.1, 0.3);
  EXPECT_TRUE(geom::approx_equal(arm.to_local(arm.to_lab(local)), local, 1e-9));
}

TEST(RobotArm, MoveUpdatesPositionAndPose) {
  RobotArmDevice arm("a", kin::make_viperx300(Transform::translation(Vec3(0, 0, 0.02))),
                     MotionPolicy::ThrowOnUnreachable);
  Vec3 target(0.3, 0.1, 0.2);
  MotionPlan plan = arm.plan_move(target);
  ASSERT_TRUE(plan.trajectory.has_value());
  arm.commit_move(plan);
  EXPECT_LT(arm.position_local().distance_to(target), 5e-3);
  EXPECT_EQ(arm.state().at("pose").as_string(), "custom");
}

TEST(RobotArm, SilentSkipPolicy) {
  RobotArmDevice skipper("a", kin::make_viperx300(Transform()),
                         MotionPolicy::SilentSkipOnUnreachable);
  MotionPlan plan = skipper.plan_move(Vec3(0, 0, 5));
  EXPECT_TRUE(plan.skipped);
  Vec3 before = skipper.position_local();
  skipper.commit_move(plan);
  EXPECT_TRUE(geom::approx_equal(skipper.position_local(), before));
}

TEST(RobotArm, ThrowPolicy) {
  RobotArmDevice strict("a", kin::make_ned2(Transform()), MotionPolicy::ThrowOnUnreachable);
  EXPECT_THROW(static_cast<void>(strict.plan_move(Vec3(0, 0, 5))), DeviceError);
}

TEST(RobotArm, NamedPoses) {
  RobotArmDevice arm("a", kin::make_viperx300(Transform::translation(Vec3(0, 0, 0.02))),
                     MotionPolicy::ThrowOnUnreachable);
  kin::JointVector custom{0.5, -1.0, 0.8, 0.0, 0.5, 0.0};
  arm.set_named_pose("sleep", custom);
  EXPECT_EQ(arm.named_pose("sleep"), custom);
  arm.commit_move(arm.plan_pose("sleep"), "sleep");
  EXPECT_EQ(arm.state().at("pose").as_string(), "sleep");
  EXPECT_THROW(arm.set_named_pose("banana", custom), DeviceError);
  EXPECT_THROW(static_cast<void>(arm.named_pose("banana")), DeviceError);
}

TEST(RobotArm, HoldingNotObservable) {
  RobotArmDevice arm("a", kin::make_viperx300(Transform()), MotionPolicy::ThrowOnUnreachable);
  arm.set_holding("vial_1");
  arm.set_inside_device("dosing");
  EXPECT_EQ(arm.holding(), "vial_1");
  StateMap observed = arm.observed_state();
  EXPECT_FALSE(observed.contains("holding"));
  EXPECT_FALSE(observed.contains("inside"));
  EXPECT_TRUE(observed.contains("gripper"));
  EXPECT_TRUE(observed.contains("pose"));
}

TEST(RobotArm, HeldClearanceOnlyWhenHolding) {
  RobotArmDevice arm("a", kin::make_viperx300(Transform()), MotionPolicy::ThrowOnUnreachable);
  EXPECT_DOUBLE_EQ(arm.held_clearance(), 0.0);
  arm.set_holding("vial_1");
  EXPECT_DOUBLE_EQ(arm.held_clearance(), 0.07);
  arm.set_held_drop(0.1);
  EXPECT_DOUBLE_EQ(arm.held_clearance(), 0.1);
}

TEST(RobotArm, GripperActions) {
  RobotArmDevice arm("a", kin::make_viperx300(Transform()), MotionPolicy::ThrowOnUnreachable);
  EXPECT_TRUE(arm.gripper_open());
  arm.execute(make_cmd("a", "close_gripper"));
  EXPECT_FALSE(arm.gripper_open());
  arm.execute(make_cmd("a", "open_gripper"));
  EXPECT_TRUE(arm.gripper_open());
}

// --- stations ---------------------------------------------------------------

TEST(DosingDevice, DoorAndDose) {
  DosingDeviceModel d("dd", unit_box());
  EXPECT_EQ(d.door_status(), "closed");
  d.execute(make_cmd("dd", "set_door", [] {
    json::Object o;
    o["state"] = std::string("open");
    return o;
  }()));
  EXPECT_EQ(d.door_status(), "open");
  d.execute(make_cmd("dd", "run_action", [] {
    json::Object o;
    o["quantity"] = 5.0;
    return o;
  }()));
  EXPECT_TRUE(d.running());
  EXPECT_DOUBLE_EQ(d.take_pending_dose_mg(), 5.0);
  EXPECT_DOUBLE_EQ(d.take_pending_dose_mg(), 0.0);  // consumed
  d.execute(make_cmd("dd", "stop_action"));
  EXPECT_FALSE(d.running());
}

TEST(DosingDevice, BrokenDoorRefusesActuation) {
  DosingDeviceModel d("dd", unit_box());
  d.break_door();
  EXPECT_EQ(d.door_status(), "broken");
  auto hazards = d.take_hazards();
  ASSERT_EQ(hazards.size(), 1u);
  EXPECT_EQ(hazards[0].severity, Severity::High);
  EXPECT_THROW(d.execute(make_cmd("dd", "set_door", [] {
                 json::Object o;
                 o["state"] = std::string("open");
                 return o;
               }())),
               DeviceError);
}

TEST(DosingDevice, RejectsBadDoorState) {
  DosingDeviceModel d("dd", unit_box());
  EXPECT_THROW(d.execute(make_cmd("dd", "set_door", [] {
                 json::Object o;
                 o["state"] = std::string("ajar");
                 return o;
               }())),
               DeviceError);
  EXPECT_THROW(d.execute(make_cmd("dd", "run_action", [] {
                 json::Object o;
                 o["quantity"] = -1.0;
                 return o;
               }())),
               DeviceError);
}

TEST(SyringePump, DrawTracksReservoir) {
  SyringePumpModel p("pump", 10.0, unit_box());
  p.execute(make_cmd("pump", "draw_solvent", [] {
    json::Object o;
    o["volume"] = 4.0;
    return o;
  }()));
  EXPECT_DOUBLE_EQ(p.reservoir_ml(), 6.0);
  EXPECT_DOUBLE_EQ(p.held_ml(), 4.0);
  // Drawing more than the reservoir has raises a hazard.
  p.execute(make_cmd("pump", "draw_solvent", [] {
    json::Object o;
    o["volume"] = 10.0;
    return o;
  }()));
  EXPECT_DOUBLE_EQ(p.reservoir_ml(), 0.0);
  EXPECT_EQ(p.take_hazards().size(), 1u);
}

TEST(SyringePump, PendingDispenseConsumedOnce) {
  SyringePumpModel p("pump", 10.0, unit_box());
  p.execute(make_cmd("pump", "dose_solvent", [] {
    json::Object o;
    o["volume"] = 2.0;
    o["target"] = std::string("vial_1");
    return o;
  }()));
  auto pending = p.take_pending_dispense();
  EXPECT_DOUBLE_EQ(pending.volume_ml, 2.0);
  EXPECT_EQ(pending.target, "vial_1");
  EXPECT_DOUBLE_EQ(p.take_pending_dispense().volume_ml, 0.0);
}

TEST(Hotplate, FirmwareLimitEnforced) {
  HotplateModel h("hp", 340.0, 150.0, unit_box());
  h.execute(make_cmd("hp", "set_temperature", [] {
    json::Object o;
    o["celsius"] = 120.0;
    return o;
  }()));
  EXPECT_DOUBLE_EQ(h.target_c(), 120.0);
  EXPECT_TRUE(h.active());
  EXPECT_TRUE(h.take_hazards().empty());  // below the hazard threshold
  // Past the hazard threshold but under the firmware limit: accepted, but
  // the solution overheats (ground truth).
  h.execute(make_cmd("hp", "set_temperature", [] {
    json::Object o;
    o["celsius"] = 200.0;
    return o;
  }()));
  auto hazards = h.take_hazards();
  ASSERT_EQ(hazards.size(), 1u);
  EXPECT_EQ(hazards[0].severity, Severity::High);
  // Past the firmware limit: rejected outright.
  EXPECT_THROW(h.execute(make_cmd("hp", "set_temperature", [] {
                 json::Object o;
                 o["celsius"] = 400.0;
                 return o;
               }())),
               DeviceError);
  EXPECT_DOUBLE_EQ(h.target_c(), 200.0);  // unchanged by the rejected command
  h.execute(make_cmd("hp", "stop"));
  EXPECT_FALSE(h.active());
  EXPECT_DOUBLE_EQ(h.target_c(), 25.0);
}

TEST(Centrifuge, RotateAndSpin) {
  CentrifugeModel c("cf", unit_box());
  EXPECT_EQ(c.red_dot(), "N");
  c.execute(make_cmd("cf", "rotate_platter", [] {
    json::Object o;
    o["orientation"] = std::string("E");
    return o;
  }()));
  EXPECT_EQ(c.red_dot(), "E");
  EXPECT_THROW(c.execute(make_cmd("cf", "rotate_platter", [] {
                 json::Object o;
                 o["orientation"] = std::string("NE");
                 return o;
               }())),
               DeviceError);
  // Spinning empty with the door closed: imbalance-wear hazard only.
  c.set_container_inside("");
  c.execute(make_cmd("cf", "start_spin", [] {
    json::Object o;
    o["rpm"] = 3000.0;
    return o;
  }()));
  EXPECT_TRUE(c.spinning());
  EXPECT_EQ(c.take_hazards().size(), 1u);
  c.execute(make_cmd("cf", "stop_spin"));
  EXPECT_FALSE(c.spinning());
}

TEST(Centrifuge, SpinWithOpenDoorEjectsContents) {
  CentrifugeModel c("cf", unit_box());
  c.set_container_inside("v1");
  c.execute(make_cmd("cf", "set_door", [] {
    json::Object o;
    o["state"] = std::string("open");
    return o;
  }()));
  c.execute(make_cmd("cf", "start_spin", [] {
    json::Object o;
    o["rpm"] = 1000.0;
    return o;
  }()));
  auto hazards = c.take_hazards();
  ASSERT_EQ(hazards.size(), 1u);
  EXPECT_NE(hazards[0].description.find("ejected"), std::string::npos);
}

TEST(Thermoshaker, ShakeAndStop) {
  ThermoshakerModel t("ts", 110.0, unit_box());
  t.execute(make_cmd("ts", "shake", [] {
    json::Object o;
    o["rpm"] = 800.0;
    return o;
  }()));
  EXPECT_TRUE(t.active());
  EXPECT_DOUBLE_EQ(t.shake_rpm(), 800.0);
  EXPECT_THROW(t.execute(make_cmd("ts", "set_temperature", [] {
                 json::Object o;
                 o["celsius"] = 150.0;
                 return o;
               }())),
               DeviceError);  // firmware limit 110
  t.execute(make_cmd("ts", "stop"));
  EXPECT_FALSE(t.active());
}

TEST(GenericActionDevice, ConfigDrivenActions) {
  GenericActionDevice spin(
      "spin_coater",
      {{"set_spin_speed", "spinRpm", "rpm", 6000.0}},
      /*has_door=*/false, unit_box());
  spin.execute(make_cmd("spin_coater", "start"));
  EXPECT_TRUE(spin.active());
  spin.execute(make_cmd("spin_coater", "set_spin_speed", [] {
    json::Object o;
    o["rpm"] = 3000.0;
    return o;
  }()));
  EXPECT_DOUBLE_EQ(spin.state().at("spinRpm").as_double(), 3000.0);
  EXPECT_THROW(spin.execute(make_cmd("spin_coater", "set_spin_speed", [] {
                 json::Object o;
                 o["rpm"] = 9000.0;
                 return o;
               }())),
               DeviceError);
  spin.execute(make_cmd("spin_coater", "stop"));
  EXPECT_FALSE(spin.active());
  EXPECT_EQ(spin.door_status(), "none");  // doorless device
}

TEST(GenericActionDevice, OptionalDoor) {
  GenericActionDevice decapper("decapper", {}, /*has_door=*/true, std::nullopt);
  EXPECT_EQ(decapper.door_status(), "closed");
  decapper.execute(make_cmd("decapper", "set_door", [] {
    json::Object o;
    o["state"] = std::string("open");
    return o;
  }()));
  EXPECT_EQ(decapper.door_status(), "open");
  decapper.break_door();
  EXPECT_EQ(decapper.door_status(), "broken");
}

}  // namespace
}  // namespace rabit::dev
