#include "json/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace rabit::json {
namespace {

TEST(JsonValue, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), Type::Null);
}

TEST(JsonValue, ScalarConstruction) {
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(42).is_int());
  EXPECT_TRUE(Value(3.5).is_double());
  EXPECT_TRUE(Value("hi").is_string());
  EXPECT_EQ(Value(42).as_int(), 42);
  EXPECT_DOUBLE_EQ(Value(3.5).as_double(), 3.5);
  EXPECT_EQ(Value("hi").as_string(), "hi");
}

TEST(JsonValue, IntegerReadsAsDouble) {
  EXPECT_DOUBLE_EQ(Value(7).as_double(), 7.0);
  EXPECT_TRUE(Value(7).is_number());
  EXPECT_TRUE(Value(7.0).is_number());
}

TEST(JsonValue, TypeMismatchThrows) {
  EXPECT_THROW(static_cast<void>(Value(1).as_string()), std::runtime_error);
  EXPECT_THROW(static_cast<void>(Value("x").as_int()), std::runtime_error);
  EXPECT_THROW(static_cast<void>(Value(true).as_array()), std::runtime_error);
  EXPECT_THROW(static_cast<void>(Value(3.5).as_int()), std::runtime_error);  // doubles are not ints
}

TEST(JsonObject, InsertionOrderPreserved) {
  Object o;
  o["z"] = 1;
  o["a"] = 2;
  o["m"] = 3;
  std::vector<std::string> keys;
  for (const auto& [k, v] : o) {
    (void)v;
    keys.push_back(k);
  }
  EXPECT_EQ(keys, (std::vector<std::string>{"z", "a", "m"}));
}

TEST(JsonObject, FindAndAt) {
  Object o;
  o["x"] = 5;
  EXPECT_NE(o.find("x"), nullptr);
  EXPECT_EQ(o.find("y"), nullptr);
  EXPECT_EQ(o.at("x").as_int(), 5);
  EXPECT_THROW(static_cast<void>(o.at("y")), std::out_of_range);
}

TEST(JsonObject, EqualityIsOrderInsensitive) {
  Object a;
  a["x"] = 1;
  a["y"] = 2;
  Object b;
  b["y"] = 2;
  b["x"] = 1;
  EXPECT_EQ(Value(a), Value(b));
  b["x"] = 3;
  EXPECT_FALSE(Value(a) == Value(b));
}

TEST(JsonObject, Erase) {
  Object o;
  o["a"] = 1;
  o["b"] = 2;
  o.erase("a");
  EXPECT_FALSE(o.contains("a"));
  EXPECT_TRUE(o.contains("b"));
}

TEST(JsonValue, GetOrDefaults) {
  Object o;
  o["present"] = 9;
  Value v(std::move(o));
  EXPECT_EQ(v.get_or("present", std::int64_t{0}), 9);
  EXPECT_EQ(v.get_or("absent", std::int64_t{7}), 7);
  EXPECT_EQ(v.get_or("absent", std::string("dflt")), "dflt");
  EXPECT_TRUE(v.get_or("absent", true));
}

// --- parser ---------------------------------------------------------------

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_EQ(parse("123").as_int(), 123);
  EXPECT_EQ(parse("-40").as_int(), -40);
  EXPECT_DOUBLE_EQ(parse("2.5").as_double(), 2.5);
  EXPECT_DOUBLE_EQ(parse("1e3").as_double(), 1000.0);
  EXPECT_DOUBLE_EQ(parse("-1.5e-2").as_double(), -0.015);
  EXPECT_EQ(parse("\"abc\"").as_string(), "abc");
}

TEST(JsonParse, IntegerVsDoubleDistinct) {
  EXPECT_TRUE(parse("10").is_int());
  EXPECT_TRUE(parse("10.0").is_double());
  EXPECT_TRUE(parse("1e2").is_double());
}

TEST(JsonParse, NestedStructures) {
  Value v = parse(R"({"a": [1, 2, {"b": null}], "c": {"d": true}})");
  EXPECT_EQ(v.as_object().at("a").as_array()[1].as_int(), 2);
  EXPECT_TRUE(v.as_object().at("a").as_array()[2].as_object().at("b").is_null());
  EXPECT_TRUE(v.as_object().at("c").as_object().at("d").as_bool());
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse(R"("a\nb\t\"\\")").as_string(), "a\nb\t\"\\");
  EXPECT_EQ(parse(R"("A")").as_string(), "A");
  EXPECT_EQ(parse(R"("é")").as_string(), "\xc3\xa9");  // e-acute, UTF-8
  EXPECT_EQ(parse(R"("😀")").as_string(), "\xf0\x9f\x98\x80");  // emoji
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_TRUE(parse("[]").as_array().empty());
  EXPECT_TRUE(parse("{}").as_object().empty());
  EXPECT_TRUE(parse("[ ]").as_array().empty());
}

TEST(JsonParse, WhitespaceTolerated) {
  Value v = parse("  {\n\t\"a\" : [ 1 , 2 ]\r\n}  ");
  EXPECT_EQ(v.as_object().at("a").as_array().size(), 2u);
}

struct BadInput {
  const char* text;
  const char* why;
};

class JsonParseErrors : public ::testing::TestWithParam<BadInput> {};

TEST_P(JsonParseErrors, Rejected) {
  EXPECT_THROW(parse(GetParam().text), ParseError) << GetParam().why;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, JsonParseErrors,
    ::testing::Values(BadInput{"", "empty document"}, BadInput{"{", "unterminated object"},
                      BadInput{"[1,", "unterminated array"}, BadInput{"[1,]", "trailing comma"},
                      BadInput{"{\"a\":}", "missing value"},
                      BadInput{"{\"a\" 1}", "missing colon"},
                      BadInput{"{\"a\":1 \"b\":2}", "missing comma"},
                      BadInput{"\"abc", "unterminated string"},
                      BadInput{"\"\\x\"", "bad escape"}, BadInput{"01", "leading zero"},
                      BadInput{"1.", "digits after point"}, BadInput{"1e", "empty exponent"},
                      BadInput{"tru", "bad literal"}, BadInput{"nul", "bad literal"},
                      BadInput{"1 2", "trailing garbage"},
                      BadInput{"{\"a\":1,\"a\":2}", "duplicate key"},
                      BadInput{"\"\\ud800\"", "unpaired surrogate"},
                      BadInput{"\"a\nb\"", "raw control char"}));

TEST(JsonParse, ErrorCarriesLineAndColumn) {
  try {
    static_cast<void>(parse("{\n  \"a\": [1,\n  2,,]\n}"));
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_GT(e.column(), 1);
  }
}

// --- serializer -------------------------------------------------------------

TEST(JsonSerialize, RoundTripsStructure) {
  const char* doc = R"({"name":"vial_1","caps":[10,15.5],"flags":{"broken":false},"n":null})";
  Value v = parse(doc);
  EXPECT_EQ(parse(serialize(v)), v);
  EXPECT_EQ(parse(serialize_pretty(v)), v);
}

TEST(JsonSerialize, DoubleKeepsTypeOnRoundTrip) {
  Value v = parse("[1, 1.0]");
  Value round = parse(serialize(v));
  EXPECT_TRUE(round.as_array()[0].is_int());
  EXPECT_TRUE(round.as_array()[1].is_double());
}

TEST(JsonSerialize, EscapesControlCharacters) {
  std::string s = serialize(Value(std::string("a\x01z")));
  EXPECT_EQ(s, "\"a\\u0001z\"");
}

TEST(JsonSerialize, NanBecomesNull) {
  EXPECT_EQ(serialize(Value(std::nan(""))), "null");
}

TEST(JsonSerialize, PrettyHasIndentation) {
  Value v = parse(R"({"a":[1]})");
  std::string pretty = serialize_pretty(v);
  EXPECT_NE(pretty.find("\n  "), std::string::npos);
}

// --- schema -----------------------------------------------------------------

TEST(JsonSchema, TypeChecking) {
  Schema schema(std::string_view(R"({"type": "object"})"));
  EXPECT_TRUE(schema.validate(parse("{}")).empty());
  EXPECT_FALSE(schema.validate(parse("[]")).empty());
}

TEST(JsonSchema, RequiredProperties) {
  Schema schema(std::string_view(R"({"type":"object","required":["id","category"]})"));
  EXPECT_TRUE(schema.validate(parse(R"({"id":"x","category":"y"})")).empty());
  auto issues = schema.validate(parse(R"({"id":"x"})"));
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].message.find("category"), std::string::npos);
}

TEST(JsonSchema, NumericBoundsCatchSignErrors) {
  // The pilot-study scenario (§V-A): a negative sign entered where a
  // positive height was needed.
  Schema schema(std::string_view(R"({"type":"object","properties":{"z":{"type":"number","minimum":0}}})"));
  EXPECT_TRUE(schema.validate(parse(R"({"z": 0.12})")).empty());
  auto issues = schema.validate(parse(R"({"z": -0.12})"));
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].path, "/z");
}

TEST(JsonSchema, ExclusiveBounds) {
  Schema schema(std::string_view(R"({"type":"number","exclusiveMinimum":0,"exclusiveMaximum":1})"));
  EXPECT_TRUE(schema.validate(parse("0.5")).empty());
  EXPECT_FALSE(schema.validate(parse("0")).empty());
  EXPECT_FALSE(schema.validate(parse("1")).empty());
}

TEST(JsonSchema, EnumConstraint) {
  Schema schema(std::string_view(R"({"type":"string","enum":["open","closed"]})"));
  EXPECT_TRUE(schema.validate(parse("\"open\"")).empty());
  EXPECT_FALSE(schema.validate(parse("\"ajar\"")).empty());
}

TEST(JsonSchema, ArrayItemsAndBounds) {
  Schema schema(std::string_view(R"({"type":"array","minItems":1,"maxItems":3,"items":{"type":"integer"}})"));
  EXPECT_TRUE(schema.validate(parse("[1,2]")).empty());
  EXPECT_FALSE(schema.validate(parse("[]")).empty());
  EXPECT_FALSE(schema.validate(parse("[1,2,3,4]")).empty());
  auto issues = schema.validate(parse("[1,\"x\"]"));
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].path, "/1");
}

TEST(JsonSchema, NestedPathsInIssues) {
  Schema schema(std::string_view(R"({"type":"object","properties":{
    "devices":{"type":"array","items":{"type":"object","required":["id"]}}}})"));
  auto issues = schema.validate(parse(R"({"devices":[{"id":"a"},{}]})"));
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].path, "/devices/1");
}

TEST(JsonSchema, ClosedObjectRejectsUnknownKeys) {
  Schema schema(std::string_view(R"({"type":"object","additionalProperties":false,
                    "properties":{"a":{"type":"integer"}}})"));
  EXPECT_TRUE(schema.validate(parse(R"({"a":1})")).empty());
  EXPECT_FALSE(schema.validate(parse(R"({"a":1,"b":2})")).empty());
}

TEST(JsonSchema, IntegerVsNumber) {
  Schema int_schema(R"({"type":"integer"})");
  Schema num_schema(R"({"type":"number"})");
  EXPECT_TRUE(int_schema.validate(parse("3")).empty());
  EXPECT_FALSE(int_schema.validate(parse("3.5")).empty());
  EXPECT_TRUE(num_schema.validate(parse("3")).empty());
  EXPECT_TRUE(num_schema.validate(parse("3.5")).empty());
}

TEST(JsonSchema, StringLengthBounds) {
  Schema schema(std::string_view(R"({"type":"string","minLength":1,"maxLength":3})"));
  EXPECT_TRUE(schema.validate(parse("\"ab\"")).empty());
  EXPECT_FALSE(schema.validate(parse("\"\"")).empty());
  EXPECT_FALSE(schema.validate(parse("\"abcd\"")).empty());
}

TEST(JsonSchema, MalformedSchemaThrows) {
  EXPECT_THROW(Schema(parse(R"({"type":"banana"})")), std::runtime_error);
  EXPECT_THROW(Schema(parse(R"({"enum":[]})")), std::runtime_error);
  EXPECT_THROW(Schema(parse("[]")), std::runtime_error);
}

TEST(JsonSchema, MultipleIssuesReported) {
  Schema schema(std::string_view(R"({"type":"object","required":["a","b"],
                    "properties":{"c":{"type":"integer"}}})"));
  auto issues = schema.validate(parse(R"({"c":"nope"})"));
  EXPECT_EQ(issues.size(), 3u);  // missing a, missing b, wrong type for c
}

/// Property: random JSON documents survive serialize -> parse unchanged,
/// both compact and pretty.
class JsonRoundTripProperty : public ::testing::TestWithParam<unsigned> {};

namespace {

Value random_value(std::mt19937& rng, int depth) {
  std::uniform_int_distribution<int> kind(0, depth > 0 ? 6 : 4);
  switch (kind(rng)) {
    case 0: return Value();
    case 1: return Value(std::uniform_int_distribution<int>(0, 1)(rng) == 1);
    case 2: return Value(std::uniform_int_distribution<std::int64_t>(-1'000'000, 1'000'000)(rng));
    case 3: {
      std::uniform_real_distribution<double> d(-1e6, 1e6);
      return Value(d(rng));
    }
    case 4: {
      std::uniform_int_distribution<int> len(0, 12);
      std::uniform_int_distribution<int> ch(32, 126);
      std::string s;
      for (int i = len(rng); i > 0; --i) s.push_back(static_cast<char>(ch(rng)));
      return Value(std::move(s));
    }
    case 5: {
      Array arr;
      std::uniform_int_distribution<int> len(0, 4);
      for (int i = len(rng); i > 0; --i) arr.push_back(random_value(rng, depth - 1));
      return Value(std::move(arr));
    }
    default: {
      Object obj;
      std::uniform_int_distribution<int> len(0, 4);
      for (int i = len(rng); i > 0; --i) {
        obj["k" + std::to_string(i) + "_" +
            std::to_string(std::uniform_int_distribution<int>(0, 999)(rng))] =
            random_value(rng, depth - 1);
      }
      return Value(std::move(obj));
    }
  }
}

}  // namespace

TEST_P(JsonRoundTripProperty, SerializeParseIdentity) {
  std::mt19937 rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    Value v = random_value(rng, 3);
    EXPECT_EQ(parse(serialize(v)), v);
    EXPECT_EQ(parse(serialize_pretty(v)), v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTripProperty, ::testing::Values(11u, 22u, 33u));

}  // namespace
}  // namespace rabit::json
