// Standard-deck invariants: geometry regressions here would silently skew
// every experiment, so pin them down.
#include <gtest/gtest.h>

#include "core/config.hpp"
#include "devices/robot_arm.hpp"
#include "sim/deck.hpp"

namespace rabit::sim {
namespace {

using geom::Vec3;
namespace ids = deck_ids;

class DeckInvariants : public ::testing::TestWithParam<const char*> {
 protected:
  DeckInvariants()
      : backend(std::string(GetParam()) == "production" ? production_profile()
                                                        : testbed_profile()) {
    if (std::string(GetParam()) == "production") {
      build_hein_production_deck(backend);
    } else {
      build_hein_testbed_deck(backend);
    }
  }

  std::vector<const dev::RobotArmDevice*> arms() const {
    std::vector<const dev::RobotArmDevice*> out;
    for (const dev::Device* d : backend.registry().all()) {
      if (const auto* arm = dynamic_cast<const dev::RobotArmDevice*>(d)) out.push_back(arm);
    }
    return out;
  }

  LabBackend backend;
};

TEST_P(DeckInvariants, DeviceFootprintsAreDisjoint) {
  std::vector<std::pair<std::string, geom::Aabb>> footprints;
  for (const dev::Device* d : backend.registry().all()) {
    if (auto fp = d->footprint()) footprints.emplace_back(d->id(), *fp);
  }
  for (std::size_t i = 0; i < footprints.size(); ++i) {
    for (std::size_t j = i + 1; j < footprints.size(); ++j) {
      EXPECT_FALSE(footprints[i].second.intersects(footprints[j].second))
          << footprints[i].first << " overlaps " << footprints[j].first;
    }
  }
}

TEST_P(DeckInvariants, FootprintsSitOnThePlatform) {
  for (const dev::Device* d : backend.registry().all()) {
    if (auto fp = d->footprint()) {
      EXPECT_NEAR(fp->min.z, 0.02, 1e-9) << d->id() << " floats or sinks";
      EXPECT_LE(fp->max.x, 0.9) << d->id() << " pokes into a wall";
      EXPECT_GE(fp->min.x, -0.9) << d->id();
      EXPECT_LE(fp->max.y, 0.9) << d->id();
      EXPECT_GE(fp->min.y, -0.9) << d->id();
    }
  }
}

TEST_P(DeckInvariants, EverySiteIsReachableBySomeArm) {
  for (const SiteBinding& site : backend.sites()) {
    bool reachable = false;
    for (const dev::RobotArmDevice* arm : arms()) {
      reachable |= arm->model().reachable(site.lab_position);
    }
    EXPECT_TRUE(reachable) << "no arm reaches site " << site.name;
  }
}

TEST_P(DeckInvariants, SiteBindingsResolve) {
  for (const SiteBinding& site : backend.sites()) {
    if (site.is_grid_slot()) {
      EXPECT_NE(backend.registry().find(site.grid_device), nullptr) << site.name;
    }
    if (site.is_receptacle()) {
      EXPECT_NE(backend.registry().find(site.receptacle_device), nullptr) << site.name;
    }
    // Sites sit above the platform, never inside it.
    EXPECT_GT(site.lab_position.z, 0.02) << site.name;
  }
}

TEST_P(DeckInvariants, SitesAreMutuallyDistinguishable) {
  // Grab tolerance is 3.5 cm; sites closer than twice that would be
  // ambiguous for the gripper heuristics.
  const auto& sites = backend.sites();
  for (std::size_t i = 0; i < sites.size(); ++i) {
    for (std::size_t j = i + 1; j < sites.size(); ++j) {
      EXPECT_GT(sites[i].lab_position.distance_to(sites[j].lab_position), 0.07)
          << sites[i].name << " vs " << sites[j].name;
    }
  }
}

TEST_P(DeckInvariants, NamedPosesAreCollisionFree) {
  for (const dev::RobotArmDevice* arm : arms()) {
    WorldModel world = backend.ground_truth_world(arm->id());
    for (const char* pose : {"home", "sleep"}) {
      Vec3 tip = arm->model().forward(arm->named_pose(pose));
      EXPECT_GT(tip.z, 0.02) << arm->id() << " " << pose << " below the platform";
      auto hit = check_point(world, tip, 0.0);
      EXPECT_FALSE(hit.has_value())
          << arm->id() << " " << pose << " collides: " << (hit ? hit->describe() : "");
    }
  }
}

TEST_P(DeckInvariants, ParkedArmsDoNotTouchEachOther) {
  auto all_arms = arms();
  for (std::size_t i = 0; i < all_arms.size(); ++i) {
    for (std::size_t j = i + 1; j < all_arms.size(); ++j) {
      auto segs_a = all_arms[i]->model().link_segments(all_arms[i]->joints());
      auto segs_b = all_arms[j]->model().link_segments(all_arms[j]->joints());
      double min_dist = 1e9;
      for (const geom::Segment& a : segs_a) {
        for (const geom::Segment& b : segs_b) {
          min_dist = std::min(min_dist, geom::distance(a, b));
        }
      }
      EXPECT_GT(min_dist,
                all_arms[i]->model().link_radius() + all_arms[j]->model().link_radius())
          << all_arms[i]->id() << " parked against " << all_arms[j]->id();
    }
  }
}

TEST_P(DeckInvariants, GeneratedConfigPassesItsOwnSchema) {
  core::EngineConfig cfg = core::config_from_backend(backend, core::Variant::Modified);
  auto issues = core::config_schema().validate(core::config_to_json(cfg));
  EXPECT_TRUE(issues.empty()) << issues.front().path << ": " << issues.front().message;
}

INSTANTIATE_TEST_SUITE_P(Decks, DeckInvariants, ::testing::Values("testbed", "production"));

}  // namespace
}  // namespace rabit::sim
