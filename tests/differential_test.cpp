// Differential soundness property: the pre-flight static analyzer and the
// runtime precondition check share one rulebase (core::check_preconditions),
// so the analyzer must never *pass* a command stream whose runtime check
// raises an Invalid Command alert — same rule class, caught one stage
// earlier. ~200 seeded random mutations of the testbed workflow drive both
// sides; any violating seed is printed so the exact script can be replayed
// with a one-line test filter + seed constant.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "bugs/bugs.hpp"
#include "core/config.hpp"
#include "scenario/fuzz.hpp"
#include "scenario/scenario.hpp"
#include "script/workflows.hpp"
#include "sim/deck.hpp"

namespace rabit {
namespace {

constexpr unsigned kSeedBase = 20000;
constexpr unsigned kSeedCount = 200;

core::EngineConfig testbed_config() {
  sim::LabBackend backend(sim::testbed_profile());
  sim::build_hein_testbed_deck(backend);
  return core::config_from_backend(backend, core::Variant::Modified);
}

std::vector<dev::Command> base_workflow() {
  sim::LabBackend staging(sim::testbed_profile());
  sim::build_hein_testbed_deck(staging);
  return script::record_workflow(staging, script::testbed_workflow_source());
}

/// The seed's script: 1-3 random mutations (delete / swap / scale / shift)
/// chained onto the recorded testbed workflow. Deterministic per seed.
std::vector<dev::Command> mutated_stream(const std::vector<dev::Command>& base, unsigned seed) {
  std::mt19937 rng(seed);
  std::vector<dev::Command> commands = base;
  std::size_t mutations = 1 + seed % 3;
  for (std::size_t i = 0; i < mutations; ++i) {
    commands = bugs::random_mutation(commands, rng).commands;
  }
  return commands;
}

/// The runtime side: first alert of the supervised run when it is a
/// precondition (Invalid Command) alert; nullopt otherwise.
std::optional<std::string> runtime_precondition_rule(const std::vector<dev::Command>& commands) {
  bugs::BugOutcome outcome = bugs::evaluate_stream(commands, core::Variant::Modified);
  if (!outcome.report.first_alert_step) return std::nullopt;
  const trace::SupervisedStep& step =
      outcome.report.steps[*outcome.report.first_alert_step];
  if (!step.alert || step.alert->kind != core::AlertKind::InvalidCommand) return std::nullopt;
  return step.alert->rule;
}

TEST(DifferentialSoundness, AnalyzerNeverPassesWhatRuntimePreconditionsBlock) {
  core::EngineConfig config = testbed_config();
  std::vector<dev::Command> base = base_workflow();

  std::size_t runtime_alerts = 0;
  std::vector<std::string> failures;
  for (unsigned seed = kSeedBase; seed < kSeedBase + kSeedCount; ++seed) {
    std::vector<dev::Command> commands = mutated_stream(base, seed);
    std::optional<std::string> rule = runtime_precondition_rule(commands);
    if (!rule) continue;  // no runtime precondition alert: nothing to prove
    ++runtime_alerts;

    analysis::AnalysisReport report = analysis::analyze_stream(config, commands);
    bool flagged_same_rule = false;
    for (const analysis::Diagnostic& d : report.diagnostics) {
      if (d.rule == *rule) flagged_same_rule = true;
    }
    if (!flagged_same_rule) {
      failures.push_back("seed " + std::to_string(seed) + " (runtime rule " + *rule +
                         ", analyzer diagnostics: " + std::to_string(report.diagnostics.size()) +
                         ")");
    }
  }

  // The mutation distribution must actually exercise the property — if no
  // seed ever trips a runtime precondition, the test is vacuous.
  EXPECT_GT(runtime_alerts, 10u) << "mutation distribution no longer reaches preconditions";

  std::string listing;
  for (const std::string& f : failures) listing += "\n  " + f;
  EXPECT_TRUE(failures.empty())
      << failures.size() << " seed(s) passed static analysis but alerted at runtime —"
      << " replay with mutated_stream(base_workflow(), <seed>):" << listing;
}

TEST(DifferentialSoundness, GeneratedCampaignsSatisfyEveryOracle) {
  // The generator-driven version of the sweep above: instead of one fixed
  // workflow under random mutations, each seed draws a whole campaign from
  // the scenario factory (workflow mixes, fault schedules, config
  // perturbations, script probes) and run_scenario applies the full oracle
  // set — static_miss, interference_miss, shard_divergence,
  // certificate_breach, false_alarm, false_halt. Failing seeds print in
  // replay form so the exact campaign is one CLI invocation away.
  std::size_t alerting = 0;
  std::vector<std::string> failures;
  for (unsigned i = 0; i < kSeedCount; ++i) {
    std::uint64_t seed = scenario::derive_seed(kSeedBase, i);
    scenario::ScenarioSpec spec = scenario::generate(seed);
    scenario::ScenarioResult result = scenario::run_scenario(spec);
    if (!result.verdict.alerts.empty()) ++alerting;
    if (!result.verdict.oracle_failures.empty()) {
      failures.push_back("rabit_fuzz --replay-seed " + std::to_string(seed) + "  # " +
                         result.verdict.oracle_failures.front());
    }
  }

  // Vacuity guard, same spirit as above: the generator must actually reach
  // runtime alerts for the oracles to have anything to compare.
  EXPECT_GT(alerting, 10u) << "generator no longer reaches runtime alerts";

  std::string listing;
  for (const std::string& f : failures) listing += "\n  " + f;
  EXPECT_TRUE(failures.empty())
      << failures.size() << " generated campaign(s) tripped a soundness oracle —"
      << " replay each with:" << listing;
}

TEST(DifferentialSoundness, MutationsAreDeterministicPerSeed) {
  std::vector<dev::Command> base = base_workflow();
  std::vector<dev::Command> a = mutated_stream(base, kSeedBase + 7);
  std::vector<dev::Command> b = mutated_stream(base, kSeedBase + 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].device, b[i].device);
    EXPECT_EQ(a[i].action, b[i].action);
    EXPECT_EQ(json::serialize(a[i].args), json::serialize(b[i].args));
  }
}

}  // namespace
}  // namespace rabit
