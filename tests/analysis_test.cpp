// Tests for rabit::analysis — the pre-flight static analyzer and config lint.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/analysis.hpp"
#include "bugs/bugs.hpp"
#include "core/config.hpp"
#include "script/workflows.hpp"
#include "sim/deck.hpp"

using namespace rabit;
using analysis::AbstractValue;
using analysis::AnalysisReport;
using analysis::Severity;

namespace {

core::EngineConfig testbed_config() {
  sim::LabBackend backend(sim::testbed_profile());
  sim::build_hein_testbed_deck(backend);
  return core::config_from_backend(backend, core::Variant::Modified);
}

core::EngineConfig production_config() {
  sim::LabBackend backend(sim::production_profile());
  sim::build_hein_production_deck(backend);
  return core::config_from_backend(backend, core::Variant::Modified);
}

const analysis::Diagnostic* find_rule(const AnalysisReport& report, std::string_view rule) {
  for (const analysis::Diagnostic& d : report.diagnostics) {
    if (d.rule == rule) return &d;
  }
  return nullptr;
}

}  // namespace

// --- abstract value lattice ---------------------------------------------------

TEST(AbstractValue, ConstFoldingAndRanges) {
  AbstractValue two = AbstractValue::make_const(json::Value(2.0));
  AbstractValue three = AbstractValue::make_const(json::Value(3.0));
  AbstractValue sum = analysis::abstract_binary("+", two, three);
  ASSERT_TRUE(sum.is_const());
  EXPECT_DOUBLE_EQ(sum.constant.as_double(), 5.0);

  AbstractValue range = AbstractValue::make_range(1.0, 4.0);
  AbstractValue shifted = analysis::abstract_binary("+", range, two);
  double lo = 0.0, hi = 0.0;
  ASSERT_TRUE(shifted.numeric_bounds(lo, hi));
  EXPECT_DOUBLE_EQ(lo, 3.0);
  EXPECT_DOUBLE_EQ(hi, 6.0);

  // Multiplication considers all corner products.
  AbstractValue neg = AbstractValue::make_range(-2.0, 3.0);
  AbstractValue prod = analysis::abstract_binary("*", neg, range);
  ASSERT_TRUE(prod.numeric_bounds(lo, hi));
  EXPECT_DOUBLE_EQ(lo, -8.0);
  EXPECT_DOUBLE_EQ(hi, 12.0);

  // Division by an interval straddling zero is Top, never a guess.
  EXPECT_TRUE(analysis::abstract_binary("/", two, neg).is_top());
}

TEST(AbstractValue, ThreeValuedComparisons) {
  AbstractValue low = AbstractValue::make_range(0.0, 1.0);
  AbstractValue high = AbstractValue::make_range(2.0, 3.0);
  AbstractValue lt = analysis::abstract_binary("<", low, high);
  ASSERT_TRUE(lt.is_const());
  EXPECT_TRUE(lt.constant.as_bool());

  AbstractValue overlap = AbstractValue::make_range(0.5, 2.5);
  EXPECT_TRUE(analysis::abstract_binary("<", low, overlap).is_top());

  // Three-valued and/or: a decided false short-circuits an unknown side.
  AbstractValue unknown = AbstractValue::top();
  AbstractValue f = AbstractValue::make_const(json::Value(false));
  AbstractValue conj = analysis::abstract_binary("and", unknown, f);
  ASSERT_TRUE(conj.is_const());
  EXPECT_FALSE(conj.constant.as_bool());
  AbstractValue t = AbstractValue::make_const(json::Value(true));
  AbstractValue disj = analysis::abstract_binary("or", t, unknown);
  ASSERT_TRUE(disj.is_const());
  EXPECT_TRUE(disj.constant.as_bool());
  EXPECT_TRUE(analysis::abstract_binary("and", unknown, t).is_top());
}

TEST(AbstractValue, RangeCollapsesToConst) {
  AbstractValue point = AbstractValue::make_range(2.0, 2.0);
  EXPECT_TRUE(point.is_const());
  EXPECT_DOUBLE_EQ(point.constant.as_double(), 2.0);
}

TEST(AbstractValue, DivisionByZeroBearingIntervalsIsTop) {
  AbstractValue two = AbstractValue::make_const(json::Value(2.0));
  // Exact zero, zero-straddling interval, and zero-boundary interval all
  // refuse to guess.
  EXPECT_TRUE(analysis::abstract_binary("/", two, AbstractValue::make_const(json::Value(0.0)))
                  .is_top());
  EXPECT_TRUE(analysis::abstract_binary("/", two, AbstractValue::make_range(-1.0, 1.0)).is_top());
  EXPECT_TRUE(analysis::abstract_binary("/", two, AbstractValue::make_range(0.0, 3.0)).is_top());
  // A divisor interval that excludes zero divides cleanly.
  AbstractValue safe = analysis::abstract_binary("/", AbstractValue::make_range(2.0, 4.0),
                                                 AbstractValue::make_range(1.0, 2.0));
  double lo = 0.0, hi = 0.0;
  ASSERT_TRUE(safe.numeric_bounds(lo, hi));
  EXPECT_DOUBLE_EQ(lo, 1.0);
  EXPECT_DOUBLE_EQ(hi, 4.0);
}

TEST(AbstractValue, TopVersusPointComparisonsStayTop) {
  AbstractValue unknown = AbstractValue::top();
  AbstractValue point = AbstractValue::make_const(json::Value(2.0));
  for (const char* op : {"<", "<=", ">", ">=", "==", "!="}) {
    EXPECT_TRUE(analysis::abstract_binary(op, unknown, point).is_top()) << op;
    EXPECT_TRUE(analysis::abstract_binary(op, point, unknown).is_top()) << op;
  }
  // Arithmetic with Top is equally undecided.
  EXPECT_TRUE(analysis::abstract_binary("+", unknown, point).is_top());
  EXPECT_TRUE(analysis::abstract_binary("*", point, unknown).is_top());
}

// --- clean scripts ------------------------------------------------------------

TEST(Analyzer, TestbedWorkflowIsClean) {
  AnalysisReport report =
      analysis::analyze_script(testbed_config(), script::testbed_workflow_source());
  EXPECT_TRUE(report.diagnostics.empty())
      << (report.diagnostics.empty() ? "" : report.diagnostics.front().format());
}

TEST(Analyzer, SolubilityWorkflowIsClean) {
  // The measurement-driven while loop is statically unbounded: the analyzer
  // must speculate bounded iterations without inventing violations.
  AnalysisReport report =
      analysis::analyze_script(production_config(), script::solubility_workflow_source());
  EXPECT_TRUE(report.diagnostics.empty())
      << (report.diagnostics.empty() ? "" : report.diagnostics.front().format());
}

TEST(Analyzer, SeededLocationsMatchWorkflowTable) {
  sim::LabBackend backend(sim::testbed_profile());
  sim::build_hein_testbed_deck(backend);
  core::EngineConfig config = core::config_from_backend(backend, core::Variant::Modified);
  json::Value expected = script::locations_table(backend);
  json::Value seeded = analysis::seed_locations(config);
  for (const auto& [site, arms] : expected.as_object()) {
    const json::Value* got_site = seeded.find(site);
    ASSERT_NE(got_site, nullptr) << site;
    for (const auto& [arm, coords] : arms.as_object()) {
      const json::Value* got = got_site->find(arm);
      ASSERT_NE(got, nullptr) << site << "/" << arm;
      for (const char* key : {"pickup", "safe"}) {
        const json::Array& want = coords.as_object().at(key).as_array();
        const json::Array& have = got->as_object().at(key).as_array();
        ASSERT_EQ(want.size(), have.size());
        for (std::size_t i = 0; i < want.size(); ++i) {
          EXPECT_NEAR(want[i].as_double(), have[i].as_double(), 1e-9)
              << site << "/" << arm << "/" << key << "[" << i << "]";
        }
      }
    }
  }
}

// --- diagnostic categories ----------------------------------------------------

TEST(Analyzer, SyntaxErrorIsReportedWithLine) {
  AnalysisReport report = analysis::analyze_script(testbed_config(), "let x = 1\nif x { }");
  const analysis::Diagnostic* d = find_rule(report, "SYNTAX");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_EQ(d->line, 2);
}

TEST(Analyzer, ClosedDoorEntryIsG1WithLine) {
  // Enter the dosing device without opening its door first (the paper's
  // Bug A shape, statically).
  const char* source =
      "viperx.go_home()\n"
      "viperx.move_to(position=locations[\"dosing_device\"][\"viperx\"][\"safe\"])\n"
      "viperx.move_to(position=locations[\"dosing_device\"][\"viperx\"][\"pickup\"])\n";
  AnalysisReport report = analysis::analyze_script(testbed_config(), source);
  const analysis::Diagnostic* d = find_rule(report, "G1");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_EQ(d->line, 3);
}

TEST(Analyzer, ConstantOverThresholdIsG11Error) {
  AnalysisReport report =
      analysis::analyze_script(testbed_config(), "hotplate.set_temperature(celsius=200)\n");
  const analysis::Diagnostic* d = find_rule(report, "G11");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_EQ(d->line, 1);
}

TEST(Analyzer, IntervalCrossingThresholdIsG11Warning) {
  // rpm ∈ [600, 1800] after the loop: may exceed the 1200 rpm threshold on
  // some path but not all — a warning, not an error.
  const char* source =
      "let rpm = 600\n"
      "let i = 0\n"
      "while (i < 2) {\n"
      "    rpm = rpm * 2 - rpm / 2\n"
      "    i = i + 1\n"
      "}\n"
      "hotplate.stir(rpm=rpm)\n";
  AnalysisReport report = analysis::analyze_script(testbed_config(), source);
  // The decidable loop unrolls fully, so rpm is exactly 1350 — over the
  // threshold deterministically.
  const analysis::Diagnostic* d = find_rule(report, "G11");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 7);
}

TEST(Analyzer, UnresolvableThresholdArgumentIsA5) {
  // A measurement feeds the thresholded argument: statically Top.
  const char* source =
      "let reading = camera.measure_solubility(target=vial_1)\n"
      "hotplate.stir(rpm=reading)\n";
  AnalysisReport report = analysis::analyze_script(production_config(), source);
  const analysis::Diagnostic* d = find_rule(report, "A5");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_EQ(d->line, 2);
}

TEST(Analyzer, UnknownIdentifierIsA6) {
  AnalysisReport report = analysis::analyze_script(testbed_config(), "frobulator.go_home()\n");
  const analysis::Diagnostic* d = find_rule(report, "A6");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_EQ(d->line, 1);
}

TEST(Analyzer, SpeculativePathDowngradesToWarning) {
  // The violation only happens when the measurement-driven branch is taken:
  // an error on a speculative path reports as a warning.
  const char* source =
      "let reading = camera.measure_solubility(target=vial_1)\n"
      "if (reading < 0.5) {\n"
      "    hotplate.set_temperature(celsius=200)\n"
      "}\n";
  AnalysisReport report = analysis::analyze_script(production_config(), source);
  const analysis::Diagnostic* d = find_rule(report, "G11");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_EQ(d->line, 3);
  EXPECT_NE(d->message.find("may happen"), std::string::npos);
}

TEST(Analyzer, WorkspaceEscapeIsA4) {
  AnalysisReport report = analysis::analyze_script(
      testbed_config(), "viperx.move_to(position=[0.25, 0.0, 1.9])\n");
  const analysis::Diagnostic* d = find_rule(report, "A4");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 1);
}

TEST(Analyzer, GripperClosingOnAirIsA2) {
  AnalysisReport report =
      analysis::analyze_script(testbed_config(), "viperx.go_home()\nviperx.close_gripper()\n");
  const analysis::Diagnostic* d = find_rule(report, "A2");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_EQ(d->line, 2);
}

TEST(Analyzer, DryRunIsA1) {
  AnalysisReport report = analysis::analyze_script(
      testbed_config(),
      "dosing_device.set_door(state=\"closed\")\ndosing_device.run_action(delay=3, quantity=5)\n");
  const analysis::Diagnostic* d = find_rule(report, "A1");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_EQ(d->line, 2);
}

TEST(Analyzer, UnboundedLoopHitsBudgetNote) {
  const char* source =
      "let i = 0\n"
      "while (i >= 0) {\n"
      "    i = i + 1\n"
      "}\n";
  AnalysisReport report = analysis::analyze_script(testbed_config(), source);
  EXPECT_TRUE(report.truncated);
  EXPECT_NE(find_rule(report, "A8"), nullptr);
}

TEST(Analyzer, TightLoopBudgetWidensAndMarksTruncated) {
  // The loop is bounded (20 iterations) but exceeds a deliberately tiny
  // unroll budget: the analyzer must widen — note A8, set `truncated` — and
  // still terminate, rather than either spinning or silently dropping the
  // tail of the loop.
  const char* source =
      "let i = 0\n"
      "while (i < 20) {\n"
      "    hotplate.set_temperature(celsius=40)\n"
      "    i = i + 1\n"
      "}\n";
  analysis::AnalyzeOptions options;
  options.loop_unroll_budget = 4;
  AnalysisReport tight = analysis::analyze_script(testbed_config(), source, options);
  EXPECT_TRUE(tight.truncated);
  EXPECT_NE(find_rule(tight, "A8"), nullptr);

  // The default budget unrolls the same loop fully: no truncation.
  AnalysisReport full = analysis::analyze_script(testbed_config(), source);
  EXPECT_FALSE(full.truncated);
  EXPECT_EQ(find_rule(full, "A8"), nullptr);
}

TEST(Analyzer, UserFunctionsAreInlined) {
  // The rule hit happens inside a helper, two calls deep: the diagnostic
  // still points at the device command's own line.
  const char* source =
      "def heat(t) {\n"
      "    hotplate.set_temperature(celsius=t)\n"
      "}\n"
      "heat(120)\n"
      "heat(250)\n";
  AnalysisReport report = analysis::analyze_script(testbed_config(), source);
  const analysis::Diagnostic* d = find_rule(report, "G11");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 2);
  // The safe call produced nothing: exactly one finding.
  EXPECT_EQ(report.diagnostics.size(), 1u);
}

// --- the §IV bug catalogue through the analyzer -------------------------------

struct ExpectedFinding {
  const char* bug_id;
  const char* rule;
  int line;  ///< 0 = any line
};

class CatalogueAnalysis : public ::testing::TestWithParam<ExpectedFinding> {};

TEST_P(CatalogueAnalysis, FlagsBugWithRuleAndLine) {
  const ExpectedFinding& expected = GetParam();
  const bugs::BugSpec* spec = nullptr;
  for (const bugs::BugSpec& bug : bugs::bug_catalogue()) {
    if (bug.id == expected.bug_id) spec = &bug;
  }
  ASSERT_NE(spec, nullptr);

  sim::LabBackend staging(sim::testbed_profile());
  sim::build_hein_testbed_deck(staging);
  std::vector<dev::Command> stream = spec->build(staging);
  AnalysisReport report = analysis::analyze_stream(testbed_config(), stream);

  ASSERT_FALSE(report.diagnostics.empty()) << expected.bug_id;
  const analysis::Diagnostic* d = find_rule(report, expected.rule);
  ASSERT_NE(d, nullptr) << expected.bug_id << ": no " << expected.rule << " diagnostic";
  if (expected.line > 0) {
    EXPECT_EQ(d->line, expected.line) << expected.bug_id << ": " << d->format();
  } else {
    EXPECT_GT(d->line, 0);
  }
}

// Line numbers are the recorded commands' script source lines (Fig. 5/6
// workflow), or the 1-based stream index for commands the mutation inserted.
INSTANTIATE_TEST_SUITE_P(
    BuggyWorkflows, CatalogueAnalysis,
    ::testing::Values(ExpectedFinding{"H1", "G1", 5},    // door-closed entry
                      ExpectedFinding{"H2", "G2", 0},    // door closed on arm
                      ExpectedFinding{"H5", "G11", 0},   // over-temperature
                      ExpectedFinding{"M1", "M1", 27},   // two-arm collision (inserted)
                      ExpectedFinding{"M2", "G3", 5},    // platform crash, empty gripper
                      ExpectedFinding{"M3", "G3", 12},   // platform crash with vial
                      ExpectedFinding{"M4", "A4", 15},   // silently-skipped waypoint
                      ExpectedFinding{"M6", "A3", 14},   // frame-misalignment brush
                      ExpectedFinding{"L1", "G8", 0},    // overdose
                      ExpectedFinding{"L2", "A1", 33},   // missing pickup -> dry run
                      ExpectedFinding{"L3", "A2", 6},    // gripper reorder
                      ExpectedFinding{"ML1", "G3", 0}),  // place onto occupied slot
    [](const ::testing::TestParamInfo<ExpectedFinding>& info) {
      return std::string(info.param.bug_id);
    });

TEST(Analyzer, EveryCatalogueBugIsFlaggedAndNoSafeBaselineIs) {
  core::EngineConfig config = testbed_config();
  for (const bugs::BugSpec& bug : bugs::bug_catalogue()) {
    sim::LabBackend buggy_deck(sim::testbed_profile());
    sim::build_hein_testbed_deck(buggy_deck);
    AnalysisReport buggy = analysis::analyze_stream(config, bug.build(buggy_deck));
    EXPECT_FALSE(buggy.diagnostics.empty()) << bug.id << " produced no diagnostics";

    sim::LabBackend safe_deck(sim::testbed_profile());
    sim::build_hein_testbed_deck(safe_deck);
    AnalysisReport safe = analysis::analyze_stream(config, bug.build_safe(safe_deck));
    EXPECT_TRUE(safe.diagnostics.empty())
        << bug.id << " safe baseline flagged: " << safe.diagnostics.front().format();
  }
}

// --- config lint --------------------------------------------------------------

TEST(ConfigLint, CanonicalConfigsAreClean) {
  AnalysisReport testbed = analysis::lint_config(testbed_config());
  EXPECT_TRUE(testbed.diagnostics.empty())
      << (testbed.diagnostics.empty() ? "" : testbed.diagnostics.front().format());
  AnalysisReport production = analysis::lint_config(production_config());
  EXPECT_TRUE(production.diagnostics.empty())
      << (production.diagnostics.empty() ? "" : production.diagnostics.front().format());
}

TEST(ConfigLint, DuplicateDeviceIdIsCFG1Error) {
  core::EngineConfig config = testbed_config();
  config.devices.push_back(config.devices.front());
  AnalysisReport report = analysis::lint_config(config);
  const analysis::Diagnostic* d = find_rule(report, "CFG1");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Error);
}

TEST(ConfigLint, DanglingSiteReferenceIsCFG2Error) {
  core::EngineConfig config = testbed_config();
  core::SiteMeta site;
  site.name = "orphan";
  site.lab_position = geom::Vec3(0.1, 0.1, 0.1);
  site.grid_device = "no_such_grid";
  config.sites.push_back(site);
  AnalysisReport report = analysis::lint_config(config);
  const analysis::Diagnostic* d = find_rule(report, "CFG2");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Error);
}

TEST(ConfigLint, SoftWallOnUnknownArmIsCFG3Error) {
  core::EngineConfig config = testbed_config();
  config.soft_walls.push_back(core::SoftWallSpec{
      "ghost_arm", geom::Aabb(geom::Vec3(0, 0, 0), geom::Vec3(1, 1, 1))});
  AnalysisReport report = analysis::lint_config(config);
  ASSERT_NE(find_rule(report, "CFG3"), nullptr);

  // Referencing a non-arm device is equally wrong.
  core::EngineConfig config2 = testbed_config();
  config2.soft_walls.push_back(core::SoftWallSpec{
      "dosing_device", geom::Aabb(geom::Vec3(0, 0, 0), geom::Vec3(1, 1, 1))});
  AnalysisReport report2 = analysis::lint_config(config2);
  ASSERT_NE(find_rule(report2, "CFG3"), nullptr);
}

TEST(ConfigLint, ThresholdOnUnknownActionIsCFG4) {
  core::EngineConfig config = testbed_config();
  for (core::DeviceMeta& d : config.devices) {
    if (d.id == "hotplate") d.thresholds.push_back({"warp_drive", "speed", 9.0});
  }
  AnalysisReport report = analysis::lint_config(config);
  const analysis::Diagnostic* d = find_rule(report, "CFG4");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Warning);
}

TEST(ConfigLint, AliasShadowingCanonicalActionIsCFG5Error) {
  core::EngineConfig config = testbed_config();
  for (core::DeviceMeta& d : config.devices) {
    if (d.is_arm) d.action_aliases.emplace_back("move_to", "go_home");
  }
  AnalysisReport report = analysis::lint_config(config);
  const analysis::Diagnostic* d = find_rule(report, "CFG5");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Error);
}

TEST(ConfigLint, UnreachableSiteIsCFG6) {
  core::EngineConfig config = testbed_config();
  core::SiteMeta site;
  site.name = "far_away";
  site.lab_position = geom::Vec3(5.0, 5.0, 0.1);
  config.sites.push_back(site);
  AnalysisReport report = analysis::lint_config(config);
  const analysis::Diagnostic* d = find_rule(report, "CFG6");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Warning);
}

TEST(ConfigLint, OverlappingCuboidsAreCFG7) {
  core::EngineConfig config = testbed_config();
  core::DeviceMeta extra;
  extra.id = "phantom_station";
  extra.category = dev::DeviceCategory::ActionDevice;
  // Sits exactly on top of the hotplate.
  for (const core::DeviceMeta& d : config.devices) {
    if (d.id == "hotplate") extra.box = d.box;
  }
  config.devices.push_back(extra);
  AnalysisReport report = analysis::lint_config(config);
  ASSERT_NE(find_rule(report, "CFG7"), nullptr);
}

TEST(ConfigLint, NonPositiveThresholdIsCFG8) {
  core::EngineConfig config = testbed_config();
  for (core::DeviceMeta& d : config.devices) {
    if (d.id == "hotplate") d.thresholds.push_back({"stir", "rpm", -10.0});
  }
  AnalysisReport report = analysis::lint_config(config);
  ASSERT_NE(find_rule(report, "CFG8"), nullptr);
}

TEST(ConfigLint, UndeclaredArmOverlapIsCFG9) {
  // The testbed arms' reach spheres overlap; with time multiplexing switched
  // off and no soft wall, nothing in the config manages the shared region.
  core::EngineConfig config = testbed_config();
  config.time_multiplex = false;
  AnalysisReport report = analysis::lint_config(config);
  const analysis::Diagnostic* d = find_rule(report, "CFG9");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Warning);

  // Time multiplexing is a declared management policy: no CFG9 (this is why
  // the canonical testbed config stays clean).
  config.time_multiplex = true;
  EXPECT_EQ(find_rule(analysis::lint_config(config), "CFG9"), nullptr);

  // So is a soft wall keeping one arm out of the entire shared region.
  core::EngineConfig walled = testbed_config();
  walled.time_multiplex = false;
  walled.soft_walls.push_back(core::SoftWallSpec{
      "viperx", geom::Aabb(geom::Vec3(-10, -10, -10), geom::Vec3(10, 10, 10))});
  EXPECT_EQ(find_rule(analysis::lint_config(walled), "CFG9"), nullptr);
}

TEST(ConfigLint, TouchingWorkspaceEnvelopesAreStillCFG9) {
  // Zero-margin boundary: reach envelopes that share exactly one face.
  // AABB intersection is closed, so a zero-volume shared region still
  // counts — the arms can meet on that plane. One millimetre of daylight
  // between the envelopes clears the warning.
  auto make_arm = [](const std::string& id, double base_x) {
    core::DeviceMeta arm;
    arm.id = id;
    arm.is_arm = true;
    arm.base = geom::Transform::translation(geom::Vec3(base_x, 0.0, 0.0));
    // Home/sleep within 0.24 of the base keep max_arm_reach at its 0.6 floor,
    // making the envelope extents exact (no 2.5x multiplier in play).
    arm.home_position_lab = geom::Vec3(base_x + 0.1, 0.0, 0.1);
    arm.sleep_position_lab = geom::Vec3(base_x + 0.1, 0.0, 0.05);
    return arm;
  };
  core::EngineConfig config;
  config.time_multiplex = false;
  config.devices = {make_arm("arm_a", 0.0), make_arm("arm_b", 1.2)};

  AnalysisReport touching = analysis::lint_config(config);
  const analysis::Diagnostic* d = find_rule(touching, "CFG9");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Warning);

  config.devices[1] = make_arm("arm_b", 1.201);
  EXPECT_EQ(find_rule(analysis::lint_config(config), "CFG9"), nullptr);
}

TEST(ConfigLint, CapacityBelowSummedDosingThresholdsIsCFG10) {
  core::EngineConfig config = testbed_config();
  // Two devices with mass-dosing thresholds of 6 mg each: any single command
  // passes rule 11, but the 10 mg vials cannot hold the 12 mg sum.
  core::DeviceMeta second_doser;
  second_doser.id = "dosing_device_2";
  second_doser.category = dev::DeviceCategory::DosingSystem;
  second_doser.thresholds.push_back({"run_action", "quantity", 6.0});
  config.devices.push_back(second_doser);
  for (core::DeviceMeta& d : config.devices) {
    if (d.id == "dosing_device") d.thresholds.push_back({"run_action", "quantity", 6.0});
  }
  AnalysisReport report = analysis::lint_config(config);
  const analysis::Diagnostic* d = find_rule(report, "CFG10");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Warning);

  // A single dosing device never triggers it: one device's threshold against
  // one capacity is rule 11's own job.
  core::EngineConfig single = testbed_config();
  for (core::DeviceMeta& d : single.devices) {
    if (d.id == "dosing_device") d.thresholds.push_back({"run_action", "quantity", 60.0});
  }
  EXPECT_EQ(find_rule(analysis::lint_config(single), "CFG10"), nullptr);
}

// --- report plumbing ----------------------------------------------------------

TEST(Report, JsonSerializationRoundTrips) {
  AnalysisReport report;
  report.diagnostics.push_back(
      analysis::Diagnostic{Severity::Error, "G7", "door of dosing may be closed", 14});
  report.diagnostics.push_back(analysis::Diagnostic{Severity::Info, "A7", "skipped", 3});
  json::Value doc = analysis::report_to_json(report);
  const json::Object& root = doc.as_object();
  EXPECT_EQ(root.at("errors").as_int(), 1);
  EXPECT_EQ(root.at("warnings").as_int(), 0);
  const json::Array& diags = root.at("diagnostics").as_array();
  ASSERT_EQ(diags.size(), 2u);
  const json::Object& first = diags[0].as_object();
  EXPECT_EQ(first.at("rule").as_string(), "G7");
  EXPECT_EQ(first.at("line").as_int(), 14);
  EXPECT_EQ(first.at("severity").as_string(), "error");
}

TEST(Report, FormatIncludesLineSeverityAndRule) {
  analysis::Diagnostic d{Severity::Error, "G7", "door of dosing may be closed", 14};
  EXPECT_EQ(d.format(), "line 14: error G7 — door of dosing may be closed");
}
