#include <gtest/gtest.h>

#include "core/config.hpp"
#include "sim/deck.hpp"

namespace rabit::core {
namespace {

namespace ids = sim::deck_ids;

EngineConfig testbed_config(Variant v = Variant::Modified) {
  sim::LabBackend backend(sim::testbed_profile());
  sim::build_hein_testbed_deck(backend);
  return config_from_backend(backend, v);
}

TEST(Config, FromBackendCoversEveryDevice) {
  sim::LabBackend backend(sim::testbed_profile());
  sim::build_hein_testbed_deck(backend);
  EngineConfig cfg = config_from_backend(backend, Variant::Modified);
  EXPECT_EQ(cfg.devices.size(), backend.registry().size());
  EXPECT_EQ(cfg.sites.size(), backend.sites().size());
  EXPECT_EQ(cfg.static_obstacles.size(), backend.static_obstacles().size());
}

TEST(Config, ArmMetadata) {
  EngineConfig cfg = testbed_config();
  const DeviceMeta* viperx = cfg.find_device(ids::kViperX);
  ASSERT_NE(viperx, nullptr);
  EXPECT_TRUE(viperx->is_arm);
  EXPECT_TRUE(viperx->sleep_box.has_value());
  EXPECT_GT(viperx->held_clearance, 0.0);
  EXPECT_EQ(viperx->unchecked_vars, (std::vector<std::string>{"position", "pose"}));
  // Home and sleep tips are distinct, above the platform.
  EXPECT_GT(viperx->home_position_lab.z, 0.02);
  EXPECT_GT(viperx->sleep_position_lab.z, 0.02);
  EXPECT_GT(viperx->home_position_lab.distance_to(viperx->sleep_position_lab), 0.05);
}

TEST(Config, StationMetadata) {
  EngineConfig cfg = testbed_config();
  const DeviceMeta* dosing = cfg.find_device(ids::kDosingDevice);
  ASSERT_NE(dosing, nullptr);
  EXPECT_TRUE(dosing->has_door);
  EXPECT_TRUE(dosing->is_active_action("run_action"));
  EXPECT_FALSE(dosing->is_active_action("set_door"));

  const DeviceMeta* hotplate = cfg.find_device(ids::kHotplate);
  ASSERT_NE(hotplate, nullptr);
  const ThresholdSpec* threshold = hotplate->threshold_for("set_temperature");
  ASSERT_NE(threshold, nullptr);
  EXPECT_DOUBLE_EQ(threshold->max, 150.0);  // RABIT threshold, below the 340 C firmware limit
  EXPECT_EQ(hotplate->threshold_for("stop"), nullptr);

  const DeviceMeta* vial = cfg.find_device(ids::kVial1);
  ASSERT_NE(vial, nullptr);
  EXPECT_DOUBLE_EQ(vial->capacity_mg, 10.0);
  EXPECT_DOUBLE_EQ(vial->capacity_ml, 15.0);
  EXPECT_EQ(vial->initial_state.at("location").as_string(), "grid.NW");
}

TEST(Config, TimeMultiplexOnlyWhenModifiedAndMultiArm) {
  EXPECT_FALSE(testbed_config(Variant::Initial).time_multiplex);
  EXPECT_TRUE(testbed_config(Variant::Modified).time_multiplex);
  EXPECT_TRUE(testbed_config(Variant::ModifiedWithSim).time_multiplex);

  sim::LabBackend production(sim::production_profile());
  sim::build_hein_production_deck(production);
  EXPECT_FALSE(config_from_backend(production, Variant::Modified).time_multiplex);
}

TEST(Config, SiteNearRespectsTolerance) {
  EngineConfig cfg = testbed_config();
  const SiteMeta* nw = cfg.find_site("grid.NW");
  ASSERT_NE(nw, nullptr);
  EXPECT_EQ(cfg.site_near(nw->lab_position + geom::Vec3(0.02, 0, 0)), nw);
  EXPECT_EQ(cfg.site_near(nw->lab_position + geom::Vec3(0.2, 0, 0)), nullptr);
}

TEST(Config, JsonRoundTrip) {
  EngineConfig cfg = testbed_config(Variant::ModifiedWithSim);
  cfg.soft_walls.push_back(
      SoftWallSpec{ids::kNed2, geom::Aabb(geom::Vec3(-1, -1, 0), geom::Vec3(0, 1, 1))});
  json::Value doc = config_to_json(cfg);
  EngineConfig round = config_from_json(doc);

  EXPECT_EQ(round.variant, cfg.variant);
  EXPECT_EQ(round.time_multiplex, cfg.time_multiplex);
  EXPECT_EQ(round.devices.size(), cfg.devices.size());
  EXPECT_EQ(round.sites.size(), cfg.sites.size());
  EXPECT_EQ(round.static_obstacles.size(), cfg.static_obstacles.size());
  ASSERT_EQ(round.soft_walls.size(), 1u);
  EXPECT_EQ(round.soft_walls[0].arm_id, ids::kNed2);

  const DeviceMeta* arm = round.find_device(ids::kViperX);
  const DeviceMeta* orig = cfg.find_device(ids::kViperX);
  ASSERT_NE(arm, nullptr);
  EXPECT_TRUE(arm->is_arm);
  EXPECT_TRUE(geom::approx_equal(arm->home_position_lab, orig->home_position_lab, 1e-9));
  EXPECT_TRUE(geom::approx_equal(arm->base.apply(geom::Vec3(0.1, 0.2, 0.3)),
                                 orig->base.apply(geom::Vec3(0.1, 0.2, 0.3)), 1e-9));
  ASSERT_TRUE(arm->sleep_box.has_value());
  EXPECT_TRUE(geom::approx_equal(*arm->sleep_box, *orig->sleep_box, 1e-9));

  const DeviceMeta* hotplate = round.find_device(ids::kHotplate);
  ASSERT_NE(hotplate, nullptr);
  ASSERT_NE(hotplate->threshold_for("set_temperature"), nullptr);
  EXPECT_DOUBLE_EQ(hotplate->threshold_for("set_temperature")->max, 150.0);
}

TEST(Config, SchemaAcceptsGeneratedConfig) {
  json::Value doc = config_to_json(testbed_config());
  EXPECT_TRUE(config_schema().validate(doc).empty());
}

TEST(Config, SchemaCatchesPilotStudySignError) {
  // §V-A: participant P "accidentally entered a negative sign instead of a
  // positive sign in a location".
  json::Value doc = config_to_json(testbed_config());
  json::Value& sites = doc.as_object()["sites"];
  json::Value& z = sites.as_array()[0].as_object()["position"].as_object()["z"];
  z = json::Value(-z.as_double());
  auto issues = config_schema().validate(doc);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].path.find("/sites/0/position/z"), std::string::npos);
  EXPECT_THROW(config_from_json(doc), std::runtime_error);
}

TEST(Config, SchemaCatchesMissingFields) {
  json::Value doc = config_to_json(testbed_config());
  doc.as_object()["devices"].as_array()[0].as_object().erase("category");
  EXPECT_FALSE(config_schema().validate(doc).empty());
  EXPECT_THROW(config_from_json(doc), std::runtime_error);
}

TEST(Config, SchemaCatchesWrongTypes) {
  json::Value doc = config_to_json(testbed_config());
  doc.as_object()["devices"].as_array()[0].as_object()["id"] = json::Value(42);
  EXPECT_FALSE(config_schema().validate(doc).empty());
}

TEST(Config, FromJsonRejectsBadVariant) {
  json::Value doc = config_to_json(testbed_config());
  doc.as_object()["variant"] = std::string("v99");
  EXPECT_THROW(config_from_json(doc), std::runtime_error);
}

TEST(Config, JsonSyntaxErrorHasLocation) {
  // The §V-A pilot study's JSON syntax errors surface with line/column.
  std::string text = json::serialize_pretty(config_to_json(testbed_config()));
  text.insert(text.find("\"devices\""), ",,");
  try {
    static_cast<void>(json::parse(text));
    FAIL() << "expected ParseError";
  } catch (const json::ParseError& e) {
    EXPECT_GT(e.line(), 0);
  }
}

TEST(Config, VariantNames) {
  EXPECT_EQ(to_string(Variant::Initial), "initial");
  EXPECT_EQ(to_string(Variant::Modified), "modified");
  EXPECT_EQ(to_string(Variant::ModifiedWithSim), "modified+sim");
}

}  // namespace
}  // namespace rabit::core
