// Rulebase tests: one violating and one conforming scenario per rule of
// Tables III and IV, plus the §IV multiplexing preconditions.
#include <gtest/gtest.h>

#include "core/rules.hpp"
#include "devices/robot_arm.hpp"
#include "sim/deck.hpp"

namespace rabit::core {
namespace {

using dev::Command;
using geom::Vec3;
namespace ids = sim::deck_ids;

Command make_cmd(std::string device, std::string action, json::Object args = {}) {
  Command c;
  c.device = std::move(device);
  c.action = std::move(action);
  c.args = json::Value(std::move(args));
  return c;
}

json::Object door(const char* state) {
  json::Object o;
  o["state"] = std::string(state);
  return o;
}

class RulesTest : public ::testing::Test {
 protected:
  explicit RulesTest(Variant variant = Variant::Modified)
      : backend(sim::testbed_profile()) {
    sim::build_hein_testbed_deck(backend);
    config = config_from_backend(backend, variant);
    tracker = std::make_unique<StateTracker>(&config);
    tracker->initialize(backend.registry().fetch_observed_state());
  }

  Vec3 site_local(const char* arm, const char* site) {
    return backend.arm(arm).to_local(backend.find_site(site)->lab_position);
  }

  Command move(const char* arm, const Vec3& local) {
    json::Object args;
    args["position"] = json::Array{local.x, local.y, local.z};
    return make_cmd(arm, "move_to", std::move(args));
  }

  std::optional<RuleHit> check(const Command& cmd) {
    return check_preconditions(config, *tracker, cmd);
  }

  /// Applies the command's postconditions (as the engine would before
  /// executing it).
  void apply(const Command& cmd) { tracker->apply_postconditions(cmd); }

  sim::LabBackend backend;
  EngineConfig config;
  std::unique_ptr<StateTracker> tracker;
};

// ---- Table III, rule by rule -------------------------------------------------

TEST_F(RulesTest, G1_RobotCannotEnterClosedDoor) {
  auto hit = check(move(ids::kViperX, site_local(ids::kViperX, "dosing_device")));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rule, "G1");
  // With the door believed open, entry is allowed.
  apply(make_cmd(ids::kDosingDevice, "set_door", door("open")));
  EXPECT_FALSE(check(move(ids::kViperX, site_local(ids::kViperX, "dosing_device"))).has_value());
}

TEST_F(RulesTest, G2_DoorCannotCloseOnArmInside) {
  apply(make_cmd(ids::kDosingDevice, "set_door", door("open")));
  apply(move(ids::kViperX, site_local(ids::kViperX, "dosing_device")));
  auto hit = check(make_cmd(ids::kDosingDevice, "set_door", door("closed")));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rule, "G2");
  // After the arm leaves, closing is fine.
  apply(move(ids::kViperX, site_local(ids::kViperX, "dosing_device") + Vec3(0, 0, 0.25)));
  EXPECT_FALSE(check(make_cmd(ids::kDosingDevice, "set_door", door("closed"))).has_value());
}

TEST_F(RulesTest, G3_TargetInsideObjectRejected) {
  // The hotplate body is an occupied location.
  auto hit = check(move(ids::kViperX, Vec3(-0.35, 0.25, 0.06)));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rule, "G3");
  // Free space above it is fine.
  EXPECT_FALSE(check(move(ids::kViperX, Vec3(-0.35, 0.25, 0.30))).has_value());
}

TEST_F(RulesTest, G3_PlacementOntoOccupiedSiteRejected) {
  apply(make_cmd(ids::kViperX, "pick_object", [] {
    json::Object o;
    o["site"] = std::string("grid.NW");
    return o;
  }()));
  auto hit = check(make_cmd(ids::kViperX, "place_object", [] {
    json::Object o;
    o["site"] = std::string("grid.SE");  // vial_2's slot
    return o;
  }()));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rule, "G3");
  EXPECT_FALSE(check(make_cmd(ids::kViperX, "place_object", [] {
                 json::Object o;
                 o["site"] = std::string("grid.SW");
                 return o;
               }()))
                   .has_value());
}

TEST_F(RulesTest, G4_PickOnlyWhenEmptyHanded) {
  apply(make_cmd(ids::kViperX, "pick_object", [] {
    json::Object o;
    o["site"] = std::string("grid.NW");
    return o;
  }()));
  auto hit = check(make_cmd(ids::kViperX, "pick_object", [] {
    json::Object o;
    o["site"] = std::string("grid.SE");
    return o;
  }()));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rule, "G4");
}

TEST_F(RulesTest, G4_GripperGrabWhileHolding) {
  apply(move(ids::kViperX, site_local(ids::kViperX, "grid.NW")));
  apply(make_cmd(ids::kViperX, "close_gripper"));
  ASSERT_EQ(tracker->arm_holding(ids::kViperX), ids::kVial1);
  apply(move(ids::kViperX, site_local(ids::kViperX, "grid.SE")));
  auto hit = check(make_cmd(ids::kViperX, "close_gripper"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rule, "G4");
}

TEST_F(RulesTest, G5_ActionDeviceNeedsContainer) {
  auto hit = check(make_cmd(ids::kThermoshaker, "shake", [] {
    json::Object o;
    o["rpm"] = 500.0;
    return o;
  }()));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rule, "G5");
}

TEST_F(RulesTest, G6_ContainerMustNotBeEmpty) {
  // Seat the (empty) vial_1 on the thermoshaker symbolically.
  tracker->seat("thermoshaker", ids::kVial1);
  auto hit = check(make_cmd(ids::kThermoshaker, "shake", [] {
    json::Object o;
    o["rpm"] = 500.0;
    return o;
  }()));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rule, "G6");
  // With contents it passes.
  tracker->set_var(ids::kVial1, "solidMg", json::Value(5.0));
  EXPECT_FALSE(check(make_cmd(ids::kThermoshaker, "shake", [] {
                 json::Object o;
                 o["rpm"] = 500.0;
                 return o;
               }()))
                   .has_value());
}

TEST_F(RulesTest, G7_NoTransferThroughStopper) {
  tracker->seat("dosing_device", ids::kVial1);
  tracker->set_var(ids::kVial1, "hasStopper", json::Value(1));
  auto hit = check(make_cmd(ids::kDosingDevice, "run_action", [] {
    json::Object o;
    o["quantity"] = 5.0;
    return o;
  }()));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rule, "G7");
}

TEST_F(RulesTest, G7_PumpBlockedByStopper) {
  apply(make_cmd(ids::kSyringePump, "draw_solvent", [] {
    json::Object o;
    o["volume"] = 5.0;
    return o;
  }()));
  tracker->set_var(ids::kVial1, "hasStopper", json::Value(1));
  tracker->set_var(ids::kVial1, "solidMg", json::Value(5.0));
  auto hit = check(make_cmd(ids::kSyringePump, "dose_solvent", [] {
    json::Object o;
    o["volume"] = 2.0;
    o["target"] = std::string(ids::kVial1);
    return o;
  }()));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rule, "G7");
}

TEST_F(RulesTest, G8_DoseMustFitReceivingContainer) {
  tracker->seat("dosing_device", ids::kVial1);
  auto hit = check(make_cmd(ids::kDosingDevice, "run_action", [] {
    json::Object o;
    o["quantity"] = 50.0;  // capacity is 10 mg
    return o;
  }()));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rule, "G8");
  // Exactly filling the vial passes.
  EXPECT_FALSE(check(make_cmd(ids::kDosingDevice, "run_action", [] {
                 json::Object o;
                 o["quantity"] = 10.0;
                 return o;
               }()))
                   .has_value());
}

TEST_F(RulesTest, G8_PumpMustBeFilledFirst) {
  tracker->set_var(ids::kVial1, "solidMg", json::Value(5.0));
  auto hit = check(make_cmd(ids::kSyringePump, "dose_solvent", [] {
    json::Object o;
    o["volume"] = 2.0;
    o["target"] = std::string(ids::kVial1);
    return o;
  }()));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rule, "G8");  // nothing drawn yet
}

TEST_F(RulesTest, G9_DosingNeedsClosedDoor) {
  tracker->seat("dosing_device", ids::kVial1);
  apply(make_cmd(ids::kDosingDevice, "set_door", door("open")));
  auto hit = check(make_cmd(ids::kDosingDevice, "run_action", [] {
    json::Object o;
    o["quantity"] = 5.0;
    return o;
  }()));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rule, "G9");
}

TEST_F(RulesTest, G10_DoorStaysClosedWhileRunning) {
  tracker->seat("dosing_device", ids::kVial1);
  apply(make_cmd(ids::kDosingDevice, "run_action", [] {
    json::Object o;
    o["quantity"] = 5.0;
    return o;
  }()));
  auto hit = check(make_cmd(ids::kDosingDevice, "set_door", door("open")));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rule, "G10");
  apply(make_cmd(ids::kDosingDevice, "stop_action"));
  EXPECT_FALSE(check(make_cmd(ids::kDosingDevice, "set_door", door("open"))).has_value());
}

TEST_F(RulesTest, G11_ThresholdsEnforced) {
  auto hit = check(make_cmd(ids::kHotplate, "set_temperature", [] {
    json::Object o;
    o["celsius"] = 200.0;  // RABIT threshold 150, firmware limit 340
    return o;
  }()));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rule, "G11");
  EXPECT_FALSE(check(make_cmd(ids::kHotplate, "set_temperature", [] {
                 json::Object o;
                 o["celsius"] = 140.0;
                 return o;
               }()))
                   .has_value());
  // Also on the centrifuge rpm.
  auto spin = check(make_cmd(ids::kCentrifuge, "start_spin", [] {
    json::Object o;
    o["rpm"] = 9000.0;
    return o;
  }()));
  ASSERT_TRUE(spin.has_value());
  EXPECT_EQ(spin->rule, "G11");
}

// ---- Table IV custom rules ---------------------------------------------------

TEST_F(RulesTest, C1_LiquidOnlyAfterSolid) {
  apply(make_cmd(ids::kSyringePump, "draw_solvent", [] {
    json::Object o;
    o["volume"] = 5.0;
    return o;
  }()));
  auto hit = check(make_cmd(ids::kSyringePump, "dose_solvent", [] {
    json::Object o;
    o["volume"] = 2.0;
    o["target"] = std::string(ids::kVial1);
    return o;
  }()));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rule, "C1");
  tracker->set_var(ids::kVial1, "solidMg", json::Value(5.0));
  EXPECT_FALSE(check(make_cmd(ids::kSyringePump, "dose_solvent", [] {
                 json::Object o;
                 o["volume"] = 2.0;
                 o["target"] = std::string(ids::kVial1);
                 return o;
               }()))
                   .has_value());
}

class CentrifugePlacement : public RulesTest {
 protected:
  CentrifugePlacement() {
    // Hold a fully prepared vial and open the centrifuge.
    apply(make_cmd(ids::kViperX, "pick_object", [] {
      json::Object o;
      o["site"] = std::string("grid.NW");
      return o;
    }()));
    tracker->set_var(ids::kVial1, "solidMg", json::Value(5.0));
    tracker->set_var(ids::kVial1, "liquidMl", json::Value(2.0));
    tracker->set_var(ids::kVial1, "hasStopper", json::Value(1));
    apply(make_cmd(ids::kCentrifuge, "set_door", door("open")));
  }

  Command place_in_centrifuge() {
    json::Object o;
    o["site"] = std::string("centrifuge");
    return make_cmd(ids::kViperX, "place_object", std::move(o));
  }
};

TEST_F(CentrifugePlacement, FullyPreparedVialPasses) {
  EXPECT_FALSE(check(place_in_centrifuge()).has_value());
}

TEST_F(CentrifugePlacement, C2_NeedsSolidAndLiquid) {
  tracker->set_var(ids::kVial1, "liquidMl", json::Value(0.0));
  auto hit = check(place_in_centrifuge());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rule, "C2");
}

TEST_F(CentrifugePlacement, C3_RedDotMustFaceNorth) {
  apply(make_cmd(ids::kCentrifuge, "rotate_platter", [] {
    json::Object o;
    o["orientation"] = std::string("E");
    return o;
  }()));
  auto hit = check(place_in_centrifuge());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rule, "C3");
}

TEST_F(CentrifugePlacement, C4_StopperRequired) {
  tracker->set_var(ids::kVial1, "hasStopper", json::Value(0));
  auto hit = check(place_in_centrifuge());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rule, "C4");
}

TEST_F(CentrifugePlacement, CustomRulesCanBeDisabled) {
  config.hein_custom_rules = false;
  tracker->set_var(ids::kVial1, "hasStopper", json::Value(0));
  EXPECT_FALSE(check(place_in_centrifuge()).has_value());
}

// ---- multiplexing preconditions (§IV category 2) -----------------------------

TEST_F(RulesTest, M1_TimeMultiplexRequiresOthersAsleep) {
  // Wake ViperX, then try to move Ned2.
  apply(make_cmd(ids::kViperX, "go_home"));
  auto hit = check(move(ids::kNed2, Vec3(0.2, 0.0, 0.2)));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rule, "M1");
  // Put ViperX to sleep and retry.
  apply(make_cmd(ids::kViperX, "go_sleep"));
  EXPECT_FALSE(check(move(ids::kNed2, Vec3(0.2, 0.0, 0.2))).has_value());
}

TEST_F(RulesTest, M2_SoftWallBlocksTargets) {
  config.soft_walls.push_back(SoftWallSpec{
      ids::kViperX, geom::Aabb(Vec3(0.5, -1.0, 0.0), Vec3(1.0, 1.0, 1.0))});
  auto hit = check(move(ids::kViperX, backend.arm(ids::kViperX).to_local(Vec3(0.6, 0.0, 0.3))));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rule, "M2");
  // The wall only binds the arm it was declared for.
  EXPECT_FALSE(
      check(move(ids::kNed2, backend.arm(ids::kNed2).to_local(Vec3(0.62, 0.05, 0.3))))
          .has_value());
}

TEST_F(RulesTest, ParkedArmCuboidBlocksTargets) {
  // Ned2 is asleep; its configured parked cuboid occupies space.
  const DeviceMeta* ned2 = config.find_device(ids::kNed2);
  ASSERT_TRUE(ned2->sleep_box.has_value());
  Vec3 inside = ned2->sleep_box->center();
  auto hit = check(move(ids::kViperX, backend.arm(ids::kViperX).to_local(inside)));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rule, "G3");
  EXPECT_NE(hit->message.find(ids::kNed2), std::string::npos);
}

TEST_F(RulesTest, UnknownDeviceIsInvalid) {
  auto hit = check(make_cmd("ghost", "anything"));
  ASSERT_TRUE(hit.has_value());
}

// ---- variant differences -----------------------------------------------------

class InitialVariantRules : public RulesTest {
 protected:
  InitialVariantRules() : RulesTest(Variant::Initial) {}
};

TEST_F(InitialVariantRules, NoStaticObstaclesInWorld) {
  // Target below the platform surface: V1 does not model the platform.
  auto below = move(ids::kViperX, Vec3(0.2, 0.2, -0.01));
  EXPECT_FALSE(check(below).has_value());
  // But device cuboids are known even to V1.
  auto hit = check(move(ids::kViperX, Vec3(-0.35, 0.25, 0.06)));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rule, "G3");
}

TEST_F(InitialVariantRules, NoHeldObjectInflation) {
  apply(make_cmd(ids::kViperX, "pick_object", [] {
    json::Object o;
    o["site"] = std::string("grid.NW");
    return o;
  }()));
  auto motion = analyze_motion(config, *tracker, move(ids::kViperX, Vec3(0.2, 0.0, 0.2)));
  ASSERT_TRUE(motion.has_value());
  EXPECT_DOUBLE_EQ(motion->held_clearance, 0.0);
}

TEST_F(RulesTest, ModifiedVariantInflatesHeldObject) {
  apply(make_cmd(ids::kViperX, "pick_object", [] {
    json::Object o;
    o["site"] = std::string("grid.NW");
    return o;
  }()));
  auto motion = analyze_motion(config, *tracker, move(ids::kViperX, Vec3(0.2, 0.0, 0.2)));
  ASSERT_TRUE(motion.has_value());
  EXPECT_GT(motion->held_clearance, 0.0);
}

// ---- motion analysis ----------------------------------------------------------

TEST_F(RulesTest, AnalyzeMotionWaypoints) {
  auto direct = analyze_motion(config, *tracker, move(ids::kViperX, Vec3(0.2, 0.0, 0.2)));
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(direct->waypoints.size(), 2u);

  auto composite = analyze_motion(config, *tracker, make_cmd(ids::kViperX, "pick_object", [] {
                                    json::Object o;
                                    o["site"] = std::string("grid.NW");
                                    return o;
                                  }()));
  ASSERT_TRUE(composite.has_value());
  EXPECT_EQ(composite->waypoints.size(), 4u);  // lift, traverse, descend
  // The arm's own name is always ignorable (its parked cuboid).
  EXPECT_NE(std::find(composite->ignores.begin(), composite->ignores.end(),
                      std::string(ids::kViperX)),
            composite->ignores.end());
}

TEST_F(RulesTest, AnalyzeMotionNonMotionCommands) {
  EXPECT_FALSE(analyze_motion(config, *tracker, make_cmd(ids::kViperX, "open_gripper"))
                   .has_value());
  EXPECT_FALSE(analyze_motion(config, *tracker, make_cmd(ids::kDosingDevice, "stop_action"))
                   .has_value());
}

TEST(TransitionTable, CoversAllCategoriesAndRules) {
  auto table = transition_table();
  EXPECT_GE(table.size(), 12u);
  bool has_pick = false;
  std::set<dev::DeviceCategory> categories;
  for (const TransitionEntry& e : table) {
    categories.insert(e.category);
    if (e.action == "pick_object") {
      has_pick = true;
      EXPECT_NE(e.preconditions.find("robotArmHolding = none"), std::string::npos);
      EXPECT_NE(e.postconditions.find("robotArmHolding = object"), std::string::npos);
    }
  }
  EXPECT_TRUE(has_pick);
  EXPECT_EQ(categories.size(), 4u);  // all four device types appear
}

}  // namespace
}  // namespace rabit::core
