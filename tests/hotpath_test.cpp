// Hot-path equivalence and invalidation: the indexed config lookups, the
// memoized rule world, the broad-phase grid, and the collision-verdict cache
// are pure accelerations — every test here pins the invariant that they can
// change the cost of an answer but never the answer, and that every mutation
// of the underlying config/world/state invalidates what it must.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "bugs/bugs.hpp"
#include "core/engine.hpp"
#include "core/rules.hpp"
#include "sim/deck.hpp"
#include "sim/extended_sim.hpp"

namespace rabit::core {
namespace {

using dev::Command;
using geom::Aabb;
using geom::Vec3;
namespace ids = sim::deck_ids;

Command make_cmd(std::string device, std::string action, json::Object args = {}) {
  Command c;
  c.device = std::move(device);
  c.action = std::move(action);
  c.args = json::Value(std::move(args));
  return c;
}

constexpr HotPathConfig kAllOff{/*index_lookups=*/false, /*memoize_rule_world=*/false,
                                /*broad_phase=*/false, /*verdict_cache=*/false};

// ---------------------------------------------------------------------------
// Config lookup index
// ---------------------------------------------------------------------------

class ConfigIndexTest : public ::testing::Test {
 protected:
  ConfigIndexTest() : backend(sim::testbed_profile()) {
    sim::build_hein_testbed_deck(backend);
    config = config_from_backend(backend, Variant::Modified);
    config.warm_index();
  }

  void set_indexed(EngineConfig& c, bool on) {
    c.use_indexed_lookup = on;
    for (DeviceMeta& d : c.devices) d.use_indexed_lookup = on;
  }

  sim::LabBackend backend;
  EngineConfig config;
};

TEST_F(ConfigIndexTest, IndexedAndLinearLookupsAgree) {
  EngineConfig linear = config;
  set_indexed(linear, false);

  for (const DeviceMeta& d : linear.devices) {
    const DeviceMeta* via_index = config.find_device(d.id);
    ASSERT_NE(via_index, nullptr) << d.id;
    EXPECT_EQ(via_index->id, d.id);

    const DeviceMeta& plain = *linear.find_device(d.id);
    for (const auto& [alias, canonical] : d.action_aliases) {
      EXPECT_EQ(via_index->canonical_action(alias), plain.canonical_action(alias));
    }
    for (const ThresholdSpec& t : d.thresholds) {
      const ThresholdSpec* a = via_index->threshold_for(t.action);
      const ThresholdSpec* b = plain.threshold_for(t.action);
      ASSERT_NE(a, nullptr);
      ASSERT_NE(b, nullptr);
      EXPECT_EQ(a->max, b->max);
    }
    for (const std::string& action : d.active_actions) {
      EXPECT_EQ(via_index->is_active_action(action), plain.is_active_action(action));
    }
    // Unknown names answer identically too.
    EXPECT_EQ(via_index->canonical_action("no_such_action"),
              plain.canonical_action("no_such_action"));
    EXPECT_EQ(via_index->threshold_for("no_such_action"), nullptr);
    EXPECT_FALSE(via_index->is_active_action("no_such_action"));
  }
  for (const SiteMeta& s : linear.sites) {
    const SiteMeta* via_index = config.find_site(s.name);
    ASSERT_NE(via_index, nullptr) << s.name;
    EXPECT_EQ(via_index->name, s.name);
  }
  EXPECT_EQ(config.find_device("no_such_device"), nullptr);
  EXPECT_EQ(config.find_site("no_such_site"), nullptr);
}

TEST_F(ConfigIndexTest, IndexSurvivesVectorGrowth) {
  ASSERT_NE(config.find_device(ids::kViperX), nullptr);

  DeviceMeta late;
  late.id = "late_device";
  config.devices.push_back(late);  // likely reallocates the backing vector
  const DeviceMeta* found = config.find_device("late_device");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found, &config.devices.back());
  // The pre-existing entries still resolve after the reallocation.
  EXPECT_NE(config.find_device(ids::kViperX), nullptr);

  SiteMeta site;
  site.name = "late_site";
  config.sites.push_back(site);
  EXPECT_EQ(config.find_site("late_site"), &config.sites.back());
}

TEST_F(ConfigIndexTest, IndexSurvivesInPlaceRename) {
  std::string old_id = config.devices.front().id;
  ASSERT_NE(config.find_device(old_id), nullptr);

  // In-place id edit: vector data pointer and size are unchanged, so only
  // the verify-on-hit / linear-fallback protocol can keep answers right.
  config.devices.front().id = "renamed_device";
  EXPECT_EQ(config.find_device("renamed_device"), &config.devices.front());
  EXPECT_EQ(config.find_device(old_id), nullptr);
}

// ---------------------------------------------------------------------------
// Memoized rule world
// ---------------------------------------------------------------------------

TEST(RuleWorldMemo, RebuildsOnlyWhenOtherArmsMove) {
  sim::LabBackend backend(sim::testbed_profile());
  sim::build_hein_testbed_deck(backend);
  EngineConfig config = config_from_backend(backend, Variant::Modified);
  StateTracker tracker(&config);
  tracker.initialize(backend.registry().fetch_observed_state());

  RuleWorldCache cache;
  ASSERT_EQ(tracker.arm_pose(ids::kNed2), "sleep");
  const RuleWorldCache::Entry& first = cache.world_for(config, tracker, ids::kViperX);
  EXPECT_EQ(cache.rebuilds(), 1u);
  // Ned2 is asleep, so its parked cuboid is part of ViperX's world.
  EXPECT_NE(first.world.find_box(ids::kNed2), nullptr);

  // Repeat and own-pose churn: both served from the memo.
  (void)cache.world_for(config, tracker, ids::kViperX);
  EXPECT_EQ(cache.rebuilds(), 1u);
  tracker.set_var(ids::kViperX, "pose", "custom");
  (void)cache.world_for(config, tracker, ids::kViperX);
  EXPECT_EQ(cache.rebuilds(), 1u);

  // Another arm waking up must invalidate: its parked box disappears.
  tracker.set_var(ids::kNed2, "pose", "home");
  const RuleWorldCache::Entry& rebuilt = cache.world_for(config, tracker, ids::kViperX);
  EXPECT_EQ(cache.rebuilds(), 2u);
  EXPECT_EQ(rebuilt.world.find_box(ids::kNed2), nullptr);
}

// ---------------------------------------------------------------------------
// Broad phase
// ---------------------------------------------------------------------------

TEST(BroadPhase, PathAndPointVerdictsMatchFullScan) {
  // A deterministic pseudo-random world: clustered boxes plus a ground plane
  // big enough to land on the grid's oversize list.
  sim::WorldModel world;
  std::mt19937 rng(20240806);
  std::uniform_real_distribution<double> pos(-1.0, 2.0);
  std::uniform_real_distribution<double> size(0.02, 0.30);
  for (int i = 0; i < 120; ++i) {
    Vec3 center(pos(rng), pos(rng), pos(rng));
    Vec3 extent(size(rng), size(rng), size(rng));
    world.add_box("box_" + std::to_string(i), Aabb::from_center(center, extent),
                  sim::ObstacleKind::Equipment);
  }
  world.add_box("ground", Aabb(Vec3(-5, -5, -1), Vec3(5, 5, -0.5)), sim::ObstacleKind::Ground);
  sim::BroadPhaseGrid grid(world);
  ASSERT_EQ(grid.box_count(), world.boxes.size());

  sim::PathCheckOptions opts;
  int collisions = 0;
  for (int i = 0; i < 200; ++i) {
    Vec3 start(pos(rng), pos(rng), pos(rng));
    Vec3 goal(pos(rng), pos(rng), pos(rng));
    if (i % 5 == 0) {
      opts.ignore = {"box_" + std::to_string(i % 120)};
    } else {
      opts.ignore.clear();
    }
    auto full = sim::check_path(world, start, goal, 0.05, opts, nullptr);
    auto pruned = sim::check_path(world, start, goal, 0.05, opts, &grid);
    ASSERT_EQ(full.has_value(), pruned.has_value()) << "segment " << i;
    if (full) {
      ++collisions;
      // Byte-identical: same first-hit box at exactly the same sample.
      EXPECT_EQ(full->obstacle, pruned->obstacle);
      EXPECT_EQ(full->position.x, pruned->position.x);
      EXPECT_EQ(full->position.y, pruned->position.y);
      EXPECT_EQ(full->position.z, pruned->position.z);
      EXPECT_EQ(full->via_held_object, pruned->via_held_object);
    }

    auto full_pt = sim::check_point(world, start, 0.05, opts, nullptr);
    auto pruned_pt = sim::check_point(world, start, 0.05, opts, &grid);
    ASSERT_EQ(full_pt.has_value(), pruned_pt.has_value());
    if (full_pt) {
      EXPECT_EQ(full_pt->obstacle, pruned_pt->obstacle);
    }
  }
  // The world is dense enough that the equivalence was actually exercised.
  EXPECT_GT(collisions, 10);
}

TEST(BroadPhase, StaleGridFallsBackToFullScan) {
  sim::WorldModel world;
  world.add_box("a", Aabb(Vec3(0.4, -0.1, -0.1), Vec3(0.6, 0.1, 0.1)),
                sim::ObstacleKind::Equipment);
  sim::BroadPhaseGrid grid(world);
  // Grow the world without rebuilding: the grid's box count no longer
  // matches, so check_path must ignore it and still see the new box.
  world.add_box("b", Aabb(Vec3(-0.6, -0.1, -0.1), Vec3(-0.4, 0.1, 0.1)),
                sim::ObstacleKind::Equipment);
  auto hit = sim::check_path(world, Vec3(0, 0, 0), Vec3(-1, 0, 0), 0.0, {}, &grid);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->obstacle, "b");
}

// ---------------------------------------------------------------------------
// Collision-verdict cache
// ---------------------------------------------------------------------------

class VerdictCacheTest : public ::testing::Test {
 protected:
  VerdictCacheTest() {
    sim::WorldModel world;
    world.add_box("block", Aabb(Vec3(0.45, -0.05, 0.0), Vec3(0.55, 0.05, 0.2)),
                  sim::ObstacleKind::Equipment);
    sim::ExtendedSimulator::Options options;
    options.gui_enabled = false;
    simulator = std::make_unique<sim::ExtendedSimulator>(std::move(world), options);
  }

  std::unique_ptr<sim::ExtendedSimulator> simulator;
  const Vec3 start{0.0, 0.0, 0.1};
  const Vec3 goal{1.0, 0.0, 0.1};
};

TEST_F(VerdictCacheTest, RepeatQueryHitsCache) {
  auto first = simulator->validate_trajectory(start, goal, 0.0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->obstacle, "block");
  EXPECT_EQ(simulator->narrow_phase_runs(), 1u);
  EXPECT_EQ(simulator->verdict_cache_hits(), 0u);

  auto second = simulator->validate_trajectory(start, goal, 0.0);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->obstacle, first->obstacle);
  EXPECT_EQ(simulator->narrow_phase_runs(), 1u);
  EXPECT_EQ(simulator->verdict_cache_hits(), 1u);
}

TEST_F(VerdictCacheTest, AddBoxInvalidates) {
  Vec3 high_goal(1.0, 0.0, 0.5);
  ASSERT_FALSE(simulator->validate_trajectory(start, high_goal, 0.0).has_value());
  ASSERT_EQ(simulator->narrow_phase_runs(), 1u);

  // add_box bumps the world epoch, so the cached clear verdict must not be
  // served: the re-run sees the new obstacle.
  simulator->world().add_box("late", Aabb(Vec3(0.45, -0.05, 0.2), Vec3(0.55, 0.05, 0.6)),
                             sim::ObstacleKind::Equipment);
  auto hit = simulator->validate_trajectory(start, high_goal, 0.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->obstacle, "late");
  EXPECT_EQ(simulator->narrow_phase_runs(), 2u);
}

TEST_F(VerdictCacheTest, ArmSegmentInvalidates) {
  Vec3 high_goal(1.0, 0.0, 0.5);
  ASSERT_FALSE(simulator->validate_trajectory(start, high_goal, 0.0).has_value());

  simulator->world().set_arm_segment(
      "other_arm", geom::Segment{Vec3(0.5, -0.5, 0.4), Vec3(0.5, 0.5, 0.4)}, 0.05);
  auto hit = simulator->validate_trajectory(start, high_goal, 0.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->arm_vs_arm);
  EXPECT_EQ(simulator->narrow_phase_runs(), 2u);
}

TEST_F(VerdictCacheTest, DirectEditNeedsEpochBumpAndIsSeen) {
  ASSERT_TRUE(simulator->validate_trajectory(start, goal, 0.0).has_value());
  // Move the blocking box out of the way by editing the vector directly,
  // then bump the epoch as the WorldModel contract requires.
  simulator->world().boxes[0].box = Aabb(Vec3(5, 5, 5), Vec3(6, 6, 6));
  simulator->world().bump_epoch();
  EXPECT_FALSE(simulator->validate_trajectory(start, goal, 0.0).has_value());
  EXPECT_EQ(simulator->narrow_phase_runs(), 2u);
}

TEST_F(VerdictCacheTest, IgnoreSetsAreDistinctCacheEntries) {
  // The deliberate-entry ignore set is part of the cache key — the door
  // opening (which admits the device into the ignore set) must never be
  // served a verdict cached for the closed-door query, or vice versa.
  std::vector<std::string> ignore_block{"block"};
  ASSERT_TRUE(simulator->validate_trajectory(start, goal, 0.0).has_value());
  EXPECT_FALSE(simulator->validate_trajectory(start, goal, 0.0, ignore_block).has_value());
  auto again = simulator->validate_trajectory(start, goal, 0.0);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->obstacle, "block");
  EXPECT_FALSE(simulator->validate_trajectory(start, goal, 0.0, ignore_block).has_value());
  // Two distinct entries, each hit once on its second query.
  EXPECT_EQ(simulator->narrow_phase_runs(), 2u);
  EXPECT_EQ(simulator->verdict_cache_hits(), 2u);
}

// ---------------------------------------------------------------------------
// Engine-level: the world survives a trajectory alert untouched
// ---------------------------------------------------------------------------

TEST(EngineWorldPreservation, TrajectoryAlertLeavesWorldIntact) {
  sim::LabBackend backend(sim::testbed_profile());
  sim::build_hein_testbed_deck(backend);
  RabitEngine engine(config_from_backend(backend, Variant::ModifiedWithSim));
  engine.initialize(backend.registry().fetch_observed_state());

  sim::WorldModel world = sim::deck_world_model(backend);
  for (const DeviceMeta& m : engine.config().devices) {
    if (m.is_arm && m.sleep_box) {
      world.add_box(m.id, *m.sleep_box, sim::ObstacleKind::ParkedArm);
    }
  }
  sim::ExtendedSimulator simulator(std::move(world));
  simulator.set_arm_state_provider([&backend](std::string_view arm_id) -> std::optional<Vec3> {
    return backend.arm(arm_id).position_lab();
  });
  engine.attach_simulator(&simulator);

  auto snapshot_names = [&] {
    std::vector<std::string> names;
    for (const sim::NamedBox& b : simulator.world().boxes) names.push_back(b.name);
    return names;
  };
  std::vector<std::string> before = snapshot_names();

  auto move = [&](const Vec3& local) {
    json::Object args;
    args["position"] = json::Array{local.x, local.y, local.z};
    return make_cmd(ids::kViperX, "move_to", std::move(args));
  };
  // Wake the arm west of the grid, then sweep across it: the straight path
  // collides with the grid box and the trajectory check alerts.
  Command to_west = move(Vec3(0.18, 0.30, 0.03));
  ASSERT_FALSE(engine.check_command(to_west).has_value());
  engine.apply_expected(to_west);
  backend.execute(to_west);
  auto alert = engine.check_command(move(Vec3(0.48, 0.30, 0.03)));
  ASSERT_TRUE(alert.has_value());
  EXPECT_EQ(alert->kind, AlertKind::InvalidTrajectory);

  // The seed engine erased and re-inserted deliberate-entry boxes around the
  // trajectory query; the read-only ignore filter must leave the world
  // byte-identical after an alert.
  EXPECT_EQ(snapshot_names(), before);
}

// ---------------------------------------------------------------------------
// kVolumeEpsilon boundary
// ---------------------------------------------------------------------------

TEST(VolumeEpsilon, SharedConstantGovernsPumpBoundaries) {
  EXPECT_DOUBLE_EQ(kVolumeEpsilon, 1e-9);

  sim::LabBackend backend(sim::testbed_profile());
  sim::build_hein_testbed_deck(backend);
  EngineConfig config = config_from_backend(backend, Variant::Modified);
  StateTracker tracker(&config);
  tracker.initialize(backend.registry().fetch_observed_state());
  tracker.set_var(ids::kVial1, "solidMg", 5.0);  // C1: solid before liquid
  tracker.set_var(ids::kVial1, "liquidMl", 0.0);
  tracker.set_var(ids::kSyringePump, "heldMl", 10.0);

  auto dose = [&](double volume) {
    json::Object args;
    args["volume"] = volume;
    args["target"] = std::string(ids::kVial1);
    return check_preconditions(config, tracker, make_cmd(ids::kSyringePump, "dose_solvent",
                                                         std::move(args)));
  };

  // A float-noise overdraw within the epsilon passes; a real overdraw trips
  // G8 — the pump check now shares kVolumeEpsilon instead of its own 1e-9.
  EXPECT_FALSE(dose(10.0).has_value());
  EXPECT_FALSE(dose(10.0 + kVolumeEpsilon / 2).has_value());
  auto overdraw = dose(10.001);
  ASSERT_TRUE(overdraw.has_value());
  EXPECT_EQ(overdraw->rule, "G8");

  // Receiving-capacity boundary (vial capacity 15 mL): exactly full is
  // allowed, epsilon-significant overflow is not.
  tracker.set_var(ids::kSyringePump, "heldMl", 20.0);
  EXPECT_FALSE(dose(15.0).has_value());
  auto overflow = dose(15.0 + 1e-6);
  ASSERT_TRUE(overflow.has_value());
  EXPECT_EQ(overflow->rule, "G8");
}

// ---------------------------------------------------------------------------
// Catalogue verdict parity
// ---------------------------------------------------------------------------

TEST(HotPathParity, CatalogueVerdictsUnchangedAtV3) {
  for (const bugs::BugSpec& bug : bugs::bug_catalogue()) {
    sim::LabBackend staging(sim::testbed_profile());
    sim::build_hein_testbed_deck(staging);
    std::vector<Command> commands = bug.build(staging);

    bugs::BugOutcome off = bugs::evaluate_stream(commands, Variant::ModifiedWithSim,
                                                 trace::Supervisor::Options{}, kAllOff);
    bugs::BugOutcome on = bugs::evaluate_stream(commands, Variant::ModifiedWithSim,
                                                trace::Supervisor::Options{}, HotPathConfig{});
    EXPECT_EQ(off.detected, on.detected) << bug.id;
    EXPECT_EQ(off.alerted, on.alerted) << bug.id;
    EXPECT_EQ(off.alert_rule, on.alert_rule) << bug.id;
    EXPECT_EQ(off.damaged, on.damaged) << bug.id;
    EXPECT_EQ(off.report.first_alert_step, on.report.first_alert_step) << bug.id;
  }
}

}  // namespace
}  // namespace rabit::core
