// Non-cuboid solids (the §V-C shapes extension).
#include <gtest/gtest.h>

#include <random>

#include "core/config.hpp"
#include "core/rules.hpp"
#include "devices/stations.hpp"
#include "geometry/solid.hpp"
#include "sim/deck.hpp"
#include "sim/world.hpp"

namespace rabit::geom {
namespace {

TEST(Solid, BoxBehavesLikeAabb) {
  Aabb b(Vec3(0, 0, 0), Vec3(1, 1, 1));
  Solid s = Solid::box(b);
  EXPECT_EQ(s.kind(), Solid::Kind::Box);
  EXPECT_TRUE(s.contains(Vec3(0.5, 0.5, 0.5)));
  EXPECT_FALSE(s.contains(Vec3(1.5, 0.5, 0.5)));
  EXPECT_TRUE(s.intersects_box(Aabb(Vec3(0.5, 0.5, 0.5), Vec3(2, 2, 2))));
  EXPECT_FALSE(s.intersects_box(Aabb(Vec3(2, 2, 2), Vec3(3, 3, 3))));
  EXPECT_TRUE(approx_equal(s.bounding_box(), b));
}

TEST(Solid, CylinderContainment) {
  Solid c = Solid::vertical_cylinder(Vec3(0, 0, 0), 1.0, 2.0);
  EXPECT_EQ(c.kind(), Solid::Kind::Cylinder);
  EXPECT_TRUE(c.contains(Vec3(0, 0, 1)));
  EXPECT_TRUE(c.contains(Vec3(0.99, 0, 1)));
  EXPECT_FALSE(c.contains(Vec3(0.9, 0.9, 1)));  // corner of the bounding box
  EXPECT_FALSE(c.contains(Vec3(0, 0, 2.1)));
  EXPECT_FALSE(c.contains(Vec3(0, 0, -0.1)));
  EXPECT_TRUE(approx_equal(c.bounding_box(), Aabb(Vec3(-1, -1, 0), Vec3(1, 1, 2))));
  EXPECT_THROW(Solid::vertical_cylinder(Vec3(), 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Solid::vertical_cylinder(Vec3(), 1.0, -1.0), std::invalid_argument);
}

TEST(Solid, CylinderBoxIntersection) {
  Solid c = Solid::vertical_cylinder(Vec3(0, 0, 0), 1.0, 2.0);
  // A box at the bounding-box corner misses the round body.
  EXPECT_FALSE(c.intersects_box(Aabb(Vec3(0.8, 0.8, 0.5), Vec3(1.2, 1.2, 1.0))));
  // A box touching the side hits it.
  EXPECT_TRUE(c.intersects_box(Aabb(Vec3(0.9, -0.1, 0.5), Vec3(1.5, 0.1, 1.0))));
  // Above and below miss.
  EXPECT_FALSE(c.intersects_box(Aabb(Vec3(-0.2, -0.2, 2.1), Vec3(0.2, 0.2, 3.0))));
  EXPECT_FALSE(c.intersects_box(Aabb(Vec3(-0.2, -0.2, -1.0), Vec3(0.2, 0.2, -0.1))));
}

TEST(Solid, HemisphereContainment) {
  Solid h = Solid::hemisphere(Vec3(0, 0, 1), 1.0);
  EXPECT_EQ(h.kind(), Solid::Kind::Hemisphere);
  EXPECT_TRUE(h.contains(Vec3(0, 0, 1.5)));
  EXPECT_TRUE(h.contains(Vec3(0, 0, 2.0)));    // apex
  EXPECT_FALSE(h.contains(Vec3(0, 0, 0.5)));   // below the base plane
  EXPECT_FALSE(h.contains(Vec3(0.9, 0.9, 1.2)));  // bounding-box corner
  EXPECT_TRUE(approx_equal(h.bounding_box(), Aabb(Vec3(-1, -1, 1), Vec3(1, 1, 2))));
}

TEST(Solid, HemisphereBoxIntersection) {
  Solid h = Solid::hemisphere(Vec3(0, 0, 0), 1.0);
  // A box over the dome's top corner region misses the curved surface...
  EXPECT_FALSE(h.intersects_box(Aabb(Vec3(0.75, 0.75, 0.75), Vec3(1.2, 1.2, 1.2))));
  // ...but one through the dome center hits.
  EXPECT_TRUE(h.intersects_box(Aabb(Vec3(-0.1, -0.1, 0.5), Vec3(0.1, 0.1, 1.5))));
  // Entirely below the base plane: no intersection even within the sphere.
  EXPECT_FALSE(h.intersects_box(Aabb(Vec3(-0.1, -0.1, -0.5), Vec3(0.1, 0.1, -0.05))));
}

TEST(Solid, CompoundUnion) {
  Solid body = Solid::box(Aabb(Vec3(0, 0, 0), Vec3(1, 1, 0.5)));
  Solid bump = Solid::box(Aabb(Vec3(0.4, 0.4, 0.5), Vec3(0.6, 0.6, 0.8)));
  Solid shape = Solid::compound({body, bump});
  EXPECT_EQ(shape.kind(), Solid::Kind::Compound);
  EXPECT_TRUE(shape.contains(Vec3(0.1, 0.1, 0.2)));  // body
  EXPECT_TRUE(shape.contains(Vec3(0.5, 0.5, 0.7)));  // bump
  EXPECT_FALSE(shape.contains(Vec3(0.1, 0.1, 0.7)));  // beside the bump
  EXPECT_TRUE(approx_equal(shape.bounding_box(), Aabb(Vec3(0, 0, 0), Vec3(1, 1, 0.8))));
  EXPECT_THROW(Solid::compound({}), std::invalid_argument);
}

TEST(Solid, AccessorsTypeChecked) {
  Solid b = Solid::box(Aabb(Vec3(), Vec3(1, 1, 1)));
  EXPECT_NO_THROW(static_cast<void>(b.as_box()));
  EXPECT_THROW(static_cast<void>(b.as_cylinder()), std::logic_error);
  EXPECT_THROW(static_cast<void>(b.as_hemisphere()), std::logic_error);
  EXPECT_THROW(static_cast<void>(b.as_compound()), std::logic_error);
}

/// Property: a solid is always contained within its bounding box, and
/// intersects_box is consistent with dense containment sampling.
class SolidProperty : public ::testing::TestWithParam<int> {};

TEST_P(SolidProperty, ContainmentWithinBounds) {
  Solid solids[] = {
      Solid::box(Aabb(Vec3(-0.5, -0.3, 0), Vec3(0.5, 0.3, 0.4))),
      Solid::vertical_cylinder(Vec3(0.1, -0.1, 0.05), 0.4, 0.5),
      Solid::hemisphere(Vec3(0, 0, 0.2), 0.45),
      Solid::compound({Solid::box(Aabb(Vec3(-0.4, -0.4, 0), Vec3(0.4, 0.4, 0.2))),
                       Solid::hemisphere(Vec3(0, 0, 0.2), 0.3)}),
  };
  const Solid& s = solids[GetParam()];
  std::mt19937 rng(static_cast<unsigned>(GetParam()) + 1);
  std::uniform_real_distribution<double> coord(-1.0, 1.0);
  for (int i = 0; i < 2000; ++i) {
    Vec3 p(coord(rng), coord(rng), coord(rng));
    if (s.contains(p)) {
      EXPECT_TRUE(s.bounding_box().contains(p));
      // A tiny box around a contained point must intersect.
      EXPECT_TRUE(s.intersects_box(Aabb::from_center(p, Vec3(0.01, 0.01, 0.01))));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SolidProperty, ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace rabit::geom

namespace rabit {
namespace {

using geom::Aabb;
using geom::Solid;
using geom::Vec3;

TEST(DeviceShapes, CentrifugeIsDomed) {
  Aabb fp = Aabb::from_center(Vec3(-0.45, 0.0, 0.10), Vec3(0.18, 0.18, 0.16));
  dev::CentrifugeModel cf("cf", fp);
  auto shape = cf.shape();
  ASSERT_TRUE(shape.has_value());
  // The shape stays inside the cuboid footprint...
  EXPECT_TRUE(geom::approx_equal(shape->bounding_box(), fp, 1e-9));
  // ...and the cuboid's top corners are NOT part of the real device.
  Vec3 corner(fp.max.x - 0.005, fp.max.y - 0.005, fp.max.z - 0.005);
  EXPECT_TRUE(fp.contains(corner));
  EXPECT_FALSE(shape->contains(corner));
  // The dome apex is.
  EXPECT_TRUE(shape->contains(Vec3(-0.45, 0.0, fp.max.z - 0.001)));
}

TEST(DeviceShapes, ThermoshakerHasBump) {
  Aabb fp = Aabb::from_center(Vec3(0.35, -0.25, 0.07), Vec3(0.14, 0.14, 0.10));
  dev::ThermoshakerModel ts("ts", 110.0, fp);
  auto shape = ts.shape();
  ASSERT_TRUE(shape.has_value());
  EXPECT_TRUE(geom::approx_equal(shape->bounding_box(), fp, 1e-9));
  // Above the body but beside the bump: free in reality, blocked by cuboid.
  Vec3 beside_bump(fp.max.x - 0.005, fp.max.y - 0.005, fp.max.z - 0.005);
  EXPECT_FALSE(shape->contains(beside_bump));
  // On the bump itself: occupied.
  EXPECT_TRUE(shape->contains(Vec3(0.35, -0.25, fp.max.z - 0.005)));
}

TEST(DeviceShapes, GroundTruthUsesRefinedShapes) {
  sim::LabBackend backend(sim::testbed_profile());
  sim::build_hein_testbed_deck(backend);
  sim::WorldModel world = backend.ground_truth_world("");
  const sim::NamedBox* cf = world.find_box(sim::deck_ids::kCentrifuge);
  ASSERT_NE(cf, nullptr);
  EXPECT_TRUE(cf->solid.has_value());
  // The cuboid's top corner is free space in ground truth.
  Vec3 corner(cf->box.max.x - 0.005, cf->box.max.y - 0.005, cf->box.max.z - 0.005);
  EXPECT_FALSE(cf->contains(corner));
  EXPECT_TRUE(cf->box.contains(corner));
}

TEST(DeviceShapes, RuleWorldUsesCuboidsByDefault) {
  sim::LabBackend backend(sim::testbed_profile());
  sim::build_hein_testbed_deck(backend);
  core::EngineConfig cfg = core::config_from_backend(backend, core::Variant::Modified);
  // The paper's deployed RABIT: cuboids only.
  core::StateTracker tracker(&cfg);
  tracker.initialize(backend.registry().fetch_observed_state());
  sim::WorldModel cuboid_world =
      core::assemble_rule_world(cfg, tracker, sim::deck_ids::kViperX);
  EXPECT_FALSE(cuboid_world.find_box(sim::deck_ids::kCentrifuge)->solid.has_value());
  // With the §V-C extension enabled, refined shapes flow through.
  cfg.use_refined_shapes = true;
  sim::WorldModel refined_world =
      core::assemble_rule_world(cfg, tracker, sim::deck_ids::kViperX);
  EXPECT_TRUE(refined_world.find_box(sim::deck_ids::kCentrifuge)->solid.has_value());
}

TEST(DeviceShapes, ConfigJsonRoundTripsSolids) {
  sim::LabBackend backend(sim::testbed_profile());
  sim::build_hein_testbed_deck(backend);
  core::EngineConfig cfg = core::config_from_backend(backend, core::Variant::Modified);
  cfg.use_refined_shapes = true;
  core::EngineConfig round = core::config_from_json(core::config_to_json(cfg));
  EXPECT_TRUE(round.use_refined_shapes);
  const core::DeviceMeta* cf = round.find_device(sim::deck_ids::kCentrifuge);
  ASSERT_NE(cf, nullptr);
  ASSERT_TRUE(cf->refined_shape.has_value());
  EXPECT_EQ(cf->refined_shape->kind(), Solid::Kind::Compound);
  const core::DeviceMeta* orig = cfg.find_device(sim::deck_ids::kCentrifuge);
  EXPECT_TRUE(geom::approx_equal(cf->refined_shape->bounding_box(),
                                 orig->refined_shape->bounding_box(), 1e-9));
  // Containment agrees on sample points.
  for (double z : {0.05, 0.10, 0.15, 0.175}) {
    Vec3 p(-0.45 + 0.07, 0.0 + 0.07, z);
    EXPECT_EQ(cf->refined_shape->contains(p), orig->refined_shape->contains(p)) << z;
  }
}

TEST(DeviceShapes, CuboidModelOverApproximates) {
  // The crux of the §V-C complaint: a path grazing the centrifuge cuboid's
  // top corner is a false alarm under the cuboid model, clear under the
  // refined model, and physically clear in ground truth.
  sim::LabBackend backend(sim::testbed_profile());
  sim::build_hein_testbed_deck(backend);
  const geom::Aabb fp = *backend.registry().at(sim::deck_ids::kCentrifuge).footprint();
  Vec3 graze(fp.max.x - 0.01, fp.max.y - 0.01, fp.max.z - 0.01);

  sim::WorldModel cuboid = sim::deck_world_model(backend);
  sim::WorldModel refined = sim::deck_world_model(backend, {true, true, true, true});
  EXPECT_TRUE(sim::check_point(cuboid, graze, 0.0).has_value());
  EXPECT_FALSE(sim::check_point(refined, graze, 0.0).has_value());
  // The dome interior is flagged by both.
  Vec3 apex(fp.center().x, fp.center().y, fp.max.z - 0.01);
  EXPECT_TRUE(sim::check_point(cuboid, apex, 0.0).has_value());
  EXPECT_TRUE(sim::check_point(refined, apex, 0.0).has_value());
}

}  // namespace
}  // namespace rabit
