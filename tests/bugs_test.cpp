// Bug-injection tests: the StreamEditor operations, the 16-bug catalogue
// (the heart of the §IV evaluation), and the synthetic-bug generator.
#include <gtest/gtest.h>

#include "bugs/bugs.hpp"
#include "sim/deck.hpp"

namespace rabit::bugs {
namespace {

using dev::Command;
using dev::Severity;
using geom::Vec3;
namespace ids = sim::deck_ids;

std::vector<Command> small_stream() {
  return {
      cmd("a", "one"),
      cmd("a", "two"),
      cmd("b", "one"),
      move_cmd("a", Vec3(1, 2, 3)),
  };
}

TEST(StreamEditor, FindByDeviceActionAndNth) {
  StreamEditor e(small_stream());
  EXPECT_EQ(e.find("a", "one"), 0u);
  EXPECT_EQ(e.find("b", "one"), 2u);
  EXPECT_EQ(e.find("a", "two", 0), 1u);
  EXPECT_THROW(static_cast<void>(e.find("a", "one", 1)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(e.find("z", "one")), std::out_of_range);
}

TEST(StreamEditor, FindWithArgPredicate) {
  StreamEditor e(small_stream());
  std::size_t i = e.find("a", "move_to", 0, [](const json::Value& args) {
    return args.find("position") != nullptr;
  });
  EXPECT_EQ(i, 3u);
}

TEST(StreamEditor, EraseInsertSwap) {
  StreamEditor e(small_stream());
  e.erase(1);
  EXPECT_EQ(e.size(), 3u);
  EXPECT_EQ(e.commands()[1].device, "b");
  e.insert(0, cmd("z", "zero"));
  EXPECT_EQ(e.commands()[0].device, "z");
  e.swap(0, 1);
  EXPECT_EQ(e.commands()[0].device, "a");
  EXPECT_THROW(e.erase(10), std::out_of_range);
  EXPECT_THROW(e.insert(99, cmd("x", "y")), std::out_of_range);
  EXPECT_THROW(e.swap(0, 99), std::out_of_range);
}

TEST(StreamEditor, SetArg) {
  StreamEditor e(small_stream());
  e.set_arg(0, "quantity", json::Value(50.0));
  EXPECT_DOUBLE_EQ(e.commands()[0].args.as_object().at("quantity").as_double(), 50.0);
}

TEST(StreamEditor, ReplacePositionEditsAllMatches) {
  std::vector<Command> stream = {
      move_cmd("a", Vec3(1, 2, 3)),
      move_cmd("a", Vec3(1, 2, 3)),
      move_cmd("a", Vec3(9, 9, 9)),
      move_cmd("b", Vec3(1, 2, 3)),  // different device: untouched
  };
  StreamEditor e(std::move(stream));
  std::size_t edits = e.replace_position("a", Vec3(1, 2, 3), Vec3(1, 2, 0.5));
  EXPECT_EQ(edits, 2u);
  EXPECT_DOUBLE_EQ(e.commands()[0].args.as_object().at("position").as_array()[2].as_double(),
                   0.5);
  EXPECT_DOUBLE_EQ(e.commands()[3].args.as_object().at("position").as_array()[2].as_double(),
                   3.0);
}

// --- the catalogue -------------------------------------------------------------

TEST(BugCatalogue, HasSixteenBugsWithPaperSeverityTotals) {
  const auto& bugs = bug_catalogue();
  ASSERT_EQ(bugs.size(), 16u);
  std::map<Severity, int> totals;
  for (const BugSpec& b : bugs) ++totals[b.severity];
  // Table V: Low 3, Medium-Low 1, Medium-High 6, High 6.
  EXPECT_EQ(totals[Severity::Low], 3);
  EXPECT_EQ(totals[Severity::MediumLow], 1);
  EXPECT_EQ(totals[Severity::MediumHigh], 6);
  EXPECT_EQ(totals[Severity::High], 6);
}

TEST(BugCatalogue, AllFourPaperCategoriesPresent) {
  std::set<BugCategory> seen;
  for (const BugSpec& b : bug_catalogue()) seen.insert(b.category);
  EXPECT_TRUE(seen.contains(BugCategory::DoorInteraction));
  EXPECT_TRUE(seen.contains(BugCategory::ArmArmCollision));
  EXPECT_TRUE(seen.contains(BugCategory::MissingVial));
  EXPECT_TRUE(seen.contains(BugCategory::CoordinateChange));
}

TEST(BugCatalogue, IdsUnique) {
  std::set<std::string> ids_seen;
  for (const BugSpec& b : bug_catalogue()) {
    EXPECT_TRUE(ids_seen.insert(b.id).second) << "duplicate id " << b.id;
    EXPECT_FALSE(b.description.empty());
  }
}

/// Per-bug end-to-end parameterized check: under every variant, the bug is
/// detected exactly from its documented variant onward, and the detection
/// rate never regresses as RABIT improves.
struct BugVariantCase {
  std::size_t bug_index;
  core::Variant variant;
};

class BugDetection : public ::testing::TestWithParam<BugVariantCase> {};

TEST_P(BugDetection, MatchesDocumentedVariant) {
  const BugSpec& bug = bug_catalogue()[GetParam().bug_index];
  core::Variant variant = GetParam().variant;
  BugOutcome outcome = evaluate_bug(bug, variant);

  bool expect_detected =
      bug.detected_from.has_value() &&
      static_cast<int>(variant) >= static_cast<int>(*bug.detected_from);
  EXPECT_EQ(outcome.detected, expect_detected)
      << bug.id << " under " << core::to_string(variant) << " (alert rule '"
      << outcome.alert_rule << "')";

  if (!outcome.detected) {
    // A missed bug must actually damage something — otherwise it isn't a bug.
    EXPECT_TRUE(outcome.damaged) << bug.id;
    ASSERT_TRUE(outcome.damage_severity.has_value());
    EXPECT_EQ(*outcome.damage_severity, bug.severity) << bug.id;
  } else {
    // A detected bug is stopped before its damage materializes.
    EXPECT_FALSE(outcome.damaged) << bug.id << ": " << outcome.report.damage.size()
                                  << " damage events despite detection";
  }
}

std::vector<BugVariantCase> all_bug_variant_cases() {
  std::vector<BugVariantCase> cases;
  for (std::size_t i = 0; i < bug_catalogue().size(); ++i) {
    for (core::Variant v :
         {core::Variant::Initial, core::Variant::Modified, core::Variant::ModifiedWithSim}) {
      cases.push_back(BugVariantCase{i, v});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Catalogue, BugDetection, ::testing::ValuesIn(all_bug_variant_cases()),
                         [](const ::testing::TestParamInfo<BugVariantCase>& info) {
                           return bug_catalogue()[info.param.bug_index].id + "_" +
                                  std::string(core::to_string(info.param.variant) ==
                                                      "modified+sim"
                                                  ? "modified_sim"
                                                  : core::to_string(info.param.variant));
                         });

TEST(BugDetectionSummary, PaperProgression) {
  // The headline §IV numbers: 8/16 -> 12/16 -> 13/16.
  int detected_v1 = 0;
  int detected_v2 = 0;
  int detected_v3 = 0;
  for (const BugSpec& b : bug_catalogue()) {
    if (evaluate_bug(b, core::Variant::Initial).detected) ++detected_v1;
    if (evaluate_bug(b, core::Variant::Modified).detected) ++detected_v2;
    if (evaluate_bug(b, core::Variant::ModifiedWithSim).detected) ++detected_v3;
  }
  EXPECT_EQ(detected_v1, 8);
  EXPECT_EQ(detected_v2, 12);
  EXPECT_EQ(detected_v3, 13);
}

/// Zero false positives (the paper's alarm-fatigue argument): every bug's
/// safe baseline runs alert-free and damage-free under every variant.
class SafeBaselines : public ::testing::TestWithParam<BugVariantCase> {};

TEST_P(SafeBaselines, NoFalsePositives) {
  const BugSpec& bug = bug_catalogue()[GetParam().bug_index];
  sim::LabBackend staging(sim::testbed_profile());
  sim::build_hein_testbed_deck(staging);
  BugOutcome outcome = evaluate_stream(bug.build_safe(staging), GetParam().variant);
  EXPECT_FALSE(outcome.alerted) << bug.id << ": false alarm '" << outcome.alert_rule << "'";
  EXPECT_FALSE(outcome.damaged) << bug.id << ": baseline caused damage";
}

INSTANTIATE_TEST_SUITE_P(Catalogue, SafeBaselines, ::testing::ValuesIn(all_bug_variant_cases()),
                         [](const ::testing::TestParamInfo<BugVariantCase>& info) {
                           return bug_catalogue()[info.param.bug_index].id + "_" +
                                  std::string(core::to_string(info.param.variant) ==
                                                      "modified+sim"
                                                  ? "modified_sim"
                                                  : core::to_string(info.param.variant));
                         });

// --- synthetic generator --------------------------------------------------------

TEST(RandomMutation, DeterministicPerSeed) {
  sim::LabBackend staging(sim::testbed_profile());
  sim::build_hein_testbed_deck(staging);
  auto base = bug_catalogue()[0].build_safe(staging);

  std::mt19937 rng_a(5);
  std::mt19937 rng_b(5);
  SyntheticBug a = random_mutation(base, rng_a);
  SyntheticBug b = random_mutation(base, rng_b);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.detail, b.detail);
  EXPECT_EQ(a.commands.size(), b.commands.size());
}

TEST(RandomMutation, ProducesValidStreams) {
  sim::LabBackend staging(sim::testbed_profile());
  sim::build_hein_testbed_deck(staging);
  auto base = bug_catalogue()[0].build_safe(staging);

  std::mt19937 rng(123);
  for (int i = 0; i < 50; ++i) {
    SyntheticBug bug = random_mutation(base, rng);
    EXPECT_FALSE(bug.detail.empty());
    EXPECT_GE(bug.commands.size(), base.size() - 1);
    // Every mutant stream still evaluates end to end without crashing the
    // harness (alerts and damage are legitimate outcomes).
    EXPECT_NO_THROW({
      BugOutcome outcome = evaluate_stream(bug.commands, core::Variant::Modified);
      (void)outcome;
    }) << bug.detail;
  }
}

TEST(RandomMutation, RejectsEmptyBase) {
  std::mt19937 rng(1);
  EXPECT_THROW(static_cast<void>(random_mutation({}, rng)), std::invalid_argument);
}

TEST(BugCategoryNames, Distinct) {
  std::set<std::string_view> names;
  for (BugCategory c :
       {BugCategory::DoorInteraction, BugCategory::ArmArmCollision, BugCategory::MissingVial,
        BugCategory::CoordinateChange, BugCategory::ArgumentChange, BugCategory::OrderChange}) {
    names.insert(to_string(c));
  }
  EXPECT_EQ(names.size(), 6u);
}

}  // namespace
}  // namespace rabit::bugs
