// Differential soundness sweep for the whole-campaign interference analyzer:
// seeded multi-stream campaigns run for real on one shared lab
// (fleet::Fleet::run_campaign), and every *cross-stream* runtime precondition
// alert — one the same stream does not raise solo — must be covered by a
// static I1..I6 diagnostic whose subjects name the alerting device. The
// static report may over-approximate (warn about races a particular
// interleaving dodges) but must never miss the regime the runtime proved.
//
// A failing seed replays in one line:
//   campaign_for(<seed>)  +  fleet::Fleet::run_campaign / analyze_campaign
#include <gtest/gtest.h>

#include <cstdio>
#include <random>
#include <vector>

#include "analysis/interference.hpp"
#include "analysis/shard_plan.hpp"
#include "bugs/bugs.hpp"
#include "fleet/fleet.hpp"
#include "script/workflows.hpp"
#include "sim/deck.hpp"

using namespace rabit;

namespace {

constexpr unsigned kSeedBase = 31000;
constexpr unsigned kSeedCount = 120;  // >= 100 campaigns, per the acceptance bar

core::EngineConfig testbed_config() {
  sim::LabBackend backend(sim::testbed_profile());
  sim::build_hein_testbed_deck(backend);
  return core::config_from_backend(backend, core::Variant::Modified);
}

const std::vector<dev::Command>& base_workflow() {
  static const std::vector<dev::Command> base = [] {
    sim::LabBackend staging(sim::testbed_profile());
    sim::build_hein_testbed_deck(staging);
    return script::record_workflow(staging, script::testbed_workflow_source());
  }();
  return base;
}

/// Same stacking idiom as differential_test.cpp: 1-3 seeded random mutations
/// on the recorded Fig. 5 workflow.
std::vector<dev::Command> mutated_stream(const std::vector<dev::Command>& base,
                                         unsigned seed) {
  std::mt19937 rng(seed);
  std::vector<dev::Command> commands = base;
  int mutations = 1 + static_cast<int>(seed % 3);
  for (int i = 0; i < mutations; ++i) {
    commands = bugs::random_mutation(commands, rng).commands;
  }
  return commands;
}

/// The campaign for one sweep seed: two or three mutated copies of the
/// workflow racing on the shared testbed.
fleet::CampaignSpec campaign_for(unsigned seed) {
  fleet::CampaignSpec spec;
  spec.variant = core::Variant::Modified;
  spec.seed = seed;
  std::size_t n_streams = 2 + seed % 2;
  for (std::size_t s = 0; s < n_streams; ++s) {
    fleet::CampaignStreamSpec stream;
    stream.name = "s" + std::to_string(s);
    stream.commands = mutated_stream(base_workflow(), seed * 13 + static_cast<unsigned>(s) * 7);
    spec.streams.push_back(std::move(stream));
  }
  return spec;
}

bool covered_by(const analysis::AnalysisReport& report, const std::string& device) {
  for (const analysis::Diagnostic& d : report.diagnostics) {
    if (d.rule.empty() || d.rule[0] != 'I') continue;
    for (const std::string& s : d.subjects) {
      if (s == device) return true;
    }
  }
  return false;
}

struct Miss {
  unsigned seed;
  std::size_t stream;
  std::size_t command_index;
  std::string rule;
  std::string device;
};

}  // namespace

TEST(InterferenceDifferential, EveryCrossStreamAlertHasAStaticCover) {
  core::EngineConfig config = testbed_config();
  std::vector<Miss> misses;
  std::size_t cross_stream_alerts = 0;
  std::size_t campaigns_with_interference = 0;

  for (unsigned i = 0; i < kSeedCount; ++i) {
    unsigned seed = kSeedBase + i;
    fleet::CampaignSpec spec = campaign_for(seed);
    fleet::CampaignReport runtime = fleet::Fleet::run_campaign(spec);

    std::vector<analysis::CampaignStream> streams;
    streams.reserve(spec.streams.size());
    for (const fleet::CampaignStreamSpec& s : spec.streams) {
      streams.push_back({s.name, s.commands});
    }
    analysis::AnalysisReport report = analysis::analyze_campaign(config, streams);

    bool any_cross = false;
    for (const fleet::CampaignAlert& a : runtime.alerts) {
      if (!a.cross_stream) continue;
      if (a.alert.kind != core::AlertKind::InvalidCommand) continue;
      any_cross = true;
      ++cross_stream_alerts;
      if (!covered_by(report, a.alert.command.device)) {
        misses.push_back(Miss{seed, a.stream, a.command_index, a.alert.rule,
                              a.alert.command.device});
      }
    }
    if (any_cross) ++campaigns_with_interference;
  }

  for (const Miss& m : misses) {
    std::printf(
        "UNCOVERED: seed %u stream %zu cmd %zu rule %s device '%s' — replay with "
        "fleet::Fleet::run_campaign(campaign_for(%u)) vs analyze_campaign\n",
        m.seed, m.stream, m.command_index, m.rule.c_str(), m.device.c_str(), m.seed);
  }
  EXPECT_TRUE(misses.empty()) << misses.size() << " cross-stream runtime alerts had no "
                              << "covering I-diagnostic (seeds listed above)";

  // Non-vacuity: racing mutated copies of the same workflow on one lab must
  // actually interfere, or this sweep proves nothing.
  EXPECT_GT(cross_stream_alerts, 10u);
  EXPECT_GT(campaigns_with_interference, 5u);
  std::printf("interference sweep: %u campaigns, %zu with cross-stream alerts, "
              "%zu cross-stream alerts total, %zu uncovered\n",
              kSeedCount, campaigns_with_interference, cross_stream_alerts, misses.size());
}

TEST(InterferenceDifferential, ShardPlansAreSoundAcrossTheSweep) {
  // The shard planner's static certificates must hold up against the same
  // 120-campaign sweep: verify_plan replays cleanly for every seed, every
  // emitted S-diagnostic carries concrete conflict evidence, and whenever a
  // campaign splits into >1 shard, the plan-driven sharded run agrees with
  // the monolithic run (the fleet validation oracle stays silent).
  core::EngineConfig config = testbed_config();
  std::size_t multi_shard_campaigns = 0;
  std::size_t s_diagnostics = 0;

  for (unsigned i = 0; i < kSeedCount; ++i) {
    unsigned seed = kSeedBase + i;
    fleet::CampaignSpec spec = campaign_for(seed);

    std::vector<analysis::StreamSummary> summaries;
    summaries.reserve(spec.streams.size());
    for (const fleet::CampaignStreamSpec& s : spec.streams) {
      summaries.push_back(analysis::summarize_stream(config, s.name, s.commands, {}, nullptr));
    }
    analysis::ShardPlan plan = analysis::plan_shards(config, summaries);

    std::vector<std::string> static_violations = analysis::verify_plan(config, summaries, plan);
    for (const std::string& v : static_violations) {
      std::printf("PLAN VIOLATION: seed %u: %s\n", seed, v.c_str());
    }
    ASSERT_TRUE(static_violations.empty()) << "seed " << seed;

    for (const analysis::Diagnostic& d : plan.diagnostics.diagnostics) {
      if (d.rule.empty() || d.rule[0] != 'S') continue;
      ++s_diagnostics;
      EXPECT_FALSE(d.streams.empty()) << "seed " << seed << " " << d.rule
                                      << " names no streams";
      // Every S-diagnostic must cite concrete conflict evidence, not just a
      // verdict: the message embeds a kind tag like "shared-device ...".
      bool has_evidence = false;
      for (const char* kind :
           {"shared-device", "multiplex-token", "shared-entity", "envelope-overlap",
            "consumable-budget", "setpoint-race", "ignore-asymmetry", "threshold-budget",
            "truncated-summary"}) {
        if (d.message.find(kind) != std::string::npos) has_evidence = true;
      }
      EXPECT_TRUE(has_evidence) << "seed " << seed << " " << d.rule
                                << " lacks conflict evidence: " << d.message;
    }

    if (plan.shards.size() > 1) {
      ++multi_shard_campaigns;
      fleet::ShardedCampaignOptions options;
      options.workers = 2;
      options.validate_certificates = true;
      fleet::CampaignReport sharded = fleet::Fleet::run_campaign(spec, plan, options);
      for (const std::string& v : sharded.oracle_violations) {
        std::printf("ORACLE VIOLATION: seed %u: %s\n", seed, v.c_str());
      }
      EXPECT_TRUE(sharded.oracle_violations.empty()) << "seed " << seed;
      EXPECT_EQ(sharded.shards, plan.shards.size()) << "seed " << seed;
    }
  }
  std::printf("shard sweep: %u campaigns, %zu multi-shard, %zu S-diagnostics\n",
              kSeedCount, multi_shard_campaigns, s_diagnostics);
}

TEST(InterferenceDifferential, MixedCampaignShardsNonVacuouslyWithCleanOracle) {
  // Mutated copies of the Fig. 5 workflow always contend (same devices), so
  // the sweep above mostly exercises the single-shard path. This campaign
  // mixes one contended pair with station streams on otherwise-untouched
  // devices, forcing a genuinely multi-shard plan whose certificates the
  // runtime oracle then has to confirm.
  core::EngineConfig config = testbed_config();
  fleet::CampaignSpec spec;
  spec.variant = core::Variant::Modified;
  spec.seed = 4242;
  spec.halt_on_alert = false;

  auto station = [](std::string name, std::string device, std::string action,
                    json::Object args) {
    fleet::CampaignStreamSpec stream;
    stream.name = std::move(name);
    dev::Command command;
    command.device = std::move(device);
    command.action = std::move(action);
    command.args = std::move(args);
    stream.commands.push_back(std::move(command));
    return stream;
  };
  json::Object heat_a;
  heat_a["celsius"] = 55.0;
  json::Object heat_b;
  heat_b["celsius"] = 90.0;
  json::Object shake;
  shake["celsius"] = 40.0;
  json::Object door;
  door["state"] = std::string("open");
  spec.streams.push_back(station("anneal-a", "hotplate", "set_temperature", heat_a));
  spec.streams.push_back(station("anneal-b", "hotplate", "set_temperature", heat_b));
  spec.streams.push_back(station("shake", "thermoshaker", "set_temperature", shake));
  spec.streams.push_back(station("spin-prep", "centrifuge", "set_door", door));

  std::vector<analysis::StreamSummary> summaries;
  for (const fleet::CampaignStreamSpec& s : spec.streams) {
    summaries.push_back(analysis::summarize_stream(config, s.name, s.commands, {}, nullptr));
  }
  analysis::ShardPlan plan = analysis::plan_shards(config, summaries);
  ASSERT_EQ(plan.shards.size(), 3u);  // {anneal-a, anneal-b}, {shake}, {spin-prep}
  EXPECT_TRUE(analysis::verify_plan(config, summaries, plan).empty());
  EXPECT_FALSE(plan.certificates.empty());

  fleet::ShardedCampaignOptions options;
  options.workers = 3;
  options.validate_certificates = true;
  fleet::CampaignReport sharded = fleet::Fleet::run_campaign(spec, plan, options);
  for (const std::string& v : sharded.oracle_violations) {
    std::printf("ORACLE VIOLATION: %s\n", v.c_str());
  }
  EXPECT_TRUE(sharded.oracle_violations.empty());
  EXPECT_EQ(sharded.shards, 3u);
}

TEST(InterferenceDifferential, SingleStreamCatalogueVerdictsUnchanged) {
  // The campaign machinery must not disturb the paper's single-stream
  // headline: the 16-bug catalogue still detects 8/12/13 across variants.
  const core::Variant variants[] = {core::Variant::Initial, core::Variant::Modified,
                                    core::Variant::ModifiedWithSim};
  const std::size_t expected[] = {8, 12, 13};
  for (std::size_t v = 0; v < 3; ++v) {
    std::size_t detected = 0;
    for (const bugs::BugSpec& bug : bugs::bug_catalogue()) {
      if (bugs::evaluate_bug(bug, variants[v]).detected) ++detected;
    }
    EXPECT_EQ(detected, expected[v]) << "variant " << core::to_string(variants[v]);
  }
}
