// Tests for the §V open-challenge extensions: action aliases (multiple
// commands per action), the proximity-sensor device class (S1 rule), and
// refined shapes inside the engine's rule world.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "devices/robot_arm.hpp"
#include "devices/stations.hpp"
#include "script/workflows.hpp"
#include "sim/deck.hpp"
#include "trace/trace.hpp"

namespace rabit {
namespace {

using dev::Command;
using geom::Aabb;
using geom::Vec3;
namespace ids = sim::deck_ids;

Command make_cmd(std::string device, std::string action, json::Object args = {}) {
  Command c;
  c.device = std::move(device);
  c.action = std::move(action);
  c.args = json::Value(std::move(args));
  return c;
}

Command move_as(const char* arm, const char* action, const Vec3& local) {
  json::Object args;
  args["position"] = json::Array{local.x, local.y, local.z};
  return make_cmd(arm, action, std::move(args));
}

class ExtensionsTest : public ::testing::Test {
 protected:
  ExtensionsTest() : backend(sim::testbed_profile()) {
    sim::build_hein_testbed_deck(backend);
  }

  Vec3 site_local(const char* arm, const char* site) {
    return backend.arm(arm).to_local(backend.find_site(site)->lab_position);
  }

  sim::LabBackend backend;
};

// --- action aliases -----------------------------------------------------------

TEST_F(ExtensionsTest, MovePoseAliasExecutesOnDevice) {
  // The device itself accepts the vendor-specific command name.
  Vec3 target = site_local(ids::kNed2, "grid.NW") + Vec3(0, 0, 0.22);
  sim::ExecResult r = backend.execute(move_as(ids::kNed2, "move_pose", target));
  EXPECT_TRUE(r.executed);
  EXPECT_LT(backend.arm(ids::kNed2).position_local().distance_to(target), 5e-3);
}

TEST_F(ExtensionsTest, MovePoseAliasCheckedByMotionRules) {
  core::RabitEngine engine(core::config_from_backend(backend, core::Variant::Modified));
  engine.initialize(backend.registry().fetch_observed_state());
  // The alias must hit the same G1 rule as the canonical command.
  auto alias_alert = engine.check_command(
      move_as(ids::kViperX, "move_pose", site_local(ids::kViperX, "dosing_device")));
  ASSERT_TRUE(alias_alert.has_value());
  EXPECT_EQ(alias_alert->rule, "G1");
  auto canonical_alert = engine.check_command(
      move_as(ids::kViperX, "move_to", site_local(ids::kViperX, "dosing_device")));
  ASSERT_TRUE(canonical_alert.has_value());
  EXPECT_EQ(canonical_alert->rule, alias_alert->rule);
}

TEST_F(ExtensionsTest, MovePoseAliasTrackedLikeCanonical) {
  core::RabitEngine engine(core::config_from_backend(backend, core::Variant::Modified));
  engine.initialize(backend.registry().fetch_observed_state());
  Vec3 target = site_local(ids::kViperX, "grid.NW");
  engine.apply_expected(move_as(ids::kViperX, "move_pose", target));
  EXPECT_LT(engine.tracker()
                .arm_position_lab(ids::kViperX)
                .distance_to(backend.find_site("grid.NW")->lab_position),
            1e-9);
}

TEST_F(ExtensionsTest, AliasRoundTripsThroughJson) {
  core::EngineConfig cfg = core::config_from_backend(backend, core::Variant::Modified);
  core::EngineConfig round = core::config_from_json(core::config_to_json(cfg));
  const core::DeviceMeta* arm = round.find_device(ids::kViperX);
  ASSERT_NE(arm, nullptr);
  EXPECT_EQ(arm->canonical_action("move_pose"), "move_to");
  EXPECT_EQ(arm->canonical_action("move_to"), "move_to");
  EXPECT_EQ(arm->canonical_action("unrelated"), "unrelated");
}

TEST_F(ExtensionsTest, AliasedUnsafeWorkflowBlockedEndToEnd) {
  core::RabitEngine engine(core::config_from_backend(backend, core::Variant::Modified));
  trace::Supervisor supervisor(&engine, &backend);
  supervisor.start();
  trace::SupervisedStep step = supervisor.step(
      move_as(ids::kViperX, "move_pose", site_local(ids::kViperX, "dosing_device")));
  ASSERT_TRUE(step.alert.has_value());
  EXPECT_FALSE(step.exec.has_value());
  EXPECT_TRUE(backend.damage_log().empty());
}

// --- proximity sensor (S1) -----------------------------------------------------

class SensorTest : public ExtensionsTest {
 protected:
  SensorTest() {
    // A sensor watching the space in front of the dosing device.
    zone = Aabb(Vec3(-0.15, 0.30, 0.02), Vec3(0.15, 0.60, 0.60));
    sensor = &dynamic_cast<dev::ProximitySensor&>(backend.registry().add(
        std::make_unique<dev::ProximitySensor>("door_sensor", zone)));
  }

  Aabb zone;
  dev::ProximitySensor* sensor = nullptr;
};

TEST_F(SensorTest, SensorStateObservable) {
  EXPECT_FALSE(sensor->occupied());
  sensor->set_occupied(true);
  EXPECT_TRUE(sensor->occupied());
  dev::StateMap observed = sensor->observed_state();
  ASSERT_TRUE(observed.contains("occupied"));
  EXPECT_EQ(observed.at("occupied").as_int(), 1);
  sensor->execute(make_cmd("door_sensor", "reset"));
  EXPECT_FALSE(sensor->occupied());
}

TEST_F(SensorTest, ConfigMarksSensor) {
  core::EngineConfig cfg = core::config_from_backend(backend, core::Variant::Modified);
  const core::DeviceMeta* meta = cfg.find_device("door_sensor");
  ASSERT_NE(meta, nullptr);
  EXPECT_TRUE(meta->is_sensor);
  ASSERT_TRUE(meta->sensor_zone.has_value());
  EXPECT_TRUE(geom::approx_equal(*meta->sensor_zone, zone));
  // And it survives the JSON round trip.
  core::EngineConfig round = core::config_from_json(core::config_to_json(cfg));
  EXPECT_TRUE(round.find_device("door_sensor")->is_sensor);
}

TEST_F(SensorTest, OccupiedZoneBlocksArmTargets) {
  sensor->set_occupied(true);
  core::RabitEngine engine(core::config_from_backend(backend, core::Variant::Modified));
  engine.initialize(backend.registry().fetch_observed_state());

  // The dosing device sits inside the watched zone; even with the door open
  // the arm must not approach while a person is present.
  engine.apply_expected(make_cmd(ids::kDosingDevice, "set_door", [] {
    json::Object o;
    o["state"] = std::string("open");
    return o;
  }()));
  auto alert = engine.check_command(
      move_as(ids::kViperX, "move_to", site_local(ids::kViperX, "dosing_device")));
  ASSERT_TRUE(alert.has_value());
  EXPECT_EQ(alert->rule, "S1");

  // Targets outside the zone remain legal.
  EXPECT_FALSE(
      engine.check_command(move_as(ids::kViperX, "move_to", Vec3(0.25, -0.2, 0.3)))
          .has_value());
}

TEST_F(SensorTest, ClearedSensorUnblocks) {
  sensor->set_occupied(true);
  core::RabitEngine engine(core::config_from_backend(backend, core::Variant::Modified));
  trace::Supervisor supervisor(&engine, &backend);
  supervisor.start();

  Command open_door = make_cmd(ids::kDosingDevice, "set_door", [] {
    json::Object o;
    o["state"] = std::string("open");
    return o;
  }());
  EXPECT_FALSE(supervisor.step(open_door).alert.has_value());

  Command approach =
      move_as(ids::kViperX, "move_to", site_local(ids::kViperX, "dosing_device"));
  trace::Supervisor relaxed(&engine, &backend,
                            trace::Supervisor::Options{/*halt_on_alert=*/false, /*recovery=*/{}});
  trace::SupervisedStep blocked = relaxed.step(approach);
  ASSERT_TRUE(blocked.alert.has_value());
  EXPECT_EQ(blocked.alert->rule, "S1");

  // The person leaves; the sensor clears; the very next status fetch lets
  // the same command through (the tracker resyncs from observation).
  sensor->set_occupied(false);
  trace::SupervisedStep harmless = relaxed.step(make_cmd("door_sensor", "reset"));
  EXPECT_FALSE(harmless.alert.has_value());
  trace::SupervisedStep allowed = relaxed.step(approach);
  EXPECT_FALSE(allowed.alert.has_value()) << allowed.alert->describe();
}

TEST_F(SensorTest, SensorNeverBlocksWhenClear) {
  core::RabitEngine engine(core::config_from_backend(backend, core::Variant::Modified));
  trace::Supervisor supervisor(&engine, &backend);
  auto commands = script::record_workflow(backend, script::testbed_workflow_source());
  trace::RunReport report = supervisor.run(commands);
  EXPECT_EQ(report.alerts, 0u);  // clear sensor = zero new false positives
}

}  // namespace
}  // namespace rabit
