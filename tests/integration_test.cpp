// End-to-end integration: script -> interpreter -> RATracer-style supervisor
// -> RABIT -> backend, across all three deployment stages, plus the
// Berlinguette Lab generalization (§V-B) built from generic devices.
#include <gtest/gtest.h>

#include "bugs/bugs.hpp"
#include "core/engine.hpp"
#include "devices/robot_arm.hpp"
#include "script/interp.hpp"
#include "script/workflows.hpp"
#include "sim/deck.hpp"
#include "trace/trace.hpp"

namespace rabit {
namespace {

using dev::Command;
using geom::Vec3;
namespace ids = sim::deck_ids;

/// The full supervised pipeline on a stage profile.
struct Pipeline {
  explicit Pipeline(sim::StageProfile profile, core::Variant variant = core::Variant::Modified,
                    bool production = false)
      : backend(std::move(profile)) {
    if (production) {
      sim::build_hein_production_deck(backend);
    } else {
      sim::build_hein_testbed_deck(backend);
    }
    engine = std::make_unique<core::RabitEngine>(core::config_from_backend(backend, variant));
    supervisor = std::make_unique<trace::Supervisor>(engine.get(), &backend);
  }

  void run_script(const std::string& source) {
    supervisor->start();
    script::SupervisorSink sink(supervisor.get());
    script::Interpreter interp(&sink);
    interp.register_devices(backend.registry());
    interp.set_global("locations", script::locations_table(backend));
    interp.run(source);
  }

  sim::LabBackend backend;
  std::unique_ptr<core::RabitEngine> engine;
  std::unique_ptr<trace::Supervisor> supervisor;
};

class StageParam : public ::testing::TestWithParam<const char*> {
 protected:
  static sim::StageProfile profile_for(const std::string& name) {
    if (name == "simulator") return sim::simulator_profile();
    if (name == "testbed") return sim::testbed_profile();
    return sim::production_profile();
  }
};

TEST_P(StageParam, SafeTestbedWorkflowRunsCleanOnEveryStage) {
  Pipeline p(profile_for(GetParam()));
  EXPECT_NO_THROW(p.run_script(script::testbed_workflow_source()));
  EXPECT_TRUE(p.backend.damage_log().empty());
  EXPECT_EQ(p.engine->stats().precondition_alerts, 0u);
  EXPECT_EQ(p.engine->stats().malfunction_alerts, 0u);
  // Physical outcome: vial_1 dosed with 5 mg and relocated to grid.SW.
  EXPECT_DOUBLE_EQ(p.backend.vial(ids::kVial1).solid_mg(), 5.0);
  EXPECT_EQ(p.backend.vial(ids::kVial1).location(), "grid.SW");
  EXPECT_EQ(p.backend.arm(ids::kNed2).state().at("pose").as_string(), "sleep");
}

INSTANTIATE_TEST_SUITE_P(Stages, StageParam,
                         ::testing::Values("simulator", "testbed", "production"));

TEST(ProductionPipeline, SolubilityExperimentEndToEnd) {
  Pipeline p(sim::production_profile(), core::Variant::Modified, /*production=*/true);
  EXPECT_NO_THROW(p.run_script(script::solubility_workflow_source()));
  EXPECT_TRUE(p.backend.damage_log().empty());
  dev::Vial& vial = p.backend.vial(ids::kVial1);
  EXPECT_DOUBLE_EQ(vial.solid_mg(), 5.0);
  EXPECT_GE(vial.liquid_ml(), 2.0);                 // initial solvent + loop rounds
  EXPECT_EQ(vial.location(), "grid.NW");            // returned to the grid
  EXPECT_DOUBLE_EQ(sim::LabBackend::true_solubility(vial), 1.0);  // dissolved
  // The camera measurements flowed back into the script's while loop.
  EXPECT_GT(p.supervisor->log().size(), 20u);
}

TEST(Pipeline, UnsafeScriptHaltsMidway) {
  Pipeline p(sim::testbed_profile());
  // Fig. 5 Bug A as a script: the second door-open is commented out.
  std::string source = script::testbed_workflow_source();
  std::size_t second_open = source.find("dosing_device.set_door(state=\"open\")",
                                        source.find("run_action"));
  ASSERT_NE(second_open, std::string::npos);
  source.insert(second_open, "# BUG A: ");
  EXPECT_THROW(p.run_script(source), script::ExperimentHalted);
  EXPECT_TRUE(p.backend.damage_log().empty());  // stopped before the crash
  EXPECT_TRUE(p.supervisor->halted());
  EXPECT_EQ(p.supervisor->log().records().back().alert_rule, "G1");
}

TEST(Pipeline, TraceLogRoundTripsThroughJsonl) {
  Pipeline p(sim::testbed_profile());
  p.run_script(script::testbed_workflow_source());
  std::string jsonl = p.supervisor->log().to_jsonl();
  trace::TraceLog round = trace::TraceLog::from_jsonl(jsonl);
  EXPECT_EQ(round.size(), p.supervisor->log().size());
}

TEST(Pipeline, ReplayedTraceReproducesOutcome) {
  // Record the workflow, then replay the raw command stream on a fresh deck:
  // identical end state.
  sim::LabBackend staging(sim::testbed_profile());
  sim::build_hein_testbed_deck(staging);
  auto commands = script::record_workflow(staging, script::testbed_workflow_source());

  Pipeline p(sim::testbed_profile());
  trace::RunReport report = p.supervisor->run(commands);
  EXPECT_FALSE(report.halted);
  EXPECT_EQ(report.alerts, 0u);
  EXPECT_DOUBLE_EQ(p.backend.vial(ids::kVial1).solid_mg(), 5.0);
}

TEST(Pipeline, MalfunctioningDoorCaughtMidWorkflow) {
  Pipeline p(sim::testbed_profile());
  dev::FaultPlan fault;
  fault.dead_actions.push_back("set_door");
  p.backend.registry().at(ids::kDosingDevice).set_fault_plan(fault);
  EXPECT_THROW(p.run_script(script::testbed_workflow_source()), script::ExperimentHalted);
  auto& last = p.supervisor->log().records().back();
  EXPECT_EQ(last.outcome, trace::Outcome::MalfunctionFlagged);
  EXPECT_EQ(last.alert_rule, "POST");
}

TEST(Pipeline, DamageCostRisesAcrossStages) {
  // The same crash costs more on more expensive stages (Table I's risk row).
  double costs[3];
  const char* stages[] = {"simulator", "testbed", "production"};
  for (int i = 0; i < 3; ++i) {
    sim::StageProfile profile = std::string(stages[i]) == "simulator"
                                    ? sim::simulator_profile()
                                    : std::string(stages[i]) == "testbed"
                                          ? sim::testbed_profile()
                                          : sim::production_profile();
    sim::LabBackend backend(profile);
    sim::build_hein_testbed_deck(backend);
    Vec3 local =
        backend.arm(ids::kViperX).to_local(backend.find_site("dosing_device")->lab_position);
    json::Object args;
    args["position"] = json::Array{local.x, local.y, local.z};
    Command crash;
    crash.device = ids::kViperX;
    crash.action = "move_to";
    crash.args = json::Value(std::move(args));
    backend.execute(crash);
    costs[i] = backend.total_damage_cost();
  }
  EXPECT_LT(costs[0], costs[1]);
  EXPECT_LT(costs[1], costs[2]);
}

// --- Berlinguette Lab generalization (§V-B) -----------------------------------

TEST(BerlinguetteLab, GenericDevicesCoverTheirStations) {
  // The R&D platform: UR3e-class arm, a dosing device with a door, and a
  // decapper — all expressible in the four device types.
  sim::LabBackend backend(sim::production_profile());
  backend.add_static_obstacle("platform",
                              geom::Aabb(Vec3(-1, -1, -0.5), Vec3(1, 1, 0.02)),
                              sim::ObstacleKind::Ground);
  auto& reg = backend.registry();
  reg.add(std::make_unique<dev::RobotArmDevice>(
      "ur5e", kin::make_ur5e(geom::Transform::translation(Vec3(0, 0, 0.02))),
      dev::MotionPolicy::ThrowOnUnreachable));
  reg.add(std::make_unique<dev::DosingDeviceModel>(
      "dosing_device", geom::Aabb::from_center(Vec3(0.0, 0.5, 0.12), Vec3(0.16, 0.16, 0.2))));
  reg.add(std::make_unique<dev::GenericActionDevice>(
      "decapper", std::vector<dev::GenericActionDevice::ValueActionSpec>{},
      /*has_door=*/false,
      geom::Aabb::from_center(Vec3(0.4, 0.0, 0.08), Vec3(0.1, 0.1, 0.12))));
  reg.add(std::make_unique<dev::GenericActionDevice>(
      "spin_coater",
      std::vector<dev::GenericActionDevice::ValueActionSpec>{
          {"set_spin_speed", "spinRpm", "rpm", 6000.0}},
      /*has_door=*/true,
      geom::Aabb::from_center(Vec3(-0.4, 0.0, 0.08), Vec3(0.14, 0.14, 0.12))));
  reg.add(std::make_unique<dev::Vial>("vial_1", 10, 15, "staging"));
  backend.add_site({"staging", Vec3(0.3, 0.3, 0.11), "", "", ""});
  backend.add_site({"spin_coater", Vec3(-0.4, 0.0, 0.10), "", "", "spin_coater"});

  core::EngineConfig cfg = core::config_from_backend(backend, core::Variant::Modified);
  // The generic spin coater was classified as an action device with a door.
  const core::DeviceMeta* coater = cfg.find_device("spin_coater");
  ASSERT_NE(coater, nullptr);
  EXPECT_EQ(coater->category, dev::DeviceCategory::ActionDevice);
  EXPECT_TRUE(coater->has_door);

  core::RabitEngine engine(std::move(cfg));
  trace::Supervisor sup(&engine, &backend);
  sup.start();

  // The general rules carry over unchanged: entering the spin coater with a
  // closed door violates G1; starting it with the door open violates G9.
  Vec3 local = backend.arm("ur5e").to_local(Vec3(-0.4, 0.0, 0.10));
  json::Object args;
  args["position"] = json::Array{local.x, local.y, local.z};
  Command enter;
  enter.device = "ur5e";
  enter.action = "move_to";
  enter.args = json::Value(std::move(args));
  trace::SupervisedStep step = sup.step(enter);
  ASSERT_TRUE(step.alert.has_value());
  EXPECT_EQ(step.alert->rule, "G1");
}

TEST(BerlinguetteLab, GenericDeviceThresholdRule) {
  sim::LabBackend backend(sim::production_profile());
  auto& reg = backend.registry();
  auto& nozzle = dynamic_cast<dev::GenericActionDevice&>(
      reg.add(std::make_unique<dev::GenericActionDevice>(
          "ultrasonic_nozzle",
          std::vector<dev::GenericActionDevice::ValueActionSpec>{
              {"set_flow", "flowRate", "ml_per_min", 50.0}},
          /*has_door=*/false, std::nullopt)));
  (void)nozzle;
  core::EngineConfig cfg = core::config_from_backend(backend, core::Variant::Modified);
  // Researchers add RABIT-level thresholds on top of the firmware's.
  for (core::DeviceMeta& m : cfg.devices) {
    if (m.id == "ultrasonic_nozzle") {
      m.thresholds.push_back({"set_flow", "ml_per_min", 30.0});
    }
  }
  core::RabitEngine engine(std::move(cfg));
  engine.initialize(backend.registry().fetch_observed_state());
  Command cmd;
  cmd.device = "ultrasonic_nozzle";
  cmd.action = "set_flow";
  json::Object args;
  args["ml_per_min"] = 40.0;  // below firmware (50) but above RABIT (30)
  cmd.args = json::Value(std::move(args));
  auto alert = engine.check_command(cmd);
  ASSERT_TRUE(alert.has_value());
  EXPECT_EQ(alert->rule, "G11");
}

}  // namespace
}  // namespace rabit
