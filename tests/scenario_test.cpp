// Properties of the scenario factory (src/scenario): the generator is
// seed-deterministic down to the byte, every mutant it emits is still a
// schema-valid spec whose materialized config passes the same validation
// rabit_validate applies, and the shrinker only ever moves downhill while
// preserving the predicate it was asked to keep.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "scenario/fuzz.hpp"
#include "scenario/scenario.hpp"

namespace rabit {
namespace {

constexpr std::uint64_t kSeedBase = 40000;
constexpr unsigned kSeedCount = 40;

std::string spec_bytes(const scenario::ScenarioSpec& spec) {
  return json::serialize(scenario::spec_to_json(spec));
}

std::string stream_bytes(const scenario::MaterializedScenario& mat) {
  std::string out;
  for (const fleet::CampaignStreamSpec& stream : mat.streams) {
    out += stream.name + "{";
    for (const dev::Command& c : stream.commands) {
      out += c.device + "." + c.action + "(" + json::serialize(c.args) + ")";
    }
    out += "}";
  }
  return out;
}

TEST(ScenarioGenerator, SameSeedSameCampaignBytes) {
  for (unsigned i = 0; i < kSeedCount; ++i) {
    std::uint64_t seed = scenario::derive_seed(kSeedBase, i);
    scenario::ScenarioSpec a = scenario::generate(seed);
    scenario::ScenarioSpec b = scenario::generate(seed);
    ASSERT_EQ(a, b) << "seed " << seed;
    ASSERT_EQ(spec_bytes(a), spec_bytes(b)) << "seed " << seed;
    // Materialization is deterministic too: the whole campaign — every
    // command of every stream — comes out byte-identical.
    ASSERT_EQ(stream_bytes(scenario::materialize(a)), stream_bytes(scenario::materialize(b)))
        << "seed " << seed;
  }
}

TEST(ScenarioGenerator, DistinctSeedsExploreDistinctSpecs) {
  std::set<std::string> distinct;
  for (unsigned i = 0; i < kSeedCount; ++i) {
    distinct.insert(spec_bytes(scenario::generate(scenario::derive_seed(kSeedBase, i))));
  }
  // Not a tautology: a broken seed chain collapses every draw to one spec.
  EXPECT_GT(distinct.size(), kSeedCount / 2);
}

TEST(ScenarioGenerator, SpecsRoundTripThroughJsonAndSchema) {
  json::Schema schema = scenario::spec_schema();
  for (unsigned i = 0; i < kSeedCount; ++i) {
    std::uint64_t seed = scenario::derive_seed(kSeedBase + 1, i);
    scenario::ScenarioSpec spec = scenario::generate(seed);
    json::Value doc = scenario::spec_to_json(spec);
    std::vector<json::SchemaIssue> errors = schema.validate(doc);
    EXPECT_TRUE(errors.empty()) << "seed " << seed << ": " << errors.front().message;
    EXPECT_EQ(scenario::spec_from_json(json::parse(json::serialize(doc))), spec)
        << "seed " << seed;
  }
}

TEST(ScenarioGenerator, MutantsStayValid) {
  json::Schema spec_schema = scenario::spec_schema();
  json::Schema config_schema = core::config_schema();
  scenario::ScenarioSpec parent = scenario::generate(kSeedBase + 2);
  for (unsigned i = 0; i < kSeedCount; ++i) {
    std::uint64_t seed = scenario::derive_seed(kSeedBase + 3, i);
    scenario::ScenarioSpec mutant = scenario::mutate(parent, seed);
    json::Value doc = scenario::spec_to_json(mutant);
    std::vector<json::SchemaIssue> errors = spec_schema.validate(doc);
    ASSERT_TRUE(errors.empty()) << "seed " << seed << ": " << errors.front().message;

    // Every mutant must materialize, and even its deliberately-perturbed
    // config must stay inside the config schema rabit_validate enforces —
    // perturbations break lint rules (CFG1-11), never the document shape.
    scenario::MaterializedScenario mat = scenario::materialize(mutant);
    EXPECT_FALSE(mat.streams.empty());
    std::vector<json::SchemaIssue> config_errors =
        config_schema.validate(core::config_to_json(mat.linted_config));
    EXPECT_TRUE(config_errors.empty()) << "seed " << seed << ": " << config_errors.front().message;
    parent = mutant;  // chain, like the fuzzer's mutation pool does
  }
}

TEST(ScenarioGenerator, EveryPerturbKeepsConfigSchemaValid) {
  json::Schema config_schema = core::config_schema();
  for (int p = 0; p <= static_cast<int>(scenario::ConfigPerturb::FatalRecoveryPolicy); ++p) {
    scenario::ScenarioSpec spec = scenario::generate(kSeedBase + 4);
    spec.perturb = static_cast<scenario::ConfigPerturb>(p);
    scenario::MaterializedScenario mat = scenario::materialize(spec);
    std::vector<json::SchemaIssue> errors =
        config_schema.validate(core::config_to_json(mat.linted_config));
    EXPECT_TRUE(errors.empty()) << "perturb " << p << ": " << errors.front().message;
  }
}

TEST(ScenarioOracles, CleanWorkflowsRunAlertFree) {
  // The false_alarm oracle's premise, pinned directly: unmutated testbed,
  // hotplate, and park workflows pass the runtime checker without alerts.
  for (scenario::WorkflowKind kind :
       {scenario::WorkflowKind::Testbed, scenario::WorkflowKind::Hotplate,
        scenario::WorkflowKind::Park}) {
    scenario::ScenarioSpec spec;
    spec.seed = kSeedBase + 5;
    spec.variant = core::Variant::Modified;
    spec.streams.push_back({kind, scenario::derive_seed(spec.seed, 100), 0, 0});
    scenario::ScenarioResult result = scenario::run_scenario(spec);
    EXPECT_TRUE(result.verdict.alerts.empty()) << scenario::describe(spec);
    EXPECT_TRUE(result.verdict.oracle_failures.empty()) << scenario::describe(spec);
  }
}

TEST(ScenarioOracles, GeneratedScenariosRaiseNoOracleFailures) {
  // A miniature of the nightly fuzz job: whatever the generator emits, the
  // soundness oracles stay quiet (genuine findings land in corpus/ instead).
  for (unsigned i = 0; i < kSeedCount; ++i) {
    std::uint64_t seed = scenario::derive_seed(kSeedBase + 6, i);
    scenario::ScenarioSpec spec = scenario::generate(seed);
    scenario::ScenarioResult result = scenario::run_scenario(spec);
    EXPECT_TRUE(result.verdict.oracle_failures.empty())
        << "rabit_fuzz --replay-seed " << seed << " (oracle "
        << result.verdict.oracle_failures.front() << ")";
  }
}

TEST(ScenarioShrink, RequiresFailingVerdict) {
  scenario::ScenarioSpec spec = scenario::generate(kSeedBase + 7);
  scenario::ScenarioVerdict clean;  // no oracle failures
  EXPECT_THROW((void)scenario::shrink(spec, clean), std::invalid_argument);
}

TEST(ScenarioShrink, ResultStillSatisfiesPredicateAndNeverGrows) {
  // The corpus cascade scenario: a mutated rad stream whose door-close is
  // G2-blocked, leaving the door open for a later G9. Shrinking toward
  // "still raises G9" must keep that property, never increase weight, and
  // terminate at a 1-minimal spec.
  scenario::ScenarioSpec spec = scenario::spec_from_json(json::parse(
      R"({"seed":-9016627859025610201,"variant":"modified_with_sim",
          "halt_on_alert":false,
          "streams":[{"workflow":"rad_dosing","seed":1524877270792533242,
                      "mutations":1},
                     {"workflow":"testbed","seed":7,"mutations":0}]})"));
  auto raises_g9 = [](const scenario::ScenarioVerdict& v) {
    for (const std::string& a : v.alerts) {
      if (a.size() >= 2 && a.compare(a.size() - 2, 2, "G9") == 0) return true;
    }
    return false;
  };
  scenario::ScenarioVerdict original = scenario::run_scenario(spec).verdict;
  ASSERT_TRUE(raises_g9(original));

  scenario::ShrinkResult shrunk = scenario::shrink_while(spec, original, raises_g9);
  EXPECT_TRUE(raises_g9(shrunk.verdict));
  EXPECT_LE(scenario::weight(shrunk.spec), scenario::weight(spec));
  EXPECT_GT(shrunk.attempts, 0u);
  // 1-minimality: no single candidate move below the fixpoint still raises
  // G9 — re-shrinking the result is a no-op.
  scenario::ShrinkResult again = scenario::shrink_while(shrunk.spec, shrunk.verdict, raises_g9);
  EXPECT_EQ(again.spec, shrunk.spec);
  // The two-stream scaffold is shed: the cascade reproduces solo.
  EXPECT_EQ(shrunk.spec.streams.size(), 1u);
}

TEST(ScenarioCoverage, FixedBudgetClearsTheGate) {
  // The acceptance gate from the tool, pinned as a unit test: a fixed seed
  // and iteration budget must reach >= 90% of the measured reachable map
  // (the dirty_v3 steering gene lifted the 400-iteration floor to 42/44).
  scenario::FuzzOptions options;
  options.seed = 1;
  options.iterations = 400;
  scenario::FuzzReport report = scenario::fuzz(options);
  EXPECT_TRUE(report.repros.empty());
  EXPECT_GE(report.coverage_fraction(), 0.9)
      << report.coverage.size() << " keys of " << scenario::reachable_coverage().size();
  // Coverage growth is monotone and actually grows.
  for (std::size_t i = 1; i < report.growth.size(); ++i) {
    EXPECT_GE(report.growth[i].second, report.growth[i - 1].second);
  }
  EXPECT_GE(report.growth.back().second, report.growth.front().second);
}

TEST(ScenarioCorpus, VerdictJsonRoundTrips) {
  scenario::ScenarioSpec spec = scenario::generate(kSeedBase + 8);
  scenario::ScenarioVerdict verdict = scenario::run_scenario(spec).verdict;
  scenario::ScenarioVerdict back =
      scenario::verdict_from_json(json::parse(json::serialize(scenario::verdict_to_json(verdict))));
  EXPECT_EQ(back, verdict);

  scenario::CorpusEntry entry{"round_trip", spec, verdict};
  scenario::CorpusEntry entry_back = scenario::corpus_entry_from_json(
      json::parse(json::serialize(scenario::corpus_entry_to_json(entry))));
  EXPECT_EQ(entry_back.name, entry.name);
  EXPECT_EQ(entry_back.spec, entry.spec);
  EXPECT_EQ(entry_back.verdict, entry.verdict);
}

}  // namespace
}  // namespace rabit
