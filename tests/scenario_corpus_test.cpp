// Corpus replay gate: every checked-in corpus/ entry re-runs under ctest
// with its recorded verdict pinned byte-for-byte. A drift here means either
// a behavior change the entry was checked in to guard against, or a genuine
// nondeterminism bug — both merge-blocking. RABIT_CORPUS_DIR is injected by
// tests/CMakeLists.txt and points at the source tree's corpus/ directory.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "scenario/fuzz.hpp"

#ifndef RABIT_CORPUS_DIR
#error "tests/CMakeLists.txt must define RABIT_CORPUS_DIR"
#endif

namespace rabit {
namespace {

std::vector<scenario::CorpusEntry> corpus() {
  return scenario::load_corpus_dir(RABIT_CORPUS_DIR);
}

TEST(ScenarioCorpus, DirectoryIsNotEmpty) {
  // An empty corpus silently skips every replay below; fail loudly instead.
  EXPECT_GE(corpus().size(), 5u) << "corpus dir: " << RABIT_CORPUS_DIR;
}

TEST(ScenarioCorpus, EveryEntryReplaysToItsPinnedVerdict) {
  for (const scenario::CorpusEntry& entry : corpus()) {
    scenario::ScenarioResult result = scenario::run_scenario(entry.spec);
    EXPECT_EQ(result.verdict, entry.verdict)
        << entry.name << " drifted — replay with: rabit_fuzz --replay "
        << RABIT_CORPUS_DIR << "/" << entry.name << ".json";
  }
}

TEST(ScenarioCorpus, ReplayIsDeterministic) {
  // Same spec, two runs, identical verdicts — the determinism the pinning
  // above depends on, checked without reference to the recorded file.
  for (const scenario::CorpusEntry& entry : corpus()) {
    scenario::ScenarioVerdict a = scenario::run_scenario(entry.spec).verdict;
    scenario::ScenarioVerdict b = scenario::run_scenario(entry.spec).verdict;
    EXPECT_EQ(a, b) << entry.name;
  }
}

TEST(ScenarioCorpus, EntriesValidateAgainstSpecSchema) {
  json::Schema schema = scenario::spec_schema();
  for (const scenario::CorpusEntry& entry : corpus()) {
    std::vector<json::SchemaIssue> errors = schema.validate(scenario::spec_to_json(entry.spec));
    EXPECT_TRUE(errors.empty()) << entry.name << ": " << errors.front().message;
  }
}

}  // namespace
}  // namespace rabit
