// Tests for rabit::analysis interference — stream effect summaries, the
// I1..I6 pairwise/campaign checks, and the fleet shared-lab campaign runner
// they are validated against.
#include <gtest/gtest.h>

#include <set>

#include "analysis/interference.hpp"
#include "bugs/bugs.hpp"
#include "fleet/fleet.hpp"
#include "script/workflows.hpp"
#include "sim/deck.hpp"

using namespace rabit;
using analysis::AnalysisReport;
using analysis::CampaignStream;
using analysis::Interval;
using analysis::Severity;
using analysis::StreamSummary;
using bugs::cmd;

namespace {

core::EngineConfig testbed_config() {
  sim::LabBackend backend(sim::testbed_profile());
  sim::build_hein_testbed_deck(backend);
  return core::config_from_backend(backend, core::Variant::Modified);
}

const analysis::Diagnostic* find_rule(const AnalysisReport& report, std::string_view rule) {
  for (const analysis::Diagnostic& d : report.diagnostics) {
    if (d.rule == rule) return &d;
  }
  return nullptr;
}

bool has_subject(const analysis::Diagnostic& d, std::string_view subject) {
  for (const std::string& s : d.subjects) {
    if (s == subject) return true;
  }
  return false;
}

/// First I-family diagnostic whose subjects name `device`, or nullptr.
const analysis::Diagnostic* find_covering(const AnalysisReport& report,
                                          std::string_view device) {
  for (const analysis::Diagnostic& d : report.diagnostics) {
    if (!d.rule.empty() && d.rule[0] == 'I' && has_subject(d, device)) return &d;
  }
  return nullptr;
}

json::Object num_args(std::initializer_list<std::pair<const char*, double>> kv) {
  json::Object args;
  for (const auto& [k, v] : kv) args[k] = v;
  return args;
}

}  // namespace

// --- interval semantics -------------------------------------------------------

TEST(Interference, IntervalAccumulateSumsAndUniteHulls) {
  Interval sum;
  EXPECT_FALSE(sum.set);
  sum.accumulate(1.0, 2.0);
  sum.accumulate(3.0, 5.0);
  EXPECT_TRUE(sum.set);
  EXPECT_DOUBLE_EQ(sum.lo, 4.0);
  EXPECT_DOUBLE_EQ(sum.hi, 7.0);

  Interval hull;
  hull.unite(2.0, 2.0);
  hull.unite(-1.0, 0.5);
  EXPECT_DOUBLE_EQ(hull.lo, -1.0);
  EXPECT_DOUBLE_EQ(hull.hi, 2.0);

  EXPECT_EQ(Interval{}.format(), "[]");
  EXPECT_EQ(hull.format(), "[-1, 2]");
  Interval point;
  point.accumulate(3.0, 3.0);
  EXPECT_EQ(point.format(), "3");
}

TEST(Interference, IntervalFirstWriteSetsRegardlessOfOperator) {
  // On an unset interval both operators behave identically: they install the
  // first contribution verbatim (no phantom [0, 0] summand / hull member).
  Interval via_sum;
  via_sum.accumulate(-2.0, 3.0);
  Interval via_union;
  via_union.unite(-2.0, 3.0);
  EXPECT_TRUE(via_sum.same_as(via_union));
  EXPECT_DOUBLE_EQ(via_sum.lo, -2.0);
  EXPECT_DOUBLE_EQ(via_sum.hi, 3.0);

  // Reversed bounds are normalised on entry, for either operator.
  Interval swapped;
  swapped.accumulate(5.0, 1.0);
  EXPECT_DOUBLE_EQ(swapped.lo, 1.0);
  EXPECT_DOUBLE_EQ(swapped.hi, 5.0);
  Interval swapped_union;
  swapped_union.unite(4.0, -4.0);
  EXPECT_DOUBLE_EQ(swapped_union.lo, -4.0);
  EXPECT_DOUBLE_EQ(swapped_union.hi, 4.0);
}

TEST(Interference, IntervalMixingSumAndUnionIsOrderDependent) {
  // accumulate (Σ) and unite (∪) do not commute; a caller that mixes them on
  // one interval gets whichever lattice the *last* operator implies. The test
  // pins the exact behaviour so an accidental mix in the analyzer shows up as
  // a differential failure rather than a silent near-miss.
  Interval sum_then_union;
  sum_then_union.accumulate(1.0, 2.0);
  sum_then_union.accumulate(1.0, 2.0);  // running sum: [2, 4]
  sum_then_union.unite(10.0, 11.0);     // hull with [10, 11]: [2, 11]
  EXPECT_DOUBLE_EQ(sum_then_union.lo, 2.0);
  EXPECT_DOUBLE_EQ(sum_then_union.hi, 11.0);

  Interval union_then_sum;
  union_then_sum.unite(1.0, 2.0);
  union_then_sum.unite(10.0, 11.0);    // hull: [1, 11]
  union_then_sum.accumulate(1.0, 2.0);  // sum shifts the hull: [2, 13]
  EXPECT_DOUBLE_EQ(union_then_sum.lo, 2.0);
  EXPECT_DOUBLE_EQ(union_then_sum.hi, 13.0);
  EXPECT_FALSE(sum_then_union.same_as(union_then_sum));
}

TEST(Interference, IntervalSameAsDistinguishesNeverWrittenFromZero) {
  // A never-written interval and an explicit [0, 0] contribution are
  // different facts: "no consumable touched" vs "touched with zero net
  // delta". same_as must keep them apart (the I6 budget check relies on it),
  // and format renders them differently.
  Interval never;
  Interval zero;
  zero.accumulate(0.0, 0.0);
  EXPECT_FALSE(never.set);
  EXPECT_TRUE(zero.set);
  EXPECT_FALSE(never.same_as(zero));
  EXPECT_FALSE(zero.same_as(never));
  EXPECT_TRUE(never.same_as(Interval{}));
  EXPECT_EQ(never.format(), "[]");
  EXPECT_EQ(zero.format(), "0");

  // Once written, a zero-delta interval participates in sums normally.
  zero.accumulate(-1.0, 1.0);
  EXPECT_DOUBLE_EQ(zero.lo, -1.0);
  EXPECT_DOUBLE_EQ(zero.hi, 1.0);
}

// --- phase 1: stream summaries ------------------------------------------------

TEST(Interference, SummaryCapturesFootprintsSetpointsAndDeltas) {
  core::EngineConfig config = testbed_config();
  std::vector<dev::Command> commands = {
      cmd("hotplate", "set_temperature", num_args({{"celsius", 50.0}})),
      cmd("hotplate", "stir", num_args({{"rpm", 400.0}})),
      cmd("syringe_pump", "draw_solvent", num_args({{"volume", 2.0}})),
  };
  json::Object dose = num_args({{"volume", 2.0}});
  dose["target"] = std::string("vial_1");
  commands.push_back(cmd("syringe_pump", "dose_solvent", std::move(dose)));

  StreamSummary sum = analysis::summarize_stream(config, "s", commands);
  EXPECT_EQ(sum.name, "s");
  ASSERT_EQ(sum.devices.count("hotplate"), 1u);
  EXPECT_EQ(sum.devices.at("hotplate").commands, 2u);
  EXPECT_EQ(sum.devices.at("hotplate").actions,
            (std::set<std::string>{"set_temperature", "stir"}));

  const Interval& target_c = sum.setpoints.at("hotplate").at("targetC");
  EXPECT_DOUBLE_EQ(target_c.lo, 50.0);
  EXPECT_DOUBLE_EQ(target_c.hi, 50.0);
  EXPECT_DOUBLE_EQ(sum.setpoints.at("hotplate").at("stirRpm").lo, 400.0);

  // draw +2 then dose -2: the pump's held volume nets to zero, the target
  // vial gains the dose.
  EXPECT_DOUBLE_EQ(sum.volume_delta_ml.at("syringe_pump").lo, 0.0);
  EXPECT_DOUBLE_EQ(sum.volume_delta_ml.at("syringe_pump").hi, 0.0);
  EXPECT_DOUBLE_EQ(sum.volume_delta_ml.at("vial_1").lo, 2.0);
  // The dose target is a shared entity.
  EXPECT_EQ(sum.entities.count("vial_1"), 1u);
}

TEST(Interference, ScriptSummaryCoversWorkflowArmsAndIgnores) {
  core::EngineConfig config = testbed_config();
  StreamSummary sum =
      analysis::summarize_script(config, "wf", script::testbed_workflow_source());
  EXPECT_FALSE(sum.truncated);
  EXPECT_EQ(sum.devices.count("viperx"), 1u);
  EXPECT_EQ(sum.devices.count("ned2"), 1u);
  EXPECT_EQ(sum.devices.count("dosing_device"), 1u);
  // Both arms moved, so both have occupancy envelopes.
  EXPECT_EQ(sum.arm_envelopes.count("viperx"), 1u);
  EXPECT_EQ(sum.arm_envelopes.count("ned2"), 1u);
  // Picking from the rack is a deliberate grid interaction; an arm is never
  // its own deliberate interaction.
  ASSERT_EQ(sum.ignores.count("viperx"), 1u);
  EXPECT_EQ(sum.ignores.at("viperx").count("grid"), 1u);
  EXPECT_EQ(sum.ignores.at("viperx").count("viperx"), 0u);
  // The workflow doses 5 mg into whatever sits in the dosing receptacle.
  EXPECT_FALSE(sum.mass_delta_mg.empty());
}

// --- phase 2: the I-diagnostics -----------------------------------------------

TEST(Interference, I1FiresOnSameDeviceAndSharedEntity) {
  core::EngineConfig config = testbed_config();
  std::vector<CampaignStream> streams = {
      {"a", {cmd("hotplate", "set_temperature", num_args({{"celsius", 50.0}}))}},
      {"b", {cmd("hotplate", "stop", {})}},
  };
  AnalysisReport report = analysis::analyze_campaign(config, streams);
  const analysis::Diagnostic* d = find_rule(report, "I1");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_TRUE(has_subject(*d, "hotplate"));

  // Entity race: one stream picks the vial through a site, the other
  // commands the vial directly. No common *device*, but a common entity.
  json::Object pick;
  pick["site"] = std::string("grid.NW");
  std::vector<CampaignStream> entity_streams = {
      {"arm", {cmd("viperx", "pick_object", std::move(pick))}},
      {"prep", {cmd("vial_1", "decap", {})}},
  };
  AnalysisReport entity_report = analysis::analyze_campaign(config, entity_streams);
  const analysis::Diagnostic* covering = find_covering(entity_report, "vial_1");
  ASSERT_NE(covering, nullptr);
  EXPECT_TRUE(has_subject(*covering, "viperx"));
}

TEST(Interference, I2FiresOnOverlappingArmEnvelopes) {
  core::EngineConfig config = testbed_config();
  json::Object pick_a;
  pick_a["site"] = std::string("grid.NW");
  json::Object pick_b;
  pick_b["site"] = std::string("grid.NW");
  std::vector<CampaignStream> streams = {
      {"a", {cmd("viperx", "pick_object", std::move(pick_a))}},
      {"b", {cmd("ned2", "pick_object", std::move(pick_b))}},
  };
  AnalysisReport report = analysis::analyze_campaign(config, streams);
  const analysis::Diagnostic* d = find_rule(report, "I2");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_TRUE(has_subject(*d, "viperx"));
  EXPECT_TRUE(has_subject(*d, "ned2"));
  // The testbed multiplexes motion, so the same pair also races the
  // exclusive-motion token (I1).
  ASSERT_NE(find_rule(report, "I1"), nullptr);
}

TEST(Interference, I3FiresOnSummedCapacityOverflow) {
  core::EngineConfig config = testbed_config();
  // Each stream alone adds 8 mL to the 15 mL vial — fine solo, 16 mL summed.
  std::vector<CampaignStream> streams = {
      {"a", {cmd("vial_1", "add_liquid", num_args({{"volume", 8.0}}))}},
      {"b", {cmd("vial_1", "add_liquid", num_args({{"volume", 8.0}}))}},
  };
  AnalysisReport report = analysis::analyze_campaign(config, streams);
  const analysis::Diagnostic* d = find_rule(report, "I3");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_TRUE(has_subject(*d, "vial_1"));

  // A single stream adding 8 mL twice is the single-stream checks' business:
  // no I3 without at least two contributing streams.
  std::vector<CampaignStream> solo = {
      {"a",
       {cmd("vial_1", "add_liquid", num_args({{"volume", 8.0}})),
        cmd("vial_1", "add_liquid", num_args({{"volume", 8.0}}))}},
  };
  EXPECT_EQ(find_rule(analysis::analyze_campaign(config, solo), "I3"), nullptr);
}

TEST(Interference, I4FiresOnConflictingSetpoints) {
  core::EngineConfig config = testbed_config();
  std::vector<CampaignStream> streams = {
      {"a", {cmd("hotplate", "set_temperature", num_args({{"celsius", 50.0}}))}},
      {"b", {cmd("hotplate", "set_temperature", num_args({{"celsius", 80.0}}))}},
  };
  AnalysisReport report = analysis::analyze_campaign(config, streams);
  const analysis::Diagnostic* d = find_rule(report, "I4");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_TRUE(has_subject(*d, "hotplate"));

  // Identical writes commute: no I4.
  std::vector<CampaignStream> same = {
      {"a", {cmd("hotplate", "set_temperature", num_args({{"celsius", 50.0}}))}},
      {"b", {cmd("hotplate", "set_temperature", num_args({{"celsius", 50.0}}))}},
  };
  EXPECT_EQ(find_rule(analysis::analyze_campaign(config, same), "I4"), nullptr);
}

TEST(Interference, I5FiresOnAsymmetricDeliberateInteraction) {
  core::EngineConfig config = testbed_config();
  // Stream 'arm' opens the dosing door and reaches inside — a declared
  // deliberate interaction. Stream 'doser' drives the same station with no
  // such declaration.
  json::Object open_door;
  open_door["state"] = std::string("open");
  json::Object pick;
  pick["site"] = std::string("dosing_device");
  std::vector<CampaignStream> streams = {
      {"arm",
       {cmd("dosing_device", "set_door", std::move(open_door)),
        cmd("viperx", "pick_object", std::move(pick))}},
      {"doser", {cmd("dosing_device", "run_action", num_args({{"delay", 0.0}, {"quantity", 2.0}}))}},
  };
  AnalysisReport report = analysis::analyze_campaign(config, streams);
  const analysis::Diagnostic* d = find_rule(report, "I5");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_TRUE(has_subject(*d, "viperx"));
  EXPECT_TRUE(has_subject(*d, "dosing_device"));
}

TEST(Interference, I6FiresOnCampaignWideThresholdExhaustion) {
  core::EngineConfig config = testbed_config();
  // The stock dosing device has no G11 threshold; give it one so each 3 mg
  // dose passes rule 11 solo while the campaign total of 6 mg exceeds it.
  for (core::DeviceMeta& d : config.devices) {
    if (d.id == "dosing_device") d.thresholds.push_back({"run_action", "quantity", 5.0});
  }
  std::vector<CampaignStream> streams = {
      {"a", {cmd("dosing_device", "run_action", num_args({{"delay", 0.0}, {"quantity", 3.0}}))}},
      {"b", {cmd("dosing_device", "run_action", num_args({{"delay", 0.0}, {"quantity", 3.0}}))}},
  };
  AnalysisReport report = analysis::analyze_campaign(config, streams);
  const analysis::Diagnostic* d = find_rule(report, "I6");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_TRUE(has_subject(*d, "dosing_device"));
}

TEST(Interference, DisjointStreamsAreClean) {
  core::EngineConfig config = testbed_config();
  std::vector<CampaignStream> streams = {
      {"a", {cmd("hotplate", "set_temperature", num_args({{"celsius", 50.0}}))}},
      {"b", {cmd("thermoshaker", "shake", num_args({{"rpm", 300.0}}))}},
  };
  AnalysisReport report = analysis::analyze_campaign(config, streams);
  EXPECT_TRUE(report.diagnostics.empty())
      << (report.diagnostics.empty() ? "" : report.diagnostics.front().format());
  EXPECT_FALSE(report.truncated);
}

TEST(Interference, SubjectsSurviveJsonRoundTrip) {
  core::EngineConfig config = testbed_config();
  std::vector<CampaignStream> streams = {
      {"a", {cmd("hotplate", "stop", {})}},
      {"b", {cmd("hotplate", "stop", {})}},
  };
  AnalysisReport report = analysis::analyze_campaign(config, streams);
  ASSERT_FALSE(report.diagnostics.empty());
  json::Value doc = analysis::report_to_json(report);
  const json::Array& diags = doc.as_object().at("diagnostics").as_array();
  ASSERT_FALSE(diags.empty());
  const json::Array& subjects = diags[0].as_object().at("subjects").as_array();
  ASSERT_EQ(subjects.size(), 1u);
  EXPECT_EQ(subjects[0].as_string(), "hotplate");
}

TEST(Interference, TruncatedStreamSummaryPropagates) {
  core::EngineConfig config = testbed_config();
  // A statically unresolvable motion target widens the arm to the whole
  // workspace and marks the summary truncated.
  const char* source =
      "let p = camera.measure_solubility(target=vial_1)\n"
      "viperx.move_to(position=[p, p, p])\n";
  StreamSummary sum = analysis::summarize_script(config, "blurry", source);
  EXPECT_TRUE(sum.truncated);
  EXPECT_EQ(sum.arm_envelopes.count("viperx"), 1u);

  AnalysisReport report = analysis::check_interference(config, {sum});
  EXPECT_TRUE(report.truncated);
}

// --- the shared-lab campaign runner -------------------------------------------

TEST(FleetCampaign, CrossStreamAlertsAreClassifiedAndCovered) {
  // Each stream alone is safe: one arm wakes while the other is parked. The
  // shared lab interleaves them, and whichever moves second trips the
  // exclusive-motion rule — an alert that exists only because of the other
  // stream.
  fleet::CampaignSpec spec;
  spec.variant = core::Variant::Modified;
  spec.seed = 7;
  spec.streams = {{"a", {cmd("viperx", "go_home", {})}, ""},
                  {"b", {cmd("ned2", "go_home", {})}, ""}};
  fleet::CampaignReport report = fleet::Fleet::run_campaign(spec);

  EXPECT_EQ(report.commands_checked, 2u);
  EXPECT_EQ(report.schedule.size(), 2u);
  ASSERT_GE(report.alerts.size(), 1u);
  EXPECT_GE(report.cross_stream_alerts(), 1u);
  for (const fleet::CampaignAlert& a : report.alerts) {
    EXPECT_TRUE(a.cross_stream) << a.alert.describe();
  }

  // The static analyzer must cover the runtime alert: some I-diagnostic
  // names the alerting device in its subjects.
  std::vector<CampaignStream> streams;
  for (const fleet::CampaignStreamSpec& s : spec.streams) {
    streams.push_back({s.name, s.commands});
  }
  AnalysisReport static_report = analysis::analyze_campaign(testbed_config(), streams);
  for (const fleet::CampaignAlert& a : report.alerts) {
    EXPECT_NE(find_covering(static_report, a.alert.command.device), nullptr)
        << "no I-diagnostic covers device '" << a.alert.command.device << "'";
  }
}

TEST(FleetCampaign, ScheduleIsDeterministicPerSeed) {
  fleet::CampaignSpec spec;
  spec.seed = 11;
  spec.streams = {{"a", {cmd("hotplate", "stop", {}), cmd("hotplate", "stop", {})}, ""},
                  {"b", {cmd("thermoshaker", "stop", {}), cmd("thermoshaker", "stop", {})}, ""}};
  fleet::CampaignReport first = fleet::Fleet::run_campaign(spec);
  fleet::CampaignReport second = fleet::Fleet::run_campaign(spec);
  EXPECT_EQ(first.schedule, second.schedule);

  spec.seed = 12;
  fleet::CampaignReport reseeded = fleet::Fleet::run_campaign(spec);
  EXPECT_EQ(reseeded.schedule.size(), first.schedule.size());
}

TEST(FleetCampaign, SoloSafeAlertsAreNotCrossStream) {
  // A stream that alerts on its own (closed-door entry) must not be
  // classified cross-stream just because another stream exists.
  json::Object pick;
  pick["site"] = std::string("dosing_device");
  fleet::CampaignSpec spec;
  spec.seed = 3;
  spec.streams = {{"clumsy", {cmd("viperx", "pick_object", std::move(pick))}, ""},
                  {"bystander", {cmd("thermoshaker", "stop", {})}, ""}};
  fleet::CampaignReport report = fleet::Fleet::run_campaign(spec);
  ASSERT_GE(report.alerts.size(), 1u);
  for (const fleet::CampaignAlert& a : report.alerts) {
    EXPECT_FALSE(a.cross_stream) << a.alert.describe();
  }
}

// --- campaign JSON loader -----------------------------------------------------

TEST(FleetCampaign, LoadCampaignParsesFullDocument) {
  fleet::CampaignSpec spec = fleet::load_campaign(json::parse(R"j({
    "seed": 9,
    "variant": "modified+sim",
    "halt_on_alert": true,
    "streams": [
      {"name": "cmds",
       "commands": [{"device": "hotplate", "action": "stir", "args": {"rpm": 300}}]},
      {"script": "viperx.go_home()\n"}
    ]
  })j"));
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_EQ(spec.variant, core::Variant::ModifiedWithSim);
  EXPECT_TRUE(spec.halt_on_alert);
  ASSERT_EQ(spec.streams.size(), 2u);
  EXPECT_EQ(spec.streams[0].name, "cmds");
  ASSERT_EQ(spec.streams[0].commands.size(), 1u);
  EXPECT_EQ(spec.streams[0].commands[0].device, "hotplate");
  EXPECT_EQ(spec.streams[0].commands[0].action, "stir");
  // Unnamed streams get a positional default.
  EXPECT_EQ(spec.streams[1].name, "stream-1");
  EXPECT_FALSE(spec.streams[1].script.empty());
}

TEST(FleetCampaign, LoadCampaignRejectsMalformedDocuments) {
  EXPECT_THROW(fleet::load_campaign(json::parse(R"j([1, 2])j")), std::runtime_error);
  EXPECT_THROW(fleet::load_campaign(json::parse(R"j({"streams": []})j")), std::runtime_error);
  EXPECT_THROW(fleet::load_campaign(json::parse(R"j({"streams": [{"name": "x"}]})j")),
               std::runtime_error);
  EXPECT_THROW(
      fleet::load_campaign(json::parse(
          R"j({"streams": [{"commands": [{"device": "hotplate"}]}]})j")),
      std::runtime_error);
  EXPECT_THROW(fleet::load_campaign(json::parse(
                   R"j({"variant": "turbo", "streams": [{"script": "x()"}]})j")),
               std::runtime_error);
}
