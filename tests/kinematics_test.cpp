#include "kinematics/kinematics.hpp"

#include <gtest/gtest.h>

#include <random>

namespace rabit::kin {
namespace {

using geom::Transform;
using geom::Vec3;

ArmModel test_arm() { return make_ur3e(Transform::translation(Vec3(0, 0, 0.02))); }

TEST(ArmModel, ConstructionValidation) {
  std::array<DhParam, kNumJoints> dh{};
  std::array<JointLimit, kNumJoints> limits{};
  limits.fill(JointLimit{-1, 1});
  EXPECT_THROW(ArmModel("bad", dh, limits, Transform(), 0.0), std::invalid_argument);
  limits[2] = JointLimit{1, -1};
  EXPECT_THROW(ArmModel("bad", dh, limits, Transform(), 0.05), std::invalid_argument);
}

TEST(ArmModel, ForwardAtZeroIsDeterministic) {
  ArmModel arm = test_arm();
  JointVector zeros{};
  Vec3 p1 = arm.forward(zeros);
  Vec3 p2 = arm.forward(zeros);
  EXPECT_TRUE(geom::approx_equal(p1, p2));
}

TEST(ArmModel, BaseTransformShiftsWorkspace) {
  ArmModel at_origin = make_ur3e(Transform());
  ArmModel shifted = make_ur3e(Transform::translation(Vec3(1, 2, 3)));
  JointVector q = home_configuration();
  EXPECT_TRUE(
      geom::approx_equal(shifted.forward(q), at_origin.forward(q) + Vec3(1, 2, 3), 1e-9));
}

TEST(ArmModel, LinkPointsChainIsConnected) {
  ArmModel arm = test_arm();
  JointVector q = home_configuration();
  auto pts = arm.link_points(q);
  ASSERT_EQ(pts.size(), kNumJoints + 1);
  // First point is the base, last is the end effector.
  EXPECT_TRUE(geom::approx_equal(pts.front(), Vec3(0, 0, 0.02)));
  EXPECT_TRUE(geom::approx_equal(pts.back(), arm.forward(q)));
  auto segs = arm.link_segments(q);
  ASSERT_EQ(segs.size(), kNumJoints);
  for (std::size_t i = 0; i < segs.size(); ++i) {
    EXPECT_TRUE(geom::approx_equal(segs[i].a, pts[i]));
    EXPECT_TRUE(geom::approx_equal(segs[i].b, pts[i + 1]));
  }
}

TEST(ArmModel, WithinLimits) {
  ArmModel arm = test_arm();
  EXPECT_TRUE(arm.within_limits(home_configuration()));
  JointVector q{};
  q[0] = 100.0;
  EXPECT_FALSE(arm.within_limits(q));
}

TEST(ArmModel, ReachabilityEnvelope) {
  ArmModel arm = test_arm();
  EXPECT_TRUE(arm.reachable(Vec3(0.3, 0.1, 0.2)));
  EXPECT_FALSE(arm.reachable(Vec3(0.35, 0.3, 2.0)));  // the paper's "very high" target
  EXPECT_FALSE(arm.reachable(Vec3(5, 0, 0)));
}

TEST(ArmModel, InverseOutOfReachReportsError) {
  ArmModel arm = test_arm();
  IkResult r = arm.inverse(Vec3(0, 0, 5), home_configuration());
  EXPECT_FALSE(r.joints.has_value());
  EXPECT_EQ(r.error, IkError::OutOfReach);
  EXPECT_EQ(to_string(r.error), "target out of reach");
}

struct IkCase {
  const char* arm;
  Vec3 target;
};

class IkRoundTrip : public ::testing::TestWithParam<IkCase> {};

TEST_P(IkRoundTrip, SolvesAndForwardMatches) {
  const IkCase& c = GetParam();
  Transform base = Transform::translation(Vec3(0, 0, 0.02));
  ArmModel arm = std::string(c.arm) == "ur3e"     ? make_ur3e(base)
                 : std::string(c.arm) == "ur5e"   ? make_ur5e(base)
                 : std::string(c.arm) == "viperx" ? make_viperx300(base)
                                                  : make_ned2(base);
  IkResult r = arm.inverse(c.target, home_configuration());
  ASSERT_TRUE(r.joints.has_value())
      << arm.name() << " failed: " << to_string(r.error) << " residual " << r.residual;
  EXPECT_LT(arm.forward(*r.joints).distance_to(c.target), 5e-3);
  EXPECT_TRUE(arm.within_limits(*r.joints));
}

INSTANTIATE_TEST_SUITE_P(
    DeckTargets, IkRoundTrip,
    ::testing::Values(IkCase{"ur3e", Vec3(0.30, 0.30, 0.11)},   // grid
                      IkCase{"ur3e", Vec3(0.0, 0.45, 0.10)},    // dosing device
                      IkCase{"ur3e", Vec3(-0.35, 0.25, 0.16)},  // hotplate
                      IkCase{"ur3e", Vec3(-0.45, 0.0, 0.10)},   // centrifuge
                      IkCase{"ur3e", Vec3(0.35, -0.25, 0.14)},  // thermoshaker
                      IkCase{"viperx", Vec3(0.30, 0.30, 0.11)},
                      IkCase{"viperx", Vec3(0.0, 0.45, 0.10)},
                      IkCase{"viperx", Vec3(-0.35, 0.25, 0.30)},
                      IkCase{"viperx", Vec3(0.0, 0.45, 0.32)},
                      IkCase{"ned2", Vec3(0.25, 0.15, 0.15)},
                      IkCase{"ned2", Vec3(0.30, -0.10, 0.20)},
                      IkCase{"ur5e", Vec3(0.5, 0.3, 0.3)}));

/// Property: random reachable targets solve, and forward kinematics lands on
/// them within tolerance.
class IkProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(IkProperty, RandomReachableTargets) {
  std::mt19937 rng(GetParam());
  ArmModel arm = make_viperx300(Transform::translation(Vec3(0, 0, 0.02)));
  std::uniform_real_distribution<double> radius(0.20, 0.45);
  std::uniform_real_distribution<double> angle(-2.0, 2.0);
  std::uniform_real_distribution<double> height(0.08, 0.40);

  int solved = 0;
  constexpr int kTrials = 25;
  for (int i = 0; i < kTrials; ++i) {
    double r = radius(rng);
    double a = angle(rng);
    Vec3 target(r * std::cos(a), r * std::sin(a), height(rng));
    IkResult result = arm.inverse(target, home_configuration());
    if (result.joints) {
      ++solved;
      EXPECT_LT(arm.forward(*result.joints).distance_to(target), 5e-3);
    }
  }
  // The solver must handle virtually all sane tabletop targets.
  EXPECT_GE(solved, kTrials - 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IkProperty, ::testing::Values(3u, 17u, 99u));

TEST(JointTrajectory, InterpolatesLinearly) {
  JointVector start{};
  JointVector goal{};
  goal.fill(1.0);
  JointTrajectory traj(start, goal, 5);
  EXPECT_EQ(traj.samples(), 5u);
  EXPECT_DOUBLE_EQ(traj.at(0)[0], 0.0);
  EXPECT_DOUBLE_EQ(traj.at(2)[3], 0.5);
  EXPECT_DOUBLE_EQ(traj.at(4)[5], 1.0);
  EXPECT_THROW(static_cast<void>(traj.at(5)), std::out_of_range);
  EXPECT_THROW(JointTrajectory(start, goal, 1), std::invalid_argument);
}

TEST(JointTrajectory, EndEffectorPathEndsAtGoals) {
  ArmModel arm = test_arm();
  JointVector start = home_configuration();
  JointVector goal = sleep_configuration();
  JointTrajectory traj(start, goal, 16);
  geom::Polyline path = traj.end_effector_path(arm);
  ASSERT_EQ(path.size(), 16u);
  EXPECT_TRUE(geom::approx_equal(path.points().front(), arm.forward(start), 1e-9));
  EXPECT_TRUE(geom::approx_equal(path.points().back(), arm.forward(goal), 1e-9));
}

TEST(Presets, ReachOrdering) {
  // UR5e reaches farther than UR3e; Ned2 is the smallest of the testbed pair.
  Transform base;
  EXPECT_GT(make_ur5e(base).max_reach(), make_ur3e(base).max_reach());
  EXPECT_GT(make_viperx300(base).max_reach(), make_ned2(base).max_reach());
}

TEST(Presets, DistinctNames) {
  Transform base;
  EXPECT_EQ(make_ur3e(base).name(), "UR3e");
  EXPECT_EQ(make_ur5e(base).name(), "UR5e");
  EXPECT_EQ(make_viperx300(base).name(), "ViperX-300");
  EXPECT_EQ(make_ned2(base).name(), "Ned2");
}

}  // namespace
}  // namespace rabit::kin
