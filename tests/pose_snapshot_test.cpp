// Epoch-versioned pose snapshots (sim/pose_board) and their fleet consumer:
// seqlock epoch monotonicity, torn-read-freedom under concurrent
// publish/read (the TSan target), the coordination-path fallback for
// hand-built plans no certificate covers, the frozen-board soundness
// regression, and the per-shard observability the sharded runner exports.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "analysis/shard_plan.hpp"
#include "bugs/bugs.hpp"
#include "fleet/fleet.hpp"
#include "obs/obs.hpp"
#include "sim/deck.hpp"
#include "sim/pose_board.hpp"

using namespace rabit;
using bugs::cmd;

namespace {

json::Object num_args(std::initializer_list<std::pair<const char*, double>> kv) {
  json::Object args;
  for (const auto& [k, v] : kv) args[k] = v;
  return args;
}

/// V3 campaign with one live motion stream (viperx) and two station streams:
/// the planner certifies three shards, and the viperx shard's trajectory
/// checks audit the other arms' board snapshots.
fleet::CampaignSpec motion_campaign() {
  fleet::CampaignSpec spec;
  spec.variant = core::Variant::ModifiedWithSim;
  spec.seed = 91;
  spec.streams.push_back({"arm",
                          {cmd("viperx", "go_home"), cmd("viperx", "go_sleep"),
                           cmd("viperx", "go_home"), cmd("viperx", "go_sleep")},
                          ""});
  spec.streams.push_back(
      {"heat",
       {cmd("hotplate", "set_temperature", num_args({{"celsius", 60.0}})),
        cmd("hotplate", "stop")},
       ""});
  spec.streams.push_back(
      {"shake",
       {cmd("thermoshaker", "set_temperature", num_args({{"celsius", 40.0}})),
        cmd("thermoshaker", "stop")},
       ""});
  return spec;
}

analysis::ShardPlan plan_for(const fleet::CampaignSpec& spec) {
  sim::LabBackend backend(sim::testbed_profile(), spec.seed);
  sim::build_hein_testbed_deck(backend);
  core::EngineConfig config = core::config_from_backend(backend, spec.variant);
  std::vector<analysis::CampaignStream> streams;
  for (const fleet::CampaignStreamSpec& s : spec.streams) {
    streams.push_back({s.name, s.commands});
  }
  return analysis::plan_campaign_shards(config, streams);
}

/// The worker-count/shard-order-invariant content of a campaign report.
struct Verdicts {
  std::vector<std::tuple<std::size_t, std::size_t, std::string, bool>> alerts;
  std::size_t commands_checked = 0;

  explicit Verdicts(const fleet::CampaignReport& r) : commands_checked(r.commands_checked) {
    for (const fleet::CampaignAlert& a : r.alerts) {
      alerts.emplace_back(a.stream, a.command_index, a.alert.rule, a.cross_stream);
    }
  }
  bool operator==(const Verdicts& o) const {
    return alerts == o.alerts && commands_checked == o.commands_checked;
  }
};

}  // namespace

// --- the board itself -------------------------------------------------------

TEST(PoseBoard, InitialPosesPublishAtEpochOne) {
  std::map<std::string, geom::Vec3, std::less<>> initial;
  initial["viperx"] = geom::Vec3(0.1, 0.2, 0.3);
  initial["ned2"] = geom::Vec3(-0.4, 0.5, 0.6);
  sim::PoseBoard board(initial);

  ASSERT_FALSE(board.empty());
  EXPECT_EQ(board.arm_ids(), (std::vector<std::string>{"ned2", "viperx"}));

  auto snap = board.read("viperx");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->epoch, 1u);
  EXPECT_DOUBLE_EQ(snap->pose.x, 0.1);
  EXPECT_DOUBLE_EQ(snap->pose.y, 0.2);
  EXPECT_DOUBLE_EQ(snap->pose.z, 0.3);

  EXPECT_FALSE(board.read("ur10").has_value());
  EXPECT_EQ(board.find("ur10"), nullptr);
  EXPECT_TRUE(sim::PoseBoard{}.empty());
}

TEST(PoseBoard, PublishAdvancesEpochMonotonically) {
  std::map<std::string, geom::Vec3, std::less<>> initial;
  initial["viperx"] = geom::Vec3(0.0, 0.0, 0.0);
  sim::PoseBoard board(initial);

  std::uint64_t last = 0;
  for (int i = 1; i <= 17; ++i) {
    board.publish("viperx", geom::Vec3(static_cast<double>(i), 0.0, 0.0));
    auto snap = board.read("viperx");
    ASSERT_TRUE(snap.has_value());
    // One publication = exactly one epoch: initial pose is 1, so the i-th
    // publish lands at epoch i + 1 — never repeated, never reordered.
    EXPECT_EQ(snap->epoch, static_cast<std::uint64_t>(i) + 1);
    EXPECT_GT(snap->epoch, last);
    last = snap->epoch;
    EXPECT_DOUBLE_EQ(snap->pose.x, static_cast<double>(i));
  }
  ASSERT_NE(board.find("viperx"), nullptr);
  EXPECT_EQ(board.find("viperx")->epoch(), 18u);

  // Publishing to an unknown arm is an ignored miss, not a new slot.
  board.publish("ghost", geom::Vec3(1.0, 1.0, 1.0));
  EXPECT_FALSE(board.read("ghost").has_value());
}

// The TSan target: one writer hammers a slot with correlated coordinates
// (y = 2x, z = 3x) while readers snapshot continuously. A torn read — any
// snapshot mixing two publications — breaks the correlation; a seqlock bug
// breaks per-reader epoch monotonicity. Both assertions are checked on every
// single read, and the sanitizer checks the memory model underneath.
TEST(PoseBoard, ConcurrentReadersNeverObserveTornSnapshots) {
  constexpr int kPublishes = 4000;
  constexpr int kReaders = 4;
  std::map<std::string, geom::Vec3, std::less<>> initial;
  initial["viperx"] = geom::Vec3(0.0, 0.0, 0.0);
  sim::PoseBoard board(initial);

  std::atomic<bool> done{false};
  std::atomic<int> torn{0};
  std::atomic<int> non_monotone{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last_epoch = 0;
      while (!done.load(std::memory_order_acquire)) {
        auto snap = board.read("viperx");
        if (!snap.has_value()) continue;
        if (snap->pose.y != 2.0 * snap->pose.x || snap->pose.z != 3.0 * snap->pose.x) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
        if (snap->epoch < last_epoch) non_monotone.fetch_add(1, std::memory_order_relaxed);
        last_epoch = snap->epoch;
      }
    });
  }

  for (int i = 1; i <= kPublishes; ++i) {
    double v = static_cast<double>(i);
    board.publish("viperx", geom::Vec3(v, 2.0 * v, 3.0 * v));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(non_monotone.load(), 0);
  auto final_snap = board.read("viperx");
  ASSERT_TRUE(final_snap.has_value());
  EXPECT_EQ(final_snap->epoch, static_cast<std::uint64_t>(kPublishes) + 1);
  EXPECT_DOUBLE_EQ(final_snap->pose.x, static_cast<double>(kPublishes));
}

// Write-write safety: the per-slot spin flag must serialize concurrent
// publishers (the coordination path may publish on a shard's behalf), so
// every publication gets its own epoch and none is lost.
TEST(PoseBoard, ConcurrentWritersSerializePerSlot) {
  constexpr int kWriters = 4;
  constexpr int kEach = 1000;
  std::map<std::string, geom::Vec3, std::less<>> initial;
  initial["viperx"] = geom::Vec3(0.0, 0.0, 0.0);
  sim::PoseBoard board(initial);

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&board, w] {
      for (int i = 0; i < kEach; ++i) {
        double v = static_cast<double>(w * kEach + i);
        board.publish("viperx", geom::Vec3(v, 2.0 * v, 3.0 * v));
      }
    });
  }
  for (std::thread& t : writers) t.join();

  auto snap = board.read("viperx");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->epoch, static_cast<std::uint64_t>(kWriters) * kEach + 1);
  EXPECT_DOUBLE_EQ(snap->pose.y, 2.0 * snap->pose.x);
  EXPECT_DOUBLE_EQ(snap->pose.z, 3.0 * snap->pose.x);
}

// --- the sharded runner's use of the board -----------------------------------

// A planner-produced plan certifies every cross-shard pair, so nothing ever
// takes the coordination path, and every V3 trajectory check audits the live
// out-of-shard snapshots without finding an envelope escape.
TEST(ShardedSnapshots, CertifiedPlanRunsLockFreeWithCleanAudit) {
  fleet::CampaignSpec spec = motion_campaign();
  analysis::ShardPlan plan = plan_for(spec);
  ASSERT_EQ(plan.shards.size(), 3u);
  ASSERT_EQ(plan.certificates.size(), 3u);

  fleet::ShardedCampaignOptions options;
  options.workers = 3;
  fleet::CampaignReport report = fleet::Fleet::run_campaign(spec, plan, options);

  EXPECT_EQ(report.shards, 3u);
  EXPECT_EQ(report.coordination_events, 0u);
  EXPECT_TRUE(report.certificate_breaches.empty());
  // Deterministic: each of the 4 viperx motion checks audits the one
  // out-of-shard arm (ned2), plus any provider reads the simulator makes.
  EXPECT_GE(report.snapshot_pose_serves, 4u);
}

// Hand-built two-motion-shard plan with no certificates: each shard's
// trajectory checks read the OTHER shard's commanded arm, and with no
// certificate covering the pair the runner must refuse the lock-free path
// and rendezvous. (The planner itself would never produce this plan — it
// merges racing motion streams into one shard — which is exactly why the
// fallback needs a forged plan to be reachable at all.)
TEST(ShardedSnapshots, UncertifiedArmReadsTakeTheCoordinationPath) {
  fleet::CampaignSpec spec;
  spec.variant = core::Variant::ModifiedWithSim;
  spec.seed = 23;
  spec.streams.push_back(
      {"arm-a", {cmd("viperx", "go_home"), cmd("viperx", "go_sleep")}, ""});
  spec.streams.push_back(
      {"arm-b", {cmd("ned2", "go_home"), cmd("ned2", "go_sleep")}, ""});

  analysis::ShardPlan plan;
  plan.stream_names = {"arm-a", "arm-b"};
  plan.shards.push_back({{0}});
  plan.shards.push_back({{1}});

  fleet::CampaignReport report = fleet::Fleet::run_campaign(spec, plan, {});

  // Both testbed arms are commanded and uncovered here, so every board read
  // (ned2 from shard 0, viperx from shard 1) rendezvouses — and so does
  // every step ON an uncovered arm, since its publishes must serialize with
  // the other shard's reads. Total: one event per serve plus one per step.
  EXPECT_GT(report.coordination_events, 0u);
  EXPECT_EQ(report.coordination_events,
            report.snapshot_pose_serves + report.commands_checked);
}

// Hand-built plan splitting one commanded device across two shards: every
// step on that device must serialize through the rendezvous table.
TEST(ShardedSnapshots, SplitDeviceStepsTakeTheCoordinationPath) {
  fleet::CampaignSpec spec;
  spec.variant = core::Variant::Modified;
  spec.seed = 19;
  spec.streams.push_back(
      {"heat-a",
       {cmd("hotplate", "set_temperature", num_args({{"celsius", 50.0}})),
        cmd("hotplate", "stop")},
       ""});
  spec.streams.push_back(
      {"heat-b",
       {cmd("hotplate", "set_temperature", num_args({{"celsius", 55.0}})),
        cmd("hotplate", "stop")},
       ""});

  analysis::ShardPlan plan;
  plan.stream_names = {"heat-a", "heat-b"};
  plan.shards.push_back({{0}});
  plan.shards.push_back({{1}});  // planner would never split a shared device

  fleet::CampaignReport report = fleet::Fleet::run_campaign(spec, plan, {});
  EXPECT_EQ(report.shards, 2u);
  // All 4 steps are on the split device; each one is a rendezvous.
  EXPECT_EQ(report.coordination_events, 4u);
  EXPECT_EQ(report.commands_checked, 4u);
}

// The soundness regression: freezing the board at its campaign-start epoch
// (maximal snapshot staleness) must not change a single verdict as long as
// the certificate monitor reports no envelope breach — the exact claim the
// certificates make about stale reads.
TEST(ShardedSnapshots, FrozenBoardMatchesLiveBoardWhenNoBreach) {
  fleet::CampaignSpec spec = motion_campaign();
  analysis::ShardPlan plan = plan_for(spec);

  fleet::ShardedCampaignOptions live;
  live.workers = 2;
  fleet::ShardedCampaignOptions frozen = live;
  frozen.publish_poses = false;

  fleet::CampaignReport live_report = fleet::Fleet::run_campaign(spec, plan, live);
  fleet::CampaignReport frozen_report = fleet::Fleet::run_campaign(spec, plan, frozen);

  ASSERT_TRUE(live_report.certificate_breaches.empty());
  ASSERT_TRUE(frozen_report.certificate_breaches.empty());
  EXPECT_TRUE(Verdicts(live_report) == Verdicts(frozen_report));
  // Both runs make the same reads; only the observed epochs differ.
  EXPECT_EQ(live_report.snapshot_pose_serves, frozen_report.snapshot_pose_serves);
}

// Fleet::run is the default entry: it must plan exactly what the standalone
// planner plans and report identical verdicts to the plan-driven runner.
TEST(ShardedSnapshots, DefaultEntryPlansAndMatchesExplicitPlan) {
  fleet::CampaignSpec spec = motion_campaign();
  analysis::ShardPlan expected = plan_for(spec);

  analysis::ShardPlan planned;
  fleet::CampaignReport via_run = fleet::Fleet::run(spec, {}, &planned);
  fleet::CampaignReport via_plan = fleet::Fleet::run_campaign(spec, expected, {});

  EXPECT_EQ(planned.shards.size(), expected.shards.size());
  EXPECT_EQ(planned.certificates.size(), expected.certificates.size());
  EXPECT_EQ(via_run.shards, expected.shards.size());
  EXPECT_TRUE(Verdicts(via_run) == Verdicts(via_plan));
  EXPECT_EQ(via_run.snapshot_pose_serves, via_plan.snapshot_pose_serves);
}

// --- per-shard observability -------------------------------------------------

TEST(ShardedSnapshots, ObsCountersMatchReportAndLagHistogramCoversEveryServe) {
  fleet::CampaignSpec spec = motion_campaign();
  analysis::ShardPlan plan = plan_for(spec);

  fleet::ShardedCampaignOptions options;
  options.workers = 3;
  options.obs = true;
  fleet::CampaignReport report = fleet::Fleet::run_campaign(spec, plan, options);
  ASSERT_NE(report.obs_events, nullptr);
  ASSERT_NE(report.obs_metrics, nullptr);

  // Per-shard counters (label shard="k") merge into exactly the report's
  // totals; the lag histogram observed one sample per board serve.
  std::uint64_t serves = 0;
  std::uint64_t coordination = 0;
  std::uint64_t breaches = 0;
  for (std::size_t k = 0; k < plan.shards.size(); ++k) {
    std::string label = "shard=\"" + std::to_string(k) + "\"";
    const obs::Counter* s =
        report.obs_metrics->find_counter("rabit_snapshot_pose_serves_total", label);
    const obs::Counter* c =
        report.obs_metrics->find_counter("rabit_shard_coordination_total", label);
    const obs::Counter* b =
        report.obs_metrics->find_counter("rabit_snapshot_envelope_breaches_total", label);
    ASSERT_NE(s, nullptr);
    ASSERT_NE(c, nullptr);
    ASSERT_NE(b, nullptr);
    serves += s->value();
    coordination += c->value();
    breaches += b->value();
  }
  EXPECT_EQ(serves, report.snapshot_pose_serves);
  EXPECT_EQ(coordination, report.coordination_events);
  EXPECT_EQ(breaches, report.certificate_breaches.size());

  const obs::Histogram* lag = report.obs_metrics->find_histogram("rabit_snapshot_epoch_lag");
  ASSERT_NE(lag, nullptr);
  EXPECT_EQ(lag->count(), report.snapshot_pose_serves);
}

// The obs determinism contract, extended to campaigns: per-shard collectors
// merge in shard-index order, and event exports carry modeled time only — so
// the merged export is byte-identical across worker counts. (Epoch-lag and
// latency live registry-only; they are timing-dependent by nature.)
TEST(ShardedSnapshots, MergedCampaignExportIsByteIdenticalAcrossWorkerCounts) {
  fleet::CampaignSpec spec = motion_campaign();
  analysis::ShardPlan plan = plan_for(spec);

  std::string golden_events;
  std::string golden_trace;
  for (std::size_t workers : {1u, 2u, 3u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    fleet::ShardedCampaignOptions options;
    options.workers = workers;
    options.obs = true;
    fleet::CampaignReport report = fleet::Fleet::run_campaign(spec, plan, options);
    ASSERT_NE(report.obs_events, nullptr);

    std::string events = obs::export_events_jsonl(*report.obs_events);
    std::string trace = obs::export_chrome_trace(*report.obs_events);
    if (golden_events.empty()) {
      golden_events = events;
      golden_trace = trace;
      ASSERT_FALSE(golden_events.empty());
    } else {
      EXPECT_EQ(events, golden_events);
      EXPECT_EQ(trace, golden_trace);
    }
  }
}
