// Edge cases of the rule engine: malformed motion targets, unknown sites,
// generic-device door interplay, alert formatting, and engine statistics.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "devices/robot_arm.hpp"
#include "devices/stations.hpp"
#include "sim/deck.hpp"
#include "trace/trace.hpp"

namespace rabit::core {
namespace {

using dev::Command;
using geom::Vec3;
namespace ids = sim::deck_ids;

Command make_cmd(std::string device, std::string action, json::Object args = {}) {
  Command c;
  c.device = std::move(device);
  c.action = std::move(action);
  c.args = json::Value(std::move(args));
  return c;
}

class EdgeTest : public ::testing::Test {
 protected:
  EdgeTest() : backend(sim::testbed_profile()) {
    sim::build_hein_testbed_deck(backend);
    engine = std::make_unique<RabitEngine>(config_from_backend(backend, Variant::Modified));
    engine->initialize(backend.registry().fetch_observed_state());
  }

  sim::LabBackend backend;
  std::unique_ptr<RabitEngine> engine;
};

TEST_F(EdgeTest, MoveWithoutPositionIsInvalid) {
  auto alert = engine->check_command(make_cmd(ids::kViperX, "move_to"));
  ASSERT_TRUE(alert.has_value());
  EXPECT_EQ(alert->kind, AlertKind::InvalidCommand);
  EXPECT_NE(alert->message.find("unresolvable"), std::string::npos);
}

TEST_F(EdgeTest, MoveWithMalformedPositionIsInvalid) {
  json::Object args;
  args["position"] = json::Array{1.0, 2.0};  // only two coordinates
  auto alert = engine->check_command(make_cmd(ids::kViperX, "move_to", std::move(args)));
  EXPECT_TRUE(alert.has_value());
}

TEST_F(EdgeTest, PickAtUnknownSiteIsInvalid) {
  json::Object args;
  args["site"] = std::string("the_moon");
  auto alert = engine->check_command(make_cmd(ids::kViperX, "pick_object", std::move(args)));
  ASSERT_TRUE(alert.has_value());
  EXPECT_EQ(alert->kind, AlertKind::InvalidCommand);
}

TEST_F(EdgeTest, UnknownDeviceIsInvalid) {
  auto alert = engine->check_command(make_cmd("poltergeist", "do_things"));
  ASSERT_TRUE(alert.has_value());
  EXPECT_NE(alert->message.find("unknown device"), std::string::npos);
}

TEST_F(EdgeTest, NonRuleActionsPassThrough) {
  // Actions with no preconditions are simply allowed.
  EXPECT_FALSE(engine->check_command(make_cmd(ids::kVial1, "decap")).has_value());
  EXPECT_FALSE(engine->check_command(make_cmd(ids::kDosingDevice, "stop_action")).has_value());
  EXPECT_FALSE(engine->check_command(make_cmd(ids::kCentrifuge, "stop_spin")).has_value());
}

TEST_F(EdgeTest, AlertDescribeCarriesEverything) {
  json::Object args;
  args["celsius"] = 999.0;
  auto alert = engine->check_command(make_cmd(ids::kHotplate, "set_temperature", std::move(args)));
  ASSERT_TRUE(alert.has_value());
  std::string text = alert->describe();
  EXPECT_NE(text.find("Invalid Command!"), std::string::npos);
  EXPECT_NE(text.find("G11"), std::string::npos);
  EXPECT_NE(text.find("hotplate"), std::string::npos);
}

TEST_F(EdgeTest, StatsAccumulateAcrossChecks) {
  static_cast<void>(engine->check_command(make_cmd(ids::kVial1, "decap")));
  json::Object args;
  args["celsius"] = 999.0;
  static_cast<void>(
      engine->check_command(make_cmd(ids::kHotplate, "set_temperature", std::move(args))));
  EXPECT_EQ(engine->stats().commands_checked, 2u);
  EXPECT_EQ(engine->stats().precondition_alerts, 1u);
  // Re-initialize resets the counters.
  engine->initialize(backend.registry().fetch_observed_state());
  EXPECT_EQ(engine->stats().commands_checked, 0u);
}

TEST_F(EdgeTest, GenericDeviceDoorInterlocks) {
  // A doored generic device participates in G9/G10 via its `active` flag.
  auto& coater = dynamic_cast<dev::GenericActionDevice&>(backend.registry().add(
      std::make_unique<dev::GenericActionDevice>(
          "coater", std::vector<dev::GenericActionDevice::ValueActionSpec>{},
          /*has_door=*/true,
          geom::Aabb::from_center(Vec3(0.0, -0.45, 0.08), Vec3(0.10, 0.10, 0.12)))));
  (void)coater;
  RabitEngine fresh(config_from_backend(backend, Variant::Modified));
  fresh.initialize(backend.registry().fetch_observed_state());

  // G10: opening the door while the device is active.
  fresh.apply_expected(make_cmd("coater", "start"));
  json::Object open_args;
  open_args["state"] = std::string("open");
  auto alert = fresh.check_command(make_cmd("coater", "set_door", std::move(open_args)));
  ASSERT_TRUE(alert.has_value());
  EXPECT_EQ(alert->rule, "G10");

  // After stopping, the door may open.
  fresh.apply_expected(make_cmd("coater", "stop"));
  json::Object reopen;
  reopen["state"] = std::string("open");
  EXPECT_FALSE(fresh.check_command(make_cmd("coater", "set_door", std::move(reopen)))
                   .has_value());
}

TEST_F(EdgeTest, SoftWallNamedInGeometricCheckToo) {
  // A target inside a soft wall is M2 even through the generic G3 machinery.
  EngineConfig cfg = config_from_backend(backend, Variant::Modified);
  cfg.soft_walls.push_back(SoftWallSpec{
      ids::kViperX, geom::Aabb(Vec3(0.5, -1.0, 0.0), Vec3(0.89, 1.0, 1.0))});
  RabitEngine fenced(std::move(cfg));
  fenced.initialize(backend.registry().fetch_observed_state());
  json::Object args;
  args["position"] = json::Array{0.6, 0.0, 0.28};
  auto alert = fenced.check_command(make_cmd(ids::kViperX, "move_to", std::move(args)));
  ASSERT_TRUE(alert.has_value());
  EXPECT_EQ(alert->rule, "M2");
}

TEST_F(EdgeTest, VerifyWithoutExpectationsIsClean) {
  // Verifying immediately after initialize finds no divergence.
  Command noop = make_cmd(ids::kDosingDevice, "stop_action");
  EXPECT_FALSE(engine->verify_postconditions(noop, backend.registry().fetch_observed_state())
                   .has_value());
}

TEST_F(EdgeTest, HaltedSupervisorRejectsEverything) {
  trace::Supervisor supervisor(engine.get(), &backend);
  supervisor.start();
  json::Object args;
  args["celsius"] = 999.0;
  static_cast<void>(
      supervisor.step(make_cmd(ids::kHotplate, "set_temperature", std::move(args))));
  ASSERT_TRUE(supervisor.halted());
  trace::SupervisedStep next = supervisor.step(make_cmd(ids::kVial1, "decap"));
  EXPECT_TRUE(next.halted);
  EXPECT_FALSE(next.exec.has_value());
  // start() clears the halt.
  supervisor.start();
  EXPECT_FALSE(supervisor.halted());
  EXPECT_TRUE(supervisor.step(make_cmd(ids::kVial1, "decap")).exec.has_value());
}

}  // namespace
}  // namespace rabit::core
