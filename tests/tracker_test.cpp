#include <gtest/gtest.h>

#include "core/tracker.hpp"
#include "devices/robot_arm.hpp"
#include "sim/deck.hpp"

namespace rabit::core {
namespace {

using dev::Command;
using geom::Vec3;
namespace ids = sim::deck_ids;

Command make_cmd(std::string device, std::string action, json::Object args = {}) {
  Command c;
  c.device = std::move(device);
  c.action = std::move(action);
  c.args = json::Value(std::move(args));
  return c;
}

class TrackerTest : public ::testing::Test {
 protected:
  TrackerTest() : backend(sim::testbed_profile()) {
    sim::build_hein_testbed_deck(backend);
    config = config_from_backend(backend, Variant::Modified);
    tracker = std::make_unique<StateTracker>(&config);
    tracker->initialize(backend.registry().fetch_observed_state());
  }

  Vec3 site_local(const char* arm, const char* site) {
    return backend.arm(arm).to_local(backend.find_site(site)->lab_position);
  }

  Command move(const char* arm, const Vec3& local) {
    json::Object args;
    args["position"] = json::Array{local.x, local.y, local.z};
    return make_cmd(arm, "move_to", std::move(args));
  }

  sim::LabBackend backend;
  EngineConfig config;
  std::unique_ptr<StateTracker> tracker;
};

TEST_F(TrackerTest, InitializeSeedsSymbolicAndObserved) {
  // Observable station state came from the status commands...
  EXPECT_EQ(tracker->var(ids::kDosingDevice, "doorStatus").as_string(), "closed");
  // ...and unobservable vial state from the configuration.
  EXPECT_DOUBLE_EQ(tracker->var(ids::kVial1, "solidMg").as_double(), 0.0);
  EXPECT_EQ(tracker->var(ids::kVial1, "location").as_string(), "grid.NW");
  // Site occupancy derives from initial vial locations.
  EXPECT_EQ(tracker->site_occupant("grid.NW"), ids::kVial1);
  EXPECT_EQ(tracker->site_occupant("grid.SE"), ids::kVial2);
  EXPECT_EQ(tracker->site_occupant("grid.SW"), "");
  // Arms start asleep on the testbed.
  EXPECT_EQ(tracker->arm_pose(ids::kViperX), "sleep");
}

TEST_F(TrackerTest, VarLookups) {
  EXPECT_EQ(tracker->find_var("ghost", "x"), nullptr);
  EXPECT_EQ(tracker->find_var(ids::kVial1, "ghost"), nullptr);
  EXPECT_THROW(static_cast<void>(tracker->var("ghost", "x")), std::out_of_range);
  EXPECT_THROW(static_cast<void>(tracker->arm_position_lab("ghost")), std::out_of_range);
}

TEST_F(TrackerTest, MovePostconditionsTrackPositionPoseInside) {
  Vec3 target = site_local(ids::kViperX, "dosing_device");
  // First believe the door open so "inside" can be tracked cleanly.
  tracker->apply_postconditions(make_cmd(ids::kDosingDevice, "set_door", [] {
    json::Object o;
    o["state"] = std::string("open");
    return o;
  }()));
  tracker->apply_postconditions(move(ids::kViperX, target));
  EXPECT_EQ(tracker->arm_pose(ids::kViperX), "custom");
  EXPECT_LT(tracker->arm_position_lab(ids::kViperX)
                .distance_to(backend.find_site("dosing_device")->lab_position),
            1e-9);
  EXPECT_EQ(tracker->arm_inside(ids::kViperX), ids::kDosingDevice);
  // Moving away clears the inside flag.
  tracker->apply_postconditions(move(ids::kViperX, Vec3(0.2, 0.0, 0.3)));
  EXPECT_EQ(tracker->arm_inside(ids::kViperX), "");
}

TEST_F(TrackerTest, GoHomeAndSleepSetPose) {
  tracker->apply_postconditions(make_cmd(ids::kViperX, "go_home"));
  EXPECT_EQ(tracker->arm_pose(ids::kViperX), "home");
  const DeviceMeta* meta = config.find_device(ids::kViperX);
  EXPECT_LT(tracker->arm_position_lab(ids::kViperX).distance_to(meta->home_position_lab), 1e-9);
  tracker->apply_postconditions(make_cmd(ids::kViperX, "go_sleep"));
  EXPECT_EQ(tracker->arm_pose(ids::kViperX), "sleep");
}

TEST_F(TrackerTest, GripperGrabAndReleaseInference) {
  // Move to the NW slot and close: RABIT infers the arm now holds vial_1.
  tracker->apply_postconditions(move(ids::kViperX, site_local(ids::kViperX, "grid.NW")));
  tracker->apply_postconditions(make_cmd(ids::kViperX, "close_gripper"));
  EXPECT_EQ(tracker->arm_holding(ids::kViperX), ids::kVial1);
  EXPECT_EQ(tracker->site_occupant("grid.NW"), "");
  EXPECT_EQ(tracker->var(ids::kVial1, "location").as_string(),
            std::string("arm:") + ids::kViperX);

  // Move to the free SW slot and open: the vial seats there.
  tracker->apply_postconditions(move(ids::kViperX, site_local(ids::kViperX, "grid.SW")));
  tracker->apply_postconditions(make_cmd(ids::kViperX, "open_gripper"));
  EXPECT_EQ(tracker->arm_holding(ids::kViperX), "");
  EXPECT_EQ(tracker->site_occupant("grid.SW"), ids::kVial1);
  EXPECT_EQ(tracker->var(ids::kVial1, "location").as_string(), "grid.SW");
}

TEST_F(TrackerTest, GrabbingAwayFromSitesInfersNothing) {
  tracker->apply_postconditions(move(ids::kViperX, Vec3(0.2, -0.2, 0.35)));
  tracker->apply_postconditions(make_cmd(ids::kViperX, "close_gripper"));
  EXPECT_EQ(tracker->arm_holding(ids::kViperX), "");
  // Releasing empty-handed changes nothing either.
  tracker->apply_postconditions(make_cmd(ids::kViperX, "open_gripper"));
  EXPECT_EQ(tracker->arm_holding(ids::kViperX), "");
}

TEST_F(TrackerTest, ReleasingAwayFromSitesLosesTrack) {
  tracker->apply_postconditions(move(ids::kViperX, site_local(ids::kViperX, "grid.NW")));
  tracker->apply_postconditions(make_cmd(ids::kViperX, "close_gripper"));
  tracker->apply_postconditions(move(ids::kViperX, Vec3(0.2, -0.2, 0.35)));
  tracker->apply_postconditions(make_cmd(ids::kViperX, "open_gripper"));
  EXPECT_EQ(tracker->var(ids::kVial1, "location").as_string(), "unknown");
}

TEST_F(TrackerTest, CompositePickPlacePostconditions) {
  tracker->apply_postconditions(make_cmd(ids::kViperX, "pick_object", [] {
    json::Object o;
    o["site"] = std::string("grid.NW");
    return o;
  }()));
  EXPECT_EQ(tracker->arm_holding(ids::kViperX), ids::kVial1);
  tracker->apply_postconditions(make_cmd(ids::kViperX, "place_object", [] {
    json::Object o;
    o["site"] = std::string("grid.SW");
    return o;
  }()));
  EXPECT_EQ(tracker->arm_holding(ids::kViperX), "");
  EXPECT_EQ(tracker->site_occupant("grid.SW"), ids::kVial1);
}

TEST_F(TrackerTest, DosePostconditionsUpdateExpectedContents) {
  // Seat vial_1 in the dosing device symbolically.
  tracker->apply_postconditions(make_cmd(ids::kViperX, "pick_object", [] {
    json::Object o;
    o["site"] = std::string("grid.NW");
    return o;
  }()));
  tracker->apply_postconditions(make_cmd(ids::kViperX, "place_object", [] {
    json::Object o;
    o["site"] = std::string("dosing_device");
    return o;
  }()));
  tracker->apply_postconditions(make_cmd(ids::kDosingDevice, "run_action", [] {
    json::Object o;
    o["quantity"] = 5.0;
    return o;
  }()));
  EXPECT_DOUBLE_EQ(tracker->var(ids::kDosingDevice, "running").as_double(), 1.0);
  EXPECT_DOUBLE_EQ(tracker->var(ids::kVial1, "solidMg").as_double(), 5.0);
}

TEST_F(TrackerTest, PumpPostconditions) {
  tracker->apply_postconditions(make_cmd(ids::kSyringePump, "draw_solvent", [] {
    json::Object o;
    o["volume"] = 3.0;
    return o;
  }()));
  EXPECT_DOUBLE_EQ(tracker->var(ids::kSyringePump, "heldMl").as_double(), 3.0);
  tracker->apply_postconditions(make_cmd(ids::kSyringePump, "dose_solvent", [] {
    json::Object o;
    o["volume"] = 2.0;
    o["target"] = std::string(ids::kVial1);
    return o;
  }()));
  EXPECT_DOUBLE_EQ(tracker->var(ids::kSyringePump, "heldMl").as_double(), 1.0);
  EXPECT_DOUBLE_EQ(tracker->var(ids::kVial1, "liquidMl").as_double(), 2.0);
}

TEST_F(TrackerTest, StationPostconditions) {
  tracker->apply_postconditions(make_cmd(ids::kHotplate, "set_temperature", [] {
    json::Object o;
    o["celsius"] = 120.0;
    return o;
  }()));
  EXPECT_DOUBLE_EQ(tracker->var(ids::kHotplate, "targetC").as_double(), 120.0);
  EXPECT_DOUBLE_EQ(tracker->var(ids::kHotplate, "active").as_double(), 1.0);
  tracker->apply_postconditions(make_cmd(ids::kHotplate, "stop"));
  EXPECT_DOUBLE_EQ(tracker->var(ids::kHotplate, "active").as_double(), 0.0);

  tracker->apply_postconditions(make_cmd(ids::kCentrifuge, "rotate_platter", [] {
    json::Object o;
    o["orientation"] = std::string("W");
    return o;
  }()));
  EXPECT_EQ(tracker->var(ids::kCentrifuge, "redDot").as_string(), "W");

  tracker->apply_postconditions(make_cmd(ids::kVial1, "recap"));
  EXPECT_DOUBLE_EQ(tracker->var(ids::kVial1, "hasStopper").as_double(), 1.0);
}

TEST_F(TrackerTest, MismatchesIgnoreUncheckedVars) {
  // Execute a real move so the device's observed position changes while the
  // tracker stays naive — position is an unchecked variable, so no mismatch.
  backend.execute(make_cmd(ids::kViperX, "go_home"));
  tracker->apply_postconditions(make_cmd(ids::kViperX, "go_home"));
  auto diffs = tracker->mismatches(backend.registry().fetch_observed_state());
  EXPECT_TRUE(diffs.empty()) << diffs.front();
}

TEST_F(TrackerTest, MismatchesCatchDivergentDiscreteState) {
  // The door actuator fails silently: RABIT expected "open", status says
  // "closed" — the Fig. 2 lines 13-15 malfunction path.
  tracker->apply_postconditions(make_cmd(ids::kDosingDevice, "set_door", [] {
    json::Object o;
    o["state"] = std::string("open");
    return o;
  }()));
  auto diffs = tracker->mismatches(backend.registry().fetch_observed_state());
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0], std::string(ids::kDosingDevice) + ".doorStatus");
  // Line 16: resync clears the divergence.
  tracker->resync(backend.registry().fetch_observed_state());
  EXPECT_TRUE(tracker->mismatches(backend.registry().fetch_observed_state()).empty());
}

TEST_F(TrackerTest, UnknownDeviceCommandsAreIgnored) {
  EXPECT_NO_THROW(tracker->apply_postconditions(make_cmd("ghost", "move_to")));
}

TEST(TrackerStandalone, NullConfigRejected) {
  EXPECT_THROW(StateTracker(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace rabit::core
