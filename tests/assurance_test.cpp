// Runtime-assurance decision module tests: the pure switching-point math
// (barrier floor, stopping distance, clamping and monotonicity), the
// signed-margin profile against world geometry, and the end-to-end demotion
// path on a miscalibrated world — the §IV category-2 hazard the reactive
// ladder cannot catch — including the "demoted" trace round-trip and the
// zero-false-demotion guarantee on accurate geometry.
#include <gtest/gtest.h>

#include <memory>

#include "assurance/assurance.hpp"
#include "core/engine.hpp"
#include "recovery/recovery.hpp"
#include "script/workflows.hpp"
#include "sim/deck.hpp"
#include "sim/extended_sim.hpp"
#include "trace/trace.hpp"

namespace rabit::assurance {
namespace {

namespace ids = sim::deck_ids;

sim::MarginProfile profile_from(std::initializer_list<std::pair<double, double>> sh) {
  sim::MarginProfile p;
  bool first = true;
  for (const auto& [s, h] : sh) {
    sim::MarginSample sample;
    sample.s = s;
    sample.h = h;
    sample.obstacle = "box";
    p.samples.push_back(sample);
    p.length_m = s;
    if (first || h < p.min_margin_m) {
      p.min_margin_m = h;
      p.min_s_m = s;
      p.min_obstacle = "box";
      first = false;
    }
  }
  return p;
}

// --- decide(): switching-point math ------------------------------------------

TEST(Decide, ClearProfileDoesNotDemote) {
  AssuranceConfig cfg;
  sim::MarginProfile p = profile_from({{0.0, 0.5}, {0.2, 0.2}, {0.4, 0.031}});
  Decision d = decide(p, cfg);
  EXPECT_FALSE(d.demote);
  EXPECT_DOUBLE_EQ(d.h_min_m, 0.031);
}

TEST(Decide, ViolationYieldsLastSafeSwitchingPoint) {
  AssuranceConfig cfg;  // v=0.25, a=1.5 -> d_stop = 0.0625/3 ~ 0.020833
  sim::MarginProfile p = profile_from({{0.0, 0.5}, {0.3, 0.01}, {0.5, -0.02}});
  Decision d = decide(p, cfg);
  ASSERT_TRUE(d.demote);
  EXPECT_DOUBLE_EQ(d.s_viol_m, 0.3);
  EXPECT_NEAR(d.stop_distance_m, 0.25 * 0.25 / (2.0 * 1.5), 1e-12);
  EXPECT_NEAR(d.s_star_m, 0.3 - d.stop_distance_m, 1e-12);
  EXPECT_EQ(d.obstacle, "box");
}

TEST(Decide, SwitchingPointClampsAtZero) {
  AssuranceConfig cfg;
  // Violation closer to the start than one stopping distance: the safe
  // controller has no runway — it must act in place.
  sim::MarginProfile p = profile_from({{0.0, 0.5}, {0.01, 0.005}});
  Decision d = decide(p, cfg);
  ASSERT_TRUE(d.demote);
  EXPECT_DOUBLE_EQ(d.s_star_m, 0.0);
  EXPECT_GE(d.s_viol_m, 0.0);
}

TEST(Decide, RaisingTheFloorNeverDelaysTheSwitch) {
  // h(s) strictly decreasing: a higher floor is crossed earlier, so s*
  // must be non-increasing in margin_min_m.
  sim::MarginProfile p =
      profile_from({{0.0, 0.10}, {0.1, 0.08}, {0.2, 0.05}, {0.3, 0.025}, {0.4, 0.01}});
  double last_s_star = 1e300;
  for (double floor : {0.02, 0.03, 0.06, 0.09}) {
    AssuranceConfig cfg;
    cfg.margin_min_m = floor;
    Decision d = decide(p, cfg);
    ASSERT_TRUE(d.demote) << "floor " << floor;
    EXPECT_LE(d.s_star_m, last_s_star) << "floor " << floor;
    last_s_star = d.s_star_m;
  }
}

TEST(Decide, LongerStoppingDistanceSwitchesEarlier) {
  sim::MarginProfile p = profile_from({{0.0, 0.5}, {0.3, 0.01}});
  AssuranceConfig slow;  // defaults
  AssuranceConfig fast;
  fast.nominal_speed_mps = 0.5;  // 4x the stopping distance
  Decision ds = decide(p, slow);
  Decision df = decide(p, fast);
  ASSERT_TRUE(ds.demote);
  ASSERT_TRUE(df.demote);
  EXPECT_GT(df.stop_distance_m, ds.stop_distance_m);
  EXPECT_LT(df.s_star_m, ds.s_star_m);
}

TEST(Decide, InvariantsHoldAcrossProfiles) {
  AssuranceConfig cfg;
  const sim::MarginProfile profiles[] = {
      profile_from({{0.0, -0.01}}),                      // violated at the start
      profile_from({{0.0, 0.5}, {1.0, 0.029}}),          // barely violated late
      profile_from({{0.0, 0.5}, {0.02, -0.5}}),          // deep violation, no runway
      profile_from({{0.0, 0.5}, {0.9, 0.4}, {1.8, 0.0}}),
  };
  for (const sim::MarginProfile& p : profiles) {
    Decision d = decide(p, cfg);
    ASSERT_TRUE(d.demote);
    EXPECT_GE(d.s_star_m, 0.0);
    EXPECT_GE(d.s_viol_m, 0.0);
    EXPECT_LE(d.s_star_m, d.s_viol_m);
    EXPECT_LE(d.s_viol_m, p.length_m + 1e-12);
    EXPECT_LT(d.h_min_m, cfg.margin_min_m);
  }
}

TEST(PointAtArcLength, InterpolatesAndClamps) {
  std::vector<geom::Vec3> path{geom::Vec3(0, 0, 0), geom::Vec3(1, 0, 0), geom::Vec3(1, 2, 0)};
  geom::Vec3 mid = point_at_arc_length(path, 0.5);
  EXPECT_NEAR(mid.x, 0.5, 1e-12);
  geom::Vec3 second_leg = point_at_arc_length(path, 1.5);
  EXPECT_NEAR(second_leg.x, 1.0, 1e-12);
  EXPECT_NEAR(second_leg.y, 0.5, 1e-12);
  geom::Vec3 past_end = point_at_arc_length(path, 99.0);
  EXPECT_NEAR(past_end.y, 2.0, 1e-12);
  geom::Vec3 before_start = point_at_arc_length(path, -1.0);
  EXPECT_NEAR(before_start.x, 0.0, 1e-12);
}

// --- margin_profile(): barrier vs world geometry -----------------------------

TEST(MarginProfile, PathThroughBoxGoesNegative) {
  sim::WorldModel world;
  world.add_box("block", geom::Aabb(geom::Vec3(0.4, -0.1, -0.1), geom::Vec3(0.6, 0.1, 0.1)),
                sim::ObstacleKind::Equipment);
  std::vector<geom::Vec3> path{geom::Vec3(0, 0, 0), geom::Vec3(1, 0, 0)};
  sim::MarginProfile p = sim::margin_profile(world, path, 0.0, sim::PathCheckOptions{});
  EXPECT_LT(p.min_margin_m, 0.0);
  EXPECT_EQ(p.min_obstacle, "block");
  EXPECT_NEAR(p.length_m, 1.0, 1e-9);
}

TEST(MarginProfile, ClearPathReportsTrueClearance) {
  sim::WorldModel world;
  world.add_box("block", geom::Aabb(geom::Vec3(0.4, 0.2, -0.1), geom::Vec3(0.6, 0.4, 0.1)),
                sim::ObstacleKind::Equipment);
  std::vector<geom::Vec3> path{geom::Vec3(0, 0, 0), geom::Vec3(1, 0, 0)};
  sim::MarginProfile p = sim::margin_profile(world, path, 0.0, sim::PathCheckOptions{});
  // Closest approach: y gap of 0.2 m at the box's x-range.
  EXPECT_NEAR(p.min_margin_m, 0.2, 0.02);
  EXPECT_GT(p.min_margin_m, 0.0);
}

TEST(MarginProfile, IgnoredBoxesDoNotBindTheBarrier) {
  sim::WorldModel world;
  world.add_box("target_vial", geom::Aabb(geom::Vec3(0.45, -0.05, -0.1), geom::Vec3(0.55, 0.05, 0.1)),
                sim::ObstacleKind::Vial);
  std::vector<geom::Vec3> path{geom::Vec3(0, 0, 0), geom::Vec3(1, 0, 0)};
  sim::PathCheckOptions opts;
  opts.ignore = {"target_vial"};
  sim::MarginProfile p = sim::margin_profile(world, path, 0.0, opts);
  EXPECT_TRUE(p.min_obstacle.empty());
}

// --- end to end: the miscalibrated-shelf hazard ------------------------------

// The bench_fault_recovery hazard leg in fixture form: configured world says
// the overhead shelf clears the ascent corridor by 1.5 cm; ground truth says
// the corridor runs through it. Boolean V3 checking passes; only the barrier
// floor (3 cm > the 2 cm miscalibration) can intervene in time.
class MiscalibratedShelf : public ::testing::Test {
 protected:
  MiscalibratedShelf() : backend(sim::testbed_profile()) {
    sim::build_hein_testbed_deck(backend);
    core::EngineConfig config =
        core::config_from_backend(backend, core::Variant::ModifiedWithSim);

    sim::WorldModel world = sim::deck_world_model(backend);
    for (const core::DeviceMeta& m : config.devices) {
      if (m.is_arm && m.sleep_box) {
        world.add_box(m.id, *m.sleep_box, sim::ObstacleKind::ParkedArm);
      }
    }
    world.add_box("overhead_shelf",
                  geom::Aabb(geom::Vec3(0.07, -0.085, 0.40), geom::Vec3(0.17, 0.015, 0.50)),
                  sim::ObstacleKind::Equipment);
    backend.add_static_obstacle(
        "overhead_shelf",
        geom::Aabb(geom::Vec3(0.07, -0.105, 0.40), geom::Vec3(0.17, -0.005, 0.50)),
        sim::ObstacleKind::Equipment);

    sim::ExtendedSimulator::Options sim_options;
    sim_options.gui_enabled = false;
    simulator = std::make_unique<sim::ExtendedSimulator>(std::move(world), sim_options);
    sim::LabBackend* backend_ptr = &backend;
    simulator->set_arm_state_provider(
        [backend_ptr](std::string_view arm_id) -> std::optional<geom::Vec3> {
          const auto* arm =
              dynamic_cast<const dev::RobotArmDevice*>(backend_ptr->registry().find(arm_id));
          if (arm == nullptr) return std::nullopt;
          return arm->position_lab();
        });
    engine = std::make_unique<core::RabitEngine>(std::move(config));
    engine->attach_simulator(simulator.get());
  }

  dev::Command ascent() const {
    dev::Command c;
    c.device = ids::kViperX;
    c.action = "move_to";
    json::Object args;
    args["position"] = json::Array{0.12, -0.10, 0.48};  // arm frame; lab z 0.50
    c.args = json::Value(std::move(args));
    return c;
  }

  sim::LabBackend backend;
  std::unique_ptr<sim::ExtendedSimulator> simulator;
  std::unique_ptr<core::RabitEngine> engine;
};

TEST_F(MiscalibratedShelf, ReactiveLadderCannotPreventTheDamage) {
  trace::Supervisor::Options opts;
  opts.recovery = recovery::RecoveryPolicy{};
  trace::Supervisor sup(engine.get(), &backend, opts);
  trace::RunReport report = sup.run({ascent()});
  EXPECT_EQ(report.alerts, 0u);  // the boolean check passes and the goal is reached
  EXPECT_EQ(report.damage.size(), 1u);
  ASSERT_TRUE(report.recovery.has_value());
  EXPECT_EQ(report.recovery->demotions, 0u);
}

TEST_F(MiscalibratedShelf, AssuranceDemotesBeforeContact) {
  trace::Supervisor::Options opts;
  opts.assurance = AssuranceConfig{};
  trace::Supervisor sup(engine.get(), &backend, opts);
  trace::RunReport report = sup.run({ascent()});

  EXPECT_TRUE(report.damage.empty());
  EXPECT_TRUE(report.halted);
  EXPECT_EQ(report.alerts, 1u);
  ASSERT_EQ(report.steps.size(), 1u);
  const trace::SupervisedStep& step = report.steps[0];
  EXPECT_TRUE(step.demoted);
  ASSERT_TRUE(step.alert.has_value());
  EXPECT_EQ(step.alert->rule, "RTA");

  ASSERT_TRUE(report.recovery.has_value());
  ASSERT_EQ(report.recovery->demotions, 1u);
  ASSERT_EQ(report.recovery->assurance.size(), 1u);
  const AssuranceEvent& e = report.recovery->assurance[0];
  EXPECT_EQ(e.device, ids::kViperX);
  EXPECT_EQ(e.action, "move_to");
  // The configured shelf leaves 1.5 cm — under the 3 cm floor, above contact.
  EXPECT_GT(e.barrier_m, 0.0);
  EXPECT_LT(e.barrier_m, 0.03);
  EXPECT_EQ(e.obstacle, "overhead_shelf");
  EXPECT_GT(e.violation_s_m, 0.0);
  EXPECT_NEAR(e.switch_s_m, e.violation_s_m - e.stop_distance_m, 1e-9);
  EXPECT_GT(e.trajectory_m, e.violation_s_m);
  EXPECT_EQ(e.controller, "verified_safe");
}

TEST_F(MiscalibratedShelf, SafeControllerParksTheArm) {
  trace::Supervisor::Options opts;
  opts.assurance = AssuranceConfig{};
  trace::Supervisor sup(engine.get(), &backend, opts);
  (void)sup.run({ascent()});

  // Verified-safe fallback: truncated advance, then park. The arm must end
  // at its sleep pose, and the safe-state rungs must be in the trace.
  const auto& arm =
      dynamic_cast<const dev::RobotArmDevice&>(*backend.registry().find(ids::kViperX));
  geom::Vec3 pos = arm.position_lab();  // modulo the backend's placement noise
  EXPECT_NEAR(pos.x, 0.12, 1e-3);
  EXPECT_NEAR(pos.y, -0.10, 1e-3);
  EXPECT_NEAR(pos.z, 0.14, 1e-3);

  bool saw_demoted = false, saw_safe_state = false;
  for (const trace::TraceRecord& r : sup.log().records()) {
    if (r.outcome == trace::Outcome::Demoted) saw_demoted = true;
    if (r.outcome == trace::Outcome::SafeState) saw_safe_state = true;
  }
  EXPECT_TRUE(saw_demoted);
  EXPECT_TRUE(saw_safe_state);
}

TEST_F(MiscalibratedShelf, DemotedRecordRoundTripsThroughJsonl) {
  trace::Supervisor::Options opts;
  opts.assurance = AssuranceConfig{};
  trace::Supervisor sup(engine.get(), &backend, opts);
  (void)sup.run({ascent()});

  std::string jsonl = sup.log().to_jsonl();
  trace::TraceLog parsed = trace::TraceLog::from_jsonl(jsonl);
  ASSERT_EQ(parsed.size(), sup.log().size());
  bool saw_demoted = false;
  for (const trace::TraceRecord& r : parsed.records()) {
    if (r.outcome == trace::Outcome::Demoted) {
      saw_demoted = true;
      EXPECT_EQ(r.alert_rule, "RTA");
      EXPECT_EQ(r.command.device, ids::kViperX);
    }
  }
  EXPECT_TRUE(saw_demoted);
  EXPECT_EQ(parsed.to_jsonl(), jsonl);
}

TEST_F(MiscalibratedShelf, DemotionEscalatesThroughTheLadderWhenRecoveryIsOn) {
  trace::Supervisor::Options opts;
  opts.recovery = recovery::RecoveryPolicy{};
  opts.assurance = AssuranceConfig{};
  trace::Supervisor sup(engine.get(), &backend, opts);
  trace::RunReport report = sup.run({ascent()});

  EXPECT_TRUE(report.damage.empty());
  ASSERT_TRUE(report.recovery.has_value());
  EXPECT_EQ(report.recovery->demotions, 1u);
  // A demotion is not a transient: the ladder must not have burned retries
  // re-trying the demoted motion.
  EXPECT_EQ(report.recovery->retries, 0u);
  // The device lands in quarantine via the escalation path.
  EXPECT_FALSE(sup.quarantined().empty());
}

// --- accurate world: assurance must stay silent ------------------------------

TEST(AssuranceAccurateWorld, NoDemotionsAndIdenticalVerdictsOnTestbedWorkflow) {
  auto run_workflow = [](bool with_assurance) {
    sim::LabBackend backend(sim::testbed_profile());
    sim::build_hein_testbed_deck(backend);
    std::vector<dev::Command> workflow =
        script::record_workflow(backend, script::testbed_workflow_source());
    core::EngineConfig config =
        core::config_from_backend(backend, core::Variant::ModifiedWithSim);
    sim::WorldModel world = sim::deck_world_model(backend);
    for (const core::DeviceMeta& m : config.devices) {
      if (m.is_arm && m.sleep_box) {
        world.add_box(m.id, *m.sleep_box, sim::ObstacleKind::ParkedArm);
      }
    }
    sim::ExtendedSimulator::Options sim_options;
    sim_options.gui_enabled = false;
    sim::ExtendedSimulator simulator(std::move(world), sim_options);
    sim::LabBackend* backend_ptr = &backend;
    simulator.set_arm_state_provider(
        [backend_ptr](std::string_view arm_id) -> std::optional<geom::Vec3> {
          const auto* arm =
              dynamic_cast<const dev::RobotArmDevice*>(backend_ptr->registry().find(arm_id));
          if (arm == nullptr) return std::nullopt;
          return arm->position_lab();
        });
    core::RabitEngine engine(std::move(config));
    engine.attach_simulator(&simulator);
    trace::Supervisor::Options opts;
    if (with_assurance) opts.assurance = AssuranceConfig{};
    trace::Supervisor sup(&engine, &backend, opts);
    return sup.run(workflow);
  };

  trace::RunReport off = run_workflow(false);
  trace::RunReport on = run_workflow(true);
  ASSERT_TRUE(on.recovery.has_value());
  EXPECT_EQ(on.recovery->demotions, 0u);
  EXPECT_EQ(on.alerts, off.alerts);
  EXPECT_EQ(on.steps.size(), off.steps.size());
  EXPECT_EQ(on.halted, off.halted);
  EXPECT_EQ(on.damage.size(), off.damage.size());
}

TEST(AssuranceOptions, DisabledConfigIsANoOp) {
  sim::LabBackend backend(sim::testbed_profile());
  sim::build_hein_testbed_deck(backend);
  auto engine = std::make_unique<core::RabitEngine>(
      core::config_from_backend(backend, core::Variant::ModifiedWithSim));
  trace::Supervisor::Options opts;
  AssuranceConfig cfg;
  cfg.enabled = false;
  opts.assurance = cfg;
  trace::Supervisor sup(engine.get(), &backend, opts);
  ASSERT_NE(sup.engine(), nullptr);
  EXPECT_DOUBLE_EQ(sup.engine()->assurance_margin(), 0.0);
}

}  // namespace
}  // namespace rabit::assurance
