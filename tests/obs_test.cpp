// rabit::obs tests: the nearest-rank percentile convention, the metrics
// registry (counters, gauges, exact-percentile histograms, deterministic
// merge), span/rung emission through the Supervisor, and schema validation
// of all three exporters (JSONL events, Chrome trace-event JSON, Prometheus
// text exposition).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "json/json.hpp"
#include "obs/obs.hpp"
#include "recovery/recovery.hpp"
#include "script/workflows.hpp"
#include "sim/deck.hpp"
#include "trace/trace.hpp"

namespace rabit::obs {
namespace {

using dev::Command;
namespace ids = sim::deck_ids;

Command make_cmd(std::string device, std::string action, json::Object args = {}) {
  Command c;
  c.device = std::move(device);
  c.action = std::move(action);
  c.args = json::Value(std::move(args));
  return c;
}

// --- nearest-rank convention -------------------------------------------------

TEST(NearestRank, EmptyIsZero) { EXPECT_DOUBLE_EQ(nearest_rank({}, 0.5), 0.0); }

TEST(NearestRank, SingleSampleIsEveryQuantile) {
  std::vector<double> one{7.5};
  EXPECT_DOUBLE_EQ(nearest_rank(one, 0.01), 7.5);
  EXPECT_DOUBLE_EQ(nearest_rank(one, 0.50), 7.5);
  EXPECT_DOUBLE_EQ(nearest_rank(one, 0.99), 7.5);
  EXPECT_DOUBLE_EQ(nearest_rank(one, 1.00), 7.5);
}

TEST(NearestRank, TwoSamplesSplitAtMedian) {
  std::vector<double> two{1.0, 9.0};
  // ceil(0.5 * 2) = 1 -> the smaller sample; anything above 0.5 -> larger.
  EXPECT_DOUBLE_EQ(nearest_rank(two, 0.50), 1.0);
  EXPECT_DOUBLE_EQ(nearest_rank(two, 0.51), 9.0);
  EXPECT_DOUBLE_EQ(nearest_rank(two, 0.90), 9.0);
  EXPECT_DOUBLE_EQ(nearest_rank(two, 0.99), 9.0);
}

TEST(NearestRank, HundredSamplesMatchTextbookRanks) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(nearest_rank(v, 0.50), 50.0);
  EXPECT_DOUBLE_EQ(nearest_rank(v, 0.90), 90.0);
  EXPECT_DOUBLE_EQ(nearest_rank(v, 0.99), 99.0);
  EXPECT_DOUBLE_EQ(nearest_rank(v, 1.00), 100.0);
}

TEST(NearestRank, RankClampsIntoValidRange) {
  // q = 1.0 must never index past the end, and tiny q never below the front,
  // even when floating-point round-up pushes ceil(q * N) out of [1, N].
  std::vector<double> v{2.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(nearest_rank(v, 1.0), 6.0);
  EXPECT_DOUBLE_EQ(nearest_rank(v, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(nearest_rank(v, 1e-12), 2.0);
}

// --- histogram ---------------------------------------------------------------

TEST(Histogram, ExactPercentilesAndBuckets) {
  Registry reg;
  Histogram& h = reg.histogram("latency_us", "test", {10.0, 100.0, 1000.0});
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));

  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  // Percentiles come from retained samples, not bucket interpolation.
  EXPECT_DOUBLE_EQ(h.percentile(0.50), 50.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.90), 90.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 99.0);
  // Cumulative bucket counts: <=10 -> 10, <=100 -> 100, <=1000 -> 100.
  EXPECT_EQ(h.cumulative_count(0), 10u);
  EXPECT_EQ(h.cumulative_count(1), 100u);
  EXPECT_EQ(h.cumulative_count(2), 100u);
}

TEST(Histogram, ObserveAfterPercentileStaysSorted) {
  Registry reg;
  Histogram& h = reg.histogram("h", "");
  h.observe(5.0);
  h.observe(1.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 1.0);
  h.observe(0.5);  // arrives after a sort; percentile must re-sort
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 5.0);
}

TEST(Histogram, DefaultBoundsAscendCoveringMicrosecondsToSeconds) {
  std::vector<double> bounds = Histogram::default_latency_bounds_us();
  ASSERT_GE(bounds.size(), 2u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1.0);
  EXPECT_DOUBLE_EQ(bounds.back(), 1e6);
  for (std::size_t i = 1; i < bounds.size(); ++i) EXPECT_GT(bounds[i], bounds[i - 1]);
}

// --- registry ----------------------------------------------------------------

TEST(Registry, CountersGaugesAndLookup) {
  Registry reg;
  reg.counter("rabit_commands_total", "", "help").increment(3);
  reg.counter("rabit_verdicts_total", "verdict=\"pass\"").increment();
  reg.gauge("rabit_fleet_streams").set(4.0);

  ASSERT_NE(reg.find_counter("rabit_commands_total"), nullptr);
  EXPECT_EQ(reg.find_counter("rabit_commands_total")->value(), 3u);
  ASSERT_NE(reg.find_counter("rabit_verdicts_total", "verdict=\"pass\""), nullptr);
  EXPECT_EQ(reg.find_counter("rabit_verdicts_total", "verdict=\"pass\"")->value(), 1u);
  EXPECT_EQ(reg.find_counter("rabit_verdicts_total", "verdict=\"blocked\""), nullptr);
  EXPECT_EQ(reg.find_counter("absent"), nullptr);
  ASSERT_NE(reg.find_gauge("rabit_fleet_streams"), nullptr);
  EXPECT_DOUBLE_EQ(reg.find_gauge("rabit_fleet_streams")->value(), 4.0);
}

TEST(Registry, MergeSumsScalarsAndConcatenatesHistograms) {
  Registry a;
  Registry b;
  a.counter("c").increment(2);
  b.counter("c").increment(5);
  b.counter("only_b").increment(1);
  a.gauge("g").set(1.5);
  b.gauge("g").set(2.5);
  a.histogram("h", "", {10.0}).observe(3.0);
  b.histogram("h", "", {10.0}).observe(7.0);

  a.merge_from(b);
  EXPECT_EQ(a.find_counter("c")->value(), 7u);
  EXPECT_EQ(a.find_counter("only_b")->value(), 1u);
  EXPECT_DOUBLE_EQ(a.find_gauge("g")->value(), 4.0);
  const Histogram* h = a.find_histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 2u);
  EXPECT_DOUBLE_EQ(h->sum(), 10.0);
  EXPECT_DOUBLE_EQ(h->percentile(0.5), 3.0);
}

// Validates the Prometheus text exposition format: every family dumps a
// `# HELP` then `# TYPE` header followed by its samples; histogram bucket
// series are cumulative, end at le="+Inf", and agree with _count.
void validate_prometheus(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::string last_family;
  std::string expected_next_header;  // "" | "TYPE <family>"
  std::vector<std::string> families_seen;
  double last_bucket = -1.0;
  double inf_bucket = -1.0;
  bool saw_any = false;

  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    saw_any = true;
    if (line.rfind("# HELP ", 0) == 0) {
      std::istringstream hdr(line.substr(7));
      std::string family;
      hdr >> family;
      ASSERT_FALSE(family.empty()) << line;
      expected_next_header = "TYPE " + family;
      families_seen.push_back(family);
      last_family = family;
      last_bucket = -1.0;
      inf_bucket = -1.0;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream hdr(line.substr(7));
      std::string family;
      std::string type;
      hdr >> family >> type;
      EXPECT_EQ("TYPE " + family, expected_next_header) << line;
      expected_next_header.clear();
      EXPECT_TRUE(type == "counter" || type == "gauge" || type == "histogram") << line;
      continue;
    }
    // Sample line: name{labels} value — must belong to the current family.
    EXPECT_TRUE(expected_next_header.empty()) << "samples before # TYPE: " << line;
    EXPECT_EQ(line.rfind(last_family, 0), 0u) << line << " vs family " << last_family;
    std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    double value = std::stod(line.substr(space + 1));
    std::size_t brace = line.find('{');
    if (brace != std::string::npos && line.find("le=\"") != std::string::npos) {
      // Cumulative bucket series: non-decreasing, +Inf closes it.
      EXPECT_GE(value, last_bucket) << line;
      last_bucket = value;
      if (line.find("le=\"+Inf\"") != std::string::npos) inf_bucket = value;
    }
    if (line.rfind(last_family + "_count ", 0) == 0 && inf_bucket >= 0.0) {
      EXPECT_DOUBLE_EQ(value, inf_bucket) << "_count must equal the +Inf bucket";
    }
  }
  EXPECT_TRUE(saw_any);
  // Families dump in lexicographic order, so the layout is deterministic.
  for (std::size_t i = 1; i < families_seen.size(); ++i) {
    EXPECT_LT(families_seen[i - 1], families_seen[i]);
  }
}

TEST(Registry, PrometheusTextIsSchemaValid) {
  Registry reg;
  reg.counter("rabit_commands_total", "", "Commands intercepted").increment(4);
  reg.counter("rabit_verdicts_total", "verdict=\"blocked\"", "Verdicts").increment();
  reg.counter("rabit_verdicts_total", "verdict=\"pass\"", "Verdicts").increment(3);
  reg.gauge("rabit_fleet_streams", "", "Streams").set(2.0);
  Histogram& h = reg.histogram("rabit_check_latency_us", "Check latency", {1.0, 10.0, 100.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);
  h.observe(5000.0);

  std::string text = reg.prometheus_text();
  validate_prometheus(text);
  EXPECT_NE(text.find("rabit_check_latency_us_bucket{le=\"+Inf\"} 4"), std::string::npos)
      << text;
  EXPECT_NE(text.find("rabit_check_latency_us_count 4"), std::string::npos);
  EXPECT_NE(text.find("rabit_verdicts_total{verdict=\"blocked\"} 1"), std::string::npos);
}

// --- spans and rungs through the Supervisor ----------------------------------

class ObsSupervisorTest : public ::testing::Test {
 protected:
  ObsSupervisorTest() : backend(sim::testbed_profile()) {
    sim::build_hein_testbed_deck(backend);
    engine = std::make_unique<core::RabitEngine>(
        core::config_from_backend(backend, core::Variant::Modified));
  }

  trace::Supervisor::Options observed_options() {
    trace::Supervisor::Options opts;
    opts.obs_sink = &events;
    opts.obs_metrics = &metrics;
    opts.obs_stream = "test-stream";
    return opts;
  }

  sim::LabBackend backend;
  std::unique_ptr<core::RabitEngine> engine;
  Collector events;
  Registry metrics;
};

TEST_F(ObsSupervisorTest, OneSpanPerCommandWithOrderedPhases) {
  trace::Supervisor sup(engine.get(), &backend, observed_options());
  auto workflow = script::record_workflow(backend, script::testbed_workflow_source());
  trace::RunReport report = sup.run(workflow);

  ASSERT_EQ(events.spans().size(), report.steps.size());
  double prev_t0 = -1.0;
  for (std::size_t i = 0; i < events.spans().size(); ++i) {
    const SpanRecord& span = events.spans()[i];
    SCOPED_TRACE(span.device + "." + span.action);
    EXPECT_EQ(span.seq, i);
    EXPECT_EQ(span.stream, "test-stream");
    EXPECT_EQ(span.verdict, "pass");
    EXPECT_GE(span.t0_modeled_s, prev_t0);
    prev_t0 = span.t0_modeled_s;
    // Pipeline order: canonicalize, precondition, dispatch, postcondition.
    ASSERT_GE(span.phases.size(), 4u);
    EXPECT_EQ(span.phases[0].phase, Phase::Canonicalize);
    EXPECT_EQ(span.phases[1].phase, Phase::Precondition);
    ASSERT_NE(span.find_phase(Phase::Dispatch), nullptr);
    ASSERT_NE(span.find_phase(Phase::Postcondition), nullptr);
    // The precondition phase carries the paper's modeled base check cost.
    EXPECT_DOUBLE_EQ(span.find_phase(Phase::Precondition)->dur_modeled_s,
                     core::RabitEngine::kBaseCheckCost_s);
  }
  EXPECT_TRUE(events.rungs().empty());

  // Metrics agree with the span stream.
  ASSERT_NE(metrics.find_counter("rabit_commands_total"), nullptr);
  EXPECT_EQ(metrics.find_counter("rabit_commands_total")->value(), report.steps.size());
  ASSERT_NE(metrics.find_counter("rabit_verdicts_total", "verdict=\"pass\""), nullptr);
  EXPECT_EQ(metrics.find_counter("rabit_verdicts_total", "verdict=\"pass\"")->value(),
            report.steps.size());
  const Histogram* lat = metrics.find_histogram("rabit_check_latency_us");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count(), report.steps.size());
  // run() absorbs the engine's Stats counters once at the end.
  ASSERT_NE(metrics.find_counter("rabit_engine_commands_checked_total"), nullptr);
  EXPECT_EQ(metrics.find_counter("rabit_engine_commands_checked_total")->value(),
            report.steps.size());
}

TEST_F(ObsSupervisorTest, BlockedCommandGetsVerdictAndRule) {
  trace::Supervisor sup(engine.get(), &backend, observed_options());
  sup.start();
  // G1: commanding the arm into a device's space without a reason.
  geom::Vec3 target =
      backend.arm(ids::kViperX).to_local(backend.find_site("dosing_device")->lab_position);
  json::Object args;
  args["position"] = json::Array{target.x, target.y, target.z};
  trace::SupervisedStep step = sup.step(make_cmd(ids::kViperX, "move_to", std::move(args)));

  ASSERT_TRUE(step.alert.has_value());
  ASSERT_EQ(events.spans().size(), 1u);
  const SpanRecord& span = events.spans()[0];
  EXPECT_EQ(span.verdict, "blocked");
  EXPECT_EQ(span.rule, "G1");
  // Blocked pre-execution: no dispatch or postcondition phase ever ran.
  EXPECT_EQ(span.find_phase(Phase::Dispatch), nullptr);
  EXPECT_EQ(span.find_phase(Phase::Postcondition), nullptr);
  ASSERT_NE(metrics.find_counter("rabit_verdicts_total", "verdict=\"blocked\""), nullptr);
  ASSERT_NE(metrics.find_counter("rabit_alerts_total", "kind=\"invalid_command\""), nullptr);
}

TEST_F(ObsSupervisorTest, RecoveryRetriesEmitRungs) {
  dev::FaultSchedule schedule;
  dev::TransientFault fault;
  fault.device = ids::kDosingDevice;
  fault.action = "set_door";
  fault.kind = dev::TransientKind::FirmwareBusy;
  fault.clear_after_attempts = 2;
  schedule.add(fault);
  backend.set_fault_schedule(std::move(schedule));

  trace::Supervisor::Options opts = observed_options();
  opts.recovery = recovery::RecoveryPolicy{};
  trace::Supervisor sup(engine.get(), &backend, opts);
  sup.start();
  json::Object door;
  door["state"] = std::string("open");
  trace::SupervisedStep step = sup.step(make_cmd(ids::kDosingDevice, "set_door", std::move(door)));

  EXPECT_EQ(step.retries, 2u);
  ASSERT_EQ(events.rungs().size(), 2u);
  for (std::size_t i = 0; i < events.rungs().size(); ++i) {
    const RungRecord& rung = events.rungs()[i];
    EXPECT_EQ(rung.kind, "retry");
    EXPECT_EQ(rung.attempt, i + 1);
    EXPECT_EQ(rung.span_seq, 0u);
    EXPECT_EQ(rung.device, ids::kDosingDevice);
    EXPECT_EQ(rung.stream, "test-stream");
  }
  ASSERT_EQ(events.spans().size(), 1u);
  EXPECT_EQ(events.spans()[0].verdict, "pass");
  // The span's recovery phase carries the modeled backoff time.
  const PhaseSample* rec = events.spans()[0].find_phase(Phase::Recovery);
  ASSERT_NE(rec, nullptr);
  EXPECT_GT(rec->dur_modeled_s, 0.0);
  ASSERT_NE(metrics.find_counter("rabit_recovery_retries_total"), nullptr);
  EXPECT_EQ(metrics.find_counter("rabit_recovery_retries_total")->value(), 2u);
}

TEST_F(ObsSupervisorTest, NoSinkMeansNoObservationAndNoSpanLeft) {
  trace::Supervisor sup(engine.get(), &backend,
                        trace::Supervisor::Options{});  // obs disabled
  auto workflow = script::record_workflow(backend, script::testbed_workflow_source());
  (void)sup.run(workflow);
  EXPECT_TRUE(events.empty());
  // The engine must not be left pointing at a dead span.
  EXPECT_EQ(engine->span(), nullptr);
}

// --- exporters ---------------------------------------------------------------

/// A full observed run — testbed workflow, one transient fault so the
/// collector sees rungs as well as spans. Self-contained so tests can run it
/// several times to compare export bytes.
struct ObservedRun {
  ObservedRun() : backend(sim::testbed_profile()) {
    sim::build_hein_testbed_deck(backend);
    core::RabitEngine engine(core::config_from_backend(backend, core::Variant::Modified));
    // Record first (recording interprets the workflow against the backend),
    // then arm the transient fault so only the supervised run sees it.
    auto workflow = script::record_workflow(backend, script::testbed_workflow_source());
    dev::FaultSchedule schedule;
    dev::TransientFault fault;
    fault.device = ids::kDosingDevice;
    fault.action = "set_door";
    fault.kind = dev::TransientKind::FirmwareBusy;
    fault.clear_after_attempts = 1;
    schedule.add(fault);
    backend.set_fault_schedule(std::move(schedule));

    trace::Supervisor::Options opts;
    opts.obs_sink = &events;
    opts.obs_metrics = &metrics;
    opts.obs_stream = "test-stream";
    opts.recovery = recovery::RecoveryPolicy{};
    trace::Supervisor sup(&engine, &backend, opts);
    (void)sup.run(workflow);
  }

  sim::LabBackend backend;
  Collector events;
  Registry metrics;
};

TEST(ObsExport, EventsJsonlIsModeledTimeOnlyAndParses) {
  ObservedRun run;
  const Collector& events = run.events;
  ASSERT_FALSE(events.spans().empty());
  ASSERT_FALSE(events.rungs().empty());
  std::string jsonl = export_events_jsonl(events);
  std::istringstream in(jsonl);
  std::string line;
  std::size_t spans = 0;
  std::size_t rungs = 0;
  while (std::getline(in, line)) {
    json::Value v = json::parse(line);
    const json::Object& o = v.as_object();
    const std::string& kind = o.at("kind").as_string();
    ASSERT_TRUE(kind == "span" || kind == "rung") << line;
    if (kind == "span") {
      ++spans;
      EXPECT_NE(o.find("seq"), nullptr);
      EXPECT_NE(o.find("device"), nullptr);
      EXPECT_NE(o.find("verdict"), nullptr);
      EXPECT_NE(o.find("t_modeled_s"), nullptr);
      for (const json::Value& p : o.at("phases").as_array()) {
        const json::Object& phase = p.as_object();
        EXPECT_NE(phase.find("phase"), nullptr);
        EXPECT_NE(phase.find("dur_modeled_s"), nullptr);
        // Determinism contract: no wall-clock field ever reaches the export.
        EXPECT_EQ(phase.find("wall_us"), nullptr);
      }
    } else {
      ++rungs;
      EXPECT_NE(o.find("span_seq"), nullptr);
      EXPECT_NE(o.find("rung"), nullptr);
      EXPECT_NE(o.find("attempt"), nullptr);
    }
    EXPECT_EQ(line.find("wall"), std::string::npos) << line;
  }
  EXPECT_EQ(spans, events.spans().size());
  EXPECT_EQ(rungs, events.rungs().size());
}

TEST(ObsExport, ChromeTraceIsSchemaValid) {
  ObservedRun run;
  const Collector& events = run.events;
  ASSERT_FALSE(events.spans().empty());
  ASSERT_FALSE(events.rungs().empty());
  std::string text = export_chrome_trace(events);
  json::Value root = json::parse(text);
  const json::Array& trace = root.as_object().at("traceEvents").as_array();
  ASSERT_FALSE(trace.empty());

  std::set<int> pids_with_metadata;
  std::size_t complete = 0;
  std::size_t instants = 0;
  for (const json::Value& ev : trace) {
    const json::Object& o = ev.as_object();
    ASSERT_NE(o.find("name"), nullptr);
    ASSERT_NE(o.find("ph"), nullptr);
    ASSERT_NE(o.find("pid"), nullptr);
    ASSERT_NE(o.find("tid"), nullptr);
    const std::string& ph = o.at("ph").as_string();
    int pid = static_cast<int>(o.at("pid").as_double());
    if (ph == "M") {
      EXPECT_EQ(o.at("name").as_string(), "process_name");
      pids_with_metadata.insert(pid);
      continue;
    }
    // Any event stream for a pid starts with its process_name metadata.
    EXPECT_TRUE(pids_with_metadata.count(pid)) << "pid " << pid << " lacks metadata";
    if (ph == "X") {
      ++complete;
      EXPECT_GE(o.at("ts").as_double(), 0.0);
      EXPECT_GE(o.at("dur").as_double(), 0.0);
    } else if (ph == "i") {
      ++instants;
      EXPECT_NE(o.find("ts"), nullptr);
      EXPECT_EQ(o.at("s").as_string(), "t");
    } else {
      FAIL() << "unexpected phase type " << ph;
    }
  }
  // One enclosing X per span plus one X per recorded phase; one i per rung.
  std::size_t phase_events = 0;
  for (const SpanRecord& s : events.spans()) phase_events += s.phases.size();
  EXPECT_EQ(complete, events.spans().size() + phase_events);
  EXPECT_EQ(instants, events.rungs().size());
}

TEST(ObsExport, ExportsAreByteIdenticalAcrossRuns) {
  // Two fresh runs of the same deterministic setup: the exports depend only
  // on the modeled history, never on wall clock.
  ObservedRun first;
  ObservedRun second;
  ASSERT_FALSE(first.events.empty());
  EXPECT_EQ(export_events_jsonl(first.events), export_events_jsonl(second.events));
  EXPECT_EQ(export_chrome_trace(first.events), export_chrome_trace(second.events));
}

TEST(ObsExport, WriteExportDirEmitsAllThreeFormats) {
  ObservedRun run;
  const Collector& events = run.events;
  const Registry& metrics = run.metrics;
  std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "rabit_obs_export";
  std::filesystem::remove_all(dir);
  std::string error;
  ASSERT_TRUE(write_export_dir(dir.string(), events, metrics, &error)) << error;

  for (const char* name : {"events.jsonl", "trace.json", "metrics.prom"}) {
    SCOPED_TRACE(name);
    std::ifstream in(dir / name);
    ASSERT_TRUE(in.good());
    std::ostringstream buf;
    buf << in.rdbuf();
    EXPECT_FALSE(buf.str().empty());
  }
  // The metrics dump is the registry's exposition, schema and all.
  std::ifstream in(dir / "metrics.prom");
  std::ostringstream buf;
  buf << in.rdbuf();
  validate_prometheus(buf.str());
}

}  // namespace
}  // namespace rabit::obs
