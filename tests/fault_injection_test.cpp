// FaultPlan coverage across every concrete station type: a status command
// that lies (reported_overrides) must be caught by the postcondition check,
// and an action that silently does nothing (dead_actions) must surface as a
// MalfunctionFlagged step — for the dosing device, syringe pump, hotplate,
// centrifuge, and thermoshaker alike (Fig. 2 lines 13-15).
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "recovery/recovery.hpp"
#include "sim/deck.hpp"
#include "trace/trace.hpp"

namespace rabit::trace {
namespace {

using dev::Command;
namespace ids = sim::deck_ids;

Command make_cmd(std::string device, std::string action, json::Object args = {}) {
  Command c;
  c.device = std::move(device);
  c.action = std::move(action);
  c.args = json::Value(std::move(args));
  return c;
}

json::Object num_arg(const char* key, double value) {
  json::Object o;
  o[key] = value;
  return o;
}

json::Object door_arg(const char* state) {
  json::Object o;
  o["state"] = std::string(state);
  return o;
}

/// One fault scenario: a command that normally succeeds, plus the fault
/// plan under which its postconditions must diverge.
struct FaultCase {
  const char* name;
  const char* device;
  Command command;
  dev::FaultPlan plan;
};

std::vector<FaultCase> reported_override_cases() {
  std::vector<FaultCase> cases;
  {
    dev::FaultPlan plan;
    plan.reported_overrides["doorStatus"] = std::string("closed");
    cases.push_back({"dosing_door_lies", ids::kDosingDevice,
                     make_cmd(ids::kDosingDevice, "set_door", door_arg("open")), plan});
  }
  {
    dev::FaultPlan plan;
    plan.reported_overrides["heldMl"] = 0.0;
    cases.push_back({"pump_held_lies", ids::kSyringePump,
                     make_cmd(ids::kSyringePump, "draw_solvent", num_arg("volume", 10.0)),
                     plan});
  }
  {
    dev::FaultPlan plan;
    plan.reported_overrides["targetC"] = 25.0;
    cases.push_back({"hotplate_target_lies", ids::kHotplate,
                     make_cmd(ids::kHotplate, "set_temperature", num_arg("celsius", 80.0)),
                     plan});
  }
  {
    dev::FaultPlan plan;
    plan.reported_overrides["doorStatus"] = std::string("closed");
    cases.push_back({"centrifuge_door_lies", ids::kCentrifuge,
                     make_cmd(ids::kCentrifuge, "set_door", door_arg("open")), plan});
  }
  {
    dev::FaultPlan plan;
    plan.reported_overrides["targetC"] = 25.0;
    cases.push_back({"thermoshaker_target_lies", ids::kThermoshaker,
                     make_cmd(ids::kThermoshaker, "set_temperature", num_arg("celsius", 50.0)),
                     plan});
  }
  return cases;
}

std::vector<FaultCase> dead_action_cases() {
  std::vector<FaultCase> cases;
  {
    dev::FaultPlan plan;
    plan.dead_actions = {"set_door"};
    cases.push_back({"dosing_dead_door", ids::kDosingDevice,
                     make_cmd(ids::kDosingDevice, "set_door", door_arg("open")), plan});
  }
  {
    dev::FaultPlan plan;
    plan.dead_actions = {"draw_solvent"};
    cases.push_back({"pump_dead_draw", ids::kSyringePump,
                     make_cmd(ids::kSyringePump, "draw_solvent", num_arg("volume", 10.0)),
                     plan});
  }
  {
    dev::FaultPlan plan;
    plan.dead_actions = {"set_temperature"};
    cases.push_back({"hotplate_dead_heater", ids::kHotplate,
                     make_cmd(ids::kHotplate, "set_temperature", num_arg("celsius", 80.0)),
                     plan});
  }
  {
    dev::FaultPlan plan;
    plan.dead_actions = {"set_door"};
    cases.push_back({"centrifuge_dead_door", ids::kCentrifuge,
                     make_cmd(ids::kCentrifuge, "set_door", door_arg("open")), plan});
  }
  {
    dev::FaultPlan plan;
    plan.dead_actions = {"set_temperature"};
    cases.push_back({"thermoshaker_dead_heater", ids::kThermoshaker,
                     make_cmd(ids::kThermoshaker, "set_temperature", num_arg("celsius", 50.0)),
                     plan});
  }
  return cases;
}

class FaultInjection : public ::testing::Test {
 protected:
  FaultInjection() : backend(sim::testbed_profile()) {
    sim::build_hein_testbed_deck(backend);
  }

  /// Runs the case's command under a fresh Modified engine with the fault
  /// plan installed; returns the supervised step.
  SupervisedStep run_case(const FaultCase& fc) {
    backend.registry().at(fc.device).set_fault_plan(fc.plan);
    engine = std::make_unique<core::RabitEngine>(
        core::config_from_backend(backend, core::Variant::Modified));
    Supervisor sup(engine.get(), &backend);
    sup.start();
    return sup.step(fc.command);
  }

  sim::LabBackend backend;
  std::unique_ptr<core::RabitEngine> engine;
};

TEST_F(FaultInjection, ReportedOverridesCaughtByPostconditions) {
  for (const FaultCase& fc : reported_override_cases()) {
    SCOPED_TRACE(fc.name);
    SupervisedStep step = run_case(fc);
    ASSERT_TRUE(step.alert.has_value()) << fc.device << " divergence went unnoticed";
    EXPECT_EQ(step.alert->kind, core::AlertKind::DeviceMalfunction);
    EXPECT_TRUE(step.halted);
    backend.registry().at(fc.device).clear_fault_plan();
  }
}

TEST_F(FaultInjection, DeadActionsFlaggedAsMalfunction) {
  for (const FaultCase& fc : dead_action_cases()) {
    SCOPED_TRACE(fc.name);
    SupervisedStep step = run_case(fc);
    ASSERT_TRUE(step.alert.has_value()) << fc.device << " dead action went unnoticed";
    EXPECT_EQ(step.alert->kind, core::AlertKind::DeviceMalfunction);
    EXPECT_TRUE(step.halted);
    backend.registry().at(fc.device).clear_fault_plan();
  }
}

TEST_F(FaultInjection, HealthyDevicesRaiseNoAlerts) {
  // The same commands on an un-faulted deck all pass — the alerts above are
  // caused by the faults, not by the commands.
  std::vector<FaultCase> cases = reported_override_cases();
  engine = std::make_unique<core::RabitEngine>(
      core::config_from_backend(backend, core::Variant::Modified));
  Supervisor sup(engine.get(), &backend);
  sup.start();
  for (const FaultCase& fc : cases) {
    SCOPED_TRACE(fc.name);
    SupervisedStep step = sup.step(fc.command);
    EXPECT_FALSE(step.alert.has_value());
    EXPECT_FALSE(step.halted);
  }
}

// --- escalation re-entrancy ---------------------------------------------------

TEST_F(FaultInjection, FaultingSafeStateCommandDoesNotReenterEscalation) {
  // A permanent dead action on the dosing device drives the full ladder; a
  // never-clearing busy fault on the arm's "go_sleep" makes a safe-state
  // command itself fail mid-escalation (arms always park in the sequence). The regression this guards against:
  // escalate() re-entered from inside the safe controller would double-count
  // the quarantine rung and draw from the BackoffClock mid-sequence,
  // perturbing the deterministic jitter stream.
  auto run_once = [](std::string* jsonl) {
    sim::LabBackend backend(sim::testbed_profile());
    sim::build_hein_testbed_deck(backend);
    dev::FaultPlan plan;
    plan.dead_actions = {"set_door"};
    dev::FaultSchedule schedule;
    schedule.add_permanent(ids::kDosingDevice, plan);
    dev::TransientFault busy;
    busy.device = ids::kViperX;
    busy.action = "go_sleep";
    busy.kind = dev::TransientKind::FirmwareBusy;
    busy.clear_after_attempts = 0;  // never clears
    schedule.add(busy);
    backend.set_fault_schedule(std::move(schedule));

    core::RabitEngine engine(core::config_from_backend(backend, core::Variant::Modified));
    Supervisor::Options opts;
    opts.recovery = recovery::RecoveryPolicy{};
    Supervisor sup(&engine, &backend, opts);
    sup.start();
    (void)sup.step(make_cmd(ids::kDosingDevice, "set_door", door_arg("open")));
    if (jsonl != nullptr) *jsonl = sup.log().to_jsonl();
    return sup.recovery_report();
  };

  std::string first_trace;
  recovery::RecoveryReport rec = run_once(&first_trace);

  // The ladder ran exactly once: one quarantine, one safe-state entry, one
  // halt — even though a safe-state command failed along the way.
  EXPECT_GE(rec.safe_state_failures, 1u);
  ASSERT_EQ(rec.quarantined.size(), 1u);
  EXPECT_EQ(rec.quarantined[0], ids::kDosingDevice);
  std::size_t quarantines = 0, safe_states = 0, halts = 0;
  for (const recovery::RecoveryEvent& e : rec.events) {
    quarantines += e.kind == recovery::RecoveryEvent::Kind::Quarantine;
    safe_states += e.kind == recovery::RecoveryEvent::Kind::SafeState;
    halts += e.kind == recovery::RecoveryEvent::Kind::Halt;
  }
  EXPECT_EQ(quarantines, 1u);
  EXPECT_EQ(safe_states, 1u);
  EXPECT_EQ(halts, 1u);

  // No retry was drawn for the faulting safe-state command: every retry in
  // the ladder belongs to the primary command, and the budget was consumed
  // exactly once.
  EXPECT_EQ(rec.retries, recovery::RecoveryPolicy{}.max_retries);
  for (const recovery::RecoveryEvent& e : rec.events) {
    if (e.kind == recovery::RecoveryEvent::Kind::Retry) {
      EXPECT_EQ(e.device, ids::kDosingDevice);
    }
  }

  // And the jitter stream stayed untouched: the identical scenario replays
  // to a byte-identical trace.
  std::string second_trace;
  (void)run_once(&second_trace);
  EXPECT_EQ(first_trace, second_trace);
}

}  // namespace
}  // namespace rabit::trace
