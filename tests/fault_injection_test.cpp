// FaultPlan coverage across every concrete station type: a status command
// that lies (reported_overrides) must be caught by the postcondition check,
// and an action that silently does nothing (dead_actions) must surface as a
// MalfunctionFlagged step — for the dosing device, syringe pump, hotplate,
// centrifuge, and thermoshaker alike (Fig. 2 lines 13-15).
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "sim/deck.hpp"
#include "trace/trace.hpp"

namespace rabit::trace {
namespace {

using dev::Command;
namespace ids = sim::deck_ids;

Command make_cmd(std::string device, std::string action, json::Object args = {}) {
  Command c;
  c.device = std::move(device);
  c.action = std::move(action);
  c.args = json::Value(std::move(args));
  return c;
}

json::Object num_arg(const char* key, double value) {
  json::Object o;
  o[key] = value;
  return o;
}

json::Object door_arg(const char* state) {
  json::Object o;
  o["state"] = std::string(state);
  return o;
}

/// One fault scenario: a command that normally succeeds, plus the fault
/// plan under which its postconditions must diverge.
struct FaultCase {
  const char* name;
  const char* device;
  Command command;
  dev::FaultPlan plan;
};

std::vector<FaultCase> reported_override_cases() {
  std::vector<FaultCase> cases;
  {
    dev::FaultPlan plan;
    plan.reported_overrides["doorStatus"] = std::string("closed");
    cases.push_back({"dosing_door_lies", ids::kDosingDevice,
                     make_cmd(ids::kDosingDevice, "set_door", door_arg("open")), plan});
  }
  {
    dev::FaultPlan plan;
    plan.reported_overrides["heldMl"] = 0.0;
    cases.push_back({"pump_held_lies", ids::kSyringePump,
                     make_cmd(ids::kSyringePump, "draw_solvent", num_arg("volume", 10.0)),
                     plan});
  }
  {
    dev::FaultPlan plan;
    plan.reported_overrides["targetC"] = 25.0;
    cases.push_back({"hotplate_target_lies", ids::kHotplate,
                     make_cmd(ids::kHotplate, "set_temperature", num_arg("celsius", 80.0)),
                     plan});
  }
  {
    dev::FaultPlan plan;
    plan.reported_overrides["doorStatus"] = std::string("closed");
    cases.push_back({"centrifuge_door_lies", ids::kCentrifuge,
                     make_cmd(ids::kCentrifuge, "set_door", door_arg("open")), plan});
  }
  {
    dev::FaultPlan plan;
    plan.reported_overrides["targetC"] = 25.0;
    cases.push_back({"thermoshaker_target_lies", ids::kThermoshaker,
                     make_cmd(ids::kThermoshaker, "set_temperature", num_arg("celsius", 50.0)),
                     plan});
  }
  return cases;
}

std::vector<FaultCase> dead_action_cases() {
  std::vector<FaultCase> cases;
  {
    dev::FaultPlan plan;
    plan.dead_actions = {"set_door"};
    cases.push_back({"dosing_dead_door", ids::kDosingDevice,
                     make_cmd(ids::kDosingDevice, "set_door", door_arg("open")), plan});
  }
  {
    dev::FaultPlan plan;
    plan.dead_actions = {"draw_solvent"};
    cases.push_back({"pump_dead_draw", ids::kSyringePump,
                     make_cmd(ids::kSyringePump, "draw_solvent", num_arg("volume", 10.0)),
                     plan});
  }
  {
    dev::FaultPlan plan;
    plan.dead_actions = {"set_temperature"};
    cases.push_back({"hotplate_dead_heater", ids::kHotplate,
                     make_cmd(ids::kHotplate, "set_temperature", num_arg("celsius", 80.0)),
                     plan});
  }
  {
    dev::FaultPlan plan;
    plan.dead_actions = {"set_door"};
    cases.push_back({"centrifuge_dead_door", ids::kCentrifuge,
                     make_cmd(ids::kCentrifuge, "set_door", door_arg("open")), plan});
  }
  {
    dev::FaultPlan plan;
    plan.dead_actions = {"set_temperature"};
    cases.push_back({"thermoshaker_dead_heater", ids::kThermoshaker,
                     make_cmd(ids::kThermoshaker, "set_temperature", num_arg("celsius", 50.0)),
                     plan});
  }
  return cases;
}

class FaultInjection : public ::testing::Test {
 protected:
  FaultInjection() : backend(sim::testbed_profile()) {
    sim::build_hein_testbed_deck(backend);
  }

  /// Runs the case's command under a fresh Modified engine with the fault
  /// plan installed; returns the supervised step.
  SupervisedStep run_case(const FaultCase& fc) {
    backend.registry().at(fc.device).set_fault_plan(fc.plan);
    engine = std::make_unique<core::RabitEngine>(
        core::config_from_backend(backend, core::Variant::Modified));
    Supervisor sup(engine.get(), &backend);
    sup.start();
    return sup.step(fc.command);
  }

  sim::LabBackend backend;
  std::unique_ptr<core::RabitEngine> engine;
};

TEST_F(FaultInjection, ReportedOverridesCaughtByPostconditions) {
  for (const FaultCase& fc : reported_override_cases()) {
    SCOPED_TRACE(fc.name);
    SupervisedStep step = run_case(fc);
    ASSERT_TRUE(step.alert.has_value()) << fc.device << " divergence went unnoticed";
    EXPECT_EQ(step.alert->kind, core::AlertKind::DeviceMalfunction);
    EXPECT_TRUE(step.halted);
    backend.registry().at(fc.device).clear_fault_plan();
  }
}

TEST_F(FaultInjection, DeadActionsFlaggedAsMalfunction) {
  for (const FaultCase& fc : dead_action_cases()) {
    SCOPED_TRACE(fc.name);
    SupervisedStep step = run_case(fc);
    ASSERT_TRUE(step.alert.has_value()) << fc.device << " dead action went unnoticed";
    EXPECT_EQ(step.alert->kind, core::AlertKind::DeviceMalfunction);
    EXPECT_TRUE(step.halted);
    backend.registry().at(fc.device).clear_fault_plan();
  }
}

TEST_F(FaultInjection, HealthyDevicesRaiseNoAlerts) {
  // The same commands on an un-faulted deck all pass — the alerts above are
  // caused by the faults, not by the commands.
  std::vector<FaultCase> cases = reported_override_cases();
  engine = std::make_unique<core::RabitEngine>(
      core::config_from_backend(backend, core::Variant::Modified));
  Supervisor sup(engine.get(), &backend);
  sup.start();
  for (const FaultCase& fc : cases) {
    SCOPED_TRACE(fc.name);
    SupervisedStep step = sup.step(fc.command);
    EXPECT_FALSE(step.alert.has_value());
    EXPECT_FALSE(step.halted);
  }
}

}  // namespace
}  // namespace rabit::trace
