#include "geometry/geometry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace rabit::geom {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(Vec3, Arithmetic) {
  Vec3 a(1, 2, 3);
  Vec3 b(4, 5, 6);
  EXPECT_TRUE(approx_equal(a + b, Vec3(5, 7, 9)));
  EXPECT_TRUE(approx_equal(b - a, Vec3(3, 3, 3)));
  EXPECT_TRUE(approx_equal(a * 2.0, Vec3(2, 4, 6)));
  EXPECT_TRUE(approx_equal(2.0 * a, a * 2.0));
  EXPECT_TRUE(approx_equal(-a, Vec3(-1, -2, -3)));
}

TEST(Vec3, DotCrossNorm) {
  Vec3 x(1, 0, 0);
  Vec3 y(0, 1, 0);
  EXPECT_DOUBLE_EQ(x.dot(y), 0.0);
  EXPECT_TRUE(approx_equal(x.cross(y), Vec3(0, 0, 1)));
  EXPECT_DOUBLE_EQ(Vec3(3, 4, 0).norm(), 5.0);
  EXPECT_DOUBLE_EQ(Vec3(3, 4, 0).norm_squared(), 25.0);
}

TEST(Vec3, NormalizedUnitLength) {
  Vec3 v(2, -3, 6);
  EXPECT_NEAR(v.normalized().norm(), 1.0, 1e-12);
  // Zero vector stays zero rather than dividing by ~0.
  EXPECT_TRUE(approx_equal(Vec3().normalized(), Vec3()));
}

TEST(Vec3, Lerp) {
  Vec3 a(0, 0, 0);
  Vec3 b(10, 20, 30);
  EXPECT_TRUE(approx_equal(lerp(a, b, 0.0), a));
  EXPECT_TRUE(approx_equal(lerp(a, b, 1.0), b));
  EXPECT_TRUE(approx_equal(lerp(a, b, 0.5), Vec3(5, 10, 15)));
}

// --- Aabb -------------------------------------------------------------------

TEST(Aabb, ConstructionValidation) {
  EXPECT_NO_THROW(Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)));
  EXPECT_THROW(Aabb(Vec3(1, 0, 0), Vec3(0, 1, 1)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(Aabb::from_center(Vec3(), Vec3(-1, 1, 1))),
               std::invalid_argument);
}

TEST(Aabb, FromCenter) {
  Aabb box = Aabb::from_center(Vec3(1, 1, 1), Vec3(2, 4, 6));
  EXPECT_TRUE(approx_equal(box.min, Vec3(0, -1, -2)));
  EXPECT_TRUE(approx_equal(box.max, Vec3(2, 3, 4)));
  EXPECT_TRUE(approx_equal(box.center(), Vec3(1, 1, 1)));
  EXPECT_TRUE(approx_equal(box.size(), Vec3(2, 4, 6)));
  EXPECT_DOUBLE_EQ(box.volume(), 48.0);
}

TEST(Aabb, ContainsBoundaryInclusive) {
  Aabb box(Vec3(0, 0, 0), Vec3(1, 1, 1));
  EXPECT_TRUE(box.contains(Vec3(0.5, 0.5, 0.5)));
  EXPECT_TRUE(box.contains(Vec3(0, 0, 0)));
  EXPECT_TRUE(box.contains(Vec3(1, 1, 1)));
  EXPECT_FALSE(box.contains(Vec3(1.001, 0.5, 0.5)));
  EXPECT_FALSE(box.contains(Vec3(0.5, -0.001, 0.5)));
}

TEST(Aabb, IntersectsSymmetric) {
  Aabb a(Vec3(0, 0, 0), Vec3(2, 2, 2));
  Aabb b(Vec3(1, 1, 1), Vec3(3, 3, 3));
  Aabb c(Vec3(5, 5, 5), Vec3(6, 6, 6));
  EXPECT_TRUE(a.intersects(b));
  EXPECT_TRUE(b.intersects(a));
  EXPECT_FALSE(a.intersects(c));
  // Touching faces intersect.
  Aabb d(Vec3(2, 0, 0), Vec3(3, 2, 2));
  EXPECT_TRUE(a.intersects(d));
}

TEST(Aabb, InflateAndClamp) {
  Aabb box(Vec3(0, 0, 0), Vec3(1, 1, 1));
  Aabb grown = box.inflated(0.5);
  EXPECT_TRUE(approx_equal(grown.min, Vec3(-0.5, -0.5, -0.5)));
  EXPECT_TRUE(approx_equal(grown.max, Vec3(1.5, 1.5, 1.5)));
  // Negative inflation never inverts.
  Aabb shrunk = box.inflated(-2.0);
  EXPECT_LE(shrunk.min.x, shrunk.max.x);
  EXPECT_TRUE(approx_equal(box.clamp(Vec3(5, 0.5, -3)), Vec3(1, 0.5, 0)));
}

TEST(Aabb, DistanceTo) {
  Aabb box(Vec3(0, 0, 0), Vec3(1, 1, 1));
  EXPECT_DOUBLE_EQ(box.distance_to(Vec3(0.5, 0.5, 0.5)), 0.0);
  EXPECT_DOUBLE_EQ(box.distance_to(Vec3(2, 0.5, 0.5)), 1.0);
  EXPECT_NEAR(box.distance_to(Vec3(2, 2, 1)), std::sqrt(2.0), 1e-12);
}

TEST(Aabb, UnitedAndTranslated) {
  Aabb a(Vec3(0, 0, 0), Vec3(1, 1, 1));
  Aabb b(Vec3(2, -1, 0), Vec3(3, 0.5, 2));
  Aabb u = a.united(b);
  EXPECT_TRUE(approx_equal(u.min, Vec3(0, -1, 0)));
  EXPECT_TRUE(approx_equal(u.max, Vec3(3, 1, 2)));
  Aabb t = a.translated(Vec3(1, 2, 3));
  EXPECT_TRUE(approx_equal(t.min, Vec3(1, 2, 3)));
}

// --- segment queries ----------------------------------------------------------

TEST(SegmentBox, StraightThrough) {
  Aabb box(Vec3(0, 0, 0), Vec3(1, 1, 1));
  Segment s{Vec3(-1, 0.5, 0.5), Vec3(2, 0.5, 0.5)};
  auto t = intersect(s, box);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 1.0 / 3.0, 1e-9);
  EXPECT_TRUE(intersects(s, box));
}

TEST(SegmentBox, Miss) {
  Aabb box(Vec3(0, 0, 0), Vec3(1, 1, 1));
  EXPECT_FALSE(intersects(Segment{Vec3(-1, 2, 0.5), Vec3(2, 2, 0.5)}, box));
  EXPECT_FALSE(intersects(Segment{Vec3(2, 0.5, 0.5), Vec3(3, 0.5, 0.5)}, box));
}

TEST(SegmentBox, EndsInside) {
  Aabb box(Vec3(0, 0, 0), Vec3(1, 1, 1));
  Segment s{Vec3(-1, 0.5, 0.5), Vec3(0.5, 0.5, 0.5)};
  EXPECT_TRUE(intersects(s, box));
  Segment inside{Vec3(0.2, 0.2, 0.2), Vec3(0.8, 0.8, 0.8)};
  auto t = intersect(inside, box);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 0.0);  // already inside at the start
}

TEST(SegmentBox, AxisParallelOutsideSlab) {
  Aabb box(Vec3(0, 0, 0), Vec3(1, 1, 1));
  // Parallel to x, but offset in y beyond the slab.
  EXPECT_FALSE(intersects(Segment{Vec3(-1, 1.5, 0.5), Vec3(2, 1.5, 0.5)}, box));
  // Degenerate (point) segment.
  EXPECT_TRUE(intersects(Segment{Vec3(0.5, 0.5, 0.5), Vec3(0.5, 0.5, 0.5)}, box));
  EXPECT_FALSE(intersects(Segment{Vec3(2, 2, 2), Vec3(2, 2, 2)}, box));
}

TEST(SegmentPoint, Distance) {
  Segment s{Vec3(0, 0, 0), Vec3(10, 0, 0)};
  EXPECT_DOUBLE_EQ(distance(s, Vec3(5, 3, 0)), 3.0);
  EXPECT_DOUBLE_EQ(distance(s, Vec3(-4, 3, 0)), 5.0);  // clamps to endpoint
  EXPECT_DOUBLE_EQ(distance(s, Vec3(12, 0, 0)), 2.0);
}

TEST(SegmentSegment, Distance) {
  Segment a{Vec3(0, 0, 0), Vec3(10, 0, 0)};
  Segment b{Vec3(0, 5, 0), Vec3(10, 5, 0)};  // parallel
  EXPECT_NEAR(distance(a, b), 5.0, 1e-9);
  Segment c{Vec3(5, -1, 3), Vec3(5, 1, 3)};  // crossing above
  EXPECT_NEAR(distance(a, c), 3.0, 1e-9);
  Segment d{Vec3(4, 0, 0), Vec3(6, 0, 0)};  // overlapping collinear
  EXPECT_NEAR(distance(a, d), 0.0, 1e-9);
  // Degenerate segments reduce to point distances.
  Segment p{Vec3(0, 2, 0), Vec3(0, 2, 0)};
  EXPECT_NEAR(distance(a, p), 2.0, 1e-9);
}

/// Property: segment/box intersection agrees with dense point sampling.
class SegmentBoxProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(SegmentBoxProperty, MatchesDenseSampling) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> coord(-2.0, 2.0);
  Aabb box(Vec3(-0.5, -0.5, -0.5), Vec3(0.5, 0.5, 0.5));
  for (int trial = 0; trial < 200; ++trial) {
    Segment s{Vec3(coord(rng), coord(rng), coord(rng)),
              Vec3(coord(rng), coord(rng), coord(rng))};
    bool sampled_hit = false;
    for (int i = 0; i <= 400; ++i) {
      if (box.contains(s.point_at(i / 400.0))) {
        sampled_hit = true;
        break;
      }
    }
    bool exact_hit = intersects(s, box);
    // Dense sampling may *miss* a grazing hit, but must never find a hit the
    // exact test misses.
    if (sampled_hit) {
      EXPECT_TRUE(exact_hit) << "seed " << GetParam() << " trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SegmentBoxProperty, ::testing::Values(1u, 2u, 3u, 4u, 5u));

// --- polyline ----------------------------------------------------------------

TEST(Polyline, LengthAndSample) {
  Polyline p({Vec3(0, 0, 0), Vec3(3, 0, 0), Vec3(3, 4, 0)});
  EXPECT_DOUBLE_EQ(p.length(), 7.0);
  EXPECT_TRUE(approx_equal(p.sample(0.0), Vec3(0, 0, 0)));
  EXPECT_TRUE(approx_equal(p.sample(1.0), Vec3(3, 4, 0)));
  EXPECT_TRUE(approx_equal(p.sample(3.0 / 7.0), Vec3(3, 0, 0)));
}

TEST(Polyline, Resample) {
  Polyline p({Vec3(0, 0, 0), Vec3(10, 0, 0)});
  auto pts = p.resample(11);
  ASSERT_EQ(pts.size(), 11u);
  for (int i = 0; i <= 10; ++i) EXPECT_NEAR(pts[static_cast<std::size_t>(i)].x, i, 1e-9);
  EXPECT_THROW(p.resample(1), std::invalid_argument);
}

TEST(Polyline, FirstHit) {
  Polyline p({Vec3(-2, 0, 0), Vec3(2, 0, 0)});
  Aabb box(Vec3(-0.5, -0.5, -0.5), Vec3(0.5, 0.5, 0.5));
  auto hit = p.first_hit(box, 0.01);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->x, -0.5, 0.02);
  Aabb far_box(Vec3(5, 5, 5), Vec3(6, 6, 6));
  EXPECT_FALSE(p.first_hit(far_box, 0.01).has_value());
  EXPECT_THROW(static_cast<void>(p.first_hit(box, 0.0)), std::invalid_argument);
}

TEST(Polyline, EmptyAndSingleton) {
  Polyline empty;
  EXPECT_THROW(static_cast<void>(empty.sample(0.5)), std::logic_error);
  EXPECT_FALSE(Polyline().first_hit(Aabb(Vec3(), Vec3(1, 1, 1)), 0.1).has_value());
  Polyline single({Vec3(1, 2, 3)});
  EXPECT_TRUE(approx_equal(single.sample(0.7), Vec3(1, 2, 3)));
}

// --- transforms -----------------------------------------------------------

TEST(Transform, IdentityAndTranslation) {
  Transform id;
  EXPECT_TRUE(approx_equal(id.apply(Vec3(1, 2, 3)), Vec3(1, 2, 3)));
  Transform t = Transform::translation(Vec3(1, 0, -1));
  EXPECT_TRUE(approx_equal(t.apply(Vec3(1, 2, 3)), Vec3(2, 2, 2)));
}

TEST(Transform, RotationZ) {
  Transform r = Transform::rotation_z(kPi / 2);
  EXPECT_TRUE(approx_equal(r.apply(Vec3(1, 0, 0)), Vec3(0, 1, 0)));
  EXPECT_TRUE(approx_equal(r.apply(Vec3(0, 1, 0)), Vec3(-1, 0, 0)));
  EXPECT_NEAR(r.yaw(), kPi / 2, 1e-12);
}

TEST(Transform, ComposeAssociates) {
  Transform a = Transform::from_euler(0.1, 0.2, 0.3, Vec3(1, 2, 3));
  Transform b = Transform::from_euler(-0.4, 0.5, -0.6, Vec3(-1, 0, 2));
  Vec3 p(0.7, -0.3, 1.1);
  EXPECT_TRUE(approx_equal((a * b).apply(p), a.apply(b.apply(p)), 1e-9));
}

TEST(Transform, InverseRoundTrips) {
  Transform t = Transform::from_euler(0.3, -0.7, 1.2, Vec3(0.5, -1.5, 2.0));
  Vec3 p(1, 2, 3);
  EXPECT_TRUE(approx_equal(t.inverse().apply(t.apply(p)), p, 1e-9));
  EXPECT_TRUE(approx_equal(t.apply(t.inverse().apply(p)), p, 1e-9));
}

TEST(Transform, RotationPreservesLength) {
  Transform t = Transform::from_euler(0.9, 0.4, -1.3, Vec3());
  Vec3 v(2, -1, 4);
  EXPECT_NEAR(t.rotate(v).norm(), v.norm(), 1e-9);
}

// --- frame fitting ----------------------------------------------------------

TEST(FrameFit, RecoversExactTransform) {
  Transform truth = Transform::translation(Vec3(0.6, 0.1, 0.0)) * Transform::rotation_z(kPi);
  std::vector<Vec3> from = {Vec3(0.1, 0.2, 0.0), Vec3(0.3, -0.1, 0.1), Vec3(-0.2, 0.4, 0.05),
                            Vec3(0.25, 0.25, 0.2)};
  std::vector<Vec3> to;
  for (const Vec3& p : from) to.push_back(truth.apply(p));

  FrameFit fit = fit_frame(from, to);
  EXPECT_LT(fit.rms_error, 1e-9);
  for (const Vec3& p : from) {
    EXPECT_TRUE(approx_equal(fit.transform.apply(p), truth.apply(p), 1e-9));
  }
}

TEST(FrameFit, NoisyCorrespondencesReportHonestError) {
  // The paper's testbed measurement: per-point noise of ~2 cm produced an
  // average unification error around 3 cm, making the global frame unusable.
  Transform truth = Transform::translation(Vec3(0.6, 0.1, 0.0)) * Transform::rotation_z(kPi);
  std::mt19937 rng(11);
  std::normal_distribution<double> noise(0.0, 0.02);
  std::uniform_real_distribution<double> coord(-0.4, 0.4);

  std::vector<Vec3> from;
  std::vector<Vec3> to;
  for (int i = 0; i < 12; ++i) {
    Vec3 p(coord(rng), coord(rng), std::abs(coord(rng)) * 0.5);
    from.push_back(p);
    to.push_back(truth.apply(p) + Vec3(noise(rng), noise(rng), noise(rng)));
  }
  FrameFit fit = fit_frame(from, to);
  EXPECT_GT(fit.rms_error, 0.005);  // noise shows up...
  EXPECT_LT(fit.rms_error, 0.08);   // ...but the fit is not garbage
}

TEST(FrameFit, RejectsDegenerateInput) {
  EXPECT_THROW(static_cast<void>(fit_frame({Vec3()}, {Vec3()})), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(fit_frame({Vec3(), Vec3(1, 0, 0)}, {Vec3()})),
               std::invalid_argument);
}

}  // namespace
}  // namespace rabit::geom
