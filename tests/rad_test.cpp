// RAD dataset generator and rule miner tests (paper §II-A).
#include <gtest/gtest.h>

#include "rad/rad.hpp"
#include "sim/deck.hpp"

namespace rabit::rad {
namespace {

namespace ids = sim::deck_ids;

class RadTest : public ::testing::Test {
 protected:
  RadTest() : deck(sim::testbed_profile()) { sim::build_hein_testbed_deck(deck); }
  sim::LabBackend deck;
};

TEST_F(RadTest, AbstractionMapsCommandsToSymbols) {
  std::vector<dev::Command> cmds;
  auto push = [&](const char* device, const char* action, json::Object args = {}) {
    dev::Command c;
    c.device = device;
    c.action = action;
    c.args = json::Value(std::move(args));
    cmds.push_back(std::move(c));
  };
  push(ids::kDosingDevice, "set_door", [] {
    json::Object o;
    o["state"] = std::string("open");
    return o;
  }());
  push(ids::kVial1, "decap");
  // A move whose target lands inside the dosing device is an entry.
  geom::Vec3 local =
      deck.arm(ids::kViperX).to_local(deck.find_site("dosing_device")->lab_position);
  push(ids::kViperX, "move_to", [&] {
    json::Object o;
    o["position"] = json::Array{local.x, local.y, local.z};
    return o;
  }());
  // A move in free space is dropped.
  push(ids::kViperX, "move_to", [] {
    json::Object o;
    o["position"] = json::Array{0.2, -0.2, 0.35};
    return o;
  }());
  push(ids::kViperX, "close_gripper");
  push(ids::kDosingDevice, "run_action", [] {
    json::Object o;
    o["quantity"] = 5.0;
    return o;
  }());

  auto events = abstract_events(cmds, deck);
  EXPECT_EQ(events,
            (std::vector<Event>{"open:dosing_device", "decap:vial_1", "enter:dosing_device",
                                "grab:viperx", "dose_solid:dosing_device"}));
}

TEST_F(RadTest, GeneratorIsDeterministicPerSeed) {
  GeneratorOptions opts;
  opts.days = 5;
  auto a = generate_dataset(deck, opts);
  auto b = generate_dataset(deck, opts);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].commands.size(), b[i].commands.size());
  }
  opts.seed = 99;
  auto c = generate_dataset(deck, opts);
  bool any_difference = a.size() != c.size();
  for (std::size_t i = 0; !any_difference && i < a.size(); ++i) {
    any_difference = a[i].commands.size() != c[i].commands.size();
  }
  EXPECT_TRUE(any_difference);
}

TEST_F(RadTest, GeneratorScalesWithDays) {
  GeneratorOptions opts;
  opts.days = 10;
  opts.experiments_per_day_min = 2;
  opts.experiments_per_day_max = 4;
  auto sessions = generate_dataset(deck, opts);
  EXPECT_GE(sessions.size(), 20u);
  EXPECT_LE(sessions.size(), 40u);
  for (const TraceSession& s : sessions) {
    EXPECT_GE(s.day, 0);
    EXPECT_LT(s.day, 10);
    EXPECT_GT(s.commands.size(), 15u);
  }
}

TEST_F(RadTest, MinerRecoversPlantedRules) {
  GeneratorOptions opts;  // default: 90 days, RAD scale
  auto sessions = generate_dataset(deck, opts);
  std::vector<std::vector<Event>> abstracted;
  abstracted.reserve(sessions.size());
  for (const TraceSession& s : sessions) abstracted.push_back(abstract_events(s.commands, deck));

  auto mined = mine_rules(abstracted, MinerOptions{});
  MiningScore score = score_mining(mined);
  EXPECT_EQ(score.false_negatives, 0u) << "a planted rule was not recovered";
  EXPECT_DOUBLE_EQ(score.recall(), 1.0);
  EXPECT_GE(score.precision(), 0.8);
}

TEST_F(RadTest, MinerConfidenceThresholdFiltersNoise) {
  // A rule violated in a third of sessions must not survive a 0.97 bar.
  std::vector<std::vector<Event>> sessions;
  for (int i = 0; i < 30; ++i) {
    if (i % 3 == 0) {
      sessions.push_back({"b", "a"});  // violation: a not preceded by b
    } else {
      sessions.push_back({"a", "b"});
    }
  }
  MinerOptions opts;
  opts.min_support = 10;
  opts.min_confidence = 0.97;
  auto mined = mine_rules(sessions, opts);
  for (const MinedRule& r : mined) {
    EXPECT_FALSE(r.antecedent == "a" && r.consequent == "b");
  }
  // Lowering the bar lets it through.
  opts.min_confidence = 0.6;
  mined = mine_rules(sessions, opts);
  bool found = false;
  for (const MinedRule& r : mined) found |= r.antecedent == "a" && r.consequent == "b";
  EXPECT_TRUE(found);
}

TEST_F(RadTest, MinerSupportThreshold) {
  std::vector<std::vector<Event>> sessions = {{"x", "y"}, {"x", "y"}};
  MinerOptions opts;
  opts.min_support = 20;
  EXPECT_TRUE(mine_rules(sessions, opts).empty());
  opts.min_support = 2;
  EXPECT_FALSE(mine_rules(sessions, opts).empty());
}

TEST_F(RadTest, MinedRulesSortedByConfidenceThenSupport) {
  GeneratorOptions opts;
  opts.days = 30;
  auto sessions = generate_dataset(deck, opts);
  std::vector<std::vector<Event>> abstracted;
  for (const TraceSession& s : sessions) abstracted.push_back(abstract_events(s.commands, deck));
  auto mined = mine_rules(abstracted, MinerOptions{});
  for (std::size_t i = 1; i < mined.size(); ++i) {
    EXPECT_GE(mined[i - 1].confidence, mined[i].confidence);
  }
}

TEST(MiningScoreMath, PrecisionRecallEdgeCases) {
  MiningScore empty;
  EXPECT_DOUBLE_EQ(empty.precision(), 0.0);
  EXPECT_DOUBLE_EQ(empty.recall(), 0.0);
  MiningScore s;
  s.true_positives = 3;
  s.false_positives = 1;
  s.false_negatives = 2;
  EXPECT_DOUBLE_EQ(s.precision(), 0.75);
  EXPECT_DOUBLE_EQ(s.recall(), 0.6);
}

TEST(MinedRuleDescribe, MentionsBothEvents) {
  MinedRule r{"open:dosing_device", "enter:dosing_device", 42, 0.99};
  std::string d = r.describe();
  EXPECT_NE(d.find("open:dosing_device"), std::string::npos);
  EXPECT_NE(d.find("enter:dosing_device"), std::string::npos);
}

TEST(PlantedRules, MapToPaperTables) {
  auto rules = planted_rules();
  EXPECT_EQ(rules.size(), 5u);
  // The two flagship examples from §II-A: doors open before entry (general)
  // and solids before liquids (Hein-custom).
  bool door_rule = false;
  bool solid_rule = false;
  for (const auto& [a, b] : rules) {
    door_rule |= a == "open:dosing_device" && b == "enter:dosing_device";
    solid_rule |= a == "dose_solid:dosing_device" && b == "dose_liquid:syringe_pump";
  }
  EXPECT_TRUE(door_rule);
  EXPECT_TRUE(solid_rule);
}

}  // namespace
}  // namespace rabit::rad
