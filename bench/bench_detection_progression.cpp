// Section IV headline reproduction: detection-rate progression across RABIT
// variants — initial 8/16 (50%), modified 12/16 (75%), with the Extended
// Simulator 13/16 (81%) — plus the zero-false-positive property on every
// safe baseline.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace rabit;
using namespace rabit::bench;

void print_progression() {
  print_header("Detection-rate progression across RABIT variants",
               "RABIT (DSN'24), Section IV summary (50% -> 75% -> 81%)");

  const core::Variant variants[] = {core::Variant::Initial, core::Variant::Modified,
                                    core::Variant::ModifiedWithSim};
  const int paper_detected[] = {8, 12, 13};

  std::printf("%-16s %10s %8s %10s   %s\n", "Variant", "Detected", "Rate", "Paper", "Misses");
  print_rule();
  for (int vi = 0; vi < 3; ++vi) {
    int detected = 0;
    std::string misses;
    for (const bugs::BugSpec& bug : bugs::bug_catalogue()) {
      bugs::BugOutcome outcome = bugs::evaluate_bug(bug, variants[vi]);
      if (outcome.detected) {
        ++detected;
      } else {
        if (!misses.empty()) misses += " ";
        misses += bug.id;
      }
    }
    std::printf("%-16s %7d/16 %7.1f%% %7d/16   %s\n",
                std::string(core::to_string(variants[vi])).c_str(), detected,
                100.0 * detected / 16.0, paper_detected[vi], misses.c_str());
  }
  print_rule();
  std::printf("never detected (matches the paper's analysis):\n");
  std::printf("  L2/L3 — no gripper pressure sensor, experiments run without a vial\n");
  std::printf("  M6    — the ~3 cm frame-unification error leaves a blind margin\n");
  std::printf("          around the other arm's configured parked cuboid\n");

  // Zero false positives across all 16 safe baselines x 3 variants.
  int false_positives = 0;
  int baseline_runs = 0;
  for (const bugs::BugSpec& bug : bugs::bug_catalogue()) {
    for (core::Variant v : variants) {
      auto staging = make_testbed();
      bugs::BugOutcome outcome = bugs::evaluate_stream(bug.build_safe(*staging), v);
      ++baseline_runs;
      if (outcome.alerted) ++false_positives;
    }
  }
  std::printf("\nfalse positives on %d safe baseline runs: %d (paper: \"RABIT never\n",
              baseline_runs, false_positives);
  std::printf("produced any false positives\")\n");
}

void BM_FullCatalogueOneVariant(benchmark::State& state) {
  auto variant = static_cast<core::Variant>(state.range(0));
  for (auto _ : state) {
    int detected = 0;
    for (const bugs::BugSpec& bug : bugs::bug_catalogue()) {
      if (bugs::evaluate_bug(bug, variant).detected) ++detected;
    }
    benchmark::DoNotOptimize(detected);
  }
  state.SetLabel(std::string(core::to_string(variant)));
}
BENCHMARK(BM_FullCatalogueOneVariant)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_progression();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
