// Shared helpers for the reproduction benches. Each bench binary prints the
// paper table/figure it regenerates (rows first, then google-benchmark
// microbenchmarks where timing is part of the claim).
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "bugs/bugs.hpp"
#include "core/engine.hpp"
#include "script/workflows.hpp"
#include "sim/deck.hpp"
#include "sim/extended_sim.hpp"
#include "trace/trace.hpp"

namespace rabit::bench {

inline std::unique_ptr<sim::LabBackend> make_testbed(
    sim::StageProfile profile = sim::testbed_profile()) {
  auto backend = std::make_unique<sim::LabBackend>(std::move(profile));
  sim::build_hein_testbed_deck(*backend);
  return backend;
}

inline std::unique_ptr<sim::LabBackend> make_production() {
  auto backend = std::make_unique<sim::LabBackend>(sim::production_profile());
  sim::build_hein_production_deck(*backend);
  return backend;
}

/// Engine + (for V3) an Extended Simulator wired to the backend.
struct EngineBundle {
  std::unique_ptr<core::RabitEngine> engine;
  std::unique_ptr<sim::ExtendedSimulator> simulator;
};

inline EngineBundle make_engine(sim::LabBackend& backend, core::Variant variant,
                                bool gui_enabled = true) {
  EngineBundle bundle;
  core::EngineConfig config = core::config_from_backend(backend, variant);
  if (variant == core::Variant::ModifiedWithSim) {
    sim::WorldModel world = sim::deck_world_model(backend);
    for (const core::DeviceMeta& m : config.devices) {
      if (m.is_arm && m.sleep_box) {
        world.add_box(m.id, *m.sleep_box, sim::ObstacleKind::ParkedArm);
      }
    }
    sim::ExtendedSimulator::Options options;
    options.gui_enabled = gui_enabled;
    bundle.simulator = std::make_unique<sim::ExtendedSimulator>(std::move(world), options);
    bundle.simulator->set_arm_state_provider(
        [&backend](std::string_view arm_id) -> std::optional<geom::Vec3> {
          const auto* arm =
              dynamic_cast<const dev::RobotArmDevice*>(backend.registry().find(arm_id));
          if (arm == nullptr) return std::nullopt;
          return arm->position_lab();
        });
  }
  bundle.engine = std::make_unique<core::RabitEngine>(std::move(config));
  if (bundle.simulator) bundle.engine->attach_simulator(bundle.simulator.get());
  return bundle;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("================================================================\n");
}

inline void print_rule(char c = '-') {
  for (int i = 0; i < 64; ++i) std::putchar(c);
  std::putchar('\n');
}

inline dev::Command make_cmd(std::string device, std::string action, json::Object args = {}) {
  dev::Command c;
  c.device = std::move(device);
  c.action = std::move(action);
  c.args = json::Value(std::move(args));
  return c;
}

inline dev::Command move_cmd(std::string arm, const geom::Vec3& local) {
  json::Object args;
  args["position"] = json::Array{local.x, local.y, local.z};
  return make_cmd(std::move(arm), "move_to", std::move(args));
}

inline json::Object door_arg(const char* state) {
  json::Object o;
  o["state"] = std::string(state);
  return o;
}

inline geom::Vec3 site_local(const sim::LabBackend& backend, const char* arm, const char* site) {
  const auto& a = dynamic_cast<const dev::RobotArmDevice&>(*backend.registry().find(arm));
  return a.to_local(backend.find_site(site)->lab_position);
}

}  // namespace rabit::bench
