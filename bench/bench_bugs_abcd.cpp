// Figures 5 & 6 reproduction: the four named bugs (A, B, C, D) walked
// through each RABIT variant, with the paper's per-category findings.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace rabit;
using namespace rabit::bench;

const bugs::BugSpec& by_id(const std::string& id) {
  for (const bugs::BugSpec& b : bugs::bug_catalogue()) {
    if (b.id == id) return b;
  }
  throw std::out_of_range("no bug " + id);
}

void narrate(const char* figure_label, const char* paper_finding, const std::string& bug_id) {
  const bugs::BugSpec& bug = by_id(bug_id);
  std::printf("\n%s (%s, catalogue %s)\n", figure_label,
              std::string(bugs::to_string(bug.category)).c_str(), bug.id.c_str());
  std::printf("  %s\n", bug.description.c_str());
  std::printf("  paper: %s\n", paper_finding);
  for (core::Variant v :
       {core::Variant::Initial, core::Variant::Modified, core::Variant::ModifiedWithSim}) {
    bugs::BugOutcome outcome = bugs::evaluate_bug(bug, v);
    std::printf("  %-14s -> %s", std::string(core::to_string(v)).c_str(),
                outcome.detected ? "ALERT" : "missed");
    if (outcome.detected) {
      std::printf(" (rule %s)", outcome.alert_rule.c_str());
    } else if (outcome.damage_severity) {
      std::printf(" (damage: %s)",
                  std::string(dev::to_string(*outcome.damage_severity)).c_str());
    }
    std::printf("\n");
  }
}

void print_bugs_abcd() {
  print_header("Figures 5 & 6 — the named bugs A, B, C, D",
               "RABIT (DSN'24), Fig. 5 / Fig. 6 and Section IV categories 1-4");

  narrate("Bug A (Fig. 5) — dosing-device door left closed",
          "'RABIT raised an alert in all such scenarios' (category 1)", "H1");
  narrate("Bug B (Fig. 5) — Ned2 sent near the grid while ViperX hovers there",
          "'RABIT did not raise an alarm' before the multiplexing workaround; "
          "time multiplexing prevents it (category 2)",
          "M1");
  narrate("Bug C (Fig. 5) — pick-up call omitted, experiment runs without a vial",
          "'RABIT did not raise an alarm' — no gripper pressure sensor (category 3)", "L2");
  narrate("Bug D (Fig. 6) — pickup z lowered, empty-handed arm hits the platform",
          "'RABIT raised an alarm when ViperX was not holding any object' (category 4)", "M2");
  narrate("Bug D (Fig. 6) — same edit while holding a vial",
          "initially missed ('the vial collided with the platform before RABIT could "
          "raise an alarm'); detected after modeling held-object dimensions",
          "M3");
  narrate("Footnote 2 — silently skipped infeasible waypoint, then a sweep through the grid",
          "'RABIT raised an alarm when this scenario was replayed in the Extended "
          "Simulator'",
          "M4");

  std::printf("\nGripper-reorder variant of category 3 (open/close swapped in the helper):\n");
  bugs::BugOutcome l3 = bugs::evaluate_bug(by_id("L3"), core::Variant::ModifiedWithSim);
  std::printf("  modified+sim -> %s (paper: also undetectable)\n",
              l3.detected ? "ALERT" : "missed");
}

void BM_BugAEndToEnd(benchmark::State& state) {
  const bugs::BugSpec& bug = by_id("H1");
  for (auto _ : state) {
    benchmark::DoNotOptimize(bugs::evaluate_bug(bug, core::Variant::Modified));
  }
}
BENCHMARK(BM_BugAEndToEnd)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_bugs_abcd();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
