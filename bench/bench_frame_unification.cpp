// Section IV category 2 reproduction: the attempted global frame.
//
// "Transforming both robot arms' coordinate systems to a global coordinate
// system using a transformation matrix resulted in an average error of 3cm
// between the expected and computed positions. Hence, we continue using
// separate coordinate systems."
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "testbed/frame_calibration.hpp"

namespace {

using namespace rabit;
using namespace rabit::bench;
namespace ids = sim::deck_ids;

void print_unification() {
  print_header("Frame unification between ViperX and Ned2",
               "RABIT (DSN'24), Section IV category 2 (~3 cm average error)");
  auto backend = make_testbed();
  const auto& viperx = backend->arm(ids::kViperX);
  const auto& ned2 = backend->arm(ids::kNed2);

  std::printf("%-34s %12s %12s %14s\n", "Error sources", "mean err", "worst err",
              "needed margin");
  print_rule();
  struct Row {
    const char* label;
    double noise;
    double gripper;
  };
  const Row rows[] = {
      {"testbed arms + gripper mismatch", 0.01, 0.035},
      {"testbed arms, matched grippers", 0.01, 0.0},
      {"production-grade arms + mismatch", 0.0005, 0.035},
      {"production-grade, matched", 0.0005, 0.0},
  };
  double testbed_mean = 0;
  for (const Row& row : rows) {
    tb::CalibrationOptions opts;
    opts.measurement_noise_m = row.noise;
    opts.gripper_mismatch_m = row.gripper;
    // Average over several calibration sessions.
    double mean = 0;
    double worst = 0;
    double margin = 0;
    constexpr int kSessions = 10;
    for (int s = 0; s < kSessions; ++s) {
      opts.seed = 100 + static_cast<unsigned>(s);
      tb::CalibrationResult result = tb::calibrate_frames(viperx, ned2, opts);
      mean += result.mean_probe_error_m;
      worst = std::max(worst, result.max_probe_error_m);
      margin = std::max(margin, tb::required_safety_margin(result));
    }
    mean /= kSessions;
    if (row.noise == 0.01 && row.gripper == 0.035) testbed_mean = mean;
    std::printf("%-34s %9.1f mm %9.1f mm %11.1f mm\n", row.label, 1000 * mean, 1000 * worst,
                1000 * margin);
  }
  print_rule();
  std::printf("measured testbed mean error: %.1f cm (paper: ~3 cm average error)\n",
              100 * testbed_mean);
  std::printf("a unified frame would need safety margins wider than the deck's\n");
  std::printf("typical 2-3 cm clearances — which is why the paper (and this\n");
  std::printf("reproduction, bug M6) keeps separate per-arm coordinate systems and\n");
  std::printf("multiplexes the arms in time or space instead.\n");
}

void BM_Calibration(benchmark::State& state) {
  auto backend = make_testbed();
  const auto& viperx = backend->arm(ids::kViperX);
  const auto& ned2 = backend->arm(ids::kNed2);
  tb::CalibrationOptions opts;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tb::calibrate_frames(viperx, ned2, opts));
  }
}
BENCHMARK(BM_Calibration)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_unification();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
