// Section II-A reproduction: constructing the rulebase by mining the Robot
// Arm Dataset. The synthetic RAD stands in for the three months of Hein Lab
// traces; the miner must recover the planted orderings (doors open before
// entry, solids before liquids, ...) with high precision across dataset
// sizes.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "rad/rad.hpp"

namespace {

using namespace rabit;
using namespace rabit::bench;

std::vector<std::vector<rad::Event>> abstracted_dataset(const sim::LabBackend& deck, int days,
                                                        unsigned seed = 7) {
  rad::GeneratorOptions opts;
  opts.days = days;
  opts.seed = seed;
  std::vector<std::vector<rad::Event>> sessions;
  for (const rad::TraceSession& s : rad::generate_dataset(deck, opts)) {
    sessions.push_back(rad::abstract_events(s.commands, deck));
  }
  return sessions;
}

void print_mining() {
  print_header("Rule mining from the (synthetic) Robot Arm Dataset",
               "RABIT (DSN'24), Section II-A rulebase construction");
  auto deck = make_testbed();

  std::printf("%-8s %-10s %-8s %-10s %-8s %s\n", "Days", "Sessions", "Mined", "Precision",
              "Recall", "Missing planted rules");
  print_rule();
  for (int days : {5, 15, 45, 90}) {
    auto sessions = abstracted_dataset(*deck, days);
    rad::MinerOptions opts;
    // Short datasets scale the support floor down proportionally.
    opts.min_support = std::max<std::size_t>(5, sessions.size() / 8);
    auto mined = rad::mine_rules(sessions, opts);
    rad::MiningScore score = rad::score_mining(mined);
    std::printf("%-8d %-10zu %-8zu %-10.2f %-8.2f %zu\n", days, sessions.size(), mined.size(),
                score.precision(), score.recall(), score.false_negatives);
  }
  print_rule();

  // The flagship mined rules, as the paper reports them.
  auto sessions = abstracted_dataset(*deck, 90);
  auto mined = rad::mine_rules(sessions, rad::MinerOptions{});
  std::printf("top mined rules (90-day dataset):\n");
  std::size_t shown = 0;
  for (const rad::MinedRule& r : mined) {
    for (const auto& [a, b] : rad::planted_rules()) {
      if (r.antecedent == a && r.consequent == b) {
        std::printf("  %s\n", r.describe().c_str());
        ++shown;
      }
    }
    if (shown >= rad::planted_rules().size()) break;
  }
  std::printf("(paper: rules such as 'device doors must be opened before a robot\n");
  std::printf(" arm can enter them' and 'solids must be added before liquids' were\n");
  std::printf(" mined from RAD; general vs. custom split retained, Section II-A)\n");

  // Confidence-threshold ablation: lax thresholds flood the rulebase.
  std::printf("\nconfidence-threshold ablation (90-day dataset):\n");
  std::printf("%-12s %-8s %-10s %-8s\n", "confidence", "mined", "precision", "recall");
  for (double confidence : {0.6, 0.8, 0.9, 0.97, 0.999}) {
    rad::MinerOptions opts;
    opts.min_confidence = confidence;
    auto rules = rad::mine_rules(sessions, opts);
    rad::MiningScore score = rad::score_mining(rules);
    std::printf("%-12.3f %-8zu %-10.2f %-8.2f\n", confidence, rules.size(), score.precision(),
                score.recall());
  }
}

void BM_GenerateDataset(benchmark::State& state) {
  auto deck = make_testbed();
  rad::GeneratorOptions opts;
  opts.days = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rad::generate_dataset(*deck, opts));
  }
  state.SetLabel(std::to_string(state.range(0)) + " days");
}
BENCHMARK(BM_GenerateDataset)->Arg(15)->Arg(90)->Unit(benchmark::kMillisecond);

void BM_MineRules(benchmark::State& state) {
  auto deck = make_testbed();
  auto sessions = abstracted_dataset(*deck, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rad::mine_rules(sessions, rad::MinerOptions{}));
  }
  state.SetLabel(std::to_string(sessions.size()) + " sessions");
}
BENCHMARK(BM_MineRules)->Arg(15)->Arg(90)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_mining();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
