// Table II reproduction: the state-transition table RABIT populates from
// the configuration — actions with preconditions, labels, postconditions —
// plus a live verification that each listed robot-arm row behaves as stated.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/rules.hpp"

namespace {

using namespace rabit;
using namespace rabit::bench;
namespace ids = sim::deck_ids;

void print_table2() {
  print_header("Table II — actions, preconditions, and postconditions",
               "RABIT (DSN'24), Table II (state-transition table)");
  std::printf("%-14s %-22s %-52s %s\n", "Device type", "Action", "Preconditions", "Rules");
  print_rule();
  for (const core::TransitionEntry& e : core::transition_table()) {
    std::printf("%-14s %-22s %-52s %s\n", std::string(dev::to_string(e.category)).c_str(),
                e.action.c_str(), e.preconditions.c_str(), e.rules.c_str());
    std::printf("%-14s %-22s -> %s\n", "", "", e.postconditions.c_str());
  }
  print_rule();

  // Live verification of the three example rows the paper prints.
  auto backend = make_testbed();
  EngineBundle bundle = make_engine(*backend, core::Variant::Modified);
  core::RabitEngine& engine = *bundle.engine;
  engine.initialize(backend->registry().fetch_observed_state());

  // Row 1: moving inside a device requires deviceDoorStatus = open.
  dev::Command enter = move_cmd(ids::kViperX, site_local(*backend, ids::kViperX,
                                                         "dosing_device"));
  auto a1 = engine.check_command(enter);
  std::printf("move_robot_inside with door closed : %s\n",
              a1 && a1->rule == "G1" ? "blocked by G1 (as in Table II)" : "UNEXPECTED");

  // Row 2: pick_object requires robotArmHolding = 0; postcondition sets it.
  json::Object nw;
  nw["site"] = std::string("grid.NW");
  dev::Command pick = make_cmd(ids::kViperX, "pick_object", std::move(nw));
  auto a2 = engine.check_command(pick);
  engine.apply_expected(pick);
  bool holding_after = engine.tracker().arm_holding(ids::kViperX) == ids::kVial1;
  json::Object se;
  se["site"] = std::string("grid.SE");
  auto a3 = engine.check_command(make_cmd(ids::kViperX, "pick_object", std::move(se)));
  std::printf("pick_object while empty-handed     : %s\n",
              !a2 ? "allowed; postcondition robotArmHolding=vial_1 applied" : "UNEXPECTED");
  std::printf("pick_object while holding          : %s\n",
              a3 && a3->rule == "G4" && holding_after ? "blocked by G4 (as in Table II)"
                                                      : "UNEXPECTED");

  // Row 3: place_object requires robotArmHolding = 1 and clears it.
  json::Object sw;
  sw["site"] = std::string("grid.SW");
  dev::Command place = make_cmd(ids::kViperX, "place_object", std::move(sw));
  auto a4 = engine.check_command(place);
  engine.apply_expected(place);
  std::printf("place_object onto a free site      : %s\n",
              !a4 && engine.tracker().arm_holding(ids::kViperX).empty()
                  ? "allowed; postcondition robotArmHolding=none applied"
                  : "UNEXPECTED");
}

void BM_TransitionTableBuild(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::transition_table());
  }
}
BENCHMARK(BM_TransitionTableBuild);

void BM_ApplyExpected(benchmark::State& state) {
  auto backend = make_testbed();
  EngineBundle bundle = make_engine(*backend, core::Variant::Modified);
  bundle.engine->initialize(backend->registry().fetch_observed_state());
  dev::Command cmd = make_cmd(ids::kDosingDevice, "stop_action");
  for (auto _ : state) {
    bundle.engine->apply_expected(cmd);
  }
}
BENCHMARK(BM_ApplyExpected);

}  // namespace

int main(int argc, char** argv) {
  print_table2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
