// Ablation A3 (the §V-C extension): cuboid device models vs. refined shapes.
//
// Pilot-study participant P: "the shape of many devices do not comply with
// RABIT's cuboid specification... incorporating more detailed shape
// descriptions would enhance RABIT's flexibility". The cuboid model
// over-approximates domed and bumped devices, so approach paths that are
// physically safe get flagged — the only source of false alarms in an
// otherwise zero-false-positive system. This ablation quantifies that.
#include <benchmark/benchmark.h>

#include <random>

#include "bench_common.hpp"

namespace {

using namespace rabit;
using namespace rabit::bench;
using geom::Vec3;
namespace ids = sim::deck_ids;

struct ShapeSweep {
  int safe_paths = 0;
  int cuboid_false_alarms = 0;
  int refined_false_alarms = 0;
  int true_hits = 0;
  int cuboid_detected = 0;
  int refined_detected = 0;
};

ShapeSweep run_sweep(unsigned seed) {
  auto backend = make_testbed();
  sim::DeckModelOptions cuboid_opts;
  sim::WorldModel cuboid = sim::deck_world_model(*backend, cuboid_opts);
  sim::DeckModelOptions refined_opts;
  refined_opts.refined_shapes = true;
  sim::WorldModel refined = sim::deck_world_model(*backend, refined_opts);
  // The deck's physical devices *are* the refined geometry (the backend's
  // ground truth uses it), so the refined model doubles as physical truth
  // for these static sweeps.
  const sim::WorldModel& truth = refined;

  // Random passes through the shoulder band of each station — the region
  // where the cuboid and the real shape disagree.
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dy(-0.10, 0.10);
  std::uniform_real_distribution<double> dz(-0.06, 0.03);
  const Vec3 tops[] = {Vec3(-0.45, 0.0, 0.18), Vec3(0.35, -0.25, 0.12)};

  ShapeSweep sweep;
  for (int i = 0; i < 400; ++i) {
    const Vec3& top = tops[i % 2];
    double z = top.z + dz(rng);
    Vec3 start(top.x - 0.30, top.y + dy(rng), z);
    Vec3 goal(top.x + 0.30, top.y + dy(rng), z);
    bool physically_hits = sim::check_path(truth, start, goal, 0.0).has_value();
    bool cuboid_hits = sim::check_path(cuboid, start, goal, 0.0).has_value();
    bool refined_hits = sim::check_path(refined, start, goal, 0.0).has_value();
    if (physically_hits) {
      ++sweep.true_hits;
      sweep.cuboid_detected += cuboid_hits ? 1 : 0;
      sweep.refined_detected += refined_hits ? 1 : 0;
    } else {
      ++sweep.safe_paths;
      sweep.cuboid_false_alarms += cuboid_hits ? 1 : 0;
      sweep.refined_false_alarms += refined_hits ? 1 : 0;
    }
  }
  return sweep;
}

void print_ablation() {
  print_header("Ablation A3 — cuboid device models vs. refined shapes",
               "RABIT (DSN'24), Section V open challenge (non-cuboid devices)");
  ShapeSweep s = run_sweep(31);
  std::printf("400 random passes over the domed centrifuge and bumped thermoshaker\n");
  std::printf("(physically safe: %d, physically colliding: %d)\n\n", s.safe_paths,
              s.true_hits);
  std::printf("%-34s %14s %16s\n", "World model", "false alarms", "hits detected");
  print_rule();
  std::printf("%-34s %8d (%4.1f%%) %11d/%d\n", "cuboids (paper's deployed RABIT)",
              s.cuboid_false_alarms, 100.0 * s.cuboid_false_alarms / s.safe_paths,
              s.cuboid_detected, s.true_hits);
  std::printf("%-34s %8d (%4.1f%%) %11d/%d\n", "refined shapes (this extension)",
              s.refined_false_alarms, 100.0 * s.refined_false_alarms / s.safe_paths,
              s.refined_detected, s.true_hits);
  print_rule();
  std::printf("shape: the cuboid over-approximation flags physically safe passes\n");
  std::printf("near the dome/bump shoulders; refined shapes remove those false\n");
  std::printf("alarms without losing any real detection (ground truth itself uses\n");
  std::printf("the refined geometry). Enable with EngineConfig::use_refined_shapes.\n");
}

void BM_CuboidPointCheck(benchmark::State& state) {
  auto backend = make_testbed();
  sim::WorldModel world = sim::deck_world_model(*backend);
  Vec3 p(-0.40, 0.04, 0.15);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::check_point(world, p, 0.0));
  }
}
BENCHMARK(BM_CuboidPointCheck);

void BM_RefinedPointCheck(benchmark::State& state) {
  auto backend = make_testbed();
  sim::DeckModelOptions opts;
  opts.refined_shapes = true;
  sim::WorldModel world = sim::deck_world_model(*backend, opts);
  Vec3 p(-0.40, 0.04, 0.15);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::check_point(world, p, 0.0));
  }
}
BENCHMARK(BM_RefinedPointCheck);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
