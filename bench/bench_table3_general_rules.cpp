// Table III reproduction: controlled violation of each of the 11 general
// rules. The paper: "We deliberately executed unsafe scenarios designed to
// trigger each rule in the rulebase... RABIT successfully detected unsafe
// behavior in all these scenarios."
#include <benchmark/benchmark.h>

#include <functional>

#include "bench_common.hpp"

namespace {

using namespace rabit;
using namespace rabit::bench;
namespace ids = sim::deck_ids;

struct Scenario {
  const char* rule;
  const char* description;
  /// Commands to run; the last one is the violation.
  std::function<std::vector<dev::Command>(sim::LabBackend&)> build;
};

std::vector<Scenario> general_rule_scenarios() {
  return {
      {"G1", "move ViperX into the dosing device while its door is closed",
       [](sim::LabBackend& b) {
         return std::vector<dev::Command>{
             move_cmd(ids::kViperX, site_local(b, ids::kViperX, "dosing_device"))};
       }},
      {"G2", "close the dosing device door while ViperX is inside",
       [](sim::LabBackend& b) {
         return std::vector<dev::Command>{
             make_cmd(ids::kDosingDevice, "set_door", door_arg("open")),
             move_cmd(ids::kViperX, site_local(b, ids::kViperX, "dosing_device")),
             make_cmd(ids::kDosingDevice, "set_door", door_arg("closed"))};
       }},
      {"G3", "move ViperX into the space occupied by the hotplate",
       [](sim::LabBackend& b) {
         return std::vector<dev::Command>{
             move_cmd(ids::kViperX, b.arm(ids::kViperX).to_local(geom::Vec3(-0.35, 0.25, 0.06)))};
       }},
      {"G4", "pick up a second vial while already holding one",
       [](sim::LabBackend&) {
         json::Object nw;
         nw["site"] = std::string("grid.NW");
         json::Object se;
         se["site"] = std::string("grid.SE");
         return std::vector<dev::Command>{make_cmd(ids::kViperX, "pick_object", std::move(nw)),
                                          make_cmd(ids::kViperX, "pick_object", std::move(se))};
       }},
      {"G5", "shake the thermoshaker with no container inside",
       [](sim::LabBackend&) {
         json::Object o;
         o["rpm"] = 500.0;
         return std::vector<dev::Command>{make_cmd(ids::kThermoshaker, "shake", std::move(o))};
       }},
      {"G6", "shake an empty vial on the thermoshaker",
       [](sim::LabBackend&) {
         json::Object nw;
         nw["site"] = std::string("grid.NW");
         json::Object ts;
         ts["site"] = std::string("thermoshaker");
         json::Object o;
         o["rpm"] = 500.0;
         return std::vector<dev::Command>{
             make_cmd(ids::kViperX, "pick_object", std::move(nw)),
             make_cmd(ids::kViperX, "place_object", std::move(ts)),
             make_cmd(ids::kViperX, "go_sleep"),
             make_cmd(ids::kThermoshaker, "shake", std::move(o))};
       }},
      {"G7", "dose solid through the vial's stopper",
       [](sim::LabBackend&) {
         json::Object open = door_arg("open");
         json::Object nw;
         nw["site"] = std::string("grid.NW");
         json::Object dd;
         dd["site"] = std::string("dosing_device");
         json::Object closed = door_arg("closed");
         json::Object q;
         q["quantity"] = 5.0;
         // The vial keeps its stopper (no decap).
         return std::vector<dev::Command>{
             make_cmd(ids::kVial1, "recap"),
             make_cmd(ids::kDosingDevice, "set_door", std::move(open)),
             make_cmd(ids::kViperX, "pick_object", std::move(nw)),
             make_cmd(ids::kViperX, "place_object", std::move(dd)),
             make_cmd(ids::kViperX, "go_sleep"),
             make_cmd(ids::kDosingDevice, "set_door", std::move(closed)),
             make_cmd(ids::kDosingDevice, "run_action", std::move(q))};
       }},
      {"G8", "dose 50 mg into a 10 mg vial",
       [](sim::LabBackend&) {
         json::Object open = door_arg("open");
         json::Object nw;
         nw["site"] = std::string("grid.NW");
         json::Object dd;
         dd["site"] = std::string("dosing_device");
         json::Object closed = door_arg("closed");
         json::Object q;
         q["quantity"] = 50.0;
         return std::vector<dev::Command>{
             make_cmd(ids::kVial1, "decap"),
             make_cmd(ids::kDosingDevice, "set_door", std::move(open)),
             make_cmd(ids::kViperX, "pick_object", std::move(nw)),
             make_cmd(ids::kViperX, "place_object", std::move(dd)),
             make_cmd(ids::kViperX, "go_sleep"),
             make_cmd(ids::kDosingDevice, "set_door", std::move(closed)),
             make_cmd(ids::kDosingDevice, "run_action", std::move(q))};
       }},
      {"G9", "start dosing while the door is open",
       [](sim::LabBackend&) {
         json::Object open = door_arg("open");
         json::Object nw;
         nw["site"] = std::string("grid.NW");
         json::Object dd;
         dd["site"] = std::string("dosing_device");
         json::Object q;
         q["quantity"] = 5.0;
         return std::vector<dev::Command>{
             make_cmd(ids::kVial1, "decap"),
             make_cmd(ids::kDosingDevice, "set_door", std::move(open)),
             make_cmd(ids::kViperX, "pick_object", std::move(nw)),
             make_cmd(ids::kViperX, "place_object", std::move(dd)),
             make_cmd(ids::kViperX, "go_sleep"),
             make_cmd(ids::kDosingDevice, "run_action", std::move(q))};
       }},
      {"G10", "open the dosing device door while it is running",
       [](sim::LabBackend&) {
         json::Object open = door_arg("open");
         json::Object nw;
         nw["site"] = std::string("grid.NW");
         json::Object dd;
         dd["site"] = std::string("dosing_device");
         json::Object closed = door_arg("closed");
         json::Object q;
         q["quantity"] = 5.0;
         json::Object reopen = door_arg("open");
         return std::vector<dev::Command>{
             make_cmd(ids::kVial1, "decap"),
             make_cmd(ids::kDosingDevice, "set_door", std::move(open)),
             make_cmd(ids::kViperX, "pick_object", std::move(nw)),
             make_cmd(ids::kViperX, "place_object", std::move(dd)),
             make_cmd(ids::kViperX, "go_sleep"),
             make_cmd(ids::kDosingDevice, "set_door", std::move(closed)),
             make_cmd(ids::kDosingDevice, "run_action", std::move(q)),
             make_cmd(ids::kDosingDevice, "set_door", std::move(reopen))};
       }},
      {"G11", "set the hotplate to 200 C (threshold 150 C, firmware 340 C)",
       [](sim::LabBackend&) {
         json::Object o;
         o["celsius"] = 200.0;
         return std::vector<dev::Command>{
             make_cmd(ids::kHotplate, "set_temperature", std::move(o))};
       }},
  };
}

struct ScenarioResult {
  bool detected = false;
  std::string fired_rule;
  bool damage = false;
};

ScenarioResult run_scenario(const Scenario& scenario) {
  auto backend = make_testbed();
  EngineBundle bundle = make_engine(*backend, core::Variant::Modified);
  trace::Supervisor supervisor(bundle.engine.get(), backend.get());
  trace::RunReport report = supervisor.run(scenario.build(*backend));

  ScenarioResult result;
  result.detected = report.alert_preceded_damage();
  result.damage = !report.damage.empty();
  for (const trace::SupervisedStep& s : report.steps) {
    if (s.alert) {
      result.fired_rule = s.alert->rule;
      break;
    }
  }
  return result;
}

void print_table3() {
  print_header("Table III — the 11 general rules, one controlled violation each",
               "RABIT (DSN'24), Table III + Section IV controlled experiments");
  std::printf("%-5s %-55s %-9s %s\n", "Rule", "Unsafe scenario", "Detected", "Fired");
  print_rule();
  int detected = 0;
  auto scenarios = general_rule_scenarios();
  for (const Scenario& s : scenarios) {
    ScenarioResult r = run_scenario(s);
    if (r.detected) ++detected;
    std::printf("%-5s %-55s %-9s %s\n", s.rule, s.description, r.detected ? "YES" : "NO",
                r.fired_rule.c_str());
  }
  print_rule();
  std::printf("detected %d / %zu (paper: all controlled scenarios detected)\n", detected,
              scenarios.size());

  // And the converse: the safe workflow raises nothing.
  auto backend = make_testbed();
  EngineBundle bundle = make_engine(*backend, core::Variant::Modified);
  trace::Supervisor supervisor(bundle.engine.get(), backend.get());
  auto safe = script::record_workflow(*backend, script::testbed_workflow_source());
  trace::RunReport report = supervisor.run(safe);
  std::printf("safe workflow (%zu commands): %zu alerts, %zu damage events "
              "(paper: zero false positives)\n",
              safe.size(), report.alerts, report.damage.size());
}

void BM_CheckCommandNonMotion(benchmark::State& state) {
  auto backend = make_testbed();
  EngineBundle bundle = make_engine(*backend, core::Variant::Modified);
  bundle.engine->initialize(backend->registry().fetch_observed_state());
  dev::Command cmd = make_cmd(ids::kDosingDevice, "stop_action");
  for (auto _ : state) {
    benchmark::DoNotOptimize(bundle.engine->check_command(cmd));
  }
}
BENCHMARK(BM_CheckCommandNonMotion);

void BM_CheckCommandMotion(benchmark::State& state) {
  auto backend = make_testbed();
  EngineBundle bundle = make_engine(*backend, core::Variant::Modified);
  bundle.engine->initialize(backend->registry().fetch_observed_state());
  dev::Command cmd = move_cmd(ids::kViperX, geom::Vec3(0.25, 0.0, 0.30));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bundle.engine->check_command(cmd));
  }
}
BENCHMARK(BM_CheckCommandMotion);

}  // namespace

int main(int argc, char** argv) {
  print_table3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
