// Section V-A pilot study, quantified: participant P spent ~3 hours entering
// the configuration and the authors ~4 hours debugging it — sign errors,
// JSON syntax errors, misinterpreted device info. This bench injects seeded
// random researcher mistakes into the golden configuration and measures how
// many each validation layer catches (syntax -> schema -> loader), i.e. how
// much of that debugging a JSON-aware editor and a precise schema eliminate.
#include <benchmark/benchmark.h>

#include <random>

#include "bench_common.hpp"

namespace {

using namespace rabit;
using namespace rabit::bench;

enum class MistakeKind {
  SignFlip,        // the pilot study's negative-sign error
  DigitSlip,       // coordinate magnitude off by 10x
  MissingField,    // a required key deleted
  WrongType,       // a string where a number belongs (or vice versa)
  SyntaxError,     // stray comma / truncated file
  BadEnum,         // an invalid variant / category name
};

const char* kind_name(MistakeKind k) {
  switch (k) {
    case MistakeKind::SignFlip: return "sign flip in a coordinate";
    case MistakeKind::DigitSlip: return "coordinate off by 10x";
    case MistakeKind::MissingField: return "required field missing";
    case MistakeKind::WrongType: return "wrong value type";
    case MistakeKind::SyntaxError: return "JSON syntax error";
    case MistakeKind::BadEnum: return "invalid enum value";
  }
  return "?";
}

struct LayerCounts {
  int total = 0;
  int caught_syntax = 0;
  int caught_schema = 0;
  int caught_loader = 0;
  int slipped = 0;
};

std::string golden_config_text() {
  auto backend = make_testbed();
  return json::serialize_pretty(
      core::config_to_json(core::config_from_backend(*backend, core::Variant::Modified)));
}

/// Applies one researcher mistake to the pretty-printed config text.
std::string inject(const std::string& text, MistakeKind kind, std::mt19937& rng) {
  std::string out = text;
  auto find_all = [&](const std::string& needle) {
    std::vector<std::size_t> hits;
    for (std::size_t pos = out.find(needle); pos != std::string::npos;
         pos = out.find(needle, pos + 1)) {
      hits.push_back(pos);
    }
    return hits;
  };
  auto pick = [&](const std::vector<std::size_t>& hits) {
    return hits[std::uniform_int_distribution<std::size_t>(0, hits.size() - 1)(rng)];
  };

  switch (kind) {
    case MistakeKind::SignFlip: {
      // Flip the sign of one site z coordinate (the documented P mistake).
      auto hits = find_all("\"z\": 0.1");
      if (hits.empty()) break;
      out.insert(pick(hits) + 5, "-");
      break;
    }
    case MistakeKind::DigitSlip: {
      auto hits = find_all("\"x\": 0.");
      if (hits.empty()) break;
      std::size_t pos = pick(hits);
      out.replace(pos + 5, 2, "5.");  // 0.xx -> 5.xx, far off the deck
      break;
    }
    case MistakeKind::MissingField: {
      auto hits = find_all("\"category\": ");
      if (hits.empty()) break;
      std::size_t pos = pick(hits);
      std::size_t end = out.find('\n', pos);
      out.erase(pos, end - pos + 1);
      break;
    }
    case MistakeKind::WrongType: {
      auto hits = find_all("\"site_tolerance\": ");
      if (hits.empty()) break;
      std::size_t pos = hits.front() + std::string("\"site_tolerance\": ").size();
      std::size_t end = out.find_first_of(",\n", pos);
      out.replace(pos, end - pos, "\"a few centimetres\"");
      break;
    }
    case MistakeKind::SyntaxError: {
      auto hits = find_all("},");
      if (hits.empty()) break;
      out.insert(pick(hits) + 2, ",");  // double comma
      break;
    }
    case MistakeKind::BadEnum: {
      out.replace(out.find("\"modified\""), 10, "\"modifed\"");  // typo
      break;
    }
  }
  return out;
}

void print_study(int trials_per_kind) {
  print_header("Pilot-study configuration errors vs. validation layers",
               "RABIT (DSN'24), Section V-A (3h entry + 4h debugging)");
  std::string golden = golden_config_text();

  const MistakeKind kinds[] = {MistakeKind::SignFlip,     MistakeKind::DigitSlip,
                               MistakeKind::MissingField, MistakeKind::WrongType,
                               MistakeKind::SyntaxError,  MistakeKind::BadEnum};

  std::printf("%-28s %6s %8s %8s %8s %9s\n", "Researcher mistake", "total", "syntax",
              "schema", "loader", "slipped");
  print_rule();
  std::mt19937 rng(99);
  for (MistakeKind kind : kinds) {
    LayerCounts counts;
    for (int i = 0; i < trials_per_kind; ++i) {
      std::string broken = inject(golden, kind, rng);
      ++counts.total;
      json::Value doc;
      try {
        doc = json::parse(broken);
      } catch (const json::ParseError&) {
        ++counts.caught_syntax;
        continue;
      }
      if (!core::config_schema().validate(doc).empty()) {
        ++counts.caught_schema;
        continue;
      }
      try {
        core::EngineConfig cfg = core::config_from_json(doc);
        (void)cfg;
        ++counts.slipped;
      } catch (const std::exception&) {
        ++counts.caught_loader;
      }
    }
    std::printf("%-28s %6d %8d %8d %8d %9d\n", kind_name(kind), counts.total,
                counts.caught_syntax, counts.caught_schema, counts.caught_loader,
                counts.slipped);
  }
  print_rule();
  std::printf("shape: the two error classes the pilot study names — JSON syntax\n");
  std::printf("mistakes and coordinate sign errors — are caught before RABIT ever\n");
  std::printf("starts (P: 'using a JSON-aware editor could have helped avoid syntax\n");
  std::printf("errors, and more precise JSON schema specifications could have helped\n");
  std::printf("avoid sign errors'). Magnitude slips inside the legal range still\n");
  std::printf("slip through — they surface later as geometric rule violations.\n");
}

void BM_SchemaValidation(benchmark::State& state) {
  json::Value doc = json::parse(golden_config_text());
  json::Schema schema = core::config_schema();
  for (auto _ : state) {
    benchmark::DoNotOptimize(schema.validate(doc));
  }
}
BENCHMARK(BM_SchemaValidation);

void BM_ConfigParseAndLoad(benchmark::State& state) {
  std::string text = golden_config_text();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::config_from_json(json::parse(text)));
  }
}
BENCHMARK(BM_ConfigParseAndLoad)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_study(40);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
