// Section IV category 2 reproduction: multiplexing robot arm movements in
// time or space. The paper's workaround after Bug B: either only one arm
// moves while the others sleep (time), or a software-defined wall gives each
// arm a dedicated region and they move concurrently (space).
//
// Workload: K rounds in which ViperX hovers over the grid's west column and
// Ned2 over its east column. Unrestricted execution interleaves them with no
// discipline (and lets them collide when their excursions overlap); time
// multiplexing inserts sleep transitions; space multiplexing enforces the
// wall but needs no extra commands.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace rabit;
using namespace rabit::bench;
namespace ids = sim::deck_ids;

constexpr int kRounds = 6;

/// Both arms repeatedly visit the same airspace over the grid — the Bug B
/// situation — with no discipline at all.
std::vector<dev::Command> unrestricted_workload(sim::LabBackend& b) {
  std::vector<dev::Command> cmds;
  geom::Vec3 hover_v = b.arm(ids::kViperX).to_local(geom::Vec3(0.30, 0.30, 0.30));
  geom::Vec3 hover_n = b.arm(ids::kNed2).to_local(geom::Vec3(0.30, 0.32, 0.28));
  geom::Vec3 away_v = b.arm(ids::kViperX).to_local(geom::Vec3(0.20, -0.10, 0.30));
  geom::Vec3 away_n = b.arm(ids::kNed2).to_local(geom::Vec3(0.50, -0.05, 0.25));
  for (int i = 0; i < kRounds; ++i) {
    cmds.push_back(move_cmd(ids::kViperX, hover_v));
    cmds.push_back(move_cmd(ids::kNed2, hover_n));  // straight at ViperX
    cmds.push_back(move_cmd(ids::kViperX, away_v));
    cmds.push_back(move_cmd(ids::kNed2, away_n));
  }
  return cmds;
}

/// Time multiplexing: the same visit pattern, but every hand-over between
/// arms goes through the sleep pose (the extra commands are the scheme's
/// cost).
std::vector<dev::Command> time_multiplexed_workload(sim::LabBackend& b) {
  std::vector<dev::Command> cmds;
  geom::Vec3 hover_v = b.arm(ids::kViperX).to_local(geom::Vec3(0.30, 0.30, 0.30));
  geom::Vec3 away_v = b.arm(ids::kViperX).to_local(geom::Vec3(0.20, -0.10, 0.30));
  geom::Vec3 hover_n = b.arm(ids::kNed2).to_local(geom::Vec3(0.30, 0.32, 0.28));
  geom::Vec3 away_n = b.arm(ids::kNed2).to_local(geom::Vec3(0.50, -0.05, 0.25));
  for (int i = 0; i < kRounds; ++i) {
    cmds.push_back(move_cmd(ids::kViperX, hover_v));
    cmds.push_back(move_cmd(ids::kViperX, away_v));
    cmds.push_back(make_cmd(ids::kViperX, "go_sleep"));
    cmds.push_back(move_cmd(ids::kNed2, hover_n));
    cmds.push_back(move_cmd(ids::kNed2, away_n));
    cmds.push_back(make_cmd(ids::kNed2, "go_sleep"));
  }
  return cmds;
}

/// Space multiplexing: ViperX owns the west half, Ned2 the east half; the
/// arms interleave freely inside their own regions.
std::vector<dev::Command> space_multiplexed_workload(sim::LabBackend& b) {
  std::vector<dev::Command> cmds;
  geom::Vec3 west_a = b.arm(ids::kViperX).to_local(geom::Vec3(0.28, 0.30, 0.30));
  geom::Vec3 west_b = b.arm(ids::kViperX).to_local(geom::Vec3(0.10, 0.20, 0.30));
  geom::Vec3 east_a = b.arm(ids::kNed2).to_local(geom::Vec3(0.44, 0.30, 0.25));
  geom::Vec3 east_b = b.arm(ids::kNed2).to_local(geom::Vec3(0.50, 0.05, 0.25));
  for (int i = 0; i < kRounds; ++i) {
    cmds.push_back(move_cmd(ids::kViperX, west_a));
    cmds.push_back(move_cmd(ids::kNed2, east_a));
    cmds.push_back(move_cmd(ids::kViperX, west_b));
    cmds.push_back(move_cmd(ids::kNed2, east_b));
  }
  return cmds;
}

struct MuxRow {
  const char* scheme;
  std::size_t commands;
  std::size_t visits = 0;  ///< productive excursions (non-sleep arm moves)
  std::size_t collisions;
  std::size_t alerts;
  double makespan_s;
};

MuxRow run_scheme(const char* scheme,
                  std::vector<dev::Command> (*workload)(sim::LabBackend&), bool engine_on,
                  bool time_mux, bool space_mux) {
  auto backend = make_testbed();
  auto commands = workload(*backend);

  std::unique_ptr<core::RabitEngine> engine;
  if (engine_on) {
    core::EngineConfig config = core::config_from_backend(*backend, core::Variant::Modified);
    config.time_multiplex = time_mux;
    if (space_mux) {
      // A wall at x = 0.36 splits the deck: each arm is forbidden beyond it.
      config.soft_walls.push_back(core::SoftWallSpec{
          ids::kViperX, geom::Aabb(geom::Vec3(0.36, -1, 0), geom::Vec3(1, 1, 1.5))});
      config.soft_walls.push_back(core::SoftWallSpec{
          ids::kNed2, geom::Aabb(geom::Vec3(-1, -1, 0), geom::Vec3(0.36, 1, 1.5))});
    }
    engine = std::make_unique<core::RabitEngine>(std::move(config));
  }
  trace::Supervisor supervisor(engine.get(), backend.get());
  supervisor = trace::Supervisor(engine.get(), backend.get(),
                                 trace::Supervisor::Options{/*halt_on_alert=*/false, /*recovery=*/{}});
  trace::RunReport report = supervisor.run(commands);

  std::size_t collisions = 0;
  for (const sim::DamageEvent& e : report.damage) {
    if (e.description.find("robot arm") != std::string::npos) ++collisions;
  }
  MuxRow row;
  row.scheme = scheme;
  row.commands = commands.size();
  for (const dev::Command& c : commands) {
    if (c.action == "move_to") ++row.visits;
  }
  row.collisions = collisions;
  row.alerts = report.alerts;
  row.makespan_s = report.modeled_runtime_s;
  return row;
}

void print_multiplexing() {
  print_header("Multiplexing robot arm movements in time or space",
               "RABIT (DSN'24), Section IV category 2 workaround");
  MuxRow rows[] = {
      run_scheme("unrestricted, no RABIT", unrestricted_workload, false, false, false),
      run_scheme("unrestricted, RABIT (no mux rules)", unrestricted_workload, true, false,
                 false),
      run_scheme("time multiplexed (M1 rule)", time_multiplexed_workload, true, true, false),
      run_scheme("space multiplexed (M2 soft wall)", space_multiplexed_workload, true, false,
                 true),
  };
  std::printf("%-38s %9s %7s %11s %11s %13s\n", "Scheme", "commands", "visits", "collisions",
              "makespan s", "visits/min");
  print_rule();
  for (const MuxRow& r : rows) {
    std::printf("%-38s %9zu %7zu %11zu %11.1f %13.1f\n", r.scheme, r.commands, r.visits,
                r.collisions, r.makespan_s, 60.0 * r.visits / r.makespan_s);
  }
  print_rule();
  std::printf("shape to match the paper: without multiplexing the arms collide and\n");
  std::printf("plain RABIT cannot prevent it (separate coordinate systems); time\n");
  std::printf("multiplexing eliminates collisions at the cost of extra sleep\n");
  std::printf("transitions; space multiplexing keeps both arms productive\n");
  std::printf("concurrently ('pushing for more concurrency in their experiments').\n");

  // The unsafe variant under the M1 discipline: the Bug B move is *blocked*.
  auto backend = make_testbed();
  EngineBundle bundle = make_engine(*backend, core::Variant::Modified);
  trace::Supervisor supervisor(bundle.engine.get(), backend.get());
  trace::RunReport report = supervisor.run(unrestricted_workload(*backend));
  std::printf("\nunrestricted workload under the M1 discipline: halted=%s at step %zu "
              "with rule %s, 0 collisions\n",
              report.halted ? "yes" : "no",
              report.first_alert_step ? *report.first_alert_step : 0,
              report.steps[*report.first_alert_step].alert->rule.c_str());
}

void BM_TimeMultiplexedRound(benchmark::State& state) {
  for (auto _ : state) {
    auto backend = make_testbed();
    EngineBundle bundle = make_engine(*backend, core::Variant::Modified);
    trace::Supervisor supervisor(bundle.engine.get(), backend.get());
    benchmark::DoNotOptimize(supervisor.run(time_multiplexed_workload(*backend)));
  }
}
BENCHMARK(BM_TimeMultiplexedRound)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_multiplexing();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
