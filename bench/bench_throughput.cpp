// Fleet-scale throughput: shards N independent testbed streams across a
// worker pool (src/fleet) and reports commands/s plus p50/p99 real check
// latency at 1/4/16/64 streams. The paper runs RABIT on a single experiment
// stream; the ROADMAP north-star is a middleware that validates many
// concurrent streams, which is what this harness measures.
//
// Also measures the single-stream speedup of the indexed hot path (rule
// index + memoized rule world + broad phase + verdict cache) against the
// seed engine's linear-scan path, on the *real* CPU cost of the checks —
// not the modeled 0.03 s / 2 s environment constants.
//
// Modes:
//   (default)            full fleet table + google-benchmark section,
//                        writes BENCH_throughput.json
//   --smoke              quick 16-stream run (for the TSan CI job), still
//                        writes BENCH_throughput.json
//   --shard-smoke        plan-driven sharded campaign at 16 streams across 4
//                        station groups: builds the static shard plan,
//                        verifies it, runs it across a worker pool with the
//                        validation oracle on, and exits 1 unless the plan
//                        splits into 4 shards and the oracle stays silent
//                        (the TSan CI job's lock-free-sharding exercise)
//   --verify-catalogue   runs all 16 catalogue bugs x 3 variants with the
//                        hot path on and off; exits 1 on any verdict
//                        divergence (the optimizations must not change a
//                        single verdict, Table IV progression included)
//   --obs-out <dir>      enables per-stream observability on the final fleet
//                        row and writes the merged events.jsonl, trace.json
//                        (Chrome trace / Perfetto) and metrics.prom to <dir>
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>
#include <vector>

#include "analysis/shard_plan.hpp"
#include "bench_common.hpp"
#include "fleet/fleet.hpp"
#include "json/json.hpp"
#include "obs/obs.hpp"
#include "sim/deck.hpp"

namespace {

using namespace rabit;
using namespace rabit::bench;

const core::HotPathConfig kOptimized{};  // all toggles default to on
constexpr core::HotPathConfig kBaseline{/*index_lookups=*/false,
                                        /*memoize_rule_world=*/false,
                                        /*broad_phase=*/false,
                                        /*verdict_cache=*/false};

// --- single-stream real check cost ------------------------------------------

struct CheckCost {
  double us_per_cmd = 0.0;
  std::size_t commands = 0;
  int iterations = 0;
};

CheckCost measure_check_cost(const fleet::StreamSpec& base, const core::HotPathConfig& hot,
                             int min_iters, double min_seconds) {
  fleet::StreamSpec spec = base;
  spec.hot_path = hot;
  CheckCost cost;
  double total_us = 0.0;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 1000; ++i) {
    fleet::StreamResult r = fleet::FleetRunner::run_stream(spec);
    total_us += r.check_wall_s * 1e6;
    cost.commands += r.report.steps.size();
    ++cost.iterations;
    double elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (cost.iterations >= min_iters && elapsed >= min_seconds) break;
  }
  if (cost.commands > 0) cost.us_per_cmd = total_us / static_cast<double>(cost.commands);
  return cost;
}

// --- fleet scaling table ----------------------------------------------------

struct FleetRow {
  std::size_t streams = 0;
  std::size_t workers = 0;
  fleet::FleetReport report;
};

std::size_t workers_for(std::size_t streams) {
  std::size_t hw = std::thread::hardware_concurrency();
  // Floor of 4 so the pool is genuinely concurrent even on small CI boxes
  // (and so the TSan smoke run actually interleaves workers).
  return std::min(streams, std::max<std::size_t>(hw, 4));
}

FleetRow run_fleet(const fleet::StreamSpec& base, std::size_t streams, bool obs = false) {
  std::vector<fleet::StreamSpec> specs;
  specs.reserve(streams);
  for (std::size_t i = 0; i < streams; ++i) {
    fleet::StreamSpec spec = base;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "stream-%03zu", i);
    spec.name = buf;
    spec.seed = 1000 + static_cast<unsigned>(i);
    spec.obs = obs;
    // Every other stream runs with the runtime-assurance decision module on:
    // margins are accurate here so verdicts are identical, but the TSan CI
    // job now exercises the inflated-sweep fast path across worker threads.
    spec.assurance = (i % 2 == 0);
    specs.push_back(std::move(spec));
  }
  FleetRow row;
  row.streams = streams;
  row.workers = workers_for(streams);
  fleet::FleetRunner runner(fleet::FleetRunner::Options{row.workers});
  row.report = runner.run(specs);
  return row;
}

void print_fleet_table(const std::vector<FleetRow>& rows) {
  std::printf("%8s %8s %10s %12s %10s %10s %8s\n", "streams", "workers", "commands",
              "commands/s", "p50 us", "p99 us", "alerts");
  print_rule();
  for (const FleetRow& r : rows) {
    std::printf("%8zu %8zu %10zu %12.0f %10.1f %10.1f %8zu\n", r.streams, r.workers,
                r.report.commands_checked, r.report.commands_per_s,
                r.report.check_latency.p50_us, r.report.check_latency.p99_us, r.report.alerts);
  }
  print_rule();
}

// --- plan-driven sharded campaign smoke --------------------------------------

struct ShardSmoke {
  std::size_t streams = 0;
  std::size_t shards = 0;
  std::size_t certificates = 0;
  std::size_t commands_checked = 0;
  std::size_t oracle_violations = 0;
  std::size_t static_violations = 0;
  double wall_s = 0.0;
  double commands_per_s = 0.0;
  bool ok = false;
};

/// 16 streams across the 4 testbed station groups: within-group streams
/// contend on one device (4 conflict cliques), across groups nothing is
/// shared, so the planner must certify exactly 4 independent shards.
ShardSmoke run_shard_smoke() {
  constexpr std::size_t kStreams = 16;
  fleet::CampaignSpec spec;
  spec.variant = core::Variant::Modified;
  spec.seed = 77;
  spec.halt_on_alert = false;

  for (std::size_t i = 0; i < kStreams; ++i) {
    fleet::CampaignStreamSpec stream;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "stream-%02zu", i);
    stream.name = buf;
    auto push = [&stream](const char* device, const char* action, json::Object args) {
      dev::Command command;
      command.device = device;
      command.action = action;
      command.args = std::move(args);
      stream.commands.push_back(std::move(command));
    };
    json::Object args;
    switch (i % 4) {
      case 0:
        args["celsius"] = 40.0 + static_cast<double>(i);
        push("hotplate", "set_temperature", std::move(args));
        push("hotplate", "stop", {});
        break;
      case 1:
        args["celsius"] = 30.0 + static_cast<double>(i);
        push("thermoshaker", "set_temperature", std::move(args));
        push("thermoshaker", "stop", {});
        break;
      case 2:
        args["state"] = std::string(i % 8 == 2 ? "open" : "closed");
        push("centrifuge", "set_door", std::move(args));
        break;
      default:
        args["volume"] = 1.0 + 0.25 * static_cast<double>(i);
        push("syringe_pump", "draw_solvent", std::move(args));
        break;
    }
    spec.streams.push_back(std::move(stream));
  }

  sim::LabBackend backend(sim::testbed_profile());
  sim::build_hein_testbed_deck(backend);
  core::EngineConfig config = core::config_from_backend(backend, spec.variant);

  std::vector<analysis::StreamSummary> summaries;
  summaries.reserve(spec.streams.size());
  for (const fleet::CampaignStreamSpec& s : spec.streams) {
    summaries.push_back(analysis::summarize_stream(config, s.name, s.commands, {}, nullptr));
  }
  analysis::ShardPlan plan = analysis::plan_shards(config, summaries);

  ShardSmoke result;
  result.streams = kStreams;
  result.shards = plan.shards.size();
  result.certificates = plan.certificates.size();
  result.static_violations = analysis::verify_plan(config, summaries, plan).size();

  fleet::ShardedCampaignOptions options;
  options.workers = 4;
  options.validate_certificates = true;
  auto t0 = std::chrono::steady_clock::now();
  fleet::CampaignReport report = fleet::Fleet::run_campaign(spec, plan, options);
  result.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  result.commands_checked = report.commands_checked;
  result.oracle_violations = report.oracle_violations.size();
  if (result.wall_s > 0.0) {
    result.commands_per_s = static_cast<double>(report.commands_checked) / result.wall_s;
  }
  for (const std::string& v : report.oracle_violations) {
    std::printf("ORACLE VIOLATION: %s\n", v.c_str());
  }
  result.ok = result.shards == 4 && result.oracle_violations == 0 &&
              result.static_violations == 0 && report.shards == plan.shards.size();
  return result;
}

void print_shard_smoke(const ShardSmoke& smoke) {
  std::printf("plan-driven sharded campaign (16 streams, 4 station groups):\n");
  std::printf("  %-24s %zu\n", "shards", smoke.shards);
  std::printf("  %-24s %zu\n", "certificates", smoke.certificates);
  std::printf("  %-24s %zu\n", "commands checked", smoke.commands_checked);
  std::printf("  %-24s %.0f\n", "commands/s", smoke.commands_per_s);
  std::printf("  %-24s %zu\n", "static violations", smoke.static_violations);
  std::printf("  %-24s %zu\n", "oracle violations", smoke.oracle_violations);
  std::printf("  %-24s %s\n\n", "verdict", smoke.ok ? "PASS" : "FAIL");
}

// --- BENCH_throughput.json --------------------------------------------------

void write_json(const char* path, bool smoke, const CheckCost& baseline,
                const CheckCost& optimized, const std::vector<FleetRow>& rows,
                const ShardSmoke& shard_smoke) {
  json::Object root;
  root["bench"] = "throughput";
  root["mode"] = smoke ? "smoke" : "full";

  json::Object single;
  single["baseline_check_us_per_cmd"] = baseline.us_per_cmd;
  single["optimized_check_us_per_cmd"] = optimized.us_per_cmd;
  single["speedup"] = optimized.us_per_cmd > 0 ? baseline.us_per_cmd / optimized.us_per_cmd : 0.0;
  single["commands_per_iteration"] =
      optimized.iterations > 0 ? optimized.commands / optimized.iterations : std::size_t{0};
  root["single_stream"] = std::move(single);

  json::Array fleet_rows;
  for (const FleetRow& r : rows) {
    json::Object o;
    o["streams"] = r.streams;
    o["workers"] = r.workers;
    o["commands_checked"] = r.report.commands_checked;
    o["commands_per_s"] = r.report.commands_per_s;
    o["wall_s"] = r.report.wall_s;
    o["check_p50_us"] = r.report.check_latency.p50_us;
    o["check_p90_us"] = r.report.check_latency.p90_us;
    o["check_p99_us"] = r.report.check_latency.p99_us;
    o["check_max_us"] = r.report.check_latency.max_us;
    o["alerts"] = r.report.alerts;
    fleet_rows.emplace_back(std::move(o));
  }
  root["fleet"] = std::move(fleet_rows);

  json::Object sharded;
  sharded["streams"] = shard_smoke.streams;
  sharded["shards"] = shard_smoke.shards;
  sharded["certificates"] = shard_smoke.certificates;
  sharded["commands_checked"] = shard_smoke.commands_checked;
  sharded["commands_per_s"] = shard_smoke.commands_per_s;
  sharded["wall_s"] = shard_smoke.wall_s;
  sharded["static_violations"] = shard_smoke.static_violations;
  sharded["oracle_violations"] = shard_smoke.oracle_violations;
  sharded["ok"] = shard_smoke.ok;
  root["sharded_campaign"] = std::move(sharded);

  std::ofstream out(path);
  out << json::serialize_pretty(json::Value(std::move(root))) << "\n";
  std::printf("wrote %s\n", path);
}

// --- catalogue verdict parity ----------------------------------------------

bool outcomes_match(const bugs::BugOutcome& a, const bugs::BugOutcome& b) {
  return a.detected == b.detected && a.alerted == b.alerted && a.damaged == b.damaged &&
         a.alert_rule == b.alert_rule && a.damage_severity == b.damage_severity &&
         a.report.first_alert_step == b.report.first_alert_step;
}

int verify_catalogue() {
  print_header("Catalogue verdict parity: hot path on vs off",
               "RABIT (DSN'24), Table IV — optimizations must not change a verdict");

  constexpr core::Variant kVariants[] = {core::Variant::Initial, core::Variant::Modified,
                                         core::Variant::ModifiedWithSim};
  const char* kVariantNames[] = {"V1", "V2", "V3"};
  std::size_t detected_per_variant[3] = {0, 0, 0};
  int divergences = 0;

  for (const bugs::BugSpec& bug : bugs::bug_catalogue()) {
    sim::LabBackend staging(sim::testbed_profile());
    sim::build_hein_testbed_deck(staging);
    std::vector<dev::Command> commands = bug.build(staging);

    for (int v = 0; v < 3; ++v) {
      bugs::BugOutcome off =
          bugs::evaluate_stream(commands, kVariants[v], trace::Supervisor::Options{}, kBaseline);
      bugs::BugOutcome on =
          bugs::evaluate_stream(commands, kVariants[v], trace::Supervisor::Options{}, kOptimized);
      if (!outcomes_match(off, on)) {
        ++divergences;
        std::printf("DIVERGENCE %s %s: off{detected=%d alerted=%d rule=%s} "
                    "on{detected=%d alerted=%d rule=%s}\n",
                    bug.id.c_str(), kVariantNames[v], off.detected, off.alerted,
                    off.alert_rule.c_str(), on.detected, on.alerted, on.alert_rule.c_str());
      }
      if (on.detected) ++detected_per_variant[v];
    }
  }

  std::printf("detections: V1=%zu V2=%zu V3=%zu (paper: 8/12/13)\n", detected_per_variant[0],
              detected_per_variant[1], detected_per_variant[2]);
  bool progression_ok = detected_per_variant[0] == 8 && detected_per_variant[1] == 12 &&
                        detected_per_variant[2] == 13;
  if (!progression_ok) std::printf("FAIL: detection progression diverged from 8/12/13\n");
  if (divergences > 0) std::printf("FAIL: %d verdict divergence(s)\n", divergences);
  if (divergences == 0 && progression_ok) std::printf("PASS: all verdicts identical\n");
  return (divergences == 0 && progression_ok) ? 0 : 1;
}

// --- google-benchmark section -----------------------------------------------

void BM_SingleStream_Optimized(benchmark::State& state) {
  fleet::StreamSpec spec = fleet::testbed_stream("bm", core::Variant::ModifiedWithSim, 42);
  spec.extra_obstacles = 400;
  spec.hot_path = kOptimized;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fleet::FleetRunner::run_stream(spec));
  }
}
BENCHMARK(BM_SingleStream_Optimized)->Unit(benchmark::kMillisecond);

void BM_SingleStream_Baseline(benchmark::State& state) {
  fleet::StreamSpec spec = fleet::testbed_stream("bm", core::Variant::ModifiedWithSim, 42);
  spec.extra_obstacles = 400;
  spec.hot_path = kBaseline;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fleet::FleetRunner::run_stream(spec));
  }
}
BENCHMARK(BM_SingleStream_Baseline)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool shard_only = false;
  bool verify = false;
  std::string obs_dir;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--shard-smoke") == 0) {
      shard_only = true;
    } else if (std::strcmp(argv[i], "--verify-catalogue") == 0) {
      verify = true;
    } else if (std::strcmp(argv[i], "--obs-out") == 0 && i + 1 < argc) {
      obs_dir = argv[++i];
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (verify) return verify_catalogue();
  if (shard_only) {
    print_header("Plan-driven sharded campaign smoke",
                 "static shard planner certificates vs the runtime oracle, 16 streams");
    ShardSmoke shard_smoke = run_shard_smoke();
    print_shard_smoke(shard_smoke);
    return shard_smoke.ok ? 0 : 1;
  }

  print_header("Fleet-scale checking throughput",
               "RABIT (DSN'24), Section II-C latency; ROADMAP multi-stream north-star");

  fleet::StreamSpec base = fleet::testbed_stream("probe", core::Variant::ModifiedWithSim, 42);
  // Dense variant: same workflow, but the simulator world carries a
  // production-density shelf rack. This is the representative fleet-scale
  // load; the sparse testbed row is reported for transparency.
  fleet::StreamSpec dense = base;
  dense.extra_obstacles = 400;

  int min_iters = smoke ? 1 : 3;
  double min_seconds = smoke ? 0.0 : 0.5;
  CheckCost sparse_base = measure_check_cost(base, kBaseline, min_iters, min_seconds);
  CheckCost sparse_opt = measure_check_cost(base, kOptimized, min_iters, min_seconds);
  CheckCost baseline = measure_check_cost(dense, kBaseline, min_iters, min_seconds);
  CheckCost optimized = measure_check_cost(dense, kOptimized, min_iters, min_seconds);
  double speedup = optimized.us_per_cmd > 0 ? baseline.us_per_cmd / optimized.us_per_cmd : 0.0;

  std::printf("single-stream real check cost (testbed workflow, V3):\n");
  std::printf("  sparse testbed world:\n");
  std::printf("    %-40s %10.1f us/cmd  (%d iters)\n", "seed engine (linear scan, no cache)",
              sparse_base.us_per_cmd, sparse_base.iterations);
  std::printf("    %-40s %10.1f us/cmd  (%d iters)\n", "indexed hot path (all toggles on)",
              sparse_opt.us_per_cmd, sparse_opt.iterations);
  std::printf("  dense lab world (+400 obstacle boxes):\n");
  std::printf("    %-40s %10.1f us/cmd  (%d iters)\n", "seed engine (linear scan, no cache)",
              baseline.us_per_cmd, baseline.iterations);
  std::printf("    %-40s %10.1f us/cmd  (%d iters)\n", "indexed hot path (all toggles on)",
              optimized.us_per_cmd, optimized.iterations);
  std::printf("  dense-world speedup: %.1fx (target: >=5x)\n\n", speedup);

  std::vector<std::size_t> counts = smoke ? std::vector<std::size_t>{16}
                                          : std::vector<std::size_t>{1, 4, 16, 64};
  std::vector<FleetRow> rows;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    // With --obs-out, the last (largest) row runs observed so the export
    // covers the full fleet; the other rows stay unobserved to keep the
    // throughput numbers comparable with earlier runs.
    bool obs = !obs_dir.empty() && i + 1 == counts.size();
    rows.push_back(run_fleet(dense, counts[i], obs));
  }
  std::printf("fleet throughput (dense lab world, hot path on):\n");
  print_fleet_table(rows);
  std::printf("\n");

  ShardSmoke shard_smoke = run_shard_smoke();
  print_shard_smoke(shard_smoke);

  if (!obs_dir.empty() && rows.back().report.obs_events != nullptr) {
    std::string error;
    if (!obs::write_export_dir(obs_dir, *rows.back().report.obs_events,
                               *rows.back().report.obs_metrics, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::printf("observability written to %s/{events.jsonl,trace.json,metrics.prom}\n",
                obs_dir.c_str());
  }

  write_json("BENCH_throughput.json", smoke, baseline, optimized, rows, shard_smoke);

  if (smoke) return 0;  // the TSan job wants the fleet exercised, not microbenches
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
