// Fleet-scale throughput: shards N independent testbed streams across a
// worker pool (src/fleet) and reports commands/s plus p50/p99 real check
// latency at 1/4/16/64 streams. The paper runs RABIT on a single experiment
// stream; the ROADMAP north-star is a middleware that validates many
// concurrent streams, which is what this harness measures.
//
// Also measures the single-stream speedup of the indexed hot path (rule
// index + memoized rule world + broad phase + verdict cache) against the
// seed engine's linear-scan path, on the *real* CPU cost of the checks —
// not the modeled 0.03 s / 2 s environment constants.
//
// Modes:
//   (default)            full fleet table + google-benchmark section,
//                        writes BENCH_throughput.json
//   --smoke              quick 16-stream run (for the TSan CI job), still
//                        writes BENCH_throughput.json
//   --verify-catalogue   runs all 16 catalogue bugs x 3 variants with the
//                        hot path on and off; exits 1 on any verdict
//                        divergence (the optimizations must not change a
//                        single verdict, Table IV progression included)
//   --obs-out <dir>      enables per-stream observability on the final fleet
//                        row and writes the merged events.jsonl, trace.json
//                        (Chrome trace / Perfetto) and metrics.prom to <dir>
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "fleet/fleet.hpp"
#include "json/json.hpp"
#include "obs/obs.hpp"

namespace {

using namespace rabit;
using namespace rabit::bench;

const core::HotPathConfig kOptimized{};  // all toggles default to on
constexpr core::HotPathConfig kBaseline{/*index_lookups=*/false,
                                        /*memoize_rule_world=*/false,
                                        /*broad_phase=*/false,
                                        /*verdict_cache=*/false};

// --- single-stream real check cost ------------------------------------------

struct CheckCost {
  double us_per_cmd = 0.0;
  std::size_t commands = 0;
  int iterations = 0;
};

CheckCost measure_check_cost(const fleet::StreamSpec& base, const core::HotPathConfig& hot,
                             int min_iters, double min_seconds) {
  fleet::StreamSpec spec = base;
  spec.hot_path = hot;
  CheckCost cost;
  double total_us = 0.0;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 1000; ++i) {
    fleet::StreamResult r = fleet::FleetRunner::run_stream(spec);
    total_us += r.check_wall_s * 1e6;
    cost.commands += r.report.steps.size();
    ++cost.iterations;
    double elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (cost.iterations >= min_iters && elapsed >= min_seconds) break;
  }
  if (cost.commands > 0) cost.us_per_cmd = total_us / static_cast<double>(cost.commands);
  return cost;
}

// --- fleet scaling table ----------------------------------------------------

struct FleetRow {
  std::size_t streams = 0;
  std::size_t workers = 0;
  fleet::FleetReport report;
};

std::size_t workers_for(std::size_t streams) {
  std::size_t hw = std::thread::hardware_concurrency();
  // Floor of 4 so the pool is genuinely concurrent even on small CI boxes
  // (and so the TSan smoke run actually interleaves workers).
  return std::min(streams, std::max<std::size_t>(hw, 4));
}

FleetRow run_fleet(const fleet::StreamSpec& base, std::size_t streams, bool obs = false) {
  std::vector<fleet::StreamSpec> specs;
  specs.reserve(streams);
  for (std::size_t i = 0; i < streams; ++i) {
    fleet::StreamSpec spec = base;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "stream-%03zu", i);
    spec.name = buf;
    spec.seed = 1000 + static_cast<unsigned>(i);
    spec.obs = obs;
    specs.push_back(std::move(spec));
  }
  FleetRow row;
  row.streams = streams;
  row.workers = workers_for(streams);
  fleet::FleetRunner runner(fleet::FleetRunner::Options{row.workers});
  row.report = runner.run(specs);
  return row;
}

void print_fleet_table(const std::vector<FleetRow>& rows) {
  std::printf("%8s %8s %10s %12s %10s %10s %8s\n", "streams", "workers", "commands",
              "commands/s", "p50 us", "p99 us", "alerts");
  print_rule();
  for (const FleetRow& r : rows) {
    std::printf("%8zu %8zu %10zu %12.0f %10.1f %10.1f %8zu\n", r.streams, r.workers,
                r.report.commands_checked, r.report.commands_per_s,
                r.report.check_latency.p50_us, r.report.check_latency.p99_us, r.report.alerts);
  }
  print_rule();
}

// --- BENCH_throughput.json --------------------------------------------------

void write_json(const char* path, bool smoke, const CheckCost& baseline,
                const CheckCost& optimized, const std::vector<FleetRow>& rows) {
  json::Object root;
  root["bench"] = "throughput";
  root["mode"] = smoke ? "smoke" : "full";

  json::Object single;
  single["baseline_check_us_per_cmd"] = baseline.us_per_cmd;
  single["optimized_check_us_per_cmd"] = optimized.us_per_cmd;
  single["speedup"] = optimized.us_per_cmd > 0 ? baseline.us_per_cmd / optimized.us_per_cmd : 0.0;
  single["commands_per_iteration"] =
      optimized.iterations > 0 ? optimized.commands / optimized.iterations : std::size_t{0};
  root["single_stream"] = std::move(single);

  json::Array fleet_rows;
  for (const FleetRow& r : rows) {
    json::Object o;
    o["streams"] = r.streams;
    o["workers"] = r.workers;
    o["commands_checked"] = r.report.commands_checked;
    o["commands_per_s"] = r.report.commands_per_s;
    o["wall_s"] = r.report.wall_s;
    o["check_p50_us"] = r.report.check_latency.p50_us;
    o["check_p90_us"] = r.report.check_latency.p90_us;
    o["check_p99_us"] = r.report.check_latency.p99_us;
    o["check_max_us"] = r.report.check_latency.max_us;
    o["alerts"] = r.report.alerts;
    fleet_rows.emplace_back(std::move(o));
  }
  root["fleet"] = std::move(fleet_rows);

  std::ofstream out(path);
  out << json::serialize_pretty(json::Value(std::move(root))) << "\n";
  std::printf("wrote %s\n", path);
}

// --- catalogue verdict parity ----------------------------------------------

bool outcomes_match(const bugs::BugOutcome& a, const bugs::BugOutcome& b) {
  return a.detected == b.detected && a.alerted == b.alerted && a.damaged == b.damaged &&
         a.alert_rule == b.alert_rule && a.damage_severity == b.damage_severity &&
         a.report.first_alert_step == b.report.first_alert_step;
}

int verify_catalogue() {
  print_header("Catalogue verdict parity: hot path on vs off",
               "RABIT (DSN'24), Table IV — optimizations must not change a verdict");

  constexpr core::Variant kVariants[] = {core::Variant::Initial, core::Variant::Modified,
                                         core::Variant::ModifiedWithSim};
  const char* kVariantNames[] = {"V1", "V2", "V3"};
  std::size_t detected_per_variant[3] = {0, 0, 0};
  int divergences = 0;

  for (const bugs::BugSpec& bug : bugs::bug_catalogue()) {
    sim::LabBackend staging(sim::testbed_profile());
    sim::build_hein_testbed_deck(staging);
    std::vector<dev::Command> commands = bug.build(staging);

    for (int v = 0; v < 3; ++v) {
      bugs::BugOutcome off =
          bugs::evaluate_stream(commands, kVariants[v], trace::Supervisor::Options{}, kBaseline);
      bugs::BugOutcome on =
          bugs::evaluate_stream(commands, kVariants[v], trace::Supervisor::Options{}, kOptimized);
      if (!outcomes_match(off, on)) {
        ++divergences;
        std::printf("DIVERGENCE %s %s: off{detected=%d alerted=%d rule=%s} "
                    "on{detected=%d alerted=%d rule=%s}\n",
                    bug.id.c_str(), kVariantNames[v], off.detected, off.alerted,
                    off.alert_rule.c_str(), on.detected, on.alerted, on.alert_rule.c_str());
      }
      if (on.detected) ++detected_per_variant[v];
    }
  }

  std::printf("detections: V1=%zu V2=%zu V3=%zu (paper: 8/12/13)\n", detected_per_variant[0],
              detected_per_variant[1], detected_per_variant[2]);
  bool progression_ok = detected_per_variant[0] == 8 && detected_per_variant[1] == 12 &&
                        detected_per_variant[2] == 13;
  if (!progression_ok) std::printf("FAIL: detection progression diverged from 8/12/13\n");
  if (divergences > 0) std::printf("FAIL: %d verdict divergence(s)\n", divergences);
  if (divergences == 0 && progression_ok) std::printf("PASS: all verdicts identical\n");
  return (divergences == 0 && progression_ok) ? 0 : 1;
}

// --- google-benchmark section -----------------------------------------------

void BM_SingleStream_Optimized(benchmark::State& state) {
  fleet::StreamSpec spec = fleet::testbed_stream("bm", core::Variant::ModifiedWithSim, 42);
  spec.extra_obstacles = 400;
  spec.hot_path = kOptimized;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fleet::FleetRunner::run_stream(spec));
  }
}
BENCHMARK(BM_SingleStream_Optimized)->Unit(benchmark::kMillisecond);

void BM_SingleStream_Baseline(benchmark::State& state) {
  fleet::StreamSpec spec = fleet::testbed_stream("bm", core::Variant::ModifiedWithSim, 42);
  spec.extra_obstacles = 400;
  spec.hot_path = kBaseline;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fleet::FleetRunner::run_stream(spec));
  }
}
BENCHMARK(BM_SingleStream_Baseline)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool verify = false;
  std::string obs_dir;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--verify-catalogue") == 0) {
      verify = true;
    } else if (std::strcmp(argv[i], "--obs-out") == 0 && i + 1 < argc) {
      obs_dir = argv[++i];
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (verify) return verify_catalogue();

  print_header("Fleet-scale checking throughput",
               "RABIT (DSN'24), Section II-C latency; ROADMAP multi-stream north-star");

  fleet::StreamSpec base = fleet::testbed_stream("probe", core::Variant::ModifiedWithSim, 42);
  // Dense variant: same workflow, but the simulator world carries a
  // production-density shelf rack. This is the representative fleet-scale
  // load; the sparse testbed row is reported for transparency.
  fleet::StreamSpec dense = base;
  dense.extra_obstacles = 400;

  int min_iters = smoke ? 1 : 3;
  double min_seconds = smoke ? 0.0 : 0.5;
  CheckCost sparse_base = measure_check_cost(base, kBaseline, min_iters, min_seconds);
  CheckCost sparse_opt = measure_check_cost(base, kOptimized, min_iters, min_seconds);
  CheckCost baseline = measure_check_cost(dense, kBaseline, min_iters, min_seconds);
  CheckCost optimized = measure_check_cost(dense, kOptimized, min_iters, min_seconds);
  double speedup = optimized.us_per_cmd > 0 ? baseline.us_per_cmd / optimized.us_per_cmd : 0.0;

  std::printf("single-stream real check cost (testbed workflow, V3):\n");
  std::printf("  sparse testbed world:\n");
  std::printf("    %-40s %10.1f us/cmd  (%d iters)\n", "seed engine (linear scan, no cache)",
              sparse_base.us_per_cmd, sparse_base.iterations);
  std::printf("    %-40s %10.1f us/cmd  (%d iters)\n", "indexed hot path (all toggles on)",
              sparse_opt.us_per_cmd, sparse_opt.iterations);
  std::printf("  dense lab world (+400 obstacle boxes):\n");
  std::printf("    %-40s %10.1f us/cmd  (%d iters)\n", "seed engine (linear scan, no cache)",
              baseline.us_per_cmd, baseline.iterations);
  std::printf("    %-40s %10.1f us/cmd  (%d iters)\n", "indexed hot path (all toggles on)",
              optimized.us_per_cmd, optimized.iterations);
  std::printf("  dense-world speedup: %.1fx (target: >=5x)\n\n", speedup);

  std::vector<std::size_t> counts = smoke ? std::vector<std::size_t>{16}
                                          : std::vector<std::size_t>{1, 4, 16, 64};
  std::vector<FleetRow> rows;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    // With --obs-out, the last (largest) row runs observed so the export
    // covers the full fleet; the other rows stay unobserved to keep the
    // throughput numbers comparable with earlier runs.
    bool obs = !obs_dir.empty() && i + 1 == counts.size();
    rows.push_back(run_fleet(dense, counts[i], obs));
  }
  std::printf("fleet throughput (dense lab world, hot path on):\n");
  print_fleet_table(rows);

  if (!obs_dir.empty() && rows.back().report.obs_events != nullptr) {
    std::string error;
    if (!obs::write_export_dir(obs_dir, *rows.back().report.obs_events,
                               *rows.back().report.obs_metrics, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::printf("observability written to %s/{events.jsonl,trace.json,metrics.prom}\n",
                obs_dir.c_str());
  }

  write_json("BENCH_throughput.json", smoke, baseline, optimized, rows);

  if (smoke) return 0;  // the TSan job wants the fleet exercised, not microbenches
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
