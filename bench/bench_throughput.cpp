// Fleet-scale throughput: shards N independent testbed streams across a
// worker pool (src/fleet) and reports commands/s plus p50/p99/p999 real
// check latency at 1/4/16/64 streams. The paper runs RABIT on a single
// experiment stream; the ROADMAP north-star is a middleware that validates
// many concurrent streams, which is what this harness measures.
//
// Also measures the single-stream speedup of the indexed hot path (rule
// index + memoized rule world + broad phase + verdict cache) against the
// seed engine's linear-scan path, on the *real* CPU cost of the checks —
// not the modeled 0.03 s / 2 s environment constants.
//
// Modes:
//   (default)            full fleet table + sharded-execution worker sweep +
//                        google-benchmark section, writes
//                        BENCH_throughput.json
//   --smoke              quick run (for the TSan CI job), still writes
//                        BENCH_throughput.json
//   --shard-smoke        plan-driven sharded campaigns: 16 streams / 4
//                        station groups (V2) and 64 streams / 8 groups (V3,
//                        with a live-motion shard feeding the epoch-versioned
//                        pose board). Builds the static shard plan, verifies
//                        it, runs it across a worker pool with the validation
//                        oracle on, and exits 1 unless the plans split into
//                        exactly 4 and 8 shards, the oracle stays silent, the
//                        certificate monitor records no envelope breach, no
//                        coordination event fires, and (Release, unsanitized)
//                        the worst check latency stays under 1 ms
//   --baseline <path>    perf-regression gate: compares this run's fleet and
//                        sharded scaling efficiency against a previously
//                        written BENCH_throughput.json; exits 1 on a >20%
//                        regression (skipped when the CPU counts differ)
//   --verify-catalogue   runs all 16 catalogue bugs x 3 variants with the
//                        hot path on and off; exits 1 on any verdict
//                        divergence (the optimizations must not change a
//                        single verdict, Table IV progression included)
//   --obs-out <dir>      enables per-stream observability on the final fleet
//                        row and writes the merged events.jsonl, trace.json
//                        (Chrome trace / Perfetto) and metrics.prom to <dir>
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include <unistd.h>

#include "analysis/shard_plan.hpp"
#include "bench_common.hpp"
#include "devices/stations.hpp"
#include "fleet/fleet.hpp"
#include "json/json.hpp"
#include "obs/obs.hpp"
#include "sim/deck.hpp"

// Timing-based gates (tail latency, scaling) only bind on an optimized,
// unsanitized build; Debug or sanitizer instrumentation inflates check cost
// by an order of magnitude and would gate on the instrumentation instead.
#if defined(NDEBUG) && !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__)
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define RABIT_BENCH_TIMING_GATES 0
#else
#define RABIT_BENCH_TIMING_GATES 1
#endif
#else
#define RABIT_BENCH_TIMING_GATES 1
#endif
#else
#define RABIT_BENCH_TIMING_GATES 0
#endif

namespace {

using namespace rabit;
using namespace rabit::bench;

const core::HotPathConfig kOptimized{};  // all toggles default to on
constexpr core::HotPathConfig kBaseline{/*index_lookups=*/false,
                                        /*memoize_rule_world=*/false,
                                        /*broad_phase=*/false,
                                        /*verdict_cache=*/false};

/// The worst per-command check latency the sharded hot path may exhibit on
/// the smoke workload (Release, unsanitized). Latencies are thread-CPU time
/// (obs::thread_cpu_now_us), so scheduler preemption on an oversubscribed
/// box cannot push a check past the gate.
constexpr double kTailGateUs = 1000.0;

std::size_t cpus_online() {
  long n = sysconf(_SC_NPROCESSORS_ONLN);
  return n > 0 ? static_cast<std::size_t>(n) : 1;
}

// --- single-stream real check cost ------------------------------------------

struct CheckCost {
  double us_per_cmd = 0.0;
  std::size_t commands = 0;
  int iterations = 0;
};

CheckCost measure_check_cost(const fleet::StreamSpec& base, const core::HotPathConfig& hot,
                             int min_iters, double min_seconds) {
  fleet::StreamSpec spec = base;
  spec.hot_path = hot;
  CheckCost cost;
  double total_us = 0.0;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 1000; ++i) {
    fleet::StreamResult r = fleet::FleetRunner::run_stream(spec);
    total_us += r.check_wall_s * 1e6;
    cost.commands += r.report.steps.size();
    ++cost.iterations;
    double elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (cost.iterations >= min_iters && elapsed >= min_seconds) break;
  }
  if (cost.commands > 0) cost.us_per_cmd = total_us / static_cast<double>(cost.commands);
  return cost;
}

// --- fleet scaling table ----------------------------------------------------

struct FleetRow {
  std::size_t streams = 0;
  std::size_t workers = 0;
  double scaling_efficiency = 0.0;  ///< per-worker throughput vs the first row
  fleet::FleetReport report;
};

std::size_t workers_for(std::size_t streams) {
  std::size_t hw = std::thread::hardware_concurrency();
  // Floor of 4 so the pool is genuinely concurrent even on small CI boxes
  // (and so the TSan smoke run actually interleaves workers).
  return std::min(streams, std::max<std::size_t>(hw, 4));
}

FleetRow run_fleet(const fleet::StreamSpec& base, std::size_t streams, bool obs = false) {
  std::vector<fleet::StreamSpec> specs;
  specs.reserve(streams);
  for (std::size_t i = 0; i < streams; ++i) {
    fleet::StreamSpec spec = base;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "stream-%03zu", i);
    spec.name = buf;
    spec.seed = 1000 + static_cast<unsigned>(i);
    spec.obs = obs;
    // Every other stream runs with the runtime-assurance decision module on:
    // margins are accurate here so verdicts are identical, but the TSan CI
    // job now exercises the inflated-sweep fast path across worker threads.
    spec.assurance = (i % 2 == 0);
    specs.push_back(std::move(spec));
  }
  FleetRow row;
  row.streams = streams;
  row.workers = workers_for(streams);
  fleet::FleetRunner runner(fleet::FleetRunner::Options{row.workers});
  row.report = runner.run(specs);
  return row;
}

/// Per-worker throughput normalized to the table's first row: efficiency of
/// row r = (commands_per_s / workers) / (commands_per_s_0 / workers_0). 1.0
/// means perfect scaling relative to the reference row.
void fill_scaling_efficiency(std::vector<FleetRow>& rows) {
  if (rows.empty() || rows.front().report.commands_per_s <= 0) return;
  double per_worker_0 = rows.front().report.commands_per_s /
                        static_cast<double>(std::max<std::size_t>(1, rows.front().workers));
  for (FleetRow& r : rows) {
    double per_worker =
        r.report.commands_per_s / static_cast<double>(std::max<std::size_t>(1, r.workers));
    r.scaling_efficiency = per_worker_0 > 0 ? per_worker / per_worker_0 : 0.0;
  }
}

void print_fleet_table(const std::vector<FleetRow>& rows) {
  std::printf("%8s %8s %10s %12s %10s %10s %10s %8s %6s\n", "streams", "workers", "commands",
              "commands/s", "p50 us", "p99 us", "p999 us", "alerts", "eff");
  print_rule();
  for (const FleetRow& r : rows) {
    std::printf("%8zu %8zu %10zu %12.0f %10.1f %10.1f %10.1f %8zu %6.2f\n", r.streams, r.workers,
                r.report.commands_checked, r.report.commands_per_s,
                r.report.check_latency.p50_us, r.report.check_latency.p99_us,
                r.report.check_latency.p999_us, r.report.alerts, r.scaling_efficiency);
  }
  print_rule();
}

// --- plan-driven sharded campaigns -------------------------------------------

/// `streams` command streams across `groups` single-device groups. Groups
/// 0..6 each contend on one station (the six stock testbed stations plus,
/// past group 5, a Berlinguette-style spin coater the custom deck registers);
/// group 7 is the viperx motion group — under V3 its go_home/go_sleep cycles
/// give the epoch-versioned pose board a live writer while every station
/// shard checks lock-free. Across groups nothing is shared and only the
/// motion group carries envelopes, so the planner must certify exactly
/// `groups` shards.
fleet::CampaignSpec make_sharded_campaign(std::size_t streams, std::size_t groups,
                                          core::Variant variant) {
  fleet::CampaignSpec spec;
  spec.variant = variant;
  spec.seed = 77;
  spec.halt_on_alert = false;
  if (groups > 6) {
    spec.deck = [](sim::LabBackend& backend) {
      sim::build_hein_testbed_deck(backend);
      backend.registry().add(std::make_unique<dev::GenericActionDevice>(
          "spin_coater",
          std::vector<dev::GenericActionDevice::ValueActionSpec>{
              {"set_spin_speed", "spinSpeed", "rpm", 8000.0}},
          /*has_door=*/false, std::nullopt));
    };
  }
  for (std::size_t i = 0; i < streams; ++i) {
    fleet::CampaignStreamSpec stream;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "stream-%02zu", i);
    stream.name = buf;
    auto push = [&stream](const char* device, const char* action, json::Object args = {}) {
      dev::Command command;
      command.device = device;
      command.action = action;
      command.args = std::move(args);
      stream.commands.push_back(std::move(command));
    };
    auto num = [i](double base, double step) {
      return base + step * static_cast<double>(i % 16);
    };
    json::Object args;
    switch (i % groups) {
      case 0:
        args["celsius"] = num(40.0, 1.0);
        push("hotplate", "set_temperature", std::move(args));
        push("hotplate", "stop");
        args = {};
        args["celsius"] = num(35.0, 1.0);
        push("hotplate", "set_temperature", std::move(args));
        push("hotplate", "stop");
        break;
      case 1:
        args["celsius"] = num(30.0, 1.0);
        push("thermoshaker", "set_temperature", std::move(args));
        push("thermoshaker", "stop");
        args = {};
        args["celsius"] = num(25.0, 1.0);
        push("thermoshaker", "set_temperature", std::move(args));
        push("thermoshaker", "stop");
        break;
      case 2:
        args["state"] = std::string("open");
        push("centrifuge", "set_door", std::move(args));
        args = {};
        args["state"] = std::string("closed");
        push("centrifuge", "set_door", std::move(args));
        args = {};
        args["state"] = std::string("open");
        push("centrifuge", "set_door", std::move(args));
        args = {};
        args["state"] = std::string("closed");
        push("centrifuge", "set_door", std::move(args));
        break;
      case 3:
        for (int rep = 0; rep < 4; ++rep) {
          args = {};
          args["volume"] = 0.05 + 0.01 * static_cast<double>(i % 8);
          push("syringe_pump", "draw_solvent", std::move(args));
        }
        break;
      case 4:
        args["state"] = std::string("open");
        push("dosing_device", "set_door", std::move(args));
        args = {};
        args["state"] = std::string("closed");
        push("dosing_device", "set_door", std::move(args));
        args = {};
        args["state"] = std::string("open");
        push("dosing_device", "set_door", std::move(args));
        args = {};
        args["state"] = std::string("closed");
        push("dosing_device", "set_door", std::move(args));
        break;
      case 5:
        push("camera", "start");
        push("camera", "stop");
        push("camera", "start");
        push("camera", "stop");
        break;
      case 6:
        args["rpm"] = num(500.0, 100.0);
        push("spin_coater", "set_spin_speed", std::move(args));
        push("spin_coater", "start");
        push("spin_coater", "stop");
        args = {};
        args["rpm"] = num(300.0, 50.0);
        push("spin_coater", "set_spin_speed", std::move(args));
        break;
      default:
        push("viperx", "go_home");
        push("viperx", "go_sleep");
        push("viperx", "go_home");
        push("viperx", "go_sleep");
        break;
    }
    spec.streams.push_back(std::move(stream));
  }
  return spec;
}

struct ShardSmoke {
  std::size_t streams = 0;
  std::size_t groups = 0;
  std::size_t shards = 0;
  std::size_t certificates = 0;
  std::size_t commands_checked = 0;
  std::size_t oracle_violations = 0;
  std::size_t static_violations = 0;
  std::size_t certificate_breaches = 0;
  std::size_t coordination_events = 0;
  std::size_t snapshot_pose_serves = 0;
  fleet::LatencySummary check_latency;
  double wall_s = 0.0;
  double commands_per_s = 0.0;
  bool tail_gated = false;  ///< the <1 ms worst-check gate was enforced
  bool ok = false;
};

ShardSmoke run_shard_smoke(std::size_t streams, std::size_t groups, core::Variant variant,
                           std::size_t workers, bool gate_tail) {
  fleet::CampaignSpec spec = make_sharded_campaign(streams, groups, variant);

  sim::LabBackend backend(sim::testbed_profile(), spec.seed);
  if (spec.deck) {
    spec.deck(backend);
  } else {
    sim::build_hein_testbed_deck(backend);
  }
  core::EngineConfig config = core::config_from_backend(backend, spec.variant);

  std::vector<analysis::StreamSummary> summaries;
  summaries.reserve(spec.streams.size());
  for (const fleet::CampaignStreamSpec& s : spec.streams) {
    summaries.push_back(analysis::summarize_stream(config, s.name, s.commands, {}, nullptr));
  }
  analysis::ShardPlan plan = analysis::plan_shards(config, summaries);

  ShardSmoke result;
  result.streams = streams;
  result.groups = groups;
  result.shards = plan.shards.size();
  result.certificates = plan.certificates.size();
  result.static_violations = analysis::verify_plan(config, summaries, plan).size();

  fleet::ShardedCampaignOptions options;
  options.workers = workers;
  options.validate_certificates = true;
  fleet::CampaignReport report = fleet::Fleet::run_campaign(spec, plan, options);
  result.wall_s = report.wall_s;
  result.commands_checked = report.commands_checked;
  result.commands_per_s = report.commands_per_s;
  result.oracle_violations = report.oracle_violations.size();
  result.certificate_breaches = report.certificate_breaches.size();
  result.coordination_events = report.coordination_events;
  result.snapshot_pose_serves = report.snapshot_pose_serves;
  result.check_latency = report.check_latency;
  for (const std::string& v : report.oracle_violations) {
    std::printf("ORACLE VIOLATION: %s\n", v.c_str());
  }
  for (const std::string& v : report.certificate_breaches) {
    std::printf("ENVELOPE BREACH: %s\n", v.c_str());
  }
  result.ok = result.shards == groups && result.oracle_violations == 0 &&
              result.static_violations == 0 && result.certificate_breaches == 0 &&
              result.coordination_events == 0 && report.shards == plan.shards.size();
  result.tail_gated = gate_tail && RABIT_BENCH_TIMING_GATES != 0;
  if (result.tail_gated && result.check_latency.max_us >= kTailGateUs) {
    std::printf("TAIL GATE: worst check %.1f us >= %.0f us\n", result.check_latency.max_us,
                kTailGateUs);
    result.ok = false;
  }
  return result;
}

void print_shard_smoke(const ShardSmoke& smoke, const char* variant_name) {
  std::printf("plan-driven sharded campaign (%zu streams, %zu groups, %s):\n", smoke.streams,
              smoke.groups, variant_name);
  std::printf("  %-24s %zu\n", "shards", smoke.shards);
  std::printf("  %-24s %zu\n", "certificates", smoke.certificates);
  std::printf("  %-24s %zu\n", "commands checked", smoke.commands_checked);
  std::printf("  %-24s %.0f\n", "commands/s", smoke.commands_per_s);
  std::printf("  %-24s %zu\n", "snapshot pose serves", smoke.snapshot_pose_serves);
  std::printf("  %-24s %zu\n", "coordination events", smoke.coordination_events);
  std::printf("  %-24s %zu\n", "envelope breaches", smoke.certificate_breaches);
  std::printf("  %-24s %zu\n", "static violations", smoke.static_violations);
  std::printf("  %-24s %zu\n", "oracle violations", smoke.oracle_violations);
  std::printf("  %-24s p50 %.1f  p99 %.1f  p999 %.1f  max %.1f%s\n", "check latency (us)",
              smoke.check_latency.p50_us, smoke.check_latency.p99_us,
              smoke.check_latency.p999_us, smoke.check_latency.max_us,
              smoke.tail_gated ? "  (gated < 1 ms)" : "");
  std::printf("  %-24s %s\n\n", "verdict", smoke.ok ? "PASS" : "FAIL");
}

// --- sharded execution worker sweep ------------------------------------------

struct ShardSweepRow {
  std::size_t workers = 0;
  std::size_t shards = 0;
  double scaling_efficiency = 0.0;  ///< (cps / cps_1worker) / workers
  fleet::CampaignReport report;
};

/// The sharded hot path through the *default* entry (Fleet::run plans and
/// executes) at increasing worker counts, on the same 64-stream/8-group V3
/// campaign the smoke gates. Efficiency is relative to the sweep's own
/// 1-worker row, so the number is meaningful on any machine.
std::vector<ShardSweepRow> run_sharded_sweep(std::size_t streams, std::size_t groups,
                                             const std::vector<std::size_t>& workers_list) {
  fleet::CampaignSpec spec =
      make_sharded_campaign(streams, groups, core::Variant::ModifiedWithSim);
  std::vector<ShardSweepRow> rows;
  for (std::size_t w : workers_list) {
    fleet::ShardedCampaignOptions options;
    options.workers = w;
    ShardSweepRow row;
    row.workers = w;
    analysis::ShardPlan plan;
    row.report = fleet::Fleet::run(spec, options, &plan);
    row.shards = plan.shards.size();
    rows.push_back(std::move(row));
  }
  if (!rows.empty() && rows.front().workers == 1 && rows.front().report.commands_per_s > 0) {
    for (ShardSweepRow& r : rows) {
      r.scaling_efficiency =
          (r.report.commands_per_s / rows.front().report.commands_per_s) /
          static_cast<double>(r.workers);
    }
  }
  return rows;
}

void print_sharded_sweep(const std::vector<ShardSweepRow>& rows) {
  std::printf("sharded execution worker sweep (64 streams, 8 shards, V3, default entry):\n");
  std::printf("%8s %8s %10s %12s %10s %10s %8s %6s\n", "workers", "shards", "commands",
              "commands/s", "p99 us", "p999 us", "serves", "eff");
  print_rule();
  for (const ShardSweepRow& r : rows) {
    std::printf("%8zu %8zu %10zu %12.0f %10.1f %10.1f %8zu %6.2f\n", r.workers, r.shards,
                r.report.commands_checked, r.report.commands_per_s,
                r.report.check_latency.p99_us, r.report.check_latency.p999_us,
                r.report.snapshot_pose_serves, r.scaling_efficiency);
  }
  print_rule();
  std::printf("\n");
}

// --- BENCH_throughput.json --------------------------------------------------

void write_json(const char* path, bool smoke, const CheckCost& baseline,
                const CheckCost& optimized, const std::vector<FleetRow>& rows,
                const std::vector<ShardSweepRow>& sweep, const ShardSmoke& shard_smoke) {
  json::Object root;
  root["bench"] = "throughput";
  root["mode"] = smoke ? "smoke" : "full";
  // Scaling efficiency is only comparable between runs on the same core
  // count; the regression gate checks this field before comparing.
  root["cpus_online"] = cpus_online();

  json::Object single;
  single["baseline_check_us_per_cmd"] = baseline.us_per_cmd;
  single["optimized_check_us_per_cmd"] = optimized.us_per_cmd;
  single["speedup"] = optimized.us_per_cmd > 0 ? baseline.us_per_cmd / optimized.us_per_cmd : 0.0;
  single["commands_per_iteration"] =
      optimized.iterations > 0 ? optimized.commands / optimized.iterations : std::size_t{0};
  root["single_stream"] = std::move(single);

  json::Array fleet_rows;
  for (const FleetRow& r : rows) {
    json::Object o;
    o["streams"] = r.streams;
    o["workers"] = r.workers;
    o["commands_checked"] = r.report.commands_checked;
    o["commands_per_s"] = r.report.commands_per_s;
    o["wall_s"] = r.report.wall_s;
    o["check_p50_us"] = r.report.check_latency.p50_us;
    o["check_p90_us"] = r.report.check_latency.p90_us;
    o["check_p99_us"] = r.report.check_latency.p99_us;
    o["check_p999_us"] = r.report.check_latency.p999_us;
    o["check_max_us"] = r.report.check_latency.max_us;
    o["scaling_efficiency"] = r.scaling_efficiency;
    o["alerts"] = r.report.alerts;
    fleet_rows.emplace_back(std::move(o));
  }
  root["fleet"] = std::move(fleet_rows);

  json::Array sweep_rows;
  for (const ShardSweepRow& r : sweep) {
    json::Object o;
    o["workers"] = r.workers;
    o["shards"] = r.shards;
    o["commands_checked"] = r.report.commands_checked;
    o["commands_per_s"] = r.report.commands_per_s;
    o["wall_s"] = r.report.wall_s;
    o["check_p50_us"] = r.report.check_latency.p50_us;
    o["check_p99_us"] = r.report.check_latency.p99_us;
    o["check_p999_us"] = r.report.check_latency.p999_us;
    o["check_max_us"] = r.report.check_latency.max_us;
    o["snapshot_pose_serves"] = r.report.snapshot_pose_serves;
    o["coordination_events"] = r.report.coordination_events;
    o["certificate_breaches"] = r.report.certificate_breaches.size();
    o["scaling_efficiency"] = r.scaling_efficiency;
    sweep_rows.emplace_back(std::move(o));
  }
  root["sharded_fleet"] = std::move(sweep_rows);

  json::Object sharded;
  sharded["streams"] = shard_smoke.streams;
  sharded["groups"] = shard_smoke.groups;
  sharded["shards"] = shard_smoke.shards;
  sharded["certificates"] = shard_smoke.certificates;
  sharded["commands_checked"] = shard_smoke.commands_checked;
  sharded["commands_per_s"] = shard_smoke.commands_per_s;
  sharded["wall_s"] = shard_smoke.wall_s;
  sharded["snapshot_pose_serves"] = shard_smoke.snapshot_pose_serves;
  sharded["coordination_events"] = shard_smoke.coordination_events;
  sharded["certificate_breaches"] = shard_smoke.certificate_breaches;
  sharded["check_p999_us"] = shard_smoke.check_latency.p999_us;
  sharded["check_max_us"] = shard_smoke.check_latency.max_us;
  sharded["static_violations"] = shard_smoke.static_violations;
  sharded["oracle_violations"] = shard_smoke.oracle_violations;
  sharded["ok"] = shard_smoke.ok;
  root["sharded_campaign"] = std::move(sharded);

  std::ofstream out(path);
  out << json::serialize_pretty(json::Value(std::move(root))) << "\n";
  std::printf("wrote %s\n", path);
}

// --- perf-regression gate vs a checked-in baseline ---------------------------

/// One-sided gate: fails only when this run's scaling efficiency dropped
/// more than `tolerance` below the baseline's, never when it improved. Rows
/// match on (streams, workers) for "fleet" and workers for "sharded_fleet";
/// rows without a match are skipped, so growing the tables never breaks the
/// gate. Skipped entirely (exit 0, with a notice) when the baseline was
/// recorded on a different core count — efficiency is a per-machine number.
int compare_baseline(const std::string& path, const std::string& text,
                     const std::vector<FleetRow>& rows,
                     const std::vector<ShardSweepRow>& sweep) {
  constexpr double kTolerance = 0.20;
  json::Value doc;
  try {
    doc = json::parse(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "baseline gate: %s: %s\n", path.c_str(), e.what());
    return 1;
  }
  const json::Value* cpus = doc.find("cpus_online");
  if (cpus == nullptr || !cpus->is_number() ||
      static_cast<std::size_t>(cpus->as_double()) != cpus_online()) {
    std::printf("baseline gate: skipped (baseline cpus_online %s != current %zu)\n",
                cpus != nullptr && cpus->is_number()
                    ? std::to_string(static_cast<std::size_t>(cpus->as_double())).c_str()
                    : "absent",
                cpus_online());
    return 0;
  }

  int regressions = 0;
  auto check = [&regressions](const char* table, const std::string& key, double baseline_eff,
                              double current_eff) {
    if (baseline_eff <= 0) return;
    if (current_eff < baseline_eff * (1.0 - kTolerance)) {
      std::printf("baseline gate: %s %s efficiency regressed %.2f -> %.2f (>20%%)\n", table,
                  key.c_str(), baseline_eff, current_eff);
      ++regressions;
    } else {
      std::printf("baseline gate: %s %s efficiency %.2f -> %.2f ok\n", table, key.c_str(),
                  baseline_eff, current_eff);
    }
  };

  if (const json::Value* fleet = doc.find("fleet"); fleet != nullptr && fleet->is_array()) {
    for (const json::Value& row : fleet->as_array()) {
      const json::Value* streams = row.find("streams");
      const json::Value* workers = row.find("workers");
      const json::Value* eff = row.find("scaling_efficiency");
      if (streams == nullptr || workers == nullptr || eff == nullptr || !eff->is_number()) {
        continue;
      }
      for (const FleetRow& r : rows) {
        if (r.streams == static_cast<std::size_t>(streams->as_double()) &&
            r.workers == static_cast<std::size_t>(workers->as_double())) {
          check("fleet", std::to_string(r.streams) + "s/" + std::to_string(r.workers) + "w",
                eff->as_double(), r.scaling_efficiency);
        }
      }
    }
  }
  if (const json::Value* shard = doc.find("sharded_fleet");
      shard != nullptr && shard->is_array()) {
    for (const json::Value& row : shard->as_array()) {
      const json::Value* workers = row.find("workers");
      const json::Value* eff = row.find("scaling_efficiency");
      if (workers == nullptr || eff == nullptr || !eff->is_number()) continue;
      for (const ShardSweepRow& r : sweep) {
        if (r.workers == static_cast<std::size_t>(workers->as_double())) {
          check("sharded_fleet", std::to_string(r.workers) + "w", eff->as_double(),
                r.scaling_efficiency);
        }
      }
    }
  }
  if (regressions > 0) {
    std::printf("baseline gate: FAIL (%d regression(s) beyond 20%%)\n", regressions);
    return 1;
  }
  std::printf("baseline gate: PASS\n");
  return 0;
}

// --- catalogue verdict parity ----------------------------------------------

bool outcomes_match(const bugs::BugOutcome& a, const bugs::BugOutcome& b) {
  return a.detected == b.detected && a.alerted == b.alerted && a.damaged == b.damaged &&
         a.alert_rule == b.alert_rule && a.damage_severity == b.damage_severity &&
         a.report.first_alert_step == b.report.first_alert_step;
}

int verify_catalogue() {
  print_header("Catalogue verdict parity: hot path on vs off",
               "RABIT (DSN'24), Table IV — optimizations must not change a verdict");

  constexpr core::Variant kVariants[] = {core::Variant::Initial, core::Variant::Modified,
                                         core::Variant::ModifiedWithSim};
  const char* kVariantNames[] = {"V1", "V2", "V3"};
  std::size_t detected_per_variant[3] = {0, 0, 0};
  int divergences = 0;

  for (const bugs::BugSpec& bug : bugs::bug_catalogue()) {
    sim::LabBackend staging(sim::testbed_profile());
    sim::build_hein_testbed_deck(staging);
    std::vector<dev::Command> commands = bug.build(staging);

    for (int v = 0; v < 3; ++v) {
      bugs::BugOutcome off =
          bugs::evaluate_stream(commands, kVariants[v], trace::Supervisor::Options{}, kBaseline);
      bugs::BugOutcome on =
          bugs::evaluate_stream(commands, kVariants[v], trace::Supervisor::Options{}, kOptimized);
      if (!outcomes_match(off, on)) {
        ++divergences;
        std::printf("DIVERGENCE %s %s: off{detected=%d alerted=%d rule=%s} "
                    "on{detected=%d alerted=%d rule=%s}\n",
                    bug.id.c_str(), kVariantNames[v], off.detected, off.alerted,
                    off.alert_rule.c_str(), on.detected, on.alerted, on.alert_rule.c_str());
      }
      if (on.detected) ++detected_per_variant[v];
    }
  }

  std::printf("detections: V1=%zu V2=%zu V3=%zu (paper: 8/12/13)\n", detected_per_variant[0],
              detected_per_variant[1], detected_per_variant[2]);
  bool progression_ok = detected_per_variant[0] == 8 && detected_per_variant[1] == 12 &&
                        detected_per_variant[2] == 13;
  if (!progression_ok) std::printf("FAIL: detection progression diverged from 8/12/13\n");
  if (divergences > 0) std::printf("FAIL: %d verdict divergence(s)\n", divergences);
  if (divergences == 0 && progression_ok) std::printf("PASS: all verdicts identical\n");
  return (divergences == 0 && progression_ok) ? 0 : 1;
}

// --- google-benchmark section -----------------------------------------------

void BM_SingleStream_Optimized(benchmark::State& state) {
  fleet::StreamSpec spec = fleet::testbed_stream("bm", core::Variant::ModifiedWithSim, 42);
  spec.extra_obstacles = 400;
  spec.hot_path = kOptimized;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fleet::FleetRunner::run_stream(spec));
  }
}
BENCHMARK(BM_SingleStream_Optimized)->Unit(benchmark::kMillisecond);

void BM_SingleStream_Baseline(benchmark::State& state) {
  fleet::StreamSpec spec = fleet::testbed_stream("bm", core::Variant::ModifiedWithSim, 42);
  spec.extra_obstacles = 400;
  spec.hot_path = kBaseline;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fleet::FleetRunner::run_stream(spec));
  }
}
BENCHMARK(BM_SingleStream_Baseline)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool shard_only = false;
  bool verify = false;
  std::string obs_dir;
  std::string baseline_path;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--shard-smoke") == 0) {
      shard_only = true;
    } else if (std::strcmp(argv[i], "--verify-catalogue") == 0) {
      verify = true;
    } else if (std::strcmp(argv[i], "--obs-out") == 0 && i + 1 < argc) {
      obs_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (verify) return verify_catalogue();
  if (shard_only) {
    print_header("Plan-driven sharded campaign smoke",
                 "static shard planner certificates vs the runtime oracle + pose board");
    ShardSmoke small = run_shard_smoke(16, 4, core::Variant::Modified, 4, /*gate_tail=*/false);
    print_shard_smoke(small, "V2");
    ShardSmoke large =
        run_shard_smoke(64, 8, core::Variant::ModifiedWithSim, 8, /*gate_tail=*/true);
    print_shard_smoke(large, "V3");
    return small.ok && large.ok ? 0 : 1;
  }

  // Slurp the baseline before anything runs: the report below writes
  // BENCH_throughput.json into the working directory, which in CI is the
  // very file the gate compares against.
  std::string baseline_text;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "baseline gate: cannot read %s\n", baseline_path.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    baseline_text = buffer.str();
  }

  print_header("Fleet-scale checking throughput",
               "RABIT (DSN'24), Section II-C latency; ROADMAP multi-stream north-star");

  fleet::StreamSpec base = fleet::testbed_stream("probe", core::Variant::ModifiedWithSim, 42);
  // Dense variant: same workflow, but the simulator world carries a
  // production-density shelf rack. This is the representative fleet-scale
  // load; the sparse testbed row is reported for transparency.
  fleet::StreamSpec dense = base;
  dense.extra_obstacles = 400;

  int min_iters = smoke ? 1 : 3;
  double min_seconds = smoke ? 0.0 : 0.5;
  CheckCost sparse_base = measure_check_cost(base, kBaseline, min_iters, min_seconds);
  CheckCost sparse_opt = measure_check_cost(base, kOptimized, min_iters, min_seconds);
  CheckCost baseline = measure_check_cost(dense, kBaseline, min_iters, min_seconds);
  CheckCost optimized = measure_check_cost(dense, kOptimized, min_iters, min_seconds);
  double speedup = optimized.us_per_cmd > 0 ? baseline.us_per_cmd / optimized.us_per_cmd : 0.0;

  std::printf("single-stream real check cost (testbed workflow, V3):\n");
  std::printf("  sparse testbed world:\n");
  std::printf("    %-40s %10.1f us/cmd  (%d iters)\n", "seed engine (linear scan, no cache)",
              sparse_base.us_per_cmd, sparse_base.iterations);
  std::printf("    %-40s %10.1f us/cmd  (%d iters)\n", "indexed hot path (all toggles on)",
              sparse_opt.us_per_cmd, sparse_opt.iterations);
  std::printf("  dense lab world (+400 obstacle boxes):\n");
  std::printf("    %-40s %10.1f us/cmd  (%d iters)\n", "seed engine (linear scan, no cache)",
              baseline.us_per_cmd, baseline.iterations);
  std::printf("    %-40s %10.1f us/cmd  (%d iters)\n", "indexed hot path (all toggles on)",
              optimized.us_per_cmd, optimized.iterations);
  std::printf("  dense-world speedup: %.1fx (target: >=5x)\n\n", speedup);

  std::vector<std::size_t> counts = smoke ? std::vector<std::size_t>{1, 16}
                                          : std::vector<std::size_t>{1, 4, 16, 64};
  std::vector<FleetRow> rows;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    // With --obs-out, the last (largest) row runs observed so the export
    // covers the full fleet; the other rows stay unobserved to keep the
    // throughput numbers comparable with earlier runs.
    bool obs = !obs_dir.empty() && i + 1 == counts.size();
    rows.push_back(run_fleet(dense, counts[i], obs));
  }
  fill_scaling_efficiency(rows);
  std::printf("fleet throughput (dense lab world, hot path on):\n");
  print_fleet_table(rows);
  std::printf("\n");

  std::vector<std::size_t> sweep_workers =
      smoke ? std::vector<std::size_t>{1, 4} : std::vector<std::size_t>{1, 2, 4};
  std::vector<ShardSweepRow> sweep = run_sharded_sweep(64, 8, sweep_workers);
  print_sharded_sweep(sweep);

  ShardSmoke shard_smoke =
      run_shard_smoke(64, 8, core::Variant::ModifiedWithSim, 8, /*gate_tail=*/true);
  print_shard_smoke(shard_smoke, "V3");

  if (!obs_dir.empty() && rows.back().report.obs_events != nullptr) {
    std::string error;
    if (!obs::write_export_dir(obs_dir, *rows.back().report.obs_events,
                               *rows.back().report.obs_metrics, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::printf("observability written to %s/{events.jsonl,trace.json,metrics.prom}\n",
                obs_dir.c_str());
  }

  write_json("BENCH_throughput.json", smoke, baseline, optimized, rows, sweep, shard_smoke);

  if (!shard_smoke.ok) return 1;
  if (!baseline_path.empty()) {
    int gate = compare_baseline(baseline_path, baseline_text, rows, sweep);
    if (gate != 0) return gate;
  }

  if (smoke) return 0;  // the TSan job wants the fleet exercised, not microbenches
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
