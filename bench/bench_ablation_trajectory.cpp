// Ablation A1: target-only checking vs. full trajectory checking.
//
// Paper §II-B lines 8-10: with the Extended Simulator RABIT validates the
// whole trajectory; "in the absence of such a simulator, only the target
// location is checked for potential collisions". This ablation sweeps
// scenarios where the obstacle is en route vs. at the target and reports
// each method's detection rate.
#include <benchmark/benchmark.h>

#include <random>

#include "bench_common.hpp"

namespace {

using namespace rabit;
using namespace rabit::bench;
using geom::Vec3;

struct Sweep {
  int target_hits_target_check = 0;
  int target_hits_path_check = 0;
  int enroute_hits_target_check = 0;
  int enroute_hits_path_check = 0;
  int target_cases = 0;
  int enroute_cases = 0;
};

Sweep run_sweep(unsigned seed) {
  auto backend = make_testbed();
  sim::WorldModel world = sim::deck_world_model(*backend);

  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> y(0.16, 0.34);
  std::uniform_real_distribution<double> z_low(0.025, 0.055);  // inside the grid's z band
  std::uniform_real_distribution<double> z_high(0.20, 0.40);

  Sweep sweep;
  for (int i = 0; i < 200; ++i) {
    bool enroute_case = i % 2 == 0;
    Vec3 start(0.18, y(rng), z_low(rng));
    Vec3 goal;
    if (enroute_case) {
      // Goal beyond the grid, path sweeping through it at low z.
      goal = Vec3(0.50, y(rng), z_low(rng));
      ++sweep.enroute_cases;
    } else {
      // Goal inside the grid box itself.
      goal = Vec3(0.35, y(rng), z_low(rng));
      ++sweep.target_cases;
    }
    bool target_hit = sim::check_point(world, goal, 0.0).has_value();
    bool path_hit = sim::check_path(world, start, goal, 0.0).has_value();
    if (enroute_case) {
      sweep.enroute_hits_target_check += target_hit ? 1 : 0;
      sweep.enroute_hits_path_check += path_hit ? 1 : 0;
    } else {
      sweep.target_hits_target_check += target_hit ? 1 : 0;
      sweep.target_hits_path_check += path_hit ? 1 : 0;
    }
  }
  return sweep;
}

void print_ablation() {
  print_header("Ablation A1 — target-only check vs. trajectory check",
               "RABIT (DSN'24), Section II-B lines 8-10 + footnote 2");
  Sweep s = run_sweep(17);
  std::printf("%-38s %18s %18s\n", "Scenario class (100 random cases each)",
              "target-only check", "trajectory check");
  print_rule();
  std::printf("%-38s %17.0f%% %17.0f%%\n", "obstacle AT the target",
              100.0 * s.target_hits_target_check / s.target_cases,
              100.0 * s.target_hits_path_check / s.target_cases);
  std::printf("%-38s %17.0f%% %17.0f%%\n", "obstacle EN ROUTE, target free",
              100.0 * s.enroute_hits_target_check / s.enroute_cases,
              100.0 * s.enroute_hits_path_check / s.enroute_cases);
  print_rule();
  std::printf("shape to match the paper: both methods catch occupied targets; only\n");
  std::printf("the trajectory check (the Extended Simulator) catches sweep-through\n");
  std::printf("collisions — which is exactly the +1 detection (M4) that lifts the\n");
  std::printf("rate from 75%% to 81%% in Section IV.\n");
}

void BM_TargetOnlyCheck(benchmark::State& state) {
  auto backend = make_testbed();
  sim::WorldModel world = sim::deck_world_model(*backend);
  Vec3 goal(0.35, 0.25, 0.04);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::check_point(world, goal, 0.0));
  }
}
BENCHMARK(BM_TargetOnlyCheck);

void BM_TrajectoryCheck(benchmark::State& state) {
  auto backend = make_testbed();
  sim::WorldModel world = sim::deck_world_model(*backend);
  Vec3 start(0.18, 0.25, 0.04);
  Vec3 goal(0.50, 0.25, 0.04);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::check_path(world, start, goal, 0.0));
  }
}
BENCHMARK(BM_TrajectoryCheck);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
