// Ablation A2: Extended Simulator polling resolution.
//
// The simulator detects collisions "by continuously polling the robot arm's
// trajectory" (§III). Coarser polling is cheaper but can step over thin
// obstacles; this ablation sweeps the step size and reports collision recall
// plus the real per-check cost.
#include <benchmark/benchmark.h>

#include <random>

#include "bench_common.hpp"

namespace {

using namespace rabit;
using namespace rabit::bench;
using geom::Vec3;

/// Random paths through the deck that all genuinely collide (verified with a
/// very fine reference step).
std::vector<std::pair<Vec3, Vec3>> colliding_paths(const sim::WorldModel& world, unsigned seed,
                                                   int count) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> x(-0.6, 0.6);
  std::uniform_real_distribution<double> y(-0.5, 0.5);
  std::uniform_real_distribution<double> z(0.03, 0.25);
  sim::PathCheckOptions reference;
  reference.step = 0.0005;

  std::vector<std::pair<Vec3, Vec3>> paths;
  while (paths.size() < static_cast<std::size_t>(count)) {
    Vec3 a(x(rng), y(rng), z(rng));
    Vec3 b(x(rng), y(rng), z(rng));
    if (sim::check_point(world, a, 0.0)) continue;  // start must be free
    if (sim::check_path(world, a, b, 0.0, reference)) paths.emplace_back(a, b);
  }
  return paths;
}

void print_ablation() {
  print_header("Ablation A2 — Extended Simulator polling resolution",
               "RABIT (DSN'24), Section III (trajectory polling)");
  auto backend = make_testbed();
  sim::WorldModel world = sim::deck_world_model(*backend);
  auto paths = colliding_paths(world, 23, 150);

  std::printf("%-12s %10s %12s\n", "step (m)", "recall", "of 150 hits");
  print_rule();
  for (double step : {0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2}) {
    sim::PathCheckOptions opts;
    opts.step = step;
    int found = 0;
    for (const auto& [a, b] : paths) {
      if (sim::check_path(world, a, b, 0.0, opts)) ++found;
    }
    std::printf("%-12.3f %9.1f%% %12d\n", step, 100.0 * found / paths.size(), found);
  }
  print_rule();
  std::printf("shape: recall saturates near the default 0.01 m step; very coarse\n");
  std::printf("polling steps over station walls and misses real collisions —\n");
  std::printf("the Extended Simulator's accuracy is bounded by its poll rate.\n");
}

void BM_PathCheckByStep(benchmark::State& state) {
  auto backend = make_testbed();
  sim::WorldModel world = sim::deck_world_model(*backend);
  double step = static_cast<double>(state.range(0)) / 1000.0;
  sim::PathCheckOptions opts;
  opts.step = step;
  Vec3 a(-0.6, -0.4, 0.25);
  Vec3 b(0.6, 0.45, 0.05);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::check_path(world, a, b, 0.0, opts));
  }
  state.SetLabel("step " + std::to_string(step) + " m");
}
BENCHMARK(BM_PathCheckByStep)->Arg(2)->Arg(10)->Arg(50)->Arg(200);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
