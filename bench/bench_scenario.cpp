// Scenario-factory throughput and coverage growth: how many full campaigns
// (generate -> materialize -> lint -> analyze -> supervised run -> oracles)
// the fuzz engine pushes per second, and how fast coverage accumulates as
// the iteration budget grows. The coverage table is the EXPERIMENTS.md
// "coverage growth" row source; the >= 80% acceptance gate the tool and
// tier-1 tests enforce is re-checked here on the largest budget.
//
// Modes:
//   (default)   coverage-growth table + google-benchmark timing section,
//               writes BENCH_scenario.json
//   --smoke     smallest budget only (for sanitizer CI jobs), still writes
//               BENCH_scenario.json; exits 1 if a soundness repro appears
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "json/json.hpp"
#include "scenario/fuzz.hpp"

namespace rabit {
namespace {

/// One fuzz campaign at a fixed budget; returns the report and prints a row.
scenario::FuzzReport coverage_row(std::size_t iterations, json::Array& rows) {
  scenario::FuzzOptions options;
  options.seed = 1;
  options.iterations = iterations;
  scenario::FuzzReport report = scenario::fuzz(options);
  double rate = report.wall_s > 0 ? static_cast<double>(report.iterations) / report.wall_s : 0.0;
  std::printf("  %6zu | %8.0f | %4zu / %zu | %5.1f%%\n", report.iterations, rate,
              report.coverage.size(), scenario::reachable_coverage().size(),
              100.0 * report.coverage_fraction());
  json::Object row;
  row["iterations"] = static_cast<std::int64_t>(report.iterations);
  row["campaigns_per_s"] = rate;
  row["coverage_keys"] = static_cast<std::int64_t>(report.coverage.size());
  row["coverage_fraction"] = report.coverage_fraction();
  row["repros"] = static_cast<std::int64_t>(report.repros.size());
  rows.emplace_back(std::move(row));
  return report;
}

void BM_GenerateMaterialize(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    scenario::ScenarioSpec spec = scenario::generate(scenario::derive_seed(9, seed++));
    benchmark::DoNotOptimize(scenario::materialize(spec));
  }
}
BENCHMARK(BM_GenerateMaterialize);

void BM_RunScenario(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    scenario::ScenarioSpec spec = scenario::generate(scenario::derive_seed(9, seed++));
    benchmark::DoNotOptimize(scenario::run_scenario(spec));
  }
}
BENCHMARK(BM_RunScenario);

}  // namespace
}  // namespace rabit

int main(int argc, char** argv) {
  using namespace rabit;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }

  json::Object results;
  results["bench"] = "scenario";
  results["mode"] = smoke ? std::string("smoke") : std::string("full");

  std::printf("scenario factory: campaigns/s and cumulative coverage growth\n");
  std::printf("   iters | camp/sec | coverage   | of reachable\n");
  json::Array rows;
  std::size_t repros = 0;
  bool gate_ok = true;
  if (smoke) {
    scenario::FuzzReport report = coverage_row(50, rows);
    repros += report.repros.size();
  } else {
    for (std::size_t budget : {50, 100, 200, 400, 800, 1600}) {
      scenario::FuzzReport report = coverage_row(budget, rows);
      repros += report.repros.size();
      if (budget == 1600) gate_ok = report.coverage_fraction() >= 0.8;
    }
  }
  results["rows"] = std::move(rows);
  results["repros"] = static_cast<std::int64_t>(repros);

  {
    std::ofstream out("BENCH_scenario.json");
    out << json::serialize_pretty(json::Value(std::move(results))) << "\n";
    std::printf("\nwrote BENCH_scenario.json\n");
  }
  if (repros > 0) {
    std::printf("FAIL: %zu soundness repro(s) — shrink and pin them in corpus/\n", repros);
    return 1;
  }
  if (!gate_ok) {
    std::printf("FAIL: coverage gate (>= 80%% of reachable at 1600 iterations)\n");
    return 1;
  }
  std::printf("all acceptance checks passed\n");

  if (!smoke) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}
