// Section II-C latency reproduction: "Without the Extended Simulator, RABIT
// incurs approximately 0.03 s overhead (1.5%)... with the Extended
// Simulator, RABIT incurs approximately 2 s overhead (112%). ... for
// deployment, we plan to bypass the GUI entirely."
//
// Modeled per-command overhead is reported against the production stage's
// ~2 s command latency; the google-benchmark section then measures the
// *actual CPU cost* of RABIT's checks, showing the middleware itself is
// orders of magnitude below the modeled environment constants.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>

#include "bench_common.hpp"
#include "obs/obs.hpp"

namespace {

using namespace rabit;
using namespace rabit::bench;
namespace ids = sim::deck_ids;

struct OverheadRow {
  const char* configuration;
  double per_command_overhead_s;
  double relative_percent;
};

OverheadRow measure(const char* label, bool with_engine, bool with_sim, bool gui) {
  auto backend = make_production();
  auto commands = script::record_workflow(*backend, script::solubility_workflow_source());

  EngineBundle bundle;
  if (with_engine) {
    bundle = make_engine(*backend,
                         with_sim ? core::Variant::ModifiedWithSim : core::Variant::Modified,
                         gui);
  }
  trace::Supervisor supervisor(with_engine ? bundle.engine.get() : nullptr, backend.get());
  trace::RunReport report = supervisor.run(commands);

  double n = static_cast<double>(report.steps.size());
  double overhead = report.modeled_overhead_s / n;
  double base = report.modeled_runtime_s / n;
  return OverheadRow{label, overhead, 100.0 * overhead / base};
}

void print_latency() {
  print_header("RABIT latency overhead on the solubility workflow",
               "RABIT (DSN'24), Section II-C (0.03 s / 1.5% and ~2 s / 112%)");

  OverheadRow rows[] = {
      measure("no RABIT (baseline)", false, false, false),
      measure("RABIT, no simulator", true, false, false),
      measure("RABIT + Extended Simulator (GUI in VM)", true, true, true),
      measure("RABIT + Extended Simulator (GUI bypassed)", true, true, false),
  };

  std::printf("%-44s %14s %10s\n", "Configuration", "overhead s/cmd", "relative");
  print_rule();
  for (const OverheadRow& r : rows) {
    std::printf("%-44s %14.3f %9.1f%%\n", r.configuration, r.per_command_overhead_s,
                r.relative_percent);
  }
  // The paper's 112% figure is per *robot* command (the simulator runs once
  // per collision check); report that view too.
  double base = sim::production_profile().command_latency_s;
  double gui = 2.0;
  std::printf("%-44s %14.3f %9.1f%%\n", "  per robot-motion command, GUI simulator",
              core::RabitEngine::kBaseCheckCost_s + gui,
              100.0 * (core::RabitEngine::kBaseCheckCost_s + gui) / base);
  print_rule();
  std::printf("paper: 0.03 s (~1.5%%) without the simulator — imperceptible to\n");
  std::printf("humans; ~2 s (~112%%) with the GUI simulator; the planned GUI bypass\n");
  std::printf("removes nearly all of it. Simulator latency is charged only on\n");
  std::printf("robot motion commands (Fig. 2 line 8), so the whole-workflow\n");
  std::printf("average sits below the ~2 s per-check cost.\n");
}

// --- observability overhead gate --------------------------------------------
//
// The obs hooks in RabitEngine::check_command must be free when disabled:
// every hook is a single branch on a null SpanRecord*. This section measures
// the indexed check three ways — hooks never attached (the PR 3 indexed
// baseline path), hooks attached then detached (a supervisor that turned obs
// off), and a live span recording every phase — and gates the detached path
// at <2% overhead versus the never-attached baseline.
//
// Both gated configurations execute byte-identical machine code (the branch
// tests the same null pointer), so the comparison measures the claim
// directly: if "disabled" ever drifts past the gate, a hook stopped being a
// branch. Rounds are interleaved and each round keeps its minimum, so a
// background-load spike hits both configurations alike instead of biasing
// whichever ran second.

double min_check_us(core::RabitEngine& engine, const dev::Command& cmd, int iters) {
  double best = 1e300;
  for (int chunk = 0; chunk < 4; ++chunk) {
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      benchmark::DoNotOptimize(engine.check_command(cmd));
    }
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::micro>(t1 - t0).count() / iters);
  }
  return best;
}

int print_obs_overhead_gate() {
  print_header("Observability hook overhead (indexed check, V2)",
               "disabled hooks must cost <2% vs the PR 3 indexed baseline");

  auto backend = make_production();
  auto make = [&] {
    core::EngineConfig config = core::config_from_backend(*backend, core::Variant::Modified);
    auto engine = std::make_unique<core::RabitEngine>(std::move(config), core::HotPathConfig{});
    engine->initialize(backend->registry().fetch_observed_state());
    return engine;
  };
  auto baseline = make();   // span never attached: the PR 3 indexed path
  auto detached = make();   // span attached once, then detached
  auto attached = make();   // live span, phases recorded every check
  obs::SpanRecord throwaway;
  detached->set_span(&throwaway);
  detached->set_span(nullptr);
  obs::SpanRecord span;
  attached->set_span(&span);

  dev::Command cmd = move_cmd(ids::kUr3e, geom::Vec3(0.25, 0.1, 0.30));
  constexpr int kIters = 20000;
  constexpr int kRounds = 5;
  double best_baseline = 1e300, best_detached = 1e300, best_attached = 1e300;
  for (int r = 0; r < kRounds; ++r) {
    best_baseline = std::min(best_baseline, min_check_us(*baseline, cmd, kIters));
    best_detached = std::min(best_detached, min_check_us(*detached, cmd, kIters));
    span.phases.clear();
    best_attached = std::min(best_attached, min_check_us(*attached, cmd, kIters));
  }

  double disabled_pct = 100.0 * (best_detached - best_baseline) / best_baseline;
  double enabled_pct = 100.0 * (best_attached - best_baseline) / best_baseline;
  std::printf("%-44s %14s %10s\n", "Configuration", "us/check", "overhead");
  print_rule();
  std::printf("%-44s %14.4f %10s\n", "indexed baseline (hooks never attached)", best_baseline,
              "--");
  std::printf("%-44s %14.4f %9.2f%%\n", "obs hooks disabled (span detached)", best_detached,
              disabled_pct);
  std::printf("%-44s %14.4f %9.2f%%\n", "obs span attached (phases recorded)", best_attached,
              enabled_pct);
  print_rule();
  bool pass = disabled_pct < 2.0;
  std::printf("%s: obs-disabled overhead %.2f%% (gate: <2%%)\n", pass ? "PASS" : "FAIL",
              disabled_pct);
  return pass ? 0 : 1;
}

// --- runtime-assurance overhead gate ----------------------------------------
//
// PR 7's decision module adds a per-motion fast path to every supervised V3
// step: one inflated boolean trajectory query per leg, served by the same
// epoch-versioned verdict cache as the base check. The full signed-margin
// profile runs only when that query trips, so clean workflows — the steady
// state — must see near-zero cost. This gate runs the testbed workflow
// end-to-end under supervision with assurance off and on (fresh lab each
// run, GUI bypassed, dense-world V3 checks) and gates the wall-clock delta
// at <5%. Rounds are interleaved and keep per-configuration minima so load
// spikes hit both sides alike.

double supervised_run_us_per_cmd(bool assurance_on) {
  // One timed sample is several complete fresh-lab runs: a single workflow
  // takes only ~1 ms, far too close to scheduler noise to gate on alone.
  constexpr int kRunsPerSample = 16;
  double total_us = 0.0;
  double total_steps = 0.0;
  for (int run = 0; run < kRunsPerSample; ++run) {
    auto backend = make_testbed();
    auto commands = script::record_workflow(*backend, script::testbed_workflow_source());
    EngineBundle bundle =
        make_engine(*backend, core::Variant::ModifiedWithSim, /*gui_enabled=*/false);
    trace::Supervisor::Options options;
    if (assurance_on) options.assurance = assurance::AssuranceConfig{};
    trace::Supervisor supervisor(bundle.engine.get(), backend.get(), options);
    auto t0 = std::chrono::steady_clock::now();
    trace::RunReport report = supervisor.run(commands);
    auto t1 = std::chrono::steady_clock::now();
    if (report.alerts != 0) std::printf("warning: assurance gate workflow alerted\n");
    total_us += std::chrono::duration<double, std::micro>(t1 - t0).count();
    total_steps += static_cast<double>(report.steps.size());
  }
  return total_us / total_steps;
}

int print_assurance_overhead_gate() {
  print_header("Runtime-assurance overhead (supervised V3 workflow)",
               "RTA-on must cost <5% vs the same supervised run with RTA off");

  // A measurement is min-of-9 interleaved rounds; a load burst long enough
  // to bias the minimum of one side still happens on shared CI boxes, so a
  // gate breach re-measures (up to twice) and keeps the best attempt. A
  // real fast-path regression is systematic and survives every retry.
  constexpr int kRounds = 9;
  constexpr int kAttempts = 3;
  double best_off = 0.0, best_on = 0.0, overhead_pct = 0.0;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    double off = 1e300, on = 1e300;
    for (int r = 0; r < kRounds; ++r) {
      off = std::min(off, supervised_run_us_per_cmd(false));
      on = std::min(on, supervised_run_us_per_cmd(true));
    }
    double pct = 100.0 * (on - off) / off;
    if (attempt == 0 || pct < overhead_pct) {
      best_off = off;
      best_on = on;
      overhead_pct = pct;
    }
    if (overhead_pct < 5.0) break;
  }
  std::printf("%-44s %14s %10s\n", "Configuration", "us/command", "overhead");
  print_rule();
  std::printf("%-44s %14.2f %10s\n", "supervised, assurance off", best_off, "--");
  std::printf("%-44s %14.2f %9.2f%%\n", "supervised, assurance on", best_on, overhead_pct);
  print_rule();
  bool pass = overhead_pct < 5.0;
  std::printf("%s: RTA-on overhead %.2f%% (gate: <5%%)\n", pass ? "PASS" : "FAIL",
              overhead_pct);
  return pass ? 0 : 1;
}

// --- real CPU cost of the checks (not modeled) ------------------------------

void BM_RealCheckCost_NoSim(benchmark::State& state) {
  auto backend = make_production();
  EngineBundle bundle = make_engine(*backend, core::Variant::Modified);
  bundle.engine->initialize(backend->registry().fetch_observed_state());
  dev::Command cmd = move_cmd(ids::kUr3e, geom::Vec3(0.25, 0.1, 0.30));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bundle.engine->check_command(cmd));
  }
}
BENCHMARK(BM_RealCheckCost_NoSim);

// Indexed hot path vs the seed engine's linear device/action scan, on the
// same precondition check. The index is the only toggle that differs, so
// the delta is pure lookup cost.
void BM_RealCheckCost_Indexed(benchmark::State& state) {
  auto backend = make_production();
  core::EngineConfig config = core::config_from_backend(*backend, core::Variant::Modified);
  core::HotPathConfig hot;  // defaults: everything on
  core::RabitEngine engine(std::move(config), hot);
  engine.initialize(backend->registry().fetch_observed_state());
  dev::Command cmd = move_cmd(ids::kUr3e, geom::Vec3(0.25, 0.1, 0.30));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.check_command(cmd));
  }
}
BENCHMARK(BM_RealCheckCost_Indexed);

void BM_RealCheckCost_LinearScan(benchmark::State& state) {
  auto backend = make_production();
  core::EngineConfig config = core::config_from_backend(*backend, core::Variant::Modified);
  core::HotPathConfig hot;
  hot.index_lookups = false;
  hot.memoize_rule_world = false;
  hot.broad_phase = false;
  hot.verdict_cache = false;
  core::RabitEngine engine(std::move(config), hot);
  engine.initialize(backend->registry().fetch_observed_state());
  dev::Command cmd = move_cmd(ids::kUr3e, geom::Vec3(0.25, 0.1, 0.30));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.check_command(cmd));
  }
}
BENCHMARK(BM_RealCheckCost_LinearScan);

void BM_RealCheckCost_WithSimHeadless(benchmark::State& state) {
  auto backend = make_production();
  EngineBundle bundle = make_engine(*backend, core::Variant::ModifiedWithSim,
                                    /*gui_enabled=*/false);
  bundle.engine->initialize(backend->registry().fetch_observed_state());
  dev::Command cmd = move_cmd(ids::kUr3e, geom::Vec3(0.25, 0.1, 0.30));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bundle.engine->check_command(cmd));
  }
}
BENCHMARK(BM_RealCheckCost_WithSimHeadless);

void BM_RealPostconditionCheck(benchmark::State& state) {
  auto backend = make_production();
  EngineBundle bundle = make_engine(*backend, core::Variant::Modified);
  bundle.engine->initialize(backend->registry().fetch_observed_state());
  dev::Command cmd = make_cmd(ids::kDosingDevice, "stop_action");
  auto observed = backend->registry().fetch_observed_state();
  for (auto _ : state) {
    bundle.engine->apply_expected(cmd);
    benchmark::DoNotOptimize(bundle.engine->verify_postconditions(cmd, observed));
  }
}
BENCHMARK(BM_RealPostconditionCheck);

void BM_FetchState(benchmark::State& state) {
  auto backend = make_production();
  for (auto _ : state) {
    benchmark::DoNotOptimize(backend->registry().fetch_observed_state());
  }
}
BENCHMARK(BM_FetchState);

}  // namespace

int main(int argc, char** argv) {
  // --obs-gate: run only the observability overhead gate (fast; wired into
  // ctest so a hook regression fails the suite, not just the nightly bench).
  // --assurance-gate: run only the runtime-assurance overhead gate (same
  // ctest wiring: a fast-path regression fails the suite).
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--obs-gate") == 0) return print_obs_overhead_gate();
    if (std::strcmp(argv[i], "--assurance-gate") == 0) return print_assurance_overhead_gate();
  }
  print_latency();
  int gate = print_obs_overhead_gate();
  gate += print_assurance_overhead_gate();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return gate;
}
