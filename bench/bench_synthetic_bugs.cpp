// The paper's stated future work: "exhaustive testing (which requires
// generating large bug datasets — a challenging task in itself)". This bench
// generates hundreds of seeded random mutations of the safe workflow,
// classifies each by its ground-truth consequence, and measures RABIT's
// detection per mutation kind and per severity — extending Table V beyond
// the 16 hand-made bugs.
#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.hpp"

namespace {

using namespace rabit;
using namespace rabit::bench;
using dev::Severity;

const char* kind_name(bugs::MutationKind k) {
  switch (k) {
    case bugs::MutationKind::DeleteCommand: return "delete command";
    case bugs::MutationKind::SwapAdjacent: return "swap adjacent";
    case bugs::MutationKind::ScaleArgument: return "scale argument";
    case bugs::MutationKind::ShiftCoordinate: return "shift coordinate";
  }
  return "?";
}

struct KindStats {
  int total = 0;
  int benign = 0;    ///< no damage, no alert
  int detected = 0;  ///< unsafe, alert at or before damage
  int missed = 0;    ///< unsafe, damage without timely alert
  int vetoed = 0;    ///< blocked although replay shows no damage (false block)
};

void print_study(int mutants) {
  print_header("Synthetic bug datasets — randomized mutation study",
               "RABIT (DSN'24), Section IV future work (large bug datasets)");

  auto staging = make_testbed();
  auto base = script::record_workflow(*staging, script::testbed_workflow_source());

  std::map<bugs::MutationKind, KindStats> by_kind;
  std::map<Severity, std::pair<int, int>> by_severity;  // total, detected
  std::mt19937 rng(2024);

  for (int i = 0; i < mutants; ++i) {
    bugs::SyntheticBug bug = bugs::random_mutation(base, rng);
    // Ground truth: run the mutant with RABIT disengaged.
    sim::LabBackend truth_backend(sim::testbed_profile());
    sim::build_hein_testbed_deck(truth_backend);
    trace::Supervisor bare(nullptr, &truth_backend);
    trace::RunReport truth = bare.run(bug.commands);
    bool unsafe = !truth.damage.empty();

    // RABIT's verdict.
    bugs::BugOutcome outcome = bugs::evaluate_stream(bug.commands, core::Variant::Modified);

    KindStats& stats = by_kind[bug.kind];
    ++stats.total;
    if (!unsafe) {
      if (outcome.alerted) {
        ++stats.vetoed;  // conservative block of a (physically) harmless mutant
      } else {
        ++stats.benign;
      }
      continue;
    }
    auto severity = truth.max_damage_severity();
    auto& [sev_total, sev_detected] = by_severity[*severity];
    ++sev_total;
    if (outcome.detected) {
      ++stats.detected;
      ++sev_detected;
    } else {
      ++stats.missed;
    }
  }

  std::printf("%d random mutants of the %zu-command safe workflow, modified RABIT\n\n",
              mutants, base.size());
  std::printf("%-20s %6s %7s %9s %7s %13s\n", "Mutation kind", "total", "benign", "detected",
              "missed", "safe-but-blocked");
  print_rule();
  int unsafe_total = 0;
  int unsafe_detected = 0;
  for (const auto& [kind, stats] : by_kind) {
    std::printf("%-20s %6d %7d %9d %7d %13d\n", kind_name(kind), stats.total, stats.benign,
                stats.detected, stats.missed, stats.vetoed);
    unsafe_total += stats.detected + stats.missed;
    unsafe_detected += stats.detected;
  }
  print_rule();
  std::printf("unsafe mutants detected: %d/%d (%.0f%%)\n\n", unsafe_detected, unsafe_total,
              unsafe_total > 0 ? 100.0 * unsafe_detected / unsafe_total : 0.0);
  std::printf("finding: random mutants detect far below the catalogue's 75%% — they\n");
  std::printf("are dominated by mid-air releases and misplaced grabs that no Table\n");
  std::printf("III rule covers (the gripper has no sensor). This supports the\n");
  std::printf("paper's caution that its detection rate 'should not be mistaken for\n");
  std::printf("its likelihood to detect unsafe behavior in the wild'.\n\n");

  std::printf("by ground-truth severity (extending Table V):\n");
  std::printf("%-14s %7s %9s\n", "Severity", "unsafe", "detected");
  for (const auto& [severity, counts] : by_severity) {
    std::printf("%-14s %7d %9d\n", std::string(dev::to_string(severity)).c_str(),
                counts.first, counts.second);
  }
  std::printf("\nnote: 'safe-but-blocked' mutants violate a rule whose consequence\n");
  std::printf("happens to be harmless in this replay (e.g. a dose into a vial RABIT\n");
  std::printf("believes absent); the paper's zero-false-positive claim is about\n");
  std::printf("*unmodified* workflows, which remain alert-free.\n");
}

void BM_MutantEvaluation(benchmark::State& state) {
  auto staging = make_testbed();
  auto base = script::record_workflow(*staging, script::testbed_workflow_source());
  std::mt19937 rng(7);
  for (auto _ : state) {
    bugs::SyntheticBug bug = bugs::random_mutation(base, rng);
    benchmark::DoNotOptimize(bugs::evaluate_stream(bug.commands, core::Variant::Modified));
  }
}
BENCHMARK(BM_MutantEvaluation)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_study(240);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
