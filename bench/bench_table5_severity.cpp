// Table V reproduction: the 16 introduced bugs grouped by severity, with the
// number RABIT (modified, the paper's reported configuration) detects.
// Paper: Low 3/1, Medium-Low 1/1, Medium-High 6/4, High 6/6.
#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.hpp"

namespace {

using namespace rabit;
using namespace rabit::bench;
using dev::Severity;

const char* severity_label(Severity s) {
  switch (s) {
    case Severity::Low: return "Low: wasting chemical materials";
    case Severity::MediumLow: return "Medium-Low: breakage of glassware";
    case Severity::MediumHigh: return "Medium-High: harm to platform/walls/grid/cheap arms";
    case Severity::High: return "High: breaking expensive equipment";
  }
  return "?";
}

void print_table5() {
  print_header("Table V — bug severity vs. detection under modified RABIT",
               "RABIT (DSN'24), Table V");

  std::map<Severity, int> totals;
  std::map<Severity, int> detected;
  std::map<Severity, std::string> ids_by_class;

  for (const bugs::BugSpec& bug : bugs::bug_catalogue()) {
    ++totals[bug.severity];
    bugs::BugOutcome outcome = bugs::evaluate_bug(bug, core::Variant::Modified);
    if (outcome.detected) ++detected[bug.severity];
    std::string& list = ids_by_class[bug.severity];
    if (!list.empty()) list += " ";
    list += bug.id + (outcome.detected ? "+" : "-");
  }

  std::printf("%-52s %6s %9s  %s\n", "Severity of bugs", "Total", "Detected", "Bugs (+/-)");
  print_rule();
  const Severity order[] = {Severity::Low, Severity::MediumLow, Severity::MediumHigh,
                            Severity::High};
  const int paper_totals[] = {3, 1, 6, 6};
  const int paper_detected[] = {1, 1, 4, 6};
  int i = 0;
  bool exact = true;
  for (Severity s : order) {
    std::printf("%-52s %6d %9d  %s\n", severity_label(s), totals[s], detected[s],
                ids_by_class[s].c_str());
    exact &= totals[s] == paper_totals[i] && detected[s] == paper_detected[i];
    ++i;
  }
  print_rule();
  std::printf("paper Table V:  3/1  1/1  6/4  6/6   => %s\n",
              exact ? "EXACT MATCH" : "MISMATCH");
}

void BM_EvaluateOneBug(benchmark::State& state) {
  const bugs::BugSpec& bug = bugs::bug_catalogue()[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(bugs::evaluate_bug(bug, core::Variant::Modified));
  }
  state.SetLabel(bug.id);
}
BENCHMARK(BM_EvaluateOneBug)->Arg(0)->Arg(6)->Arg(12);

}  // namespace

int main(int argc, char** argv) {
  print_table5();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
