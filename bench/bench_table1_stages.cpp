// Table I reproduction: capabilities of RABIT's three stages.
//
// The paper qualifies each stage (simulator / testbed / production) by speed
// of exploration, device precision, accuracy of results, and risk of damage.
// This bench quantifies all four on the same workflow: modeled wall-clock,
// mean positioning error, mean solubility-measurement error, and the modeled
// cost of the damage caused by one injected Bug A run without RABIT.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace rabit;
using namespace rabit::bench;
namespace ids = sim::deck_ids;

struct StageRow {
  std::string name;
  double workflow_seconds = 0;
  double mean_position_error_m = 0;
  double mean_measure_error = 0;
  double crash_cost = 0;
};

sim::StageProfile profile_by_name(const std::string& name) {
  if (name == "simulator") return sim::simulator_profile();
  if (name == "testbed") return sim::testbed_profile();
  return sim::production_profile();
}

StageRow measure_stage(const std::string& name) {
  StageRow row;
  row.name = name;

  // Speed of exploration: modeled wall-clock of the standard workflow.
  {
    auto backend = make_testbed(profile_by_name(name));
    auto commands = script::record_workflow(*backend, script::testbed_workflow_source());
    trace::Supervisor supervisor(nullptr, backend.get());
    trace::RunReport report = supervisor.run(commands);
    row.workflow_seconds = report.modeled_runtime_s;

    // Device precision: positioning-error samples gathered during the run.
    double sum = 0;
    for (double e : backend->position_error_samples()) sum += e;
    row.mean_position_error_m =
        backend->position_error_samples().empty()
            ? 0.0
            : sum / static_cast<double>(backend->position_error_samples().size());
  }

  // Accuracy of results: repeated solubility measurements of a known vial.
  {
    auto backend = make_testbed(profile_by_name(name));
    dev::Vial& vial = backend->vial(ids::kVial1);
    vial.add_solid(5.0);
    vial.add_liquid(0.125);  // exactly half the solid dissolves
    double truth = sim::LabBackend::true_solubility(vial);
    double err = 0;
    constexpr int kSamples = 200;
    for (int i = 0; i < kSamples; ++i) {
      err += std::abs(backend->measure_solubility(vial) - truth);
    }
    row.mean_measure_error = err / kSamples;
  }

  // Risk of damage: Bug A (closed-door entry), no RABIT in the loop.
  {
    const bugs::BugSpec& bug_a = bugs::bug_catalogue()[0];  // H1
    auto staging = make_testbed();
    auto buggy = bug_a.build(*staging);
    auto backend = make_testbed(profile_by_name(name));
    trace::Supervisor supervisor(nullptr, backend.get());
    supervisor.run(buggy);
    row.crash_cost = backend->total_damage_cost();
  }
  return row;
}

const char* band(double value, double low_cut, double high_cut, bool lower_is_better) {
  const char* kBands[3] = {"Low", "Medium", "High"};
  int idx = value <= low_cut ? 0 : value <= high_cut ? 1 : 2;
  if (lower_is_better) idx = 2 - idx;
  return kBands[idx];
}

void print_table1() {
  print_header("Table I — capabilities of RABIT's three stages",
               "RABIT (DSN'24), Table I");
  StageRow rows[3] = {measure_stage("simulator"), measure_stage("testbed"),
                      measure_stage("production")};

  std::printf("%-32s %12s %12s %12s\n", "Capability", "Simulator", "Testbed", "Production");
  print_rule();
  std::printf("%-32s %12.1f %12.1f %12.1f\n", "Workflow wall-clock (model s)",
              rows[0].workflow_seconds, rows[1].workflow_seconds, rows[2].workflow_seconds);
  std::printf("%-32s %12s %12s %12s\n", "  => speed of exploration",
              band(rows[0].workflow_seconds, 10, 60, true),
              band(rows[1].workflow_seconds, 10, 60, true),
              band(rows[2].workflow_seconds, 10, 60, true));
  std::printf("%-32s %12.4f %12.4f %12.4f\n", "Positioning error (m)",
              rows[0].mean_position_error_m, rows[1].mean_position_error_m,
              rows[2].mean_position_error_m);
  std::printf("%-32s %12s %12s %12s\n", "  => device precision",
              band(rows[0].mean_position_error_m, 0.0011, 0.004, true),
              band(rows[1].mean_position_error_m, 0.0011, 0.004, true),
              band(rows[2].mean_position_error_m, 0.0011, 0.004, true));
  std::printf("%-32s %12.4f %12.4f %12.4f\n", "Measurement error (fraction)",
              rows[0].mean_measure_error, rows[1].mean_measure_error,
              rows[2].mean_measure_error);
  std::printf("%-32s %12s %12s %12s\n", "  => accuracy of results",
              band(rows[0].mean_measure_error, 0.02, 0.06, true),
              band(rows[1].mean_measure_error, 0.02, 0.06, true),
              band(rows[2].mean_measure_error, 0.02, 0.06, true));
  std::printf("%-32s %12.0f %12.0f %12.0f\n", "Bug A crash cost (model $)",
              rows[0].crash_cost, rows[1].crash_cost, rows[2].crash_cost);
  std::printf("%-32s %12s %12s %12s\n", "  => risk of damage",
              band(rows[0].crash_cost, 100, 2000, false),
              band(rows[1].crash_cost, 100, 2000, false),
              band(rows[2].crash_cost, 100, 2000, false));
  print_rule();
  std::printf("Paper Table I: speed High/Medium/Low; precision Low/Medium/High;\n");
  std::printf("accuracy Low/Medium/High; risk Low/Medium/High (simulator->production).\n");
  std::printf("Note: the simulator positions a *virtual* arm exactly, so its\n");
  std::printf("positioning error is 0; its Low 'precision' in the paper refers to\n");
  std::printf("how faithfully it reflects the real device, captured here by the\n");
  std::printf("measurement-error row.\n");
}

// CPU cost of executing one command per stage profile (all stages share the
// physics code; modeled latency differs, real cost does not).
void BM_BackendExecute(benchmark::State& state) {
  auto backend = make_testbed();
  dev::Command status = make_cmd(ids::kDosingDevice, "stop_action");
  for (auto _ : state) {
    benchmark::DoNotOptimize(backend->execute(status));
  }
}
BENCHMARK(BM_BackendExecute);

void BM_BackendArmMove(benchmark::State& state) {
  auto backend = make_testbed();
  geom::Vec3 a = site_local(*backend, ids::kViperX, "grid.NW") + geom::Vec3(0, 0, 0.22);
  geom::Vec3 b = a + geom::Vec3(0.05, -0.1, 0.05);
  bool flip = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(backend->execute(move_cmd(ids::kViperX, flip ? a : b)));
    flip = !flip;
  }
}
BENCHMARK(BM_BackendArmMove);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
