// Chaos campaign: seeded transient-fault schedules replayed against safe
// workflows with the supervised-recovery ladder enabled. Reports completion
// rate, false-halt rate (must be ZERO for recoverable transients), mean
// retries, and modeled recovery latency; shows the false halts the paper's
// alert-and-stop policy would raise on the same schedules; proves permanent
// faults still escalate; and re-runs the Section IV detection progression
// (8/16 -> 12/16 -> 13/16) to show recovery does not mask a single bug.
//
// `--smoke` runs a reduced campaign and skips the microbenchmarks (CI).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "bench_common.hpp"
#include "recovery/recovery.hpp"

namespace {

using namespace rabit;
using namespace rabit::bench;

/// One workflow under chaos: how to build the deck and the command stream.
struct WorkflowCase {
  const char* name;
  std::unique_ptr<sim::LabBackend> (*make_backend)();
  std::string (*source)();
};

std::unique_ptr<sim::LabBackend> testbed_backend() { return make_testbed(); }
std::unique_ptr<sim::LabBackend> production_backend() { return make_production(); }

const WorkflowCase kWorkflows[] = {
    {"testbed two-arm", testbed_backend, script::testbed_workflow_source},
    {"solubility", production_backend, script::solubility_workflow_source},
};

std::vector<std::pair<std::string, std::string>> distinct_pairs(
    const std::vector<dev::Command>& workflow) {
  std::vector<std::pair<std::string, std::string>> pairs;
  for (const dev::Command& c : workflow) {
    std::pair<std::string, std::string> p{c.device, c.action};
    if (std::find(pairs.begin(), pairs.end(), p) == pairs.end()) pairs.push_back(p);
  }
  return pairs;
}

dev::FaultSchedule chaos_for(const std::vector<dev::Command>& workflow, unsigned seed) {
  dev::FaultSchedule::ChaosOptions options;
  options.horizon_s = 30.0;  // keep fault windows inside the modeled run
  options.transient_count = 8;
  return dev::FaultSchedule::chaos(seed, distinct_pairs(workflow), options);
}

struct ChaosRun {
  bool halted = false;
  bool alerted = false;
  std::size_t retries = 0;
  std::size_t repolls = 0;
  std::size_t absorbed = 0;
  double recovery_time_s = 0.0;
  std::string halt_reason;
};

ChaosRun run_chaos(const WorkflowCase& wc, unsigned seed, bool with_recovery) {
  auto backend = wc.make_backend();
  std::vector<dev::Command> workflow = script::record_workflow(*backend, wc.source());
  backend->set_fault_schedule(chaos_for(workflow, seed));

  auto engine = std::make_unique<core::RabitEngine>(
      core::config_from_backend(*backend, core::Variant::Modified));
  trace::Supervisor::Options options;
  if (with_recovery) options.recovery = recovery::RecoveryPolicy{};
  trace::Supervisor sup(engine.get(), backend.get(), options);
  trace::RunReport report = sup.run(workflow);

  ChaosRun out;
  out.halted = report.halted;
  out.alerted = report.alerts > 0;
  if (report.halted && report.first_alert_step) {
    const trace::SupervisedStep& s = report.steps[*report.first_alert_step];
    if (s.alert) out.halt_reason = s.alert->describe();
  }
  if (report.recovery) {
    out.retries = report.recovery->retries;
    out.repolls = report.recovery->repolls;
    out.absorbed = report.recovery->transients_absorbed;
    out.recovery_time_s = report.recovery->recovery_time_s;
  }
  return out;
}

/// Campaign leg: N seeds per workflow, recovery on vs the paper's
/// alert-and-stop policy. Every injected transient is recoverable, so every
/// halt on the recovery side is a false halt. Returns the false-halt count.
int run_campaign(int seeds_per_workflow) {
  print_header("Chaos campaign: seeded transients under supervised recovery",
               "robustness extension -- RABIT (DSN'24) \"preemptively stop\" policy "
               "vs retry/backoff ladder");

  int recovery_false_halts = 0;
  std::printf("%-18s %6s %10s %10s %8s %8s %12s %14s\n", "Workflow", "Seeds", "Complete",
              "FalseHalt", "Strikes", "Retries", "Repolls", "RecLatency(s)");
  print_rule();
  for (const WorkflowCase& wc : kWorkflows) {
    int complete = 0, halts = 0, strikes = 0;
    std::size_t retries = 0, repolls = 0;
    double rec_time = 0.0;
    for (int seed = 1; seed <= seeds_per_workflow; ++seed) {
      ChaosRun run = run_chaos(wc, static_cast<unsigned>(seed), /*with_recovery=*/true);
      if (run.halted) {
        ++halts;
        std::printf("  ! %s seed %d halted: %s\n", wc.name, seed, run.halt_reason.c_str());
      } else {
        ++complete;
      }
      if (run.absorbed > 0) ++strikes;
      retries += run.retries;
      repolls += run.repolls;
      rec_time += run.recovery_time_s;
    }
    recovery_false_halts += halts;
    std::printf("%-18s %6d %7d/%-2d %7d/%-2d %8d %8.2f %12.2f %14.2f\n", wc.name,
                seeds_per_workflow, complete, seeds_per_workflow, halts, seeds_per_workflow,
                strikes, double(retries) / seeds_per_workflow,
                double(repolls) / seeds_per_workflow, rec_time / seeds_per_workflow);
  }
  print_rule();

  // The same schedules under the paper's policy: the first unabsorbed
  // transient halts the run.
  std::printf("\nwithout recovery (alert-and-stop on the same schedules):\n");
  int baseline_false_halts = 0, baseline_runs = 0;
  for (const WorkflowCase& wc : kWorkflows) {
    int halts = 0;
    for (int seed = 1; seed <= seeds_per_workflow; ++seed) {
      if (run_chaos(wc, static_cast<unsigned>(seed), /*with_recovery=*/false).halted) ++halts;
    }
    baseline_false_halts += halts;
    baseline_runs += seeds_per_workflow;
    std::printf("  %-18s false halts: %d/%d\n", wc.name, halts, seeds_per_workflow);
  }
  std::printf("\nall injected transients are recoverable; the ladder must absorb every\n");
  std::printf("one: false halts with recovery = %d (required: 0), without = %d/%d\n",
              recovery_false_halts, baseline_false_halts, baseline_runs);
  return recovery_false_halts;
}

/// Permanent-fault leg: a genuinely dead device must still alert, quarantine,
/// and drive the deck to its safe state. Returns the number of violations.
int run_permanent_leg() {
  print_header("Permanent faults still escalate through the ladder",
               "RABIT (DSN'24) Fig. 2 lines 13-15 (declare malfunction)");

  struct PermanentCase {
    const char* name;
    dev::FaultPlan plan;
  };
  std::vector<PermanentCase> cases;
  {
    dev::FaultPlan dead;
    dead.dead_actions = {"set_door"};
    cases.push_back({"dead door actuator", dead});
  }
  {
    dev::FaultPlan liar;
    liar.reported_overrides["doorStatus"] = std::string("closed");
    cases.push_back({"status channel lies", liar});
  }

  int violations = 0;
  for (const PermanentCase& pc : cases) {
    auto backend = make_testbed();
    std::vector<dev::Command> workflow =
        script::record_workflow(*backend, script::testbed_workflow_source());
    dev::FaultSchedule schedule;
    schedule.add_permanent(sim::deck_ids::kDosingDevice, pc.plan);
    backend->set_fault_schedule(std::move(schedule));

    auto engine = std::make_unique<core::RabitEngine>(
        core::config_from_backend(*backend, core::Variant::Modified));
    trace::Supervisor::Options options;
    options.recovery = recovery::RecoveryPolicy{};
    trace::Supervisor sup(engine.get(), backend.get(), options);
    trace::RunReport report = sup.run(workflow);

    bool alerted = report.alerts > 0;
    bool quarantined = report.recovery && !report.recovery->quarantined.empty();
    bool safe_state = report.recovery && report.recovery->safe_state_executed;
    bool ok = report.halted && alerted && quarantined && safe_state;
    if (!ok) ++violations;
    std::printf("  %-22s halted=%d alerted=%d quarantined=%d safe_state=%d  [%s]\n", pc.name,
                report.halted, alerted, quarantined, safe_state, ok ? "ok" : "VIOLATION");
  }
  return violations;
}

/// Regression leg: the Section IV detection progression with the recovery
/// ladder enabled, bug by bug against the alert-and-stop baseline. Returns
/// the number of bugs whose verdict changed.
int run_progression_leg() {
  print_header("Detection progression is unchanged under recovery",
               "RABIT (DSN'24), Section IV (8/16 -> 12/16 -> 13/16)");

  const core::Variant variants[] = {core::Variant::Initial, core::Variant::Modified,
                                    core::Variant::ModifiedWithSim};
  trace::Supervisor::Options with_recovery;
  with_recovery.recovery = recovery::RecoveryPolicy{};

  int mismatches = 0;
  std::printf("%-16s %10s %14s   %s\n", "Variant", "Baseline", "WithRecovery", "Verdict flips");
  print_rule();
  for (core::Variant variant : variants) {
    int detected_baseline = 0, detected_recovery = 0;
    std::string flips;
    for (const bugs::BugSpec& bug : bugs::bug_catalogue()) {
      std::vector<dev::Command> stream;
      {
        auto staging = make_testbed();
        stream = bug.build(*staging);
      }
      bool base = bugs::evaluate_stream(stream, variant).detected;
      bool rec = bugs::evaluate_stream(stream, variant, with_recovery).detected;
      detected_baseline += base ? 1 : 0;
      detected_recovery += rec ? 1 : 0;
      if (base != rec) {
        ++mismatches;
        if (!flips.empty()) flips += " ";
        flips += bug.id;
      }
    }
    std::printf("%-16s %7d/16 %11d/16   %s\n",
                std::string(core::to_string(variant)).c_str(), detected_baseline,
                detected_recovery, flips.empty() ? "none" : flips.c_str());
  }
  print_rule();
  std::printf("recovery retries transients but never swallows a genuine alert:\n");
  std::printf("verdict flips across 16 bugs x 3 variants: %d (required: 0)\n", mismatches);
  return mismatches;
}

// Timing: one full chaos run with recovery, per workflow.
void BM_ChaosRunWithRecovery(benchmark::State& state) {
  const WorkflowCase& wc = kWorkflows[state.range(0)];
  unsigned seed = 1;
  for (auto _ : state) {
    ChaosRun run = run_chaos(wc, seed++, /*with_recovery=*/true);
    benchmark::DoNotOptimize(run);
  }
  state.SetLabel(wc.name);
}
BENCHMARK(BM_ChaosRunWithRecovery)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }

  int violations = 0;
  violations += run_campaign(smoke ? 5 : 25);
  violations += run_permanent_leg();
  violations += run_progression_leg();
  if (violations > 0) {
    std::printf("\nFAIL: %d acceptance violation(s)\n", violations);
    return 1;
  }
  std::printf("\nall acceptance checks passed\n");

  if (!smoke) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}
