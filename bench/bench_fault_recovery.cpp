// Chaos campaign: seeded transient-fault schedules replayed against safe
// workflows with the supervised-recovery ladder enabled. Reports completion
// rate, false-halt rate (must be ZERO for recoverable transients), mean
// retries, and modeled recovery latency; shows the false halts the paper's
// alert-and-stop policy would raise on the same schedules; proves permanent
// faults still escalate; and re-runs the Section IV detection progression
// (8/16 -> 12/16 -> 13/16) to show recovery does not mask a single bug.
//
// Two runtime-assurance legs ride along (PR 7): a miscalibrated-world hazard
// where the predictive barrier check must prevent the damage the reactive
// ladder cannot (damage-events-prevented: RTA vs reactive vs none), and the
// chaos campaign re-run with RTA enabled, where an accurate world must
// produce ZERO demotions (no false safe-stops). Results land in
// BENCH_fault_recovery.json.
//
// `--smoke` runs a reduced campaign and skips the microbenchmarks (CI).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <vector>

#include "bench_common.hpp"
#include "json/json.hpp"
#include "recovery/recovery.hpp"

namespace {

using namespace rabit;
using namespace rabit::bench;

/// One workflow under chaos: how to build the deck and the command stream.
struct WorkflowCase {
  const char* name;
  std::unique_ptr<sim::LabBackend> (*make_backend)();
  std::string (*source)();
};

std::unique_ptr<sim::LabBackend> testbed_backend() { return make_testbed(); }
std::unique_ptr<sim::LabBackend> production_backend() { return make_production(); }

const WorkflowCase kWorkflows[] = {
    {"testbed two-arm", testbed_backend, script::testbed_workflow_source},
    {"solubility", production_backend, script::solubility_workflow_source},
};

std::vector<std::pair<std::string, std::string>> distinct_pairs(
    const std::vector<dev::Command>& workflow) {
  std::vector<std::pair<std::string, std::string>> pairs;
  for (const dev::Command& c : workflow) {
    std::pair<std::string, std::string> p{c.device, c.action};
    if (std::find(pairs.begin(), pairs.end(), p) == pairs.end()) pairs.push_back(p);
  }
  return pairs;
}

dev::FaultSchedule chaos_for(const std::vector<dev::Command>& workflow, unsigned seed) {
  dev::FaultSchedule::ChaosOptions options;
  options.horizon_s = 30.0;  // keep fault windows inside the modeled run
  options.transient_count = 8;
  return dev::FaultSchedule::chaos(seed, distinct_pairs(workflow), options);
}

struct ChaosRun {
  bool halted = false;
  bool alerted = false;
  std::size_t retries = 0;
  std::size_t repolls = 0;
  std::size_t absorbed = 0;
  double recovery_time_s = 0.0;
  std::string halt_reason;
};

ChaosRun run_chaos(const WorkflowCase& wc, unsigned seed, bool with_recovery) {
  auto backend = wc.make_backend();
  std::vector<dev::Command> workflow = script::record_workflow(*backend, wc.source());
  backend->set_fault_schedule(chaos_for(workflow, seed));

  auto engine = std::make_unique<core::RabitEngine>(
      core::config_from_backend(*backend, core::Variant::Modified));
  trace::Supervisor::Options options;
  if (with_recovery) options.recovery = recovery::RecoveryPolicy{};
  trace::Supervisor sup(engine.get(), backend.get(), options);
  trace::RunReport report = sup.run(workflow);

  ChaosRun out;
  out.halted = report.halted;
  out.alerted = report.alerts > 0;
  if (report.halted && report.first_alert_step) {
    const trace::SupervisedStep& s = report.steps[*report.first_alert_step];
    if (s.alert) out.halt_reason = s.alert->describe();
  }
  if (report.recovery) {
    out.retries = report.recovery->retries;
    out.repolls = report.recovery->repolls;
    out.absorbed = report.recovery->transients_absorbed;
    out.recovery_time_s = report.recovery->recovery_time_s;
  }
  return out;
}

/// Campaign leg: N seeds per workflow, recovery on vs the paper's
/// alert-and-stop policy. Every injected transient is recoverable, so every
/// halt on the recovery side is a false halt. Returns the false-halt count.
int run_campaign(int seeds_per_workflow, json::Object& results) {
  print_header("Chaos campaign: seeded transients under supervised recovery",
               "robustness extension -- RABIT (DSN'24) \"preemptively stop\" policy "
               "vs retry/backoff ladder");

  int recovery_false_halts = 0;
  std::printf("%-18s %6s %10s %10s %8s %8s %12s %14s\n", "Workflow", "Seeds", "Complete",
              "FalseHalt", "Strikes", "Retries", "Repolls", "RecLatency(s)");
  print_rule();
  for (const WorkflowCase& wc : kWorkflows) {
    int complete = 0, halts = 0, strikes = 0;
    std::size_t retries = 0, repolls = 0;
    double rec_time = 0.0;
    for (int seed = 1; seed <= seeds_per_workflow; ++seed) {
      ChaosRun run = run_chaos(wc, static_cast<unsigned>(seed), /*with_recovery=*/true);
      if (run.halted) {
        ++halts;
        std::printf("  ! %s seed %d halted: %s\n", wc.name, seed, run.halt_reason.c_str());
      } else {
        ++complete;
      }
      if (run.absorbed > 0) ++strikes;
      retries += run.retries;
      repolls += run.repolls;
      rec_time += run.recovery_time_s;
    }
    recovery_false_halts += halts;
    std::printf("%-18s %6d %7d/%-2d %7d/%-2d %8d %8.2f %12.2f %14.2f\n", wc.name,
                seeds_per_workflow, complete, seeds_per_workflow, halts, seeds_per_workflow,
                strikes, double(retries) / seeds_per_workflow,
                double(repolls) / seeds_per_workflow, rec_time / seeds_per_workflow);
  }
  print_rule();

  // The same schedules under the paper's policy: the first unabsorbed
  // transient halts the run.
  std::printf("\nwithout recovery (alert-and-stop on the same schedules):\n");
  int baseline_false_halts = 0, baseline_runs = 0;
  for (const WorkflowCase& wc : kWorkflows) {
    int halts = 0;
    for (int seed = 1; seed <= seeds_per_workflow; ++seed) {
      if (run_chaos(wc, static_cast<unsigned>(seed), /*with_recovery=*/false).halted) ++halts;
    }
    baseline_false_halts += halts;
    baseline_runs += seeds_per_workflow;
    std::printf("  %-18s false halts: %d/%d\n", wc.name, halts, seeds_per_workflow);
  }
  std::printf("\nall injected transients are recoverable; the ladder must absorb every\n");
  std::printf("one: false halts with recovery = %d (required: 0), without = %d/%d\n",
              recovery_false_halts, baseline_false_halts, baseline_runs);

  json::Object leg;
  leg["runs"] = baseline_runs;
  leg["false_halts_with_recovery"] = recovery_false_halts;
  leg["false_halts_alert_and_stop"] = baseline_false_halts;
  results["chaos_campaign"] = std::move(leg);
  return recovery_false_halts;
}

/// Permanent-fault leg: a genuinely dead device must still alert, quarantine,
/// and drive the deck to its safe state. Returns the number of violations.
int run_permanent_leg() {
  print_header("Permanent faults still escalate through the ladder",
               "RABIT (DSN'24) Fig. 2 lines 13-15 (declare malfunction)");

  struct PermanentCase {
    const char* name;
    dev::FaultPlan plan;
  };
  std::vector<PermanentCase> cases;
  {
    dev::FaultPlan dead;
    dead.dead_actions = {"set_door"};
    cases.push_back({"dead door actuator", dead});
  }
  {
    dev::FaultPlan liar;
    liar.reported_overrides["doorStatus"] = std::string("closed");
    cases.push_back({"status channel lies", liar});
  }

  int violations = 0;
  for (const PermanentCase& pc : cases) {
    auto backend = make_testbed();
    std::vector<dev::Command> workflow =
        script::record_workflow(*backend, script::testbed_workflow_source());
    dev::FaultSchedule schedule;
    schedule.add_permanent(sim::deck_ids::kDosingDevice, pc.plan);
    backend->set_fault_schedule(std::move(schedule));

    auto engine = std::make_unique<core::RabitEngine>(
        core::config_from_backend(*backend, core::Variant::Modified));
    trace::Supervisor::Options options;
    options.recovery = recovery::RecoveryPolicy{};
    trace::Supervisor sup(engine.get(), backend.get(), options);
    trace::RunReport report = sup.run(workflow);

    bool alerted = report.alerts > 0;
    bool quarantined = report.recovery && !report.recovery->quarantined.empty();
    bool safe_state = report.recovery && report.recovery->safe_state_executed;
    bool ok = report.halted && alerted && quarantined && safe_state;
    if (!ok) ++violations;
    std::printf("  %-22s halted=%d alerted=%d quarantined=%d safe_state=%d  [%s]\n", pc.name,
                report.halted, alerted, quarantined, safe_state, ok ? "ok" : "VIOLATION");
  }
  return violations;
}

/// Regression leg: the Section IV detection progression with the recovery
/// ladder enabled, bug by bug against the alert-and-stop baseline. Returns
/// the number of bugs whose verdict changed.
int run_progression_leg(json::Object& results) {
  print_header("Detection progression is unchanged under recovery",
               "RABIT (DSN'24), Section IV (8/16 -> 12/16 -> 13/16)");

  const core::Variant variants[] = {core::Variant::Initial, core::Variant::Modified,
                                    core::Variant::ModifiedWithSim};
  trace::Supervisor::Options with_recovery;
  with_recovery.recovery = recovery::RecoveryPolicy{};

  int mismatches = 0;
  std::printf("%-16s %10s %14s   %s\n", "Variant", "Baseline", "WithRecovery", "Verdict flips");
  print_rule();
  for (core::Variant variant : variants) {
    int detected_baseline = 0, detected_recovery = 0;
    std::string flips;
    for (const bugs::BugSpec& bug : bugs::bug_catalogue()) {
      std::vector<dev::Command> stream;
      {
        auto staging = make_testbed();
        stream = bug.build(*staging);
      }
      bool base = bugs::evaluate_stream(stream, variant).detected;
      bool rec = bugs::evaluate_stream(stream, variant, with_recovery).detected;
      detected_baseline += base ? 1 : 0;
      detected_recovery += rec ? 1 : 0;
      if (base != rec) {
        ++mismatches;
        if (!flips.empty()) flips += " ";
        flips += bug.id;
      }
    }
    std::printf("%-16s %7d/16 %11d/16   %s\n",
                std::string(core::to_string(variant)).c_str(), detected_baseline,
                detected_recovery, flips.empty() ? "none" : flips.c_str());
  }
  print_rule();
  std::printf("recovery retries transients but never swallows a genuine alert:\n");
  std::printf("verdict flips across 16 bugs x 3 variants: %d (required: 0)\n", mismatches);
  results["progression_verdict_flips"] = mismatches;
  return mismatches;
}

// ---------------------------------------------------------------------------
// Runtime-assurance legs (PR 7)
// ---------------------------------------------------------------------------

/// How one run of the hazard scenario ended, per supervision mode.
struct HazardOutcome {
  std::size_t damage = 0;
  std::size_t demotions = 0;
  std::size_t alerts = 0;
  bool halted = false;
};

enum class HazardMode { None, Reactive, Rta };

/// The §IV category-2 failure in miniature: the configured world is
/// miscalibrated by 2 cm against ground truth. A straight ascent from the
/// viperx sleep pose grazes the *configured* overhead shelf by 1.5 cm —
/// clear, by the boolean collision check — while the *real* shelf sits in
/// the path. Reactive supervision (any ladder) cannot see this coming: the
/// trajectory validates, the crash happens, and even the postcondition check
/// stays quiet because the arm still reaches its goal. The RTA barrier floor
/// (3 cm > the 2 cm miscalibration) demotes before the arm commits.
HazardOutcome run_hazard(HazardMode mode) {
  auto backend = make_testbed();
  core::EngineConfig config =
      core::config_from_backend(*backend, core::Variant::ModifiedWithSim);

  // The configured world, as make_engine builds it — plus the shelf where
  // the (miscalibrated) configuration believes it is: shifted +2 cm in y,
  // so the ascent at y = -0.10 clears it by 0.015 m.
  sim::WorldModel world = sim::deck_world_model(*backend);
  for (const core::DeviceMeta& m : config.devices) {
    if (m.is_arm && m.sleep_box) {
      world.add_box(m.id, *m.sleep_box, sim::ObstacleKind::ParkedArm);
    }
  }
  world.add_box("overhead_shelf",
                geom::Aabb(geom::Vec3(0.07, -0.085, 0.40), geom::Vec3(0.17, 0.015, 0.50)),
                sim::ObstacleKind::Equipment);

  // Ground truth: the real shelf, 2 cm closer to the corridor. Added to the
  // backend only, *after* the config snapshot — exactly a calibration error.
  backend->add_static_obstacle(
      "overhead_shelf",
      geom::Aabb(geom::Vec3(0.07, -0.105, 0.40), geom::Vec3(0.17, -0.005, 0.50)),
      sim::ObstacleKind::Equipment);

  sim::ExtendedSimulator::Options sim_options;
  sim_options.gui_enabled = false;
  sim::ExtendedSimulator simulator(std::move(world), sim_options);
  sim::LabBackend* backend_ptr = backend.get();
  simulator.set_arm_state_provider(
      [backend_ptr](std::string_view arm_id) -> std::optional<geom::Vec3> {
        const auto* arm =
            dynamic_cast<const dev::RobotArmDevice*>(backend_ptr->registry().find(arm_id));
        if (arm == nullptr) return std::nullopt;
        return arm->position_lab();
      });
  core::RabitEngine engine(std::move(config));
  engine.attach_simulator(&simulator);

  trace::Supervisor::Options options;
  if (mode != HazardMode::None) options.recovery = recovery::RecoveryPolicy{};
  if (mode == HazardMode::Rta) options.assurance = assurance::AssuranceConfig{};
  trace::Supervisor sup(&engine, backend.get(), options);

  // One command: ascend from sleep (0.12, -0.10, 0.14 lab) straight up into
  // the shelf corridor (viperx base is at z = 0.02).
  std::vector<dev::Command> workflow{move_cmd(sim::deck_ids::kViperX,
                                              geom::Vec3(0.12, -0.10, 0.48))};
  trace::RunReport report = sup.run(workflow);

  HazardOutcome out;
  out.damage = report.damage.size();
  out.alerts = report.alerts;
  out.halted = report.halted;
  if (report.recovery) out.demotions = report.recovery->demotions;
  return out;
}

/// Damage-prevented leg: the RTA mode must prevent strictly more damage
/// events than the reactive ladder and the bare supervisor on the same
/// miscalibrated world. Returns the number of acceptance violations.
int run_hazard_leg(json::Object& results) {
  print_header("Predictive safe-stop vs reactive supervision on a miscalibrated world",
               "SOTER-style runtime assurance over RABIT (DSN'24) V3 trajectory checks");

  struct Row {
    const char* name;
    HazardMode mode;
  };
  const Row rows[] = {{"none", HazardMode::None},
                      {"reactive ladder", HazardMode::Reactive},
                      {"rta", HazardMode::Rta}};

  HazardOutcome outcomes[3];
  std::printf("%-18s %8s %10s %10s %8s %8s\n", "Mode", "Damage", "Prevented", "Demotions",
              "Alerts", "Halted");
  print_rule();
  json::Array hazard_rows;
  for (int i = 0; i < 3; ++i) {
    outcomes[i] = run_hazard(rows[i].mode);
  }
  const std::size_t baseline_damage = outcomes[0].damage;
  for (int i = 0; i < 3; ++i) {
    const HazardOutcome& o = outcomes[i];
    std::size_t prevented = baseline_damage > o.damage ? baseline_damage - o.damage : 0;
    std::printf("%-18s %8zu %10zu %10zu %8zu %8s\n", rows[i].name, o.damage, prevented,
                o.demotions, o.alerts, o.halted ? "yes" : "no");
    json::Object row;
    row["mode"] = std::string(rows[i].name);
    row["damage_events"] = o.damage;
    row["damage_events_prevented"] = prevented;
    row["demotions"] = o.demotions;
    row["alerts"] = o.alerts;
    row["halted"] = o.halted;
    hazard_rows.emplace_back(std::move(row));
  }
  print_rule();

  int violations = 0;
  if (baseline_damage == 0) {
    ++violations;
    std::printf("VIOLATION: hazard scenario caused no damage without assurance — the\n"
                "miscalibration no longer reaches the arm; the leg proves nothing\n");
  }
  if (outcomes[1].damage < baseline_damage) {
    ++violations;
    std::printf("VIOLATION: the reactive ladder prevented the miscalibration damage —\n"
                "the RTA comparison baseline is broken\n");
  }
  if (outcomes[2].damage != 0) {
    ++violations;
    std::printf("VIOLATION: RTA did not prevent the damage (%zu events)\n",
                outcomes[2].damage);
  }
  if (outcomes[2].demotions == 0) {
    ++violations;
    std::printf("VIOLATION: RTA prevented damage without recording a demotion\n");
  }
  std::printf("RTA prevented %zu damage event(s); reactive prevented %zu (required: RTA "
              "strictly more)\n",
              baseline_damage - outcomes[2].damage, baseline_damage - outcomes[1].damage);
  results["hazard"] = std::move(hazard_rows);
  return violations;
}

/// False-safe-stop leg: the chaos campaign re-run at V3 with RTA enabled on
/// an *accurate* world. Transient faults are the recovery ladder's business;
/// the assurance layer must stay silent — zero demotions, zero halts.
/// Returns the number of acceptance violations.
int run_rta_chaos_leg(int seeds_per_workflow, json::Object& results) {
  print_header("RTA on accurate worlds: zero false safe-stops under chaos",
               "robustness extension -- predictive demotion must not fire on clean geometry");

  int violations = 0;
  std::size_t total_demotions = 0;
  int halts = 0, runs = 0;
  std::printf("%-18s %6s %10s %10s %10s\n", "Workflow", "Seeds", "Complete", "Demotions",
              "FalseHalt");
  print_rule();
  for (const WorkflowCase& wc : kWorkflows) {
    int complete = 0, wc_halts = 0;
    std::size_t wc_demotions = 0;
    for (int seed = 1; seed <= seeds_per_workflow; ++seed) {
      auto backend = wc.make_backend();
      std::vector<dev::Command> workflow = script::record_workflow(*backend, wc.source());
      backend->set_fault_schedule(chaos_for(workflow, static_cast<unsigned>(seed)));

      EngineBundle bundle = make_engine(*backend, core::Variant::ModifiedWithSim,
                                        /*gui_enabled=*/false);
      trace::Supervisor::Options options;
      options.recovery = recovery::RecoveryPolicy{};
      options.assurance = assurance::AssuranceConfig{};
      trace::Supervisor sup(bundle.engine.get(), backend.get(), options);
      trace::RunReport report = sup.run(workflow);

      ++runs;
      if (report.halted) {
        ++wc_halts;
        std::printf("  ! %s seed %d halted under RTA\n", wc.name, seed);
      } else {
        ++complete;
      }
      if (report.recovery) wc_demotions += report.recovery->demotions;
    }
    halts += wc_halts;
    total_demotions += wc_demotions;
    std::printf("%-18s %6d %7d/%-2d %10zu %7d/%-2d\n", wc.name, seeds_per_workflow, complete,
                seeds_per_workflow, wc_demotions, wc_halts, seeds_per_workflow);
  }
  print_rule();
  std::printf("demotions on accurate worlds: %zu (required: 0); false halts: %d/%d "
              "(required: 0)\n",
              total_demotions, halts, runs);
  if (total_demotions > 0) ++violations;
  if (halts > 0) ++violations;

  json::Object leg;
  leg["runs"] = runs;
  leg["demotions"] = total_demotions;
  leg["false_halts"] = halts;
  results["rta_chaos"] = std::move(leg);
  return violations;
}

// Timing: one full chaos run with recovery, per workflow.
void BM_ChaosRunWithRecovery(benchmark::State& state) {
  const WorkflowCase& wc = kWorkflows[state.range(0)];
  unsigned seed = 1;
  for (auto _ : state) {
    ChaosRun run = run_chaos(wc, seed++, /*with_recovery=*/true);
    benchmark::DoNotOptimize(run);
  }
  state.SetLabel(wc.name);
}
BENCHMARK(BM_ChaosRunWithRecovery)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }

  json::Object results;
  results["bench"] = "fault_recovery";
  results["mode"] = smoke ? std::string("smoke") : std::string("full");

  int violations = 0;
  violations += run_campaign(smoke ? 5 : 25, results);
  violations += run_permanent_leg();
  violations += run_progression_leg(results);
  violations += run_hazard_leg(results);
  violations += run_rta_chaos_leg(smoke ? 3 : 10, results);

  results["acceptance_violations"] = violations;
  {
    std::ofstream out("BENCH_fault_recovery.json");
    out << json::serialize_pretty(json::Value(std::move(results))) << "\n";
    std::printf("\nwrote BENCH_fault_recovery.json\n");
  }
  if (violations > 0) {
    std::printf("\nFAIL: %d acceptance violation(s)\n", violations);
    return 1;
  }
  std::printf("all acceptance checks passed\n");

  if (!smoke) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}
