// Table IV reproduction: the four Hein Lab custom rules, one controlled
// violation each.
#include <benchmark/benchmark.h>

#include <functional>

#include "bench_common.hpp"

namespace {

using namespace rabit;
using namespace rabit::bench;
namespace ids = sim::deck_ids;

struct Scenario {
  const char* rule;
  const char* description;
  std::function<std::vector<dev::Command>(sim::LabBackend&)> build;
};

/// Shared preamble: dose vial_1 with 5 mg of solid so later stages are legal.
std::vector<dev::Command> dosed_vial_preamble() {
  json::Object open = door_arg("open");
  json::Object nw;
  nw["site"] = std::string("grid.NW");
  json::Object dd;
  dd["site"] = std::string("dosing_device");
  json::Object closed = door_arg("closed");
  json::Object q;
  q["quantity"] = 5.0;
  json::Object reopen = door_arg("open");
  json::Object pick_dd;
  pick_dd["site"] = std::string("dosing_device");
  json::Object back;
  back["site"] = std::string("grid.NW");
  json::Object closed2 = door_arg("closed");
  return {
      make_cmd(ids::kVial1, "decap"),
      make_cmd(ids::kDosingDevice, "set_door", std::move(open)),
      make_cmd(ids::kViperX, "pick_object", std::move(nw)),
      make_cmd(ids::kViperX, "place_object", std::move(dd)),
      make_cmd(ids::kViperX, "go_sleep"),
      make_cmd(ids::kDosingDevice, "set_door", std::move(closed)),
      make_cmd(ids::kDosingDevice, "run_action", std::move(q)),
      make_cmd(ids::kDosingDevice, "stop_action"),
      make_cmd(ids::kDosingDevice, "set_door", std::move(reopen)),
      make_cmd(ids::kViperX, "pick_object", std::move(pick_dd)),
      make_cmd(ids::kViperX, "place_object", std::move(back)),
      make_cmd(ids::kViperX, "go_sleep"),
      make_cmd(ids::kDosingDevice, "set_door", std::move(closed2)),
  };
}

std::vector<dev::Command> with_preamble(std::vector<dev::Command> tail) {
  std::vector<dev::Command> cmds = dosed_vial_preamble();
  for (dev::Command& c : tail) cmds.push_back(std::move(c));
  return cmds;
}

std::vector<Scenario> custom_rule_scenarios() {
  return {
      {"C1", "dose solvent into a vial that has no solid yet",
       [](sim::LabBackend&) {
         json::Object draw;
         draw["volume"] = 2.0;
         json::Object dose;
         dose["volume"] = 2.0;
         dose["target"] = std::string(ids::kVial2);  // never dosed with solid
         return std::vector<dev::Command>{
             make_cmd(ids::kSyringePump, "draw_solvent", std::move(draw)),
             make_cmd(ids::kSyringePump, "dose_solvent", std::move(dose))};
       }},
      {"C2", "centrifuge a vial that has solid but no liquid",
       [](sim::LabBackend&) {
         json::Object recap;
         json::Object open = door_arg("open");
         json::Object pick;
         pick["site"] = std::string("grid.NW");
         json::Object place;
         place["site"] = std::string("centrifuge");
         return with_preamble({make_cmd(ids::kVial1, "recap"),
                               make_cmd(ids::kCentrifuge, "set_door", std::move(open)),
                               make_cmd(ids::kViperX, "pick_object", std::move(pick)),
                               make_cmd(ids::kViperX, "place_object", std::move(place))});
       }},
      {"C3", "load the centrifuge while the red dot faces East",
       [](sim::LabBackend&) {
         json::Object draw;
         draw["volume"] = 2.0;
         json::Object dose;
         dose["volume"] = 2.0;
         dose["target"] = std::string(ids::kVial1);
         json::Object rotate;
         rotate["orientation"] = std::string("E");
         json::Object open = door_arg("open");
         json::Object pick;
         pick["site"] = std::string("grid.NW");
         json::Object place;
         place["site"] = std::string("centrifuge");
         return with_preamble({make_cmd(ids::kSyringePump, "draw_solvent", std::move(draw)),
                               make_cmd(ids::kSyringePump, "dose_solvent", std::move(dose)),
                               make_cmd(ids::kVial1, "recap"),
                               make_cmd(ids::kCentrifuge, "rotate_platter", std::move(rotate)),
                               make_cmd(ids::kCentrifuge, "set_door", std::move(open)),
                               make_cmd(ids::kViperX, "pick_object", std::move(pick)),
                               make_cmd(ids::kViperX, "place_object", std::move(place))});
       }},
      {"C4", "load the centrifuge with an unstoppered vial",
       [](sim::LabBackend&) {
         json::Object draw;
         draw["volume"] = 2.0;
         json::Object dose;
         dose["volume"] = 2.0;
         dose["target"] = std::string(ids::kVial1);
         json::Object open = door_arg("open");
         json::Object pick;
         pick["site"] = std::string("grid.NW");
         json::Object place;
         place["site"] = std::string("centrifuge");
         // No recap before loading.
         return with_preamble({make_cmd(ids::kSyringePump, "draw_solvent", std::move(draw)),
                               make_cmd(ids::kSyringePump, "dose_solvent", std::move(dose)),
                               make_cmd(ids::kCentrifuge, "set_door", std::move(open)),
                               make_cmd(ids::kViperX, "pick_object", std::move(pick)),
                               make_cmd(ids::kViperX, "place_object", std::move(place))});
       }},
  };
}

void print_table4() {
  print_header("Table IV — the 4 Hein Lab custom rules, one violation each",
               "RABIT (DSN'24), Table IV + Section IV controlled experiments");
  std::printf("%-5s %-55s %-9s %s\n", "Rule", "Unsafe scenario", "Detected", "Fired");
  print_rule();
  int detected = 0;
  int correct_rule = 0;
  auto scenarios = custom_rule_scenarios();
  for (const Scenario& s : scenarios) {
    auto backend = make_testbed();
    EngineBundle bundle = make_engine(*backend, core::Variant::Modified);
    trace::Supervisor supervisor(bundle.engine.get(), backend.get());
    trace::RunReport report = supervisor.run(s.build(*backend));
    std::string fired;
    for (const trace::SupervisedStep& step : report.steps) {
      if (step.alert) {
        fired = step.alert->rule;
        break;
      }
    }
    bool ok = report.alert_preceded_damage();
    if (ok) ++detected;
    if (fired == s.rule) ++correct_rule;
    std::printf("%-5s %-55s %-9s %s\n", s.rule, s.description, ok ? "YES" : "NO", fired.c_str());
  }
  print_rule();
  std::printf("detected %d / %zu, exact rule attribution %d / %zu\n", detected, scenarios.size(),
              correct_rule, scenarios.size());
  std::printf("(paper: all controlled custom-rule scenarios detected; custom rules\n");
  std::printf(" are the lab-specific layer that makes RABIT adaptable, Section II-A)\n");
}

void BM_CustomRuleCheck(benchmark::State& state) {
  auto backend = make_testbed();
  EngineBundle bundle = make_engine(*backend, core::Variant::Modified);
  bundle.engine->initialize(backend->registry().fetch_observed_state());
  json::Object dose;
  dose["volume"] = 2.0;
  dose["target"] = std::string(ids::kVial2);
  dev::Command cmd = make_cmd(ids::kSyringePump, "dose_solvent", std::move(dose));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bundle.engine->check_command(cmd));
  }
}
BENCHMARK(BM_CustomRuleCheck);

}  // namespace

int main(int argc, char** argv) {
  print_table4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
