// Quickstart: configure a lab from JSON, run a safe workflow through RABIT,
// then watch RABIT block one unsafe command.
//
//   $ ./quickstart
#include <cstdio>

#include "core/engine.hpp"
#include "devices/robot_arm.hpp"
#include "script/interp.hpp"
#include "script/workflows.hpp"
#include "sim/deck.hpp"
#include "trace/trace.hpp"

using namespace rabit;
namespace ids = sim::deck_ids;

int main() {
  std::printf("== RABIT quickstart ==\n\n");

  // 1. Build a lab. The standard Hein testbed deck has two arms (ViperX,
  //    Ned2), five stations, a vial grid, and two vials.
  sim::LabBackend backend(sim::testbed_profile());
  sim::build_hein_testbed_deck(backend);
  std::printf("deck: %zu devices, %zu named sites\n", backend.registry().size(),
              backend.sites().size());

  // 2. Describe the lab to RABIT. In a real deployment a researcher writes
  //    the JSON configuration by hand (paper Section II-C); here we derive
  //    it from the deck and round-trip it through the JSON layer to show
  //    the format.
  core::EngineConfig config = core::config_from_backend(backend, core::Variant::Modified);
  json::Value config_doc = core::config_to_json(config);
  auto issues = core::config_schema().validate(config_doc);
  std::printf("configuration: %zu devices described, schema issues: %zu\n",
              config.devices.size(), issues.size());
  config = core::config_from_json(config_doc);  // what a researcher's file yields

  // 3. Wire the RATracer-style supervisor: every command is checked by
  //    RABIT before it reaches a device.
  core::RabitEngine engine(std::move(config));
  trace::Supervisor supervisor(&engine, &backend);
  supervisor.start();

  // 4. Run a safe experiment script.
  script::SupervisorSink sink(&supervisor);
  script::Interpreter interp(&sink);
  interp.register_devices(backend.registry());
  interp.set_global("locations", script::locations_table(backend));
  try {
    interp.run(script::testbed_workflow_source());
    std::printf("\nsafe workflow: completed, %zu commands traced, %zu alerts, "
                "%zu damage events\n",
                supervisor.log().size(), engine.stats().precondition_alerts,
                backend.damage_log().size());
    std::printf("vial_1 now holds %.1f mg of solid at %s\n",
                backend.vial(ids::kVial1).solid_mg(),
                backend.vial(ids::kVial1).location().c_str());
  } catch (const script::ExperimentHalted& e) {
    std::printf("unexpected halt: %s\n", e.what());
    return 1;
  }

  // 5. Now try something unsafe: drive ViperX into the dosing device while
  //    its door is closed (the paper's Bug A). RABIT blocks it before the
  //    device ever sees the command.
  std::printf("\nissuing an unsafe command (move into a closed dosing device)...\n");
  try {
    interp.run(R"(
      viperx.move_to(position=locations["dosing_device"]["viperx"]["pickup"])
    )");
    std::printf("ERROR: the unsafe command was not blocked!\n");
    return 1;
  } catch (const script::ExperimentHalted& e) {
    std::printf("RABIT intervened: %s\n", e.what());
  }
  std::printf("damage events after the unsafe attempt: %zu (the crash was prevented)\n",
              backend.damage_log().size());
  return 0;
}
