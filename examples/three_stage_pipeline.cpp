// The paper's three-stage deployment framework (§II, Table I): a researcher
// constructs a *new* workflow and promotes it stage by stage — simulator
// first (fast, nothing to break), then the low-fidelity testbed (cheap
// mockups), and only then production. A bug is cheapest at the earliest
// stage that can expose it.
//
// This example takes one buggy workflow (Fig. 6's Bug D: a pickup height
// edited too low while the arm carries a vial) through all three stages
// twice: once guarded by modified RABIT with the Extended Simulator, and
// once unguarded, accumulating the modeled damage cost each stage would
// have suffered.
//
//   $ ./three_stage_pipeline
#include <cstdio>

#include "bugs/bugs.hpp"
#include "core/engine.hpp"
#include "devices/robot_arm.hpp"
#include "sim/deck.hpp"
#include "sim/extended_sim.hpp"
#include "trace/trace.hpp"

using namespace rabit;

namespace {

struct StageOutcome {
  std::string stage;
  bool blocked = false;
  std::string rule;
  std::size_t damage_events = 0;
  double damage_cost = 0;
  double stage_time_s = 0;
};

StageOutcome run_stage(const sim::StageProfile& profile,
                       const std::vector<dev::Command>& workflow, bool with_rabit) {
  sim::LabBackend backend(profile);
  sim::build_hein_testbed_deck(backend);

  std::unique_ptr<core::RabitEngine> engine;
  std::unique_ptr<sim::ExtendedSimulator> simulator;
  if (with_rabit) {
    core::EngineConfig config =
        core::config_from_backend(backend, core::Variant::ModifiedWithSim);
    sim::WorldModel world = sim::deck_world_model(backend);
    for (const core::DeviceMeta& m : config.devices) {
      if (m.is_arm && m.sleep_box) {
        world.add_box(m.id, *m.sleep_box, sim::ObstacleKind::ParkedArm);
      }
    }
    simulator = std::make_unique<sim::ExtendedSimulator>(std::move(world));
    simulator->set_arm_state_provider(
        [&backend](std::string_view arm_id) -> std::optional<geom::Vec3> {
          const auto* arm =
              dynamic_cast<const dev::RobotArmDevice*>(backend.registry().find(arm_id));
          return arm != nullptr ? std::optional<geom::Vec3>(arm->position_lab())
                                : std::nullopt;
        });
    engine = std::make_unique<core::RabitEngine>(std::move(config));
    engine->attach_simulator(simulator.get());
  }

  trace::Supervisor supervisor(engine.get(), &backend);
  trace::RunReport report = supervisor.run(workflow);

  StageOutcome outcome;
  outcome.stage = profile.name;
  outcome.blocked = report.first_alert_step.has_value();
  if (outcome.blocked) {
    outcome.rule = report.steps[*report.first_alert_step].alert->rule;
  }
  outcome.damage_events = report.damage.size();
  outcome.damage_cost = backend.total_damage_cost();
  outcome.stage_time_s = report.modeled_runtime_s + report.modeled_overhead_s;
  return outcome;
}

void run_pipeline(const std::vector<dev::Command>& workflow, bool with_rabit) {
  std::printf("%-13s %-9s %-6s %-8s %-12s %s\n", "stage", "blocked", "rule", "damage",
              "cost ($)", "stage time (model s)");
  const sim::StageProfile stages[] = {sim::simulator_profile(), sim::testbed_profile(),
                                      sim::production_profile()};
  for (const sim::StageProfile& stage : stages) {
    StageOutcome o = run_stage(stage, workflow, with_rabit);
    std::printf("%-13s %-9s %-6s %-8zu %-12.0f %.1f\n", o.stage.c_str(),
                o.blocked ? "YES" : "no", o.rule.c_str(), o.damage_events, o.damage_cost,
                o.stage_time_s);
  }
}

}  // namespace

int main() {
  std::printf("== the three-stage deployment framework (Table I) ==\n\n");

  // The workflow under construction, with Fig. 6's Bug D (lowered pickup
  // height while holding a vial) still in it.
  sim::LabBackend staging(sim::testbed_profile());
  sim::build_hein_testbed_deck(staging);
  const bugs::BugSpec* bug_d = nullptr;
  for (const bugs::BugSpec& b : bugs::bug_catalogue()) {
    if (b.id == "M3") bug_d = &b;
  }
  auto buggy = bug_d->build(staging);
  auto fixed = bug_d->build_safe(staging);

  std::printf("promoting the BUGGY workflow (Fig. 6 Bug D) without RABIT:\n");
  run_pipeline(buggy, /*with_rabit=*/false);
  std::printf("=> every stage physically crashes; each promotion multiplies the\n");
  std::printf("   cost (Table I's 'risk of damage' row).\n\n");

  std::printf("the same workflow guarded by RABIT (modified + simulator):\n");
  run_pipeline(buggy, /*with_rabit=*/true);
  std::printf("=> blocked at the cheapest stage, before any damage, on every\n");
  std::printf("   stage it would ever reach.\n\n");

  std::printf("after fixing the coordinate, the corrected workflow passes all\n");
  std::printf("three stages:\n");
  run_pipeline(fixed, /*with_rabit=*/true);
  std::printf("=> clean on simulator -> testbed -> production: ready to deploy.\n");
  return 0;
}
