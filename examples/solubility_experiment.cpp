// The automated solubility measurement of paper Fig. 1(b), end to end on the
// production deck: dose solid into a vial, add solvent until the camera says
// it has dissolved, and return the vial — all supervised by RABIT.
//
//   $ ./solubility_experiment
#include <cstdio>

#include "core/engine.hpp"
#include "devices/robot_arm.hpp"
#include "script/interp.hpp"
#include "script/workflows.hpp"
#include "sim/deck.hpp"
#include "trace/trace.hpp"

using namespace rabit;
namespace ids = sim::deck_ids;

int main() {
  std::printf("== automated solubility measurement (Fig. 1b) ==\n\n");

  sim::LabBackend backend(sim::production_profile());
  sim::build_hein_production_deck(backend);

  core::RabitEngine engine(core::config_from_backend(backend, core::Variant::Modified));
  trace::Supervisor supervisor(&engine, &backend);
  supervisor.start();

  std::printf("experiment script:\n%s\n", script::solubility_workflow_source().c_str());

  script::SupervisorSink sink(&supervisor);
  script::Interpreter interp(&sink);
  interp.register_devices(backend.registry());
  interp.set_global("locations", script::locations_table(backend));

  try {
    interp.run(script::solubility_workflow_source());
  } catch (const script::ExperimentHalted& e) {
    std::printf("halted: %s\n", e.what());
    return 1;
  }

  const dev::Vial& vial = backend.vial(ids::kVial1);
  std::printf("results:\n");
  std::printf("  commands traced      : %zu\n", supervisor.log().size());
  std::printf("  RABIT alerts         : %zu\n",
              engine.stats().precondition_alerts + engine.stats().malfunction_alerts);
  std::printf("  damage events        : %zu\n", backend.damage_log().size());
  std::printf("  vial solid           : %.1f mg\n", vial.solid_mg());
  std::printf("  vial solvent         : %.1f mL\n", vial.liquid_ml());
  std::printf("  true solubility      : %.2f (1.0 = fully dissolved)\n",
              sim::LabBackend::true_solubility(vial));
  std::printf("  vial returned to     : %s\n", vial.location().c_str());
  std::printf("  modeled runtime      : %.0f s of lab time\n", backend.modeled_clock_s());
  std::printf("  RABIT overhead       : %.1f s (%.1f%%)\n", engine.modeled_overhead_s(),
              100.0 * engine.modeled_overhead_s() / backend.modeled_clock_s());

  // Show a slice of the trace, as RATracer would record it.
  std::printf("\nfirst trace records (JSONL):\n");
  std::string jsonl = supervisor.log().to_jsonl();
  std::size_t shown = 0;
  std::size_t pos = 0;
  while (shown < 5 && pos < jsonl.size()) {
    std::size_t end = jsonl.find('\n', pos);
    std::printf("  %s\n", jsonl.substr(pos, end - pos).c_str());
    pos = end + 1;
    ++shown;
  }
  return 0;
}
