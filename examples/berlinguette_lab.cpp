// Generalizing RABIT to the Berlinguette Lab (paper Section V-B): a
// materials-science platform with a UR5e transfer arm, a dosing device, a
// decapper, a spin coater, a spray station (hotplate + syringe pump +
// ultrasonic nozzles) — every station categorized into RABIT's four device
// types, with the general rulebase carrying over unchanged.
//
//   $ ./berlinguette_lab
#include <cstdio>
#include <memory>

#include "core/engine.hpp"
#include "devices/containers.hpp"
#include "devices/robot_arm.hpp"
#include "devices/stations.hpp"
#include "sim/backend.hpp"
#include "trace/trace.hpp"

using namespace rabit;
using geom::Aabb;
using geom::Transform;
using geom::Vec3;

namespace {

dev::Command make_cmd(std::string device, std::string action, json::Object args = {}) {
  dev::Command c;
  c.device = std::move(device);
  c.action = std::move(action);
  c.args = json::Value(std::move(args));
  return c;
}

json::Object door(const char* state) {
  json::Object o;
  o["state"] = std::string(state);
  return o;
}

json::Object site(const char* name) {
  json::Object o;
  o["site"] = std::string(name);
  return o;
}

void build_berlinguette_deck(sim::LabBackend& backend) {
  backend.add_static_obstacle("platform", Aabb(Vec3(-1.2, -1.2, -0.5), Vec3(1.2, 1.2, 0.02)),
                              sim::ObstacleKind::Ground);
  auto& reg = backend.registry();

  // The central UR5e serving the multi-station platform.
  auto& ur5e = dynamic_cast<dev::RobotArmDevice&>(reg.add(std::make_unique<dev::RobotArmDevice>(
      "ur5e", kin::make_ur5e(Transform::translation(Vec3(0, 0, 0.02))),
      dev::MotionPolicy::ThrowOnUnreachable)));
  {
    // Deck-safe named poses.
    kin::IkResult home = ur5e.model().inverse(Vec3(0.3, 0.0, 0.5), ur5e.joints());
    kin::IkResult sleep = ur5e.model().inverse(Vec3(0.25, 0.0, 0.2), ur5e.joints());
    ur5e.set_named_pose("home", *home.joints);
    ur5e.set_named_pose("sleep", *sleep.joints);
    ur5e.commit_move(ur5e.plan_pose("home"), "home");
  }

  // Dosing system: a doored dosing device like the Hein Lab's.
  reg.add(std::make_unique<dev::DosingDeviceModel>(
      "dosing_device", Aabb::from_center(Vec3(0.0, 0.55, 0.12), Vec3(0.16, 0.16, 0.20))));
  backend.add_site({"dosing_device", Vec3(0.0, 0.55, 0.10), "", "", "dosing_device"});

  // Action device: the decapper (capping/uncapping actions).
  reg.add(std::make_unique<dev::GenericActionDevice>(
      "decapper", std::vector<dev::GenericActionDevice::ValueActionSpec>{},
      /*has_door=*/false, Aabb::from_center(Vec3(0.45, 0.25, 0.08), Vec3(0.10, 0.10, 0.12))));
  backend.add_site({"decapper", Vec3(0.45, 0.25, 0.16), "", "", "decapper"});

  // Action device: the precursor-mixing station's spin coater (doored).
  reg.add(std::make_unique<dev::GenericActionDevice>(
      "spin_coater",
      std::vector<dev::GenericActionDevice::ValueActionSpec>{
          {"set_spin_speed", "spinRpm", "rpm", 8000.0}},
      /*has_door=*/true, Aabb::from_center(Vec3(-0.45, 0.25, 0.08), Vec3(0.16, 0.16, 0.12))));
  backend.add_site({"spin_coater", Vec3(-0.45, 0.25, 0.10), "", "", "spin_coater"});

  // Spray-coating station: hotplate + syringe pump + ultrasonic nozzles.
  reg.add(std::make_unique<dev::HotplateModel>(
      "spray_hotplate", 340.0, 150.0,
      Aabb::from_center(Vec3(-0.45, -0.25, 0.06), Vec3(0.12, 0.12, 0.08))));
  backend.add_site({"spray_hotplate", Vec3(-0.45, -0.25, 0.16), "", "", "spray_hotplate"});
  reg.add(std::make_unique<dev::SyringePumpModel>(
      "spray_pump", 250.0, Aabb::from_center(Vec3(-0.2, -0.5, 0.10), Vec3(0.1, 0.1, 0.16))));
  reg.add(std::make_unique<dev::GenericActionDevice>(
      "ultrasonic_nozzle",
      std::vector<dev::GenericActionDevice::ValueActionSpec>{
          {"set_flow", "flowRate", "ml_per_min", 50.0}},
      /*has_door=*/false, std::nullopt));

  // The XRF microscope — "a set of multiple action devices" (Section V-B).
  reg.add(std::make_unique<dev::GenericActionDevice>(
      "xrf_source",
      std::vector<dev::GenericActionDevice::ValueActionSpec>{
          {"set_beam", "beamKv", "kv", 50.0}},
      /*has_door=*/true, Aabb::from_center(Vec3(0.45, -0.25, 0.14), Vec3(0.18, 0.18, 0.24))));
  backend.add_site({"xrf_source", Vec3(0.45, -0.25, 0.12), "", "", "xrf_source"});

  // Vials on a staging rack.
  auto& rack = dynamic_cast<dev::VialGrid&>(reg.add(std::make_unique<dev::VialGrid>(
      "rack", std::vector<std::string>{"A", "B"},
      Aabb::from_center(Vec3(0.3, 0.35, 0.04), Vec3(0.16, 0.10, 0.04)))));
  reg.add(std::make_unique<dev::Vial>("vial_a", 20.0, 25.0, "rack.A"));
  rack.place("A", "vial_a");
  backend.add_site({"rack.A", Vec3(0.27, 0.35, 0.11), "rack", "A", ""});
  backend.add_site({"rack.B", Vec3(0.33, 0.35, 0.11), "rack", "B", ""});
}

}  // namespace

int main() {
  std::printf("== adapting RABIT to the Berlinguette Lab (Section V-B) ==\n\n");

  sim::LabBackend backend(sim::production_profile());
  build_berlinguette_deck(backend);

  // Categorization report: the Section V-B exercise.
  std::printf("device categorization into RABIT's four types:\n");
  for (const dev::Device* d : backend.registry().all()) {
    std::printf("  %-18s -> %s\n", d->id().c_str(),
                std::string(dev::to_string(d->category())).c_str());
  }

  core::EngineConfig config = core::config_from_backend(backend, core::Variant::Modified);
  core::RabitEngine engine(std::move(config));
  trace::Supervisor supervisor(&engine, &backend);
  supervisor.start();

  // A thin-film preparation workflow: dose precursor, mix, spin coat.
  std::printf("\nrunning a spin-coating workflow under the general rulebase...\n");
  std::vector<dev::Command> workflow = {
      make_cmd("vial_a", "decap"),
      make_cmd("dosing_device", "set_door", door("open")),
      make_cmd("ur5e", "pick_object", site("rack.A")),
      make_cmd("ur5e", "place_object", site("dosing_device")),
      make_cmd("ur5e", "go_home"),
      make_cmd("dosing_device", "set_door", door("closed")),
      make_cmd("dosing_device", "run_action",
               [] {
                 json::Object o;
                 o["quantity"] = 8.0;
                 return o;
               }()),
      make_cmd("dosing_device", "stop_action"),
      make_cmd("dosing_device", "set_door", door("open")),
      make_cmd("ur5e", "pick_object", site("dosing_device")),
      make_cmd("spin_coater", "set_door", door("open")),
      make_cmd("ur5e", "place_object", site("spin_coater")),
      make_cmd("ur5e", "go_home"),
      make_cmd("dosing_device", "set_door", door("closed")),
      make_cmd("spin_coater", "set_door", door("closed")),
      make_cmd("spin_coater", "set_spin_speed",
               [] {
                 json::Object o;
                 o["rpm"] = 3000.0;
                 return o;
               }()),
      make_cmd("spin_coater", "start"),
      make_cmd("spin_coater", "stop"),
  };
  trace::RunReport report = supervisor.run(workflow);
  std::printf("  commands: %zu, alerts: %zu, damage: %zu\n", report.steps.size(), report.alerts,
              report.damage.size());

  // The rules transfer: entering the spin coater with a closed door is G1,
  // spinning with the door open is G9 — no new rules needed for this lab.
  std::printf("\nunsafe attempts under the unchanged general rulebase:\n");
  supervisor.start();
  trace::SupervisedStep s1 = supervisor.step(make_cmd("ur5e", "pick_object", site("xrf_source")));
  std::printf("  reach into the XRF source (door closed): %s\n",
              s1.alert ? ("blocked by " + s1.alert->rule).c_str() : "NOT BLOCKED");

  supervisor.start();
  trace::SupervisedStep s2 = supervisor.step(make_cmd("spin_coater", "set_spin_speed", [] {
    json::Object o;
    o["rpm"] = 7000.0;
    return o;
  }()));
  std::printf("  spin coater above the lab threshold   : %s\n",
              s2.alert ? ("blocked by " + s2.alert->rule).c_str()
                       : "NOT BLOCKED (add a custom threshold — see below)");

  // The lab adds its own custom rule, exactly as the paper prescribes:
  // a RABIT-level threshold below the firmware limit.
  core::EngineConfig custom = core::config_from_backend(backend, core::Variant::Modified);
  for (core::DeviceMeta& m : custom.devices) {
    if (m.id == "spin_coater") m.thresholds.push_back({"set_spin_speed", "rpm", 5000.0});
  }
  core::RabitEngine engine2(std::move(custom));
  trace::Supervisor supervisor2(&engine2, &backend);
  supervisor2.start();
  trace::SupervisedStep s3 = supervisor2.step(make_cmd("spin_coater", "set_spin_speed", [] {
    json::Object o;
    o["rpm"] = 7000.0;
    return o;
  }()));
  std::printf("  same, after adding a custom threshold : %s\n",
              s3.alert ? ("blocked by " + s3.alert->rule).c_str() : "NOT BLOCKED");

  std::printf("\nconclusion (as in the paper): the four device types cover this lab's\n");
  std::printf("stations, the general rules carry over, and lab-specific safety\n");
  std::printf("practices become custom rules layered on top.\n");
  return 0;
}
