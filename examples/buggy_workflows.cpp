// The Fig. 5 / Fig. 6 bugs (A, B, C, D) replayed on the testbed under each
// RABIT variant — a narrated version of the paper's uncontrolled
// experiments, showing which middleware capability catches which bug.
//
//   $ ./buggy_workflows
#include <cstdio>

#include "bugs/bugs.hpp"
#include "sim/deck.hpp"

using namespace rabit;

namespace {

const bugs::BugSpec& by_id(const std::string& id) {
  for (const bugs::BugSpec& b : bugs::bug_catalogue()) {
    if (b.id == id) return b;
  }
  throw std::out_of_range("no bug " + id);
}

void show(const std::string& id) {
  const bugs::BugSpec& bug = by_id(id);
  std::printf("\n[%s] %s\n", bug.id.c_str(), bug.name.c_str());
  std::printf("    %s\n", bug.description.c_str());
  std::printf("    category: %s, severity: %s\n",
              std::string(bugs::to_string(bug.category)).c_str(),
              std::string(dev::to_string(bug.severity)).c_str());
  for (core::Variant v :
       {core::Variant::Initial, core::Variant::Modified, core::Variant::ModifiedWithSim}) {
    bugs::BugOutcome outcome = bugs::evaluate_bug(bug, v);
    std::printf("    %-13s: ", std::string(core::to_string(v)).c_str());
    if (outcome.detected) {
      std::printf("BLOCKED by rule %s before any damage\n", outcome.alert_rule.c_str());
    } else if (outcome.damaged) {
      std::printf("MISSED — ");
      bool first = true;
      for (const sim::DamageEvent& e : outcome.report.damage) {
        if (!first) std::printf("; ");
        first = false;
        std::printf("%s", e.description.c_str());
      }
      std::printf("\n");
    } else {
      std::printf("no alert, no damage\n");
    }
  }
}

}  // namespace

int main() {
  std::printf("== the introduced bugs of Section IV, replayed per RABIT variant ==\n");
  std::printf("(initial = device cuboids only; modified = + platform/walls,\n");
  std::printf(" held-object dimensions, multiplexing; modified+sim = + Extended\n");
  std::printf(" Simulator trajectory replay)\n");

  show("H1");   // Bug A
  show("M1");   // Bug B
  show("L2");   // Bug C
  show("L3");   // Bug C variant: reordered gripper commands
  show("M2");   // Bug D, empty hand
  show("M3");   // Bug D, holding a vial
  show("M4");   // footnote 2: silent skip
  show("M6");   // the frame-misalignment blind spot

  std::printf("\nsummary across the full 16-bug catalogue:\n");
  for (core::Variant v :
       {core::Variant::Initial, core::Variant::Modified, core::Variant::ModifiedWithSim}) {
    int detected = 0;
    for (const bugs::BugSpec& bug : bugs::bug_catalogue()) {
      if (bugs::evaluate_bug(bug, v).detected) ++detected;
    }
    std::printf("  %-13s: %d/16 detected (%.0f%%)\n", std::string(core::to_string(v)).c_str(),
                detected, detected * 100.0 / 16);
  }
  std::printf("paper: 8/16 (50%%), 12/16 (75%%), 13/16 (81%%)\n");
  return 0;
}
