#include "fleet/fleet.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <optional>
#include <thread>

#include "script/workflows.hpp"
#include "sim/deck.hpp"

namespace rabit::fleet {

StreamSpec testbed_stream(std::string name, core::Variant variant, unsigned seed,
                          const core::HotPathConfig& hot_path) {
  StreamSpec spec;
  spec.name = std::move(name);
  spec.variant = variant;
  spec.seed = seed;
  spec.hot_path = hot_path;
  // Record against a staging deck so the stream's own backend starts pristine
  // (recording interprets the workflow, which mutates device state).
  sim::LabBackend staging(sim::testbed_profile(), seed);
  sim::build_hein_testbed_deck(staging);
  spec.commands = script::record_workflow(staging, script::testbed_workflow_source());
  return spec;
}

LatencySummary summarize_latencies(std::vector<double> latencies_us) {
  LatencySummary s;
  s.samples = latencies_us.size();
  if (latencies_us.empty()) return s;
  std::sort(latencies_us.begin(), latencies_us.end());
  // One shared implementation of the nearest-rank convention (see the
  // LatencySummary doc comment): obs::nearest_rank clamps the rank into
  // [1, N], fixing the unclamped ceil's latent out-of-range read when
  // floating-point round-up pushes q * N past N.
  s.p50_us = obs::nearest_rank(latencies_us, 0.50);
  s.p90_us = obs::nearest_rank(latencies_us, 0.90);
  s.p99_us = obs::nearest_rank(latencies_us, 0.99);
  s.max_us = latencies_us.back();
  return s;
}

StreamResult FleetRunner::run_stream(const StreamSpec& spec) {
  // Mirrors bugs::evaluate_stream: a fresh testbed deck, a config derived
  // from it, and (for V3) an Extended Simulator over the configured world.
  sim::LabBackend backend(sim::testbed_profile(), spec.seed);
  sim::build_hein_testbed_deck(backend);
  core::EngineConfig config = core::config_from_backend(backend, spec.variant);

  std::optional<sim::ExtendedSimulator> simulator;
  if (spec.variant == core::Variant::ModifiedWithSim) {
    sim::WorldModel world = sim::deck_world_model(backend);
    for (const core::DeviceMeta& m : config.devices) {
      if (m.is_arm && m.sleep_box) {
        world.add_box(m.id, *m.sleep_box, sim::ObstacleKind::ParkedArm);
      }
    }
    // Shelf rack at x >= 8 m — outside every testbed motion path, so these
    // boxes never collide; they only grow the set the narrow phase must scan.
    for (std::size_t i = 0; i < spec.extra_obstacles; ++i) {
      double x = 8.0 + 0.3 * static_cast<double>(i % 20);
      double y = 0.3 * static_cast<double>((i / 20) % 20);
      double z = 0.3 * static_cast<double>(i / 400);
      world.add_box("shelf-" + std::to_string(i),
                    geom::Aabb(geom::Vec3(x, y, z), geom::Vec3(x + 0.25, y + 0.25, z + 0.25)),
                    sim::ObstacleKind::Equipment);
    }
    sim::ExtendedSimulator::Options sim_options;
    sim_options.use_broad_phase = spec.hot_path.broad_phase;
    sim_options.use_verdict_cache = spec.hot_path.verdict_cache;
    simulator.emplace(std::move(world), sim_options);
    simulator->set_arm_state_provider(
        [&backend](std::string_view arm_id) -> std::optional<geom::Vec3> {
          const auto* arm =
              dynamic_cast<const dev::RobotArmDevice*>(backend.registry().find(arm_id));
          if (arm == nullptr) return std::nullopt;
          return arm->position_lab();
        });
  }

  core::RabitEngine engine(std::move(config), spec.hot_path);
  if (simulator) engine.attach_simulator(&*simulator);

  StreamResult result;
  result.name = spec.name;
  result.seed = spec.seed;

  trace::Supervisor::Options sup_options;
  sup_options.halt_on_alert = spec.halt_on_alert;
  if (spec.obs) {
    // Sharded sinks: each stream observes into its own collector/registry,
    // so workers never contend (or race) on observability state; the fleet
    // merges them at join, in spec order.
    result.obs_events = std::make_shared<obs::Collector>();
    result.obs_metrics = std::make_shared<obs::Registry>();
    sup_options.obs_sink = result.obs_events.get();
    sup_options.obs_metrics = result.obs_metrics.get();
    sup_options.obs_stream = spec.name;
  }
  trace::Supervisor supervisor(&engine, &backend, sup_options);

  result.report = supervisor.run(spec.commands);
  result.engine_stats = engine.stats();
  result.trace_jsonl = supervisor.log().to_jsonl();
  result.check_wall_s = result.report.check_wall_s;
  return result;
}

FleetReport FleetRunner::run(const std::vector<StreamSpec>& streams) const {
  FleetReport report;
  report.streams.resize(streams.size());
  if (streams.empty()) return report;

  std::size_t workers = std::max<std::size_t>(1, std::min(options_.workers, streams.size()));

  auto t0 = std::chrono::steady_clock::now();
  // Work-stealing by atomic index: each worker claims the next unstarted
  // stream. Results land in per-stream slots, so the outcome is independent
  // of which worker ran what and in what order.
  std::atomic<std::size_t> next{0};
  auto worker_loop = [&] {
    for (;;) {
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= streams.size()) return;
      report.streams[i] = run_stream(streams[i]);
    }
  };
  if (workers == 1) {
    worker_loop();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker_loop);
    for (std::thread& t : pool) t.join();
  }
  auto t1 = std::chrono::steady_clock::now();
  report.wall_s = std::chrono::duration<double>(t1 - t0).count();

  // Deterministic observability merge: stream-spec order, never finish
  // order, so the combined export bytes are independent of the worker count
  // and of scheduler interleaving.
  for (const StreamResult& s : report.streams) {
    if (s.obs_events == nullptr) continue;
    if (report.obs_events == nullptr) {
      report.obs_events = std::make_shared<obs::Collector>();
      report.obs_metrics = std::make_shared<obs::Registry>();
    }
    report.obs_events->merge_from(*s.obs_events);
    report.obs_metrics->merge_from(*s.obs_metrics);
  }
  if (report.obs_metrics != nullptr) {
    report.obs_metrics
        ->gauge("rabit_fleet_streams", "", "Streams this fleet report aggregates")
        .add(static_cast<double>(report.streams.size()));
  }

  std::vector<double> latencies_us;
  for (const StreamResult& s : report.streams) {
    const core::RabitEngine::Stats& st = s.engine_stats;
    report.totals.commands_checked += st.commands_checked;
    report.totals.precondition_alerts += st.precondition_alerts;
    report.totals.trajectory_alerts += st.trajectory_alerts;
    report.totals.malfunction_alerts += st.malfunction_alerts;
    report.totals.trajectory_checks += st.trajectory_checks;
    report.totals.degraded_checks += st.degraded_checks;
    report.totals.status_repolls += st.status_repolls;
    report.totals.resyncs += st.resyncs;
    report.commands_checked += st.commands_checked;
    report.alerts += s.report.alerts;
    for (const trace::SupervisedStep& step : s.report.steps) {
      if (step.check_wall_us > 0) latencies_us.push_back(step.check_wall_us);
    }
  }
  report.check_latency = summarize_latencies(std::move(latencies_us));
  if (report.wall_s > 0) {
    report.commands_per_s = static_cast<double>(report.commands_checked) / report.wall_s;
  }
  return report;
}

}  // namespace rabit::fleet
