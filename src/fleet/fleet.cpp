#include "fleet/fleet.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <random>
#include <set>
#include <stdexcept>
#include <thread>

#include "script/workflows.hpp"
#include "sim/deck.hpp"
#include "sim/pose_board.hpp"

namespace rabit::fleet {

StreamSpec testbed_stream(std::string name, core::Variant variant, unsigned seed,
                          const core::HotPathConfig& hot_path) {
  StreamSpec spec;
  spec.name = std::move(name);
  spec.variant = variant;
  spec.seed = seed;
  spec.hot_path = hot_path;
  // Record against a staging deck so the stream's own backend starts pristine
  // (recording interprets the workflow, which mutates device state).
  sim::LabBackend staging(sim::testbed_profile(), seed);
  sim::build_hein_testbed_deck(staging);
  spec.commands = script::record_workflow(staging, script::testbed_workflow_source());
  return spec;
}

LatencySummary summarize_latencies(std::vector<double> latencies_us) {
  LatencySummary s;
  s.samples = latencies_us.size();
  if (latencies_us.empty()) return s;
  std::sort(latencies_us.begin(), latencies_us.end());
  // One shared implementation of the nearest-rank convention (see the
  // LatencySummary doc comment): obs::nearest_rank clamps the rank into
  // [1, N], fixing the unclamped ceil's latent out-of-range read when
  // floating-point round-up pushes q * N past N.
  s.p50_us = obs::nearest_rank(latencies_us, 0.50);
  s.p90_us = obs::nearest_rank(latencies_us, 0.90);
  s.p99_us = obs::nearest_rank(latencies_us, 0.99);
  s.p999_us = obs::nearest_rank(latencies_us, 0.999);
  s.max_us = latencies_us.back();
  return s;
}

StreamResult FleetRunner::run_stream(const StreamSpec& spec) {
  // Mirrors bugs::evaluate_stream: a fresh testbed deck, a config derived
  // from it, and (for V3) an Extended Simulator over the configured world.
  sim::LabBackend backend(sim::testbed_profile(), spec.seed);
  sim::build_hein_testbed_deck(backend);
  core::EngineConfig config = core::config_from_backend(backend, spec.variant);

  std::optional<sim::ExtendedSimulator> simulator;
  if (spec.variant == core::Variant::ModifiedWithSim) {
    sim::WorldModel world = sim::deck_world_model(backend);
    for (const core::DeviceMeta& m : config.devices) {
      if (m.is_arm && m.sleep_box) {
        world.add_box(m.id, *m.sleep_box, sim::ObstacleKind::ParkedArm);
      }
    }
    // Shelf rack at x >= 8 m — outside every testbed motion path, so these
    // boxes never collide; they only grow the set the narrow phase must scan.
    for (std::size_t i = 0; i < spec.extra_obstacles; ++i) {
      double x = 8.0 + 0.3 * static_cast<double>(i % 20);
      double y = 0.3 * static_cast<double>((i / 20) % 20);
      double z = 0.3 * static_cast<double>(i / 400);
      world.add_box("shelf-" + std::to_string(i),
                    geom::Aabb(geom::Vec3(x, y, z), geom::Vec3(x + 0.25, y + 0.25, z + 0.25)),
                    sim::ObstacleKind::Equipment);
    }
    sim::ExtendedSimulator::Options sim_options;
    sim_options.use_broad_phase = spec.hot_path.broad_phase;
    sim_options.use_verdict_cache = spec.hot_path.verdict_cache;
    simulator.emplace(std::move(world), sim_options);
    simulator->set_arm_state_provider(
        [&backend](std::string_view arm_id) -> std::optional<geom::Vec3> {
          const auto* arm =
              dynamic_cast<const dev::RobotArmDevice*>(backend.registry().find(arm_id));
          if (arm == nullptr) return std::nullopt;
          return arm->position_lab();
        });
  }

  core::RabitEngine engine(std::move(config), spec.hot_path);
  if (simulator) engine.attach_simulator(&*simulator);

  StreamResult result;
  result.name = spec.name;
  result.seed = spec.seed;

  trace::Supervisor::Options sup_options;
  sup_options.halt_on_alert = spec.halt_on_alert;
  if (spec.assurance) sup_options.assurance = assurance::AssuranceConfig{};
  if (spec.obs) {
    // Sharded sinks: each stream observes into its own collector/registry,
    // so workers never contend (or race) on observability state; the fleet
    // merges them at join, in spec order.
    result.obs_events = std::make_shared<obs::Collector>();
    result.obs_metrics = std::make_shared<obs::Registry>();
    sup_options.obs_sink = result.obs_events.get();
    sup_options.obs_metrics = result.obs_metrics.get();
    sup_options.obs_stream = spec.name;
  }
  trace::Supervisor supervisor(&engine, &backend, sup_options);

  result.report = supervisor.run(spec.commands);
  result.engine_stats = engine.stats();
  result.trace_jsonl = supervisor.log().to_jsonl();
  result.check_wall_s = result.report.check_wall_s;
  return result;
}

// ---------------------------------------------------------------------------
// Shared-lab campaigns
// ---------------------------------------------------------------------------

namespace {

/// Builds a campaign lab deck: the spec's custom builder, or the standard
/// Hein testbed when none was given.
void build_campaign_deck(const CampaignSpec& spec, sim::LabBackend& backend) {
  if (spec.deck) {
    spec.deck(backend);
  } else {
    sim::build_hein_testbed_deck(backend);
  }
}

/// One fully assembled campaign lab (backend + optional V3 simulator +
/// engine), used for the shared interleaved run, each shard, and each solo
/// baseline. Construct in place and do not move: the simulator's arm-state
/// provider captures the backend by address.
struct Lab {
  sim::LabBackend backend;
  std::optional<sim::ExtendedSimulator> simulator;
  std::optional<core::RabitEngine> engine;

  explicit Lab(const CampaignSpec& spec) : backend(sim::testbed_profile(), spec.seed) {
    build_campaign_deck(spec, backend);
    core::Variant variant = spec.variant;
    core::EngineConfig config = core::config_from_backend(backend, variant);
    if (variant == core::Variant::ModifiedWithSim) {
      sim::WorldModel world = sim::deck_world_model(backend);
      for (const core::DeviceMeta& m : config.devices) {
        if (m.is_arm && m.sleep_box) {
          world.add_box(m.id, *m.sleep_box, sim::ObstacleKind::ParkedArm);
        }
      }
      simulator.emplace(std::move(world), sim::ExtendedSimulator::Options{});
      simulator->set_arm_state_provider(
          [this](std::string_view arm_id) -> std::optional<geom::Vec3> {
            const auto* arm =
                dynamic_cast<const dev::RobotArmDevice*>(backend.registry().find(arm_id));
            if (arm == nullptr) return std::nullopt;
            return arm->position_lab();
          });
    }
    engine.emplace(std::move(config), core::HotPathConfig{});
    if (simulator) engine->attach_simulator(&*simulator);
  }
};

/// Resolves a campaign stream to concrete commands: script streams are
/// recorded against a pristine staging lab (same convention as
/// testbed_stream), command streams pass through.
std::vector<dev::Command> campaign_commands(const CampaignSpec& spec,
                                            const CampaignStreamSpec& stream) {
  if (!stream.commands.empty() || stream.script.empty()) return stream.commands;
  sim::LabBackend staging(sim::testbed_profile(), spec.seed);
  build_campaign_deck(spec, staging);
  return script::record_workflow(staging, stream.script);
}

std::vector<std::vector<dev::Command>> resolve_campaign(const CampaignSpec& spec) {
  std::vector<std::vector<dev::Command>> commands;
  commands.reserve(spec.streams.size());
  for (const CampaignStreamSpec& s : spec.streams) {
    commands.push_back(campaign_commands(spec, s));
  }
  return commands;
}

/// The deterministic seeded interleaving: each dispatch slot picks uniformly
/// among the streams that still have commands. Depends only on (stream
/// lengths, seed), so a failing campaign replays from its seed — and the
/// sharded mode can recompute the identical global order and filter it.
std::vector<std::pair<std::size_t, std::size_t>> make_schedule(
    const std::vector<std::vector<dev::Command>>& commands, unsigned seed) {
  std::vector<std::pair<std::size_t, std::size_t>> schedule;
  std::mt19937 rng(seed);
  std::vector<std::size_t> cursor(commands.size(), 0);
  std::vector<std::size_t> live;
  for (std::size_t i = 0; i < commands.size(); ++i) {
    if (!commands[i].empty()) live.push_back(i);
  }
  while (!live.empty()) {
    std::size_t pick = live.size() == 1
                           ? 0
                           : std::uniform_int_distribution<std::size_t>(0, live.size() - 1)(rng);
    std::size_t s = live[pick];
    schedule.emplace_back(s, cursor[s]);
    if (++cursor[s] >= commands[s].size()) live.erase(live.begin() + static_cast<long>(pick));
  }
  return schedule;
}

/// Solo baselines: each alerted stream alone on an identical fresh lab. An
/// alert present in the shared (or shard) run but absent at the same
/// (command index, rule) solo can only come from what other streams did to
/// the shared state.
void classify_against_solo(const CampaignSpec& spec,
                           const std::vector<std::vector<dev::Command>>& commands,
                           CampaignReport& report) {
  for (std::size_t s = 0; s < commands.size(); ++s) {
    bool any = false;
    for (const CampaignAlert& a : report.alerts) any = any || a.stream == s;
    if (!any) continue;
    Lab solo(spec);
    trace::Supervisor::Options solo_options;
    solo_options.halt_on_alert = false;
    trace::Supervisor solo_supervisor(&*solo.engine, &solo.backend, solo_options);
    trace::RunReport solo_report = solo_supervisor.run(commands[s]);
    std::set<std::pair<std::size_t, std::string>> solo_alerts;
    for (std::size_t k = 0; k < solo_report.steps.size(); ++k) {
      if (solo_report.steps[k].alert) solo_alerts.emplace(k, solo_report.steps[k].alert->rule);
    }
    for (CampaignAlert& a : report.alerts) {
      if (a.stream != s) continue;
      a.cross_stream = !solo_alerts.contains({a.command_index, a.alert.rule});
    }
  }
}

}  // namespace

std::size_t CampaignReport::cross_stream_alerts() const {
  std::size_t n = 0;
  for (const CampaignAlert& a : alerts) {
    if (a.cross_stream) ++n;
  }
  return n;
}

CampaignReport Fleet::run_campaign(const CampaignSpec& spec) {
  CampaignReport report;
  std::vector<std::vector<dev::Command>> commands = resolve_campaign(spec);
  report.schedule = make_schedule(commands, spec.seed);

  // The interleaved run on ONE shared lab: every stream's commands hit the
  // same backend, engine, and tracker. Alerted commands are blocked (never
  // forwarded) and, unless halt_on_alert, the campaign continues.
  Lab lab(spec);
  trace::Supervisor::Options options;
  options.halt_on_alert = spec.halt_on_alert;
  trace::Supervisor supervisor(&*lab.engine, &lab.backend, options);
  supervisor.start();
  for (const auto& [s, k] : report.schedule) {
    trace::SupervisedStep step = supervisor.step(commands[s][k]);
    ++report.commands_checked;
    if (step.alert) report.alerts.push_back(CampaignAlert{s, k, *step.alert, false});
    if (supervisor.halted()) break;
  }

  classify_against_solo(spec, commands, report);
  return report;
}

CampaignReport Fleet::run(const CampaignSpec& spec, const ShardedCampaignOptions& options,
                          analysis::ShardPlan* plan_out) {
  // The default execution model: static shard planning first, then the
  // plan-driven hot path. An unshardable campaign yields a 1-shard plan and
  // degenerates to the monolithic schedule through the same machinery.
  std::vector<std::vector<dev::Command>> commands = resolve_campaign(spec);
  sim::LabBackend probe(sim::testbed_profile(), spec.seed);
  build_campaign_deck(spec, probe);
  core::EngineConfig config = core::config_from_backend(probe, spec.variant);
  std::vector<analysis::CampaignStream> planned;
  planned.reserve(spec.streams.size());
  for (std::size_t i = 0; i < spec.streams.size(); ++i) {
    planned.push_back(analysis::CampaignStream{spec.streams[i].name, commands[i]});
  }
  analysis::ShardPlan plan = analysis::plan_campaign_shards(config, planned);
  if (plan_out != nullptr) *plan_out = plan;
  return run_campaign(spec, plan, options);
}

CampaignReport Fleet::run_campaign(const CampaignSpec& spec, const analysis::ShardPlan& plan,
                                   const ShardedCampaignOptions& options) {
  if (plan.stream_names.size() != spec.streams.size() || plan.shards.empty()) {
    throw std::runtime_error("sharded campaign: plan covers " +
                             std::to_string(plan.stream_names.size()) + " stream(s), spec has " +
                             std::to_string(spec.streams.size()));
  }
  CampaignReport report;
  report.shards = plan.shards.size();
  std::vector<std::vector<dev::Command>> commands = resolve_campaign(spec);
  report.schedule = make_schedule(commands, spec.seed);

  // Arm inventory and campaign-start poses from a pristine probe lab: these
  // seed the epoch-versioned pose board every shard publishes to and reads
  // from. Epoch 1 is the campaign-start pose; each publish advances the
  // arm's slot by one epoch.
  std::map<std::string, geom::Vec3, std::less<>> initial_poses;
  std::set<std::string, std::less<>> arm_ids;
  {
    sim::LabBackend probe(sim::testbed_profile(), spec.seed);
    build_campaign_deck(spec, probe);
    core::EngineConfig probe_config = core::config_from_backend(probe, spec.variant);
    for (const core::DeviceMeta& m : probe_config.devices) {
      if (!m.is_arm) continue;
      arm_ids.insert(m.id);
      const auto* arm = dynamic_cast<const dev::RobotArmDevice*>(probe.registry().find(m.id));
      if (arm != nullptr) initial_poses.emplace(m.id, arm->position_lab());
    }
  }
  sim::PoseBoard board(initial_poses);
  std::vector<std::string> board_arms;
  for (const auto& [arm, pose] : initial_poses) board_arms.push_back(arm);

  // Stream -> shard, each device's claiming shards, and each arm's
  // commanding streams — the inputs for deciding what stays lock-free.
  std::vector<std::size_t> shard_of(spec.streams.size(), 0);
  for (std::size_t k = 0; k < plan.shards.size(); ++k) {
    for (std::size_t s : plan.shards[k].streams) {
      if (s < shard_of.size()) shard_of[s] = k;
    }
  }
  std::map<std::string, std::set<std::size_t>, std::less<>> device_shards;
  std::map<std::string, std::set<std::size_t>, std::less<>> arm_owner_streams;
  for (std::size_t s = 0; s < commands.size(); ++s) {
    for (const dev::Command& c : commands[s]) {
      device_shards[c.device].insert(shard_of[s]);
      if (arm_ids.contains(c.device)) arm_owner_streams[c.device].insert(s);
    }
  }
  std::set<std::pair<std::size_t, std::size_t>> certified;
  for (const analysis::IndependenceCertificate& c : plan.certificates) {
    certified.emplace(std::min(c.a, c.b), std::max(c.a, c.b));
  }

  // The explicit coordination path. Devices claimed by two or more shards,
  // and arms some shard must read without a covering certificate, must not
  // run lock-free: steps on such a device and pose reads of such an arm
  // serialize through ONE recursive rendezvous mutex. One mutex, not
  // per-name: a step can nest an uncovered-arm read inside an
  // uncovered-device step (the motion observer fires mid-check), and two
  // shards nesting different names in opposite orders would deadlock;
  // recursive, because that nesting re-enters from the same thread. Under
  // any planner-produced plan the coordinated set is empty (SharedDevice
  // evidence forbids split claims and the certificate list is complete), so
  // the mutex is only ever touched by hand-built plans.
  std::recursive_mutex rendezvous_mutex;
  std::set<std::string, std::less<>> rendezvous;
  // uncovered[k]: arms shard k may read only via the coordination path.
  std::vector<std::set<std::string, std::less<>>> uncovered(plan.shards.size());
  for (std::size_t k = 0; k < plan.shards.size(); ++k) {
    const std::vector<std::size_t>& members = plan.shards[k].streams;
    for (const auto& [arm, owners] : arm_owner_streams) {
      bool in_shard = false;
      for (std::size_t o : owners) in_shard = in_shard || shard_of[o] == k;
      if (in_shard) continue;  // shard's own arm: read live from its backend
      bool covered = true;
      for (std::size_t o : owners) {
        for (std::size_t m : members) {
          covered = covered &&
                    certified.count({std::min(m, o), std::max(m, o)}) != 0;
        }
      }
      if (!covered) {
        uncovered[k].insert(arm);
        rendezvous.insert(arm);
      }
    }
  }
  for (const auto& [device, claimants] : device_shards) {
    if (claimants.size() >= 2) rendezvous.insert(device);
  }

  struct ShardOutcome {
    std::vector<CampaignAlert> alerts;
    std::size_t commands_checked = 0;
    std::size_t snapshot_serves = 0;
    std::size_t coordination = 0;
    std::vector<double> latencies_us;
    std::vector<std::string> breaches;
    std::shared_ptr<obs::Collector> obs_events;
    std::shared_ptr<obs::Registry> obs_metrics;
  };
  std::vector<ShardOutcome> outcomes(plan.shards.size());

  auto run_shard = [&](std::size_t shard_index) {
    const std::vector<std::size_t>& members = plan.shards[shard_index].streams;
    std::set<std::size_t> member_set(members.begin(), members.end());
    // Arms this shard itself commands: their poses are served live from the
    // shard's own backend; every other arm comes from the pose board.
    std::set<std::string, std::less<>> shard_arms;
    for (std::size_t s : members) {
      if (s >= commands.size()) continue;
      for (const dev::Command& c : commands[s]) {
        if (arm_ids.contains(c.device)) shard_arms.insert(c.device);
      }
    }
    const std::set<std::string, std::less<>>& coordinated_arms = uncovered[shard_index];
    ShardOutcome& outcome = outcomes[shard_index];

    obs::Counter* serves_counter = nullptr;
    obs::Counter* coordination_counter = nullptr;
    obs::Counter* breach_counter = nullptr;
    obs::Histogram* lag_hist = nullptr;
    if (options.obs) {
      outcome.obs_events = std::make_shared<obs::Collector>();
      outcome.obs_metrics = std::make_shared<obs::Registry>();
      std::string shard_label = "shard=\"" + std::to_string(shard_index) + "\"";
      serves_counter = &outcome.obs_metrics->counter(
          "rabit_snapshot_pose_serves_total", shard_label,
          "Out-of-shard arm poses served from the epoch-versioned pose board");
      coordination_counter = &outcome.obs_metrics->counter(
          "rabit_shard_coordination_total", shard_label,
          "Cross-shard rendezvous acquisitions (the explicit non-lock-free path)");
      breach_counter = &outcome.obs_metrics->counter(
          "rabit_snapshot_envelope_breaches_total", shard_label,
          "Live out-of-shard poses observed outside their certified envelope");
      // Wall-clock/timing-dependent by nature, so registry-only (never in
      // event exports), per the obs determinism contract.
      lag_hist = &outcome.obs_metrics->histogram(
          "rabit_snapshot_epoch_lag",
          "Publications an arm's board slot advanced between this shard's samples",
          std::vector<double>{0, 1, 2, 4, 8, 16, 32, 64, 128, 256});
    }

    // One board read, with the covered/uncovered split and the runtime
    // certificate audit: any live pose outside the envelope its
    // certificates assumed is recorded as a breach — the exact evidence
    // that a stale snapshot could have changed a verdict.
    std::map<std::string, std::uint64_t, std::less<>> last_seen;
    auto read_board = [&](const std::string& arm) -> std::optional<sim::PoseSlot::Snapshot> {
      std::optional<sim::PoseSlot::Snapshot> snap;
      if (coordinated_arms.contains(arm)) {
        std::lock_guard<std::recursive_mutex> lock(rendezvous_mutex);
        ++outcome.coordination;
        if (coordination_counter != nullptr) coordination_counter->increment();
        snap = board.read(arm);
      } else {
        snap = board.read(arm);
      }
      if (!snap) return snap;
      ++outcome.snapshot_serves;
      if (serves_counter != nullptr) serves_counter->increment();
      std::uint64_t& seen = last_seen[arm];
      if (lag_hist != nullptr) {
        lag_hist->observe(snap->epoch > seen ? static_cast<double>(snap->epoch - seen) : 0.0);
      }
      seen = snap->epoch;
      auto env = plan.arm_envelopes.find(arm);
      if (env != plan.arm_envelopes.end() && !env->second.contains(snap->pose)) {
        outcome.breaches.push_back(
            "shard " + std::to_string(shard_index) + ": arm '" + arm + "' observed at (" +
            std::to_string(snap->pose.x) + ", " + std::to_string(snap->pose.y) + ", " +
            std::to_string(snap->pose.z) + ") epoch " + std::to_string(snap->epoch) +
            " outside its certified envelope — a certificate margin was violated");
        if (breach_counter != nullptr) breach_counter->increment();
      }
      return snap;
    };

    Lab lab(spec);
    if (lab.simulator) {
      lab.simulator->set_arm_state_provider(
          [&](std::string_view arm_id) -> std::optional<geom::Vec3> {
            if (!shard_arms.contains(arm_id)) {
              auto snap = read_board(std::string(arm_id));
              if (!snap) return std::nullopt;
              return snap->pose;
            }
            const auto* arm =
                dynamic_cast<const dev::RobotArmDevice*>(lab.backend.registry().find(arm_id));
            if (arm == nullptr) return std::nullopt;
            return arm->position_lab();
          });
    }
    // The runtime certificate monitor: every V3 trajectory check samples the
    // live snapshot of every out-of-shard arm and audits it against
    // ShardPlan::arm_envelopes. While no breach is recorded, every pose the
    // certificates reasoned about stayed inside its envelope, so the
    // lock-free (possibly stale) snapshot could not have changed this
    // check's verdict.
    lab.engine->set_motion_observer([&](const core::MotionAnalysis&) {
      for (const std::string& arm : board_arms) {
        if (shard_arms.contains(arm)) continue;
        (void)read_board(arm);
      }
    });

    trace::Supervisor::Options sup_options;
    sup_options.halt_on_alert = spec.halt_on_alert;  // shard-local halt
    if (options.obs) {
      sup_options.obs_sink = outcome.obs_events.get();
      sup_options.obs_metrics = outcome.obs_metrics.get();
      sup_options.obs_stream = "shard-" + std::to_string(shard_index);
    }
    trace::Supervisor supervisor(&*lab.engine, &lab.backend, sup_options);
    supervisor.start();
    for (const auto& [s, k] : report.schedule) {
      if (!member_set.contains(s)) continue;
      const dev::Command& cmd = commands[s][k];
      trace::SupervisedStep step;
      if (rendezvous.contains(cmd.device)) {
        // Coordination path: this device cannot run lock-free — serialize
        // the whole step against its cross-shard peers.
        std::lock_guard<std::recursive_mutex> lock(rendezvous_mutex);
        ++outcome.coordination;
        if (coordination_counter != nullptr) coordination_counter->increment();
        step = supervisor.step(cmd);
      } else {
        step = supervisor.step(cmd);
      }
      ++outcome.commands_checked;
      if (step.check_wall_us > 0) outcome.latencies_us.push_back(step.check_wall_us);
      if (step.alert) outcome.alerts.push_back(CampaignAlert{s, k, *step.alert, false});
      if (options.publish_poses && shard_arms.contains(cmd.device)) {
        const auto* arm =
            dynamic_cast<const dev::RobotArmDevice*>(lab.backend.registry().find(cmd.device));
        if (arm != nullptr) board.publish(cmd.device, arm->position_lab());
      }
      if (supervisor.halted()) break;
    }
  };

  // Shards share no mutable lab state (the pose board and rendezvous table
  // are the two designed exceptions): run them across a worker pool with
  // the same atomic-index work claiming as FleetRunner. Results land in
  // per-shard slots, so the outcome is worker-count-independent.
  std::size_t workers =
      std::max<std::size_t>(1, std::min(options.workers, plan.shards.size()));
  auto t0 = std::chrono::steady_clock::now();
  if (workers == 1) {
    for (std::size_t k = 0; k < plan.shards.size(); ++k) run_shard(k);
  } else {
    std::atomic<std::size_t> next{0};
    auto worker_loop = [&] {
      for (;;) {
        std::size_t k = next.fetch_add(1, std::memory_order_relaxed);
        if (k >= plan.shards.size()) return;
        run_shard(k);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker_loop);
    for (std::thread& t : pool) t.join();
  }
  auto t1 = std::chrono::steady_clock::now();
  report.wall_s = std::chrono::duration<double>(t1 - t0).count();

  // Deterministic merge: per-shard slots combined in shard-index order;
  // alerts then sorted by global schedule position, never finish order.
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> position;
  for (std::size_t i = 0; i < report.schedule.size(); ++i) position[report.schedule[i]] = i;
  std::vector<double> latencies_us;
  for (const ShardOutcome& outcome : outcomes) {
    report.commands_checked += outcome.commands_checked;
    report.snapshot_pose_serves += outcome.snapshot_serves;
    report.coordination_events += outcome.coordination;
    report.alerts.insert(report.alerts.end(), outcome.alerts.begin(), outcome.alerts.end());
    report.certificate_breaches.insert(report.certificate_breaches.end(),
                                       outcome.breaches.begin(), outcome.breaches.end());
    latencies_us.insert(latencies_us.end(), outcome.latencies_us.begin(),
                        outcome.latencies_us.end());
    if (outcome.obs_events != nullptr) {
      if (report.obs_events == nullptr) {
        report.obs_events = std::make_shared<obs::Collector>();
        report.obs_metrics = std::make_shared<obs::Registry>();
      }
      report.obs_events->merge_from(*outcome.obs_events);
      report.obs_metrics->merge_from(*outcome.obs_metrics);
    }
  }
  std::sort(report.alerts.begin(), report.alerts.end(),
            [&position](const CampaignAlert& a, const CampaignAlert& b) {
              return position[{a.stream, a.command_index}] < position[{b.stream, b.command_index}];
            });
  report.check_latency = summarize_latencies(std::move(latencies_us));
  if (report.wall_s > 0) {
    report.commands_per_s = static_cast<double>(report.commands_checked) / report.wall_s;
  }

  classify_against_solo(spec, commands, report);

  if (options.validate_certificates) {
    CampaignReport monolithic = run_campaign(spec);
    report.oracle_violations = certificate_violations(plan, monolithic, report);
  }
  return report;
}

std::vector<std::string> certificate_violations(const analysis::ShardPlan& plan,
                                                const CampaignReport& monolithic,
                                                const CampaignReport& sharded) {
  std::vector<std::string> out;
  auto stream_name = [&plan](std::size_t s) {
    return s < plan.stream_names.size() ? plan.stream_names[s] : "#" + std::to_string(s);
  };
  auto alert_set = [](const CampaignReport& r, std::size_t s) {
    std::set<std::pair<std::size_t, std::string>> alerts;
    for (const CampaignAlert& a : r.alerts) {
      if (a.stream == s) alerts.emplace(a.command_index, a.alert.rule);
    }
    return alerts;
  };
  for (std::size_t s = 0; s < plan.stream_names.size(); ++s) {
    std::set<std::pair<std::size_t, std::string>> mono = alert_set(monolithic, s);
    std::set<std::pair<std::size_t, std::string>> shard = alert_set(sharded, s);
    if (mono == shard) continue;
    std::string diff;
    for (const auto& [k, rule] : mono) {
      if (!shard.contains({k, rule})) {
        diff += " monolithic-only (cmd " + std::to_string(k) + ", " + rule + ")";
      }
    }
    for (const auto& [k, rule] : shard) {
      if (!mono.contains({k, rule})) {
        diff += " sharded-only (cmd " + std::to_string(k) + ", " + rule + ")";
      }
    }
    out.push_back("stream '" + stream_name(s) +
                  "': verdicts diverge between the monolithic and plan-driven runs —" + diff +
                  " — an out-of-shard stream observably influenced it");
  }
  for (const analysis::Shard& shard : plan.shards) {
    if (shard.streams.size() != 1) continue;
    std::size_t s = shard.streams.front();
    for (const CampaignReport* r : {&monolithic, &sharded}) {
      for (const CampaignAlert& a : r->alerts) {
        if (a.stream != s || !a.cross_stream) continue;
        out.push_back("certified-independent stream '" + stream_name(s) +
                      "' raised a cross-stream alert (cmd " + std::to_string(a.command_index) +
                      ", " + a.alert.rule + ") in the " +
                      (r == &monolithic ? "monolithic" : "plan-driven") + " run");
      }
    }
  }
  return out;
}

CampaignSpec load_campaign(const json::Value& doc) {
  if (!doc.is_object()) throw std::runtime_error("campaign: document must be a JSON object");
  CampaignSpec spec;
  if (const json::Value* seed = doc.find("seed")) {
    if (!seed->is_number()) throw std::runtime_error("campaign: 'seed' must be a number");
    spec.seed = static_cast<unsigned>(seed->as_double());
  }
  if (const json::Value* variant = doc.find("variant")) {
    if (!variant->is_string()) throw std::runtime_error("campaign: 'variant' must be a string");
    const std::string& v = variant->as_string();
    if (v == "initial") {
      spec.variant = core::Variant::Initial;
    } else if (v == "modified") {
      spec.variant = core::Variant::Modified;
    } else if (v == "modified+sim") {
      spec.variant = core::Variant::ModifiedWithSim;
    } else {
      throw std::runtime_error("campaign: unknown variant '" + v + "'");
    }
  }
  if (const json::Value* halt = doc.find("halt_on_alert")) {
    if (!halt->is_bool()) throw std::runtime_error("campaign: 'halt_on_alert' must be a bool");
    spec.halt_on_alert = halt->as_bool();
  }
  const json::Value* streams = doc.find("streams");
  if (streams == nullptr || !streams->is_array()) {
    throw std::runtime_error("campaign: 'streams' must be an array");
  }
  for (const json::Value& item : streams->as_array()) {
    if (!item.is_object()) throw std::runtime_error("campaign: each stream must be an object");
    CampaignStreamSpec stream;
    if (const json::Value* name = item.find("name"); name != nullptr && name->is_string()) {
      stream.name = name->as_string();
    } else {
      stream.name = "stream-" + std::to_string(spec.streams.size());
    }
    if (const json::Value* script = item.find("script")) {
      if (!script->is_string()) {
        throw std::runtime_error("campaign: stream '" + stream.name +
                                 "': 'script' must be a string");
      }
      stream.script = script->as_string();
    }
    if (const json::Value* cmds = item.find("commands")) {
      if (!cmds->is_array()) {
        throw std::runtime_error("campaign: stream '" + stream.name +
                                 "': 'commands' must be an array");
      }
      for (const json::Value& c : cmds->as_array()) {
        const json::Value* device = c.is_object() ? c.find("device") : nullptr;
        const json::Value* action = c.is_object() ? c.find("action") : nullptr;
        if (device == nullptr || !device->is_string() || action == nullptr ||
            !action->is_string()) {
          throw std::runtime_error("campaign: stream '" + stream.name +
                                   "': each command needs string 'device' and 'action'");
        }
        dev::Command cmd;
        cmd.device = device->as_string();
        cmd.action = action->as_string();
        if (const json::Value* args = c.find("args")) cmd.args = *args;
        stream.commands.push_back(std::move(cmd));
      }
    }
    if (stream.commands.empty() && stream.script.empty()) {
      throw std::runtime_error("campaign: stream '" + stream.name +
                               "' has neither 'commands' nor 'script'");
    }
    spec.streams.push_back(std::move(stream));
  }
  if (spec.streams.empty()) throw std::runtime_error("campaign: 'streams' is empty");
  return spec;
}

FleetReport FleetRunner::run(const std::vector<StreamSpec>& streams) const {
  FleetReport report;
  report.streams.resize(streams.size());
  if (streams.empty()) return report;

  std::size_t workers = std::max<std::size_t>(1, std::min(options_.workers, streams.size()));

  auto t0 = std::chrono::steady_clock::now();
  // Work-stealing by atomic index: each worker claims the next unstarted
  // stream. Results land in per-stream slots, so the outcome is independent
  // of which worker ran what and in what order.
  std::atomic<std::size_t> next{0};
  auto worker_loop = [&] {
    for (;;) {
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= streams.size()) return;
      report.streams[i] = run_stream(streams[i]);
    }
  };
  if (workers == 1) {
    worker_loop();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker_loop);
    for (std::thread& t : pool) t.join();
  }
  auto t1 = std::chrono::steady_clock::now();
  report.wall_s = std::chrono::duration<double>(t1 - t0).count();

  // Deterministic observability merge: stream-spec order, never finish
  // order, so the combined export bytes are independent of the worker count
  // and of scheduler interleaving.
  for (const StreamResult& s : report.streams) {
    if (s.obs_events == nullptr) continue;
    if (report.obs_events == nullptr) {
      report.obs_events = std::make_shared<obs::Collector>();
      report.obs_metrics = std::make_shared<obs::Registry>();
    }
    report.obs_events->merge_from(*s.obs_events);
    report.obs_metrics->merge_from(*s.obs_metrics);
  }
  if (report.obs_metrics != nullptr) {
    report.obs_metrics
        ->gauge("rabit_fleet_streams", "", "Streams this fleet report aggregates")
        .add(static_cast<double>(report.streams.size()));
  }

  std::vector<double> latencies_us;
  for (const StreamResult& s : report.streams) {
    const core::RabitEngine::Stats& st = s.engine_stats;
    report.totals.commands_checked += st.commands_checked;
    report.totals.precondition_alerts += st.precondition_alerts;
    report.totals.trajectory_alerts += st.trajectory_alerts;
    report.totals.malfunction_alerts += st.malfunction_alerts;
    report.totals.trajectory_checks += st.trajectory_checks;
    report.totals.degraded_checks += st.degraded_checks;
    report.totals.status_repolls += st.status_repolls;
    report.totals.resyncs += st.resyncs;
    report.commands_checked += st.commands_checked;
    report.alerts += s.report.alerts;
    for (const trace::SupervisedStep& step : s.report.steps) {
      if (step.check_wall_us > 0) latencies_us.push_back(step.check_wall_us);
    }
  }
  report.check_latency = summarize_latencies(std::move(latencies_us));
  if (report.wall_s > 0) {
    report.commands_per_s = static_cast<double>(report.commands_checked) / report.wall_s;
  }
  return report;
}

}  // namespace rabit::fleet
