// rabit::fleet — multi-stream checking at production scale.
//
// The paper evaluates RABIT on one experiment stream; the ROADMAP north-star
// is a middleware validating many concurrent streams. This layer shards N
// fully independent streams — each with its own backend, engine, simulator,
// and Supervisor — across a worker pool. Streams share no mutable state, so
// results (and the trace JSONL each stream emits) are byte-identical for a
// given seed regardless of how many workers the pool runs or how the
// scheduler interleaves them.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/shard_plan.hpp"
#include "core/engine.hpp"
#include "obs/obs.hpp"
#include "sim/backend.hpp"
#include "trace/trace.hpp"

namespace rabit::fleet {

/// One independent experiment stream: a command workflow plus everything
/// needed to rebuild its lab from scratch.
struct StreamSpec {
  std::string name;  ///< e.g. "stream-03"; used in reports and filenames
  core::Variant variant = core::Variant::ModifiedWithSim;
  unsigned seed = 42;  ///< backend RNG seed; determinism is per-seed
  std::vector<dev::Command> commands;
  core::HotPathConfig hot_path;
  bool halt_on_alert = true;
  /// Dense-lab load: adds this many static equipment boxes to the simulator
  /// world (V3 only), in a shelf region far from every motion path, so
  /// verdicts are unchanged while collision checks see a production-density
  /// world instead of the sparse testbed.
  std::size_t extra_obstacles = 0;
  /// Observe this stream: the runner attaches a per-stream obs::Collector
  /// and obs::Registry to the Supervisor (sharded sinks — workers never
  /// share observability state) and merges them in StreamSpec order at
  /// join, so the combined export is byte-identical across worker counts.
  bool obs = false;
  /// Enable the runtime-assurance decision module (default config) on this
  /// stream's Supervisor (V3 streams only; a no-op elsewhere). Streams stay
  /// fully independent — the margin queries hit the stream's own simulator.
  bool assurance = false;
};

/// Builds the standard testbed stream: a Hein-testbed deck seeded with
/// `seed` and the Fig. 5 safe workflow recorded against it.
[[nodiscard]] StreamSpec testbed_stream(std::string name, core::Variant variant, unsigned seed,
                                        const core::HotPathConfig& hot_path = {});

/// Percentiles over per-command check latencies (real wall time).
///
/// Convention (shared with obs::Histogram::percentile, see
/// obs::nearest_rank): nearest-rank over ascending-sorted samples, rank =
/// clamp(ceil(q * N), 1, N), value = sorted[rank - 1]. Consequences worth
/// pinning: with one sample every percentile is that sample; with two,
/// p50 is the smaller and p90/p99 the larger; all-duplicate inputs yield
/// the duplicate everywhere.
struct LatencySummary {
  std::size_t samples = 0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  /// Tail gate percentile: with fewer than 1000 samples nearest-rank makes
  /// this equal to max_us, which is exactly the conservative gate we want on
  /// smoke-sized workloads.
  double p999_us = 0.0;
  double max_us = 0.0;
};

[[nodiscard]] LatencySummary summarize_latencies(std::vector<double> latencies_us);

struct StreamResult {
  std::string name;
  unsigned seed = 0;
  trace::RunReport report;
  core::RabitEngine::Stats engine_stats;
  std::string trace_jsonl;  ///< the stream's full Supervisor trace
  /// Real wall-clock spent inside engine checks for this stream.
  double check_wall_s = 0.0;
  /// Per-stream observability (null unless StreamSpec::obs was set).
  std::shared_ptr<obs::Collector> obs_events;
  std::shared_ptr<obs::Registry> obs_metrics;
};

struct FleetReport {
  std::vector<StreamResult> streams;  ///< in StreamSpec order, not finish order
  /// Aggregated engine stats across all streams.
  core::RabitEngine::Stats totals;
  std::size_t commands_checked = 0;
  std::size_t alerts = 0;
  double wall_s = 0.0;  ///< fleet wall-clock, pool start to last stream done
  double commands_per_s = 0.0;  ///< commands_checked / wall_s
  LatencySummary check_latency;
  /// Merged observability across all observed streams, combined at join in
  /// StreamSpec order (never finish order): the event exports are therefore
  /// byte-identical for a given spec list regardless of worker count. Null
  /// when no stream had obs enabled.
  std::shared_ptr<obs::Collector> obs_events;
  std::shared_ptr<obs::Registry> obs_metrics;
};

// ---------------------------------------------------------------------------
// Shared-lab campaigns
// ---------------------------------------------------------------------------
//
// FleetRunner shards *independent* labs; a campaign is the opposite regime:
// many command streams dispatched concurrently into ONE shared lab (one
// backend, one engine, one tracker) — the production setting where
// interference hazards live. Fleet::run_campaign executes a deterministic
// seeded interleaving of the streams on the shared testbed, then replays
// each stream solo on an identical fresh lab and diffs the alerts: an alert
// the interleaved run raises that the stream's solo run does not is a
// *cross-stream* alert — ground truth for the static interference analyzer
// (analysis::analyze_campaign), whose differential sweep asserts every such
// alert maps to an I-diagnostic naming the alerting device.

/// One stream of a shared-lab campaign. Streams are given either as concrete
/// commands or as DSL script source (recorded against a pristine staging
/// testbed when commands are empty).
struct CampaignStreamSpec {
  std::string name;
  std::vector<dev::Command> commands;
  std::string script;  ///< DSL source; used when `commands` is empty
};

struct CampaignSpec {
  core::Variant variant = core::Variant::Modified;
  /// Seeds both the backend RNG and the interleaving scheduler; a campaign
  /// is a pure function of (spec, seed).
  unsigned seed = 42;
  bool halt_on_alert = false;  ///< default: check everything, block, continue
  std::vector<CampaignStreamSpec> streams;
  /// Deck builder run against every lab this campaign creates (shared lab,
  /// shard labs, solo-replay labs, staging lab for script recording). Null
  /// means the standard Hein testbed (sim::build_hein_testbed_deck). Must be
  /// deterministic: every lab of a campaign has to be built identically.
  std::function<void(sim::LabBackend&)> deck;
};

/// One alert of the interleaved run, mapped back to its originating stream.
struct CampaignAlert {
  std::size_t stream = 0;         ///< index into CampaignSpec::streams
  std::size_t command_index = 0;  ///< index into that stream's commands
  core::Alert alert;
  /// True when the stream's solo replay did not raise this rule at this
  /// command index: the alert exists only because of the other streams.
  bool cross_stream = false;
};

struct CampaignReport {
  std::vector<CampaignAlert> alerts;
  std::size_t commands_checked = 0;
  /// The executed interleaving: (stream index, command index) in dispatch
  /// order. Replayable from the spec seed alone. Plan-driven runs compute the
  /// same global schedule and filter it per shard (relative order within a
  /// shard is exactly the monolithic order).
  std::vector<std::pair<std::size_t, std::size_t>> schedule;
  /// Plan-driven runs: shard count. 0 identifies a monolithic run.
  std::size_t shards = 0;
  /// Plan-driven V3 runs: how many out-of-shard arm poses were served from
  /// the epoch-versioned pose board (the lock-free cross-shard read path —
  /// both simulator provider reads and certificate-monitor audits). This
  /// count is deterministic: motion checks x out-of-shard arms.
  std::size_t snapshot_pose_serves = 0;
  /// Plan-driven runs: cross-shard coordination events — acquisitions of
  /// the shared rendezvous mutex on the explicit coordination path (steps
  /// on devices commanded from more than one shard, plus pose reads of
  /// arms no certificate covers). Provably 0 under a verified
  /// planner-produced plan.
  std::size_t coordination_events = 0;
  /// Runtime certificate-monitor findings: a live out-of-shard arm pose
  /// observed OUTSIDE the envelope its independence certificates assumed.
  /// Each entry names shard, arm, and the offending pose. Empty means every
  /// lock-free snapshot read was certifiably sound.
  std::vector<std::string> certificate_breaches;
  /// Validation-oracle findings (ShardedCampaignOptions::validate_certificates);
  /// empty when the oracle is off or clean.
  std::vector<std::string> oracle_violations;
  /// Plan-driven runs: shard-execution phase only (pool start to last shard
  /// done). Excludes solo replays and the validation oracle.
  double wall_s = 0.0;
  double commands_per_s = 0.0;  ///< commands_checked / wall_s
  /// Per-command engine check latencies across all shards (thread-CPU time,
  /// see trace::SupervisedStep::check_wall_us).
  LatencySummary check_latency;
  /// Merged per-shard observability (null unless ShardedCampaignOptions::obs).
  /// Merged in shard-index order at join, so event exports are byte-identical
  /// across worker counts. Epoch-lag and latency histograms are wall-clock /
  /// timing dependent and live only in the registry (schema-stable, not
  /// byte-stable) per the obs determinism contract.
  std::shared_ptr<obs::Collector> obs_events;
  std::shared_ptr<obs::Registry> obs_metrics;

  [[nodiscard]] std::size_t cross_stream_alerts() const;
};

/// Options for the plan-driven sharded campaign mode.
struct ShardedCampaignOptions {
  /// Worker threads across shards; clamped to the shard count, minimum 1.
  /// Shards share no mutable lab state, so the report is identical for any
  /// worker count.
  std::size_t workers = 1;
  /// Debug validation oracle: also run the monolithic shared-lab campaign
  /// and record certificate_violations() of the pair into
  /// CampaignReport::oracle_violations. Expensive (a second full campaign);
  /// meant for tests and the differential sweep, not production.
  bool validate_certificates = false;
  /// Publish shard-owned arm poses to the epoch-versioned pose board after
  /// every executed step (the live-snapshot protocol). false freezes the
  /// board at its campaign-start epoch — maximal staleness — which the
  /// soundness regression test uses to pin that verdicts are identical
  /// either way whenever the certificate monitor reports no breach.
  bool publish_poses = true;
  /// Attach a per-shard obs::Collector + obs::Registry to every shard
  /// (stream label "shard-<k>") and merge them in shard order into
  /// CampaignReport::obs_events / obs_metrics. Adds per-shard coordination /
  /// snapshot-serve counters and the snapshot-epoch-lag histogram.
  bool obs = false;
};

/// Shared-lab campaign execution (see the block comment above).
class Fleet {
 public:
  /// Runs the seeded interleaving on one shared testbed lab, then classifies
  /// every alert against per-stream solo baselines. This is the *reference*
  /// (monolithic) semantics; Fleet::run is the default execution model.
  [[nodiscard]] static CampaignReport run_campaign(const CampaignSpec& spec);

  /// The default fleet execution model: summarizes every stream, runs the
  /// static shard planner (analysis::plan_shards), and executes the
  /// resulting plan on the sharded hot path below. A campaign with no
  /// shardable structure degenerates to a 1-shard plan — same machinery,
  /// monolithic-equivalent schedule. When `plan_out` is non-null the
  /// computed plan is copied there (benches report shard counts and
  /// certificates from it).
  [[nodiscard]] static CampaignReport run(const CampaignSpec& spec,
                                          const ShardedCampaignOptions& options = {},
                                          analysis::ShardPlan* plan_out = nullptr);

  /// Plan-driven sharded mode: each shard of `plan` runs the global schedule
  /// filtered to its streams against its OWN lab — backend, engine (and so
  /// RuleWorldCache / verdict cache), V3 simulator — across a worker pool.
  /// In-shard checking is lock-free. Out-of-shard arm poses are served from
  /// the shared epoch-versioned pose board (sim::PoseBoard): every executed
  /// step publishes its shard's arm poses under a monotonic per-arm epoch,
  /// and readers take lock-free seqlock snapshots whose staleness is
  /// bounded by the plan's certificate envelopes — the runtime certificate
  /// monitor audits every served pose against ShardPlan::arm_envelopes and
  /// records any escape in CampaignReport::certificate_breaches, so a
  /// verdict computed from a stale pose is sound unless a breach is also
  /// reported. Commands whose device is claimed by more than one shard, and
  /// pose reads of arms no certificate covers, leave the lock-free path and
  /// serialize through a shared rendezvous mutex (counted in
  /// coordination_events).
  /// Alerts are classified against solo baselines exactly as in the
  /// monolithic mode and merged deterministically in global-schedule order,
  /// so the report is independent of worker count and shard execution order.
  /// `halt_on_alert` is shard-local here: an alert halts its own shard only.
  /// Throws std::runtime_error when the plan does not cover spec.streams.
  [[nodiscard]] static CampaignReport run_campaign(const CampaignSpec& spec,
                                                   const analysis::ShardPlan& plan,
                                                   const ShardedCampaignOptions& options = {});
};

/// The runtime half of the independence-certificate check (the static half is
/// analysis::verify_plan): diffs a monolithic run against a plan-driven run
/// of the SAME spec. Reported violations:
///   - a stream's (command index, rule) alert set differs between the two
///     runs — some out-of-shard stream observably influenced it, so a
///     certificate lied (this half assumes both runs checked their full
///     schedules, i.e. halt_on_alert was false);
///   - a stream in a singleton shard — certified independent of every other
///     stream — carries a cross-stream-classified alert in either run.
/// Empty result: no certified-independent pair produced any cross-stream
/// effect. Wired into the differential sweep as the runtime soundness gate.
[[nodiscard]] std::vector<std::string> certificate_violations(const analysis::ShardPlan& plan,
                                                              const CampaignReport& monolithic,
                                                              const CampaignReport& sharded);

/// Parses the rabit_lint --fleet campaign format:
///   { "seed": 7, "variant": "modified", "halt_on_alert": false,
///     "streams": [ { "name": "a",
///                    "commands": [ {"device": "...", "action": "...",
///                                   "args": {...}} ] },
///                  { "name": "b", "script": "<DSL source>" } ] }
/// Throws std::runtime_error naming the offending field on malformed input.
[[nodiscard]] CampaignSpec load_campaign(const json::Value& doc);

/// Runs stream specs to completion over a fixed-size worker pool. run() is
/// synchronous; the runner holds no state between calls.
class FleetRunner {
 public:
  struct Options {
    /// Worker threads; clamped to the stream count, minimum 1.
    std::size_t workers = 1;
  };

  FleetRunner() = default;
  explicit FleetRunner(Options options) : options_(options) {}

  [[nodiscard]] const Options& options() const { return options_; }

  /// Runs every stream and aggregates. Stream i's result lands at index i.
  [[nodiscard]] FleetReport run(const std::vector<StreamSpec>& streams) const;

  /// Runs one stream in isolation (what each pool worker executes).
  [[nodiscard]] static StreamResult run_stream(const StreamSpec& spec);

 private:
  Options options_;
};

}  // namespace rabit::fleet
