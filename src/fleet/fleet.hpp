// rabit::fleet — multi-stream checking at production scale.
//
// The paper evaluates RABIT on one experiment stream; the ROADMAP north-star
// is a middleware validating many concurrent streams. This layer shards N
// fully independent streams — each with its own backend, engine, simulator,
// and Supervisor — across a worker pool. Streams share no mutable state, so
// results (and the trace JSONL each stream emits) are byte-identical for a
// given seed regardless of how many workers the pool runs or how the
// scheduler interleaves them.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "analysis/shard_plan.hpp"
#include "core/engine.hpp"
#include "obs/obs.hpp"
#include "trace/trace.hpp"

namespace rabit::fleet {

/// One independent experiment stream: a command workflow plus everything
/// needed to rebuild its lab from scratch.
struct StreamSpec {
  std::string name;  ///< e.g. "stream-03"; used in reports and filenames
  core::Variant variant = core::Variant::ModifiedWithSim;
  unsigned seed = 42;  ///< backend RNG seed; determinism is per-seed
  std::vector<dev::Command> commands;
  core::HotPathConfig hot_path;
  bool halt_on_alert = true;
  /// Dense-lab load: adds this many static equipment boxes to the simulator
  /// world (V3 only), in a shelf region far from every motion path, so
  /// verdicts are unchanged while collision checks see a production-density
  /// world instead of the sparse testbed.
  std::size_t extra_obstacles = 0;
  /// Observe this stream: the runner attaches a per-stream obs::Collector
  /// and obs::Registry to the Supervisor (sharded sinks — workers never
  /// share observability state) and merges them in StreamSpec order at
  /// join, so the combined export is byte-identical across worker counts.
  bool obs = false;
  /// Enable the runtime-assurance decision module (default config) on this
  /// stream's Supervisor (V3 streams only; a no-op elsewhere). Streams stay
  /// fully independent — the margin queries hit the stream's own simulator.
  bool assurance = false;
};

/// Builds the standard testbed stream: a Hein-testbed deck seeded with
/// `seed` and the Fig. 5 safe workflow recorded against it.
[[nodiscard]] StreamSpec testbed_stream(std::string name, core::Variant variant, unsigned seed,
                                        const core::HotPathConfig& hot_path = {});

/// Percentiles over per-command check latencies (real wall time).
///
/// Convention (shared with obs::Histogram::percentile, see
/// obs::nearest_rank): nearest-rank over ascending-sorted samples, rank =
/// clamp(ceil(q * N), 1, N), value = sorted[rank - 1]. Consequences worth
/// pinning: with one sample every percentile is that sample; with two,
/// p50 is the smaller and p90/p99 the larger; all-duplicate inputs yield
/// the duplicate everywhere.
struct LatencySummary {
  std::size_t samples = 0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

[[nodiscard]] LatencySummary summarize_latencies(std::vector<double> latencies_us);

struct StreamResult {
  std::string name;
  unsigned seed = 0;
  trace::RunReport report;
  core::RabitEngine::Stats engine_stats;
  std::string trace_jsonl;  ///< the stream's full Supervisor trace
  /// Real wall-clock spent inside engine checks for this stream.
  double check_wall_s = 0.0;
  /// Per-stream observability (null unless StreamSpec::obs was set).
  std::shared_ptr<obs::Collector> obs_events;
  std::shared_ptr<obs::Registry> obs_metrics;
};

struct FleetReport {
  std::vector<StreamResult> streams;  ///< in StreamSpec order, not finish order
  /// Aggregated engine stats across all streams.
  core::RabitEngine::Stats totals;
  std::size_t commands_checked = 0;
  std::size_t alerts = 0;
  double wall_s = 0.0;  ///< fleet wall-clock, pool start to last stream done
  double commands_per_s = 0.0;  ///< commands_checked / wall_s
  LatencySummary check_latency;
  /// Merged observability across all observed streams, combined at join in
  /// StreamSpec order (never finish order): the event exports are therefore
  /// byte-identical for a given spec list regardless of worker count. Null
  /// when no stream had obs enabled.
  std::shared_ptr<obs::Collector> obs_events;
  std::shared_ptr<obs::Registry> obs_metrics;
};

// ---------------------------------------------------------------------------
// Shared-lab campaigns
// ---------------------------------------------------------------------------
//
// FleetRunner shards *independent* labs; a campaign is the opposite regime:
// many command streams dispatched concurrently into ONE shared lab (one
// backend, one engine, one tracker) — the production setting where
// interference hazards live. Fleet::run_campaign executes a deterministic
// seeded interleaving of the streams on the shared testbed, then replays
// each stream solo on an identical fresh lab and diffs the alerts: an alert
// the interleaved run raises that the stream's solo run does not is a
// *cross-stream* alert — ground truth for the static interference analyzer
// (analysis::analyze_campaign), whose differential sweep asserts every such
// alert maps to an I-diagnostic naming the alerting device.

/// One stream of a shared-lab campaign. Streams are given either as concrete
/// commands or as DSL script source (recorded against a pristine staging
/// testbed when commands are empty).
struct CampaignStreamSpec {
  std::string name;
  std::vector<dev::Command> commands;
  std::string script;  ///< DSL source; used when `commands` is empty
};

struct CampaignSpec {
  core::Variant variant = core::Variant::Modified;
  /// Seeds both the backend RNG and the interleaving scheduler; a campaign
  /// is a pure function of (spec, seed).
  unsigned seed = 42;
  bool halt_on_alert = false;  ///< default: check everything, block, continue
  std::vector<CampaignStreamSpec> streams;
};

/// One alert of the interleaved run, mapped back to its originating stream.
struct CampaignAlert {
  std::size_t stream = 0;         ///< index into CampaignSpec::streams
  std::size_t command_index = 0;  ///< index into that stream's commands
  core::Alert alert;
  /// True when the stream's solo replay did not raise this rule at this
  /// command index: the alert exists only because of the other streams.
  bool cross_stream = false;
};

struct CampaignReport {
  std::vector<CampaignAlert> alerts;
  std::size_t commands_checked = 0;
  /// The executed interleaving: (stream index, command index) in dispatch
  /// order. Replayable from the spec seed alone. Plan-driven runs compute the
  /// same global schedule and filter it per shard (relative order within a
  /// shard is exactly the monolithic order).
  std::vector<std::pair<std::size_t, std::size_t>> schedule;
  /// Plan-driven runs: shard count. 0 identifies a monolithic run.
  std::size_t shards = 0;
  /// Plan-driven V3 runs: how many out-of-shard arm poses the collision
  /// checker read from the frozen epoch-0 snapshot instead of live backend
  /// state (the lock-free cross-shard read path).
  std::size_t snapshot_pose_serves = 0;
  /// Validation-oracle findings (ShardedCampaignOptions::validate_certificates);
  /// empty when the oracle is off or clean.
  std::vector<std::string> oracle_violations;

  [[nodiscard]] std::size_t cross_stream_alerts() const;
};

/// Options for the plan-driven sharded campaign mode.
struct ShardedCampaignOptions {
  /// Worker threads across shards; clamped to the shard count, minimum 1.
  /// Shards share no mutable lab state, so the report is identical for any
  /// worker count.
  std::size_t workers = 1;
  /// Debug validation oracle: also run the monolithic shared-lab campaign
  /// and record certificate_violations() of the pair into
  /// CampaignReport::oracle_violations. Expensive (a second full campaign);
  /// meant for tests and the differential sweep, not production.
  bool validate_certificates = false;
};

/// Shared-lab campaign execution (see the block comment above).
class Fleet {
 public:
  /// Runs the seeded interleaving on one shared testbed lab, then classifies
  /// every alert against per-stream solo baselines.
  [[nodiscard]] static CampaignReport run_campaign(const CampaignSpec& spec);

  /// Plan-driven sharded mode: each shard of `plan` runs the global schedule
  /// filtered to its streams against its OWN lab — backend, engine (and so
  /// RuleWorldCache / verdict cache), V3 simulator — across a worker pool,
  /// lock-free. Out-of-shard arm poses are served from a frozen epoch-0
  /// snapshot taken at campaign start (sound because a certificate proves
  /// the out-of-shard arms can never enter this shard's envelopes). Alerts
  /// are classified against solo baselines exactly as in the monolithic
  /// mode and merged deterministically in global-schedule order, so the
  /// report is independent of worker count and shard execution order.
  /// `halt_on_alert` is shard-local here: an alert halts its own shard only.
  /// Throws std::runtime_error when the plan does not cover spec.streams.
  [[nodiscard]] static CampaignReport run_campaign(const CampaignSpec& spec,
                                                   const analysis::ShardPlan& plan,
                                                   const ShardedCampaignOptions& options = {});
};

/// The runtime half of the independence-certificate check (the static half is
/// analysis::verify_plan): diffs a monolithic run against a plan-driven run
/// of the SAME spec. Reported violations:
///   - a stream's (command index, rule) alert set differs between the two
///     runs — some out-of-shard stream observably influenced it, so a
///     certificate lied (this half assumes both runs checked their full
///     schedules, i.e. halt_on_alert was false);
///   - a stream in a singleton shard — certified independent of every other
///     stream — carries a cross-stream-classified alert in either run.
/// Empty result: no certified-independent pair produced any cross-stream
/// effect. Wired into the differential sweep as the runtime soundness gate.
[[nodiscard]] std::vector<std::string> certificate_violations(const analysis::ShardPlan& plan,
                                                              const CampaignReport& monolithic,
                                                              const CampaignReport& sharded);

/// Parses the rabit_lint --fleet campaign format:
///   { "seed": 7, "variant": "modified", "halt_on_alert": false,
///     "streams": [ { "name": "a",
///                    "commands": [ {"device": "...", "action": "...",
///                                   "args": {...}} ] },
///                  { "name": "b", "script": "<DSL source>" } ] }
/// Throws std::runtime_error naming the offending field on malformed input.
[[nodiscard]] CampaignSpec load_campaign(const json::Value& doc);

/// Runs stream specs to completion over a fixed-size worker pool. run() is
/// synchronous; the runner holds no state between calls.
class FleetRunner {
 public:
  struct Options {
    /// Worker threads; clamped to the stream count, minimum 1.
    std::size_t workers = 1;
  };

  FleetRunner() = default;
  explicit FleetRunner(Options options) : options_(options) {}

  [[nodiscard]] const Options& options() const { return options_; }

  /// Runs every stream and aggregates. Stream i's result lands at index i.
  [[nodiscard]] FleetReport run(const std::vector<StreamSpec>& streams) const;

  /// Runs one stream in isolation (what each pool worker executes).
  [[nodiscard]] static StreamResult run_stream(const StreamSpec& spec);

 private:
  Options options_;
};

}  // namespace rabit::fleet
