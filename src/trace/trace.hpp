// rabit::trace — the RATracer-equivalent interception layer (paper §II-C).
//
// The paper reconfigures RATracer so that every traced device command is
// first checked with RABIT: on an alert the experiment halts (a Python
// exception in the original); otherwise the command is forwarded to the
// device. This module provides the same intercept-check-forward pipeline
// (Supervisor), plus trace recording and replay in a JSONL format shared
// with the RAD dataset tooling.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "devices/device.hpp"
#include "sim/backend.hpp"

namespace rabit::trace {

/// What happened to one intercepted command.
enum class Outcome {
  Executed,        ///< forwarded and executed normally
  SilentlySkipped, ///< controller quietly ignored it (unreachable target)
  FirmwareError,   ///< the device's own firmware refused it
  Blocked,         ///< RABIT alerted before execution; never forwarded
  MalfunctionFlagged,  ///< executed, then the postcondition check alerted
};

[[nodiscard]] std::string_view to_string(Outcome o);

struct TraceRecord {
  dev::Command command;
  Outcome outcome = Outcome::Executed;
  std::string alert_rule;     ///< rule id when RABIT alerted
  std::string alert_message;
  std::size_t damage_events = 0;  ///< ground-truth damage caused by this command
};

/// An append-only command trace, serializable to JSON-lines.
class TraceLog {
 public:
  void append(TraceRecord record) { records_.push_back(std::move(record)); }
  [[nodiscard]] const std::vector<TraceRecord>& records() const { return records_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  void clear() { records_.clear(); }

  [[nodiscard]] std::string to_jsonl() const;
  [[nodiscard]] static TraceLog from_jsonl(std::string_view text);

 private:
  std::vector<TraceRecord> records_;
};

/// Result of supervising one command.
struct SupervisedStep {
  dev::Command command;
  std::optional<core::Alert> alert;
  std::optional<sim::ExecResult> exec;  ///< absent when blocked pre-execution
  bool halted = false;                  ///< the experiment was stopped
};

/// Full-workflow report, with the indices benches need to score detection:
/// an unsafe behaviour counts as *detected* only when RABIT's alert came at
/// or before the command that caused the first ground-truth damage.
struct RunReport {
  std::vector<SupervisedStep> steps;
  bool halted = false;
  std::size_t alerts = 0;
  std::optional<std::size_t> first_alert_step;
  std::optional<std::size_t> first_damage_step;
  std::vector<sim::DamageEvent> damage;
  double modeled_runtime_s = 0.0;   ///< backend execution time
  double modeled_overhead_s = 0.0;  ///< RABIT + simulator check time

  /// Damage that RABIT prevented or at least flagged in time.
  [[nodiscard]] bool alert_preceded_damage() const;
  /// Worst severity that physically occurred.
  [[nodiscard]] std::optional<dev::Severity> max_damage_severity() const;
};

/// The intercept-check-forward pipeline. The engine is optional: running
/// without one measures the uninstrumented baseline for the latency bench.
class Supervisor {
 public:
  struct Options {
    bool halt_on_alert = true;  ///< the Hein Lab's preemptive-stop policy
  };

  Supervisor(core::RabitEngine* engine, sim::LabBackend* backend)
      : Supervisor(engine, backend, Options{}) {}
  Supervisor(core::RabitEngine* engine, sim::LabBackend* backend, Options options);

  /// Fig. 2 line 3: fetches the initial state and primes the engine.
  void start();

  /// Intercepts one command.
  SupervisedStep step(const dev::Command& cmd);

  /// Runs a whole workflow; stops early on alert when halt_on_alert is set.
  RunReport run(const std::vector<dev::Command>& workflow);

  [[nodiscard]] const TraceLog& log() const { return log_; }
  [[nodiscard]] sim::LabBackend& backend() { return *backend_; }
  [[nodiscard]] core::RabitEngine* engine() { return engine_; }
  [[nodiscard]] bool halted() const { return halted_; }

 private:
  core::RabitEngine* engine_;
  sim::LabBackend* backend_;
  Options options_;
  TraceLog log_;
  bool halted_ = false;
};

}  // namespace rabit::trace
