// rabit::trace — the RATracer-equivalent interception layer (paper §II-C).
//
// The paper reconfigures RATracer so that every traced device command is
// first checked with RABIT: on an alert the experiment halts (a Python
// exception in the original); otherwise the command is forwarded to the
// device. This module provides the same intercept-check-forward pipeline
// (Supervisor), plus trace recording and replay in a JSONL format shared
// with the RAD dataset tooling.
//
// On top of the paper's alert-and-stop policy, the Supervisor can drive the
// recovery::RecoveryPolicy ladder: transient firmware rejections and
// postcondition divergences are retried with backoff in modeled time,
// suspicious status reads are re-polled before a malfunction is declared,
// and exhausted recovery escalates (quarantine → safe state → halt). Every
// retry and re-poll is a first-class trace record, so a replayed JSONL
// shows exactly what the ladder did.
#pragma once

#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "assurance/assurance.hpp"
#include "core/engine.hpp"
#include "devices/device.hpp"
#include "obs/obs.hpp"
#include "recovery/recovery.hpp"
#include "sim/backend.hpp"

namespace rabit::trace {

/// What happened to one intercepted command (or recovery sub-step).
enum class Outcome {
  Executed,        ///< forwarded and executed normally
  SilentlySkipped, ///< controller quietly ignored it (unreachable target)
  FirmwareError,   ///< the device's own firmware refused it
  Blocked,         ///< RABIT alerted before execution; never forwarded
  MalfunctionFlagged,  ///< executed, then the postcondition check alerted
  TransientRetry,  ///< recovery ladder re-attempted the command
  StatusRepoll,    ///< recovery ladder re-polled status before judging
  SafeState,       ///< command issued by the safe-state escalation sequence
  Quarantined,     ///< the command's device was removed from service
  Demoted,         ///< runtime assurance switched to the verified-safe
                   ///< controller before the barrier floor could be crossed;
                   ///< the advanced command was never forwarded
};

[[nodiscard]] std::string_view to_string(Outcome o);

struct TraceRecord {
  dev::Command command;
  Outcome outcome = Outcome::Executed;
  std::string alert_rule;     ///< rule id when RABIT alerted
  std::string alert_message;
  std::size_t damage_events = 0;  ///< ground-truth damage caused by this command
  std::size_t attempt = 0;  ///< recovery attempt / re-poll ordinal (1-based; 0 = n/a)
};

/// Raised by TraceLog::from_jsonl in strict mode: carries the 1-based JSONL
/// line number of the offending record so tools can point at it.
class TraceParseError : public std::runtime_error {
 public:
  TraceParseError(const std::string& message, std::size_t line_number)
      : std::runtime_error("line " + std::to_string(line_number) + ": " + message),
        line_number_(line_number) {}

  [[nodiscard]] std::size_t line_number() const { return line_number_; }

 private:
  std::size_t line_number_;
};

/// An append-only command trace, serializable to JSON-lines.
class TraceLog {
 public:
  void append(TraceRecord record) { records_.push_back(std::move(record)); }
  [[nodiscard]] const std::vector<TraceRecord>& records() const { return records_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  void clear() { records_.clear(); }

  [[nodiscard]] std::string to_jsonl() const;

  /// Parses a JSONL trace. In strict mode (the default) any malformed line
  /// raises TraceParseError naming the line and what is wrong with it; with
  /// strict=false malformed lines are skipped and counted into
  /// `*skipped_lines` (when non-null) so callers can report data loss.
  [[nodiscard]] static TraceLog from_jsonl(std::string_view text, bool strict = true,
                                           std::size_t* skipped_lines = nullptr);

 private:
  std::vector<TraceRecord> records_;
};

/// Result of supervising one command.
struct SupervisedStep {
  dev::Command command;
  std::optional<core::Alert> alert;
  std::optional<sim::ExecResult> exec;  ///< absent when blocked pre-execution
  bool halted = false;                  ///< the experiment was stopped
  std::size_t retries = 0;              ///< recovery re-attempts this command consumed
  std::size_t repolls = 0;              ///< recovery status re-polls this command consumed
  /// Runtime assurance demoted this command to the verified-safe controller.
  bool demoted = false;
  /// Real (thread-CPU, not modeled) microseconds spent inside engine check
  /// calls for this command — what bench_throughput aggregates into
  /// p50/p99/p999. Thread CPU time, not wall clock: a check preempted by
  /// the scheduler mid-flight reports what it computed, not what it waited
  /// (see obs::thread_cpu_now_us).
  double check_wall_us = 0.0;
};

/// Full-workflow report, with the indices benches need to score detection:
/// an unsafe behaviour counts as *detected* only when RABIT's alert came at
/// or before the command that caused the first ground-truth damage.
struct RunReport {
  std::vector<SupervisedStep> steps;
  bool halted = false;
  std::size_t alerts = 0;
  std::optional<std::size_t> first_alert_step;
  std::optional<std::size_t> first_damage_step;
  std::vector<sim::DamageEvent> damage;
  double modeled_runtime_s = 0.0;   ///< backend execution time
  double modeled_overhead_s = 0.0;  ///< RABIT + simulator check time
  /// Real thread-CPU seconds spent inside engine check calls across the
  /// whole run (sum of the per-step check_wall_us samples).
  double check_wall_s = 0.0;
  /// What the recovery ladder did, when Options::recovery was set.
  std::optional<recovery::RecoveryReport> recovery;
  /// Motion commands checked at V2 level because the V3 simulator was
  /// detached (degraded mode).
  std::size_t degraded_checks = 0;

  /// Damage that RABIT prevented or at least flagged in time.
  [[nodiscard]] bool alert_preceded_damage() const;
  /// Worst severity that physically occurred.
  [[nodiscard]] std::optional<dev::Severity> max_damage_severity() const;
};

/// The intercept-check-forward pipeline. The engine is optional: running
/// without one measures the uninstrumented baseline for the latency bench.
class Supervisor {
 public:
  struct Options {
    bool halt_on_alert = true;  ///< the Hein Lab's preemptive-stop policy
    /// When set, transient faults are absorbed by the recovery ladder
    /// instead of stopping the run; exhausted recovery escalates to
    /// quarantine + safe state before halting.
    std::optional<recovery::RecoveryPolicy> recovery;
    /// When set (and an engine with a V3 simulator is attached), every
    /// motion command is screened by the runtime-assurance decision module
    /// BEFORE execution: if the planned path would dip below the barrier
    /// floor, the command is demoted to the verified-safe controller — a
    /// truncated advance to the last safe switching point, then park — and
    /// recorded as Outcome::Demoted with a structured AssuranceEvent. The
    /// ladder becomes predict → demote-to-safe → retry/re-poll → quarantine
    /// → safe-state → halt.
    std::optional<assurance::AssuranceConfig> assurance;
    /// Observability (all non-owning; null = disabled, a single branch per
    /// hook). The sink receives one SpanRecord per intercepted command —
    /// phase timeline (canonicalize → precondition → dispatch →
    /// postcondition → recovery) plus verdict — and one RungRecord per
    /// recovery-ladder rung. The registry accumulates counters and the
    /// check-latency histogram; run() additionally absorbs the engine's
    /// Stats counters into it.
    obs::Sink* obs_sink = nullptr;
    obs::Registry* obs_metrics = nullptr;
    /// Stream label stamped on every span/rung (the fleet sets it to the
    /// StreamSpec name); empty for single-stream runs.
    std::string obs_stream;
  };

  Supervisor(core::RabitEngine* engine, sim::LabBackend* backend)
      : Supervisor(engine, backend, Options{}) {}
  Supervisor(core::RabitEngine* engine, sim::LabBackend* backend, Options options);

  /// Fig. 2 line 3: fetches the initial state and primes the engine. Also
  /// resets the recovery ladder (jitter stream, quarantine set, report).
  void start();

  /// Intercepts one command.
  SupervisedStep step(const dev::Command& cmd);

  /// Runs a whole workflow; stops early on alert when halt_on_alert is set.
  RunReport run(const std::vector<dev::Command>& workflow);

  [[nodiscard]] const TraceLog& log() const { return log_; }
  [[nodiscard]] sim::LabBackend& backend() { return *backend_; }
  [[nodiscard]] core::RabitEngine* engine() { return engine_; }
  [[nodiscard]] bool halted() const { return halted_; }
  [[nodiscard]] const recovery::RecoveryReport& recovery_report() const {
    return recovery_report_;
  }
  [[nodiscard]] const std::set<std::string>& quarantined() const { return quarantined_; }

 private:
  /// step() without the observability bracket (span open/finalize).
  SupervisedStep step_impl(const dev::Command& cmd);
  /// Runtime-assurance decision module: computes the barrier profile of a
  /// motion command (inflated fast query first, full margin profile only
  /// when that trips) and, on a violation, runs the verified-safe controller
  /// at the last safe switching point. Returns true when the command was
  /// demoted (the caller must not execute it).
  bool maybe_demote(const dev::Command& cmd, SupervisedStep& result, TraceRecord& record);
  /// Line 12 with the recovery ladder wrapped around it; fills result/record.
  void execute_with_recovery(const dev::Command& cmd, SupervisedStep& result,
                             TraceRecord& record);
  /// Quarantine (optionally) + safe state + halt, recording every action.
  void escalate(const dev::Command& cmd, bool quarantine_device);
  void append_recovery_record(const dev::Command& cmd, Outcome outcome, std::size_t attempt,
                              const std::string& note);

  /// The combined modeled lab clock: backend execution time plus RABIT's own
  /// modeled check overhead — the deterministic timeline obs spans live on.
  [[nodiscard]] double modeled_now() const;
  /// Emits one recovery-ladder rung to the obs sink (no-op when disabled).
  void emit_rung(std::string_view kind, const dev::Command& cmd, std::size_t attempt,
                 const std::string& note);
  void finalize_span(obs::SpanRecord& span, const SupervisedStep& result) const;
  void update_metrics(const obs::SpanRecord& span, const SupervisedStep& result);

  core::RabitEngine* engine_;
  sim::LabBackend* backend_;
  Options options_;
  TraceLog log_;
  bool halted_ = false;
  std::optional<recovery::BackoffClock> backoff_;
  recovery::RecoveryReport recovery_report_;
  std::set<std::string> quarantined_;
  /// Escalation re-entrancy guard: true while the verified-safe controller
  /// (demotion stop or safe-state sequence) is issuing commands. A permanent
  /// fault arriving *during* those commands must not re-enter the retry
  /// ladder or restart the escalation — the safe controller is open-loop by
  /// design and failures are only counted.
  bool safe_controller_active_ = false;
  obs::SpanRecord* active_span_ = nullptr;
  std::uint64_t span_seq_ = 0;
};

}  // namespace rabit::trace
