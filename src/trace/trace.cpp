#include "trace/trace.hpp"

#include <sstream>

namespace rabit::trace {

std::string_view to_string(Outcome o) {
  switch (o) {
    case Outcome::Executed: return "executed";
    case Outcome::SilentlySkipped: return "silently_skipped";
    case Outcome::FirmwareError: return "firmware_error";
    case Outcome::Blocked: return "blocked";
    case Outcome::MalfunctionFlagged: return "malfunction_flagged";
  }
  return "unknown";
}

namespace {

Outcome outcome_from_name(const std::string& name) {
  if (name == "executed") return Outcome::Executed;
  if (name == "silently_skipped") return Outcome::SilentlySkipped;
  if (name == "firmware_error") return Outcome::FirmwareError;
  if (name == "blocked") return Outcome::Blocked;
  if (name == "malfunction_flagged") return Outcome::MalfunctionFlagged;
  throw std::runtime_error("TraceLog: unknown outcome '" + name + "'");
}

}  // namespace

std::string TraceLog::to_jsonl() const {
  std::string out;
  for (const TraceRecord& r : records_) {
    json::Object line;
    line["device"] = r.command.device;
    line["action"] = r.command.action;
    line["args"] = r.command.args;
    line["line"] = r.command.source_line;
    line["outcome"] = std::string(to_string(r.outcome));
    if (!r.alert_rule.empty()) {
      line["alert_rule"] = r.alert_rule;
      line["alert_message"] = r.alert_message;
    }
    if (r.damage_events > 0) line["damage_events"] = r.damage_events;
    out += json::serialize(json::Value(std::move(line)));
    out += '\n';
  }
  return out;
}

TraceLog TraceLog::from_jsonl(std::string_view text) {
  TraceLog log;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;

    json::Value doc = json::parse(line);
    TraceRecord r;
    r.command.device = doc.as_object().at("device").as_string();
    r.command.action = doc.as_object().at("action").as_string();
    r.command.args = doc.as_object().at("args");
    r.command.source_line = static_cast<int>(doc.get_or("line", std::int64_t{0}));
    r.outcome = outcome_from_name(doc.as_object().at("outcome").as_string());
    r.alert_rule = doc.get_or("alert_rule", std::string());
    r.alert_message = doc.get_or("alert_message", std::string());
    r.damage_events = static_cast<std::size_t>(doc.get_or("damage_events", std::int64_t{0}));
    log.append(std::move(r));
  }
  return log;
}

// ---------------------------------------------------------------------------
// RunReport
// ---------------------------------------------------------------------------

bool RunReport::alert_preceded_damage() const {
  if (!first_alert_step) return false;
  if (!first_damage_step) return true;  // alerted and nothing ever broke
  return *first_alert_step <= *first_damage_step;
}

std::optional<dev::Severity> RunReport::max_damage_severity() const {
  std::optional<dev::Severity> worst;
  for (const sim::DamageEvent& e : damage) {
    if (!worst || static_cast<int>(e.severity) > static_cast<int>(*worst)) {
      worst = e.severity;
    }
  }
  return worst;
}

// ---------------------------------------------------------------------------
// Supervisor
// ---------------------------------------------------------------------------

Supervisor::Supervisor(core::RabitEngine* engine, sim::LabBackend* backend, Options options)
    : engine_(engine), backend_(backend), options_(options) {
  if (backend_ == nullptr) throw std::invalid_argument("Supervisor: null backend");
}

void Supervisor::start() {
  halted_ = false;
  log_.clear();
  if (engine_ != nullptr) {
    engine_->initialize(backend_->registry().fetch_observed_state());
  }
}

SupervisedStep Supervisor::step(const dev::Command& cmd) {
  SupervisedStep result;
  result.command = cmd;

  TraceRecord record;
  record.command = cmd;

  if (halted_) {
    // The experiment already stopped; refuse further commands.
    result.halted = true;
    record.outcome = Outcome::Blocked;
    record.alert_rule = "HALTED";
    record.alert_message = "experiment already halted";
    log_.append(std::move(record));
    return result;
  }

  // Lines 6-10: pre-execution checks.
  if (engine_ != nullptr) {
    if (auto alert = engine_->check_command(cmd)) {
      result.alert = alert;
      record.outcome = Outcome::Blocked;
      record.alert_rule = alert->rule;
      record.alert_message = alert->message;
      if (options_.halt_on_alert) {
        halted_ = true;
        result.halted = true;
      }
      log_.append(std::move(record));
      return result;
    }
    engine_->apply_expected(cmd);  // line 11
  }

  // Line 12: forward to the device.
  sim::ExecResult exec = backend_->execute(cmd);
  result.exec = exec;
  record.damage_events = exec.damage.size();
  if (!exec.executed) {
    record.outcome = Outcome::FirmwareError;
  } else if (exec.silently_skipped) {
    record.outcome = Outcome::SilentlySkipped;
  } else {
    record.outcome = Outcome::Executed;
  }

  // Lines 13-16: postcondition verification.
  if (engine_ != nullptr) {
    auto observed = backend_->registry().fetch_observed_state();
    if (auto alert = engine_->verify_postconditions(cmd, observed)) {
      result.alert = alert;
      record.outcome = Outcome::MalfunctionFlagged;
      record.alert_rule = alert->rule;
      record.alert_message = alert->message;
      if (options_.halt_on_alert) {
        halted_ = true;
        result.halted = true;
      }
    }
  }

  log_.append(std::move(record));
  return result;
}

RunReport Supervisor::run(const std::vector<dev::Command>& workflow) {
  start();
  RunReport report;
  double overhead_before =
      engine_ != nullptr ? engine_->modeled_overhead_s() : 0.0;
  double backend_clock_before = backend_->modeled_clock_s();

  for (const dev::Command& cmd : workflow) {
    SupervisedStep step_result = step(cmd);
    std::size_t index = report.steps.size();

    if (step_result.alert) {
      ++report.alerts;
      if (!report.first_alert_step) report.first_alert_step = index;
    }
    if (step_result.exec) {
      for (const sim::DamageEvent& e : step_result.exec->damage) {
        if (!report.first_damage_step) report.first_damage_step = index;
        report.damage.push_back(e);
      }
    }
    bool halted_now = step_result.halted;
    report.steps.push_back(std::move(step_result));
    if (halted_now) {
      report.halted = true;
      break;
    }
  }

  report.modeled_runtime_s = backend_->modeled_clock_s() - backend_clock_before;
  report.modeled_overhead_s =
      (engine_ != nullptr ? engine_->modeled_overhead_s() : 0.0) - overhead_before;
  return report;
}

}  // namespace rabit::trace
