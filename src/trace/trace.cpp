#include "trace/trace.hpp"

#include <chrono>
#include <sstream>

namespace rabit::trace {

namespace {

/// Times one engine check call, accumulating real microseconds of *thread
/// CPU time* into `out`. Thread CPU time (not wall clock) is the honest
/// per-check cost under a multi-worker fleet: a check preempted mid-flight
/// would otherwise absorb the scheduler quantum it waited out — a ~10 ms
/// artifact at high stream counts — into a measurement whose stated intent
/// is "the real CPU cost of the checks".
template <typename Fn>
auto timed_check(double& out, Fn&& fn) {
  double t0 = obs::thread_cpu_now_us();
  auto result = fn();
  out += obs::thread_cpu_now_us() - t0;
  return result;
}

}  // namespace

std::string_view to_string(Outcome o) {
  switch (o) {
    case Outcome::Executed: return "executed";
    case Outcome::SilentlySkipped: return "silently_skipped";
    case Outcome::FirmwareError: return "firmware_error";
    case Outcome::Blocked: return "blocked";
    case Outcome::MalfunctionFlagged: return "malfunction_flagged";
    case Outcome::TransientRetry: return "transient_retry";
    case Outcome::StatusRepoll: return "status_repoll";
    case Outcome::SafeState: return "safe_state";
    case Outcome::Quarantined: return "quarantined";
    case Outcome::Demoted: return "demoted";
  }
  return "unknown";
}

namespace {

std::optional<Outcome> outcome_from_name(const std::string& name) {
  if (name == "executed") return Outcome::Executed;
  if (name == "silently_skipped") return Outcome::SilentlySkipped;
  if (name == "firmware_error") return Outcome::FirmwareError;
  if (name == "blocked") return Outcome::Blocked;
  if (name == "malfunction_flagged") return Outcome::MalfunctionFlagged;
  if (name == "transient_retry") return Outcome::TransientRetry;
  if (name == "status_repoll") return Outcome::StatusRepoll;
  if (name == "safe_state") return Outcome::SafeState;
  if (name == "quarantined") return Outcome::Quarantined;
  if (name == "demoted") return Outcome::Demoted;
  return std::nullopt;
}

std::string require_string(const json::Object& obj, const char* key, std::size_t line_no) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) {
    throw TraceParseError(std::string("missing required field '") + key + "'", line_no);
  }
  if (!v->is_string()) {
    throw TraceParseError(std::string("field '") + key + "' must be a string, got " +
                              std::string(json::to_string(v->type())),
                          line_no);
  }
  return v->as_string();
}

std::int64_t optional_int(const json::Object& obj, const char* key, std::size_t line_no) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) return 0;
  if (!v->is_int()) {
    throw TraceParseError(std::string("field '") + key + "' must be an integer, got " +
                              std::string(json::to_string(v->type())),
                          line_no);
  }
  return v->as_int();
}

TraceRecord parse_record(std::string_view line, std::size_t line_no) {
  json::Value doc;
  try {
    doc = json::parse(line);
  } catch (const json::ParseError& e) {
    throw TraceParseError(std::string("malformed JSON: ") + e.what(), line_no);
  }
  if (!doc.is_object()) {
    throw TraceParseError("record must be a JSON object, got " +
                              std::string(json::to_string(doc.type())),
                          line_no);
  }
  const json::Object& obj = doc.as_object();

  TraceRecord r;
  r.command.device = require_string(obj, "device", line_no);
  r.command.action = require_string(obj, "action", line_no);
  if (const json::Value* args = obj.find("args")) r.command.args = *args;
  r.command.source_line = static_cast<int>(optional_int(obj, "line", line_no));

  std::string outcome_name = require_string(obj, "outcome", line_no);
  std::optional<Outcome> outcome = outcome_from_name(outcome_name);
  if (!outcome) {
    throw TraceParseError("unknown outcome '" + outcome_name + "'", line_no);
  }
  r.outcome = *outcome;

  if (obj.contains("alert_rule")) r.alert_rule = require_string(obj, "alert_rule", line_no);
  if (obj.contains("alert_message")) {
    r.alert_message = require_string(obj, "alert_message", line_no);
  }
  r.damage_events = static_cast<std::size_t>(optional_int(obj, "damage_events", line_no));
  r.attempt = static_cast<std::size_t>(optional_int(obj, "attempt", line_no));
  return r;
}

}  // namespace

std::string TraceLog::to_jsonl() const {
  std::string out;
  for (const TraceRecord& r : records_) {
    json::Object line;
    line["device"] = r.command.device;
    line["action"] = r.command.action;
    line["args"] = r.command.args;
    line["line"] = r.command.source_line;
    line["outcome"] = std::string(to_string(r.outcome));
    if (!r.alert_rule.empty()) {
      line["alert_rule"] = r.alert_rule;
      line["alert_message"] = r.alert_message;
    }
    if (r.damage_events > 0) line["damage_events"] = r.damage_events;
    if (r.attempt > 0) line["attempt"] = r.attempt;
    out += json::serialize(json::Value(std::move(line)));
    out += '\n';
  }
  return out;
}

TraceLog TraceLog::from_jsonl(std::string_view text, bool strict, std::size_t* skipped_lines) {
  TraceLog log;
  if (skipped_lines != nullptr) *skipped_lines = 0;
  std::size_t start = 0;
  std::size_t line_no = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_no;
    if (line.empty()) continue;

    try {
      log.append(parse_record(line, line_no));
    } catch (const TraceParseError&) {
      if (strict) throw;
      if (skipped_lines != nullptr) ++*skipped_lines;
    }
  }
  return log;
}

// ---------------------------------------------------------------------------
// RunReport
// ---------------------------------------------------------------------------

bool RunReport::alert_preceded_damage() const {
  if (!first_alert_step) return false;
  if (!first_damage_step) return true;  // alerted and nothing ever broke
  return *first_alert_step <= *first_damage_step;
}

std::optional<dev::Severity> RunReport::max_damage_severity() const {
  std::optional<dev::Severity> worst;
  for (const sim::DamageEvent& e : damage) {
    if (!worst || static_cast<int>(e.severity) > static_cast<int>(*worst)) {
      worst = e.severity;
    }
  }
  return worst;
}

// ---------------------------------------------------------------------------
// Supervisor
// ---------------------------------------------------------------------------

Supervisor::Supervisor(core::RabitEngine* engine, sim::LabBackend* backend, Options options)
    : engine_(engine), backend_(backend), options_(std::move(options)) {
  if (backend_ == nullptr) throw std::invalid_argument("Supervisor: null backend");
  if (options_.recovery) {
    // A policy that fails fatal validation makes the ladder nonsensical
    // (zero backoff hammers the device, jitter >= 1 can produce negative
    // waits); refuse it here rather than misbehave mid-campaign.
    for (const recovery::PolicyIssue& issue : recovery::validate(*options_.recovery)) {
      if (issue.fatal) {
        throw std::invalid_argument("Supervisor: invalid RecoveryPolicy: " + issue.message);
      }
    }
    backoff_.emplace(*options_.recovery);
  }
  if (engine_ != nullptr) {
    // Fold the assurance margin into the engine's own V3 sweep: the fast
    // path becomes a flag read instead of a second sweep per motion. Reset
    // explicitly when assurance is off, in case the engine is reused.
    bool on = options_.assurance && options_.assurance->enabled;
    engine_->set_assurance_margin(on ? options_.assurance->margin_min_m : 0.0);
  }
}

void Supervisor::start() {
  halted_ = false;
  log_.clear();
  recovery_report_ = recovery::RecoveryReport{};
  quarantined_.clear();
  safe_controller_active_ = false;
  span_seq_ = 0;
  if (backoff_) backoff_->reset();
  if (engine_ != nullptr) {
    engine_->initialize(backend_->fetch_status().snapshot);
  }
}

double Supervisor::modeled_now() const {
  return backend_->modeled_clock_s() +
         (engine_ != nullptr ? engine_->modeled_overhead_s() : 0.0);
}

void Supervisor::emit_rung(std::string_view kind, const dev::Command& cmd, std::size_t attempt,
                           const std::string& note) {
  if (options_.obs_sink == nullptr) return;
  obs::RungRecord rung;
  rung.stream = options_.obs_stream;
  rung.span_seq = active_span_ != nullptr ? active_span_->seq : span_seq_;
  rung.kind = std::string(kind);
  rung.device = cmd.device;
  rung.action = cmd.action;
  rung.attempt = attempt;
  rung.t_modeled_s = modeled_now();
  rung.note = note;
  options_.obs_sink->on_rung(std::move(rung));
}

void Supervisor::finalize_span(obs::SpanRecord& span, const SupervisedStep& result) const {
  if (result.demoted) {
    // A demotion carries an alert too (the averted trajectory violation);
    // the span verdict names the stronger fact: the safe controller ran.
    span.rule = result.alert ? result.alert->rule : "RTA";
    span.verdict = "demoted";
  } else if (result.alert) {
    span.rule = result.alert->rule;
    span.verdict = result.alert->kind == core::AlertKind::DeviceMalfunction ? "malfunction"
                                                                            : "blocked";
  } else if (!result.exec) {
    // Refused before any execution: the experiment had already halted or the
    // device is quarantined; the refusal record carries the reason.
    span.verdict = "refused";
    if (!log_.records().empty()) span.rule = log_.records().back().alert_rule;
  } else if (!result.exec->executed) {
    span.verdict = "firmware_error";
  } else if (result.exec->silently_skipped) {
    span.verdict = "silently_skipped";
  } else {
    span.verdict = "pass";
  }
}

void Supervisor::update_metrics(const obs::SpanRecord& span, const SupervisedStep& result) {
  obs::Registry& reg = *options_.obs_metrics;
  reg.counter("rabit_commands_total", "", "Commands intercepted by the Supervisor").increment();
  reg.counter("rabit_verdicts_total", "verdict=\"" + span.verdict + "\"",
              "Per-command span verdicts")
      .increment();
  if (result.alert) {
    // Metric-friendly slugs, not the core::to_string banner text.
    std::string_view kind = "invalid_command";
    if (result.alert->kind == core::AlertKind::InvalidTrajectory) kind = "invalid_trajectory";
    if (result.alert->kind == core::AlertKind::DeviceMalfunction) kind = "device_malfunction";
    reg.counter("rabit_alerts_total", "kind=\"" + std::string(kind) + "\"", "Alerts by kind")
        .increment();
  }
  if (result.check_wall_us > 0) {
    reg.histogram("rabit_check_latency_us",
                  "Real microseconds spent in pre-execution engine checks per command")
        .observe(result.check_wall_us);
  }
  if (result.retries > 0) {
    reg.counter("rabit_recovery_retries_total", "", "Recovery-ladder command re-attempts")
        .increment(result.retries);
  }
  if (result.repolls > 0) {
    reg.counter("rabit_recovery_repolls_total", "", "Recovery-ladder status re-polls")
        .increment(result.repolls);
  }
  if (result.demoted) {
    reg.counter("rabit_assurance_demotions_total", "",
                "Motion commands demoted to the verified-safe controller")
        .increment();
  }
}

void Supervisor::append_recovery_record(const dev::Command& cmd, Outcome outcome,
                                        std::size_t attempt, const std::string& note) {
  TraceRecord r;
  r.command = cmd;
  r.outcome = outcome;
  r.attempt = attempt;
  if (!note.empty()) {
    r.alert_rule = "RECOVERY";
    r.alert_message = note;
  }
  log_.append(std::move(r));
  if (options_.obs_sink != nullptr) {
    std::string_view kind;
    switch (outcome) {
      case Outcome::TransientRetry: kind = "retry"; break;
      case Outcome::StatusRepoll: kind = "repoll"; break;
      case Outcome::SafeState: kind = "safe_state"; break;
      case Outcome::Quarantined: kind = "quarantine"; break;
      case Outcome::Demoted: kind = "demote"; break;
      default: kind = "rung"; break;
    }
    emit_rung(kind, cmd, attempt, note);
  }
}

void Supervisor::escalate(const dev::Command& cmd, bool quarantine_device) {
  // Re-entrancy guard: a fault raised by one of the safe controller's own
  // commands must not restart the escalation (or re-enter the retry ladder)
  // while the safe sequence is still draining — it would double-count
  // quarantines and draw from the BackoffClock mid-escalation, perturbing
  // the deterministic jitter stream.
  if (safe_controller_active_) return;
  if (!options_.recovery) return;
  const recovery::RecoveryPolicy& pol = *options_.recovery;
  safe_controller_active_ = true;

  if (quarantine_device && quarantined_.insert(cmd.device).second) {
    recovery_report_.quarantined.push_back(cmd.device);
    recovery_report_.events.push_back({recovery::RecoveryEvent::Kind::Quarantine, cmd.device,
                                       cmd.action, 0, backend_->modeled_clock_s(),
                                       "device removed from service"});
    append_recovery_record(cmd, Outcome::Quarantined, 0, "device removed from service");
  }

  if (pol.safe_state_on_escalation && !recovery_report_.safe_state_executed) {
    recovery_report_.safe_state_executed = true;
    recovery_report_.events.push_back({recovery::RecoveryEvent::Kind::SafeState, cmd.device,
                                       cmd.action, 0, backend_->modeled_clock_s(),
                                       "safe-state sequence started"});
    // The safe-state sequence is open-loop by design: the deck is in an
    // unknown state and a quarantined controller may reject commands, so
    // each is attempted once and failures are only counted.
    for (const dev::Command& safe_cmd : recovery::safe_state_sequence(*backend_, quarantined_)) {
      sim::ExecResult exec = backend_->execute(safe_cmd);
      ++recovery_report_.safe_state_commands;
      bool ok = exec.executed && !exec.silently_skipped;
      if (!ok) ++recovery_report_.safe_state_failures;
      append_recovery_record(safe_cmd, Outcome::SafeState, 0,
                             ok ? std::string() : "safe-state command failed");
    }
  }

  recovery_report_.halted = true;
  recovery_report_.events.push_back({recovery::RecoveryEvent::Kind::Halt, cmd.device, cmd.action,
                                     0, backend_->modeled_clock_s(), "experiment halted"});
  emit_rung("halt", cmd, 0, "experiment halted");
  safe_controller_active_ = false;
}

bool Supervisor::maybe_demote(const dev::Command& cmd, SupervisedStep& result,
                              TraceRecord& record) {
  const assurance::AssuranceConfig& cfg = *options_.assurance;
  if (!cfg.enabled || engine_ == nullptr) return false;
  sim::ExtendedSimulator* simulator = engine_->simulator();
  if (simulator == nullptr || engine_->config().variant != core::Variant::ModifiedWithSim) {
    return false;
  }

  // Fast path: the engine's own V3 replay already swept with the margin
  // folded in (set_assurance_margin, see the constructor) — a clean motion
  // costs the assurance layer nothing beyond this flag read. Only a trip
  // pays for the motion analysis and the exact margin profile below.
  if (!engine_->last_margin_tripped()) return false;

  std::optional<core::MotionAnalysis> motion = engine_->motion_analysis(cmd);
  if (!motion || motion->waypoints.size() < 2) return false;

  // Slow path: the inflated query over-approximates solids by their bounding
  // cuboid, so a trip is only a suspicion; the signed-margin profile settles
  // it and locates the violation for the switching-point derivation.
  sim::MarginProfile profile = timed_check(result.check_wall_us, [&] {
    return simulator->trajectory_margin(motion->waypoints, motion->held_clearance,
                                        motion->ignores);
  });
  assurance::Decision decision = assurance::decide(profile, cfg);
  if (!decision.demote) return false;

  // Demote: the advanced command is never forwarded. The verified-safe
  // controller advances (open-loop) to the last safe switching point and
  // parks; its commands are trusted, not re-supervised.
  safe_controller_active_ = true;
  ++recovery_report_.demotions;

  assurance::AssuranceEvent event;
  event.device = cmd.device;
  event.action = cmd.action;
  event.barrier_m = decision.h_min_m;
  event.switch_s_m = decision.s_star_m;
  event.violation_s_m = decision.s_viol_m;
  event.stop_distance_m = decision.stop_distance_m;
  event.trajectory_m = profile.length_m;
  event.obstacle = decision.obstacle;
  event.modeled_time_s = backend_->modeled_clock_s();
  const std::string note = event.describe();
  recovery_report_.events.push_back({recovery::RecoveryEvent::Kind::Demoted, cmd.device,
                                     cmd.action, 0, backend_->modeled_clock_s(), note});
  recovery_report_.assurance.push_back(event);

  result.alert = core::Alert{core::AlertKind::InvalidTrajectory, "RTA", note, cmd};
  result.demoted = true;
  record.outcome = Outcome::Demoted;
  record.alert_rule = "RTA";
  record.alert_message = note;
  if (options_.halt_on_alert) {
    halted_ = true;
    result.halted = true;
  }
  log_.append(std::move(record));
  emit_rung("demote", cmd, 0, note);

  std::vector<dev::Command> safe_cmds;
  const core::DeviceMeta* meta = engine_->config().find_device(motion->arm_id);
  if (decision.s_star_m > 1e-9 && meta != nullptr) {
    // Truncated advance: a real move_to (in the arm's own frame) to s*, so
    // the trace replays through the same motion pipeline as any script move.
    geom::Vec3 stop_lab = assurance::point_at_arc_length(motion->waypoints, decision.s_star_m);
    geom::Vec3 stop_arm = meta->base.inverse().apply(stop_lab);
    dev::Command advance;
    advance.device = motion->arm_id;
    advance.action = "move_to";
    json::Object args;
    json::Array pos;
    pos.emplace_back(stop_arm.x);
    pos.emplace_back(stop_arm.y);
    pos.emplace_back(stop_arm.z);
    args["position"] = std::move(pos);
    advance.args = json::Value(std::move(args));
    safe_cmds.push_back(std::move(advance));
  }
  dev::Command park;
  park.device = motion->arm_id;
  park.action = "go_sleep";
  safe_cmds.push_back(std::move(park));

  // The step's ExecResult reflects the *advanced* command (never executed);
  // damage from the safe stop — none, when the switching-point math holds —
  // is still attached so RunReport accounting cannot miss it.
  sim::ExecResult combined;
  combined.executed = false;
  for (const dev::Command& safe_cmd : safe_cmds) {
    sim::ExecResult exec = backend_->execute(safe_cmd);
    for (const sim::DamageEvent& e : exec.damage) combined.damage.push_back(e);
    bool ok = exec.executed && !exec.silently_skipped;
    TraceRecord safe_rec;
    safe_rec.command = safe_cmd;
    safe_rec.outcome = Outcome::SafeState;
    safe_rec.alert_rule = "RTA";
    safe_rec.alert_message = ok ? "assurance safe stop" : "safe-stop command failed";
    safe_rec.damage_events = exec.damage.size();
    log_.append(std::move(safe_rec));
    emit_rung("safe_state", safe_cmd, 0,
              ok ? "assurance safe stop" : "safe-stop command failed");
  }
  result.exec = std::move(combined);

  // Adopt reality: the arm is wherever the safe controller left it, not where
  // the demoted command's postconditions would have put it.
  engine_->resync_observed(backend_->fetch_status().snapshot);
  safe_controller_active_ = false;

  if (result.halted) {
    if (options_.recovery) {
      // The arm's configured geometry just proved untrustworthy — finish the
      // ladder: quarantine the device, then safe-state and halt.
      escalate(cmd, /*quarantine_device=*/true);
    } else {
      recovery_report_.halted = true;
    }
  }
  return true;
}

void Supervisor::execute_with_recovery(const dev::Command& cmd, SupervisedStep& result,
                                       TraceRecord& record) {
  const recovery::RecoveryPolicy& pol = *options_.recovery;
  const double deadline = backend_->modeled_clock_s() + pol.watchdog_timeout_s;
  std::size_t attempts_used = 0;
  bool watchdog_logged = false;
  bool used_ladder = false;
  std::vector<sim::DamageEvent> all_damage;

  auto watchdog_ok = [&] { return backend_->modeled_clock_s() < deadline; };
  auto note_watchdog = [&] {
    if (watchdog_logged) return;
    watchdog_logged = true;
    ++recovery_report_.watchdog_expirations;
    recovery_report_.events.push_back({recovery::RecoveryEvent::Kind::WatchdogExpired,
                                       cmd.device, cmd.action, attempts_used,
                                       backend_->modeled_clock_s(),
                                       "per-command watchdog expired"});
    emit_rung("watchdog", cmd, attempts_used, "per-command watchdog expired");
  };

  // Phase accounting for the obs span: everything the ladder waits for
  // (backoff, re-poll intervals) is the recovery phase; the remaining
  // modeled time (execution, status fetches) is dispatch.
  const double span_modeled_0 = modeled_now();
  const double span_recovery_0 = recovery_report_.recovery_time_s;
  std::chrono::steady_clock::time_point span_wall_0;
  if (active_span_ != nullptr) span_wall_0 = std::chrono::steady_clock::now();

  // One rung of the retry ladder: backoff wait + bookkeeping. Returns false
  // once the per-command budget or the watchdog is exhausted.
  auto take_retry = [&](const std::string& note) -> bool {
    if (safe_controller_active_) return false;  // never retry inside the safe controller
    if (attempts_used >= pol.max_retries) return false;
    if (!watchdog_ok()) {
      note_watchdog();
      return false;
    }
    ++attempts_used;
    ++result.retries;
    double wait = backoff_->wait_s(attempts_used);
    backend_->advance_clock(wait);
    ++recovery_report_.retries;
    recovery_report_.recovery_time_s += wait;
    recovery_report_.events.push_back({recovery::RecoveryEvent::Kind::Retry, cmd.device,
                                       cmd.action, attempts_used, backend_->modeled_clock_s(),
                                       note});
    append_recovery_record(cmd, Outcome::TransientRetry, attempts_used, note);
    return true;
  };

  // Line 12 with busy-retry absorption: a firmware-busy rejection is waited
  // out rather than surfaced, until the budget runs dry.
  auto execute_once = [&] {
    sim::ExecResult exec = backend_->execute(cmd);
    while (exec.transient_busy) {
      used_ladder = true;
      if (!take_retry("firmware busy")) break;
      exec = backend_->execute(cmd);
    }
    for (const sim::DamageEvent& e : exec.damage) all_damage.push_back(e);
    return exec;
  };

  sim::ExecResult exec = execute_once();

  std::optional<core::Alert> malfunction;
  if (engine_ != nullptr) {
    for (;;) {
      sim::LabBackend::StatusFetch fetched = backend_->fetch_status();
      std::vector<std::string> diffs = engine_->postcondition_mismatches(fetched.snapshot);

      // Stale-read filter: a divergence may be a status artifact (timeout
      // substituting a cached snapshot, stale firmware report), not damage.
      // Re-poll before judging.
      std::size_t repoll = 0;
      while (!diffs.empty() && repoll < pol.max_status_repolls && watchdog_ok()) {
        used_ladder = true;
        ++repoll;
        ++result.repolls;
        backend_->advance_clock(pol.repoll_interval_s);
        ++recovery_report_.repolls;
        recovery_report_.recovery_time_s += pol.repoll_interval_s;
        engine_->note_status_repoll();
        recovery_report_.events.push_back({recovery::RecoveryEvent::Kind::Repoll, cmd.device,
                                           cmd.action, repoll, backend_->modeled_clock_s(),
                                           "status re-poll"});
        append_recovery_record(cmd, Outcome::StatusRepoll, repoll, std::string());
        fetched = backend_->fetch_status();
        diffs = engine_->postcondition_mismatches(fetched.snapshot);
      }

      if (diffs.empty()) {
        engine_->resync_observed(fetched.snapshot);  // line 16
        break;
      }

      // The divergence survived re-polling: adopt reality (line 16), then
      // either retry the command with a re-armed expectation or declare the
      // malfunction the paper's line 14 would have declared immediately.
      used_ladder = true;
      engine_->resync_observed(fetched.snapshot);
      if (!take_retry("postcondition divergence")) {
        malfunction = engine_->declare_malfunction(cmd, diffs);
        break;
      }
      engine_->apply_expected(cmd);
      exec = execute_once();
    }
  }

  result.exec = exec;
  result.exec->damage = all_damage;
  record.damage_events = all_damage.size();
  if (!exec.executed) {
    record.outcome = Outcome::FirmwareError;
  } else if (exec.silently_skipped) {
    record.outcome = Outcome::SilentlySkipped;
  } else {
    record.outcome = Outcome::Executed;
  }

  if (malfunction) {
    result.alert = malfunction;
    record.outcome = Outcome::MalfunctionFlagged;
    record.alert_rule = malfunction->rule;
    record.alert_message = malfunction->message;
    if (options_.halt_on_alert) {
      halted_ = true;
      result.halted = true;
    }
  } else if (used_ladder) {
    ++recovery_report_.transients_absorbed;
  }

  if (active_span_ != nullptr) {
    double wall_us = std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() - span_wall_0)
                         .count();
    double recovery_modeled = recovery_report_.recovery_time_s - span_recovery_0;
    double dispatch_modeled = modeled_now() - span_modeled_0 - recovery_modeled;
    active_span_->phases.push_back({obs::Phase::Dispatch, dispatch_modeled, wall_us});
    if (used_ladder) {
      active_span_->phases.push_back({obs::Phase::Recovery, recovery_modeled, 0.0});
    }
  }

  log_.append(std::move(record));
  if (result.halted) escalate(cmd, /*quarantine_device=*/true);
}

SupervisedStep Supervisor::step(const dev::Command& cmd) {
  if (options_.obs_sink == nullptr) {
    // Observability disabled: one branch, no span allocation, no timing.
    if (options_.obs_metrics == nullptr) return step_impl(cmd);
  }
  obs::SpanRecord span;
  span.stream = options_.obs_stream;
  span.seq = span_seq_++;
  span.device = cmd.device;
  span.action = cmd.action;
  span.source_line = cmd.source_line;
  span.t0_modeled_s = modeled_now();
  active_span_ = &span;
  if (engine_ != nullptr) engine_->set_span(&span);
  SupervisedStep result = step_impl(cmd);
  if (engine_ != nullptr) engine_->set_span(nullptr);
  active_span_ = nullptr;
  finalize_span(span, result);
  if (options_.obs_metrics != nullptr) update_metrics(span, result);
  if (options_.obs_sink != nullptr) options_.obs_sink->on_span(std::move(span));
  return result;
}

SupervisedStep Supervisor::step_impl(const dev::Command& cmd) {
  SupervisedStep result;
  result.command = cmd;

  TraceRecord record;
  record.command = cmd;

  if (halted_) {
    // The experiment already stopped; refuse further commands.
    result.halted = true;
    record.outcome = Outcome::Blocked;
    record.alert_rule = "HALTED";
    record.alert_message = "experiment already halted";
    log_.append(std::move(record));
    return result;
  }

  if (options_.recovery && quarantined_.contains(cmd.device)) {
    // A quarantined device is out of service until a human clears it.
    record.outcome = Outcome::Blocked;
    record.alert_rule = "QUARANTINE";
    record.alert_message = cmd.device + " is quarantined; command refused";
    log_.append(std::move(record));
    return result;
  }

  // Lines 6-10: pre-execution checks. Precondition and trajectory alerts
  // flag *script* bugs — retrying the same command cannot fix those. The one
  // ladder rung that does apply is the status re-poll: the check runs
  // against the last fetched snapshot, and a stale or timed-out status
  // channel can make a safe script look unsafe. A genuine script bug
  // re-checks identically on fresh data, so re-polling never masks one.
  if (engine_ != nullptr) {
    std::optional<core::Alert> pre_alert =
        timed_check(result.check_wall_us, [&] { return engine_->check_command(cmd); });
    if (pre_alert && options_.recovery) {
      const recovery::RecoveryPolicy& pol = *options_.recovery;
      for (std::size_t repoll = 1; pre_alert && repoll <= pol.max_status_repolls; ++repoll) {
        backend_->advance_clock(pol.repoll_interval_s);
        engine_->resync_observed(backend_->fetch_status().snapshot);
        engine_->note_status_repoll();
        ++result.repolls;
        ++recovery_report_.repolls;
        recovery_report_.events.push_back({recovery::RecoveryEvent::Kind::Repoll, cmd.device,
                                           cmd.action, repoll, backend_->modeled_clock_s(),
                                           "re-polling status before declaring " +
                                               pre_alert->rule + " violation"});
        append_recovery_record(cmd, Outcome::StatusRepoll, repoll, "");
        if (active_span_ != nullptr) {
          active_span_->phases.push_back({obs::Phase::Recovery, pol.repoll_interval_s, 0.0});
        }
        pre_alert =
            timed_check(result.check_wall_us, [&] { return engine_->check_command(cmd); });
      }
      if (!pre_alert) ++recovery_report_.transients_absorbed;
    }
    if (pre_alert) {
      core::Alert alert = *pre_alert;
      result.alert = alert;
      record.outcome = Outcome::Blocked;
      record.alert_rule = alert.rule;
      record.alert_message = alert.message;
      if (options_.halt_on_alert) {
        halted_ = true;
        result.halted = true;
      }
      log_.append(std::move(record));
      if (result.halted) escalate(cmd, /*quarantine_device=*/false);
      return result;
    }
    // Runtime-assurance decision module: a motion whose barrier profile dips
    // below the floor is demoted to the verified-safe controller here —
    // before line 11, so the tracker never adopts expectations the advanced
    // command will not realize.
    if (options_.assurance && maybe_demote(cmd, result, record)) return result;
    engine_->apply_expected(cmd);  // line 11
  }

  if (options_.recovery) {
    execute_with_recovery(cmd, result, record);
    return result;
  }

  // Line 12: forward to the device.
  std::chrono::steady_clock::time_point phase_t0;
  double phase_m0 = 0.0;
  if (active_span_ != nullptr) {
    phase_t0 = std::chrono::steady_clock::now();
    phase_m0 = modeled_now();
  }
  sim::ExecResult exec = backend_->execute(cmd);
  if (active_span_ != nullptr) {
    auto t1 = std::chrono::steady_clock::now();
    active_span_->phases.push_back(
        {obs::Phase::Dispatch, modeled_now() - phase_m0,
         std::chrono::duration<double, std::micro>(t1 - phase_t0).count()});
    phase_t0 = t1;
    phase_m0 = modeled_now();
  }
  result.exec = exec;
  record.damage_events = exec.damage.size();
  if (!exec.executed) {
    record.outcome = Outcome::FirmwareError;
  } else if (exec.silently_skipped) {
    record.outcome = Outcome::SilentlySkipped;
  } else {
    record.outcome = Outcome::Executed;
  }

  // Lines 13-16: postcondition verification.
  if (engine_ != nullptr) {
    auto observed = backend_->fetch_status().snapshot;
    if (auto alert = engine_->verify_postconditions(cmd, observed)) {
      result.alert = alert;
      record.outcome = Outcome::MalfunctionFlagged;
      record.alert_rule = alert->rule;
      record.alert_message = alert->message;
      if (options_.halt_on_alert) {
        halted_ = true;
        result.halted = true;
      }
    }
    if (active_span_ != nullptr) {
      active_span_->phases.push_back(
          {obs::Phase::Postcondition, modeled_now() - phase_m0,
           std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                     phase_t0)
               .count()});
    }
  }

  log_.append(std::move(record));
  return result;
}

RunReport Supervisor::run(const std::vector<dev::Command>& workflow) {
  start();
  RunReport report;
  double overhead_before =
      engine_ != nullptr ? engine_->modeled_overhead_s() : 0.0;
  double backend_clock_before = backend_->modeled_clock_s();

  for (const dev::Command& cmd : workflow) {
    SupervisedStep step_result = step(cmd);
    std::size_t index = report.steps.size();
    report.check_wall_s += step_result.check_wall_us * 1e-6;

    if (step_result.alert) {
      ++report.alerts;
      if (!report.first_alert_step) report.first_alert_step = index;
    }
    if (step_result.exec) {
      for (const sim::DamageEvent& e : step_result.exec->damage) {
        if (!report.first_damage_step) report.first_damage_step = index;
        report.damage.push_back(e);
      }
    }
    bool halted_now = step_result.halted;
    report.steps.push_back(std::move(step_result));
    if (halted_now) {
      report.halted = true;
      break;
    }
  }

  report.modeled_runtime_s = backend_->modeled_clock_s() - backend_clock_before;
  report.modeled_overhead_s =
      (engine_ != nullptr ? engine_->modeled_overhead_s() : 0.0) - overhead_before;
  if (options_.recovery || options_.assurance) report.recovery = recovery_report_;
  if (engine_ != nullptr) {
    report.degraded_checks = engine_->stats().degraded_checks;
    // Absorb the engine's ad-hoc Stats counters into the metrics registry
    // (they reset on start(), so each run adds exactly its own activity).
    if (options_.obs_metrics != nullptr) engine_->export_stats(*options_.obs_metrics);
  }
  return report;
}

}  // namespace rabit::trace
