// rabit::sim — collision world model shared by ground truth and prediction.
//
// The paper's Extended Simulator (§III) models every automation device as a
// 3D cuboid and polls the robot arm's trajectory against them. The same
// path-checking primitive serves two roles here:
//   * ground truth — the LabBackend sweeps the arm's *actual* motion through
//     the *complete* physical world and records real damage;
//   * prediction — the ExtendedSimulator sweeps the *planned* motion through
//     its *configured* world model (which may be incomplete; that is exactly
//     how detection gaps arise in §IV).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "geometry/geometry.hpp"
#include "geometry/solid.hpp"

namespace rabit::sim {

/// What a box in the world stands for; determines damage severity when hit.
enum class ObstacleKind {
  Ground,     ///< floor / mounting platform
  Wall,       ///< room or enclosure walls
  Grid,       ///< vial rack (inexpensive)
  Equipment,  ///< expensive automation device
  Vial,       ///< a standing vial (glassware)
  SoftWall,   ///< virtual software-defined wall (space multiplexing, §IV) —
              ///< crossing it is a rule violation but causes no damage
  ParkedArm,  ///< a sleeping robot arm modeled as a cuboid (time multiplexing)
};

[[nodiscard]] std::string_view to_string(ObstacleKind k);

struct NamedBox {
  std::string name;
  geom::Aabb box;
  ObstacleKind kind = ObstacleKind::Equipment;
  /// Optional refined (non-cuboid) shape — the §V-C extension. When present,
  /// collision queries use it instead of the bounding cuboid; `box` must be
  /// its bounding box.
  std::optional<geom::Solid> solid;

  [[nodiscard]] bool contains(const geom::Vec3& p) const {
    return solid ? solid->contains(p) : box.contains(p);
  }
  [[nodiscard]] bool intersects(const geom::Aabb& other) const {
    return solid ? solid->intersects_box(other) : box.intersects(other);
  }
};

/// Another arm's current link, treated as a dynamic obstacle.
struct ArmSegmentObstacle {
  std::string arm_id;
  geom::Segment segment;
  double radius = 0.05;
};

struct WorldModel {
  std::vector<NamedBox> boxes;
  std::vector<ArmSegmentObstacle> arm_segments;

  void add_box(std::string name, const geom::Aabb& box, ObstacleKind kind);
  /// Adds a refined-shape obstacle (bounding box derived from the solid).
  void add_solid(std::string name, geom::Solid solid, ObstacleKind kind);
  [[nodiscard]] const NamedBox* find_box(std::string_view name) const;

  /// First box (if any) containing the point.
  [[nodiscard]] const NamedBox* box_containing(const geom::Vec3& p) const;

  /// Mutation counter consumed by the collision-verdict cache and the broad
  /// phase. add_box/add_solid/set_arm_segment bump it automatically; code
  /// that mutates `boxes`/`arm_segments` directly must call bump_epoch()
  /// afterwards or cached verdicts may go stale (element-count changes are
  /// additionally caught by the cache's size fingerprint).
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  void bump_epoch() { ++epoch_; }

  /// Updates (or inserts) another arm's link obstacle, bumping the epoch.
  void set_arm_segment(std::string arm_id, const geom::Segment& segment, double radius);

 private:
  std::uint64_t epoch_ = 0;
};

/// Uniform-grid broad phase over a WorldModel's box AABBs. Queries return a
/// conservative superset of the boxes intersecting an axis-aligned region,
/// in ascending box-index order, so narrow-phase iteration visits boxes in
/// exactly the order a full scan would — verdicts stay byte-identical.
///
/// The grid snapshots the world at build time; rebuild() after the world's
/// epoch changes. Queries are const and touch no mutable state, so a built
/// grid is safe to share across threads.
class BroadPhaseGrid {
 public:
  BroadPhaseGrid() = default;
  explicit BroadPhaseGrid(const WorldModel& world) { rebuild(world); }

  void rebuild(const WorldModel& world);

  /// Number of boxes indexed at build time (sanity check against the world).
  [[nodiscard]] std::size_t box_count() const { return box_count_; }

  /// Appends the indices (ascending, deduplicated) of all boxes whose AABB
  /// may intersect `query` to `out` (cleared first).
  void candidates(const geom::Aabb& query, std::vector<std::size_t>& out) const;

 private:
  [[nodiscard]] std::size_t cell_index(int x, int y, int z) const {
    return (static_cast<std::size_t>(z) * static_cast<std::size_t>(ny_) +
            static_cast<std::size_t>(y)) *
               static_cast<std::size_t>(nx_) +
           static_cast<std::size_t>(x);
  }
  void cell_range(const geom::Aabb& box, int& x0, int& x1, int& y0, int& y1, int& z0,
                  int& z1) const;

  geom::Vec3 origin_;
  geom::Vec3 inv_cell_;             ///< 1 / cell size, per axis
  geom::Vec3 cell_size_;
  int nx_ = 0, ny_ = 0, nz_ = 0;
  std::vector<std::vector<std::uint32_t>> cells_;
  std::size_t box_count_ = 0;
  /// Boxes with no spatial extent overlap possible are still kept in an
  /// "oversize" list when they span most of the grid (cheaper than flooding
  /// every cell with the ground plane / wall indices).
  std::vector<std::uint32_t> oversize_;
};

struct CollisionReport {
  std::string obstacle;     ///< box name or other arm id
  ObstacleKind kind = ObstacleKind::Equipment;
  geom::Vec3 position;      ///< where along the path contact happened (lab)
  bool via_held_object = false;  ///< the held vial hit, not the arm itself
  bool arm_vs_arm = false;

  [[nodiscard]] std::string describe() const;
};

/// Path-check parameters. `step` is the polling resolution of the paper's
/// trajectory polling (ablation A2 sweeps it).
struct PathCheckOptions {
  double step = 0.01;              ///< metres between samples
  double moving_arm_radius = 0.05; ///< collision radius of the moving tool
  double held_half_width = 0.012;  ///< held vial half width (m)
  bool include_soft_walls = true;  ///< treat SoftWall boxes as obstacles
  /// Boxes whose name appears here are skipped (e.g. the device the arm is
  /// deliberately reaching into through an open door).
  std::vector<std::string> ignore;
  /// RTA fast path: grow every obstacle (and arm-segment clearance) by this
  /// margin so a clear verdict certifies clearance >= inflate along the whole
  /// path. Ground boxes are exempt — every pick/place approaches the deck
  /// vertically, so deck clearance is governed by the exact check, not the
  /// barrier. Solids are inflated via their bounding cuboid (a conservative
  /// over-approximation; the margin-profile slow path settles false trips).
  double inflate = 0.0;
};

/// Sweeps a straight tip path from `start` to `goal` (lab frame) through the
/// world. `held_clearance` extends the checked volume below the tip by the
/// held object's length (the Bug D fix: arm dimensions change when holding).
/// Returns the first collision, or nullopt for a clear path.
///
/// When `grid` is a broad phase built from this world (same box count), only
/// boxes whose AABB overlaps the swept volume are narrow-phase tested; a
/// mismatched or null grid falls back to the full scan. Either way the
/// verdict is identical.
[[nodiscard]] std::optional<CollisionReport> check_path(const WorldModel& world,
                                                        const geom::Vec3& start,
                                                        const geom::Vec3& goal,
                                                        double held_clearance,
                                                        const PathCheckOptions& options = {},
                                                        const BroadPhaseGrid* grid = nullptr);

/// Point-in-world query with the same held-object semantics, for validating
/// a single target location (the fallback when no simulator is available:
/// "only the target location is checked", paper §II-B lines 8-10).
[[nodiscard]] std::optional<CollisionReport> check_point(const WorldModel& world,
                                                         const geom::Vec3& point,
                                                         double held_clearance,
                                                         const PathCheckOptions& options = {},
                                                         const BroadPhaseGrid* grid = nullptr);

// ---------------------------------------------------------------------------
// Runtime-assurance margin profile
// ---------------------------------------------------------------------------

/// One barrier sample: signed clearance h at arc length s along the path.
struct MarginSample {
  double s = 0.0;         ///< arc length from the path start (m)
  double h = 0.0;         ///< signed clearance to the nearest obstacle (m)
  std::string obstacle;   ///< which obstacle realizes h (empty if none apply)
};

/// CBF-style barrier profile h(s) of a piecewise-linear tip path: at every
/// polling sample, the signed clearance to the nearest non-ignored obstacle
/// (boxes by exact solid distance, other arms by link-segment distance minus
/// the combined radii, the held object by box separation). Ground boxes are
/// excluded — see PathCheckOptions::inflate. h > 0 means clear by that much;
/// h < 0 means the sample penetrates.
struct MarginProfile {
  double length_m = 0.0;  ///< total arc length of the sampled path
  double min_margin_m = 0.0;
  double min_s_m = 0.0;         ///< arc length where min_margin_m occurs
  std::string min_obstacle;
  std::vector<MarginSample> samples;  ///< in ascending s order
};

/// Sweeps the full profile (no broad phase — this is the RTA slow path, taken
/// only after the inflated fast check trips). Mirrors check_path semantics:
/// the departure sample s=0 is skipped (the arm may leave a spot that brushes
/// a boundary), soft walls count per `options`, `options.ignore` filters, and
/// the held volume hangs `held_clearance` below the tip.
[[nodiscard]] MarginProfile margin_profile(const WorldModel& world,
                                           const std::vector<geom::Vec3>& waypoints,
                                           double held_clearance,
                                           const PathCheckOptions& options = {});

}  // namespace rabit::sim
