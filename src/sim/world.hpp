// rabit::sim — collision world model shared by ground truth and prediction.
//
// The paper's Extended Simulator (§III) models every automation device as a
// 3D cuboid and polls the robot arm's trajectory against them. The same
// path-checking primitive serves two roles here:
//   * ground truth — the LabBackend sweeps the arm's *actual* motion through
//     the *complete* physical world and records real damage;
//   * prediction — the ExtendedSimulator sweeps the *planned* motion through
//     its *configured* world model (which may be incomplete; that is exactly
//     how detection gaps arise in §IV).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "geometry/geometry.hpp"
#include "geometry/solid.hpp"

namespace rabit::sim {

/// What a box in the world stands for; determines damage severity when hit.
enum class ObstacleKind {
  Ground,     ///< floor / mounting platform
  Wall,       ///< room or enclosure walls
  Grid,       ///< vial rack (inexpensive)
  Equipment,  ///< expensive automation device
  Vial,       ///< a standing vial (glassware)
  SoftWall,   ///< virtual software-defined wall (space multiplexing, §IV) —
              ///< crossing it is a rule violation but causes no damage
  ParkedArm,  ///< a sleeping robot arm modeled as a cuboid (time multiplexing)
};

[[nodiscard]] std::string_view to_string(ObstacleKind k);

struct NamedBox {
  std::string name;
  geom::Aabb box;
  ObstacleKind kind = ObstacleKind::Equipment;
  /// Optional refined (non-cuboid) shape — the §V-C extension. When present,
  /// collision queries use it instead of the bounding cuboid; `box` must be
  /// its bounding box.
  std::optional<geom::Solid> solid;

  [[nodiscard]] bool contains(const geom::Vec3& p) const {
    return solid ? solid->contains(p) : box.contains(p);
  }
  [[nodiscard]] bool intersects(const geom::Aabb& other) const {
    return solid ? solid->intersects_box(other) : box.intersects(other);
  }
};

/// Another arm's current link, treated as a dynamic obstacle.
struct ArmSegmentObstacle {
  std::string arm_id;
  geom::Segment segment;
  double radius = 0.05;
};

struct WorldModel {
  std::vector<NamedBox> boxes;
  std::vector<ArmSegmentObstacle> arm_segments;

  void add_box(std::string name, const geom::Aabb& box, ObstacleKind kind);
  /// Adds a refined-shape obstacle (bounding box derived from the solid).
  void add_solid(std::string name, geom::Solid solid, ObstacleKind kind);
  [[nodiscard]] const NamedBox* find_box(std::string_view name) const;

  /// First box (if any) containing the point.
  [[nodiscard]] const NamedBox* box_containing(const geom::Vec3& p) const;
};

struct CollisionReport {
  std::string obstacle;     ///< box name or other arm id
  ObstacleKind kind = ObstacleKind::Equipment;
  geom::Vec3 position;      ///< where along the path contact happened (lab)
  bool via_held_object = false;  ///< the held vial hit, not the arm itself
  bool arm_vs_arm = false;

  [[nodiscard]] std::string describe() const;
};

/// Path-check parameters. `step` is the polling resolution of the paper's
/// trajectory polling (ablation A2 sweeps it).
struct PathCheckOptions {
  double step = 0.01;              ///< metres between samples
  double moving_arm_radius = 0.05; ///< collision radius of the moving tool
  double held_half_width = 0.012;  ///< held vial half width (m)
  bool include_soft_walls = true;  ///< treat SoftWall boxes as obstacles
  /// Boxes whose name appears here are skipped (e.g. the device the arm is
  /// deliberately reaching into through an open door).
  std::vector<std::string> ignore;
};

/// Sweeps a straight tip path from `start` to `goal` (lab frame) through the
/// world. `held_clearance` extends the checked volume below the tip by the
/// held object's length (the Bug D fix: arm dimensions change when holding).
/// Returns the first collision, or nullopt for a clear path.
[[nodiscard]] std::optional<CollisionReport> check_path(const WorldModel& world,
                                                        const geom::Vec3& start,
                                                        const geom::Vec3& goal,
                                                        double held_clearance,
                                                        const PathCheckOptions& options = {});

/// Point-in-world query with the same held-object semantics, for validating
/// a single target location (the fallback when no simulator is available:
/// "only the target location is checked", paper §II-B lines 8-10).
[[nodiscard]] std::optional<CollisionReport> check_point(const WorldModel& world,
                                                         const geom::Vec3& point,
                                                         double held_clearance,
                                                         const PathCheckOptions& options = {});

}  // namespace rabit::sim
