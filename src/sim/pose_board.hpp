// rabit::sim pose board — live epoch-versioned arm-pose snapshots for the
// sharded fleet runner.
//
// Each shard of a plan-driven campaign owns its whole lab, so the only state
// that crosses a shard boundary at runtime is "where is that other arm right
// now". The board gives every arm one fixed seqlock slot: the owning shard
// publishes the arm's pose under a monotonically increasing epoch after each
// executed step, and readers in other shards take the latest published
// snapshot without locking or blocking the writer.
//
// Memory model (the canonical all-atomic seqlock):
//   writer  seq <- s+1 (odd, relaxed); release fence; data stores (relaxed);
//           seq <- s+2 (even, release)
//   reader  s1 <- seq (acquire); retry while odd; data loads (relaxed);
//           acquire fence; s2 <- seq (relaxed); retry unless s1 == s2
// Every field is a std::atomic, so a torn read is impossible by construction
// (TSan-clean) and the seq check only guards snapshot *consistency* across
// the three coordinates. Publication is additionally serialized per slot by
// a tiny spin flag so the coordination path may publish on behalf of a shard
// without write-write races; readers never touch it.
//
// Soundness is the consumer's job: a reader may observe a pose up to one
// publication stale. The fleet layer tolerates that by only using board
// poses where an IndependenceCertificate bounds the arm inside a static
// envelope — every pose the arm ever publishes lies in that envelope, so a
// stale read changes no verdict (see DESIGN "Sharded fleet execution").
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "geometry/geometry.hpp"

namespace rabit::sim {

/// One arm's slot. Immovable (atomics); lives in the board's fixed table.
class PoseSlot {
 public:
  struct Snapshot {
    geom::Vec3 pose;
    /// Publication count for this slot: 0 never published, 1 the initial
    /// campaign-start pose, then +1 per publish. Monotone per slot.
    std::uint64_t epoch = 0;
  };

  PoseSlot() = default;
  PoseSlot(const PoseSlot&) = delete;
  PoseSlot& operator=(const PoseSlot&) = delete;

  /// Publishes a new pose under the next epoch. Writers are serialized per
  /// slot (spin flag); readers are never blocked.
  void publish(const geom::Vec3& pose);

  /// Lock-free consistent snapshot: retries while a publish is in flight.
  [[nodiscard]] Snapshot read() const;

  /// The current epoch alone (for lag accounting; same ordering as read()).
  [[nodiscard]] std::uint64_t epoch() const {
    return seq_.load(std::memory_order_acquire) / 2;
  }

 private:
  std::atomic<std::uint64_t> seq_{0};  ///< even: stable, epoch = seq/2
  std::atomic<double> x_{0.0};
  std::atomic<double> y_{0.0};
  std::atomic<double> z_{0.0};
  std::atomic_flag write_lock_ = ATOMIC_FLAG_INIT;
};

/// Fixed table of slots, one per arm, built once at campaign start. Lookup
/// is read-only after construction, so concurrent find/read/publish across
/// shards needs no table lock.
class PoseBoard {
 public:
  PoseBoard() = default;
  /// Seeds one slot per arm and publishes the initial pose (epoch 1).
  explicit PoseBoard(const std::map<std::string, geom::Vec3, std::less<>>& initial);

  [[nodiscard]] const PoseSlot* find(std::string_view arm_id) const;
  [[nodiscard]] PoseSlot* find(std::string_view arm_id);

  /// Publishes through the arm's slot; a miss (unknown arm) is ignored.
  void publish(std::string_view arm_id, const geom::Vec3& pose);

  /// Snapshot of the arm's slot, or nullopt for an unknown arm.
  [[nodiscard]] std::optional<PoseSlot::Snapshot> read(std::string_view arm_id) const;

  [[nodiscard]] std::vector<std::string> arm_ids() const;
  [[nodiscard]] bool empty() const { return slots_.empty(); }

 private:
  std::map<std::string, PoseSlot, std::less<>> slots_;
};

}  // namespace rabit::sim
