#include "sim/deck.hpp"

#include <memory>

namespace rabit::sim {

using dev::DeviceCategory;
using geom::Aabb;
using geom::Transform;
using geom::Vec3;

namespace {

// Deck geometry (lab frame, metres). The mounting platform's top surface is
// at z = kPlatformTop; everything sits on it. Values echo the Fig. 6 scale
// (pickup heights of 0.10-0.23 m above the platform).
constexpr double kPlatformTop = 0.02;

void add_static_geometry(LabBackend& b) {
  b.add_static_obstacle("platform", Aabb(Vec3(-1.0, -1.0, -0.5), Vec3(1.0, 1.0, kPlatformTop)),
                        ObstacleKind::Ground);
  b.add_static_obstacle("wall_north", Aabb(Vec3(-1.0, 0.9, -0.5), Vec3(1.0, 1.0, 1.5)),
                        ObstacleKind::Wall);
  b.add_static_obstacle("wall_south", Aabb(Vec3(-1.0, -1.0, -0.5), Vec3(1.0, -0.9, 1.5)),
                        ObstacleKind::Wall);
  b.add_static_obstacle("wall_east", Aabb(Vec3(0.9, -1.0, -0.5), Vec3(1.0, 1.0, 1.5)),
                        ObstacleKind::Wall);
  b.add_static_obstacle("wall_west", Aabb(Vec3(-1.0, -1.0, -0.5), Vec3(-0.9, 1.0, 1.5)),
                        ObstacleKind::Wall);
}

void add_stations(LabBackend& b) {
  auto& reg = b.registry();

  // Vial grid: a 2x2 rack. Tray top at 0.06; seated vials are grabbed at
  // z = 0.11 (tray top + most of a 7 cm vial).
  Aabb grid_box = Aabb::from_center(Vec3(0.35, 0.25, 0.04), Vec3(0.20, 0.20, 0.04));
  reg.add(std::make_unique<dev::VialGrid>(
      deck_ids::kGrid, std::vector<std::string>{"NW", "NE", "SW", "SE"}, grid_box));
  const double grab_z = 0.11;
  b.add_site({"grid.NW", Vec3(0.30, 0.30, grab_z), deck_ids::kGrid, "NW", ""});
  b.add_site({"grid.NE", Vec3(0.40, 0.30, grab_z), deck_ids::kGrid, "NE", ""});
  b.add_site({"grid.SW", Vec3(0.30, 0.20, grab_z), deck_ids::kGrid, "SW", ""});
  b.add_site({"grid.SE", Vec3(0.40, 0.20, grab_z), deck_ids::kGrid, "SE", ""});

  // Solid dosing device, with the fragile software-controlled glass door.
  reg.add(std::make_unique<dev::DosingDeviceModel>(
      deck_ids::kDosingDevice,
      Aabb::from_center(Vec3(0.0, 0.45, 0.12), Vec3(0.16, 0.16, 0.20))));
  b.add_site({"dosing_device", Vec3(0.0, 0.45, 0.10), "", "", deck_ids::kDosingDevice});

  // Automated syringe pump (doses via tubing; no receptacle site needed).
  reg.add(std::make_unique<dev::SyringePumpModel>(
      deck_ids::kSyringePump, /*reservoir_ml=*/500.0,
      Aabb::from_center(Vec3(-0.20, -0.35, 0.10), Vec3(0.10, 0.10, 0.16))));

  // Hotplate: vials sit on top of the plate.
  reg.add(std::make_unique<dev::HotplateModel>(
      deck_ids::kHotplate, /*firmware_limit_c=*/340.0, /*hazard_threshold_c=*/150.0,
      Aabb::from_center(Vec3(-0.35, 0.25, 0.06), Vec3(0.12, 0.12, 0.08))));
  b.add_site({"hotplate", Vec3(-0.35, 0.25, 0.16), "", "", deck_ids::kHotplate});

  // Centrifuge, with a door and the red-dot-marked rotor port.
  reg.add(std::make_unique<dev::CentrifugeModel>(
      deck_ids::kCentrifuge,
      Aabb::from_center(Vec3(-0.45, 0.0, 0.10), Vec3(0.18, 0.18, 0.16))));
  b.add_site({"centrifuge", Vec3(-0.45, 0.0, 0.10), "", "", deck_ids::kCentrifuge});

  // Thermoshaker.
  reg.add(std::make_unique<dev::ThermoshakerModel>(
      deck_ids::kThermoshaker, /*firmware_limit_c=*/110.0,
      Aabb::from_center(Vec3(0.35, -0.25, 0.07), Vec3(0.14, 0.14, 0.10))));
  b.add_site({"thermoshaker", Vec3(0.35, -0.25, 0.14), "", "", deck_ids::kThermoshaker});

  // Camera for solubility measurement (no deck footprint).
  reg.add(std::make_unique<dev::GenericActionDevice>(
      deck_ids::kCamera, std::vector<dev::GenericActionDevice::ValueActionSpec>{},
      /*has_door=*/false, std::nullopt));

  // Two vials: the working vial at grid.NW and a spare at grid.SE.
  auto& vial1 = dynamic_cast<dev::Vial&>(reg.add(std::make_unique<dev::Vial>(
      deck_ids::kVial1, /*capacity_mg=*/10.0, /*capacity_ml=*/15.0, "grid.NW")));
  auto& vial2 = dynamic_cast<dev::Vial&>(reg.add(std::make_unique<dev::Vial>(
      deck_ids::kVial2, /*capacity_mg=*/10.0, /*capacity_ml=*/15.0, "grid.SE")));
  auto& grid = dynamic_cast<dev::VialGrid&>(reg.at(deck_ids::kGrid));
  grid.place("NW", vial1.id());
  grid.place("SE", vial2.id());
}

/// Tunes an arm's named poses to deck-safe tip positions (the generic
/// presets can park below the platform on some geometries, e.g. Ned2).
void tune_pose(dev::RobotArmDevice& arm, std::string_view pose, const Vec3& local_tip) {
  kin::IkResult ik = arm.model().inverse(arm.to_lab(local_tip), arm.joints());
  if (!ik.joints) {
    throw std::logic_error(arm.id() + ": deck pose '" + std::string(pose) + "' unreachable");
  }
  arm.set_named_pose(pose, *ik.joints);
}

}  // namespace

void build_hein_production_deck(LabBackend& backend) {
  add_static_geometry(backend);
  // UR3e mounted at the deck origin; real controllers refuse unreachable
  // targets with an error rather than skipping them.
  auto& ur3e = dynamic_cast<dev::RobotArmDevice&>(backend.registry().add(
      std::make_unique<dev::RobotArmDevice>(
          deck_ids::kUr3e, kin::make_ur3e(Transform::translation(Vec3(0.0, 0.0, kPlatformTop))),
          dev::MotionPolicy::ThrowOnUnreachable)));
  tune_pose(ur3e, "home", Vec3(0.20, 0.0, 0.40));
  tune_pose(ur3e, "sleep", Vec3(0.15, 0.0, 0.15));
  ur3e.commit_move(ur3e.plan_pose("home"), "home");
  add_stations(backend);
}

void build_hein_testbed_deck(LabBackend& backend) {
  add_static_geometry(backend);
  // ViperX at the origin (silently skips unreachable targets, §IV cat. 4);
  // Ned2 mounted opposite, rotated to face it — deliberately a different
  // coordinate frame, as in the real testbed.
  auto& viperx = dynamic_cast<dev::RobotArmDevice&>(backend.registry().add(
      std::make_unique<dev::RobotArmDevice>(
          deck_ids::kViperX,
          kin::make_viperx300(Transform::translation(Vec3(0.0, 0.0, kPlatformTop))),
          dev::MotionPolicy::SilentSkipOnUnreachable)));
  auto& ned2 = dynamic_cast<dev::RobotArmDevice&>(backend.registry().add(
      std::make_unique<dev::RobotArmDevice>(
          deck_ids::kNed2,
          kin::make_ned2(Transform::translation(Vec3(0.60, 0.10, kPlatformTop)) *
                         Transform::rotation_z(3.14159265358979323846)),
          dev::MotionPolicy::ThrowOnUnreachable)));
  tune_pose(viperx, "home", Vec3(0.25, 0.0, 0.30));
  tune_pose(viperx, "sleep", Vec3(0.12, -0.10, 0.12));
  tune_pose(ned2, "home", Vec3(0.20, 0.0, 0.25));
  tune_pose(ned2, "sleep", Vec3(0.15, 0.0, 0.12));
  // Testbed discipline: both arms start parked so either may move first
  // under time multiplexing.
  viperx.commit_move(viperx.plan_pose("sleep"), "sleep");
  ned2.commit_move(ned2.plan_pose("sleep"), "sleep");
  add_stations(backend);
}

WorldModel deck_world_model(const LabBackend& backend, const DeckModelOptions& options) {
  WorldModel world;
  if (options.include_ground_and_walls) {
    for (const NamedBox& box : backend.static_obstacles()) world.boxes.push_back(box);
  }
  if (options.include_devices) {
    for (const dev::Device* d : backend.registry().all()) {
      auto fp = d->footprint();
      if (!fp) continue;
      bool is_grid = dynamic_cast<const dev::VialGrid*>(d) != nullptr;
      if (is_grid && !options.include_grid) continue;
      ObstacleKind kind = is_grid ? ObstacleKind::Grid : ObstacleKind::Equipment;
      if (options.refined_shapes) {
        if (auto solid = d->shape()) {
          world.add_solid(d->id(), std::move(*solid), kind);
          continue;
        }
      }
      world.add_box(d->id(), *fp, kind);
    }
  }
  return world;
}

json::Value deck_world_json(const LabBackend& backend, const DeckModelOptions& options) {
  WorldModel world = deck_world_model(backend, options);
  json::Array objects;
  for (const NamedBox& b : world.boxes) {
    json::Object obj;
    obj["name"] = b.name;
    obj["kind"] = std::string(to_string(b.kind));
    geom::Vec3 c = b.box.center();
    geom::Vec3 s = b.box.size();
    obj["center"] = json::Array{c.x, c.y, c.z};
    obj["size"] = json::Array{s.x, s.y, s.z};
    objects.emplace_back(std::move(obj));
  }
  json::Object root;
  root["objects"] = std::move(objects);
  return json::Value(std::move(root));
}

}  // namespace rabit::sim
