#include "sim/pose_board.hpp"

#include <thread>

namespace rabit::sim {

void PoseSlot::publish(const geom::Vec3& pose) {
  while (write_lock_.test_and_set(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  std::uint64_t s = seq_.load(std::memory_order_relaxed);
  seq_.store(s + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  x_.store(pose.x, std::memory_order_relaxed);
  y_.store(pose.y, std::memory_order_relaxed);
  z_.store(pose.z, std::memory_order_relaxed);
  seq_.store(s + 2, std::memory_order_release);
  write_lock_.clear(std::memory_order_release);
}

PoseSlot::Snapshot PoseSlot::read() const {
  for (;;) {
    std::uint64_t s1 = seq_.load(std::memory_order_acquire);
    if ((s1 & 1U) != 0) {
      std::this_thread::yield();
      continue;
    }
    Snapshot snap;
    snap.pose.x = x_.load(std::memory_order_relaxed);
    snap.pose.y = y_.load(std::memory_order_relaxed);
    snap.pose.z = z_.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    std::uint64_t s2 = seq_.load(std::memory_order_relaxed);
    if (s1 == s2) {
      snap.epoch = s2 / 2;
      return snap;
    }
  }
}

PoseBoard::PoseBoard(const std::map<std::string, geom::Vec3, std::less<>>& initial) {
  // Two passes: the slot table must be complete (and so never rehash or
  // rebalance again) before any pose is published through it.
  for (const auto& [arm, pose] : initial) slots_[arm];
  for (const auto& [arm, pose] : initial) slots_.find(arm)->second.publish(pose);
}

const PoseSlot* PoseBoard::find(std::string_view arm_id) const {
  auto it = slots_.find(arm_id);
  return it == slots_.end() ? nullptr : &it->second;
}

PoseSlot* PoseBoard::find(std::string_view arm_id) {
  auto it = slots_.find(arm_id);
  return it == slots_.end() ? nullptr : &it->second;
}

void PoseBoard::publish(std::string_view arm_id, const geom::Vec3& pose) {
  if (PoseSlot* slot = find(arm_id)) slot->publish(pose);
}

std::optional<PoseSlot::Snapshot> PoseBoard::read(std::string_view arm_id) const {
  const PoseSlot* slot = find(arm_id);
  if (slot == nullptr) return std::nullopt;
  return slot->read();
}

std::vector<std::string> PoseBoard::arm_ids() const {
  std::vector<std::string> out;
  out.reserve(slots_.size());
  for (const auto& [arm, slot] : slots_) out.push_back(arm);
  return out;
}

}  // namespace rabit::sim
