#include "sim/backend.hpp"

#include <algorithm>
#include <cmath>

namespace rabit::sim {

using dev::Command;
using dev::DeviceCategory;
using dev::Severity;
using geom::Vec3;

namespace {

/// Grab/seat tolerance: how close the gripper tip must be to a site to
/// interact with whatever sits there. Generous enough to absorb testbed
/// imprecision, far smaller than inter-site spacing.
constexpr double kSiteTolerance = 0.035;

/// Dropping a held vial from higher than this above the deck shatters it.
constexpr double kSafeDropHeight = 0.03;

double severity_cost(Severity s) {
  switch (s) {
    case Severity::Low: return 10.0;
    case Severity::MediumLow: return 50.0;
    case Severity::MediumHigh: return 500.0;
    case Severity::High: return 5000.0;
  }
  return 0.0;
}

/// Doored stations share no base class beyond DoorMixin; resolve it.
dev::DoorMixin* as_door(dev::Device& d) { return dynamic_cast<dev::DoorMixin*>(&d); }

}  // namespace

StageProfile simulator_profile() {
  // Fast exploration, perfect positioning of a virtual arm, poor fidelity of
  // results, and no physical damage possible.
  return StageProfile{"simulator", 0.05, 0.0, 0.15, 0.0};
}

StageProfile testbed_profile() {
  // Cheap educational arms: slower than simulation, imprecise, mockup-grade
  // results, and breaking things is cheap cardboard.
  return StageProfile{"testbed", 1.0, 0.005, 0.05, 0.1};
}

StageProfile production_profile() {
  // Real UR3e and Mettler-Toledo hardware: slow, precise, accurate, and very
  // expensive to damage.
  return StageProfile{"production", 2.0, 0.0005, 0.01, 1.0};
}

dev::Severity collision_severity(const CollisionReport& hit) {
  if (hit.arm_vs_arm) return Severity::MediumHigh;
  switch (hit.kind) {
    case ObstacleKind::Ground:
    case ObstacleKind::Wall:
    case ObstacleKind::Grid:
    case ObstacleKind::ParkedArm:
      return Severity::MediumHigh;
    case ObstacleKind::Equipment:
      return Severity::High;
    case ObstacleKind::Vial:
      return Severity::MediumLow;
    case ObstacleKind::SoftWall:
      return Severity::Low;  // virtual: crossing it damages nothing
  }
  return Severity::Low;
}

LabBackend::LabBackend(StageProfile profile, unsigned seed)
    : profile_(std::move(profile)), rng_(seed) {}

void LabBackend::add_static_obstacle(std::string name, const geom::Aabb& box, ObstacleKind kind) {
  static_.push_back(NamedBox{std::move(name), box, kind, std::nullopt});
}

void LabBackend::add_site(SiteBinding site) {
  if (find_site(site.name) != nullptr) {
    throw std::invalid_argument("LabBackend: duplicate site '" + site.name + "'");
  }
  sites_.push_back(std::move(site));
}

const SiteBinding* LabBackend::find_site(std::string_view name) const {
  for (const SiteBinding& s : sites_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const SiteBinding* LabBackend::site_near(const Vec3& lab_point, double tolerance) const {
  const SiteBinding* best = nullptr;
  double best_dist = tolerance;
  for (const SiteBinding& s : sites_) {
    double d = s.lab_position.distance_to(lab_point);
    if (d <= best_dist) {
      best_dist = d;
      best = &s;
    }
  }
  return best;
}

dev::RobotArmDevice& LabBackend::arm(std::string_view id) {
  auto* a = dynamic_cast<dev::RobotArmDevice*>(&registry_.at(id));
  if (a == nullptr) {
    throw std::out_of_range("LabBackend: '" + std::string(id) + "' is not a robot arm");
  }
  return *a;
}

dev::Vial& LabBackend::vial(std::string_view id) {
  auto* v = dynamic_cast<dev::Vial*>(&registry_.at(id));
  if (v == nullptr) {
    throw std::out_of_range("LabBackend: '" + std::string(id) + "' is not a vial");
  }
  return *v;
}

WorldModel LabBackend::ground_truth_world(std::string_view moving_arm) const {
  WorldModel world;
  world.boxes = static_;
  for (const dev::Device* d : registry_.all()) {
    if (d->id() == moving_arm) continue;
    if (auto fp = d->footprint()) {
      ObstacleKind kind = dynamic_cast<const dev::VialGrid*>(d) != nullptr
                              ? ObstacleKind::Grid
                              : ObstacleKind::Equipment;
      // Ground truth uses the device's *real* shape; the cuboid is only the
      // configured approximation RABIT checks against.
      if (auto solid = d->shape()) {
        world.add_solid(d->id(), std::move(*solid), kind);
      } else {
        world.add_box(d->id(), *fp, kind);
      }
    }
    if (const auto* other = dynamic_cast<const dev::RobotArmDevice*>(d)) {
      for (const geom::Segment& seg : other->model().link_segments(other->joints())) {
        world.arm_segments.push_back(
            ArmSegmentObstacle{other->id(), seg, other->model().link_radius()});
      }
    }
  }
  return world;
}

double LabBackend::true_solubility(const dev::Vial& v) {
  // Simple dissolution model: 1 mL of solvent dissolves up to 20 mg of solid.
  constexpr double kMgPerMl = 20.0;
  double solid = v.solid_mg();
  if (solid <= 0) return 1.0;
  return std::min(1.0, v.liquid_ml() * kMgPerMl / solid);
}

double LabBackend::measure_solubility(const dev::Vial& v) {
  std::normal_distribution<double> noise(0.0, profile_.measurement_noise_sigma);
  return std::clamp(true_solubility(v) + noise(rng_), 0.0, 1.0);
}

double LabBackend::total_damage_cost() const {
  double total = 0.0;
  for (const DamageEvent& e : damage_log_) total += severity_cost(e.severity);
  return total * profile_.damage_cost_factor;
}

void LabBackend::advance_clock(double seconds) {
  modeled_clock_s_ += std::max(0.0, seconds);
}

void LabBackend::set_fault_schedule(dev::FaultSchedule schedule) {
  fault_schedule_ = std::move(schedule);
}

LabBackend::StatusFetch LabBackend::fetch_status() {
  StatusFetch fetch;
  if (fault_schedule_) fault_schedule_->arm_permanent_plans(registry_, modeled_clock_s_);
  for (const dev::Device* d : registry_.all()) {
    const std::string& id = d->id();
    std::optional<dev::TransientKind> fault;
    if (fault_schedule_) fault = fault_schedule_->on_status_read(id, modeled_clock_s_);
    if (auto cached = last_status_.find(id); fault && cached != last_status_.end()) {
      (*fault == dev::TransientKind::StatusTimeout ? fetch.timed_out : fetch.stale).push_back(id);
      fetch.snapshot[id] = cached->second;
      continue;
    }
    // Fresh read (also taken on a fault's very first poll of a device: there
    // is no earlier snapshot a stale read could replay).
    dev::StateMap observed = d->observed_state();
    last_status_[id] = observed;
    fetch.snapshot[id] = std::move(observed);
  }
  return fetch;
}

// ---------------------------------------------------------------------------
// Command execution
// ---------------------------------------------------------------------------

ExecResult LabBackend::execute(const Command& cmd) {
  ExecResult r;
  r.modeled_latency_s = profile_.command_latency_s;
  modeled_clock_s_ += r.modeled_latency_s;

  dev::Device* d = registry_.find(cmd.device);
  if (d == nullptr) {
    throw std::out_of_range("LabBackend: unknown device '" + cmd.device + "'");
  }

  if (fault_schedule_) {
    fault_schedule_->arm_permanent_plans(registry_, modeled_clock_s_);
    if (auto kind = fault_schedule_->on_command_attempt(cmd.device, cmd.action,
                                                        modeled_clock_s_)) {
      ++commands_executed_;
      if (*kind == dev::TransientKind::FirmwareBusy) {
        r.executed = false;
        r.transient_busy = true;
        r.firmware_error = cmd.device + ": firmware busy, command temporarily rejected";
      } else {  // DeadAction: accepted, but nothing physically happens.
        r.executed = true;
      }
      return r;
    }
  }

  try {
    if (auto* a = dynamic_cast<dev::RobotArmDevice*>(d)) {
      if (cmd.action == "move_to" || cmd.action == "move_pose" || cmd.action == "go_home" ||
          cmd.action == "go_sleep") {
        handle_arm_move(*a, cmd, r);
      } else if (cmd.action == "open_gripper") {
        handle_gripper(*a, /*open=*/true, r);
      } else if (cmd.action == "close_gripper") {
        handle_gripper(*a, /*open=*/false, r);
      } else if (cmd.action == "pick_object") {
        handle_composite_pick(*a, cmd, r);
      } else if (cmd.action == "place_object") {
        handle_composite_place(*a, cmd, r);
      } else {
        d->execute(cmd);
      }
      r.executed = r.firmware_error.empty();
    } else if (cmd.action == "set_door" &&
               (as_door(*d) != nullptr || dynamic_cast<dev::MultiDoorStation*>(d) != nullptr)) {
      handle_set_door(*d, cmd, r);
      r.executed = r.firmware_error.empty();
    } else if (cmd.action == "measure_solubility") {
      const json::Value* target = cmd.args.find("target");
      if (target == nullptr || !target->is_string()) {
        throw dev::DeviceError(dev::DeviceError::Code::BadArgument,
                               "measure_solubility requires 'target'");
      }
      r.measurement = measure_solubility(vial(target->as_string()));
      r.executed = true;
    } else {
      d->execute(cmd);
      after_station_action(*d, cmd, r);
      r.executed = true;
    }
  } catch (const dev::DeviceError& e) {
    r.executed = false;
    r.firmware_error = e.what();
  }

  drain_hazards(r);
  ++commands_executed_;
  return r;
}

void LabBackend::handle_arm_move(dev::RobotArmDevice& a, const Command& cmd, ExecResult& r) {
  dev::MotionPlan plan;
  if (cmd.action == "move_to" || cmd.action == "move_pose") {
    const json::Value* pos = cmd.args.find("position");
    if (pos == nullptr || !pos->is_array() || pos->as_array().size() != 3) {
      throw dev::DeviceError(dev::DeviceError::Code::BadArgument,
                             "move_to requires 'position' = [x, y, z]");
    }
    const json::Array& p = pos->as_array();
    plan = a.plan_move(Vec3(p[0].as_double(), p[1].as_double(), p[2].as_double()));
  } else {
    plan = a.plan_pose(cmd.action == "go_home" ? "home" : "sleep");
  }

  if (plan.skipped) {
    // ViperX-style controller: unreachable target quietly ignored (§IV cat. 4).
    r.silently_skipped = true;
    return;
  }
  perform_motion(a, plan, r,
                 cmd.action == "go_home" ? "home"
                 : cmd.action == "go_sleep" ? "sleep"
                                            : "custom");
}

void LabBackend::perform_motion(dev::RobotArmDevice& a, const dev::MotionPlan& plan,
                                ExecResult& r, std::string_view pose_name) {
  Vec3 start = a.position_lab();
  Vec3 goal = plan.target_lab;

  WorldModel world = ground_truth_world(a.id());
  PathCheckOptions options;
  options.include_soft_walls = false;  // soft walls are virtual, never physical
  options.moving_arm_radius = a.model().link_radius();

  // Deliberate station interactions: when the start or the goal is a bound
  // site, the arm is *supposed* to reach over/into that station, so its box
  // is not an accidental obstacle. Doored receptacles additionally require
  // an open door — a closed door is smashed, not ignored.
  auto maybe_ignore = [&](const SiteBinding* site) {
    if (site == nullptr) return;
    if (site->is_grid_slot()) options.ignore.push_back(site->grid_device);
    if (site->is_receptacle()) {
      dev::Device& station = registry_.at(site->receptacle_device);
      if (auto* multi = dynamic_cast<dev::MultiDoorStation*>(&station)) {
        // Entry through the side the arm approaches from.
        if (multi->door_status(multi->door_facing(start).name) == "open") {
          options.ignore.push_back(site->receptacle_device);
        }
        return;
      }
      dev::DoorMixin* door = as_door(station);
      if (door == nullptr || door->door_status() == "open") {
        options.ignore.push_back(site->receptacle_device);
      }
    }
  };
  maybe_ignore(site_near(start, kSiteTolerance));
  maybe_ignore(site_near(goal, kSiteTolerance));

  std::optional<CollisionReport> hit =
      check_path(world, start, goal, a.held_clearance(), options);
  if (hit) {
    record_collision(a, *hit, r);
    if (hit->via_held_object && !a.holding().empty()) {
      // The held vial smashed; the arm itself continues unharmed (Bug D
      // with a vial: "the vial crashed to the ground and broke").
      dev::Vial& v = vial(a.holding());
      v.shatter(hit->describe());
      v.set_location("lost");
      a.set_holding("");
    }
  }

  // The arm ends at the goal (a real crash leaves the arm at the point of
  // impact; modeling the full dynamics adds nothing for rule evaluation).
  a.commit_move(plan, pose_name);
  update_inside_flag(a);

  std::normal_distribution<double> noise(0.0, profile_.position_noise_sigma_m);
  Vec3 err(noise(rng_), noise(rng_), noise(rng_));
  position_errors_.push_back(err.norm());
}

void LabBackend::record_collision(dev::RobotArmDevice& a, const CollisionReport& hit,
                                  ExecResult& r) {
  Severity sev = collision_severity(hit);
  DamageEvent event{sev, a.id() + ": " + hit.describe(), a.id(), commands_executed_};
  r.damage.push_back(event);
  damage_log_.push_back(event);

  // Crashing into a doored station also smashes its glass door.
  if (!hit.arm_vs_arm && !hit.via_held_object) {
    if (dev::Device* station = registry_.find(hit.obstacle)) {
      if (dev::DoorMixin* door = as_door(*station)) {
        if (door->door_status() != "open") door->break_door();
      } else if (auto* multi = dynamic_cast<dev::MultiDoorStation*>(station)) {
        const auto& facing = multi->door_facing(hit.position);
        if (multi->door_status(facing.name) != "open") multi->break_door(facing.name);
      }
    }
  }
}

void LabBackend::update_inside_flag(dev::RobotArmDevice& a) {
  Vec3 tip = a.position_lab();
  std::string inside;
  for (dev::Device* d : registry_.all()) {
    if (as_door(*d) == nullptr && dynamic_cast<dev::MultiDoorStation*>(d) == nullptr) continue;
    if (auto fp = d->footprint(); fp && fp->inflated(0.01).contains(tip)) {
      inside = d->id();
      break;
    }
  }
  a.set_inside_device(inside);
}

// ---------------------------------------------------------------------------
// Gripper physics
// ---------------------------------------------------------------------------

dev::Vial* LabBackend::vial_at_site(const SiteBinding& site) {
  std::string vial_id;
  if (site.is_grid_slot()) {
    auto& grid = dynamic_cast<dev::VialGrid&>(registry_.at(site.grid_device));
    vial_id = grid.occupant(site.grid_slot);
  } else if (site.is_receptacle()) {
    dev::Device& station = registry_.at(site.receptacle_device);
    if (auto* dosing = dynamic_cast<dev::DosingDeviceModel*>(&station)) {
      vial_id = dosing->container_inside();
    } else if (auto* cf = dynamic_cast<dev::CentrifugeModel*>(&station)) {
      vial_id = cf->container_inside();
    } else if (auto* ts = dynamic_cast<dev::ThermoshakerModel*>(&station)) {
      vial_id = ts->container_inside();
    } else if (auto* hp = dynamic_cast<dev::HotplateModel*>(&station)) {
      vial_id = hp->container_on();
    } else if (auto* gen = dynamic_cast<dev::GenericActionDevice*>(&station)) {
      vial_id = gen->container_inside();
    } else if (auto* multi = dynamic_cast<dev::MultiDoorStation*>(&station)) {
      vial_id = multi->container_inside();
    }
  } else {
    // Bare waypoint: a vial may simply be standing there.
    for (dev::Device* d : registry_.all()) {
      if (auto* v = dynamic_cast<dev::Vial*>(d); v != nullptr && v->location() == site.name) {
        return v;
      }
    }
    return nullptr;
  }
  if (vial_id.empty()) return nullptr;
  return &vial(vial_id);
}

void LabBackend::detach_vial_from_site(const SiteBinding& site) {
  if (site.is_grid_slot()) {
    auto& grid = dynamic_cast<dev::VialGrid&>(registry_.at(site.grid_device));
    grid.remove(site.grid_slot);
  } else if (site.is_receptacle()) {
    dev::Device& station = registry_.at(site.receptacle_device);
    if (auto* dosing = dynamic_cast<dev::DosingDeviceModel*>(&station)) {
      dosing->set_container_inside("");
    } else if (auto* cf = dynamic_cast<dev::CentrifugeModel*>(&station)) {
      cf->set_container_inside("");
    } else if (auto* ts = dynamic_cast<dev::ThermoshakerModel*>(&station)) {
      ts->set_container_inside("");
    } else if (auto* hp = dynamic_cast<dev::HotplateModel*>(&station)) {
      hp->set_container_on("");
    } else if (auto* gen = dynamic_cast<dev::GenericActionDevice*>(&station)) {
      gen->set_container_inside("");
    } else if (auto* multi = dynamic_cast<dev::MultiDoorStation*>(&station)) {
      multi->set_container_inside("");
    }
  }
}

void LabBackend::seat_vial(dev::Vial& v, const SiteBinding& site, ExecResult& r) {
  dev::Vial* occupant = vial_at_site(site);
  if (occupant != nullptr) {
    // Footnote 1 of the paper: the vial left behind collides with the new
    // vial in the next iteration.
    if (site.is_receptacle()) {
      dev::Device& station = registry_.at(site.receptacle_device);
      station.note_hazard("incoming vial crashed into vial already inside", Severity::High);
      occupant->shatter("struck by incoming vial inside " + site.receptacle_device);
      v.shatter("crashed into occupant of " + site.receptacle_device);
      v.set_location("lost");
      return;
    }
    if (site.is_grid_slot()) {
      auto& grid = dynamic_cast<dev::VialGrid&>(registry_.at(site.grid_device));
      grid.place(site.grid_slot, v.id());  // notes the glass-break hazard
      v.shatter("dropped onto occupied slot " + site.grid_slot);
      v.set_location("lost");
      return;
    }
  }

  if (site.is_grid_slot()) {
    auto& grid = dynamic_cast<dev::VialGrid&>(registry_.at(site.grid_device));
    grid.place(site.grid_slot, v.id());
  } else if (site.is_receptacle()) {
    dev::Device& station = registry_.at(site.receptacle_device);
    if (auto* dosing = dynamic_cast<dev::DosingDeviceModel*>(&station)) {
      dosing->set_container_inside(v.id());
    } else if (auto* cf = dynamic_cast<dev::CentrifugeModel*>(&station)) {
      cf->set_container_inside(v.id());
    } else if (auto* ts = dynamic_cast<dev::ThermoshakerModel*>(&station)) {
      ts->set_container_inside(v.id());
    } else if (auto* hp = dynamic_cast<dev::HotplateModel*>(&station)) {
      hp->set_container_on(v.id());
    } else if (auto* gen = dynamic_cast<dev::GenericActionDevice*>(&station)) {
      gen->set_container_inside(v.id());
    } else if (auto* multi = dynamic_cast<dev::MultiDoorStation*>(&station)) {
      multi->set_container_inside(v.id());
    }
  }
  v.set_location(site.name);
  (void)r;
}

void LabBackend::handle_gripper(dev::RobotArmDevice& a, bool open, ExecResult& r) {
  Vec3 tip = a.position_lab();
  const SiteBinding* site = site_near(tip, kSiteTolerance);

  if (!open) {
    // Closing: grab whatever stands at the current site, if empty-handed.
    a.set_gripper(false);
    if (!a.holding().empty() || site == nullptr) return;
    dev::Vial* v = vial_at_site(*site);
    if (v == nullptr || v->is_broken()) return;
    detach_vial_from_site(*site);
    v->set_location("arm:" + a.id());
    a.set_holding(v->id());
    return;
  }

  // Opening: release whatever is held.
  a.set_gripper(true);
  if (a.holding().empty()) return;
  dev::Vial& v = vial(a.holding());
  a.set_holding("");
  if (site != nullptr) {
    seat_vial(v, *site, r);
    return;
  }
  // Released in mid-air away from any site.
  double drop = tip.z - a.held_clearance();
  if (drop > kSafeDropHeight) {
    v.shatter("dropped from height by " + a.id());
    v.set_location("lost");
  } else {
    v.set_location("bench");
  }
}

// ---------------------------------------------------------------------------
// Composite pick/place (the production deck's robot.pick_up_vial() style)
// ---------------------------------------------------------------------------

namespace {
/// Composites lift, traverse at a safe height, then descend — the motion
/// sequence real pick-and-place wrappers use.
constexpr double kCompositeSafeLift = 0.22;
}  // namespace

void LabBackend::handle_composite(dev::RobotArmDevice& a, const Command& cmd, bool pick,
                                  ExecResult& r) {
  const char* what = pick ? "pick_object" : "place_object";
  const json::Value* site_arg = cmd.args.find("site");
  if (site_arg == nullptr || !site_arg->is_string()) {
    throw dev::DeviceError(dev::DeviceError::Code::BadArgument,
                           std::string(what) + " requires 'site'");
  }
  const SiteBinding* site = find_site(site_arg->as_string());
  if (site == nullptr) {
    throw dev::DeviceError(dev::DeviceError::Code::BadArgument,
                           std::string(what) + ": unknown site '" + site_arg->as_string() + "'");
  }

  Vec3 start_lab = a.position_lab();
  double safe_z = site->lab_position.z + kCompositeSafeLift;
  const Vec3 legs[] = {
      Vec3(start_lab.x, start_lab.y, safe_z),
      Vec3(site->lab_position.x, site->lab_position.y, safe_z),
      site->lab_position,
  };
  for (const Vec3& waypoint : legs) {
    dev::MotionPlan plan = a.plan_move(a.to_local(waypoint));
    if (plan.skipped) {
      r.silently_skipped = true;
      return;
    }
    perform_motion(a, plan, r);
  }
  handle_gripper(a, /*open=*/!pick, r);
}

void LabBackend::handle_composite_pick(dev::RobotArmDevice& a, const Command& cmd,
                                       ExecResult& r) {
  handle_composite(a, cmd, /*pick=*/true, r);
}

void LabBackend::handle_composite_place(dev::RobotArmDevice& a, const Command& cmd,
                                        ExecResult& r) {
  handle_composite(a, cmd, /*pick=*/false, r);
}

// ---------------------------------------------------------------------------
// Stations
// ---------------------------------------------------------------------------

void LabBackend::handle_set_door(dev::Device& d, const Command& cmd, ExecResult& r) {
  const json::Value* state = cmd.args.find("state");
  bool closing = state != nullptr && state->is_string() && state->as_string() == "closed";
  if (closing) {
    // A door swinging shut onto an arm that is still inside smashes the door
    // (footnote 1 of the paper: the broken glass door incident).
    for (dev::Device* other : registry_.all()) {
      auto* a = dynamic_cast<dev::RobotArmDevice*>(other);
      if (a != nullptr && a->inside_device() == d.id()) {
        if (auto* multi = dynamic_cast<dev::MultiDoorStation*>(&d)) {
          const json::Value* door_arg = cmd.args.find("door");
          std::string door = door_arg != nullptr && door_arg->is_string()
                                 ? door_arg->as_string()
                                 : multi->doors().front().name;
          multi->break_door(door);
        } else {
          as_door(d)->break_door();
        }
        DamageEvent event{Severity::High,
                          d.id() + ": door closed onto " + a->id() + ", glass door broken",
                          d.id(), commands_executed_};
        r.damage.push_back(event);
        damage_log_.push_back(event);
        return;  // the door never reached the closed state
      }
    }
  }
  d.execute(cmd);
}

void LabBackend::after_station_action(dev::Device& d, const Command& cmd, ExecResult& r) {
  (void)r;
  if (auto* dosing = dynamic_cast<dev::DosingDeviceModel*>(&d)) {
    if (cmd.action == "run_action") {
      double pending = dosing->take_pending_dose_mg();
      if (dosing->door_status() == "open") {
        dosing->note_hazard("dosing with door open, powder escaped", Severity::Low);
      }
      if (dosing->container_inside().empty()) {
        dosing->note_hazard("dosed " + std::to_string(pending) + " mg into empty chamber, wasted",
                            Severity::Low);
      } else {
        vial(dosing->container_inside()).add_solid(pending);
      }
    }
    return;
  }
  if (auto* pump = dynamic_cast<dev::SyringePumpModel*>(&d)) {
    if (cmd.action == "dose_solvent") {
      dev::SyringePumpModel::PendingDispense pending = pump->take_pending_dispense();
      double available = pump->drain_held(pending.volume_ml);
      auto* target = dynamic_cast<dev::Vial*>(registry_.find(pending.target));
      if (target == nullptr) {
        pump->note_hazard("dispensed " + std::to_string(available) + " mL into nothing, wasted",
                          Severity::Low);
      } else {
        target->add_liquid(available);
      }
    }
    return;
  }
  if (auto* cf = dynamic_cast<dev::CentrifugeModel*>(&d)) {
    if (cmd.action == "start_spin" && !cf->container_inside().empty()) {
      dev::Vial& v = vial(cf->container_inside());
      if (!v.has_stopper()) v.spill_contents("centrifuged without stopper");
    }
    return;
  }
  if (auto* ts = dynamic_cast<dev::ThermoshakerModel*>(&d)) {
    if (cmd.action == "shake" && ts->shake_rpm() > 0 && !ts->container_inside().empty()) {
      dev::Vial& v = vial(ts->container_inside());
      if (!v.has_stopper() && v.liquid_ml() > 0) {
        v.spill_contents("shaken without stopper");
      }
    }
    return;
  }
}

void LabBackend::drain_hazards(ExecResult& r) {
  for (dev::Device* d : registry_.all()) {
    for (dev::Hazard& h : d->take_hazards()) {
      DamageEvent event{h.severity, h.description, h.device, commands_executed_};
      r.damage.push_back(event);
      damage_log_.push_back(event);
    }
  }
}

}  // namespace rabit::sim
