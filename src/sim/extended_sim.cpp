#include "sim/extended_sim.hpp"

namespace rabit::sim {

namespace {

ObstacleKind kind_from_name(const std::string& name) {
  if (name == "ground") return ObstacleKind::Ground;
  if (name == "wall") return ObstacleKind::Wall;
  if (name == "grid") return ObstacleKind::Grid;
  if (name == "equipment") return ObstacleKind::Equipment;
  if (name == "vial") return ObstacleKind::Vial;
  if (name == "soft_wall") return ObstacleKind::SoftWall;
  if (name == "parked_arm") return ObstacleKind::ParkedArm;
  throw std::runtime_error("ExtendedSimulator: unknown obstacle kind '" + name + "'");
}

geom::Vec3 vec3_from_json(const json::Value& v, const char* what) {
  if (!v.is_array() || v.as_array().size() != 3) {
    throw std::runtime_error(std::string("ExtendedSimulator: ") + what +
                             " must be an array of 3 numbers");
  }
  const json::Array& a = v.as_array();
  return geom::Vec3(a[0].as_double(), a[1].as_double(), a[2].as_double());
}

void hash_combine(std::size_t& seed, std::size_t v) {
  seed ^= v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

}  // namespace

std::size_t ExtendedSimulator::VerdictKeyHash::operator()(const VerdictKey& k) const {
  std::size_t seed = 0;
  std::hash<double> hd;
  std::hash<std::string> hs;
  hash_combine(seed, hd(k.start.x));
  hash_combine(seed, hd(k.start.y));
  hash_combine(seed, hd(k.start.z));
  hash_combine(seed, hd(k.goal.x));
  hash_combine(seed, hd(k.goal.y));
  hash_combine(seed, hd(k.goal.z));
  hash_combine(seed, hd(k.clearance));
  hash_combine(seed, hd(k.inflate));
  for (const std::string& s : k.ignore) hash_combine(seed, hs(s));
  return seed;
}

ExtendedSimulator::ExtendedSimulator(WorldModel world, Options options)
    : world_(std::move(world)), options_(options) {
  if (options_.polling_step_m <= 0) {
    throw std::invalid_argument("ExtendedSimulator: polling step must be positive");
  }
}

WorldModel ExtendedSimulator::world_from_json(const json::Value& config) {
  WorldModel world;
  const json::Value* objects = config.find("objects");
  if (objects == nullptr || !objects->is_array()) {
    throw std::runtime_error("ExtendedSimulator: config needs an 'objects' array");
  }
  for (const json::Value& obj : objects->as_array()) {
    if (!obj.is_object()) throw std::runtime_error("ExtendedSimulator: object must be a map");
    const json::Value* name = obj.find("name");
    const json::Value* center = obj.find("center");
    const json::Value* size = obj.find("size");
    if (name == nullptr || !name->is_string() || center == nullptr || size == nullptr) {
      throw std::runtime_error("ExtendedSimulator: object needs name/center/size");
    }
    ObstacleKind kind = kind_from_name(obj.get_or("kind", std::string("equipment")));
    world.add_box(name->as_string(),
                  geom::Aabb::from_center(vec3_from_json(*center, "center"),
                                          vec3_from_json(*size, "size")),
                  kind);
  }
  return world;
}

void ExtendedSimulator::charge_latency() const {
  checks_.fetch_add(1, std::memory_order_relaxed);
  double cost = options_.gui_enabled ? options_.gui_latency_s : options_.headless_latency_s;
  std::lock_guard<std::mutex> lock(cache_mutex_);
  modeled_latency_s_ += cost;
}

double ExtendedSimulator::modeled_latency_s() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return modeled_latency_s_;
}

std::uint64_t ExtendedSimulator::world_revision() const {
  // Element counts are folded in so a direct boxes.push_back that forgot
  // bump_epoch() still invalidates; in-place coordinate edits need the bump.
  return world_.epoch() * 0x100000001b3ULL + world_.boxes.size() * 8191 +
         world_.arm_segments.size();
}

std::optional<CollisionReport> ExtendedSimulator::cached_path_check(
    const geom::Vec3& start, const geom::Vec3& goal, double held_clearance,
    const std::vector<std::string>& ignore, double inflate) const {
  PathCheckOptions opts;
  opts.step = options_.polling_step_m;
  opts.ignore = ignore;
  opts.inflate = inflate;

  if (!options_.use_broad_phase && !options_.use_verdict_cache) {
    narrow_runs_.fetch_add(1, std::memory_order_relaxed);
    return check_path(world_, start, goal, held_clearance, opts);
  }

  std::lock_guard<std::mutex> lock(cache_mutex_);
  std::uint64_t revision = world_revision();
  if (revision != cache_revision_) {
    if (options_.use_broad_phase) grid_.rebuild(world_);
    verdicts_.clear();
    cache_revision_ = revision;
  }

  VerdictKey key{start, goal, held_clearance, inflate, ignore};
  if (options_.use_verdict_cache) {
    if (auto it = verdicts_.find(key); it != verdicts_.end()) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }

  narrow_runs_.fetch_add(1, std::memory_order_relaxed);
  std::optional<CollisionReport> verdict = check_path(
      world_, start, goal, held_clearance, opts, options_.use_broad_phase ? &grid_ : nullptr);
  if (options_.use_verdict_cache) {
    if (verdicts_.size() >= options_.verdict_cache_capacity) verdicts_.clear();
    verdicts_.emplace(std::move(key), verdict);
  }
  return verdict;
}

std::optional<CollisionReport> ExtendedSimulator::validate_trajectory(
    const geom::Vec3& start, const geom::Vec3& goal, double held_clearance) const {
  static const std::vector<std::string> kNoIgnores;
  return validate_trajectory(start, goal, held_clearance, kNoIgnores);
}

std::optional<CollisionReport> ExtendedSimulator::validate_trajectory(
    const geom::Vec3& start, const geom::Vec3& goal, double held_clearance,
    const std::vector<std::string>& ignore) const {
  charge_latency();
  return cached_path_check(start, goal, held_clearance, ignore);
}

std::optional<CollisionReport> ExtendedSimulator::validate_trajectory_margin(
    const geom::Vec3& start, const geom::Vec3& goal, double held_clearance,
    const std::vector<std::string>& ignore, double margin, bool charge_modeled) const {
  if (charge_modeled) charge_latency();
  return cached_path_check(start, goal, held_clearance, ignore, margin);
}

std::optional<CollisionReport> ExtendedSimulator::validate_trajectory_margin(
    const std::vector<geom::Vec3>& waypoints, double held_clearance,
    const std::vector<std::string>& ignore, double margin) const {
  PathCheckOptions opts;
  opts.step = options_.polling_step_m;
  opts.ignore = ignore;
  opts.inflate = margin;

  if (!options_.use_broad_phase) {
    narrow_runs_.fetch_add(1, std::memory_order_relaxed);
    for (std::size_t i = 1; i < waypoints.size(); ++i) {
      if (auto hit = check_path(world_, waypoints[i - 1], waypoints[i], held_clearance, opts)) {
        return hit;
      }
    }
    return std::nullopt;
  }

  std::lock_guard<std::mutex> lock(cache_mutex_);
  std::uint64_t revision = world_revision();
  if (revision != cache_revision_) {
    grid_.rebuild(world_);
    verdicts_.clear();
    cache_revision_ = revision;
  }
  narrow_runs_.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t i = 1; i < waypoints.size(); ++i) {
    if (auto hit =
            check_path(world_, waypoints[i - 1], waypoints[i], held_clearance, opts, &grid_)) {
      return hit;
    }
  }
  return std::nullopt;
}

MarginProfile ExtendedSimulator::trajectory_margin(const std::vector<geom::Vec3>& waypoints,
                                                   double held_clearance,
                                                   const std::vector<std::string>& ignore) const {
  margin_scans_.fetch_add(1, std::memory_order_relaxed);
  PathCheckOptions opts;
  opts.step = options_.polling_step_m;
  opts.ignore = ignore;
  return margin_profile(world_, waypoints, held_clearance, opts);
}

std::optional<CollisionReport> ExtendedSimulator::validate_target(
    const geom::Vec3& target, double held_clearance) const {
  charge_latency();
  std::lock_guard<std::mutex> lock(cache_mutex_);
  std::uint64_t revision = world_revision();
  if (revision != cache_revision_) {
    if (options_.use_broad_phase) grid_.rebuild(world_);
    verdicts_.clear();
    cache_revision_ = revision;
  }
  return check_point(world_, target, held_clearance, PathCheckOptions{},
                     options_.use_broad_phase ? &grid_ : nullptr);
}

}  // namespace rabit::sim
