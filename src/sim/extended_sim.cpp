#include "sim/extended_sim.hpp"

namespace rabit::sim {

namespace {

ObstacleKind kind_from_name(const std::string& name) {
  if (name == "ground") return ObstacleKind::Ground;
  if (name == "wall") return ObstacleKind::Wall;
  if (name == "grid") return ObstacleKind::Grid;
  if (name == "equipment") return ObstacleKind::Equipment;
  if (name == "vial") return ObstacleKind::Vial;
  if (name == "soft_wall") return ObstacleKind::SoftWall;
  if (name == "parked_arm") return ObstacleKind::ParkedArm;
  throw std::runtime_error("ExtendedSimulator: unknown obstacle kind '" + name + "'");
}

geom::Vec3 vec3_from_json(const json::Value& v, const char* what) {
  if (!v.is_array() || v.as_array().size() != 3) {
    throw std::runtime_error(std::string("ExtendedSimulator: ") + what +
                             " must be an array of 3 numbers");
  }
  const json::Array& a = v.as_array();
  return geom::Vec3(a[0].as_double(), a[1].as_double(), a[2].as_double());
}

}  // namespace

ExtendedSimulator::ExtendedSimulator(WorldModel world, Options options)
    : world_(std::move(world)), options_(options) {
  if (options_.polling_step_m <= 0) {
    throw std::invalid_argument("ExtendedSimulator: polling step must be positive");
  }
}

WorldModel ExtendedSimulator::world_from_json(const json::Value& config) {
  WorldModel world;
  const json::Value* objects = config.find("objects");
  if (objects == nullptr || !objects->is_array()) {
    throw std::runtime_error("ExtendedSimulator: config needs an 'objects' array");
  }
  for (const json::Value& obj : objects->as_array()) {
    if (!obj.is_object()) throw std::runtime_error("ExtendedSimulator: object must be a map");
    const json::Value* name = obj.find("name");
    const json::Value* center = obj.find("center");
    const json::Value* size = obj.find("size");
    if (name == nullptr || !name->is_string() || center == nullptr || size == nullptr) {
      throw std::runtime_error("ExtendedSimulator: object needs name/center/size");
    }
    ObstacleKind kind = kind_from_name(obj.get_or("kind", std::string("equipment")));
    world.add_box(name->as_string(),
                  geom::Aabb::from_center(vec3_from_json(*center, "center"),
                                          vec3_from_json(*size, "size")),
                  kind);
  }
  return world;
}

void ExtendedSimulator::charge_latency() {
  ++checks_;
  modeled_latency_s_ += options_.gui_enabled ? options_.gui_latency_s
                                             : options_.headless_latency_s;
}

std::optional<CollisionReport> ExtendedSimulator::validate_trajectory(const geom::Vec3& start,
                                                                      const geom::Vec3& goal,
                                                                      double held_clearance) {
  charge_latency();
  PathCheckOptions opts;
  opts.step = options_.polling_step_m;
  return check_path(world_, start, goal, held_clearance, opts);
}

std::optional<CollisionReport> ExtendedSimulator::validate_target(const geom::Vec3& target,
                                                                  double held_clearance) {
  charge_latency();
  return check_point(world_, target, held_clearance);
}

}  // namespace rabit::sim
