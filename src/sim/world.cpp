#include "sim/world.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace rabit::sim {

std::string_view to_string(ObstacleKind k) {
  switch (k) {
    case ObstacleKind::Ground: return "ground";
    case ObstacleKind::Wall: return "wall";
    case ObstacleKind::Grid: return "grid";
    case ObstacleKind::Equipment: return "equipment";
    case ObstacleKind::Vial: return "vial";
    case ObstacleKind::SoftWall: return "soft_wall";
    case ObstacleKind::ParkedArm: return "parked_arm";
  }
  return "unknown";
}

void WorldModel::add_box(std::string name, const geom::Aabb& box, ObstacleKind kind) {
  boxes.push_back(NamedBox{std::move(name), box, kind, std::nullopt});
  bump_epoch();
}

void WorldModel::add_solid(std::string name, geom::Solid solid, ObstacleKind kind) {
  geom::Aabb bounds = solid.bounding_box();
  boxes.push_back(NamedBox{std::move(name), bounds, kind, std::move(solid)});
  bump_epoch();
}

void WorldModel::set_arm_segment(std::string arm_id, const geom::Segment& segment,
                                 double radius) {
  for (ArmSegmentObstacle& seg : arm_segments) {
    if (seg.arm_id == arm_id) {
      seg.segment = segment;
      seg.radius = radius;
      bump_epoch();
      return;
    }
  }
  arm_segments.push_back(ArmSegmentObstacle{std::move(arm_id), segment, radius});
  bump_epoch();
}

const NamedBox* WorldModel::find_box(std::string_view name) const {
  for (const NamedBox& b : boxes) {
    if (b.name == name) return &b;
  }
  return nullptr;
}

const NamedBox* WorldModel::box_containing(const geom::Vec3& p) const {
  for (const NamedBox& b : boxes) {
    if (b.contains(p)) return &b;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// BroadPhaseGrid
// ---------------------------------------------------------------------------

namespace {

/// Cells per axis. Deck worlds hold tens of boxes over a ~2 m table; 8^3
/// cells keeps occupancy lists short without a per-rebuild allocation storm.
constexpr int kGridCellsPerAxis = 8;

}  // namespace

void BroadPhaseGrid::rebuild(const WorldModel& world) {
  cells_.clear();
  oversize_.clear();
  box_count_ = world.boxes.size();
  nx_ = ny_ = nz_ = 0;
  if (world.boxes.empty()) return;

  geom::Aabb bounds = world.boxes.front().box;
  for (const NamedBox& b : world.boxes) bounds = bounds.united(b.box);
  // Pad slightly so boundary queries never fall outside the grid range.
  bounds = bounds.inflated(1e-6);
  origin_ = bounds.min;
  geom::Vec3 extent = bounds.size();

  auto axis_cells = [](double e) { return e <= 0 ? 1 : kGridCellsPerAxis; };
  nx_ = axis_cells(extent.x);
  ny_ = axis_cells(extent.y);
  nz_ = axis_cells(extent.z);
  cell_size_ = geom::Vec3(extent.x > 0 ? extent.x / nx_ : 1.0,
                          extent.y > 0 ? extent.y / ny_ : 1.0,
                          extent.z > 0 ? extent.z / nz_ : 1.0);
  inv_cell_ = geom::Vec3(1.0 / cell_size_.x, 1.0 / cell_size_.y, 1.0 / cell_size_.z);
  cells_.assign(static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_) *
                    static_cast<std::size_t>(nz_),
                {});

  const std::size_t total_cells = cells_.size();
  for (std::size_t i = 0; i < world.boxes.size(); ++i) {
    int x0, x1, y0, y1, z0, z1;
    cell_range(world.boxes[i].box, x0, x1, y0, y1, z0, z1);
    std::size_t covered = static_cast<std::size_t>(x1 - x0 + 1) *
                          static_cast<std::size_t>(y1 - y0 + 1) *
                          static_cast<std::size_t>(z1 - z0 + 1);
    // Room-scale boxes (ground plane, walls) would land in nearly every
    // cell; keeping them in a flat always-checked list is cheaper.
    if (covered * 2 > total_cells) {
      oversize_.push_back(static_cast<std::uint32_t>(i));
      continue;
    }
    for (int z = z0; z <= z1; ++z) {
      for (int y = y0; y <= y1; ++y) {
        for (int x = x0; x <= x1; ++x) {
          cells_[cell_index(x, y, z)].push_back(static_cast<std::uint32_t>(i));
        }
      }
    }
  }
}

void BroadPhaseGrid::cell_range(const geom::Aabb& box, int& x0, int& x1, int& y0, int& y1,
                                int& z0, int& z1) const {
  auto clamp_cell = [](double v, int n) {
    if (v < 0) return 0;
    if (v >= n) return n - 1;
    return static_cast<int>(v);
  };
  x0 = clamp_cell(std::floor((box.min.x - origin_.x) * inv_cell_.x), nx_);
  x1 = clamp_cell(std::floor((box.max.x - origin_.x) * inv_cell_.x), nx_);
  y0 = clamp_cell(std::floor((box.min.y - origin_.y) * inv_cell_.y), ny_);
  y1 = clamp_cell(std::floor((box.max.y - origin_.y) * inv_cell_.y), ny_);
  z0 = clamp_cell(std::floor((box.min.z - origin_.z) * inv_cell_.z), nz_);
  z1 = clamp_cell(std::floor((box.max.z - origin_.z) * inv_cell_.z), nz_);
}

void BroadPhaseGrid::candidates(const geom::Aabb& query, std::vector<std::size_t>& out) const {
  out.clear();
  if (box_count_ == 0) return;
  out.insert(out.end(), oversize_.begin(), oversize_.end());
  if (!cells_.empty()) {
    int x0, x1, y0, y1, z0, z1;
    cell_range(query, x0, x1, y0, y1, z0, z1);
    for (int z = z0; z <= z1; ++z) {
      for (int y = y0; y <= y1; ++y) {
        for (int x = x0; x <= x1; ++x) {
          const std::vector<std::uint32_t>& cell = cells_[cell_index(x, y, z)];
          out.insert(out.end(), cell.begin(), cell.end());
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

std::string CollisionReport::describe() const {
  std::ostringstream os;
  if (arm_vs_arm) {
    os << "collision with robot arm '" << obstacle << "'";
  } else {
    os << "collision with " << to_string(kind) << " '" << obstacle << "'";
  }
  if (via_held_object) os << " via held object";
  os << " at " << position;
  return os.str();
}

namespace {

bool is_ignored(const PathCheckOptions& options, const std::string& name) {
  return std::find(options.ignore.begin(), options.ignore.end(), name) != options.ignore.end();
}

/// The axis-aligned volume a tip sample can touch: the tip itself plus the
/// held-object box hanging below it.
geom::Aabb sample_volume(const geom::Vec3& tip, double held_clearance,
                         const PathCheckOptions& options) {
  if (held_clearance > 0) {
    return geom::Aabb(
        tip - geom::Vec3(options.held_half_width, options.held_half_width, held_clearance),
        tip + geom::Vec3(options.held_half_width, options.held_half_width, 0.0));
  }
  return geom::Aabb(tip, tip);
}

/// Checks a single tip sample against the world. When `candidates` is
/// non-null, only those box indices (ascending — same visit order as the
/// full scan) are narrow-phase tested.
std::optional<CollisionReport> check_sample(const WorldModel& world, const geom::Vec3& tip,
                                            double held_clearance,
                                            const PathCheckOptions& options,
                                            const std::vector<std::size_t>* candidates) {
  // The volume occupied by a held object: a slim box hanging below the tip.
  std::optional<geom::Aabb> held_box;
  if (held_clearance > 0) {
    held_box = geom::Aabb(
        tip - geom::Vec3(options.held_half_width, options.held_half_width, held_clearance),
        tip + geom::Vec3(options.held_half_width, options.held_half_width, 0.0));
  }

  const std::size_t count = candidates != nullptr ? candidates->size() : world.boxes.size();
  for (std::size_t c = 0; c < count; ++c) {
    const NamedBox& b = world.boxes[candidates != nullptr ? (*candidates)[c] : c];
    if (b.kind == ObstacleKind::SoftWall && !options.include_soft_walls) continue;
    if (is_ignored(options, b.name)) continue;
    // RTA fast path: inflate by the requested margin (bounding cuboid for
    // solids — conservative), except Ground (see PathCheckOptions::inflate).
    double infl = b.kind != ObstacleKind::Ground ? options.inflate : 0.0;
    bool tip_hit = infl > 0 ? b.box.inflated(infl).contains(tip) : b.contains(tip);
    if (tip_hit) {
      return CollisionReport{b.name, b.kind, tip, /*via_held_object=*/false,
                             /*arm_vs_arm=*/false};
    }
    bool held_hit = held_box && (infl > 0 ? b.box.inflated(infl).intersects(*held_box)
                                          : b.intersects(*held_box));
    if (held_hit) {
      return CollisionReport{b.name, b.kind, tip, /*via_held_object=*/true,
                             /*arm_vs_arm=*/false};
    }
  }

  for (const ArmSegmentObstacle& seg : world.arm_segments) {
    if (is_ignored(options, seg.arm_id)) continue;
    double clearance_needed = seg.radius + options.moving_arm_radius + options.inflate;
    if (geom::distance(seg.segment, tip) < clearance_needed) {
      return CollisionReport{seg.arm_id, ObstacleKind::Equipment, tip,
                             /*via_held_object=*/false, /*arm_vs_arm=*/true};
    }
    if (held_box) {
      geom::Vec3 held_bottom = tip - geom::Vec3(0, 0, held_clearance);
      if (geom::distance(seg.segment, held_bottom) < clearance_needed) {
        return CollisionReport{seg.arm_id, ObstacleKind::Equipment, held_bottom,
                               /*via_held_object=*/true, /*arm_vs_arm=*/true};
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<CollisionReport> check_path(const WorldModel& world, const geom::Vec3& start,
                                          const geom::Vec3& goal, double held_clearance,
                                          const PathCheckOptions& options,
                                          const BroadPhaseGrid* grid) {
  if (options.step <= 0) throw std::invalid_argument("check_path: step must be positive");

  // Broad phase: one swept-volume query covers every sample on the segment,
  // so the per-sample narrow phase only sees boxes near the motion. A grid
  // built for a different world (box count mismatch) is ignored — a wrong
  // candidate set would silently change verdicts.
  std::vector<std::size_t> candidate_storage;
  const std::vector<std::size_t>* candidates = nullptr;
  if (grid != nullptr && grid->box_count() == world.boxes.size()) {
    geom::Aabb swept = geom::Aabb(start, start).united(geom::Aabb(goal, goal));
    swept = swept.united(sample_volume(start, held_clearance, options))
                .united(sample_volume(goal, held_clearance, options))
                .inflated(geom::kEpsilon + options.inflate);
    grid->candidates(swept, candidate_storage);
    candidates = &candidate_storage;
  }

  double length = start.distance_to(goal);
  auto samples = static_cast<std::size_t>(std::ceil(length / options.step)) + 1;
  for (std::size_t i = 0; i <= samples; ++i) {
    double t = samples == 0 ? 1.0 : static_cast<double>(i) / static_cast<double>(samples);
    geom::Vec3 tip = geom::lerp(start, goal, t);
    // Skip the departure point itself: the arm is allowed to *leave* a spot
    // that brushes an obstacle boundary (e.g. lifting out of a grid slot).
    if (i == 0) continue;
    if (auto hit = check_sample(world, tip, held_clearance, options, candidates)) return hit;
  }
  return std::nullopt;
}

std::optional<CollisionReport> check_point(const WorldModel& world, const geom::Vec3& point,
                                           double held_clearance,
                                           const PathCheckOptions& options,
                                           const BroadPhaseGrid* grid) {
  std::vector<std::size_t> candidate_storage;
  const std::vector<std::size_t>* candidates = nullptr;
  if (grid != nullptr && grid->box_count() == world.boxes.size()) {
    geom::Aabb query =
        sample_volume(point, held_clearance, options).inflated(geom::kEpsilon + options.inflate);
    grid->candidates(query, candidate_storage);
    candidates = &candidate_storage;
  }
  return check_sample(world, point, held_clearance, options, candidates);
}

// ---------------------------------------------------------------------------
// Runtime-assurance margin profile
// ---------------------------------------------------------------------------

namespace {

/// Signed clearance of one tip sample to one obstacle box: exact solid
/// distance outside, negative bounding-cuboid depth when penetrating. The
/// held volume contributes its box separation (bounding cuboid for solids —
/// pessimistic, never optimistic).
double box_clearance(const NamedBox& b, const geom::Vec3& tip,
                     const std::optional<geom::Aabb>& held_box) {
  double h;
  if (b.contains(tip)) {
    h = geom::signed_distance(b.box, tip);
    if (h > 0) h = 0.0;  // inside the solid but outside its bounding cuboid
  } else {
    h = b.solid ? geom::distance_to(*b.solid, tip) : b.box.distance_to(tip);
  }
  if (held_box) h = std::min(h, geom::signed_distance(b.box, *held_box));
  return h;
}

}  // namespace

MarginProfile margin_profile(const WorldModel& world, const std::vector<geom::Vec3>& waypoints,
                             double held_clearance, const PathCheckOptions& options) {
  if (options.step <= 0) throw std::invalid_argument("margin_profile: step must be positive");
  MarginProfile profile;
  profile.min_margin_m = std::numeric_limits<double>::infinity();
  if (waypoints.size() < 2) return profile;

  auto sample_clearance = [&](const geom::Vec3& tip, double s) {
    std::optional<geom::Aabb> held_box;
    if (held_clearance > 0) held_box = sample_volume(tip, held_clearance, options);

    MarginSample sample;
    sample.s = s;
    sample.h = std::numeric_limits<double>::infinity();
    for (const NamedBox& b : world.boxes) {
      if (b.kind == ObstacleKind::Ground) continue;  // see PathCheckOptions::inflate
      if (b.kind == ObstacleKind::SoftWall && !options.include_soft_walls) continue;
      if (is_ignored(options, b.name)) continue;
      double h = box_clearance(b, tip, held_box);
      if (h < sample.h) {
        sample.h = h;
        sample.obstacle = b.name;
      }
    }
    for (const ArmSegmentObstacle& seg : world.arm_segments) {
      if (is_ignored(options, seg.arm_id)) continue;
      double clearance_needed = seg.radius + options.moving_arm_radius;
      double h = geom::distance(seg.segment, tip) - clearance_needed;
      if (held_box) {
        geom::Vec3 held_bottom = tip - geom::Vec3(0, 0, held_clearance);
        h = std::min(h, geom::distance(seg.segment, held_bottom) - clearance_needed);
      }
      if (h < sample.h) {
        sample.h = h;
        sample.obstacle = seg.arm_id;
      }
    }
    if (!std::isfinite(sample.h)) {
      sample.h = std::numeric_limits<double>::max();
      sample.obstacle.clear();
    }
    if (sample.h < profile.min_margin_m) {
      profile.min_margin_m = sample.h;
      profile.min_s_m = s;
      profile.min_obstacle = sample.obstacle;
    }
    profile.samples.push_back(std::move(sample));
  };

  double s_base = 0.0;
  for (std::size_t leg = 1; leg < waypoints.size(); ++leg) {
    const geom::Vec3& a = waypoints[leg - 1];
    const geom::Vec3& b = waypoints[leg];
    double length = a.distance_to(b);
    auto samples = static_cast<std::size_t>(std::ceil(length / options.step)) + 1;
    for (std::size_t i = 0; i <= samples; ++i) {
      double t = samples == 0 ? 1.0 : static_cast<double>(i) / static_cast<double>(samples);
      // Skip the global departure point (check_path semantics) and each leg's
      // own start, which duplicates the previous leg's end sample.
      if (i == 0) continue;
      sample_clearance(geom::lerp(a, b, t), s_base + length * t);
    }
    s_base += length;
  }
  profile.length_m = s_base;
  if (!std::isfinite(profile.min_margin_m)) profile.min_margin_m = std::numeric_limits<double>::max();
  return profile;
}

}  // namespace rabit::sim
