#include "sim/world.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace rabit::sim {

std::string_view to_string(ObstacleKind k) {
  switch (k) {
    case ObstacleKind::Ground: return "ground";
    case ObstacleKind::Wall: return "wall";
    case ObstacleKind::Grid: return "grid";
    case ObstacleKind::Equipment: return "equipment";
    case ObstacleKind::Vial: return "vial";
    case ObstacleKind::SoftWall: return "soft_wall";
    case ObstacleKind::ParkedArm: return "parked_arm";
  }
  return "unknown";
}

void WorldModel::add_box(std::string name, const geom::Aabb& box, ObstacleKind kind) {
  boxes.push_back(NamedBox{std::move(name), box, kind, std::nullopt});
}

void WorldModel::add_solid(std::string name, geom::Solid solid, ObstacleKind kind) {
  geom::Aabb bounds = solid.bounding_box();
  boxes.push_back(NamedBox{std::move(name), bounds, kind, std::move(solid)});
}

const NamedBox* WorldModel::find_box(std::string_view name) const {
  for (const NamedBox& b : boxes) {
    if (b.name == name) return &b;
  }
  return nullptr;
}

const NamedBox* WorldModel::box_containing(const geom::Vec3& p) const {
  for (const NamedBox& b : boxes) {
    if (b.contains(p)) return &b;
  }
  return nullptr;
}

std::string CollisionReport::describe() const {
  std::ostringstream os;
  if (arm_vs_arm) {
    os << "collision with robot arm '" << obstacle << "'";
  } else {
    os << "collision with " << to_string(kind) << " '" << obstacle << "'";
  }
  if (via_held_object) os << " via held object";
  os << " at " << position;
  return os.str();
}

namespace {

bool is_ignored(const PathCheckOptions& options, const std::string& name) {
  return std::find(options.ignore.begin(), options.ignore.end(), name) != options.ignore.end();
}

/// Checks a single tip sample against the world.
std::optional<CollisionReport> check_sample(const WorldModel& world, const geom::Vec3& tip,
                                            double held_clearance,
                                            const PathCheckOptions& options) {
  // The volume occupied by a held object: a slim box hanging below the tip.
  std::optional<geom::Aabb> held_box;
  if (held_clearance > 0) {
    held_box = geom::Aabb(
        tip - geom::Vec3(options.held_half_width, options.held_half_width, held_clearance),
        tip + geom::Vec3(options.held_half_width, options.held_half_width, 0.0));
  }

  for (const NamedBox& b : world.boxes) {
    if (b.kind == ObstacleKind::SoftWall && !options.include_soft_walls) continue;
    if (is_ignored(options, b.name)) continue;
    if (b.contains(tip)) {
      return CollisionReport{b.name, b.kind, tip, /*via_held_object=*/false,
                             /*arm_vs_arm=*/false};
    }
    if (held_box && b.intersects(*held_box)) {
      return CollisionReport{b.name, b.kind, tip, /*via_held_object=*/true,
                             /*arm_vs_arm=*/false};
    }
  }

  for (const ArmSegmentObstacle& seg : world.arm_segments) {
    if (is_ignored(options, seg.arm_id)) continue;
    double clearance_needed = seg.radius + options.moving_arm_radius;
    if (geom::distance(seg.segment, tip) < clearance_needed) {
      return CollisionReport{seg.arm_id, ObstacleKind::Equipment, tip,
                             /*via_held_object=*/false, /*arm_vs_arm=*/true};
    }
    if (held_box) {
      geom::Vec3 held_bottom = tip - geom::Vec3(0, 0, held_clearance);
      if (geom::distance(seg.segment, held_bottom) < clearance_needed) {
        return CollisionReport{seg.arm_id, ObstacleKind::Equipment, held_bottom,
                               /*via_held_object=*/true, /*arm_vs_arm=*/true};
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<CollisionReport> check_path(const WorldModel& world, const geom::Vec3& start,
                                          const geom::Vec3& goal, double held_clearance,
                                          const PathCheckOptions& options) {
  if (options.step <= 0) throw std::invalid_argument("check_path: step must be positive");
  double length = start.distance_to(goal);
  auto samples = static_cast<std::size_t>(std::ceil(length / options.step)) + 1;
  for (std::size_t i = 0; i <= samples; ++i) {
    double t = samples == 0 ? 1.0 : static_cast<double>(i) / static_cast<double>(samples);
    geom::Vec3 tip = geom::lerp(start, goal, t);
    // Skip the departure point itself: the arm is allowed to *leave* a spot
    // that brushes an obstacle boundary (e.g. lifting out of a grid slot).
    if (i == 0) continue;
    if (auto hit = check_sample(world, tip, held_clearance, options)) return hit;
  }
  return std::nullopt;
}

std::optional<CollisionReport> check_point(const WorldModel& world, const geom::Vec3& point,
                                           double held_clearance,
                                           const PathCheckOptions& options) {
  return check_sample(world, point, held_clearance, options);
}

}  // namespace rabit::sim
