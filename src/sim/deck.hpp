// Standard deck builders: the Hein Lab production deck (Fig. 1a) and the
// low-fidelity testbed deck (Fig. 4). Tests, examples, and benches share
// these so every experiment runs against the same geometry.
#pragma once

#include "sim/backend.hpp"

namespace rabit::sim {

/// Ids used by the standard decks.
namespace deck_ids {
inline constexpr const char* kUr3e = "ur3e";
inline constexpr const char* kViperX = "viperx";
inline constexpr const char* kNed2 = "ned2";
inline constexpr const char* kGrid = "grid";
inline constexpr const char* kDosingDevice = "dosing_device";
inline constexpr const char* kSyringePump = "syringe_pump";
inline constexpr const char* kHotplate = "hotplate";
inline constexpr const char* kCentrifuge = "centrifuge";
inline constexpr const char* kThermoshaker = "thermoshaker";
inline constexpr const char* kCamera = "camera";
inline constexpr const char* kVial1 = "vial_1";
inline constexpr const char* kVial2 = "vial_2";
}  // namespace deck_ids

/// Populates `backend` with the Hein production deck: one UR3e, the five
/// automation stations, a 2x2 vial grid (slots NW/NE/SW/SE), two vials
/// (vial_1 at grid.NW, vial_2 at grid.SE), ground, platform, and walls.
void build_hein_production_deck(LabBackend& backend);

/// Populates `backend` with the testbed deck: ViperX and Ned2 (separate
/// coordinate frames), cardboard-mockup stations at the same sites, vials,
/// and the same static geometry.
void build_hein_testbed_deck(LabBackend& backend);

/// A world model mirroring the deck for the Extended Simulator / RABIT's
/// target checks. Flags control fidelity — RABIT's detection gaps in §IV
/// came precisely from what the configured model left out.
struct DeckModelOptions {
  bool include_devices = true;
  bool include_ground_and_walls = true;  ///< V1 lacked these (platform/walls)
  bool include_grid = true;
  /// Use refined device shapes instead of cuboids (the §V-C extension).
  bool refined_shapes = false;
};
[[nodiscard]] WorldModel deck_world_model(const LabBackend& backend,
                                          const DeckModelOptions& options = {});

/// JSON describing the same world (what a researcher would hand-write for
/// the Extended Simulator; round-trips through
/// ExtendedSimulator::world_from_json).
[[nodiscard]] json::Value deck_world_json(const LabBackend& backend,
                                          const DeckModelOptions& options = {});

}  // namespace rabit::sim
