// LabBackend — the execution environment for one of RABIT's three stages.
//
// The backend is the ground truth this repository substitutes for a physical
// lab: it owns the devices, the deck geometry, and the cross-device physics
// (substance transfer, doors hitting arms, vials shattering), and it records
// DamageEvents when something physically bad happens. RABIT is evaluated by
// whether its alert precedes the damage.
//
// One backend class parameterized by a StageProfile models all three stages
// of Table I (simulator / testbed / production): the stages differ in modeled
// command latency, positioning precision, measurement accuracy, and the
// dollar cost of damage — not in the physics code paths.
#pragma once

#include <random>

#include "devices/containers.hpp"
#include "devices/device.hpp"
#include "devices/fault.hpp"
#include "devices/robot_arm.hpp"
#include "devices/stations.hpp"
#include "sim/world.hpp"

namespace rabit::sim {

/// Stage capability parameters (paper Table I).
struct StageProfile {
  std::string name;
  double command_latency_s = 2.0;       ///< modeled wall-clock per command
  double position_noise_sigma_m = 0.0;  ///< arm positioning error
  double measurement_noise_sigma = 0.0; ///< solubility-measurement error
  double damage_cost_factor = 1.0;      ///< relative $ cost of damage events
};

[[nodiscard]] StageProfile simulator_profile();
[[nodiscard]] StageProfile testbed_profile();
[[nodiscard]] StageProfile production_profile();

/// Ground-truth damage, classified with the paper's Table V severity bands.
struct DamageEvent {
  dev::Severity severity = dev::Severity::Low;
  std::string description;
  std::string device;          ///< primarily affected device
  std::size_t command_index;   ///< which executed command caused it
};

/// Outcome of executing one command against the backend.
struct ExecResult {
  bool executed = false;          ///< false when firmware rejected the command
  bool silently_skipped = false;  ///< arm controller quietly ignored the move
  bool transient_busy = false;    ///< rejection was a firmware-busy transient
  std::string firmware_error;    ///< non-empty when executed == false
  std::vector<DamageEvent> damage;
  double modeled_latency_s = 0.0;
  std::optional<double> measurement;  ///< present for measurement commands

  [[nodiscard]] bool damaged() const { return !damage.empty(); }
};

/// A logical deck location commands refer to by name: either a vial-grid
/// slot, a device receptacle, or a bare waypoint.
struct SiteBinding {
  std::string name;          ///< e.g. "grid.NW", "dosing_device"
  geom::Vec3 lab_position;   ///< ground-truth position of the slot/receptacle
  std::string grid_device;   ///< set when the site is a grid slot
  std::string grid_slot;
  std::string receptacle_device;  ///< set when the site is a device receptacle

  [[nodiscard]] bool is_grid_slot() const { return !grid_device.empty(); }
  [[nodiscard]] bool is_receptacle() const { return !receptacle_device.empty(); }
};

class LabBackend {
 public:
  explicit LabBackend(StageProfile profile, unsigned seed = 42);

  [[nodiscard]] const StageProfile& profile() const { return profile_; }

  [[nodiscard]] dev::DeviceRegistry& registry() { return registry_; }
  [[nodiscard]] const dev::DeviceRegistry& registry() const { return registry_; }

  /// Deck geometry that is not a device: ground, walls, mounting platform.
  void add_static_obstacle(std::string name, const geom::Aabb& box, ObstacleKind kind);
  [[nodiscard]] const std::vector<NamedBox>& static_obstacles() const { return static_; }

  void add_site(SiteBinding site);
  [[nodiscard]] const SiteBinding* find_site(std::string_view name) const;
  /// Site whose lab position is within `tolerance` of `lab_point`.
  [[nodiscard]] const SiteBinding* site_near(const geom::Vec3& lab_point,
                                             double tolerance) const;
  [[nodiscard]] const std::vector<SiteBinding>& sites() const { return sites_; }

  /// Convenience typed lookups (throw std::out_of_range / bad type).
  [[nodiscard]] dev::RobotArmDevice& arm(std::string_view id);
  [[nodiscard]] dev::Vial& vial(std::string_view id);

  /// The complete physical world as seen when `moving_arm` moves: every
  /// device footprint, all static obstacles, and the other arms' current
  /// link segments. SoftWalls are never part of ground truth.
  [[nodiscard]] WorldModel ground_truth_world(std::string_view moving_arm) const;

  /// Executes one command with full physics. Never throws for in-experiment
  /// failures (firmware rejections land in ExecResult); throws only on
  /// structural misuse (unknown device).
  ExecResult execute(const dev::Command& cmd);

  [[nodiscard]] const std::vector<DamageEvent>& damage_log() const { return damage_log_; }
  [[nodiscard]] std::size_t commands_executed() const { return commands_executed_; }
  [[nodiscard]] double modeled_clock_s() const { return modeled_clock_s_; }

  /// Advances the modeled clock without executing anything (recovery
  /// backoff waits and status re-poll intervals).
  void advance_clock(double seconds);

  /// Installs a transient/scheduled fault timetable consulted on every
  /// command and status read. Replaces any previous schedule.
  void set_fault_schedule(dev::FaultSchedule schedule);
  void clear_fault_schedule() { fault_schedule_.reset(); }
  [[nodiscard]] const dev::FaultSchedule* fault_schedule() const {
    return fault_schedule_ ? &*fault_schedule_ : nullptr;
  }

  /// One whole-lab status poll (the paper's FetchState) subject to the
  /// fault schedule: a StatusTimeout device gets no response (last-known
  /// data is substituted and the device listed in `timed_out`); a
  /// StaleStatus device silently reports its previous snapshot (`stale`
  /// is ground-truth annotation for benches — a real caller cannot see it).
  struct StatusFetch {
    dev::LabStateSnapshot snapshot;
    std::vector<std::string> timed_out;
    std::vector<std::string> stale;
    [[nodiscard]] bool complete() const { return timed_out.empty(); }
  };
  [[nodiscard]] StatusFetch fetch_status();

  /// Positioning-error magnitudes sampled per arm move (Table I precision).
  [[nodiscard]] const std::vector<double>& position_error_samples() const {
    return position_errors_;
  }

  /// Total modeled damage cost (severity-weighted, scaled by the stage's
  /// damage_cost_factor) — the "risk of damage" row of Table I.
  [[nodiscard]] double total_damage_cost() const;

  /// Ground-truth solubility readout for a vial, with stage noise applied.
  [[nodiscard]] double measure_solubility(const dev::Vial& v);

  /// Noise-free solubility (used to score stage accuracy in Table I).
  [[nodiscard]] static double true_solubility(const dev::Vial& v);

 private:
  void handle_arm_move(dev::RobotArmDevice& a, const dev::Command& cmd, ExecResult& r);
  void handle_gripper(dev::RobotArmDevice& a, bool open, ExecResult& r);
  void handle_composite(dev::RobotArmDevice& a, const dev::Command& cmd, bool pick,
                        ExecResult& r);
  void handle_composite_pick(dev::RobotArmDevice& a, const dev::Command& cmd, ExecResult& r);
  void handle_composite_place(dev::RobotArmDevice& a, const dev::Command& cmd, ExecResult& r);
  void handle_set_door(dev::Device& d, const dev::Command& cmd, ExecResult& r);
  void after_station_action(dev::Device& d, const dev::Command& cmd, ExecResult& r);

  /// Moves the arm tip to `target_local` with collision physics; returns
  /// true when the motion completed without a halting crash.
  void perform_motion(dev::RobotArmDevice& a, const dev::MotionPlan& plan, ExecResult& r,
                      std::string_view pose_name = "custom");

  void record_collision(dev::RobotArmDevice& a, const CollisionReport& hit, ExecResult& r);
  void drain_hazards(ExecResult& r);
  void update_inside_flag(dev::RobotArmDevice& a);

  /// Finds the vial currently sitting at `site`, if any.
  [[nodiscard]] dev::Vial* vial_at_site(const SiteBinding& site);
  /// Clears the slot/receptacle binding that currently holds `vial_id`.
  void detach_vial_from_site(const SiteBinding& site);
  /// Seats `v` at `site` (grid slot or receptacle), with crash physics when
  /// the spot is already occupied.
  void seat_vial(dev::Vial& v, const SiteBinding& site, ExecResult& r);

  StageProfile profile_;
  dev::DeviceRegistry registry_;
  std::vector<NamedBox> static_;
  std::vector<SiteBinding> sites_;
  std::vector<DamageEvent> damage_log_;
  std::vector<double> position_errors_;
  std::size_t commands_executed_ = 0;
  double modeled_clock_s_ = 0.0;
  std::mt19937 rng_;
  std::optional<dev::FaultSchedule> fault_schedule_;
  /// Last successfully read status per device (what a stale read replays).
  std::map<std::string, dev::StateMap, std::less<>> last_status_;
};

/// Severity for a physical collision, from what was hit (paper Table V).
[[nodiscard]] dev::Severity collision_severity(const CollisionReport& hit);

}  // namespace rabit::sim
