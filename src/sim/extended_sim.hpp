// Extended Simulator (paper §III): URSim models only the arm; the extension
// adds every deck device as a 3D cuboid and polls the arm's trajectory
// against them, flagging collisions before they happen in the real lab.
//
// The simulator checks a *configured* world model — typically loaded from
// the same JSON the researcher writes for RABIT — which may be incomplete or
// slightly wrong; that is what separates prediction from ground truth.
//
// The paper measures ~2 s of overhead per collision check because the
// simulator GUI runs in a virtual machine; a planned deployment mode
// bypasses the GUI. Both modes are modeled with a virtual latency meter so
// benches can report the paper's overhead numbers without real sleeps.
//
// Fleet-scale hot path: trajectory queries are const and thread-safe. A
// uniform-grid broad phase prunes the per-sample narrow phase to candidate
// boxes, and an epoch-versioned verdict cache keyed on (start, goal,
// clearance, ignore set, world epoch) short-circuits repeated checks of the
// same motion against an unchanged world. Both are transparent: verdicts are
// byte-identical to the unpruned, uncached scan.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <unordered_map>

#include "json/json.hpp"
#include "sim/world.hpp"

namespace rabit::sim {

class ExtendedSimulator {
 public:
  /// Reads an arm's *actual* current tip position (the simulator polls the
  /// robot, paper §III). This is what lets trajectory replay catch the
  /// silently-skipped-command scenario of footnote 2: RABIT believes the arm
  /// reached the skipped waypoint, but the simulator sees where it really is.
  using ArmStateProvider = std::function<std::optional<geom::Vec3>(std::string_view arm_id)>;
  struct Options {
    double polling_step_m = 0.01;  ///< trajectory polling resolution
    bool gui_enabled = true;       ///< GUI round trip per check (the 2 s mode)
    double gui_latency_s = 2.0;    ///< modeled cost of one GUI invocation
    double headless_latency_s = 0.02;  ///< modeled cost with the GUI bypassed
    bool use_broad_phase = true;   ///< uniform-grid candidate pruning
    bool use_verdict_cache = true; ///< epoch-versioned collision-verdict cache
    std::size_t verdict_cache_capacity = 1024;  ///< entries before a flush
  };

  explicit ExtendedSimulator(WorldModel world) : ExtendedSimulator(std::move(world), Options{}) {}
  ExtendedSimulator(WorldModel world, Options options);

  /// Builds the world from a JSON document of the form:
  ///   {"objects": [{"name": "...", "kind": "equipment", "center": [x,y,z],
  ///                 "size": [dx,dy,dz]}, ...]}
  /// Throws std::runtime_error on malformed input.
  [[nodiscard]] static WorldModel world_from_json(const json::Value& config);

  [[nodiscard]] const WorldModel& world() const { return world_; }
  /// Mutable world access. Mutations through add_box/add_solid/
  /// set_arm_segment bump the epoch automatically; direct edits to the
  /// `boxes`/`arm_segments` vectors must be followed by bump_epoch() so the
  /// verdict cache and broad phase notice.
  [[nodiscard]] WorldModel& world() { return world_; }
  [[nodiscard]] const Options& options() const { return options_; }
  void set_gui_enabled(bool enabled) { options_.gui_enabled = enabled; }

  void set_arm_state_provider(ArmStateProvider provider) { provider_ = std::move(provider); }
  /// Polled actual tip position, when a provider is wired up.
  [[nodiscard]] std::optional<geom::Vec3> polled_arm_position(std::string_view arm_id) const {
    return provider_ ? provider_(arm_id) : std::nullopt;
  }

  /// Validates a planned tip motion; nullopt means the trajectory is clear.
  /// This is the paper's ValidTrajectory() (Fig. 2 line 9). Const and safe
  /// to call from multiple threads (counters are atomic; the caches are
  /// internally locked).
  [[nodiscard]] std::optional<CollisionReport> validate_trajectory(
      const geom::Vec3& start, const geom::Vec3& goal, double held_clearance) const;

  /// Same, with boxes named in `ignore` skipped (the deliberate-entry set
  /// computed by motion analysis). Replaces the engine's former
  /// erase-and-reinsert mutation of the world: the query is read-only.
  [[nodiscard]] std::optional<CollisionReport> validate_trajectory(
      const geom::Vec3& start, const geom::Vec3& goal, double held_clearance,
      const std::vector<std::string>& ignore) const;

  /// Target-only variant (what RABIT falls back to without a simulator).
  [[nodiscard]] std::optional<CollisionReport> validate_target(const geom::Vec3& target,
                                                               double held_clearance) const;

  /// RTA fast path: the same trajectory validation with every obstacle grown
  /// by `margin` (Ground exempt — see PathCheckOptions::inflate). A nullopt
  /// verdict certifies clearance >= margin along the whole leg; a hit only
  /// means "within margin of something", which the margin-profile slow path
  /// then settles exactly. Rides the same verdict cache (the key includes the
  /// inflation) and charges no extra modeled latency: the margin is derived
  /// from the same polling sweep the simulator already runs per leg.
  /// `charge_modeled` makes the call charge the per-leg modeled simulator
  /// latency, for when this sweep IS the engine's primary trajectory replay
  /// (RabitEngine::set_assurance_margin) rather than an extra query.
  [[nodiscard]] std::optional<CollisionReport> validate_trajectory_margin(
      const geom::Vec3& start, const geom::Vec3& goal, double held_clearance,
      const std::vector<std::string>& ignore, double margin,
      bool charge_modeled = false) const;

  /// Whole-trajectory RTA fast path: the inflated boolean sweep over every
  /// leg of a multi-leg tip path under ONE cache-state lock, served straight
  /// from the broad-phase grid with no per-leg VerdictKey construction or
  /// verdict-map traffic. This is what the Supervisor's decision module calls
  /// on every supervised motion, so it must stay allocation-light: legs far
  /// from every obstacle cost one grid probe each.
  [[nodiscard]] std::optional<CollisionReport> validate_trajectory_margin(
      const std::vector<geom::Vec3>& waypoints, double held_clearance,
      const std::vector<std::string>& ignore, double margin) const;

  /// RTA slow path: full signed-clearance barrier profile h(s) over a
  /// multi-leg tip path (no broad phase, no cache — taken only after the
  /// inflated fast check trips). Charges no modeled latency for the same
  /// reason as validate_trajectory_margin.
  [[nodiscard]] MarginProfile trajectory_margin(const std::vector<geom::Vec3>& waypoints,
                                                double held_clearance,
                                                const std::vector<std::string>& ignore) const;

  /// How many margin-profile slow-path scans ran (bench instrumentation).
  [[nodiscard]] std::size_t margin_scans() const {
    return margin_scans_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t checks_performed() const {
    return checks_.load(std::memory_order_relaxed);
  }
  /// Modeled wall-clock spent inside the simulator so far.
  [[nodiscard]] double modeled_latency_s() const;

  /// Verdict-cache instrumentation (for benches and invalidation tests).
  [[nodiscard]] std::size_t verdict_cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t narrow_phase_runs() const {
    return narrow_runs_.load(std::memory_order_relaxed);
  }

 private:
  struct VerdictKey {
    geom::Vec3 start;
    geom::Vec3 goal;
    double clearance = 0.0;
    double inflate = 0.0;
    std::vector<std::string> ignore;

    bool operator==(const VerdictKey& o) const {
      return start.x == o.start.x && start.y == o.start.y && start.z == o.start.z &&
             goal.x == o.goal.x && goal.y == o.goal.y && goal.z == o.goal.z &&
             clearance == o.clearance && inflate == o.inflate && ignore == o.ignore;
    }
  };
  struct VerdictKeyHash {
    std::size_t operator()(const VerdictKey& k) const;
  };

  void charge_latency() const;
  /// Fingerprint of the world revision the caches were built against: the
  /// explicit epoch plus element counts (the counts catch direct vector
  /// mutation that forgot to bump the epoch).
  [[nodiscard]] std::uint64_t world_revision() const;
  [[nodiscard]] std::optional<CollisionReport> cached_path_check(
      const geom::Vec3& start, const geom::Vec3& goal, double held_clearance,
      const std::vector<std::string>& ignore, double inflate = 0.0) const;

  WorldModel world_;
  Options options_;
  ArmStateProvider provider_;
  mutable std::atomic<std::size_t> checks_{0};
  mutable std::atomic<std::size_t> cache_hits_{0};
  mutable std::atomic<std::size_t> narrow_runs_{0};
  mutable std::atomic<std::size_t> margin_scans_{0};
  mutable double modeled_latency_s_ = 0.0;  ///< guarded by cache_mutex_

  mutable std::mutex cache_mutex_;
  mutable BroadPhaseGrid grid_;                 ///< guarded by cache_mutex_
  mutable std::uint64_t cache_revision_ = ~0ULL;
  mutable std::unordered_map<VerdictKey, std::optional<CollisionReport>, VerdictKeyHash>
      verdicts_;                                ///< guarded by cache_mutex_
};

}  // namespace rabit::sim
