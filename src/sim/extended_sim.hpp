// Extended Simulator (paper §III): URSim models only the arm; the extension
// adds every deck device as a 3D cuboid and polls the arm's trajectory
// against them, flagging collisions before they happen in the real lab.
//
// The simulator checks a *configured* world model — typically loaded from
// the same JSON the researcher writes for RABIT — which may be incomplete or
// slightly wrong; that is what separates prediction from ground truth.
//
// The paper measures ~2 s of overhead per collision check because the
// simulator GUI runs in a virtual machine; a planned deployment mode
// bypasses the GUI. Both modes are modeled with a virtual latency meter so
// benches can report the paper's overhead numbers without real sleeps.
#pragma once

#include <functional>

#include "json/json.hpp"
#include "sim/world.hpp"

namespace rabit::sim {

class ExtendedSimulator {
 public:
  /// Reads an arm's *actual* current tip position (the simulator polls the
  /// robot, paper §III). This is what lets trajectory replay catch the
  /// silently-skipped-command scenario of footnote 2: RABIT believes the arm
  /// reached the skipped waypoint, but the simulator sees where it really is.
  using ArmStateProvider = std::function<std::optional<geom::Vec3>(std::string_view arm_id)>;
  struct Options {
    double polling_step_m = 0.01;  ///< trajectory polling resolution
    bool gui_enabled = true;       ///< GUI round trip per check (the 2 s mode)
    double gui_latency_s = 2.0;    ///< modeled cost of one GUI invocation
    double headless_latency_s = 0.02;  ///< modeled cost with the GUI bypassed
  };

  explicit ExtendedSimulator(WorldModel world) : ExtendedSimulator(std::move(world), Options{}) {}
  ExtendedSimulator(WorldModel world, Options options);

  /// Builds the world from a JSON document of the form:
  ///   {"objects": [{"name": "...", "kind": "equipment", "center": [x,y,z],
  ///                 "size": [dx,dy,dz]}, ...]}
  /// Throws std::runtime_error on malformed input.
  [[nodiscard]] static WorldModel world_from_json(const json::Value& config);

  [[nodiscard]] const WorldModel& world() const { return world_; }
  [[nodiscard]] WorldModel& world() { return world_; }
  [[nodiscard]] const Options& options() const { return options_; }
  void set_gui_enabled(bool enabled) { options_.gui_enabled = enabled; }

  void set_arm_state_provider(ArmStateProvider provider) { provider_ = std::move(provider); }
  /// Polled actual tip position, when a provider is wired up.
  [[nodiscard]] std::optional<geom::Vec3> polled_arm_position(std::string_view arm_id) const {
    return provider_ ? provider_(arm_id) : std::nullopt;
  }

  /// Validates a planned tip motion; nullopt means the trajectory is clear.
  /// This is the paper's ValidTrajectory() (Fig. 2 line 9).
  [[nodiscard]] std::optional<CollisionReport> validate_trajectory(const geom::Vec3& start,
                                                                   const geom::Vec3& goal,
                                                                   double held_clearance);

  /// Target-only variant (what RABIT falls back to without a simulator).
  [[nodiscard]] std::optional<CollisionReport> validate_target(const geom::Vec3& target,
                                                               double held_clearance);

  [[nodiscard]] std::size_t checks_performed() const { return checks_; }
  /// Modeled wall-clock spent inside the simulator so far.
  [[nodiscard]] double modeled_latency_s() const { return modeled_latency_s_; }

 private:
  void charge_latency();

  WorldModel world_;
  Options options_;
  ArmStateProvider provider_;
  std::size_t checks_ = 0;
  double modeled_latency_s_ = 0.0;
};

}  // namespace rabit::sim
