// Alerts raised by the RABIT engine (Fig. 2: "Output: Alert, if a safety
// violation is detected").
#pragma once

#include <string>

#include "devices/device.hpp"

namespace rabit::core {

/// The three alert paths of the Fig. 2 algorithm.
enum class AlertKind {
  InvalidCommand,     ///< precondition failed (lines 6-7)
  InvalidTrajectory,  ///< simulator flagged the planned motion (lines 8-10)
  DeviceMalfunction,  ///< S_actual != S_expected after execution (lines 14-15)
};

[[nodiscard]] std::string_view to_string(AlertKind k);

struct Alert {
  AlertKind kind = AlertKind::InvalidCommand;
  /// Which rulebase entry fired: "G1".."G11" (Table III), "C1".."C4"
  /// (Table IV), "M1"/"M2" (the §IV multiplexing additions), or "POST" for
  /// malfunction alerts.
  std::string rule;
  std::string message;
  dev::Command command;  ///< the command that triggered the alert

  [[nodiscard]] std::string describe() const;
};

}  // namespace rabit::core
