// RabitEngine — the paper's Fig. 2 execution algorithm.
//
//   1  S_current <- SetState(S_initial)                  initialize()
//   5  fetch the next command a_next                     (caller / tracer)
//   6  if !Valid(S_current, a_next): alertAndStop        check_command()
//   8  if robot command and sim available:
//   9    if !ValidTrajectory(a_next): alertAndStop       check_command()
//  11  S_expected <- UpdateState(S_current, a_next)      apply_expected()
//  12  execute a_next                                    (backend)
//  13  S_actual <- FetchState()                          (caller)
//  14  if S_actual != S_expected: alertAndStop           verify_postconditions()
//  16  S_current <- SetState(S_actual)                   verify_postconditions()
#pragma once

#include <functional>

#include "core/alert.hpp"
#include "core/config.hpp"
#include "core/rules.hpp"
#include "core/tracker.hpp"
#include "obs/obs.hpp"
#include "sim/extended_sim.hpp"

namespace rabit::core {

/// Ablation toggles for the fleet-scale hot path. All on by default; the
/// benches and the verdict-parity tests flip them off to compare against the
/// seed-equivalent slow path. Every toggle is transparent — it may change
/// the cost of a check, never its verdict.
struct HotPathConfig {
  bool index_lookups = true;       ///< EngineConfig/DeviceMeta hash indexes
  bool memoize_rule_world = true;  ///< RuleWorldCache for assemble_rule_world
  bool broad_phase = true;         ///< simulator uniform-grid pruning
  bool verdict_cache = true;       ///< simulator collision-verdict cache
};

class RabitEngine {
 public:
  explicit RabitEngine(EngineConfig config) : RabitEngine(std::move(config), HotPathConfig{}) {}
  RabitEngine(EngineConfig config, const HotPathConfig& hot_path);

  /// Attaches the Extended Simulator (non-owning) — the V3 deployment.
  /// Pass nullptr to detach.
  void attach_simulator(sim::ExtendedSimulator* simulator);
  [[nodiscard]] bool simulator_attached() const { return simulator_ != nullptr; }
  /// The attached simulator (null when detached). The runtime-assurance
  /// decision module issues its margin queries through this.
  [[nodiscard]] sim::ExtendedSimulator* simulator() const { return simulator_; }

  [[nodiscard]] const EngineConfig& config() const { return config_; }
  [[nodiscard]] const StateTracker& tracker() const { return tracker_; }

  [[nodiscard]] const HotPathConfig& hot_path() const { return hot_path_; }
  /// Re-applies the hot-path toggles (and re-warms or disables the config
  /// indexes accordingly). Verdicts are unaffected.
  void set_hot_path(const HotPathConfig& hot_path);

  /// Times the memoized rule world was actually assembled (0 until the first
  /// motion command; stays flat while no arm changes pose).
  [[nodiscard]] std::size_t rule_world_rebuilds() const { return rule_world_cache_.rebuilds(); }

  /// Fig. 2 line 3: seeds the symbolic state from the initial FetchState().
  void initialize(const dev::LabStateSnapshot& observed);

  /// Fig. 2 lines 6-10: precondition validation, then (when a simulator is
  /// attached and the command moves an arm) trajectory replay. Does not
  /// mutate tracked state.
  /// Aliased command names (DeviceMeta::action_aliases) are canonicalized
  /// before rule evaluation.
  [[nodiscard]] std::optional<Alert> check_command(const dev::Command& cmd);

  /// The motion geometry check_command() would replay for `cmd` — arm id,
  /// waypoints (front overridden by the simulator's polled actual position
  /// when available), held clearance and deliberate-entry ignores — or
  /// nullopt for non-motion commands / unresolvable targets. Read-only; the
  /// runtime-assurance layer derives its barrier profile from this.
  [[nodiscard]] std::optional<MotionAnalysis> motion_analysis(const dev::Command& cmd) const;

  /// Fig. 2 line 11: advances S_current to S_expected for a command that is
  /// about to execute.
  void apply_expected(const dev::Command& cmd);

  /// Fig. 2 lines 13-16: compares the freshly fetched state against the
  /// expectation, then resyncs regardless so analysis can continue.
  [[nodiscard]] std::optional<Alert> verify_postconditions(const dev::Command& cmd,
                                                           const dev::LabStateSnapshot& observed);

  /// The line-14 comparison *without* the line-16 resync: what the recovery
  /// layer uses to re-poll a suspicious status before declaring a
  /// malfunction (a stale read must not be confused with real damage).
  [[nodiscard]] std::vector<std::string> postcondition_mismatches(
      const dev::LabStateSnapshot& observed) const;

  /// Fig. 2 line 16 alone: adopts the observed state as S_current.
  void resync_observed(const dev::LabStateSnapshot& observed);

  /// Builds (and counts) the DeviceMalfunction alert for diffs that
  /// survived the recovery ladder.
  [[nodiscard]] Alert declare_malfunction(const dev::Command& cmd,
                                          const std::vector<std::string>& diffs);

  /// Counts one status re-poll taken before judging a divergence.
  void note_status_repoll() { ++stats_.status_repolls; }

  /// Attaches the span the next check_command() annotates with its
  /// canonicalize and precondition phase timings (modeled + wall). Null
  /// detaches; the disabled hot path is a single pointer test per check —
  /// the zero-cost-when-off contract bench_latency_overhead enforces.
  /// Non-owning; the trace::Supervisor points this at its per-command span.
  void set_span(obs::SpanRecord* span) { span_ = span; }
  [[nodiscard]] obs::SpanRecord* span() const { return span_; }

  /// Motion observer: invoked once per motion command the V3 trajectory
  /// replay analyzes (after the polled-position override, before the sweep,
  /// regardless of the eventual verdict). The sharded fleet runner hangs its
  /// cross-shard snapshot audit here. Empty disables — the cost is one
  /// bool test per motion check. Non-owning callback, like set_span.
  void set_motion_observer(std::function<void(const MotionAnalysis&)> observer) {
    motion_observer_ = std::move(observer);
  }

  /// Runtime-assurance hook. When set > 0, the V3 trajectory replay sweeps
  /// with every obstacle inflated by this margin — the SAME single sweep,
  /// just a constant added to each clearance test, so the assurance fast
  /// path costs nothing extra on clean motions. A trip triggers one
  /// uninflated re-check so alert verdicts stay exactly the paper's; the
  /// gap between the two sweeps (inflated trips, uninflated clean) is
  /// surfaced via last_margin_tripped() as the demotion signal. 0 disables
  /// (the default; non-assurance runs are untouched).
  void set_assurance_margin(double margin) { assurance_margin_ = margin; }
  [[nodiscard]] double assurance_margin() const { return assurance_margin_; }
  /// Did the last check_command()'s replay trip the inflated sweep while
  /// the uninflated verdict stayed clean? (Always false when the margin is
  /// unset, the command was no motion, or the replay alerted.)
  [[nodiscard]] bool last_margin_tripped() const { return last_margin_tripped_; }

  struct Stats {
    std::size_t commands_checked = 0;
    std::size_t precondition_alerts = 0;
    std::size_t trajectory_alerts = 0;
    std::size_t malfunction_alerts = 0;
    std::size_t trajectory_checks = 0;
    /// Motion commands checked at V2 level because the V3 simulator was
    /// detached mid-run (degraded mode) — counted, never silently skipped.
    std::size_t degraded_checks = 0;
    /// Status re-polls taken before declaring a malfunction.
    std::size_t status_repolls = 0;
    /// Line-16 resyncs of S_current onto a fetched S_actual.
    std::size_t resyncs = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Absorbs the ad-hoc Stats counters into a metrics registry as
  /// `rabit_engine_*_total` counter increments. Stats reset on initialize(),
  /// so calling this once per supervised run accumulates correctly across
  /// runs sharing one registry.
  void export_stats(obs::Registry& registry) const;

  /// True when the engine is configured for V3 checks but no simulator is
  /// attached: trajectory validation silently degrades to V2 target checks.
  [[nodiscard]] bool degraded() const {
    return config_.variant == Variant::ModifiedWithSim && simulator_ == nullptr;
  }

  /// Modeled wall-clock overhead RABIT added so far: a fixed per-command
  /// check cost plus any Extended Simulator invocations. The paper reports
  /// ~0.03 s per command without the simulator and ~2 s with its GUI (§II-C).
  [[nodiscard]] double modeled_overhead_s() const;

  /// The paper's measured per-command check cost.
  static constexpr double kBaseCheckCost_s = 0.03;

 private:
  EngineConfig config_;
  StateTracker tracker_;
  sim::ExtendedSimulator* simulator_ = nullptr;
  Stats stats_;
  double base_overhead_s_ = 0.0;
  HotPathConfig hot_path_;
  RuleWorldCache rule_world_cache_;
  obs::SpanRecord* span_ = nullptr;
  std::function<void(const MotionAnalysis&)> motion_observer_;
  void invalidate_motion_cache();
  double assurance_margin_ = 0.0;
  bool last_margin_tripped_ = false;
  /// The last V3 trajectory replay's analysis (polled front waypoint already
  /// applied), keyed by the raw command that produced it. motion_analysis()
  /// serves from here when asked about the command check_command() just
  /// replayed, so the assurance fast path never re-plans the same motion.
  /// Cleared on any check that does not replay a trajectory.
  std::optional<dev::Command> last_motion_cmd_;
  std::optional<MotionAnalysis> last_motion_;
};

}  // namespace rabit::core
